// Dispatch: the receive statement of Section 3.4 as a library construct.
//
//   receive on <port list>
//     when C1 (formal arglist) [replyto <formal port arg>]: S1
//     ...
//     when failure (x: string): Sfailure
//     when timeout <exp>: Stimeout
//   end
//
// becomes:
//
//   Dispatch()
//       .When("reserve", [&](const Received& m) { ... })
//       .OnFailure([&](const std::string& why, const Received& m) { ... })
//       .OnTimeout([&] { ... })
//       .Loop(*this, {port(0)}, Millis(500));
//
// "The line containing the command identifier of this message is selected
//  (such a line must exist; this can be checked at compile time)" — the
// analog here is CheckCovers(port_type), which verifies every declared
// command has a when-clause before the loop starts.
#ifndef GUARDIANS_SRC_GUARDIAN_DISPATCH_H_
#define GUARDIANS_SRC_GUARDIAN_DISPATCH_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/guardian/guardian.h"

namespace guardians {

class Dispatch {
 public:
  using Handler = std::function<void(const Received&)>;
  using FailureHandler =
      std::function<void(const std::string& reason, const Received&)>;
  using TimeoutHandler = std::function<void()>;

  // Adds a when-clause. Later duplicates replace earlier ones.
  Dispatch& When(const std::string& command, Handler handler) {
    handlers_[command] = std::move(handler);
    return *this;
  }

  // when failure (x: string) — the implicit system message. Without this
  // clause failure messages are ignored (many loops want exactly that).
  Dispatch& OnFailure(FailureHandler handler) {
    failure_ = std::move(handler);
    return *this;
  }

  // when timeout <exp>. Without this clause a timeout simply returns.
  Dispatch& OnTimeout(TimeoutHandler handler) {
    timeout_ = std::move(handler);
    return *this;
  }

  // The compile-time coverage check: every command of `type` (and nothing
  // else, bar failure) must have a when-clause.
  Status CheckCovers(const PortType& type) const {
    for (const auto& sig : type.signatures()) {
      if (handlers_.count(sig.command) == 0) {
        return Status(Code::kTypeError,
                      "no when-clause for command '" + sig.command +
                          "' of port type '" + type.name() + "'");
      }
    }
    for (const auto& [command, handler] : handlers_) {
      if (!type.Find(command).ok()) {
        return Status(Code::kTypeError,
                      "when-clause for '" + command +
                          "' which port type '" + type.name() +
                          "' cannot deliver");
      }
    }
    return OkStatus();
  }

  // Execute one receive statement. Returns the receive's status: ok when a
  // message (or failure) was handled, kTimeout after the timeout clause ran,
  // kNodeDown when the node is down.
  Status Once(Guardian& guardian, const std::vector<Port*>& ports,
              Micros timeout) const {
    auto received = guardian.Receive(ports, timeout);
    if (!received.ok()) {
      if (received.status().code() == Code::kTimeout && timeout_) {
        timeout_();
      }
      return received.status();
    }
    if (received->command == kFailureCommand) {
      if (failure_) {
        const std::string reason =
            !received->args.empty() &&
                    received->args[0].is(TypeTag::kString)
                ? received->args[0].string_value()
                : "";
        failure_(reason, *received);
      }
      return OkStatus();
    }
    auto it = handlers_.find(received->command);
    if (it != handlers_.end()) {
      it->second(*received);
    }
    return OkStatus();
  }

  // Run Once until the node goes down or a handler calls Stop(). A timeout
  // does not end the loop (the timeout clause runs and the loop continues),
  // matching a server process's receive loop.
  Status Loop(Guardian& guardian, const std::vector<Port*>& ports,
              Micros timeout = Micros::max()) {
    stopped_ = false;
    for (;;) {
      Status st = Once(guardian, ports, timeout);
      if (st.code() == Code::kNodeDown) {
        return st;
      }
      if (stopped_) {
        return OkStatus();
      }
    }
  }

  // Callable from inside a handler to end Loop after this message.
  void Stop() { stopped_ = true; }

 private:
  std::map<std::string, Handler> handlers_;
  FailureHandler failure_;
  TimeoutHandler timeout_;
  bool stopped_ = false;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_GUARDIAN_DISPATCH_H_
