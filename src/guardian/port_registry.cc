#include "src/guardian/port_registry.h"

namespace guardians {

Status PortTypeRegistry::Register(const PortType& type) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = types_.find(type.hash());
  if (it != types_.end()) {
    if (it->second.Canonical() != type.Canonical()) {
      return Status(Code::kInternal, "port type hash collision for '" +
                                         type.name() + "'");
    }
    return OkStatus();
  }
  types_.emplace(type.hash(), type);
  return OkStatus();
}

Result<PortType> PortTypeRegistry::Lookup(uint64_t hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = types_.find(hash);
  if (it == types_.end()) {
    return Status(Code::kTypeError,
                  "port type not in the guardian-header library");
  }
  return it->second;
}

bool PortTypeRegistry::Knows(uint64_t hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  return types_.count(hash) > 0;
}

size_t PortTypeRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return types_.size();
}

}  // namespace guardians
