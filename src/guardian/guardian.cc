#include "src/guardian/guardian.h"

#include <cassert>
#include <optional>

#include "src/common/bytes.h"
#include "src/common/log.h"
#include "src/fault/crashpoint.h"
#include "src/guardian/node_runtime.h"
#include "src/guardian/system.h"
#include "src/obs/trace.h"

namespace guardians {

void Guardian::Attach(NodeRuntime* rt, GuardianId gid, std::string gname,
                      uint64_t seal) {
  runtime_ = rt;
  id_ = gid;
  name_ = std::move(gname);
  seal_ = seal;
}

NodeId Guardian::node() const { return runtime_->id(); }

Port* Guardian::AddPort(const PortType& type, size_t capacity,
                        bool provided) {
  std::lock_guard<std::mutex> lock(ports_mu_);
  PortName pn;
  pn.node = runtime_->id();
  pn.guardian = id_;
  pn.port_index = static_cast<uint32_t>(ports_.size());
  pn.type_hash = type.hash();
  // "Compile" the header into the system-wide library so any sender can
  // check against it.
  Status registered = runtime_->system().port_types().Register(type);
  if (!registered.ok()) {
    GLOG_ERROR << "port type registration failed: " << registered;
  }
  ports_.push_back(std::make_unique<Port>(pn, type, &mailbox_, capacity));
  if (provided) {
    provided_.push_back(pn.port_index);
  }
  return ports_.back().get();
}

void Guardian::RetirePort(Port* p) { p->Retire(); }

std::vector<PortName> Guardian::ProvidedPorts() const {
  std::lock_guard<std::mutex> lock(ports_mu_);
  std::vector<PortName> names;
  names.reserve(provided_.size());
  for (uint32_t index : provided_) {
    names.push_back(ports_[index]->name());
  }
  return names;
}

Port* Guardian::port(size_t i) const {
  std::lock_guard<std::mutex> lock(ports_mu_);
  assert(i < ports_.size());
  return ports_[i].get();
}

size_t Guardian::port_count() const {
  std::lock_guard<std::mutex> lock(ports_mu_);
  return ports_.size();
}

Port* Guardian::FindPort(uint32_t index) const {
  std::lock_guard<std::mutex> lock(ports_mu_);
  if (index >= ports_.size()) {
    return nullptr;
  }
  return ports_[index].get();
}

Status Guardian::Send(const PortName& to, const std::string& command,
                      ValueList args) {
  return SendFull(to, command, std::move(args), PortName{}, PortName{})
      .status();
}

Status Guardian::Send(const PortName& to, const std::string& command,
                      ValueList args, const PortName& reply_to) {
  return SendFull(to, command, std::move(args), reply_to, PortName{})
      .status();
}

Result<uint64_t> Guardian::SendFull(const PortName& to,
                                    const std::string& command,
                                    ValueList args, const PortName& reply_to,
                                    const PortName& ack_to,
                                    uint64_t dedup_seq,
                                    uint64_t deadline_micros) {
  Envelope env;
  env.msg_id = runtime_->NextMsgId();
  if (dedup_seq != 0) {
    // Tracked send: the receiver deduplicates on (session, seq), so every
    // retry of one logical operation must pass the same seq back in.
    env.session_id = runtime_->SendSession();
    env.dedup_seq = dedup_seq;
  }
  // Join the causal chain this process is working in, or start a new trace
  // (identified by this message's globally unique id) at an origin send.
  uint64_t trace_id = CurrentTraceId();
  if (trace_id == 0) {
    trace_id = env.msg_id;
    SetCurrentTraceId(trace_id);
  }
  env.trace_id = trace_id;
  env.src_node = runtime_->id();
  env.target = to;
  env.reply_to = reply_to;
  env.ack_to = ack_to;
  env.deadline_micros = deadline_micros;
  env.command = command;
  env.args = std::move(args);
  const uint64_t msg_id = env.msg_id;
  GUARDIANS_RETURN_IF_ERROR(runtime_->Transmit(std::move(env)));
  return msg_id;
}

Result<Received> Guardian::Receive(const std::vector<Port*>& ports,
                                   Micros timeout) {
  assert(!ports.empty());
  for (Port* p : ports) {
    assert(p->mailbox() == &mailbox_ &&
           "only processes within a guardian can receive from its ports");
    (void)p;
  }
  const bool infinite = timeout == Micros::max();
  const ClockSource& clock = runtime_->clock();
  const Deadline deadline = infinite ? Deadline::Infinite(&clock)
                                     : Deadline(timeout, &clock);
  std::unique_lock<std::mutex> lock(mailbox_.mu);
  // Priority scan of the port list, lazily discarding entries whose
  // propagated deadline budget died while they sat in the queue (§16): a
  // backed-up port drains dead work at dequeue speed instead of executing
  // it. Finishing a dead entry (failure nack, dedup rollback, metrics)
  // takes node locks, so it happens outside the mailbox lock; the caller
  // re-scans afterwards because the mailbox may have changed meanwhile.
  auto pop_live = [&](bool* discarded) -> std::optional<Received> {
    for (Port* p : ports) {
      while (p->HasMessageLocked()) {
        Received message = p->PopLocked();
        if (message.deadline_at != TimePoint::max() &&
            clock.Now() >= message.deadline_at) {
          lock.unlock();
          runtime_->FinishExpiredAtDequeue(std::move(message));
          lock.lock();
          *discarded = true;
          continue;
        }
        return message;
      }
    }
    return std::nullopt;
  };
  for (;;) {
    if (mailbox_.closed) {
      return Status(Code::kNodeDown, "guardian's node is down");
    }
    bool discarded = false;
    if (std::optional<Received> message = pop_live(&discarded)) {
      lock.unlock();
      runtime_->NoteReceived(*message);
      if (!message->ack_to.IsNull()) {
        // The synchronization send's receipt notification: the message
        // has now been received by the target process.
        runtime_->SendAck(*message);
      }
      return std::move(*message);
    }
    if (discarded) {
      // The mailbox lock was dropped while finishing dead entries; rescan
      // (and recheck closed) before deciding to wait.
      continue;
    }
    if (infinite) {
      clock.WaitOnce(mailbox_.cv, lock, TimePoint::max());
    } else {
      if (deadline.Expired() ||
          clock.WaitOnce(mailbox_.cv, lock, deadline.at())) {
        // Check once more: a message may have arrived with the timeout.
        discarded = false;
        if (std::optional<Received> message = pop_live(&discarded)) {
          lock.unlock();
          runtime_->NoteReceived(*message);
          if (!message->ack_to.IsNull()) {
            runtime_->SendAck(*message);
          }
          return std::move(*message);
        }
        if (mailbox_.closed) {
          return Status(Code::kNodeDown, "guardian's node is down");
        }
        return Status(Code::kTimeout,
                      "receive timed out; nothing is known about the true "
                      "state of affairs");
      }
    }
  }
}

namespace {
// Authenticator over a sealed handle: without the guardian-private seal,
// neither the handle nor the check field can be forged consistently.
uint64_t TokenMac(GuardianId owner, uint64_t seal, uint64_t sealed_handle) {
  uint64_t material[3] = {owner, seal, sealed_handle};
  return Fnv1a64(material, sizeof(material));
}
}  // namespace

Token Guardian::Seal(uint64_t handle) {
  Token t;
  t.owner = id_;
  t.handle = handle ^ seal_;  // hidden from everyone without the seal
  t.seal = TokenMac(id_, seal_, t.handle);
  return t;
}

Result<uint64_t> Guardian::Unseal(const Token& token) const {
  if (token.owner != id_ || token.seal != TokenMac(id_, seal_, token.handle)) {
    return Status(Code::kBadToken,
                  "token was not sealed by this guardian (or was sealed by a "
                  "previous incarnation)");
  }
  return token.handle ^ seal_;
}

void Guardian::Fork(std::string process_name, std::function<void()> body) {
  // Guardian processes run under the owning node's fault scope, so armed
  // crashpoints attribute their stable-storage work to the right node; a
  // triggered crashpoint throws to abandon the doomed operation and must
  // end the process here rather than escape into std::thread.
  NodeRuntime* node = runtime_;
  processes_.Fork(name_ + "/" + process_name,
                  [node, body = std::move(body)] {
                    ScopedFaultScope scope(node);
                    try {
                      body();
                    } catch (const CrashPointTriggered&) {
                      // The node is crashing; this process dies with it.
                    }
                  });
}

void Guardian::ReapProcesses() { processes_.Reap(); }

bool Guardian::Closed() const {
  std::lock_guard<std::mutex> lock(mailbox_.mu);
  return mailbox_.closed;
}

std::vector<Guardian::PortStat> Guardian::PortStats() const {
  std::lock_guard<std::mutex> lock(ports_mu_);
  std::vector<PortStat> stats;
  stats.reserve(ports_.size());
  for (const auto& p : ports_) {
    PortStat ps;
    ps.name = p->name().ToString();
    ps.type_name = p->type().name();
    ps.depth = p->depth();
    ps.capacity = p->capacity();
    ps.enqueued = p->enqueued();
    ps.discarded_full = p->discarded_full();
    ps.discarded_retired = p->discarded_retired();
    ps.control_overflow = p->control_overflow();
    ps.retired = p->retired();
    stats.push_back(std::move(ps));
  }
  return stats;
}

Wal* Guardian::OpenLog(const std::string& resource) {
  std::lock_guard<std::mutex> lock(wals_mu_);
  auto it = wals_.find(resource);
  if (it != wals_.end()) {
    return it->second.get();
  }
  auto wal = std::make_unique<Wal>(&runtime_->stable_store(),
                                   "g/" + name_ + "/" + resource);
  Wal* raw = wal.get();
  wals_.emplace(resource, std::move(wal));
  return raw;
}

void Guardian::CloseMailbox() {
  {
    std::lock_guard<std::mutex> lock(mailbox_.mu);
    mailbox_.closed = true;
  }
  mailbox_.cv.notify_all();
}

void Guardian::JoinProcesses() { processes_.JoinAll(); }

}  // namespace guardians
