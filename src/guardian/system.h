// System: a whole distributed system — the network plus its nodes, the
// shared guardian-header library (port types), and the system-wide wire
// limits (Section 3.3: "the meaning of a type must be fixed and invariant
// over all the nodes").
//
// In the paper this is the world itself; here it is the root object an
// application or experiment constructs. Everything inside is deterministic
// given the seed and the interleaving of real threads.
#ifndef GUARDIANS_SRC_GUARDIAN_SYSTEM_H_
#define GUARDIANS_SRC_GUARDIAN_SYSTEM_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/guardian/node_runtime.h"
#include "src/guardian/port_registry.h"
#include "src/net/flow.h"
#include "src/net/network.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/wire/limits.h"

namespace guardians {

struct SystemConfig {
  uint64_t seed = 1;
  WireLimits limits;
  LinkParams default_link;
  // Delivery worker threads in the network, sharded by destination node.
  // Drop/corruption outcomes are seed-deterministic at any worker count
  // (decided at Send time); this only changes delivery parallelism.
  size_t delivery_shards = Network::kDefaultShards;
  // Due packets a delivery worker drains per wake (DESIGN.md §12): the
  // shard lock, the destination node's reassembly/dedup/port locks, and
  // the receiver wake are paid once per batch instead of once per packet.
  // Outcome counts are bit-identical at every value (all loss/corruption/
  // duplication is decided at Send); 1 restores the exact pre-batching
  // one-packet-per-wake engine.
  size_t delivery_batch_max = Network::kDefaultBatchMax;
  // Credit-based flow control (DESIGN.md §11): per-(destination port) AIMD
  // windows paced by receiver-advertised credit.
  FlowControlConfig flow;
  // Capacity of the transient ack port SyncSend creates per call. Sized for
  // duplicate-ack storms: under dup_prob every retry of a tracked send can
  // earn a replacement ack, and a burst of stale acks must not evict the
  // real one (satellite bugfix — this was a hardcoded 4).
  size_t sync_ack_capacity = 64;
  // Time source selection (borrowed; must outlive the System). Null: the
  // wall clock, bit-for-bit the pre-virtual-time behaviour. Non-null: the
  // whole stack — network delivery heaps, flow-control holds, send
  // primitive deadlines and backoffs, reassembly expiry, supervisor polls
  // — runs on this simulated clock, and each node sees it through its own
  // per-node view (so chaos skew/drift events can make nodes disagree
  // about now).
  SimulatedClock* sim_clock = nullptr;
  // Receiver-side dedup-session GC: sessions with no tracked activity for
  // this long (on the node's clock) are dropped — bounded memory for
  // long-lived systems. 0 disables the sweep (the default; at-most-once
  // across arbitrary silence). Chaos runs enable it to expose clock-skew
  // interactions with the at-most-once window.
  Micros dedup_session_idle{0};
};

class System {
 public:
  explicit System(SystemConfig config = {});
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  // Boots a node (with its primordial guardian already running).
  NodeRuntime& AddNode(const std::string& name);

  NodeRuntime& node(NodeId id);
  size_t node_count() const;

  Network& network() { return network_; }
  // The system-wide (base) time source; never null.
  const ClockSource* clock() const { return clock_; }
  // The node's own view of time: a per-node skewable view when running on
  // a simulated clock, the shared base source otherwise.
  const ClockSource* clock_for_node(NodeId id) const;
  SimulatedClock* sim_clock() const { return config_.sim_clock; }
  PortTypeRegistry& port_types() { return port_types_; }
  const WireLimits& limits() const { return config_.limits; }
  const SystemConfig& config() const { return config_; }

  MetricsRegistry& metrics() { return metrics_; }
  TraceBuffer& traces() { return traces_; }

  // Node-health oracle, installed by an attached fault Supervisor (see
  // src/fault/supervisor.h) and consulted by FailoverCall: true when the
  // supervisor has quarantined the node as crash-looping. Kept as an
  // injected function so the send primitives need no fault-layer types.
  using HealthOracle = std::function<bool(NodeId)>;
  void SetHealthOracle(HealthOracle quarantined);
  // False when no oracle is installed (no supervisor: nothing is known).
  bool NodeQuarantined(NodeId id);

  // Quiescence barrier: block until the network drains AND stays drained —
  // no new packet is sent for `stable_rounds` consecutive `settle`-long
  // windows. DrainForTesting alone is not quiescence: a delivered message
  // may wake a guardian that replies, re-filling the network after the
  // drain returns. Chaos epochs check global invariants only at points
  // like this. Returns false if the system would not settle within
  // `deadline` (a guardian ping-ponging forever).
  bool WaitQuiescent(Micros deadline = Millis(5000),
                     Micros settle = Millis(1), int stable_rounds = 2);

  // Text snapshot of the whole system: every node's NodeRuntime::Report()
  // (port depths and drop reasons) plus the metrics registry dump and the
  // trace-buffer occupancy. What the benches and demos print.
  std::string Report();

  // Expire stale reassembly partials on every node now (the per-node
  // in-Add sweep only runs when packets arrive). Called by WaitQuiescent
  // and Report; callable directly from tests.
  void SweepReassemblers();

  // Mirror the process-global BufferStats copy/alloc counters into the
  // registry as `buffer.bytes_copied` / `buffer.allocs`. Delta-based: the
  // globals are process-wide (common cannot depend on obs), so each call
  // publishes only what accrued since this System's last sync. Called by
  // Report(); callable directly when scraping counters between reports.
  void SyncBufferStats();

 private:
  // Drain the network; on a simulated clock, step virtual time to the
  // next pending deadline whenever the drain stalls (packets heaped at
  // future virtual deliver_at instants only become due when stepped).
  void DrainNetwork(TimePoint wall_give_up);

  SystemConfig config_;
  const ClockSource* clock_;  // borrowed (or the shared WallClock)
  Rng rng_;
  // Observability must outlive (and be constructed before) the network and
  // the nodes: both cache Counter*/Histogram* pointers into the registry.
  MetricsRegistry metrics_;
  TraceBuffer traces_;
  Network network_;
  PortTypeRegistry port_types_;
  // Guards nodes_ (the supervisor scans from its own thread while tests
  // may still be adding nodes); NodeRuntime pointers themselves are stable.
  mutable std::mutex nodes_mu_;
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
  std::mutex oracle_mu_;
  HealthOracle quarantined_;
  // BufferStats values already published to the registry (guarded by
  // buffer_sync_mu_, so concurrent syncs never double-count a delta).
  std::mutex buffer_sync_mu_;
  uint64_t buffer_copied_synced_ = 0;
  uint64_t buffer_allocs_synced_ = 0;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_GUARDIAN_SYSTEM_H_
