#include "src/guardian/system.h"

#include <cassert>
#include <thread>

#include "src/common/buffer.h"

namespace guardians {

System::System(SystemConfig config)
    : config_(config),
      clock_(config.sim_clock != nullptr
                 ? static_cast<const ClockSource*>(config.sim_clock)
                 : WallClock::Get()),
      rng_(config.seed),
      network_(config.seed ^ 0xA5A5A5A5ull, &metrics_, &traces_,
               config.delivery_shards, config.delivery_batch_max, clock_) {
  network_.SetDefaultLink(config_.default_link);
  // System-defined port types every node may rely on.
  Status st = port_types_.Register(PrimordialPortType());
  assert(st.ok());
  st = port_types_.Register(CreationReplyPortType());
  assert(st.ok());
  st = port_types_.Register(AckPortType());
  assert(st.ok());
  (void)st;
}

System::~System() {
  // Stop nodes (joins all guardian processes) before the network dies.
  // (No nodes_mu_: a supervisor must be stopped before its System dies.)
  for (auto& node : nodes_) {
    node->Crash();
  }
  // Then stop the delivery workers before the member destructors free the
  // node runtimes: a sink call already in flight runs DeliverPacket on a
  // raw NodeRuntime*, and nodes_ (declared after network_) is destroyed
  // first.
  network_.Shutdown();
}

NodeRuntime& System::AddNode(const std::string& name) {
  const NodeId id = network_.AddNode(name);
  auto runtime = std::make_unique<NodeRuntime>(this, id, name, rng_.NextU64());
  NodeRuntime* raw = runtime.get();
  {
    std::lock_guard<std::mutex> lock(nodes_mu_);
    nodes_.push_back(std::move(runtime));
  }
  network_.SetBatchSink(id, [raw](std::vector<Packet>&& batch) {
    raw->DeliverBatch(std::move(batch));
  });
  Status booted = raw->Restart();
  assert(booted.ok());
  (void)booted;
  return *raw;
}

const ClockSource* System::clock_for_node(NodeId id) const {
  if (config_.sim_clock != nullptr) {
    return config_.sim_clock->NodeView(id);
  }
  return clock_;
}

NodeRuntime& System::node(NodeId id) {
  std::lock_guard<std::mutex> lock(nodes_mu_);
  assert(id >= 1 && id <= nodes_.size());
  return *nodes_[id - 1];
}

size_t System::node_count() const {
  std::lock_guard<std::mutex> lock(nodes_mu_);
  return nodes_.size();
}

void System::SetHealthOracle(HealthOracle quarantined) {
  std::lock_guard<std::mutex> lock(oracle_mu_);
  quarantined_ = std::move(quarantined);
}

bool System::NodeQuarantined(NodeId id) {
  HealthOracle oracle;
  {
    std::lock_guard<std::mutex> lock(oracle_mu_);
    oracle = quarantined_;
  }
  // Invoked outside the lock: the oracle takes the supervisor's own mutex.
  return oracle && oracle(id);
}

// The quiescence barrier is harness machinery, so its own budget and
// settle windows are *wall* time even on a simulated clock — but then the
// in-flight packets it waits for are scheduled at virtual deliver_at
// instants, so the barrier advances virtual time to the next pending
// deadline whenever the drain stalls (redundant, and harmless, when an
// auto-stepper is already driving the clock).
bool System::WaitQuiescent(Micros deadline, Micros settle,
                           int stable_rounds) {
  const TimePoint give_up = Now() + deadline;
  int rounds = 0;
  uint64_t last_sent = network_.stats().packets_sent;
  while (rounds < stable_rounds) {
    if (Now() > give_up) {
      return false;
    }
    DrainNetwork(give_up);
    std::this_thread::sleep_for(settle);
    if (config_.sim_clock != nullptr) {
      config_.sim_clock->AdvanceToNextDeadline();
    }
    const uint64_t sent = network_.stats().packets_sent;
    if (sent == last_sent) {
      ++rounds;
    } else {
      rounds = 0;
      last_sent = sent;
    }
  }
  DrainNetwork(give_up);
  SweepReassemblers();
  return true;
}

void System::SweepReassemblers() {
  // The in-Add reassembly sweep only runs when packets arrive, so a link
  // that goes idle after a lost fragment would pin its partials forever;
  // quiescence and reports are the natural moments to reclaim them.
  std::vector<NodeRuntime*> nodes;
  {
    std::lock_guard<std::mutex> lock(nodes_mu_);
    nodes.reserve(nodes_.size());
    for (auto& node : nodes_) {
      nodes.push_back(node.get());
    }
  }
  for (NodeRuntime* node : nodes) {
    node->SweepReassembler();
  }
}

void System::DrainNetwork(TimePoint wall_give_up) {
  if (config_.sim_clock == nullptr) {
    network_.DrainForTesting();
    return;
  }
  while (!network_.DrainForTesting(Millis(1))) {
    if (Now() > wall_give_up) {
      return;
    }
    config_.sim_clock->AdvanceToNextDeadline();
  }
}

void System::SyncBufferStats() {
  std::lock_guard<std::mutex> lock(buffer_sync_mu_);
  const uint64_t copied = BufferStats::BytesCopied();
  const uint64_t allocs = BufferStats::Allocs();
  if (copied > buffer_copied_synced_) {
    metrics_.counter("buffer.bytes_copied")->Inc(copied -
                                                 buffer_copied_synced_);
    buffer_copied_synced_ = copied;
  }
  if (allocs > buffer_allocs_synced_) {
    metrics_.counter("buffer.allocs")->Inc(allocs - buffer_allocs_synced_);
    buffer_allocs_synced_ = allocs;
  }
}

std::string System::Report() {
  SyncBufferStats();
  SweepReassemblers();
  std::string out = "=== system report ===\n";
  std::vector<NodeRuntime*> nodes;
  {
    std::lock_guard<std::mutex> lock(nodes_mu_);
    nodes.reserve(nodes_.size());
    for (auto& node : nodes_) {
      nodes.push_back(node.get());
    }
  }
  for (NodeRuntime* node : nodes) {
    out += node->Report();
  }
  out += metrics_.Report();
  out += "traces: " + std::to_string(traces_.trace_count()) + " held, " +
         std::to_string(traces_.evicted_traces()) + " evicted\n";
  return out;
}

}  // namespace guardians
