#include "src/guardian/system.h"

#include <cassert>

namespace guardians {

System::System(SystemConfig config)
    : config_(config), rng_(config.seed), network_(config.seed ^ 0xA5A5A5A5ull) {
  network_.SetDefaultLink(config_.default_link);
  // System-defined port types every node may rely on.
  Status st = port_types_.Register(PrimordialPortType());
  assert(st.ok());
  st = port_types_.Register(CreationReplyPortType());
  assert(st.ok());
  st = port_types_.Register(AckPortType());
  assert(st.ok());
  (void)st;
}

System::~System() {
  // Stop nodes (joins all guardian processes) before the network dies.
  for (auto& node : nodes_) {
    node->Crash();
  }
}

NodeRuntime& System::AddNode(const std::string& name) {
  const NodeId id = network_.AddNode(name);
  auto runtime = std::make_unique<NodeRuntime>(this, id, name, rng_.NextU64());
  NodeRuntime* raw = runtime.get();
  nodes_.push_back(std::move(runtime));
  network_.SetSink(id, [raw](const Packet& packet) {
    raw->DeliverPacket(packet);
  });
  Status booted = raw->Restart();
  assert(booted.ok());
  (void)booted;
  return *raw;
}

NodeRuntime& System::node(NodeId id) {
  assert(id >= 1 && id <= nodes_.size());
  return *nodes_[id - 1];
}

size_t System::node_count() const { return nodes_.size(); }

}  // namespace guardians
