// NodeRuntime: the abstract machine of one node — the part of the paper's
// system that "bears a strong resemblance to that provided by an operating
// system kernel".
//
// It owns the node's guardians, the primordial guardian ("each node comes
// into existence with a primordial guardian, which can create guardians at
// its node in response to messages arriving from guardians at other
// nodes"), the node's stable store, its transmittable-type registry, and
// the send/deliver paths with the exact Section 3.4 semantics:
//
//  - send: type-check against the guardian-header library, encode
//    arguments (left to right; an encode failure terminates the send),
//    construct the message, fragment into packets, hand to the network;
//    the sender continues immediately.
//  - deliver: reassemble, verify error-detection bits, decode with this
//    node's representations; if the target port or guardian doesn't exist
//    or the port has no room, throw the message away and — when it carried
//    a replyto port — send the system failure(...) message there.
//
// Crash() and Restart() implement the Section 2.2 fault model.
#ifndef GUARDIANS_SRC_GUARDIAN_NODE_RUNTIME_H_
#define GUARDIANS_SRC_GUARDIAN_NODE_RUNTIME_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/guardian/guardian.h"
#include "src/guardian/port_registry.h"
#include "src/net/flow.h"
#include "src/net/network.h"
#include "src/obs/metrics.h"
#include "src/store/stable_store.h"
#include "src/transmit/registry.h"
#include "src/wire/envelope.h"
#include "src/wire/packet.h"

namespace guardians {

class System;

// Messages delivered, discarded, synthesized — the observable behaviour of
// the Section 3.4 semantics, countable for experiments.
struct NodeStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t discarded_no_guardian = 0;
  uint64_t discarded_no_port = 0;
  uint64_t discarded_port_full = 0;
  // A retired (or crash-closed) port is a different loss event than a full
  // one: retrying the same name cannot help until the port is recreated.
  uint64_t discarded_port_retired = 0;
  uint64_t discarded_type_mismatch = 0;
  uint64_t discarded_decode_error = 0;
  uint64_t discarded_corrupt = 0;
  uint64_t failures_synthesized = 0;
  uint64_t acks_sent = 0;
  // At-most-once layer (DESIGN.md §10): tracked messages recognised as
  // re-deliveries and thrown away instead of executed; how many of those
  // were answered from the reply cache; replies journaled for crash
  // survival. `messages_delivered` counts *executions*, so under dup_prob
  // or retries it stays below the network's delivered-packet count.
  uint64_t duplicates_suppressed = 0;
  uint64_t replies_replayed = 0;
  uint64_t replies_journaled = 0;
  // Deadline-aware load shedding (DESIGN.md §16): envelopes whose
  // propagated budget was already spent on arrival (shed before the dedup
  // gate, never marked, never executed), and queued entries whose budget
  // died while waiting in a port (discarded at dequeue, dedup mark rolled
  // back). Both synthesize the §3.4 failure reply toward ack_to/reply_to.
  uint64_t expired_shed = 0;
  uint64_t expired_dequeue = 0;
};

class NodeRuntime {
 public:
  // Constructed by System::AddNode.
  NodeRuntime(System* system, NodeId id, std::string name, uint64_t seed);
  ~NodeRuntime();

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  // --- Identity & components -------------------------------------------------
  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  System& system() { return *system_; }
  // This node's view of time. Everything the node does with time — send
  // deadlines, retry backoffs, reassembly ages, dedup-session idleness —
  // goes through here, so a simulated clock (with per-node skew) governs
  // the whole node.
  const ClockSource& clock() const { return *clock_; }
  StableStore& stable_store() { return stable_store_; }
  TransmitRegistry& transmit_registry() { return transmit_registry_; }

  // --- Guardian types & autonomy ----------------------------------------------
  // The owner of the node declares which guardian programs may run here.
  using Factory = std::function<std::unique_ptr<Guardian>()>;
  void RegisterGuardianType(const std::string& type_name, Factory factory);
  bool KnowsGuardianType(const std::string& type_name) const;

  // Owner policy consulted by the primordial guardian for remote creation
  // requests (Section 1.1 autonomy). Default: allow all registered types.
  using AdmissionPolicy =
      std::function<bool(const std::string& type_name, NodeId requester)>;
  void SetAdmissionPolicy(AdmissionPolicy policy);

  // --- Guardian creation (local) -----------------------------------------------
  // "The node at which a guardian is created is the node where it will
  //  exist for its lifetime. It must have been created by a guardian at
  //  that node." This API is only reachable from code running at this
  //  node; remote parties go through the primordial guardian.
  // Persistent guardians are re-created (via Recover) after a crash.
  Result<Guardian*> CreateGuardian(const std::string& type_name,
                                   const std::string& guardian_name,
                                   const ValueList& args,
                                   bool persistent = false);
  template <typename T>
  Result<T*> Create(const std::string& type_name,
                    const std::string& guardian_name, const ValueList& args,
                    bool persistent = false) {
    auto g = CreateGuardian(type_name, guardian_name, args, persistent);
    if (!g.ok()) {
      return g.status();
    }
    return static_cast<T*>(*g);
  }

  // Creation on behalf of a remote requester; consults the admission
  // policy. Called by the primordial guardian.
  Result<Guardian*> CreateGuardianForRemote(const std::string& type_name,
                                            const std::string& guardian_name,
                                            const ValueList& args,
                                            bool persistent, NodeId requester);

  // A guardian may self-destruct or be destroyed by a co-located guardian.
  Status DestroyGuardian(GuardianId gid);

  Guardian* FindGuardian(GuardianId gid) const;
  // First live guardian attached with this (non-empty) name; creation
  // idempotence keys on it so a retried create_guardian converges on the
  // guardian the first execution made.
  Guardian* FindGuardianByName(const std::string& guardian_name) const;
  // The port other nodes use to reach this node's primordial guardian.
  PortName PrimordialPort() const;

  // --- Crash & recovery (Section 2.2) -------------------------------------------
  // Power-fail: volatile state of every guardian is destroyed, processes
  // stop, in-flight traffic to the node is lost. The stable store survives.
  // Equivalent to BeginCrash() + FinishCrash().
  void Crash();
  // The crash split in two, so a crashpoint firing *on a guardian thread*
  // can take the node down without self-joining. BeginCrash marks the node
  // down and closes every mailbox (safe from any thread, including the
  // crashing one); FinishCrash joins the processes and retires the dead
  // incarnation's guardians, and must come from outside the node (a test,
  // the supervisor, or the next Crash()/Restart(), which both imply it).
  void BeginCrash();
  void FinishCrash();
  // Boot: recreate the primordial guardian, then every persistent guardian
  // (same ids), running their recovery processes.
  Status Restart();
  bool IsUp() const { return up_.load(); }

  NodeStats stats() const;
  // Text snapshot of this node: NodeStats plus every live guardian's port
  // depths and drop reasons. One section of System::Report().
  std::string Report() const;

  // --- Transport internals (used by Guardian and the send primitives) ----------
  Status Transmit(Envelope env);
  uint64_t NextMsgId();
  // At-most-once sender identity. The session id names this incarnation of
  // the node (random per Restart, so pre-crash seqs can never collide with
  // post-crash ones); each tracked logical operation draws one sequence
  // number and reuses it across every retry — that is what makes the
  // retries recognisable as duplicates at the receiver.
  uint64_t SendSession() const { return send_session_.load(); }
  uint64_t NextDedupSeq() { return dedup_seq_.fetch_add(1) + 1; }
  // Planted-bug switch for the chaos harness: when true, MaybeJournalReply
  // skips the durable dedup-journal append (the in-memory table and reply
  // cache still work). Across a crash the at-most-once floor is then lost,
  // so a post-recovery duplicate of a completed operation re-executes —
  // exactly the violation the chaos shrinker must isolate. Process-wide,
  // tests only; never set in production paths.
  static void SetSkipDedupJournalForTesting(bool skip);
  // Second planted-bug switch: when true, the dedup-session idle sweep
  // measures idleness against the node's *local* (skewable) clock, while
  // activity stamps use the system's monotonic base clock — the classic
  // TTL-on-wall-clock bug. A forward skew step of at least the idle
  // horizon then makes every live session look idle: the sweep forgets
  // the at-most-once window and the next duplicate of a completed op
  // re-executes. The correct sweep (flag off) measures stamps and ages on
  // the same monotonic base clock, so no skew can misfire it. Under the
  // wall clock node views equal the base clock and the flag changes
  // nothing — only a simulated-time skew schedule can expose it.
  // Process-wide, tests only.
  static void SetDedupSweepOnLocalClockForTesting(bool local);
  // `trace_id` ties the synthesized failure into the lost message's trace.
  void SendSystemFailure(const PortName& to, const std::string& reason,
                         uint64_t trace_id = 0);
  void SendAck(const Received& message);
  // The sender half of credit-based flow control (DESIGN.md §11): the
  // per-(destination port) AIMD windows this node's send primitives pace
  // against. Fed by piggybacked credit on incoming acks and by full-port
  // nacks, both consumed on this node's delivery path.
  FlowController& flow() { return flow_; }
  // Called by Guardian::Receive when a message is dequeued: counts it,
  // records the trace hop, and makes the message's trace the thread's
  // current trace (so replies join the sender's causal chain) and the
  // message's deadline the thread's inherited deadline (so nested sends
  // clamp to it).
  void NoteReceived(const Received& message);
  // Called by Guardian::Receive (outside the mailbox lock) for a dequeued
  // entry whose deadline budget died in the queue: counts/traces the
  // discard, rolls back the dedup mark so an in-deadline retry of the same
  // (session, seq) still executes exactly once, and sends the §3.4 failure
  // reply toward ack_to/reply_to.
  void FinishExpiredAtDequeue(Received message);
  // Expire stale reassembly partials now (the in-Add amortized sweep only
  // runs when packets arrive, so a link gone idle after a lost fragment
  // would pin its partials forever). Called from System::WaitQuiescent and
  // Report; safe from any thread.
  void SweepReassembler();
  Rng ForkRng();

 private:
  friend class System;

  // Sink of the network's delivery workers: one call per (this node,
  // drained batch), packets in delivery order. Consumes the batch (payloads
  // move into the reassembler, then the decoded envelopes move into their
  // target ports) — no copy of the message bytes or argument values on the
  // delivery path. Batching (DESIGN.md §12) amortizes this node's locks:
  // one reassembler acquisition per batch, one dedup-gate acquisition per
  // batch, one mailbox acquisition + receiver wake per run of same-port
  // envelopes, and per-port flow credit coalesced into one window update.
  void DeliverBatch(std::vector<Packet>&& batch);
  // Convenience wrapper: a batch of one (tests and standalone callers).
  void DeliverPacket(Packet&& packet);
  // Consume the batch's piggybacked flow feedback in arrival order,
  // coalescing each port's credit run into one OnCreditBatch and flushing
  // a port's run before any nack for that port (per-port order is the only
  // order a window can observe).
  void ApplyFlowFeedback(const std::vector<Envelope>& envelopes);
  // Route every decoded envelope of one batch: resolve targets, shed
  // already-expired envelopes (before the dedup gate — an expired arrival
  // is never marked seen), run the one-acquisition dedup gate, then
  // execute pushes / failure replies / duplicate suppressions in batch
  // order. `remaining_micros` parallels `envelopes`: the per-envelope
  // deadline budget left after subtracting observed network age
  // (kNoDeadlineRemaining = unbudgeted).
  void DispatchEnvelopes(std::vector<Envelope> envelopes,
                         std::vector<int64_t> remaining_micros);
  Result<Guardian*> CreateGuardianImpl(const std::string& type_name,
                                       const std::string& guardian_name,
                                       const ValueList& args, bool persistent);
  Status DestroyGuardianImpl(GuardianId gid);
  Status RestartImpl();
  std::vector<Guardian*> LiveGuardians() const;
  Status StartGuardian(Guardian* guardian, const std::string& type_name,
                       const std::string& guardian_name, GuardianId gid,
                       const ValueList& args, bool recovering);
  void PersistCreation(const std::string& type_name,
                       const std::string& guardian_name, GuardianId gid,
                       const ValueList& args);
  void PersistNextId();
  // If `env` answers a pending tracked request, journal it through the
  // dedup Wal (before it reaches the network — log-then-reply) and cache
  // it for replay. Runs on the replying guardian's thread.
  void MaybeJournalReply(const Envelope& env);
  // Rebuild the dedup table from the journal at boot.
  Status RecoverDedup();
  // Why a resolution failed; names the drop bucket and failure text.
  enum class DropKind : uint8_t { kNoGuardian, kNoPort, kTypeMismatch };
  // Count/trace an unroutable envelope and send its failure(...) reply.
  void FinishUnroutable(const Envelope& env, DropKind kind);
  // Count/trace a push failure, roll back the dedup mark so a retry can
  // land, and send the failure reply (or the §11 flow nack on kFull).
  void FinishPushFailed(const Envelope& env, const Port& port,
                        PushResult pushed);
  // Complete a recognised re-delivery using the dedup gate's verdict:
  // count it, send a replacement ack if the original was dequeued, and
  // answer from the reply cache on kReplay.
  void FinishSuppressed(const Envelope& env, DedupTable::Verdict verdict,
                        DedupTable::CachedReply replay, bool original_acked);
  // Count/trace an envelope shed on arrival because its propagated budget
  // was already spent, and send the §3.4 failure reply (ack_to first, so a
  // waiting SyncSend learns immediately; reply_to otherwise).
  void FinishExpired(const Envelope& env);
  // The full-port loss event as a flow-control signal: a failure envelope
  // whose fc fields carry the port's queue depth and capacity, sent to the
  // sender's ack port when it has one (the send primitives wait there) or
  // its reply port otherwise. Only used when flow control is enabled.
  void SendFlowNack(const Envelope& dropped, const Port& port);
  // Best-effort receiver state for stamping credit onto a replacement ack
  // (the original Received is gone; look the port up again).
  void StampFlowCredit(Envelope& ack, const PortName& about);

  System* system_;
  const NodeId id_;
  const std::string name_;
  const ClockSource* clock_;  // borrowed from system (per-node view)

  StableStore stable_store_;
  TransmitRegistry transmit_registry_;

  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
  AdmissionPolicy admission_policy_;
  std::map<GuardianId, std::unique_ptr<Guardian>> guardians_;
  // Crashed guardians are retired here rather than destroyed: application
  // threads may still hold pointers and be blocked in Receive on them (they
  // observe kNodeDown). Volatile *state* is what a crash destroys; the
  // husk objects are reclaimed when the node itself goes away.
  std::vector<std::unique_ptr<Guardian>> graveyard_;
  GuardianId next_guardian_id_ = 2;  // 1 is the primordial guardian
  Rng rng_;

  std::mutex reassembler_mu_;
  Reassembler reassembler_;

  std::atomic<bool> up_{false};
  // Crash progress, ordered with up_: BeginCrash publishes kCrashBeginning
  // *before* clearing up_, so any observer of a down node sees a state
  // FinishCrash can wait on (no window where the node looks down but a
  // concurrent Restart could boot under a still-running BeginCrash).
  enum : int { kNoCrash = 0, kCrashBeginning = 1, kCrashBegun = 2 };
  std::atomic<int> crash_state_{kNoCrash};
  std::atomic<uint64_t> msg_counter_{0};

  // --- At-most-once receiver/sender state -----------------------------------
  // dedup_mu_ guards the table and the pending-reply map; it is never held
  // across a Transmit (a cached reply is copied out, then resent outside
  // the lock, so the journal path cannot deadlock against delivery).
  mutable std::mutex dedup_mu_;
  DedupTable dedup_;
  TimePoint dedup_last_sweep_{};  // idle-GC cadence; guarded by dedup_mu_
  struct PendingReply {
    uint64_t session = 0;
    uint64_t seq = 0;
  };
  // reply port of an executing tracked request -> its dedup identity;
  // filled when the request is enqueued, consumed by the first send the
  // node makes to that port (the reply).
  std::unordered_map<PortName, PendingReply, PortNameHash> pending_replies_;
  std::atomic<uint64_t> send_session_{0};
  std::atomic<uint64_t> dedup_seq_{0};
  // Serializes appends/compactions of the dedup journal (several guardian
  // threads may reply concurrently). Ordered before dedup_mu_ when both
  // are needed; never held while touching a mailbox or the network.
  std::mutex dedup_log_mu_;
  uint64_t dedup_appends_since_compact_ = 0;  // guarded by dedup_log_mu_

  mutable std::mutex stats_mu_;
  NodeStats stats_;

  // System-wide delivery/drop counters, resolved once at construction so
  // the delivery path's updates are single relaxed atomics.
  struct DeliveryCounters {
    Counter* sent = nullptr;
    Counter* delivered = nullptr;
    Counter* receives = nullptr;
    Counter* drop_no_guardian = nullptr;
    Counter* drop_no_port = nullptr;
    Counter* drop_port_retired = nullptr;
    Counter* drop_port_full = nullptr;
    Counter* drop_type_mismatch = nullptr;
    Counter* drop_decode_error = nullptr;
    Counter* drop_corrupt_fragment = nullptr;
    Counter* failures_synthesized = nullptr;
    Counter* acks_sent = nullptr;
    Counter* dup_suppressed = nullptr;
    Counter* dup_replayed = nullptr;
    Counter* dedup_journaled = nullptr;
    // Dedup sessions dropped by the idle GC (config dedup_session_idle).
    Counter* dedup_sessions_expired = nullptr;
    // Control messages admitted into port headroom above capacity — how
    // often the control-vs-data shedding policy actually fired.
    Counter* control_overflow = nullptr;
    // fc_full nacks shed at a full-headroom ack port: the sender lost the
    // fast congestion signal and degrades to its plain ack timeout.
    Counter* nacks_shed = nullptr;
    // Reassembler hygiene: partials discarded by the age sweep and by a
    // source's incarnation change (mirrored out of the per-node
    // Reassembler's own counters after each batch).
    Counter* reassembly_expired = nullptr;
    Counter* reassembly_session_dropped = nullptr;
    // Deadline shedding (§16): arrivals whose budget was spent in the
    // network (shed before dedup/dispatch) and queued entries whose budget
    // died in a port (discarded at dequeue).
    Counter* expired_shed = nullptr;
    Counter* expired_dequeue = nullptr;
  };
  DeliveryCounters counters_;

  // Sender-side flow control state. Shut down with the node (waiters must
  // not outlive a crash), reset on restart (the peers' ports may be gone).
  FlowController flow_;
};

// Factory helper: MakeFactory<MyGuardian>() for RegisterGuardianType.
template <typename T>
NodeRuntime::Factory MakeFactory() {
  return [] { return std::make_unique<T>(); };
}

// A guardian with no behaviour of its own; used to *drive* a node from
// application or test code (every send must come from some guardian at some
// node — there is no thin air in this system).
class ShellGuardian : public Guardian {};

// Port type of every primordial guardian.
PortType PrimordialPortType();
// Port type for replies to create_guardian / ping.
PortType CreationReplyPortType();
// Port type of the hidden acknowledgement port of the synchronization send.
PortType AckPortType();

}  // namespace guardians

#endif  // GUARDIANS_SRC_GUARDIAN_NODE_RUNTIME_H_
