#include "src/guardian/port.h"

namespace guardians {

PushResult Port::Push(Received&& message) {
  {
    std::lock_guard<std::mutex> lock(mailbox_->mu);
    if (retired_ || mailbox_->closed) {
      ++discarded_retired_;
      return PushResult::kRetired;
    }
    if (queue_.size() >= capacity_) {
      ++discarded_full_;
      return PushResult::kFull;
    }
    message.port = this;
    queue_.push_back(std::move(message));
    ++enqueued_;
  }
  mailbox_->cv.notify_all();
  return PushResult::kOk;
}

void Port::Retire() {
  std::lock_guard<std::mutex> lock(mailbox_->mu);
  retired_ = true;
  queue_.clear();
}

bool Port::retired() const {
  std::lock_guard<std::mutex> lock(mailbox_->mu);
  return retired_;
}

Received Port::PopLocked() {
  Received message = std::move(queue_.front());
  queue_.pop_front();
  return message;
}

uint64_t Port::enqueued() const {
  std::lock_guard<std::mutex> lock(mailbox_->mu);
  return enqueued_;
}

uint64_t Port::discarded_full() const {
  std::lock_guard<std::mutex> lock(mailbox_->mu);
  return discarded_full_;
}

uint64_t Port::discarded_retired() const {
  std::lock_guard<std::mutex> lock(mailbox_->mu);
  return discarded_retired_;
}

size_t Port::depth() const {
  std::lock_guard<std::mutex> lock(mailbox_->mu);
  return queue_.size();
}

}  // namespace guardians
