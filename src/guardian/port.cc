#include "src/guardian/port.h"

#include <algorithm>

namespace guardians {

Port::PushOutcome Port::PushLocked(Received&& message, bool control) {
  PushOutcome out;
  if (retired_ || mailbox_->closed) {
    ++discarded_retired_;
    out.result = PushResult::kRetired;
    return out;
  }
  if (queue_.size() >= capacity_) {
    // Control traffic (acks, failure nacks, probes) is the backpressure
    // signal itself; shedding it would make overload look like more
    // overload. Admit it into the bounded headroom above capacity.
    if (!control || queue_.size() >= capacity_ + kControlHeadroom) {
      ++discarded_full_;
      out.result = PushResult::kFull;
      return out;
    }
    ++control_overflow_;
    out.via_headroom = true;
  }
  message.port = this;
  queue_.push_back(std::move(message));
  ++enqueued_;
  return out;
}

PushResult Port::Push(Received&& message, bool control) {
  PushOutcome out;
  {
    std::lock_guard<std::mutex> lock(mailbox_->mu);
    out = PushLocked(std::move(message), control);
  }
  if (out.result == PushResult::kOk) {
    mailbox_->cv.notify_all();
  }
  return out.result;
}

std::vector<Port::PushOutcome> Port::PushBatch(
    std::vector<Received>&& messages, bool control) {
  std::vector<PushOutcome> outcomes;
  outcomes.reserve(messages.size());
  bool any_ok = false;
  {
    std::lock_guard<std::mutex> lock(mailbox_->mu);
    for (Received& message : messages) {
      outcomes.push_back(PushLocked(std::move(message), control));
      any_ok = any_ok || outcomes.back().result == PushResult::kOk;
    }
  }
  if (any_ok) {
    mailbox_->cv.notify_all();
  }
  return outcomes;
}

void Port::Retire() {
  std::lock_guard<std::mutex> lock(mailbox_->mu);
  retired_ = true;
  // Messages already enqueued die here; without this line they vanished
  // from the drop ledger entirely (enqueued but neither received nor
  // counted in any discard bucket).
  discarded_retired_ += queue_.size();
  queue_.clear();
}

bool Port::retired() const {
  std::lock_guard<std::mutex> lock(mailbox_->mu);
  return retired_;
}

Received Port::PopLocked() {
  Received message = std::move(queue_.front());
  queue_.pop_front();
  return message;
}

uint64_t Port::enqueued() const {
  std::lock_guard<std::mutex> lock(mailbox_->mu);
  return enqueued_;
}

uint64_t Port::discarded_full() const {
  std::lock_guard<std::mutex> lock(mailbox_->mu);
  return discarded_full_;
}

uint64_t Port::discarded_retired() const {
  std::lock_guard<std::mutex> lock(mailbox_->mu);
  return discarded_retired_;
}

uint64_t Port::control_overflow() const {
  std::lock_guard<std::mutex> lock(mailbox_->mu);
  return control_overflow_;
}

size_t Port::depth() const {
  std::lock_guard<std::mutex> lock(mailbox_->mu);
  return queue_.size();
}

DedupTable::Verdict DedupTable::Classify(uint64_t session, uint64_t seq,
                                         CachedReply* replay) const {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Verdict::kFresh;
  }
  const Session& s = it->second;
  const bool seen = seq <= s.floor || s.seen.count(seq) > 0;
  if (!seen) {
    return Verdict::kFresh;
  }
  auto reply = replies_.find(Key{session, seq});
  if (reply == replies_.end()) {
    return Verdict::kDuplicate;
  }
  if (replay != nullptr) {
    *replay = reply->second;
  }
  return Verdict::kReplay;
}

void DedupTable::MarkSeen(uint64_t session, uint64_t seq) {
  Session& s = sessions_[session];
  s.seen.insert(seq);
  if (seq > s.high_water) {
    s.high_water = seq;
  }
  // Slide the window: everything at or below the floor is implicitly seen,
  // so the set only holds the (window)-many most recent seqs.
  if (s.high_water > config_.window) {
    s.floor = std::max(s.floor, s.high_water - config_.window);
  }
  while (!s.seen.empty() && *s.seen.begin() <= s.floor) {
    s.seen.erase(s.seen.begin());
  }
  while (!s.acked.empty() && *s.acked.begin() <= s.floor) {
    s.acked.erase(s.acked.begin());
  }
}

void DedupTable::Unmark(uint64_t session, uint64_t seq) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return;
  }
  // The high-water mark stays where MarkSeen left it — at worst the floor
  // is conservatively high, which only drops (never re-executes) seqs.
  it->second.seen.erase(seq);
  it->second.acked.erase(seq);
}

void DedupTable::MarkAcked(uint64_t session, uint64_t seq) {
  auto it = sessions_.find(session);
  if (it == sessions_.end() || seq <= it->second.floor) {
    return;  // at or below the floor: Acked() already reports true
  }
  it->second.acked.insert(seq);
}

bool DedupTable::Acked(uint64_t session, uint64_t seq) const {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return false;
  }
  return seq <= it->second.floor || it->second.acked.count(seq) > 0;
}

void DedupTable::RestoreFloor(uint64_t session, uint64_t floor) {
  Session& s = sessions_[session];
  s.floor = std::max(s.floor, floor);
  s.high_water = std::max(s.high_water, floor);
  while (!s.seen.empty() && *s.seen.begin() <= s.floor) {
    s.seen.erase(s.seen.begin());
  }
  while (!s.acked.empty() && *s.acked.begin() <= s.floor) {
    s.acked.erase(s.acked.begin());
  }
}

void DedupTable::CacheReply(uint64_t session, uint64_t seq,
                            CachedReply reply) {
  MarkSeen(session, seq);
  const Key key{session, seq};
  auto [it, inserted] = replies_.emplace(key, std::move(reply));
  if (!inserted) {
    return;  // already cached (journal replay after recovery)
  }
  reply_fifo_.push_back(key);
  while (replies_.size() > config_.reply_cache_capacity) {
    replies_.erase(reply_fifo_.front());
    reply_fifo_.pop_front();
  }
}

uint64_t DedupTable::HighWater(uint64_t session) const {
  auto it = sessions_.find(session);
  return it != sessions_.end() ? it->second.high_water : 0;
}

std::vector<std::pair<std::pair<uint64_t, uint64_t>, DedupTable::CachedReply>>
DedupTable::Snapshot() const {
  std::vector<std::pair<Key, CachedReply>> out;
  out.reserve(reply_fifo_.size());
  for (const Key& key : reply_fifo_) {
    auto it = replies_.find(key);
    if (it != replies_.end()) {
      out.emplace_back(key, it->second);
    }
  }
  return out;
}

void DedupTable::Touch(uint64_t session, TimePoint now) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return;  // only stamp sessions some Mark/Cache call created
  }
  if (now > it->second.last_touch) {
    it->second.last_touch = now;
  }
}

size_t DedupTable::ExpireIdleSessions(TimePoint now, Micros idle) {
  size_t dropped = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    const TimePoint stamp = it->second.last_touch;
    // Never-stamped sessions (journal recovery) age from epoch zero and
    // are collectable like any other; future stamps clamp to zero age.
    const Micros age = now <= stamp
                           ? Micros(0)
                           : std::chrono::duration_cast<Micros>(now - stamp);
    if (age < idle) {
      ++it;
      continue;
    }
    const uint64_t session = it->first;
    it = sessions_.erase(it);
    ++dropped;
    for (auto r = reply_fifo_.begin(); r != reply_fifo_.end();) {
      if (r->first == session) {
        replies_.erase(*r);
        r = reply_fifo_.erase(r);
      } else {
        ++r;
      }
    }
  }
  return dropped;
}

void DedupTable::Clear() {
  sessions_.clear();
  replies_.clear();
  reply_fifo_.clear();
}

}  // namespace guardians
