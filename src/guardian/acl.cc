#include "src/guardian/acl.h"

namespace guardians {

void AccessControlList::Grant(const std::string& principal,
                              const std::string& right) {
  std::lock_guard<std::mutex> lock(mu_);
  grants_[principal].insert(right);
}

void AccessControlList::Revoke(const std::string& principal,
                               const std::string& right) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = grants_.find(principal);
  if (it != grants_.end()) {
    it->second.erase(right);
  }
}

bool AccessControlList::Allows(const std::string& principal,
                               const std::string& right) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = grants_.find(principal);
  if (it != grants_.end() && it->second.count(right) > 0) {
    return true;
  }
  auto any = grants_.find("*");
  return any != grants_.end() && any->second.count(right) > 0;
}

Status AccessControlList::Check(const std::string& principal,
                                const std::string& right) const {
  if (Allows(principal, right)) {
    return OkStatus();
  }
  return Status(Code::kPermissionDenied,
                "principal '" + principal + "' lacks right '" + right + "'");
}

}  // namespace guardians
