// Guardian (Section 2.1): the modular unit of a distributed program.
//
// "A guardian consists of objects and processes... A guardian exists
//  entirely at a single node of the underlying distributed system...
//  Processes in different guardians can communicate only by sending
//  messages... a guardian is an abstraction of a physical node."
//
// Library users subclass Guardian:
//   - Setup(args) runs at creation: add ports, initialize objects, fork
//     processes.
//   - Recover() runs instead of Setup after a node crash, for guardians
//     created persistent: replay logs (Section 2.2), recreate the same
//     ports (port names are deterministic so pre-crash names stay valid).
//   - Main() is forked as the guardian's initial process after Setup or
//     Recover succeeds.
//
// Guardians are created only through NodeRuntime (locally) or through the
// target node's primordial guardian (remotely) — never directly — which is
// how the system preserves node autonomy.
#ifndef GUARDIANS_SRC_GUARDIAN_GUARDIAN_H_
#define GUARDIANS_SRC_GUARDIAN_GUARDIAN_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/guardian/port.h"
#include "src/runtime/process.h"
#include "src/store/wal.h"
#include "src/value/port_type.h"
#include "src/value/token.h"

namespace guardians {

class NodeRuntime;

class Guardian {
 public:
  virtual ~Guardian() = default;

  Guardian(const Guardian&) = delete;
  Guardian& operator=(const Guardian&) = delete;

  // --- Identity -------------------------------------------------------------
  GuardianId id() const { return id_; }
  NodeId node() const;
  const std::string& name() const { return name_; }
  NodeRuntime& runtime() { return *runtime_; }
  // True when this guardian was created persistent (it will be re-created
  // and recovered after a node crash).
  bool IsPersistent() const { return persistent_; }
  void MarkPersistent(bool persistent) { persistent_ = persistent; }

  // --- Lifecycle (overridden by subclasses) ---------------------------------
  // Fresh creation. Add ports and initialize the guarded resource here.
  virtual Status Setup(const ValueList& args) {
    (void)args;
    return OkStatus();
  }
  // Crash recovery (persistent guardians only): rebuild volatile state from
  // the guardian's logs. `args` are the original creation arguments (the
  // system persists them with the creation record). Must recreate the same
  // ports in the same order as Setup so that pre-crash port names remain
  // valid.
  virtual Status Recover(const ValueList& args) { return Setup(args); }
  // The guardian's initial process; forked after Setup/Recover succeeds.
  virtual void Main() {}

  // --- Ports ----------------------------------------------------------------
  // Adds a port of the given type. `provided` ports are the ones whose
  // names are handed back from guardian creation (the `provides` clause of
  // a guardian definition header). The port's type is registered in the
  // system's guardian-header library automatically.
  Port* AddPort(const PortType& type,
                size_t capacity = Port::kDefaultCapacity,
                bool provided = false);
  // Retire an ephemeral port (e.g. a per-request reply port).
  void RetirePort(Port* port);
  std::vector<PortName> ProvidedPorts() const;
  Port* port(size_t i) const;
  size_t port_count() const;

  // --- Communication (Section 3.4) ------------------------------------------
  // The no-wait send: returns as soon as the message is composed and handed
  // to the system. Errors are local ones only (type error, encode failure,
  // node down) — delivery is never guaranteed.
  Status Send(const PortName& to, const std::string& command, ValueList args);
  Status Send(const PortName& to, const std::string& command, ValueList args,
              const PortName& reply_to);
  // Full form used by the higher-level send primitives; returns the message
  // id so a receipt acknowledgement can be matched to the send. A nonzero
  // `dedup_seq` (from NodeRuntime::NextDedupSeq) makes the send *tracked*:
  // the envelope carries this node's at-most-once session and the given
  // sequence number, and the receiving node suppresses re-deliveries —
  // retries of one logical operation must reuse one seq. A nonzero
  // `deadline_micros` stamps the remaining deadline budget (§16) onto the
  // envelope: the receiver decrements it by observed network age and sheds
  // the message instead of executing it once the budget is gone.
  Result<uint64_t> SendFull(const PortName& to, const std::string& command,
                            ValueList args, const PortName& reply_to,
                            const PortName& ack_to, uint64_t dedup_seq = 0,
                            uint64_t deadline_micros = 0);

  // receive on <port list> ... with timeout. Ports are scanned in list
  // order — that is the priority rule. All ports must belong to this
  // guardian. Micros::max() waits forever (until node shutdown).
  Result<Received> Receive(const std::vector<Port*>& ports, Micros timeout);
  Result<Received> Receive(Port* port, Micros timeout) {
    return Receive(std::vector<Port*>{port}, timeout);
  }

  // --- Tokens (Section 2.1) ---------------------------------------------------
  // Seal an object handle into a token others can hold but not open.
  Token Seal(uint64_t handle);
  // kBadToken unless this guardian's current incarnation sealed it. (A
  // crash re-seals: the system makes no guarantee that the object named by
  // a token continues to exist; only the guardian can.)
  Result<uint64_t> Unseal(const Token& token) const;

  // --- Processes --------------------------------------------------------------
  void Fork(std::string process_name, std::function<void()> body);
  // Join and release finished processes; guardians that fork one process
  // per request (Figure 1c) call this periodically.
  void ReapProcesses();
  // True once the node has crashed or is shutting down; long-running
  // processes use receives (which fail fast) or poll this.
  bool Closed() const;

  // --- Observability -----------------------------------------------------------
  // Snapshot of every port's queue depth and drop reasons, for
  // NodeRuntime::Report() / System::Report().
  struct PortStat {
    std::string name;
    std::string type_name;
    size_t depth = 0;
    size_t capacity = 0;
    uint64_t enqueued = 0;
    uint64_t discarded_full = 0;
    uint64_t discarded_retired = 0;
    uint64_t control_overflow = 0;
    bool retired = false;
  };
  std::vector<PortStat> PortStats() const;

  // --- Permanence (Section 2.2) -----------------------------------------------
  // A write-ahead log in the node's stable store, named by guardian name +
  // resource so it survives crashes and is found again by Recover().
  Wal* OpenLog(const std::string& resource);

  // --- Runtime internals (called by NodeRuntime) --------------------------------
  void Attach(NodeRuntime* rt, GuardianId gid, std::string gname,
              uint64_t seal);
  Mailbox& mailbox() { return mailbox_; }
  Port* FindPort(uint32_t index) const;
  void CloseMailbox();
  void JoinProcesses();

 protected:
  Guardian() = default;

 private:
  NodeRuntime* runtime_ = nullptr;
  GuardianId id_ = 0;
  std::string name_;
  uint64_t seal_ = 0;
  bool persistent_ = false;

  mutable Mailbox mailbox_;
  mutable std::mutex ports_mu_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::vector<uint32_t> provided_;
  ProcessGroup processes_;
  std::mutex wals_mu_;
  std::map<std::string, std::unique_ptr<Wal>> wals_;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_GUARDIAN_GUARDIAN_H_
