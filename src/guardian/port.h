// Ports (Section 3.2): one-directional, typed, buffered gateways into a
// guardian.
//
// "There can be many ports on a single guardian; each port belongs to a
//  guardian, and only processes within that guardian can receive messages
//  from it... We assume that ports provide some buffer space so that
//  messages may be queued if necessary."
//
// All ports of one guardian share the guardian's mailbox (one mutex and
// condition variable), so `receive on <port list>` is a priority-ordered
// scan plus a single wait — no polling. Port buffer capacity is bounded:
// when there is no room, the incoming message is thrown away and, if it
// carried a replyto port, the system sends a failure message there
// (Section 3.4).
#ifndef GUARDIANS_SRC_GUARDIAN_PORT_H_
#define GUARDIANS_SRC_GUARDIAN_PORT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "src/value/port_type.h"
#include "src/value/value.h"

namespace guardians {

// A message as handed to a receiving process: the decoded arguments plus
// the singled-out extra ports.
struct Received {
  std::string command;
  ValueList args;
  PortName reply_to;  // null when the sender expects no response
  PortName ack_to;    // null unless the sender used the synchronization send
  NodeId src_node = 0;
  uint64_t msg_id = 0;
  uint64_t trace_id = 0;  // the sender's causal chain (0 = untraced)
  const class Port* port = nullptr;  // which port it arrived on
};

// Why a Push failed. A full buffer and a dead port are different designed-in
// loss events (§3.4), and the system failure(...) reply names which one
// happened.
enum class PushResult {
  kOk,
  kFull,     // buffer at capacity; sender may retry later
  kRetired,  // port retired or mailbox closed; retrying the same name is
             // useless until the guardian recreates the port
};

// Shared mailbox of one guardian: closed on crash/shutdown so every blocked
// receive returns kNodeDown.
struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  bool closed = false;
};

class Port {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  Port(PortName name, PortType type, Mailbox* mailbox, size_t capacity)
      : name_(name), type_(std::move(type)), mailbox_(mailbox),
        capacity_(capacity) {}

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  const PortName& name() const { return name_; }
  const PortType& type() const { return type_; }
  size_t capacity() const { return capacity_; }

  // --- Runtime side (delivery workers) -------------------------------------
  // Enqueue a delivered message (consumed by move on success). On
  // kFull/kRetired the caller throws the message away (and synthesizes the
  // system failure reply naming the returned reason).
  PushResult Push(Received&& message);

  // Mark dead: no further pushes succeed, pending messages are dropped.
  // Used when an ephemeral reply port is retired.
  void Retire();
  bool retired() const;

  // --- Receiving side (guardian processes); called with mailbox.mu held ---
  bool HasMessageLocked() const { return !queue_.empty(); }
  Received PopLocked();

  // --- Stats ----------------------------------------------------------------
  uint64_t enqueued() const;
  uint64_t discarded_full() const;
  uint64_t discarded_retired() const;
  size_t depth() const;

  Mailbox* mailbox() const { return mailbox_; }

 private:
  const PortName name_;
  const PortType type_;
  Mailbox* mailbox_;
  const size_t capacity_;
  std::deque<Received> queue_;   // guarded by mailbox_->mu
  bool retired_ = false;         // guarded by mailbox_->mu
  uint64_t enqueued_ = 0;        // guarded by mailbox_->mu
  uint64_t discarded_full_ = 0;  // guarded by mailbox_->mu
  uint64_t discarded_retired_ = 0;  // guarded by mailbox_->mu
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_GUARDIAN_PORT_H_
