// Ports (Section 3.2): one-directional, typed, buffered gateways into a
// guardian.
//
// "There can be many ports on a single guardian; each port belongs to a
//  guardian, and only processes within that guardian can receive messages
//  from it... We assume that ports provide some buffer space so that
//  messages may be queued if necessary."
//
// All ports of one guardian share the guardian's mailbox (one mutex and
// condition variable), so `receive on <port list>` is a priority-ordered
// scan plus a single wait — no polling. Port buffer capacity is bounded:
// when there is no room, the incoming message is thrown away and, if it
// carried a replyto port, the system sends a failure message there
// (Section 3.4).
#ifndef GUARDIANS_SRC_GUARDIAN_PORT_H_
#define GUARDIANS_SRC_GUARDIAN_PORT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/value/port_type.h"
#include "src/value/value.h"

namespace guardians {

// A message as handed to a receiving process: the decoded arguments plus
// the singled-out extra ports.
struct Received {
  std::string command;
  ValueList args;
  PortName reply_to;  // null when the sender expects no response
  PortName ack_to;    // null unless the sender used the synchronization send
  NodeId src_node = 0;
  uint64_t msg_id = 0;
  uint64_t trace_id = 0;  // the sender's causal chain (0 = untraced)
  // At-most-once identity of a tracked request (0 = untracked); the
  // runtime uses it to mark the op acknowledged when the receipt ack goes
  // out, so a suppressed duplicate can earn a replacement ack.
  uint64_t session_id = 0;
  uint64_t dedup_seq = 0;
  // Instant (on the receiving node's clock) at which this message's
  // propagated deadline budget runs out; TimePoint::max() = no deadline.
  // Computed at dispatch from the envelope's relative budget minus network
  // age, so it is meaningful even when sender and receiver clocks disagree.
  // Receive uses it to lazily discard entries whose budget died in the
  // queue, and to seed the handling thread's inherited deadline.
  TimePoint deadline_at = TimePoint::max();
  const class Port* port = nullptr;  // which port it arrived on
};

// Why a Push failed. A full buffer and a dead port are different designed-in
// loss events (§3.4), and the system failure(...) reply names which one
// happened.
enum class PushResult {
  kOk,
  kFull,     // buffer at capacity; sender may retry later
  kRetired,  // port retired or mailbox closed; retrying the same name is
             // useless until the guardian recreates the port
};

// Shared mailbox of one guardian: closed on crash/shutdown so every blocked
// receive returns kNodeDown.
struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  bool closed = false;
};

class Port {
 public:
  static constexpr size_t kDefaultCapacity = 64;
  // Extra admission slots above capacity_ reserved for control traffic
  // (receipt acks, failure nacks, supervisor probes). Backpressure only
  // works if its own signals are never shed: an ack dropped at a full port
  // reads as congestion and shrinks the sender's window further, a
  // positive feedback loop. Data cannot enter the headroom, so control
  // admitted there is bounded by kControlHeadroom per port.
  static constexpr size_t kControlHeadroom = 16;

  Port(PortName name, PortType type, Mailbox* mailbox, size_t capacity)
      : name_(name), type_(std::move(type)), mailbox_(mailbox),
        capacity_(capacity) {}

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  const PortName& name() const { return name_; }
  const PortType& type() const { return type_; }
  size_t capacity() const { return capacity_; }

  // --- Runtime side (delivery workers) -------------------------------------
  // Enqueue a delivered message (consumed by move on success). On
  // kFull/kRetired the caller throws the message away (and synthesizes the
  // system failure reply naming the returned reason). `control` marks
  // backpressure-critical traffic admitted into kControlHeadroom slots
  // above capacity when the data buffer is full.
  PushResult Push(Received&& message, bool control = false);

  // One push plus whether it rode the control headroom (spares the caller
  // a separate control_overflow() before/after read).
  struct PushOutcome {
    PushResult result = PushResult::kOk;
    bool via_headroom = false;  // control admitted above capacity_
  };
  // Enqueue a run of delivered messages under one mailbox lock and (at
  // most) one receiver wake — the batched delivery path's amortization.
  // Each message is admitted by the same policy as Push, in order, so the
  // outcomes are exactly what per-message pushes would have produced.
  std::vector<PushOutcome> PushBatch(std::vector<Received>&& messages,
                                     bool control = false);

  // Mark dead: no further pushes succeed, pending messages are dropped.
  // Used when an ephemeral reply port is retired.
  void Retire();
  bool retired() const;

  // --- Receiving side (guardian processes); called with mailbox.mu held ---
  bool HasMessageLocked() const { return !queue_.empty(); }
  Received PopLocked();

  // --- Stats ----------------------------------------------------------------
  uint64_t enqueued() const;
  uint64_t discarded_full() const;
  uint64_t discarded_retired() const;
  // Control messages admitted above capacity_ (headroom in use).
  uint64_t control_overflow() const;
  size_t depth() const;

  Mailbox* mailbox() const { return mailbox_; }

 private:
  // Admission logic shared by Push/PushBatch; requires mailbox_->mu held.
  PushOutcome PushLocked(Received&& message, bool control);

  const PortName name_;
  const PortType type_;
  Mailbox* mailbox_;
  const size_t capacity_;
  std::deque<Received> queue_;   // guarded by mailbox_->mu
  bool retired_ = false;         // guarded by mailbox_->mu
  uint64_t enqueued_ = 0;        // guarded by mailbox_->mu
  uint64_t discarded_full_ = 0;  // guarded by mailbox_->mu
  uint64_t discarded_retired_ = 0;  // guarded by mailbox_->mu
  uint64_t control_overflow_ = 0;   // guarded by mailbox_->mu
};

// Receiver-side at-most-once state (DESIGN.md §10). One table per node
// tracks, for every sender session, which tracked sequence numbers have
// already been accepted for execution, plus a bounded FIFO cache of the
// replies those executions produced. A re-delivered request is either
// suppressed outright (still executing, reply-less, or evicted — dropping
// a duplicate is always sound) or answered from the cache without
// re-executing.
//
// Sessions use a high-water mark plus an exact-seen window: sequence
// numbers above `high_water - window` are checked exactly (reordering
// within the window never false-positives), anything at or below the
// window floor is conservatively treated as already seen. At-most-once
// permits that: losing an ancient straggler is allowed, executing it
// twice is not.
//
// Not internally synchronized — NodeRuntime guards it with its dedup lock
// (delivery workers of one node may run concurrently for different source
// shards, and guardian threads cache replies while workers classify).
class DedupTable {
 public:
  struct Config {
    size_t window = 1024;               // exact-seen seqs kept per session
    size_t reply_cache_capacity = 256;  // cached replies per node (FIFO)
  };

  // What the original execution sent back; enough to rebuild a reply
  // envelope (the runtime stamps a fresh msg_id and the duplicate's trace).
  struct CachedReply {
    std::string command;
    ValueList args;
    PortName reply_to;  // where the original reply went
  };

  enum class Verdict {
    kFresh,      // never seen: execute
    kDuplicate,  // seen, no cached reply (in progress, reply-less, evicted)
    kReplay,     // seen and the reply is cached: resend it, don't execute
  };

  DedupTable() = default;
  explicit DedupTable(Config config) : config_(config) {}

  // Classify an incoming tracked (session, seq). On kReplay, *replay (if
  // non-null) receives a copy of the cached reply.
  Verdict Classify(uint64_t session, uint64_t seq, CachedReply* replay) const;

  // Record that (session, seq) was accepted for execution. Marked *before*
  // the message becomes visible to the guardian (the guardian may reply
  // the instant it can dequeue, and the reply correlation must already be
  // in place); a failed push is rolled back with Unmark so a retry can
  // still land.
  void MarkSeen(uint64_t session, uint64_t seq);

  // Roll back a MarkSeen whose push failed. Best effort: if the floor has
  // already slid past `seq` (another in-window op raced far ahead), the
  // seq stays conservatively seen and the sender's retries are dropped —
  // a loss at-most-once permits.
  void Unmark(uint64_t session, uint64_t seq);

  // Record that the receipt acknowledgement for (session, seq) was sent —
  // i.e. the original was genuinely dequeued by the application. Only then
  // may a suppressed duplicate carrying an ack port be re-acknowledged; a
  // duplicate of a message still sitting in the buffer must stay silent so
  // the sender's timeout semantics hold.
  void MarkAcked(uint64_t session, uint64_t seq);
  bool Acked(uint64_t session, uint64_t seq) const;

  // Cache (and implicitly mark seen) the reply for (session, seq). Evicts
  // the oldest cached reply beyond capacity; an evicted duplicate is then
  // suppressed without a reply, which at-most-once allows.
  void CacheReply(uint64_t session, uint64_t seq, CachedReply reply);

  // Highest seq seen for a session (0 if unknown); journaled alongside
  // cached replies so recovery restores the window floor.
  uint64_t HighWater(uint64_t session) const;

  // Crash recovery: treat every seq of `session` at or below `floor` as
  // already seen. Conservative — a pre-crash in-flight op below the floor
  // is dropped rather than executed, which at-most-once permits (its
  // sender reports a timeout); what it buys is that nothing executed and
  // replied-to before the crash can execute again after it.
  void RestoreFloor(uint64_t session, uint64_t floor);

  // Every cached reply, oldest first — the compaction snapshot.
  std::vector<std::pair<std::pair<uint64_t, uint64_t>, CachedReply>>
  Snapshot() const;

  // Stamp activity for `session` at `now` (the node's clock). NodeRuntime
  // calls this from the batch dedup gate for every tracked envelope, so a
  // sender that keeps talking keeps its session alive.
  void Touch(uint64_t session, TimePoint now);

  // Drop every session idle for at least `idle` (plus its cached replies)
  // and return how many were dropped. Dropping a session forgets its
  // window — a *later* duplicate from that sender would classify kFresh
  // and re-execute — so the idle horizon must exceed any retry span. A
  // stamp in the future of `now` (the sweep raced a backward clock-skew
  // step) counts as current, never as idle: elapsed time is clamped at
  // zero, so skew can only delay a GC, not misfire one.
  size_t ExpireIdleSessions(TimePoint now, Micros idle);

  void Clear();

  size_t session_count() const { return sessions_.size(); }
  size_t cached_reply_count() const { return replies_.size(); }

 private:
  struct Session {
    uint64_t high_water = 0;
    uint64_t floor = 0;        // every seq <= floor counts as seen
    std::set<uint64_t> seen;   // exact seqs in (floor, high_water]
    std::set<uint64_t> acked;  // subset of seen whose receipt ack went out
    TimePoint last_touch{};    // last Touch(); epoch-zero = never stamped
  };

  using Key = std::pair<uint64_t, uint64_t>;  // (session, seq)

  Config config_;
  std::unordered_map<uint64_t, Session> sessions_;
  std::map<Key, CachedReply> replies_;
  std::deque<Key> reply_fifo_;  // eviction order
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_GUARDIAN_PORT_H_
