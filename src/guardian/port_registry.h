// PortTypeRegistry: the analog of CLU's "library containing descriptions of
// guardian headers" (Section 3.2). Every port type in the system is
// registered here by its canonical hash; every send command is checked
// against the registered description before any bits go on the wire, giving
// the same guarantee as the paper's compile-time checking.
#ifndef GUARDIANS_SRC_GUARDIAN_PORT_REGISTRY_H_
#define GUARDIANS_SRC_GUARDIAN_PORT_REGISTRY_H_

#include <mutex>
#include <unordered_map>

#include "src/common/result.h"
#include "src/value/port_type.h"

namespace guardians {

class PortTypeRegistry {
 public:
  // Idempotent for identical definitions (the same header may be "compiled
  // against" at many nodes); conflicting redefinition of a hash is internal
  // corruption and fails.
  Status Register(const PortType& type);

  Result<PortType> Lookup(uint64_t hash) const;
  bool Knows(uint64_t hash) const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, PortType> types_;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_GUARDIAN_PORT_REGISTRY_H_
