#include "src/guardian/node_runtime.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <thread>
#include <utility>

#include "src/common/log.h"
#include "src/fault/crashpoint.h"
#include "src/guardian/system.h"
#include "src/obs/trace.h"
#include "src/wire/codec.h"

namespace guardians {

namespace {

// The creation-persist path: a crash between handing out a guardian id (or
// starting the guardian) and logging the creation record must not leave a
// recoverable half-guardian or reuse an id.
CrashPoint crash_persist_next_id("node.persist_next_id.before_put");
CrashPoint crash_persist_creation_before("node.persist_creation.before_log");
CrashPoint crash_persist_creation_after("node.persist_creation.after_log");
// The log-reply window of the at-most-once layer: a crash between the
// guardian producing a reply and that reply being journaled (before) means
// the retry re-executes — only application idempotence or name-keyed
// creation covers it; a crash after the journal but before the reply
// reaches the wire (after) means the sender retries and must be answered
// from the recovered cache.
CrashPoint crash_dedup_before_journal("node.dedup.before_journal");
CrashPoint crash_dedup_after_journal("node.dedup.after_journal");

// See NodeRuntime::SetSkipDedupJournalForTesting: the chaos harness plants
// this bug to prove its shrinker can find it.
std::atomic<bool> g_skip_dedup_journal{false};
// See NodeRuntime::SetDedupSweepOnLocalClockForTesting.
std::atomic<bool> g_dedup_sweep_local_clock{false};

constexpr GuardianId kPrimordialId = 1;
constexpr char kMetaLogName[] = "node/meta";
constexpr char kNextIdCell[] = "node/next_guardian_id";
constexpr char kDedupLogName[] = "node/dedup";
// Compact the dedup journal (checkpoint + re-append of the live cache)
// after this many appends, so it stays proportional to the reply cache
// rather than to message volume.
constexpr uint64_t kDedupCompactEvery = 512;

// Sentinel for "this envelope carries no deadline budget" in the
// per-batch remaining-budget vector (deadline_micros == 0 on the wire).
constexpr int64_t kNoDeadlineRemaining =
    std::numeric_limits<int64_t>::max();
// The §3.4 failure text for a message shed because its propagated budget
// was spent. SyncSend matches on the prefix to map the nack to kTimeout
// (the sender's budget is gone — a port-full-style retry would be wasted
// work, which is exactly what shedding exists to avoid).
constexpr char kExpiredReason[] = "deadline expired before delivery";
constexpr char kExpiredQueueReason[] =
    "deadline expired while queued at target port";

// The primordial guardian: created with the node, never persistent-logged
// (it is always re-created on restart). It creates guardians at its node in
// response to messages arriving from guardians at other nodes, subject to
// the owner's admission policy.
class PrimordialGuardian : public Guardian {
 public:
  Status Setup(const ValueList& args) override {
    (void)args;
    AddPort(PrimordialPortType(), Port::kDefaultCapacity, /*provided=*/true);
    return OkStatus();
  }

  void Main() override {
    Port* requests = port(0);
    for (;;) {
      auto received = Receive(requests, Micros::max());
      if (!received.ok()) {
        return;  // node down
      }
      if (received->command == "create_guardian") {
        HandleCreate(*received);
      } else if (received->command == "ping") {
        if (!received->reply_to.IsNull()) {
          Status ignored = Send(received->reply_to, "pong", {});
          (void)ignored;
        }
      }
      // failure(...) messages to the primordial port are ignored.
    }
  }

 private:
  void HandleCreate(const Received& request) {
    const std::string type_name = request.args[0].string_value();
    const std::string guardian_name = request.args[1].string_value();
    const ValueList creation_args = request.args[2].items();
    const bool persistent = request.args[3].bool_value();

    auto refuse = [&](const std::string& why) {
      if (!request.reply_to.IsNull()) {
        Status ignored =
            Send(request.reply_to, "refused", {Value::Str(why)});
        (void)ignored;
      }
    };

    auto created = runtime().CreateGuardianForRemote(
        type_name, guardian_name, creation_args, persistent,
        request.src_node);
    if (!created.ok()) {
      refuse(created.status().ToString());
      return;
    }
    std::vector<Value> port_values;
    for (const PortName& pn : (*created)->ProvidedPorts()) {
      port_values.push_back(Value::OfPort(pn));
    }
    if (!request.reply_to.IsNull()) {
      Status ignored = Send(request.reply_to, "created",
                            {Value::Array(std::move(port_values))});
      (void)ignored;
    }
  }
};

}  // namespace

PortType PrimordialPortType() {
  return PortType(
      "primordial",
      {MessageSig{"create_guardian",
                  {ArgType::Of(TypeTag::kString),  // guardian type name
                   ArgType::Of(TypeTag::kString),  // instance name
                   ArgType::Of(TypeTag::kArray),   // creation arguments
                   ArgType::Of(TypeTag::kBool)},   // persistent?
                  {"created", "refused"}},
       MessageSig{"ping", {}, {"pong"}}});
}

PortType CreationReplyPortType() {
  return PortType("creation_reply",
                  {MessageSig{"created", {ArgType::Of(TypeTag::kArray)}, {}},
                   MessageSig{"refused", {ArgType::Of(TypeTag::kString)}, {}},
                   MessageSig{"pong", {}, {}}});
}

PortType AckPortType() {
  return PortType("sys_ack",
                  {MessageSig{"ack", {ArgType::Of(TypeTag::kString)}, {}}});
}

NodeRuntime::NodeRuntime(System* system, NodeId id, std::string name,
                         uint64_t seed)
    : system_(system), id_(id), name_(std::move(name)),
      clock_(system->clock_for_node(id)), rng_(seed),
      flow_(system->config().flow, &system->metrics(), &system->traces(),
            id, system->clock_for_node(id)) {
  stable_store_.SetClock(clock_);
  MetricsRegistry& metrics = system_->metrics();
  counters_.sent = metrics.counter("node.messages_sent");
  counters_.delivered = metrics.counter("deliver.delivered");
  counters_.receives = metrics.counter("guardian.receives");
  counters_.drop_no_guardian = metrics.counter("deliver.drop.no_guardian");
  counters_.drop_no_port = metrics.counter("deliver.drop.no_port");
  counters_.drop_port_retired =
      metrics.counter("deliver.drop.port_retired");
  counters_.drop_port_full = metrics.counter("deliver.drop.port_full");
  counters_.drop_type_mismatch =
      metrics.counter("deliver.drop.type_mismatch");
  counters_.drop_decode_error =
      metrics.counter("deliver.drop.decode_error");
  counters_.drop_corrupt_fragment =
      metrics.counter("deliver.drop.corrupt_fragment");
  counters_.failures_synthesized =
      metrics.counter("deliver.failures_synthesized");
  counters_.acks_sent = metrics.counter("deliver.acks_sent");
  counters_.dup_suppressed = metrics.counter("deliver.dup.suppressed");
  counters_.dup_replayed = metrics.counter("deliver.dup.replayed");
  counters_.dedup_journaled = metrics.counter("node.dedup.journaled");
  counters_.dedup_sessions_expired =
      metrics.counter("node.dedup.sessions_expired");
  counters_.control_overflow = metrics.counter("deliver.control_overflow");
  counters_.nacks_shed = metrics.counter("flow.nacks_shed");
  counters_.reassembly_expired = metrics.counter("net.reassembly.expired");
  counters_.reassembly_session_dropped =
      metrics.counter("net.reassembly.session_dropped");
  counters_.expired_shed = metrics.counter("deliver.expired.shed");
  counters_.expired_dequeue = metrics.counter("deliver.expired.queue");
}

NodeRuntime::~NodeRuntime() { Crash(); }

void NodeRuntime::RegisterGuardianType(const std::string& type_name,
                                       Factory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  factories_[type_name] = std::move(factory);
}

bool NodeRuntime::KnowsGuardianType(const std::string& type_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(type_name) > 0;
}

void NodeRuntime::SetAdmissionPolicy(AdmissionPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  admission_policy_ = std::move(policy);
}

Result<Guardian*> NodeRuntime::CreateGuardian(const std::string& type_name,
                                              const std::string& guardian_name,
                                              const ValueList& args,
                                              bool persistent) {
  // Creation does stable-storage work for this node, so it runs under this
  // node's fault scope; a crashpoint firing inside turns into the same
  // kNodeDown the caller would see racing a real crash.
  ScopedFaultScope scope(this);
  try {
    return CreateGuardianImpl(type_name, guardian_name, args, persistent);
  } catch (const CrashPointTriggered&) {
    return Status(Code::kNodeDown, "node crashed during guardian creation");
  }
}

Result<Guardian*> NodeRuntime::CreateGuardianImpl(
    const std::string& type_name, const std::string& guardian_name,
    const ValueList& args, bool persistent) {
  if (!up_.load()) {
    return Status(Code::kNodeDown, "node is down");
  }
  Factory factory;
  GuardianId gid;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(type_name);
    if (it == factories_.end()) {
      return Status(Code::kNotFound,
                    "guardian type '" + type_name +
                        "' is not registered at node '" + name_ + "'");
    }
    factory = it->second;
    gid = next_guardian_id_++;
  }
  PersistNextId();

  std::unique_ptr<Guardian> guardian = factory();
  Guardian* raw = guardian.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    guardians_.emplace(gid, std::move(guardian));
  }
  raw->MarkPersistent(persistent);
  Status started = StartGuardian(raw, type_name, guardian_name, gid, args,
                                 /*recovering=*/false);
  if (!started.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    guardians_.erase(gid);
    return started;
  }
  if (persistent) {
    PersistCreation(type_name, guardian_name, gid, args);
  }
  return raw;
}

Result<Guardian*> NodeRuntime::CreateGuardianForRemote(
    const std::string& type_name, const std::string& guardian_name,
    const ValueList& args, bool persistent, NodeId requester) {
  AdmissionPolicy policy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    policy = admission_policy_;
  }
  if (policy && !policy(type_name, requester)) {
    return Status(Code::kPermissionDenied,
                  "node '" + name_ + "' refused creation of '" + type_name +
                      "' for node " + std::to_string(requester));
  }
  // Remote creation is idempotent by (non-empty) name: a retried
  // create_guardian — sender resend, network duplicate that slipped past
  // dedup, or a retry after a crash in the logged-but-not-acked window —
  // converges on the guardian the first execution made instead of minting
  // a phantom. The primordial guardian serves creations one at a time, so
  // the check-then-create pair cannot race itself.
  if (!guardian_name.empty()) {
    if (Guardian* existing = FindGuardianByName(guardian_name)) {
      return existing;
    }
  }
  return CreateGuardian(type_name, guardian_name, args, persistent);
}

Guardian* NodeRuntime::FindGuardianByName(
    const std::string& guardian_name) const {
  if (guardian_name.empty()) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [gid, guardian] : guardians_) {
    if (guardian->name() == guardian_name) {
      return guardian.get();
    }
  }
  return nullptr;
}

Status NodeRuntime::DestroyGuardian(GuardianId gid) {
  ScopedFaultScope scope(this);
  try {
    return DestroyGuardianImpl(gid);
  } catch (const CrashPointTriggered&) {
    return Status(Code::kNodeDown, "node crashed during guardian destruction");
  }
}

Status NodeRuntime::DestroyGuardianImpl(GuardianId gid) {
  std::unique_ptr<Guardian> victim;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = guardians_.find(gid);
    if (it == guardians_.end()) {
      return Status(Code::kNotFound, "no such guardian");
    }
    victim = std::move(it->second);
    guardians_.erase(it);
  }
  victim->CloseMailbox();
  victim->JoinProcesses();
  // Remove any persistent-creation record so it is not recovered.
  // (Scan-and-rewrite of the meta log; rare operation.)
  Wal meta(&stable_store_, kMetaLogName);
  auto recovery = meta.RecoverValues();
  if (recovery.ok()) {
    std::vector<Value> keep;
    for (const auto& record : *recovery) {
      auto id_field = record.field("id");
      if (id_field.ok() && id_field->is(TypeTag::kInt) &&
          static_cast<GuardianId>(id_field->int_value()) == gid) {
        continue;
      }
      keep.push_back(record);
    }
    Status st = meta.Checkpoint({});
    (void)st;
    for (const auto& record : keep) {
      Status appended = meta.AppendValue(record);
      (void)appended;
    }
  }
  return OkStatus();
}

Guardian* NodeRuntime::FindGuardian(GuardianId gid) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = guardians_.find(gid);
  return it != guardians_.end() ? it->second.get() : nullptr;
}

PortName NodeRuntime::PrimordialPort() const {
  PortName pn;
  pn.node = id_;
  pn.guardian = kPrimordialId;
  pn.port_index = 0;
  pn.type_hash = PrimordialPortType().hash();
  return pn;
}

Status NodeRuntime::StartGuardian(Guardian* guardian,
                                  const std::string& type_name,
                                  const std::string& guardian_name,
                                  GuardianId gid, const ValueList& args,
                                  bool recovering) {
  (void)type_name;
  uint64_t seal;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seal = rng_.NextU64() | 1;  // nonzero
  }
  guardian->Attach(this, gid, guardian_name, seal);
  Status init = recovering ? guardian->Recover(args) : guardian->Setup(args);
  if (!init.ok()) {
    return init;
  }
  guardian->Fork("main", [guardian] { guardian->Main(); });
  return OkStatus();
}

void NodeRuntime::PersistCreation(const std::string& type_name,
                                  const std::string& guardian_name,
                                  GuardianId gid, const ValueList& args) {
  Wal meta(&stable_store_, kMetaLogName);
  Value record = Value::Record({{"type", Value::Str(type_name)},
                                {"name", Value::Str(guardian_name)},
                                {"id", Value::Int(static_cast<int64_t>(gid))},
                                {"args", Value::Array(args)}});
  crash_persist_creation_before.Hit();
  Status st = meta.AppendValue(record);
  if (!st.ok()) {
    GLOG_ERROR << "failed to persist creation of '" << guardian_name
               << "': " << st;
  }
  // A crash here: the guardian is durably recoverable but its creator
  // never hears so — the classic logged-but-not-acked window.
  crash_persist_creation_after.Hit();
}

void NodeRuntime::PersistNextId() {
  GuardianId next;
  {
    std::lock_guard<std::mutex> lock(mu_);
    next = next_guardian_id_;
  }
  WireEncoder enc;
  enc.PutU64(next);
  crash_persist_next_id.Hit();
  Status st = stable_store_.PutCell(kNextIdCell, enc.bytes());
  if (!st.ok()) {
    GLOG_ERROR << "failed to persist next guardian id: " << st;
  }
}

std::vector<Guardian*> NodeRuntime::LiveGuardians() const {
  std::vector<Guardian*> gs;
  std::lock_guard<std::mutex> lock(mu_);
  gs.reserve(guardians_.size());
  for (const auto& [gid, guardian] : guardians_) {
    gs.push_back(guardian.get());
  }
  return gs;
}

void NodeRuntime::Crash() {
  BeginCrash();
  FinishCrash();
}

void NodeRuntime::BeginCrash() {
  int expected = kNoCrash;
  if (!crash_state_.compare_exchange_strong(expected, kCrashBeginning)) {
    return;  // another thread is already crashing the node
  }
  if (!up_.exchange(false)) {
    // The node was already down and fully retired (e.g. double Crash()).
    crash_state_.store(kNoCrash);
    return;
  }
  system_->network().SetNodeUp(id_, false);
  // Wake senders deferred on closed flow windows: their sends will fail
  // with kNodeDown instead of waiting out a window that can never reopen.
  flow_.Shutdown();
  // Close every mailbox so blocked receives return kNodeDown and every
  // guardian process starts winding down.
  for (Guardian* g : LiveGuardians()) {
    g->CloseMailbox();
  }
  crash_state_.store(kCrashBegun);
}

void NodeRuntime::FinishCrash() {
  // A BeginCrash may still be running on another thread (a crashpoint
  // fires on a guardian thread; Crash()/Restart() come from outside): wait
  // for it to publish kCrashBegun before claiming the cleanup.
  int state = crash_state_.load();
  while (state == kCrashBeginning) {
    std::this_thread::yield();
    state = crash_state_.load();
  }
  if (state != kCrashBegun ||
      !crash_state_.compare_exchange_strong(state, kNoCrash)) {
    return;  // nothing pending, or another FinishCrash claimed it
  }
  std::vector<Guardian*> gs = LiveGuardians();
  // Wait for every process to observe the crash and exit...
  for (Guardian* g : gs) {
    g->JoinProcesses();
  }
  // ...then retire them. Their volatile state is unreachable from the new
  // incarnation (the map is emptied), but the objects stay alive so
  // application threads blocked on them fail cleanly with kNodeDown.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [gid, guardian] : guardians_) {
      graveyard_.push_back(std::move(guardian));
    }
    guardians_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(reassembler_mu_);
    reassembler_ = Reassembler();
  }
  {
    // The dedup table is volatile state of the dead incarnation; the next
    // Restart rebuilds what matters (seen floors, cached replies) from the
    // dedup journal.
    std::lock_guard<std::mutex> lock(dedup_mu_);
    dedup_.Clear();
    pending_replies_.clear();
  }
}

Status NodeRuntime::Restart() {
  // Complete any crashpoint-initiated crash first, then boot under this
  // node's fault scope (recovery replay is stable-storage work too).
  FinishCrash();
  ScopedFaultScope scope(this);
  try {
    return RestartImpl();
  } catch (const CrashPointTriggered&) {
    return Status(Code::kNodeDown, "node crashed during recovery");
  }
}

Status NodeRuntime::RestartImpl() {
  if (up_.load()) {
    return Status(Code::kInvalidArgument, "node is already up");
  }
  // Recover the creation counter first so recreated and new guardians get
  // non-colliding ids.
  {
    auto cell = stable_store_.GetCell(kNextIdCell);
    std::lock_guard<std::mutex> lock(mu_);
    next_guardian_id_ = 2;
    if (cell.ok()) {
      WireDecoder dec(*cell);
      auto next = dec.GetU64();
      if (next.ok()) {
        next_guardian_id_ = *next;
      }
    }
  }
  // A fresh at-most-once session: nonzero and random, so sequence numbers
  // issued before the crash can never be mistaken for this incarnation's.
  {
    std::lock_guard<std::mutex> lock(mu_);
    send_session_.store(rng_.NextU64() | 1);
  }
  dedup_seq_.store(0);
  // Rebuild the receiver-side dedup state from the journal before any
  // traffic can arrive, so retries of pre-crash operations are recognised.
  GUARDIANS_RETURN_IF_ERROR(RecoverDedup());

  // Window state learned against the dead incarnation's ports is stale;
  // start the new incarnation's windows from initial_window.
  flow_.Reset();

  up_.store(true);
  system_->network().SetNodeUp(id_, true);

  // The primordial guardian comes into existence with the node.
  {
    auto primordial = std::make_unique<PrimordialGuardian>();
    Guardian* raw = primordial.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      guardians_.emplace(kPrimordialId, std::move(primordial));
    }
    Status started = StartGuardian(raw, "primordial", "primordial",
                                   kPrimordialId, {}, /*recovering=*/false);
    if (!started.ok()) {
      return started;
    }
  }

  // Re-create persistent guardians and run their recovery processes.
  Wal meta(&stable_store_, kMetaLogName);
  auto recovery = meta.RecoverValues();
  if (!recovery.ok()) {
    return recovery.status();
  }
  for (const auto& record : *recovery) {
    GUARDIANS_ASSIGN_OR_RETURN(Value type_field, record.field("type"));
    GUARDIANS_ASSIGN_OR_RETURN(Value name_field, record.field("name"));
    GUARDIANS_ASSIGN_OR_RETURN(Value id_field, record.field("id"));
    GUARDIANS_ASSIGN_OR_RETURN(Value args_field, record.field("args"));
    const std::string type_name = type_field.string_value();
    const std::string guardian_name = name_field.string_value();
    const GuardianId gid = static_cast<GuardianId>(id_field.int_value());
    const ValueList creation_args = args_field.items();

    Factory factory;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = factories_.find(type_name);
      if (it == factories_.end()) {
        GLOG_ERROR << "cannot recover guardian '" << guardian_name
                   << "': type '" << type_name << "' not registered";
        continue;
      }
      factory = it->second;
    }
    std::unique_ptr<Guardian> guardian = factory();
    Guardian* raw = guardian.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      guardians_.emplace(gid, std::move(guardian));
    }
    raw->MarkPersistent(true);
    Status started = StartGuardian(raw, type_name, guardian_name, gid,
                                   creation_args, /*recovering=*/true);
    if (!started.ok()) {
      GLOG_ERROR << "recovery of guardian '" << guardian_name
                 << "' failed: " << started;
      std::lock_guard<std::mutex> lock(mu_);
      guardians_.erase(gid);
    }
  }
  return OkStatus();
}

NodeStats NodeRuntime::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

uint64_t NodeRuntime::NextMsgId() {
  // Node id in the high bits keeps ids globally unique.
  return (static_cast<uint64_t>(id_) << 40) | (msg_counter_.fetch_add(1) + 1);
}

Rng NodeRuntime::ForkRng() {
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.Fork();
}

Status NodeRuntime::Transmit(Envelope env) {
  if (!up_.load()) {
    return Status(Code::kNodeDown, "node is down");
  }
  if (env.target.IsNull()) {
    return Status(Code::kInvalidArgument, "send to null port");
  }
  // Type check against the guardian-header library — the moved-to-send-time
  // analog of the paper's compile-time checking. The implicit failure
  // message is always legal.
  if (env.command != kFailureCommand) {
    auto port_type = system_->port_types().Lookup(env.target.type_hash);
    if (!port_type.ok()) {
      return port_type.status();
    }
    GUARDIANS_RETURN_IF_ERROR(
        port_type->Check(env.command, env.args, env.HasReply()));
  }
  // Steps 1+2 of the send semantics: encode arguments left to right, then
  // construct the message. An encode failure terminates the send here.
  auto bytes = EncodeEnvelope(env, system_->limits());
  if (!bytes.ok()) {
    return bytes.status();
  }
  // If this send answers a tracked request, journal and cache it *before*
  // it can reach the wire: once the sender has seen the reply, the reply
  // must survive our crash, or a retry would re-execute the operation.
  MaybeJournalReply(env);
  // Step 3: fragment and hand to the network. The sender continues as soon
  // as this returns; delivery is not guaranteed.
  system_->traces().Record(env.trace_id, id_, "send",
                           env.command + " -> " + env.target.ToString());
  // Every fragment carries this incarnation's session id: the receiver's
  // reassembler keys partials on it, so a post-restart reuse of a msg_id
  // can never complete a message begun by the previous incarnation.
  auto packets = Fragment(std::move(*bytes), env.msg_id, id_, env.target.node,
                          system_->limits().max_packet_payload, env.trace_id,
                          SendSession());
  for (auto& packet : packets) {
    system_->network().Send(std::move(packet));
  }
  counters_.sent->Inc();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.messages_sent;
  }
  return OkStatus();
}

void NodeRuntime::SendSystemFailure(const PortName& to,
                                    const std::string& reason,
                                    uint64_t trace_id) {
  if (to.IsNull()) {
    return;
  }
  Envelope env;
  env.msg_id = NextMsgId();
  env.trace_id = trace_id;  // the failure reply joins the lost message's trace
  env.src_node = id_;
  env.target = to;
  env.command = kFailureCommand;
  env.args = {Value::Str(reason)};
  // Failure envelopes carry no reply port, so they can never loop.
  Status st = Transmit(std::move(env));
  (void)st;
  counters_.failures_synthesized->Inc();
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.failures_synthesized;
}

void NodeRuntime::SendAck(const Received& message) {
  if (message.dedup_seq != 0) {
    // The application has genuinely dequeued this tracked message; from
    // now on a suppressed duplicate may be answered with a replacement
    // ack (the original ack might be the very packet that was lost).
    std::lock_guard<std::mutex> lock(dedup_mu_);
    dedup_.MarkAcked(message.session_id, message.dedup_seq);
  }
  Envelope env;
  env.msg_id = NextMsgId();
  env.trace_id = message.trace_id;
  env.src_node = id_;
  env.target = message.ack_to;
  env.command = "ack";
  env.args = {Value::Str(std::to_string(message.msg_id))};
  if (system_->config().flow.enabled && message.port != nullptr) {
    // Piggyback a credit grant: the ack is sent at dequeue, so the depth
    // here is the post-consumption queue — exactly the receiver state the
    // sender's window should track.
    env.fc_port = message.port->name();
    env.fc_depth = static_cast<uint32_t>(message.port->depth());
    env.fc_capacity = static_cast<uint32_t>(message.port->capacity());
  }
  Status st = Transmit(std::move(env));
  (void)st;
  counters_.acks_sent->Inc();
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.acks_sent;
}

void NodeRuntime::NoteReceived(const Received& message) {
  counters_.receives->Inc();
  SetCurrentTraceId(message.trace_id);
  // Unconditional: an unbudgeted message must clear any deadline a prior
  // message left on this thread, or its budget would leak into unrelated
  // nested sends.
  SetCurrentDeadlineAt(message.deadline_at);
  system_->traces().Record(message.trace_id, id_, "recv",
                           message.command +
                               (message.port != nullptr
                                    ? " on " + message.port->name().ToString()
                                    : std::string()));
}

void NodeRuntime::DeliverPacket(Packet&& packet) {
  std::vector<Packet> batch;
  batch.push_back(std::move(packet));
  DeliverBatch(std::move(batch));
}

void NodeRuntime::DeliverBatch(std::vector<Packet>&& batch) {
  if (!up_.load() || batch.empty()) {
    return;
  }
  // --- Reassembly: one reassembler-lock round-trip for the whole batch.
  // Only payloads move in; each packet's trace id stays readable for drop
  // attribution. Completed messages come out in packet order. The age and
  // incarnation sweeps run inside Add; their counters are mirrored into
  // the metrics registry by delta while the lock is still held.
  // Completed messages are slices sharing their sender's encode buffer —
  // reassembly completion was at most one gather, usually none.
  std::vector<BufferSlice> completed;
  std::vector<uint64_t> completed_traces;
  std::vector<int64_t> completed_ages;
  const TimePoint node_now = clock_->Now();
  {
    std::lock_guard<std::mutex> lock(reassembler_mu_);
    const uint64_t expired_before = reassembler_.expired();
    const uint64_t sessions_before = reassembler_.session_dropped();
    for (Packet& packet : batch) {
      const uint64_t trace_id = packet.trace_id;
      int64_t age_micros = 0;
      auto added = reassembler_.Add(std::move(packet), node_now, &age_micros);
      if (!added.ok()) {
        counters_.drop_corrupt_fragment->Inc();
        system_->traces().Record(trace_id, id_,
                                 "port.drop.corrupt_fragment",
                                 added.status().message());
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.discarded_corrupt;
        continue;
      }
      std::optional<BufferSlice> message = added.take();
      if (message.has_value()) {
        completed.push_back(std::move(*message));
        completed_traces.push_back(trace_id);
        completed_ages.push_back(age_micros);
      }
    }
    const uint64_t expired = reassembler_.expired() - expired_before;
    if (expired > 0) {
      counters_.reassembly_expired->Inc(expired);
    }
    const uint64_t dropped = reassembler_.session_dropped() - sessions_before;
    if (dropped > 0) {
      counters_.reassembly_session_dropped->Inc(dropped);
    }
  }

  // --- Decode with this node's representations (no locks held). Each
  // budgeted envelope's remaining deadline is its wire budget minus the
  // network age the hop observed — the §16 per-hop decrement, computed
  // entirely from relative quantities so clock skew cannot inflate or
  // deflate it.
  std::vector<Envelope> envelopes;
  std::vector<int64_t> remaining_micros;
  envelopes.reserve(completed.size());
  remaining_micros.reserve(completed.size());
  for (size_t i = 0; i < completed.size(); ++i) {
    auto env = DecodeEnvelope(completed[i], system_->limits(),
                              transmit_registry_.AsDecodeFn());
    if (!env.ok()) {
      counters_.drop_decode_error->Inc();
      system_->traces().Record(completed_traces[i], id_,
                               "port.drop.decode_error",
                               env.status().message());
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.discarded_decode_error;
      }
      // The header may still be readable; if the sender asked for replies,
      // tell it the message was thrown away.
      auto header = DecodeEnvelopeHeader(completed[i], system_->limits());
      if (header.ok() && header->HasReply()) {
        SendSystemFailure(header->reply_to,
                          "message could not be decoded at target node: " +
                              env.status().message(),
                          header->trace_id);
      }
      continue;
    }
    Envelope decoded = env.take();
    // Every hop charges at least 1us: a zero observed age is possible (a
    // negative jitter draw clamps the delivery delay to zero, and under
    // virtual time no residual wall microseconds leak in), and a budget
    // that "survives" such a hop unspent would execute at the same
    // virtual instant it expired. The floor makes "a 1us budget cannot
    // survive any hop" hold on every clock.
    remaining_micros.push_back(
        decoded.deadline_micros == 0
            ? kNoDeadlineRemaining
            : static_cast<int64_t>(decoded.deadline_micros) -
                  std::max<int64_t>(completed_ages[i], 1));
    envelopes.push_back(std::move(decoded));
  }
  if (envelopes.empty()) {
    return;
  }

  // Piggybacked flow feedback first: it describes ports at *peers* and
  // updates this node's sender-side windows, independent of whatever
  // happens to each carrying envelope below (even a message bound for a
  // dead port still delivers its credit). All packets for this node go
  // through one shard, so feedback is applied in deterministic order.
  ApplyFlowFeedback(envelopes);
  DispatchEnvelopes(std::move(envelopes), std::move(remaining_micros));
}

void NodeRuntime::ApplyFlowFeedback(const std::vector<Envelope>& envelopes) {
  // A batch's credit grants for one port collapse into one coalesced
  // window update (DESIGN.md §12). Per-port order is all a window can
  // observe, so the only constraint is that a port's pending credit run
  // flushes before a nack for that same port. Runs are few (one per
  // distinct fed-back port), so a linear scan beats a map.
  struct CreditRun {
    PortName port;
    uint32_t depth = 0;     // latest advertised values win, as they would
    uint32_t capacity = 0;  // applying the credits one at a time
    uint32_t credits = 0;
  };
  std::vector<CreditRun> runs;
  for (const Envelope& env : envelopes) {
    if (!env.HasFlowFeedback()) {
      continue;
    }
    CreditRun* run = nullptr;
    for (CreditRun& candidate : runs) {
      if (candidate.port == env.fc_port) {
        run = &candidate;
        break;
      }
    }
    if (env.fc_full) {
      if (run != nullptr && run->credits > 0) {
        flow_.OnCreditBatch(run->port, run->depth, run->capacity,
                            run->credits);
        run->credits = 0;
      }
      flow_.OnFullNack(env.fc_port, env.fc_depth, env.fc_capacity);
      continue;
    }
    if (run == nullptr) {
      runs.push_back(CreditRun{env.fc_port, 0, 0, 0});
      run = &runs.back();
    }
    run->depth = env.fc_depth;
    run->capacity = env.fc_capacity;
    ++run->credits;
  }
  for (const CreditRun& run : runs) {
    if (run.credits > 0) {
      flow_.OnCreditBatch(run.port, run.depth, run.capacity, run.credits);
    }
  }
}

void NodeRuntime::DispatchEnvelopes(std::vector<Envelope> envelopes,
                                    std::vector<int64_t> remaining_micros) {
  enum class Action : uint8_t { kPush, kFail, kSuppress, kExpired };
  struct Plan {
    Envelope env;
    Port* port = nullptr;
    bool control = false;
    Action action = Action::kPush;
    DropKind drop_kind = DropKind::kNoGuardian;  // when action == kFail
    // Deadline budget left after the network hop (kNoDeadlineRemaining =
    // unbudgeted); stamps Received::deadline_at on push.
    int64_t remaining_micros = kNoDeadlineRemaining;
    // Dedup-gate verdict (when action == kSuppress).
    DedupTable::Verdict verdict = DedupTable::Verdict::kFresh;
    DedupTable::CachedReply replay;
    bool original_acked = false;
  };

  // Resolution pass: look each target up, no side effects yet — failure
  // replies wait for the dedup gate, because a duplicate whose target has
  // since retired or been destroyed must be answered (or silently
  // absorbed) as a duplicate, not failure-messaged, exactly as the
  // per-packet path ordered its checks.
  std::vector<Plan> plans;
  plans.reserve(envelopes.size());
  for (size_t n = 0; n < envelopes.size(); ++n) {
    Plan plan;
    plan.env = std::move(envelopes[n]);
    plan.remaining_micros = remaining_micros[n];
    const Envelope& e = plan.env;
    Guardian* guardian = FindGuardian(e.target.guardian);
    Port* port =
        guardian != nullptr ? guardian->FindPort(e.target.port_index) : nullptr;
    if (guardian == nullptr) {
      plan.action = Action::kFail;
      plan.drop_kind = DropKind::kNoGuardian;
    } else if (port == nullptr) {
      plan.action = Action::kFail;
      plan.drop_kind = DropKind::kNoPort;
    } else if (port->type().hash() != e.target.type_hash) {
      // A stale name: the guardian was re-created with different ports.
      plan.action = Action::kFail;
      plan.drop_kind = DropKind::kTypeMismatch;
    } else {
      plan.port = port;
      // Control traffic — acks, failure nacks, creation/probe replies —
      // is the backpressure signal itself; it may use the port's headroom
      // when the data buffer is full (DESIGN.md §11 shedding policy).
      plan.control = e.command == kFailureCommand || e.command == "ack" ||
                     e.command == "ping" || e.command == "pong";
    }
    if (plan.remaining_micros != kNoDeadlineRemaining &&
        plan.remaining_micros <= 0 && !plan.control) {
      // The budget was spent in the network: shed before the dedup gate
      // (the arrival is never marked seen, so an in-deadline retry of the
      // same (session, seq) classifies fresh) and before any dispatch
      // work. Shedding wins over the resolution outcome — the sender's
      // budget is gone either way, and the expired nack says so directly.
      // Control traffic is exempt: acks and nacks are the backpressure
      // signal itself and carry no work worth shedding.
      plan.action = Action::kExpired;
    }
    plans.push_back(std::move(plan));
  }

  // At-most-once gate: ONE dedup-lock round-trip classifies and marks
  // every tracked envelope of the batch, in batch order — so the second
  // copy of a message duplicated within one batch classifies against the
  // first copy's MarkSeen and is suppressed. Marking happens BEFORE the
  // push makes a message visible: the guardian may dequeue and reply the
  // instant the mailbox signals, and by then the pending-reply entry must
  // already exist or the reply escapes unjournaled and uncached. A failed
  // push rolls back in FinishPushFailed so a retry can still land. An
  // unroutable fresh envelope is deliberately NOT marked: its retry must
  // execute once the target exists.
  {
    std::lock_guard<std::mutex> lock(dedup_mu_);
    // Activity stamps use the system's monotonic base clock: session
    // idleness is a TTL, and TTLs measured on a skewable clock misfire on
    // every jump. (Under the wall clock this is the same clock as the
    // node view.)
    const TimePoint gate_now = system_->clock()->Now();
    uint64_t expired_sessions = 0;
    const Micros idle = system_->config().dedup_session_idle;
    if (idle.count() > 0) {
      // Idle-session GC, amortized like the reassembler sweep: at most
      // once per idle/4. The sweep measures against the same monotonic
      // clock the stamps were written with — unless the planted
      // local-clock bug is armed, in which case it consults the node's
      // skewable view and a forward skew step >= idle expires sessions
      // that are in active use.
      const TimePoint sweep_now =
          g_dedup_sweep_local_clock.load(std::memory_order_relaxed)
              ? clock_->Now()
              : gate_now;
      if (sweep_now - dedup_last_sweep_ >= idle / 4 ||
          sweep_now < dedup_last_sweep_) {
        expired_sessions = dedup_.ExpireIdleSessions(sweep_now, idle);
        dedup_last_sweep_ = sweep_now;
      }
    }
    for (Plan& plan : plans) {
      const Envelope& e = plan.env;
      if (plan.action == Action::kExpired) {
        // Shed before the gate: an expired arrival is never classified,
        // marked, or touched, so a later in-deadline retry of the same
        // (session, seq) is kFresh and executes exactly once.
        continue;
      }
      if (!e.Tracked()) {
        continue;
      }
      plan.verdict = dedup_.Classify(e.session_id, e.dedup_seq, &plan.replay);
      dedup_.Touch(e.session_id, gate_now);
      if (plan.verdict != DedupTable::Verdict::kFresh) {
        plan.original_acked = dedup_.Acked(e.session_id, e.dedup_seq);
        plan.action = Action::kSuppress;
        continue;
      }
      if (plan.action != Action::kPush) {
        continue;
      }
      dedup_.MarkSeen(e.session_id, e.dedup_seq);
      dedup_.Touch(e.session_id, gate_now);
      if (e.HasReply()) {
        pending_replies_[e.reply_to] =
            PendingReply{e.session_id, e.dedup_seq};
      }
    }
    if (expired_sessions > 0) {
      counters_.dedup_sessions_expired->Inc(expired_sessions);
    }
  }

  // Execution pass, in batch order. Runs of consecutive pushes into one
  // (port, control-class) pair collapse into a single PushBatch — one
  // mailbox lock and at most one receiver wake per run.
  const TimePoint dispatch_now = clock_->Now();
  size_t i = 0;
  while (i < plans.size()) {
    Plan& plan = plans[i];
    if (plan.action == Action::kExpired) {
      FinishExpired(plan.env);
      ++i;
      continue;
    }
    if (plan.action == Action::kSuppress) {
      FinishSuppressed(plan.env, plan.verdict, std::move(plan.replay),
                       plan.original_acked);
      ++i;
      continue;
    }
    if (plan.action == Action::kFail) {
      FinishUnroutable(plan.env, plan.drop_kind);
      ++i;
      continue;
    }
    size_t end = i + 1;
    while (end < plans.size() && plans[end].action == Action::kPush &&
           plans[end].port == plan.port && plans[end].control == plan.control) {
      ++end;
    }
    std::vector<Received> run;
    run.reserve(end - i);
    for (size_t k = i; k < end; ++k) {
      Envelope& e = plans[k].env;
      Received message;
      message.command = std::move(e.command);
      message.args = std::move(e.args);
      message.reply_to = e.reply_to;
      message.ack_to = e.ack_to;
      message.src_node = e.src_node;
      message.msg_id = e.msg_id;
      message.trace_id = e.trace_id;
      message.session_id = e.session_id;
      message.dedup_seq = e.dedup_seq;
      if (plans[k].remaining_micros != kNoDeadlineRemaining) {
        // Project the surviving budget onto this node's clock so dequeue
        // can lazily discard entries whose budget dies in the queue.
        message.deadline_at =
            dispatch_now + Micros(plans[k].remaining_micros);
      }
      run.push_back(std::move(message));
    }
    const std::vector<Port::PushOutcome> outcomes =
        plan.port->PushBatch(std::move(run), plan.control);
    for (size_t k = i; k < end; ++k) {
      const Port::PushOutcome& outcome = outcomes[k - i];
      const Envelope& e = plans[k].env;
      if (outcome.result != PushResult::kOk) {
        FinishPushFailed(e, *plans[k].port, outcome.result);
        continue;
      }
      if (outcome.via_headroom) {
        counters_.control_overflow->Inc();
      }
      counters_.delivered->Inc();
      system_->traces().Record(e.trace_id, id_, "port.enqueued",
                               e.target.ToString());
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.messages_delivered;
    }
    i = end;
  }
}

void NodeRuntime::FinishUnroutable(const Envelope& env, DropKind kind) {
  const char* trace_event = nullptr;
  const char* reason = nullptr;
  switch (kind) {
    case DropKind::kNoGuardian:
      counters_.drop_no_guardian->Inc();
      trace_event = "port.drop.no_guardian";
      reason = "target guardian doesn't exist";
      break;
    case DropKind::kNoPort:
      counters_.drop_no_port->Inc();
      trace_event = "port.drop.no_port";
      reason = "target port doesn't exist";
      break;
    case DropKind::kTypeMismatch:
      counters_.drop_type_mismatch->Inc();
      trace_event = "port.drop.type_mismatch";
      reason = "target port type mismatch";
      break;
  }
  system_->traces().Record(env.trace_id, id_, trace_event,
                           env.target.ToString());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    switch (kind) {
      case DropKind::kNoGuardian:
        ++stats_.discarded_no_guardian;
        break;
      case DropKind::kNoPort:
        ++stats_.discarded_no_port;
        break;
      case DropKind::kTypeMismatch:
        ++stats_.discarded_type_mismatch;
        break;
    }
  }
  SendSystemFailure(env.reply_to, reason, env.trace_id);
}

void NodeRuntime::FinishExpired(const Envelope& env) {
  counters_.expired_shed->Inc();
  system_->traces().Record(env.trace_id, id_, "deliver.expired.shed",
                           env.command + " -> " + env.target.ToString());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.expired_shed;
  }
  // Ack port first: the send primitives wait there, so a SyncSend learns
  // immediately that its budget died in flight instead of burning the
  // rest of the attempt on an ack that can never come.
  const PortName to = env.HasAck() ? env.ack_to : env.reply_to;
  SendSystemFailure(to, kExpiredReason, env.trace_id);
}

void NodeRuntime::FinishExpiredAtDequeue(Received message) {
  if (message.dedup_seq != 0) {
    // Mirror FinishPushFailed's rollback: the dedup gate marked this
    // message seen when it was enqueued, but it never executed — an
    // in-deadline retry of the same (session, seq) must classify fresh
    // and execute exactly once.
    std::lock_guard<std::mutex> lock(dedup_mu_);
    dedup_.Unmark(message.session_id, message.dedup_seq);
    if (!message.reply_to.IsNull()) {
      auto it = pending_replies_.find(message.reply_to);
      if (it != pending_replies_.end() &&
          it->second.session == message.session_id &&
          it->second.seq == message.dedup_seq) {
        pending_replies_.erase(it);
      }
    }
  }
  counters_.expired_dequeue->Inc();
  system_->traces().Record(message.trace_id, id_, "deliver.expired.queue",
                           message.command);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.expired_dequeue;
  }
  const PortName to =
      !message.ack_to.IsNull() ? message.ack_to : message.reply_to;
  SendSystemFailure(to, kExpiredQueueReason, message.trace_id);
}

void NodeRuntime::SweepReassembler() {
  if (!up_.load()) {
    return;
  }
  std::lock_guard<std::mutex> lock(reassembler_mu_);
  const uint64_t expired_before = reassembler_.expired();
  reassembler_.SweepExpired(clock_->Now());
  const uint64_t expired = reassembler_.expired() - expired_before;
  if (expired > 0) {
    counters_.reassembly_expired->Inc(expired);
  }
}

void NodeRuntime::FinishPushFailed(const Envelope& env, const Port& port,
                                   PushResult pushed) {
  if (env.Tracked()) {
    // Roll back the dedup gate's mark so a retry can still land.
    std::lock_guard<std::mutex> lock(dedup_mu_);
    dedup_.Unmark(env.session_id, env.dedup_seq);
    if (env.HasReply()) {
      auto it = pending_replies_.find(env.reply_to);
      if (it != pending_replies_.end() &&
          it->second.session == env.session_id &&
          it->second.seq == env.dedup_seq) {
        pending_replies_.erase(it);
      }
    }
  }
  if (pushed == PushResult::kRetired) {
    // A retired port is not a full one: the sender learns that retrying
    // the same name is useless until the port is recreated.
    counters_.drop_port_retired->Inc();
    system_->traces().Record(env.trace_id, id_, "port.drop.retired",
                             env.target.ToString());
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.discarded_port_retired;
    }
    SendSystemFailure(env.reply_to, "target port retired", env.trace_id);
    return;
  }
  counters_.drop_port_full->Inc();
  system_->traces().Record(env.trace_id, id_, "port.drop.full",
                           env.target.ToString());
  if (env.fc_full) {
    // The discarded envelope was itself a §11 fc_full nack and even the
    // control headroom could not admit it: the congestion signal is lost
    // and the sender degrades to its plain ack-timeout path. Made loud so
    // the degradation is observable (it used to vanish into the generic
    // full-port counters).
    counters_.nacks_shed->Inc();
    system_->traces().Record(env.trace_id, id_, "flow.nack_shed",
                             env.target.ToString() + " fc_port " +
                                 env.fc_port.ToString());
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.discarded_port_full;
  }
  if (system_->config().flow.enabled) {
    // The failure doubles as a flow nack: it carries the port's depth
    // and capacity and goes to the ack port when the sender has one, so
    // the sending primitive both learns of the loss fast (no ack
    // timeout) and halves its window.
    SendFlowNack(env, port);
  } else {
    SendSystemFailure(env.reply_to, "no room at target port", env.trace_id);
  }
}

void NodeRuntime::FinishSuppressed(const Envelope& env,
                                   DedupTable::Verdict verdict,
                                   DedupTable::CachedReply replay,
                                   bool original_acked) {
  counters_.dup_suppressed->Inc();
  system_->traces().Record(env.trace_id, id_, "dedup.suppressed",
                           env.command + " seq " +
                               std::to_string(env.dedup_seq));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.duplicates_suppressed;
  }
  // A suppressed duplicate earns a replacement receipt acknowledgement —
  // but only if the original was genuinely dequeued (its ack went out and
  // may have been lost). Without the replacement, a ReliableSend whose
  // first ack was lost would retry forever against a receiver that drops
  // every retry; without the dequeue condition, a duplicate of a message
  // still sitting in the buffer would fake a receipt the application never
  // gave.
  if (env.HasAck() && original_acked) {
    Envelope ack;
    ack.msg_id = NextMsgId();
    ack.trace_id = env.trace_id;
    ack.src_node = id_;
    ack.target = env.ack_to;
    ack.command = "ack";
    ack.args = {Value::Str(std::to_string(env.msg_id))};
    StampFlowCredit(ack, env.target);
    Status st = Transmit(std::move(ack));
    (void)st;
    counters_.acks_sent->Inc();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.acks_sent;
  }
  if (verdict == DedupTable::Verdict::kReplay) {
    // Answer from the cache: a fresh msg_id, the duplicate's trace id so
    // the resend joins the retry's causal chain, and the duplicate's reply
    // port (retries reuse one reply port; fall back on the cached one for
    // a blind network duplicate).
    Envelope reply;
    reply.msg_id = NextMsgId();
    reply.trace_id = env.trace_id;
    reply.src_node = id_;
    reply.target = env.HasReply() ? env.reply_to : replay.reply_to;
    reply.command = std::move(replay.command);
    reply.args = std::move(replay.args);
    system_->traces().Record(env.trace_id, id_, "dedup.replayed",
                             reply.command + " -> " +
                                 reply.target.ToString());
    Status st = Transmit(std::move(reply));
    (void)st;
    counters_.dup_replayed->Inc();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.replies_replayed;
  }
}

void NodeRuntime::StampFlowCredit(Envelope& ack, const PortName& about) {
  if (!system_->config().flow.enabled) {
    return;
  }
  Guardian* guardian = FindGuardian(about.guardian);
  Port* port = guardian != nullptr ? guardian->FindPort(about.port_index)
                                   : nullptr;
  if (port == nullptr) {
    return;  // the port is gone; the ack still counts, just creditless
  }
  ack.fc_port = port->name();
  ack.fc_depth = static_cast<uint32_t>(port->depth());
  ack.fc_capacity = static_cast<uint32_t>(port->capacity());
}

void NodeRuntime::SendFlowNack(const Envelope& dropped, const Port& port) {
  // The send primitives wait on the ack port, so the nack goes there when
  // one exists; a bare reply_to sender still gets the failure message the
  // §3.4 semantics promised, now with the fc fields attached.
  const PortName to = dropped.HasAck() ? dropped.ack_to : dropped.reply_to;
  if (to.IsNull()) {
    return;
  }
  Envelope env;
  env.msg_id = NextMsgId();
  env.trace_id = dropped.trace_id;
  env.src_node = id_;
  env.target = to;
  env.command = kFailureCommand;
  env.args = {Value::Str("no room at target port")};
  env.fc_port = port.name();
  env.fc_depth = static_cast<uint32_t>(port.depth());
  env.fc_capacity = static_cast<uint32_t>(port.capacity());
  env.fc_full = true;
  Status st = Transmit(std::move(env));
  (void)st;
  counters_.failures_synthesized->Inc();
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.failures_synthesized;
}

void NodeRuntime::SetSkipDedupJournalForTesting(bool skip) {
  g_skip_dedup_journal.store(skip, std::memory_order_relaxed);
}

void NodeRuntime::SetDedupSweepOnLocalClockForTesting(bool local) {
  g_dedup_sweep_local_clock.store(local, std::memory_order_relaxed);
}

void NodeRuntime::MaybeJournalReply(const Envelope& env) {
  PendingReply pending;
  uint64_t high_water = 0;
  {
    std::lock_guard<std::mutex> lock(dedup_mu_);
    auto it = pending_replies_.find(env.target);
    if (it == pending_replies_.end()) {
      return;
    }
    pending = it->second;
    pending_replies_.erase(it);
    high_water =
        std::max(dedup_.HighWater(pending.session), pending.seq);
  }
  // One record per replied-to operation: identity, the session's receive
  // high-water mark (recovery's conservative floor), and the reply itself
  // in component form so RecoverValues can rebuild it without the
  // abstract-type registry.
  Value record = Value::Record(
      {{"s", Value::Int(static_cast<int64_t>(pending.session))},
       {"q", Value::Int(static_cast<int64_t>(pending.seq))},
       {"hw", Value::Int(static_cast<int64_t>(high_water))},
       {"to", Value::OfPort(env.target)},
       {"cmd", Value::Str(env.command)},
       {"args", Value::Array(env.args)}});
  if (!g_skip_dedup_journal.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> log_lock(dedup_log_mu_);
    Wal dedup_log(&stable_store_, kDedupLogName);
    crash_dedup_before_journal.Hit();
    Status st = dedup_log.AppendValue(record);
    if (!st.ok()) {
      GLOG_ERROR << "failed to journal reply for dedup seq "
                 << pending.seq << ": " << st;
    }
    // The logged-but-not-sent window: the reply is durable but the sender
    // never hears it; the retry must be answered from the recovered cache.
    crash_dedup_after_journal.Hit();
    counters_.dedup_journaled->Inc();
    if (++dedup_appends_since_compact_ >= kDedupCompactEvery) {
      // Compact: keep only the live reply cache (the meta-log pattern —
      // checkpoint, then re-append). A crash mid-compaction can lose dedup
      // records; retries of those old operations then fall back on
      // application idempotence / name-keyed creation.
      dedup_appends_since_compact_ = 0;
      std::vector<std::pair<std::pair<uint64_t, uint64_t>,
                            DedupTable::CachedReply>>
          live;
      {
        std::lock_guard<std::mutex> lock(dedup_mu_);
        live = dedup_.Snapshot();
      }
      Status checkpointed = dedup_log.Checkpoint({});
      (void)checkpointed;
      for (auto& [key, reply] : live) {
        uint64_t hw;
        {
          std::lock_guard<std::mutex> lock(dedup_mu_);
          hw = dedup_.HighWater(key.first);
        }
        Value kept = Value::Record(
            {{"s", Value::Int(static_cast<int64_t>(key.first))},
             {"q", Value::Int(static_cast<int64_t>(key.second))},
             {"hw", Value::Int(static_cast<int64_t>(hw))},
             {"to", Value::OfPort(reply.reply_to)},
             {"cmd", Value::Str(reply.command)},
             {"args", Value::Array(reply.args)}});
        Status appended = dedup_log.AppendValue(kept);
        (void)appended;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(dedup_mu_);
    dedup_.CacheReply(pending.session, pending.seq,
                      DedupTable::CachedReply{env.command, env.args,
                                              env.target});
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.replies_journaled;
}

Status NodeRuntime::RecoverDedup() {
  std::lock_guard<std::mutex> log_lock(dedup_log_mu_);
  Wal dedup_log(&stable_store_, kDedupLogName);
  auto recovery = dedup_log.RecoverValues();
  if (!recovery.ok()) {
    return recovery.status();
  }
  std::lock_guard<std::mutex> lock(dedup_mu_);
  dedup_.Clear();
  pending_replies_.clear();
  for (const auto& record : *recovery) {
    auto session_field = record.field("s");
    auto seq_field = record.field("q");
    if (!session_field.ok() || !seq_field.ok()) {
      continue;
    }
    const uint64_t session =
        static_cast<uint64_t>(session_field->int_value());
    auto hw_field = record.field("hw");
    if (hw_field.ok()) {
      dedup_.RestoreFloor(session,
                          static_cast<uint64_t>(hw_field->int_value()));
    }
    const uint64_t seq = static_cast<uint64_t>(seq_field->int_value());
    auto to_field = record.field("to");
    auto cmd_field = record.field("cmd");
    auto args_field = record.field("args");
    if (seq == 0 || !to_field.ok() || !cmd_field.ok() || !args_field.ok()) {
      continue;
    }
    dedup_.CacheReply(session, seq,
                      DedupTable::CachedReply{cmd_field->string_value(),
                                              args_field->items(),
                                              to_field->port_value()});
  }
  return OkStatus();
}

std::string NodeRuntime::Report() const {
  std::string out = "node '" + name_ + "' (id " + std::to_string(id_) + ") " +
                    (up_.load() ? "up" : "down") + "\n";
  NodeStats s = stats();
  auto line = [&out](const char* label, uint64_t v) {
    if (v != 0) {
      out += "  " + std::string(label) + ": " + std::to_string(v) + "\n";
    }
  };
  line("messages_sent", s.messages_sent);
  line("messages_delivered", s.messages_delivered);
  line("discarded_no_guardian", s.discarded_no_guardian);
  line("discarded_no_port", s.discarded_no_port);
  line("discarded_port_full", s.discarded_port_full);
  line("discarded_port_retired", s.discarded_port_retired);
  line("discarded_type_mismatch", s.discarded_type_mismatch);
  line("discarded_decode_error", s.discarded_decode_error);
  line("discarded_corrupt", s.discarded_corrupt);
  line("failures_synthesized", s.failures_synthesized);
  line("acks_sent", s.acks_sent);
  line("duplicates_suppressed", s.duplicates_suppressed);
  line("replies_replayed", s.replies_replayed);
  line("replies_journaled", s.replies_journaled);
  line("expired_shed", s.expired_shed);
  line("expired_dequeue", s.expired_dequeue);
  std::vector<Guardian*> gs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    gs.reserve(guardians_.size());
    for (const auto& [gid, guardian] : guardians_) {
      gs.push_back(guardian.get());
    }
  }
  for (Guardian* g : gs) {
    for (const Guardian::PortStat& ps : g->PortStats()) {
      out += "  port " + ps.name + " [" + ps.type_name + "] depth " +
             std::to_string(ps.depth) + "/" + std::to_string(ps.capacity) +
             " enqueued " + std::to_string(ps.enqueued);
      if (ps.discarded_full != 0) {
        out += " dropped_full " + std::to_string(ps.discarded_full);
      }
      if (ps.discarded_retired != 0) {
        out += " dropped_retired " + std::to_string(ps.discarded_retired);
      }
      if (ps.retired) {
        out += " (retired)";
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace guardians
