#include "src/guardian/node_runtime.h"

#include <cassert>
#include <thread>

#include "src/common/log.h"
#include "src/fault/crashpoint.h"
#include "src/guardian/system.h"
#include "src/obs/trace.h"
#include "src/wire/codec.h"

namespace guardians {

namespace {

// The creation-persist path: a crash between handing out a guardian id (or
// starting the guardian) and logging the creation record must not leave a
// recoverable half-guardian or reuse an id.
CrashPoint crash_persist_next_id("node.persist_next_id.before_put");
CrashPoint crash_persist_creation_before("node.persist_creation.before_log");
CrashPoint crash_persist_creation_after("node.persist_creation.after_log");

constexpr GuardianId kPrimordialId = 1;
constexpr char kMetaLogName[] = "node/meta";
constexpr char kNextIdCell[] = "node/next_guardian_id";

// The primordial guardian: created with the node, never persistent-logged
// (it is always re-created on restart). It creates guardians at its node in
// response to messages arriving from guardians at other nodes, subject to
// the owner's admission policy.
class PrimordialGuardian : public Guardian {
 public:
  Status Setup(const ValueList& args) override {
    (void)args;
    AddPort(PrimordialPortType(), Port::kDefaultCapacity, /*provided=*/true);
    return OkStatus();
  }

  void Main() override {
    Port* requests = port(0);
    for (;;) {
      auto received = Receive(requests, Micros::max());
      if (!received.ok()) {
        return;  // node down
      }
      if (received->command == "create_guardian") {
        HandleCreate(*received);
      } else if (received->command == "ping") {
        if (!received->reply_to.IsNull()) {
          Status ignored = Send(received->reply_to, "pong", {});
          (void)ignored;
        }
      }
      // failure(...) messages to the primordial port are ignored.
    }
  }

 private:
  void HandleCreate(const Received& request) {
    const std::string type_name = request.args[0].string_value();
    const std::string guardian_name = request.args[1].string_value();
    const ValueList creation_args = request.args[2].items();
    const bool persistent = request.args[3].bool_value();

    auto refuse = [&](const std::string& why) {
      if (!request.reply_to.IsNull()) {
        Status ignored =
            Send(request.reply_to, "refused", {Value::Str(why)});
        (void)ignored;
      }
    };

    auto created = runtime().CreateGuardianForRemote(
        type_name, guardian_name, creation_args, persistent,
        request.src_node);
    if (!created.ok()) {
      refuse(created.status().ToString());
      return;
    }
    std::vector<Value> port_values;
    for (const PortName& pn : (*created)->ProvidedPorts()) {
      port_values.push_back(Value::OfPort(pn));
    }
    if (!request.reply_to.IsNull()) {
      Status ignored = Send(request.reply_to, "created",
                            {Value::Array(std::move(port_values))});
      (void)ignored;
    }
  }
};

}  // namespace

PortType PrimordialPortType() {
  return PortType(
      "primordial",
      {MessageSig{"create_guardian",
                  {ArgType::Of(TypeTag::kString),  // guardian type name
                   ArgType::Of(TypeTag::kString),  // instance name
                   ArgType::Of(TypeTag::kArray),   // creation arguments
                   ArgType::Of(TypeTag::kBool)},   // persistent?
                  {"created", "refused"}},
       MessageSig{"ping", {}, {"pong"}}});
}

PortType CreationReplyPortType() {
  return PortType("creation_reply",
                  {MessageSig{"created", {ArgType::Of(TypeTag::kArray)}, {}},
                   MessageSig{"refused", {ArgType::Of(TypeTag::kString)}, {}},
                   MessageSig{"pong", {}, {}}});
}

PortType AckPortType() {
  return PortType("sys_ack",
                  {MessageSig{"ack", {ArgType::Of(TypeTag::kString)}, {}}});
}

NodeRuntime::NodeRuntime(System* system, NodeId id, std::string name,
                         uint64_t seed)
    : system_(system), id_(id), name_(std::move(name)), rng_(seed) {
  MetricsRegistry& metrics = system_->metrics();
  counters_.sent = metrics.counter("node.messages_sent");
  counters_.delivered = metrics.counter("deliver.delivered");
  counters_.receives = metrics.counter("guardian.receives");
  counters_.drop_no_guardian = metrics.counter("deliver.drop.no_guardian");
  counters_.drop_no_port = metrics.counter("deliver.drop.no_port");
  counters_.drop_port_retired =
      metrics.counter("deliver.drop.port_retired");
  counters_.drop_port_full = metrics.counter("deliver.drop.port_full");
  counters_.drop_type_mismatch =
      metrics.counter("deliver.drop.type_mismatch");
  counters_.drop_decode_error =
      metrics.counter("deliver.drop.decode_error");
  counters_.drop_corrupt_fragment =
      metrics.counter("deliver.drop.corrupt_fragment");
  counters_.failures_synthesized =
      metrics.counter("deliver.failures_synthesized");
  counters_.acks_sent = metrics.counter("deliver.acks_sent");
}

NodeRuntime::~NodeRuntime() { Crash(); }

void NodeRuntime::RegisterGuardianType(const std::string& type_name,
                                       Factory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  factories_[type_name] = std::move(factory);
}

bool NodeRuntime::KnowsGuardianType(const std::string& type_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(type_name) > 0;
}

void NodeRuntime::SetAdmissionPolicy(AdmissionPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  admission_policy_ = std::move(policy);
}

Result<Guardian*> NodeRuntime::CreateGuardian(const std::string& type_name,
                                              const std::string& guardian_name,
                                              const ValueList& args,
                                              bool persistent) {
  // Creation does stable-storage work for this node, so it runs under this
  // node's fault scope; a crashpoint firing inside turns into the same
  // kNodeDown the caller would see racing a real crash.
  ScopedFaultScope scope(this);
  try {
    return CreateGuardianImpl(type_name, guardian_name, args, persistent);
  } catch (const CrashPointTriggered&) {
    return Status(Code::kNodeDown, "node crashed during guardian creation");
  }
}

Result<Guardian*> NodeRuntime::CreateGuardianImpl(
    const std::string& type_name, const std::string& guardian_name,
    const ValueList& args, bool persistent) {
  if (!up_.load()) {
    return Status(Code::kNodeDown, "node is down");
  }
  Factory factory;
  GuardianId gid;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(type_name);
    if (it == factories_.end()) {
      return Status(Code::kNotFound,
                    "guardian type '" + type_name +
                        "' is not registered at node '" + name_ + "'");
    }
    factory = it->second;
    gid = next_guardian_id_++;
  }
  PersistNextId();

  std::unique_ptr<Guardian> guardian = factory();
  Guardian* raw = guardian.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    guardians_.emplace(gid, std::move(guardian));
  }
  raw->MarkPersistent(persistent);
  Status started = StartGuardian(raw, type_name, guardian_name, gid, args,
                                 /*recovering=*/false);
  if (!started.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    guardians_.erase(gid);
    return started;
  }
  if (persistent) {
    PersistCreation(type_name, guardian_name, gid, args);
  }
  return raw;
}

Result<Guardian*> NodeRuntime::CreateGuardianForRemote(
    const std::string& type_name, const std::string& guardian_name,
    const ValueList& args, bool persistent, NodeId requester) {
  AdmissionPolicy policy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    policy = admission_policy_;
  }
  if (policy && !policy(type_name, requester)) {
    return Status(Code::kPermissionDenied,
                  "node '" + name_ + "' refused creation of '" + type_name +
                      "' for node " + std::to_string(requester));
  }
  return CreateGuardian(type_name, guardian_name, args, persistent);
}

Status NodeRuntime::DestroyGuardian(GuardianId gid) {
  ScopedFaultScope scope(this);
  try {
    return DestroyGuardianImpl(gid);
  } catch (const CrashPointTriggered&) {
    return Status(Code::kNodeDown, "node crashed during guardian destruction");
  }
}

Status NodeRuntime::DestroyGuardianImpl(GuardianId gid) {
  std::unique_ptr<Guardian> victim;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = guardians_.find(gid);
    if (it == guardians_.end()) {
      return Status(Code::kNotFound, "no such guardian");
    }
    victim = std::move(it->second);
    guardians_.erase(it);
  }
  victim->CloseMailbox();
  victim->JoinProcesses();
  // Remove any persistent-creation record so it is not recovered.
  // (Scan-and-rewrite of the meta log; rare operation.)
  Wal meta(&stable_store_, kMetaLogName);
  auto recovery = meta.RecoverValues();
  if (recovery.ok()) {
    std::vector<Value> keep;
    for (const auto& record : *recovery) {
      auto id_field = record.field("id");
      if (id_field.ok() && id_field->is(TypeTag::kInt) &&
          static_cast<GuardianId>(id_field->int_value()) == gid) {
        continue;
      }
      keep.push_back(record);
    }
    Status st = meta.Checkpoint({});
    (void)st;
    for (const auto& record : keep) {
      Status appended = meta.AppendValue(record);
      (void)appended;
    }
  }
  return OkStatus();
}

Guardian* NodeRuntime::FindGuardian(GuardianId gid) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = guardians_.find(gid);
  return it != guardians_.end() ? it->second.get() : nullptr;
}

PortName NodeRuntime::PrimordialPort() const {
  PortName pn;
  pn.node = id_;
  pn.guardian = kPrimordialId;
  pn.port_index = 0;
  pn.type_hash = PrimordialPortType().hash();
  return pn;
}

Status NodeRuntime::StartGuardian(Guardian* guardian,
                                  const std::string& type_name,
                                  const std::string& guardian_name,
                                  GuardianId gid, const ValueList& args,
                                  bool recovering) {
  (void)type_name;
  uint64_t seal;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seal = rng_.NextU64() | 1;  // nonzero
  }
  guardian->Attach(this, gid, guardian_name, seal);
  Status init = recovering ? guardian->Recover(args) : guardian->Setup(args);
  if (!init.ok()) {
    return init;
  }
  guardian->Fork("main", [guardian] { guardian->Main(); });
  return OkStatus();
}

void NodeRuntime::PersistCreation(const std::string& type_name,
                                  const std::string& guardian_name,
                                  GuardianId gid, const ValueList& args) {
  Wal meta(&stable_store_, kMetaLogName);
  Value record = Value::Record({{"type", Value::Str(type_name)},
                                {"name", Value::Str(guardian_name)},
                                {"id", Value::Int(static_cast<int64_t>(gid))},
                                {"args", Value::Array(args)}});
  crash_persist_creation_before.Hit();
  Status st = meta.AppendValue(record);
  if (!st.ok()) {
    GLOG_ERROR << "failed to persist creation of '" << guardian_name
               << "': " << st;
  }
  // A crash here: the guardian is durably recoverable but its creator
  // never hears so — the classic logged-but-not-acked window.
  crash_persist_creation_after.Hit();
}

void NodeRuntime::PersistNextId() {
  GuardianId next;
  {
    std::lock_guard<std::mutex> lock(mu_);
    next = next_guardian_id_;
  }
  WireEncoder enc;
  enc.PutU64(next);
  crash_persist_next_id.Hit();
  Status st = stable_store_.PutCell(kNextIdCell, enc.bytes());
  if (!st.ok()) {
    GLOG_ERROR << "failed to persist next guardian id: " << st;
  }
}

std::vector<Guardian*> NodeRuntime::LiveGuardians() const {
  std::vector<Guardian*> gs;
  std::lock_guard<std::mutex> lock(mu_);
  gs.reserve(guardians_.size());
  for (const auto& [gid, guardian] : guardians_) {
    gs.push_back(guardian.get());
  }
  return gs;
}

void NodeRuntime::Crash() {
  BeginCrash();
  FinishCrash();
}

void NodeRuntime::BeginCrash() {
  int expected = kNoCrash;
  if (!crash_state_.compare_exchange_strong(expected, kCrashBeginning)) {
    return;  // another thread is already crashing the node
  }
  if (!up_.exchange(false)) {
    // The node was already down and fully retired (e.g. double Crash()).
    crash_state_.store(kNoCrash);
    return;
  }
  system_->network().SetNodeUp(id_, false);
  // Close every mailbox so blocked receives return kNodeDown and every
  // guardian process starts winding down.
  for (Guardian* g : LiveGuardians()) {
    g->CloseMailbox();
  }
  crash_state_.store(kCrashBegun);
}

void NodeRuntime::FinishCrash() {
  // A BeginCrash may still be running on another thread (a crashpoint
  // fires on a guardian thread; Crash()/Restart() come from outside): wait
  // for it to publish kCrashBegun before claiming the cleanup.
  int state = crash_state_.load();
  while (state == kCrashBeginning) {
    std::this_thread::yield();
    state = crash_state_.load();
  }
  if (state != kCrashBegun ||
      !crash_state_.compare_exchange_strong(state, kNoCrash)) {
    return;  // nothing pending, or another FinishCrash claimed it
  }
  std::vector<Guardian*> gs = LiveGuardians();
  // Wait for every process to observe the crash and exit...
  for (Guardian* g : gs) {
    g->JoinProcesses();
  }
  // ...then retire them. Their volatile state is unreachable from the new
  // incarnation (the map is emptied), but the objects stay alive so
  // application threads blocked on them fail cleanly with kNodeDown.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [gid, guardian] : guardians_) {
      graveyard_.push_back(std::move(guardian));
    }
    guardians_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(reassembler_mu_);
    reassembler_ = Reassembler();
  }
}

Status NodeRuntime::Restart() {
  // Complete any crashpoint-initiated crash first, then boot under this
  // node's fault scope (recovery replay is stable-storage work too).
  FinishCrash();
  ScopedFaultScope scope(this);
  try {
    return RestartImpl();
  } catch (const CrashPointTriggered&) {
    return Status(Code::kNodeDown, "node crashed during recovery");
  }
}

Status NodeRuntime::RestartImpl() {
  if (up_.load()) {
    return Status(Code::kInvalidArgument, "node is already up");
  }
  // Recover the creation counter first so recreated and new guardians get
  // non-colliding ids.
  {
    auto cell = stable_store_.GetCell(kNextIdCell);
    std::lock_guard<std::mutex> lock(mu_);
    next_guardian_id_ = 2;
    if (cell.ok()) {
      WireDecoder dec(*cell);
      auto next = dec.GetU64();
      if (next.ok()) {
        next_guardian_id_ = *next;
      }
    }
  }
  up_.store(true);
  system_->network().SetNodeUp(id_, true);

  // The primordial guardian comes into existence with the node.
  {
    auto primordial = std::make_unique<PrimordialGuardian>();
    Guardian* raw = primordial.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      guardians_.emplace(kPrimordialId, std::move(primordial));
    }
    Status started = StartGuardian(raw, "primordial", "primordial",
                                   kPrimordialId, {}, /*recovering=*/false);
    if (!started.ok()) {
      return started;
    }
  }

  // Re-create persistent guardians and run their recovery processes.
  Wal meta(&stable_store_, kMetaLogName);
  auto recovery = meta.RecoverValues();
  if (!recovery.ok()) {
    return recovery.status();
  }
  for (const auto& record : *recovery) {
    GUARDIANS_ASSIGN_OR_RETURN(Value type_field, record.field("type"));
    GUARDIANS_ASSIGN_OR_RETURN(Value name_field, record.field("name"));
    GUARDIANS_ASSIGN_OR_RETURN(Value id_field, record.field("id"));
    GUARDIANS_ASSIGN_OR_RETURN(Value args_field, record.field("args"));
    const std::string type_name = type_field.string_value();
    const std::string guardian_name = name_field.string_value();
    const GuardianId gid = static_cast<GuardianId>(id_field.int_value());
    const ValueList creation_args = args_field.items();

    Factory factory;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = factories_.find(type_name);
      if (it == factories_.end()) {
        GLOG_ERROR << "cannot recover guardian '" << guardian_name
                   << "': type '" << type_name << "' not registered";
        continue;
      }
      factory = it->second;
    }
    std::unique_ptr<Guardian> guardian = factory();
    Guardian* raw = guardian.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      guardians_.emplace(gid, std::move(guardian));
    }
    raw->MarkPersistent(true);
    Status started = StartGuardian(raw, type_name, guardian_name, gid,
                                   creation_args, /*recovering=*/true);
    if (!started.ok()) {
      GLOG_ERROR << "recovery of guardian '" << guardian_name
                 << "' failed: " << started;
      std::lock_guard<std::mutex> lock(mu_);
      guardians_.erase(gid);
    }
  }
  return OkStatus();
}

NodeStats NodeRuntime::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

uint64_t NodeRuntime::NextMsgId() {
  // Node id in the high bits keeps ids globally unique.
  return (static_cast<uint64_t>(id_) << 40) | (msg_counter_.fetch_add(1) + 1);
}

Rng NodeRuntime::ForkRng() {
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.Fork();
}

Status NodeRuntime::Transmit(Envelope env) {
  if (!up_.load()) {
    return Status(Code::kNodeDown, "node is down");
  }
  if (env.target.IsNull()) {
    return Status(Code::kInvalidArgument, "send to null port");
  }
  // Type check against the guardian-header library — the moved-to-send-time
  // analog of the paper's compile-time checking. The implicit failure
  // message is always legal.
  if (env.command != kFailureCommand) {
    auto port_type = system_->port_types().Lookup(env.target.type_hash);
    if (!port_type.ok()) {
      return port_type.status();
    }
    GUARDIANS_RETURN_IF_ERROR(
        port_type->Check(env.command, env.args, env.HasReply()));
  }
  // Steps 1+2 of the send semantics: encode arguments left to right, then
  // construct the message. An encode failure terminates the send here.
  auto bytes = EncodeEnvelope(env, system_->limits());
  if (!bytes.ok()) {
    return bytes.status();
  }
  // Step 3: fragment and hand to the network. The sender continues as soon
  // as this returns; delivery is not guaranteed.
  system_->traces().Record(env.trace_id, id_, "send",
                           env.command + " -> " + env.target.ToString());
  auto packets = Fragment(std::move(*bytes), env.msg_id, id_, env.target.node,
                          system_->limits().max_packet_payload, env.trace_id);
  for (auto& packet : packets) {
    system_->network().Send(std::move(packet));
  }
  counters_.sent->Inc();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.messages_sent;
  }
  return OkStatus();
}

void NodeRuntime::SendSystemFailure(const PortName& to,
                                    const std::string& reason,
                                    uint64_t trace_id) {
  if (to.IsNull()) {
    return;
  }
  Envelope env;
  env.msg_id = NextMsgId();
  env.trace_id = trace_id;  // the failure reply joins the lost message's trace
  env.src_node = id_;
  env.target = to;
  env.command = kFailureCommand;
  env.args = {Value::Str(reason)};
  // Failure envelopes carry no reply port, so they can never loop.
  Status st = Transmit(std::move(env));
  (void)st;
  counters_.failures_synthesized->Inc();
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.failures_synthesized;
}

void NodeRuntime::SendAck(const Received& message) {
  Envelope env;
  env.msg_id = NextMsgId();
  env.trace_id = message.trace_id;
  env.src_node = id_;
  env.target = message.ack_to;
  env.command = "ack";
  env.args = {Value::Str(std::to_string(message.msg_id))};
  Status st = Transmit(std::move(env));
  (void)st;
  counters_.acks_sent->Inc();
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.acks_sent;
}

void NodeRuntime::NoteReceived(const Received& message) {
  counters_.receives->Inc();
  SetCurrentTraceId(message.trace_id);
  system_->traces().Record(message.trace_id, id_, "recv",
                           message.command +
                               (message.port != nullptr
                                    ? " on " + message.port->name().ToString()
                                    : std::string()));
}

void NodeRuntime::DeliverPacket(Packet&& packet) {
  if (!up_.load()) {
    return;
  }
  // Only the payload moves into the reassembler; the header fields stay
  // readable for trace attribution below.
  const uint64_t trace_id = packet.trace_id;
  std::optional<Bytes> message;
  {
    std::lock_guard<std::mutex> lock(reassembler_mu_);
    auto added = reassembler_.Add(std::move(packet));
    if (!added.ok()) {
      counters_.drop_corrupt_fragment->Inc();
      system_->traces().Record(trace_id, id_,
                               "port.drop.corrupt_fragment",
                               added.status().message());
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.discarded_corrupt;
      return;
    }
    message = added.take();
  }
  if (!message.has_value()) {
    return;  // more fragments needed
  }

  auto env = DecodeEnvelope(*message, system_->limits(),
                            transmit_registry_.AsDecodeFn());
  if (!env.ok()) {
    counters_.drop_decode_error->Inc();
    system_->traces().Record(trace_id, id_, "port.drop.decode_error",
                             env.status().message());
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.discarded_decode_error;
    }
    // The header may still be readable; if the sender asked for replies,
    // tell it the message was thrown away.
    auto header = DecodeEnvelopeHeader(*message, system_->limits());
    if (header.ok() && header->HasReply()) {
      SendSystemFailure(header->reply_to,
                        "message could not be decoded at target node: " +
                            env.status().message(),
                        header->trace_id);
    }
    return;
  }
  DeliverEnvelope(env.take());
}

void NodeRuntime::DeliverEnvelope(Envelope env) {
  Guardian* guardian = FindGuardian(env.target.guardian);
  if (guardian == nullptr) {
    counters_.drop_no_guardian->Inc();
    system_->traces().Record(env.trace_id, id_, "port.drop.no_guardian",
                             env.target.ToString());
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.discarded_no_guardian;
    }
    SendSystemFailure(env.reply_to, "target guardian doesn't exist",
                      env.trace_id);
    return;
  }
  Port* port = guardian->FindPort(env.target.port_index);
  if (port == nullptr) {
    counters_.drop_no_port->Inc();
    system_->traces().Record(env.trace_id, id_, "port.drop.no_port",
                             env.target.ToString());
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.discarded_no_port;
    }
    SendSystemFailure(env.reply_to, "target port doesn't exist", env.trace_id);
    return;
  }
  if (port->type().hash() != env.target.type_hash) {
    // A stale name: the guardian was re-created with different ports.
    counters_.drop_type_mismatch->Inc();
    system_->traces().Record(env.trace_id, id_, "port.drop.type_mismatch",
                             env.target.ToString());
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.discarded_type_mismatch;
    }
    SendSystemFailure(env.reply_to, "target port type mismatch", env.trace_id);
    return;
  }

  Received message;
  message.command = std::move(env.command);
  message.args = std::move(env.args);
  message.reply_to = env.reply_to;
  message.ack_to = env.ack_to;
  message.src_node = env.src_node;
  message.msg_id = env.msg_id;
  message.trace_id = env.trace_id;
  switch (port->Push(std::move(message))) {
    case PushResult::kOk:
      break;
    case PushResult::kRetired:
      // A retired port is not a full one: the sender learns that retrying
      // the same name is useless until the port is recreated.
      counters_.drop_port_retired->Inc();
      system_->traces().Record(env.trace_id, id_, "port.drop.retired",
                               env.target.ToString());
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.discarded_port_retired;
      }
      SendSystemFailure(env.reply_to, "target port retired", env.trace_id);
      return;
    case PushResult::kFull:
      counters_.drop_port_full->Inc();
      system_->traces().Record(env.trace_id, id_, "port.drop.full",
                               env.target.ToString());
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.discarded_port_full;
      }
      SendSystemFailure(env.reply_to, "no room at target port", env.trace_id);
      return;
  }
  counters_.delivered->Inc();
  system_->traces().Record(env.trace_id, id_, "port.enqueued",
                           env.target.ToString());
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.messages_delivered;
}

std::string NodeRuntime::Report() const {
  std::string out = "node '" + name_ + "' (id " + std::to_string(id_) + ") " +
                    (up_.load() ? "up" : "down") + "\n";
  NodeStats s = stats();
  auto line = [&out](const char* label, uint64_t v) {
    if (v != 0) {
      out += "  " + std::string(label) + ": " + std::to_string(v) + "\n";
    }
  };
  line("messages_sent", s.messages_sent);
  line("messages_delivered", s.messages_delivered);
  line("discarded_no_guardian", s.discarded_no_guardian);
  line("discarded_no_port", s.discarded_no_port);
  line("discarded_port_full", s.discarded_port_full);
  line("discarded_port_retired", s.discarded_port_retired);
  line("discarded_type_mismatch", s.discarded_type_mismatch);
  line("discarded_decode_error", s.discarded_decode_error);
  line("discarded_corrupt", s.discarded_corrupt);
  line("failures_synthesized", s.failures_synthesized);
  line("acks_sent", s.acks_sent);
  std::vector<Guardian*> gs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    gs.reserve(guardians_.size());
    for (const auto& [gid, guardian] : guardians_) {
      gs.push_back(guardian.get());
    }
  }
  for (Guardian* g : gs) {
    for (const Guardian::PortStat& ps : g->PortStats()) {
      out += "  port " + ps.name + " [" + ps.type_name + "] depth " +
             std::to_string(ps.depth) + "/" + std::to_string(ps.capacity) +
             " enqueued " + std::to_string(ps.enqueued);
      if (ps.discarded_full != 0) {
        out += " dropped_full " + std::to_string(ps.discarded_full);
      }
      if (ps.discarded_retired != 0) {
        out += " dropped_retired " + std::to_string(ps.discarded_retired);
      }
      if (ps.retired) {
        out += " (retired)";
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace guardians
