// Compile-time argument construction for sends.
//
// CLU checks every send against the port's header at compile time. The
// runtime library checks at send time; this header restores the
// compile-time half for C++ callers: the mapping from C++ types to wire
// value kinds is fixed by overload resolution, so `TypedSend(g, p, "reserve",
// 12, "smith")` cannot build an argument of the wrong kind — and a C++ type
// with no mapping fails to compile rather than at run time.
#ifndef GUARDIANS_SRC_GUARDIAN_TYPED_H_
#define GUARDIANS_SRC_GUARDIAN_TYPED_H_

#include <string>
#include <type_traits>
#include <utility>

#include "src/guardian/guardian.h"

namespace guardians {

// One fixed mapping per supported C++ type; anything else is a compile
// error mentioning this function.
inline Value ToValue(bool b) { return Value::Bool(b); }
inline Value ToValue(int v) { return Value::Int(v); }
inline Value ToValue(int64_t v) { return Value::Int(v); }
inline Value ToValue(uint32_t v) { return Value::Int(v); }
inline Value ToValue(double v) { return Value::Real(v); }
inline Value ToValue(const char* s) { return Value::Str(s); }
inline Value ToValue(std::string s) { return Value::Str(std::move(s)); }
inline Value ToValue(Bytes b) { return Value::Blob(std::move(b)); }
inline Value ToValue(const PortName& p) { return Value::OfPort(p); }
inline Value ToValue(const Token& t) { return Value::OfToken(t); }
inline Value ToValue(AbstractPtr obj) {
  return Value::Abstract(std::move(obj));
}
inline Value ToValue(Value v) { return v; }
inline Value ToValue(ValueList items) {
  return Value::Array(std::move(items));
}

// Build an argument list with compile-time type mapping:
//   MakeArgs(12, "smith", DateString(3))
template <typename... Args>
ValueList MakeArgs(Args&&... args) {
  ValueList out;
  out.reserve(sizeof...(args));
  (out.push_back(ToValue(std::forward<Args>(args))), ...);
  return out;
}

// send C(args...) to <port>
template <typename... Args>
Status TypedSend(Guardian& guardian, const PortName& to,
                 const std::string& command, Args&&... args) {
  return guardian.Send(to, command, MakeArgs(std::forward<Args>(args)...));
}

// send C(args...) to <port> replyto <port>
template <typename... Args>
Status TypedSendReply(Guardian& guardian, const PortName& to,
                      const PortName& reply_to, const std::string& command,
                      Args&&... args) {
  return guardian.Send(to, command, MakeArgs(std::forward<Args>(args)...),
                       reply_to);
}

}  // namespace guardians

#endif  // GUARDIANS_SRC_GUARDIAN_TYPED_H_
