// Access control lists (Section 2.3): a guardian "checks that the requester
// has the right to request the access (perhaps using some sort of access
// control list mechanism). For example, only a manager can request a
// passenger list, or a reservation request from some other airline might
// not be permitted to reserve the last seat on a flight."
//
// Principals are names carried in requests; rights are free-form strings
// ("reserve", "list_passengers", ...). A guardian owns its ACL and consults
// it before acting — guarding the resource is the guardian's job, not the
// system's.
#ifndef GUARDIANS_SRC_GUARDIAN_ACL_H_
#define GUARDIANS_SRC_GUARDIAN_ACL_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/common/status.h"

namespace guardians {

class AccessControlList {
 public:
  // Grant `right` to `principal`. The wildcard principal "*" grants the
  // right to everyone.
  void Grant(const std::string& principal, const std::string& right);
  void Revoke(const std::string& principal, const std::string& right);

  bool Allows(const std::string& principal, const std::string& right) const;

  // kPermissionDenied with a useful message when not allowed.
  Status Check(const std::string& principal, const std::string& right) const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unordered_set<std::string>> grants_;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_GUARDIAN_ACL_H_
