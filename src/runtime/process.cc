#include "src/runtime/process.h"

namespace guardians {

Process::Process(std::string name, std::function<void()> body)
    : name_(std::move(name)) {
  auto done = done_;
  thread_ = std::thread([done, body = std::move(body)] {
    body();
    done->store(true);
  });
}

Process::~Process() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

void Process::Join() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

ProcessGroup::~ProcessGroup() { JoinAll(); }

void ProcessGroup::Fork(std::string name, std::function<void()> body) {
  auto process = std::make_unique<Process>(std::move(name), std::move(body));
  std::lock_guard<std::mutex> lock(mu_);
  processes_.push_back(std::move(process));
}

void ProcessGroup::JoinAll() {
  // Joining may race with forks from the processes being joined; keep
  // draining until no process remains.
  for (;;) {
    std::unique_ptr<Process> next;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (processes_.empty()) {
        return;
      }
      next = std::move(processes_.back());
      processes_.pop_back();
    }
    next->Join();
  }
}

void ProcessGroup::Reap() {
  std::vector<std::unique_ptr<Process>> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto keep_end = processes_.begin();
    for (auto& process : processes_) {
      if (process->Done()) {
        finished.push_back(std::move(process));
      } else {
        *keep_end++ = std::move(process);
      }
    }
    processes_.erase(keep_end, processes_.end());
  }
  for (auto& process : finished) {
    process->Join();
  }
}

size_t ProcessGroup::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return processes_.size();
}

}  // namespace guardians
