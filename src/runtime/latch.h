// CountdownLatch: small synchronization helper used by tests, examples and
// workload drivers to wait for N completions.
#ifndef GUARDIANS_SRC_RUNTIME_LATCH_H_
#define GUARDIANS_SRC_RUNTIME_LATCH_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/common/clock.h"

namespace guardians {

class CountdownLatch {
 public:
  explicit CountdownLatch(uint64_t count) : count_(count) {}

  void CountDown(uint64_t n = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    count_ = count_ > n ? count_ - n : 0;
    if (count_ == 0) {
      cv_.notify_all();
    }
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

  // False on timeout. `clock` (default: wall) is the clock the timeout is
  // measured on; pass a node's clock to make the wait virtual.
  bool WaitFor(Micros timeout, const ClockSource* clock = nullptr) {
    if (clock == nullptr) {
      clock = WallClock::Get();
    }
    std::unique_lock<std::mutex> lock(mu_);
    return clock->WaitUntil(cv_, lock, clock->Now() + timeout,
                            [this] { return count_ == 0; });
  }

  uint64_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t count_;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_RUNTIME_LATCH_H_
