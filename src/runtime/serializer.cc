#include "src/runtime/serializer.h"

namespace guardians {

Serializer::Serializer(size_t workers) {
  for (size_t i = 0; i < workers; ++i) {
    workers_.Fork("serializer-worker-" + std::to_string(i),
                  [this] { WorkerLoop(); });
  }
}

Serializer::~Serializer() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  workers_.JoinAll();
}

void Serializer::Enqueue(uint64_t key, Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Request{key, std::move(task)});
    if (queue_.size() > max_queue_depth_) {
      max_queue_depth_ = queue_.size();
    }
  }
  work_cv_.notify_one();
}

void Serializer::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

uint64_t Serializer::executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_;
}

uint64_t Serializer::max_queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_queue_depth_;
}

bool Serializer::PopRunnable(Request& out) {
  // First request in arrival order whose key is available; skipping a busy
  // key preserves per-key FIFO because the skipped request stays in place.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (busy_keys_.count(it->key) == 0) {
      out = std::move(*it);
      queue_.erase(it);
      busy_keys_.insert(out.key);
      ++running_;
      return true;
    }
  }
  return false;
}

void Serializer::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Request request;
    if (PopRunnable(request)) {
      lock.unlock();
      request.task();
      lock.lock();
      busy_keys_.erase(request.key);
      --running_;
      ++executed_;
      // A freed key may make a skipped request runnable for other workers,
      // and quiescence may have been reached.
      work_cv_.notify_all();
      drain_cv_.notify_all();
      continue;
    }
    if (stopping_) {
      return;
    }
    work_cv_.wait(lock);
  }
}

}  // namespace guardians
