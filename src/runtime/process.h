// Process: "the execution of a sequential program" (Section 2.1). Within a
// guardian, the actual work is performed by one or many processes; they
// share the guardian's objects and communicate through them.
//
// Processes are cooperative: there is no way to kill a thread, so a crash
// or shutdown closes the guardian's ports, every blocked receive returns
// kNodeDown, and the process function is expected to return. ProcessGroup
// joins them all.
#ifndef GUARDIANS_SRC_RUNTIME_PROCESS_H_
#define GUARDIANS_SRC_RUNTIME_PROCESS_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace guardians {

class Process {
 public:
  Process(std::string name, std::function<void()> body);
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }
  bool Joinable() const { return thread_.joinable(); }
  // True once the body has returned (the thread may not be joined yet).
  bool Done() const { return done_->load(); }
  void Join();

 private:
  std::string name_;
  std::shared_ptr<std::atomic<bool>> done_ =
      std::make_shared<std::atomic<bool>>(false);
  std::thread thread_;
};

// The set of processes of one guardian. Fork adds a process; JoinAll joins
// every process forked so far (processes may fork further processes while
// JoinAll runs; those are joined too).
class ProcessGroup {
 public:
  ProcessGroup() = default;
  ~ProcessGroup();

  ProcessGroup(const ProcessGroup&) = delete;
  ProcessGroup& operator=(const ProcessGroup&) = delete;

  void Fork(std::string name, std::function<void()> body);
  void JoinAll();
  // Join and release processes whose bodies have returned. Guardians that
  // fork one process per request (Figure 1c) call this periodically so the
  // group doesn't grow without bound.
  void Reap();
  size_t count() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Process>> processes_;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_RUNTIME_PROCESS_H_
