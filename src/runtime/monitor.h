// Monitors (Section 2.3, organization 1c): "The forked processes
// synchronize with each other to ensure that only one process is
// manipulating the data for a particular date at a time. The processes
// synchronize using shared data, e.g., a monitor providing operations
// start_request(date) and end_request(date)."
//
// Monitor is a small Hoare-style monitor base (mutual exclusion plus named
// conditions); KeyedMonitor is the paper's start_request/end_request monitor
// generalized over any key type.
#ifndef GUARDIANS_SRC_RUNTIME_MONITOR_H_
#define GUARDIANS_SRC_RUNTIME_MONITOR_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "src/common/clock.h"

namespace guardians {

class Monitor {
 public:
  // Entry into the monitor: at most one process runs monitor code at once.
  class Entry {
   public:
    explicit Entry(Monitor& m) : lock_(m.mu_) {}
    std::unique_lock<std::mutex>& lock() { return lock_; }

   private:
    std::unique_lock<std::mutex> lock_;
  };

  // A condition on which processes inside the monitor may wait. Wait
  // releases the monitor; Signal admits one waiter.
  class Condition {
   public:
    void Wait(Entry& entry) { cv_.wait(entry.lock()); }

    template <typename Pred>
    void WaitUntil(Entry& entry, Pred pred) {
      cv_.wait(entry.lock(), pred);
    }

    // Returns false on timeout with the predicate still unsatisfied.
    // `clock` (default: wall) measures the timeout; a guardian passes its
    // node's clock so monitor waits run on virtual time.
    template <typename Pred>
    bool WaitFor(Entry& entry, Micros timeout, Pred pred,
                 const ClockSource* clock = nullptr) {
      if (clock == nullptr) {
        clock = WallClock::Get();
      }
      return clock->WaitUntil(cv_, entry.lock(), clock->Now() + timeout,
                              pred);
    }

    void Signal() { cv_.notify_one(); }
    void Broadcast() { cv_.notify_all(); }

   private:
    std::condition_variable cv_;
  };

 private:
  std::mutex mu_;
};

// The monitor M of Figure 1c: StartRequest(key) blocks while another
// process is manipulating the data for `key`; EndRequest(key) releases it.
// Distinct keys proceed concurrently.
template <typename Key>
class KeyedMonitor : private Monitor {
 public:
  void StartRequest(const Key& key) {
    Entry entry(*this);
    ++contention_probes_;
    while (busy_.count(key) > 0) {
      ++blocked_waits_;
      available_.Wait(entry);
    }
    busy_.insert(key);
  }

  void EndRequest(const Key& key) {
    Entry entry(*this);
    busy_.erase(key);
    available_.Broadcast();
  }

  // RAII request bracket.
  class Request {
   public:
    Request(KeyedMonitor& m, Key key) : monitor_(m), key_(std::move(key)) {
      monitor_.StartRequest(key_);
    }
    ~Request() { monitor_.EndRequest(key_); }
    Request(const Request&) = delete;
    Request& operator=(const Request&) = delete;

   private:
    KeyedMonitor& monitor_;
    Key key_;
  };

  // How often StartRequest had to wait — the contention the paper's
  // organization comparison is about.
  uint64_t blocked_waits() const { return blocked_waits_; }
  uint64_t contention_probes() const { return contention_probes_; }

 private:
  Condition available_;
  std::unordered_set<Key> busy_;
  uint64_t blocked_waits_ = 0;
  uint64_t contention_probes_ = 0;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_RUNTIME_MONITOR_H_
