// Serializer (Section 2.3, organization 1b): "A single process synchronizes
// requests; it hands them off to other processes that perform the actual
// work when the flight data of interest are available. Such a structure is
// similar to that provided by a serializer."
//
// Requests carry a resource key. Requests for the same key execute strictly
// in arrival order, one at a time; requests for distinct keys execute
// concurrently on the worker processes q_i.
#ifndef GUARDIANS_SRC_RUNTIME_SERIALIZER_H_
#define GUARDIANS_SRC_RUNTIME_SERIALIZER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_set>

#include "src/runtime/process.h"

namespace guardians {

class Serializer {
 public:
  using Task = std::function<void()>;

  // Forks `workers` worker processes.
  explicit Serializer(size_t workers);
  // Drains the queue, then stops the workers.
  ~Serializer();

  Serializer(const Serializer&) = delete;
  Serializer& operator=(const Serializer&) = delete;

  // Enqueue a request on resource `key`. Never blocks the caller (the
  // synchronizing process p merely queues and moves on).
  void Enqueue(uint64_t key, Task task);

  // Block until every enqueued request has completed.
  void Drain();

  uint64_t executed() const;
  uint64_t max_queue_depth() const;

 private:
  struct Request {
    uint64_t key;
    Task task;
  };

  void WorkerLoop();
  // Pops the first runnable request (whose key is not busy) under mu_.
  bool PopRunnable(Request& out);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for runnable requests
  std::condition_variable drain_cv_;  // Drain/dtor wait for quiescence
  std::deque<Request> queue_;
  std::unordered_set<uint64_t> busy_keys_;
  size_t running_ = 0;
  bool stopping_ = false;
  uint64_t executed_ = 0;
  uint64_t max_queue_depth_ = 0;
  ProcessGroup workers_;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_RUNTIME_SERIALIZER_H_
