// Wal: a write-ahead log over StableStore, the mechanism behind
// "permanence of effect" (Section 2.2). A guardian logs each completed
// atomic operation before replying; its recovery process replays the log
// after a node crash.
//
// Frame format per record: [u32 length][u32 crc32(payload)][payload].
// Recovery tolerates a torn tail (a crash mid-append): the incomplete or
// CRC-failing final frame is discarded, everything before it is returned.
// A bad frame *followed by* more valid data indicates device corruption and
// fails with kLogCorrupt.
//
// Checkpoints are crash-atomic via an epoch protocol: the snapshot cell is
// written as [u64 epoch][payload] and a separate epoch cell records the
// last *committed* checkpoint epoch, updated only after the log truncate.
// Recovery that finds a snapshot epoch ahead of the committed epoch knows
// a crash interrupted Checkpoint() between the snapshot write and the
// truncate; the log's records are all covered by that snapshot, so it
// ignores them and rolls the repair forward (re-truncates, commits the
// epoch) instead of replaying covered records on top of the snapshot.
#ifndef GUARDIANS_SRC_STORE_WAL_H_
#define GUARDIANS_SRC_STORE_WAL_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/store/stable_store.h"
#include "src/value/value.h"
#include "src/wire/limits.h"

namespace guardians {

struct WalRecovery {
  std::optional<Bytes> snapshot;  // most recent checkpoint, if any
  std::vector<Bytes> records;     // records appended after the checkpoint
  bool torn_tail = false;         // an incomplete final record was discarded
  // A crash hit Checkpoint() between the snapshot write and the truncate;
  // the snapshot won, the covered log records were discarded and the
  // half-done checkpoint was rolled forward.
  bool interrupted_checkpoint = false;
};

class Wal {
 public:
  // `store` must outlive the Wal. `name` scopes the log's streams within
  // the node's stable store (one WAL per guardian resource).
  Wal(StableStore* store, std::string name);

  // Append one record; returns only after it is stable.
  Status Append(const Bytes& payload);
  // Convenience: wire-encode a Value as the record payload.
  Status AppendValue(const Value& v);

  // Replace the checkpoint with `snapshot` and truncate the record log.
  // Crash-safe at any interior point (see the epoch protocol above); fails
  // with kStorageError when the device has failed, in which case the
  // checkpoint may be half-done on media — recovery repairs it.
  Status Checkpoint(const Bytes& snapshot);

  // Read everything back (the recovery process's input). Non-const: it
  // rolls an interrupted checkpoint forward on the store.
  Result<WalRecovery> Recover();
  // Value-decoding variant for logs written with AppendValue.
  Result<std::vector<Value>> RecoverValues();

  // Number of records appended since construction (not counting recovered
  // ones); for experiments. Appends may come from several processes.
  uint64_t appended() const { return appended_.load(); }
  size_t SizeBytes() const;

  const std::string& name() const { return name_; }

 private:
  std::string LogStream() const { return name_ + ".log"; }
  std::string SnapCell() const { return name_ + ".snap"; }
  std::string EpochCell() const { return name_ + ".epoch"; }

  uint64_t CommittedEpoch() const;

  StableStore* store_;
  std::string name_;
  std::atomic<uint64_t> appended_{0};
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_STORE_WAL_H_
