// Wal: a write-ahead log over StableStore, the mechanism behind
// "permanence of effect" (Section 2.2). A guardian logs each completed
// atomic operation before replying; its recovery process replays the log
// after a node crash.
//
// Frame format per record: [u32 length][u32 crc32(payload)][payload].
// Recovery tolerates a torn tail (a crash mid-append): the incomplete or
// CRC-failing final frame is discarded, everything before it is returned.
// A bad frame *followed by* more valid data indicates device corruption and
// fails with kLogCorrupt.
#ifndef GUARDIANS_SRC_STORE_WAL_H_
#define GUARDIANS_SRC_STORE_WAL_H_

#include <atomic>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/store/stable_store.h"
#include "src/value/value.h"
#include "src/wire/limits.h"

namespace guardians {

struct WalRecovery {
  std::optional<Bytes> snapshot;  // most recent checkpoint, if any
  std::vector<Bytes> records;     // records appended after the checkpoint
  bool torn_tail = false;         // an incomplete final record was discarded
};

class Wal {
 public:
  // `store` must outlive the Wal. `name` scopes the log's streams within
  // the node's stable store (one WAL per guardian resource).
  Wal(StableStore* store, std::string name);

  // Append one record; returns only after it is stable.
  Status Append(const Bytes& payload);
  // Convenience: wire-encode a Value as the record payload.
  Status AppendValue(const Value& v);

  // Replace the checkpoint with `snapshot` and truncate the record log.
  // Crash-safe ordering: the new snapshot is written before the log is
  // truncated, so recovery always sees a consistent pair.
  Status Checkpoint(const Bytes& snapshot);

  // Read everything back (the recovery process's input).
  Result<WalRecovery> Recover() const;
  // Value-decoding variant for logs written with AppendValue.
  Result<std::vector<Value>> RecoverValues() const;

  // Number of records appended since construction (not counting recovered
  // ones); for experiments. Appends may come from several processes.
  uint64_t appended() const { return appended_.load(); }
  size_t SizeBytes() const;

  const std::string& name() const { return name_; }

 private:
  std::string LogStream() const { return name_ + ".log"; }
  std::string SnapCell() const { return name_ + ".snap"; }

  StableStore* store_;
  std::string name_;
  std::atomic<uint64_t> appended_{0};
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_STORE_WAL_H_
