// StableStore: the per-node storage that survives a node crash
// (Section 2.2: "processes in the guardian save recovery data as needed
// (by, e.g., logging it in storage that will survive a node crash)").
//
// The device is a set of named append-only byte streams plus small named
// cells (for node metadata such as the persistent-guardian table). A node
// crash destroys every guardian's volatile objects but leaves the
// StableStore intact; fault-injection hooks simulate torn tail writes.
//
// Synchronous append latency is configurable: logging to stable storage is
// the dominant cost of permanence, and the ROBUST experiment measures it.
#ifndef GUARDIANS_SRC_STORE_STABLE_STORE_H_
#define GUARDIANS_SRC_STORE_STABLE_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/result.h"

namespace guardians {

class StableStore {
 public:
  StableStore() = default;

  StableStore(const StableStore&) = delete;
  StableStore& operator=(const StableStore&) = delete;

  // --- Streams (append-only) ----------------------------------------------
  Status Append(const std::string& name, const Bytes& data);
  // Whole contents; empty if the stream doesn't exist.
  Bytes Read(const std::string& name) const;
  size_t StreamSize(const std::string& name) const;
  Status Truncate(const std::string& name, size_t new_size);
  Status Delete(const std::string& name);

  // --- Cells (small replace-on-write values) ------------------------------
  Status PutCell(const std::string& name, const Bytes& data);
  Result<Bytes> GetCell(const std::string& name) const;
  Status DeleteCell(const std::string& name);

  std::vector<std::string> ListStreams() const;
  size_t TotalBytes() const;

  // --- Device model --------------------------------------------------------
  // Synchronous write latency applied on every Append (default: none).
  void SetWriteLatency(Micros latency);
  // Clock the modeled write latency sleeps on (borrowed; default: wall).
  // NodeRuntime points this at the node's clock so the device model runs
  // on simulated time with everything else.
  void SetClock(const ClockSource* clock);
  // Fault injection: chop `n` bytes off a stream's tail, as a crash in the
  // middle of a write would. The WAL's framing must recover.
  void ChopTail(const std::string& name, size_t n);
  // Device failure injection: every subsequent mutating op (Append, PutCell,
  // Truncate, Delete, DeleteCell) fails with kStorageError; reads still
  // work, like a disk gone read-only.
  void SetFailed(bool failed);

  uint64_t append_count() const;

 private:
  Status FailedLocked() const;

  const ClockSource* clock_ = nullptr;  // null: wall clock

  mutable std::mutex mu_;
  std::map<std::string, Bytes> streams_;
  std::map<std::string, Bytes> cells_;
  Micros write_latency_{0};
  bool failed_ = false;
  uint64_t append_count_ = 0;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_STORE_STABLE_STORE_H_
