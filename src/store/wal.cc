#include "src/store/wal.h"

#include "src/wire/codec.h"
#include "src/wire/crc32.h"
#include "src/wire/value_codec.h"

namespace guardians {

Wal::Wal(StableStore* store, std::string name)
    : store_(store), name_(std::move(name)) {}

Status Wal::Append(const Bytes& payload) {
  WireEncoder enc;
  enc.PutU32(static_cast<uint32_t>(payload.size()));
  enc.PutU32(Crc32(payload));
  Bytes frame = enc.Take();
  frame.insert(frame.end(), payload.begin(), payload.end());
  GUARDIANS_RETURN_IF_ERROR(store_->Append(LogStream(), frame));
  appended_.fetch_add(1);
  return OkStatus();
}

Status Wal::AppendValue(const Value& v) {
  WireEncoder enc;
  GUARDIANS_RETURN_IF_ERROR(EncodeValue(v, DefaultLimits(), enc));
  return Append(enc.Take());
}

Status Wal::Checkpoint(const Bytes& snapshot) {
  store_->PutCell(SnapCell(), snapshot);
  GUARDIANS_RETURN_IF_ERROR(store_->Truncate(LogStream(), 0));
  return OkStatus();
}

Result<WalRecovery> Wal::Recover() const {
  WalRecovery out;
  auto snap = store_->GetCell(SnapCell());
  if (snap.ok()) {
    out.snapshot = snap.take();
  }

  const Bytes raw = store_->Read(LogStream());
  size_t pos = 0;
  while (pos < raw.size()) {
    if (raw.size() - pos < 8) {
      out.torn_tail = true;  // incomplete frame header at the tail
      break;
    }
    uint32_t len = 0;
    uint32_t crc = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(raw[pos + i]) << (8 * i);
      crc |= static_cast<uint32_t>(raw[pos + 4 + i]) << (8 * i);
    }
    if (raw.size() - pos - 8 < len) {
      out.torn_tail = true;  // incomplete payload at the tail
      break;
    }
    Bytes payload(raw.begin() + static_cast<long>(pos + 8),
                  raw.begin() + static_cast<long>(pos + 8 + len));
    if (Crc32(payload) != crc) {
      if (pos + 8 + len == raw.size()) {
        out.torn_tail = true;  // garbage only in the final frame
        break;
      }
      return Status(Code::kLogCorrupt,
                    "log '" + name_ + "' has a bad frame mid-stream");
    }
    out.records.push_back(std::move(payload));
    pos += 8 + len;
  }
  return out;
}

Result<std::vector<Value>> Wal::RecoverValues() const {
  GUARDIANS_ASSIGN_OR_RETURN(WalRecovery rec, Recover());
  std::vector<Value> values;
  values.reserve(rec.records.size());
  for (const auto& record : rec.records) {
    WireDecoder dec(record);
    GUARDIANS_ASSIGN_OR_RETURN(Value v,
                               DecodeValue(dec, DefaultLimits(), nullptr));
    values.push_back(std::move(v));
  }
  return values;
}

size_t Wal::SizeBytes() const { return store_->StreamSize(LogStream()); }

}  // namespace guardians
