#include "src/store/wal.h"

#include "src/fault/crashpoint.h"
#include "src/wire/codec.h"
#include "src/wire/crc32.h"
#include "src/wire/value_codec.h"

namespace guardians {

namespace {

// The schedulable power failures of the commit path. A record is the
// guardian's effect; the paper's claim is that recovery is consistent no
// matter which of these the crash lands on.
CrashPoint crash_append_before("wal.append.before_frame");
CrashPoint crash_append_after("wal.append.after_frame");
CrashPoint crash_checkpoint_before("wal.checkpoint.before_snapshot");
CrashPoint crash_checkpoint_mid("wal.checkpoint.after_snapshot");
CrashPoint crash_checkpoint_after("wal.checkpoint.after_truncate");

Bytes EncodeU64Le(uint64_t v) {
  Bytes out(8);
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<uint8_t>(v >> (8 * i));
  }
  return out;
}

uint64_t DecodeU64Le(const Bytes& in) {
  uint64_t v = 0;
  for (int i = 0; i < 8 && i < static_cast<int>(in.size()); ++i) {
    v |= static_cast<uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

}  // namespace

Wal::Wal(StableStore* store, std::string name)
    : store_(store), name_(std::move(name)) {}

Status Wal::Append(const Bytes& payload) {
  crash_append_before.Hit();
  // One pre-sized frame: header and payload go into a single buffer
  // instead of encoding the header and then splicing the payload after it.
  WireEncoder enc;
  enc.Reserve(8 + payload.size());
  enc.PutU32(static_cast<uint32_t>(payload.size()));
  enc.PutU32(Crc32(payload));
  enc.PutBytes(payload);
  GUARDIANS_RETURN_IF_ERROR(store_->Append(LogStream(), enc.Take()));
  crash_append_after.Hit();
  appended_.fetch_add(1);
  return OkStatus();
}

Status Wal::AppendValue(const Value& v) {
  WireEncoder enc;
  GUARDIANS_RETURN_IF_ERROR(EncodeValue(v, DefaultLimits(), enc));
  return Append(enc.Take());
}

uint64_t Wal::CommittedEpoch() const {
  auto cell = store_->GetCell(EpochCell());
  return cell.ok() ? DecodeU64Le(*cell) : 0;
}

Status Wal::Checkpoint(const Bytes& snapshot) {
  crash_checkpoint_before.Hit();
  const uint64_t epoch = CommittedEpoch() + 1;
  Bytes snap_cell = EncodeU64Le(epoch);
  snap_cell.insert(snap_cell.end(), snapshot.begin(), snapshot.end());
  GUARDIANS_RETURN_IF_ERROR(store_->PutCell(SnapCell(), snap_cell));
  crash_checkpoint_mid.Hit();
  Status truncated = store_->Truncate(LogStream(), 0);
  if (!truncated.ok() && truncated.code() != Code::kNotFound) {
    return truncated;  // kNotFound just means nothing was ever appended
  }
  crash_checkpoint_after.Hit();
  return store_->PutCell(EpochCell(), EncodeU64Le(epoch));
}

Result<WalRecovery> Wal::Recover() {
  WalRecovery out;
  uint64_t snap_epoch = 0;
  auto snap = store_->GetCell(SnapCell());
  if (snap.ok()) {
    Bytes cell = snap.take();
    if (cell.size() < 8) {
      return Status(Code::kLogCorrupt,
                    "snapshot cell of '" + name_ + "' is missing its epoch");
    }
    snap_epoch = DecodeU64Le(cell);
    out.snapshot = Bytes(cell.begin() + 8, cell.end());
  }

  if (snap_epoch > CommittedEpoch()) {
    // A crash interrupted Checkpoint() after the snapshot write but before
    // the epoch commit. Every record still in the log is covered by this
    // snapshot (appends only resume after Checkpoint returns), so replaying
    // them would double-apply; discard them and roll the repair forward.
    out.interrupted_checkpoint = true;
    Status truncated = store_->Truncate(LogStream(), 0);
    if (!truncated.ok() && truncated.code() != Code::kNotFound) {
      return truncated;
    }
    GUARDIANS_RETURN_IF_ERROR(
        store_->PutCell(EpochCell(), EncodeU64Le(snap_epoch)));
    return out;
  }

  const Bytes raw = store_->Read(LogStream());
  size_t pos = 0;
  while (pos < raw.size()) {
    if (raw.size() - pos < 8) {
      out.torn_tail = true;  // incomplete frame header at the tail
      break;
    }
    uint32_t len = 0;
    uint32_t crc = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(raw[pos + i]) << (8 * i);
      crc |= static_cast<uint32_t>(raw[pos + 4 + i]) << (8 * i);
    }
    if (raw.size() - pos - 8 < len) {
      out.torn_tail = true;  // incomplete payload at the tail
      break;
    }
    // Verify in place; only frames that pass their CRC are materialized.
    const ConstByteSpan body(raw.data() + pos + 8, len);
    if (Crc32(body) != crc) {
      if (pos + 8 + len == raw.size()) {
        out.torn_tail = true;  // garbage only in the final frame
        break;
      }
      return Status(Code::kLogCorrupt,
                    "log '" + name_ + "' has a bad frame mid-stream");
    }
    out.records.emplace_back(body.begin(), body.end());
    pos += 8 + len;
  }
  return out;
}

Result<std::vector<Value>> Wal::RecoverValues() {
  GUARDIANS_ASSIGN_OR_RETURN(WalRecovery rec, Recover());
  std::vector<Value> values;
  values.reserve(rec.records.size());
  for (const auto& record : rec.records) {
    WireDecoder dec(record);
    GUARDIANS_ASSIGN_OR_RETURN(Value v,
                               DecodeValue(dec, DefaultLimits(), nullptr));
    values.push_back(std::move(v));
  }
  return values;
}

size_t Wal::SizeBytes() const { return store_->StreamSize(LogStream()); }

}  // namespace guardians
