#include "src/store/stable_store.h"

#include <thread>

#include "src/fault/crashpoint.h"

namespace guardians {

namespace {
// A crash inside the media write itself: the first half of the data is on
// the device, the rest never arrives — the torn tail the WAL's framing
// must tolerate.
CrashPoint crash_store_append_partial("store.append.partial");
}  // namespace

Status StableStore::FailedLocked() const {
  return failed_ ? Status(Code::kStorageError, "stable storage device failed")
                 : OkStatus();
}

Status StableStore::Append(const std::string& name, const Bytes& data) {
  // While the fault layer is active the write lands in two halves with a
  // crashpoint between them, so an armed crash leaves a torn tail exactly
  // as a power failure mid-write would. Each stream has a single writer
  // (its guardian's WAL), so the split is unobservable without a crash.
  // Inactive (the normal case), it is the plain single insert.
  const bool two_phase = FaultInjectionActive() && data.size() > 1;
  const size_t first_half = two_phase ? data.size() / 2 : data.size();
  Micros latency{0};
  const ClockSource* clock = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    GUARDIANS_RETURN_IF_ERROR(FailedLocked());
    clock = clock_;
    Bytes& stream = streams_[name];
    stream.insert(stream.end(), data.begin(), data.begin() + first_half);
    if (!two_phase) {
      ++append_count_;
      latency = write_latency_;
    }
  }
  if (two_phase) {
    crash_store_append_partial.Hit();
    std::lock_guard<std::mutex> lock(mu_);
    GUARDIANS_RETURN_IF_ERROR(FailedLocked());
    Bytes& stream = streams_[name];
    stream.insert(stream.end(), data.begin() + first_half, data.end());
    ++append_count_;
    latency = write_latency_;
  }
  if (latency.count() > 0) {
    // Model the synchronous wait for the write to reach stable media.
    (clock != nullptr ? clock : WallClock::Get())->SleepFor(latency);
  }
  return OkStatus();
}

Bytes StableStore::Read(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(name);
  return it != streams_.end() ? it->second : Bytes{};
}

size_t StableStore::StreamSize(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(name);
  return it != streams_.end() ? it->second.size() : 0;
}

Status StableStore::Truncate(const std::string& name, size_t new_size) {
  std::lock_guard<std::mutex> lock(mu_);
  GUARDIANS_RETURN_IF_ERROR(FailedLocked());
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status(Code::kNotFound, "no stream '" + name + "'");
  }
  if (new_size < it->second.size()) {
    it->second.resize(new_size);
  }
  return OkStatus();
}

Status StableStore::Delete(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  GUARDIANS_RETURN_IF_ERROR(FailedLocked());
  streams_.erase(name);
  return OkStatus();
}

Status StableStore::PutCell(const std::string& name, const Bytes& data) {
  std::lock_guard<std::mutex> lock(mu_);
  GUARDIANS_RETURN_IF_ERROR(FailedLocked());
  cells_[name] = data;
  return OkStatus();
}

Result<Bytes> StableStore::GetCell(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(name);
  if (it == cells_.end()) {
    return Status(Code::kNotFound, "no cell '" + name + "'");
  }
  return it->second;
}

Status StableStore::DeleteCell(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  GUARDIANS_RETURN_IF_ERROR(FailedLocked());
  cells_.erase(name);
  return OkStatus();
}

std::vector<std::string> StableStore::ListStreams() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [name, stream] : streams_) {
    names.push_back(name);
  }
  return names;
}

size_t StableStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [name, stream] : streams_) {
    total += stream.size();
  }
  for (const auto& [name, cell] : cells_) {
    total += cell.size();
  }
  return total;
}

void StableStore::SetClock(const ClockSource* clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = clock;
}

void StableStore::SetWriteLatency(Micros latency) {
  std::lock_guard<std::mutex> lock(mu_);
  write_latency_ = latency;
}

void StableStore::ChopTail(const std::string& name, size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return;
  }
  Bytes& stream = it->second;
  stream.resize(stream.size() > n ? stream.size() - n : 0);
}

void StableStore::SetFailed(bool failed) {
  std::lock_guard<std::mutex> lock(mu_);
  failed_ = failed;
}

uint64_t StableStore::append_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return append_count_;
}

}  // namespace guardians
