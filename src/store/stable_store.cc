#include "src/store/stable_store.h"

#include <thread>

namespace guardians {

Status StableStore::Append(const std::string& name, const Bytes& data) {
  Micros latency{0};
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (failed_) {
      return Status(Code::kStorageError, "stable storage device failed");
    }
    Bytes& stream = streams_[name];
    stream.insert(stream.end(), data.begin(), data.end());
    ++append_count_;
    latency = write_latency_;
  }
  if (latency.count() > 0) {
    // Model the synchronous wait for the write to reach stable media.
    std::this_thread::sleep_for(latency);
  }
  return OkStatus();
}

Bytes StableStore::Read(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(name);
  return it != streams_.end() ? it->second : Bytes{};
}

size_t StableStore::StreamSize(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(name);
  return it != streams_.end() ? it->second.size() : 0;
}

Status StableStore::Truncate(const std::string& name, size_t new_size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status(Code::kNotFound, "no stream '" + name + "'");
  }
  if (new_size < it->second.size()) {
    it->second.resize(new_size);
  }
  return OkStatus();
}

void StableStore::Delete(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  streams_.erase(name);
}

void StableStore::PutCell(const std::string& name, const Bytes& data) {
  std::lock_guard<std::mutex> lock(mu_);
  cells_[name] = data;
}

Result<Bytes> StableStore::GetCell(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(name);
  if (it == cells_.end()) {
    return Status(Code::kNotFound, "no cell '" + name + "'");
  }
  return it->second;
}

void StableStore::DeleteCell(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.erase(name);
}

std::vector<std::string> StableStore::ListStreams() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [name, stream] : streams_) {
    names.push_back(name);
  }
  return names;
}

size_t StableStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [name, stream] : streams_) {
    total += stream.size();
  }
  for (const auto& [name, cell] : cells_) {
    total += cell.size();
  }
  return total;
}

void StableStore::SetWriteLatency(Micros latency) {
  std::lock_guard<std::mutex> lock(mu_);
  write_latency_ = latency;
}

void StableStore::ChopTail(const std::string& name, size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return;
  }
  Bytes& stream = it->second;
  stream.resize(stream.size() > n ? stream.size() - n : 0);
}

void StableStore::SetFailed(bool failed) {
  std::lock_guard<std::mutex> lock(mu_);
  failed_ = failed;
}

uint64_t StableStore::append_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return append_count_;
}

}  // namespace guardians
