#include "src/net/network.h"

#include <algorithm>
#include <cassert>

#include "src/common/log.h"

namespace guardians {

Network::Network(uint64_t seed) : rng_(seed) {
  delivery_thread_ = std::thread([this] { DeliveryLoop(); });
}

Network::~Network() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  delivery_thread_.join();
}

NodeId Network::AddNode(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  node_names_.push_back(name);
  node_up_.push_back(true);
  sinks_.emplace_back();
  return static_cast<NodeId>(node_names_.size());
}

const std::string& Network::NodeName(NodeId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  static const std::string kUnknown = "?";
  if (id == 0 || id > node_names_.size()) {
    return kUnknown;
  }
  return node_names_[id - 1];
}

size_t Network::node_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return node_names_.size();
}

void Network::SetSink(NodeId node, PacketSink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(node >= 1 && node <= sinks_.size());
  sinks_[node - 1] = std::move(sink);
}

void Network::SetNodeUp(NodeId node, bool up) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(node >= 1 && node <= node_up_.size());
  node_up_[node - 1] = up;
}

bool Network::IsNodeUp(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return node >= 1 && node <= node_up_.size() && node_up_[node - 1];
}

void Network::SetDefaultLink(const LinkParams& params) {
  std::lock_guard<std::mutex> lock(mu_);
  default_link_ = params;
}

void Network::SetLink(NodeId a, NodeId b, const LinkParams& params) {
  std::lock_guard<std::mutex> lock(mu_);
  links_[LinkKey(a, b)] = params;
  links_[LinkKey(b, a)] = params;
}

LinkParams Network::GetLink(NodeId from, NodeId to) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = links_.find(LinkKey(from, to));
  return it != links_.end() ? it->second : default_link_;
}

void Network::SetPartitioned(NodeId a, NodeId b, bool cut) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cut) {
    partitions_.insert(LinkKey(a, b));
    partitions_.insert(LinkKey(b, a));
  } else {
    partitions_.erase(LinkKey(a, b));
    partitions_.erase(LinkKey(b, a));
  }
}

void Network::Send(Packet packet) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.packets_sent;
  stats_.bytes_sent += packet.WireSize();

  const bool src_ok =
      packet.src >= 1 && packet.src <= node_up_.size() && node_up_[packet.src - 1];
  const bool partitioned =
      packet.src != packet.dst &&
      partitions_.count(LinkKey(packet.src, packet.dst)) > 0;
  if (!src_ok || partitioned) {
    ++stats_.packets_dropped;
    return;
  }

  LinkParams link = default_link_;
  if (packet.src != packet.dst) {
    auto it = links_.find(LinkKey(packet.src, packet.dst));
    if (it != links_.end()) {
      link = it->second;
    }
  } else {
    link = LinkParams{Micros(0), Micros(0), 0.0, 0.0, 0.0};
  }

  if (rng_.NextBool(link.drop_prob)) {
    ++stats_.packets_dropped;
    return;
  }
  if (!packet.payload.empty() && rng_.NextBool(link.corrupt_prob)) {
    // Flip one byte; the error-detection bits will reject the packet at the
    // receiving node (it keeps its stale CRC on purpose).
    const size_t at = rng_.NextBelow(packet.payload.size());
    packet.payload[at] ^= static_cast<uint8_t>(1 + rng_.NextBelow(255));
    ++stats_.packets_corrupted;
  }

  int64_t delay_us = ToMicros(link.latency);
  if (link.jitter.count() > 0) {
    delay_us += static_cast<int64_t>(rng_.NextNormal(
        0.0, static_cast<double>(link.jitter.count())));
  }
  if (link.bytes_per_micro > 0.0) {
    delay_us += static_cast<int64_t>(
        static_cast<double>(packet.WireSize()) / link.bytes_per_micro);
  }
  delay_us = std::max<int64_t>(delay_us, 0);

  InFlight entry;
  entry.deliver_at = Now() + Micros(delay_us);
  entry.seq = seq_++;
  entry.packet = std::move(packet);
  queue_.push(std::move(entry));
  cv_.notify_all();
}

void Network::DrainForTesting() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock,
                   [this] { return queue_.empty() && !delivering_; });
}

NetworkStats Network::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Network::DeliveryLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stopping_) {
      return;
    }
    if (queue_.empty()) {
      drained_cv_.notify_all();
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      continue;
    }
    const TimePoint next = queue_.top().deliver_at;
    if (Now() < next) {
      cv_.wait_until(lock, next);
      continue;
    }

    Packet packet = queue_.top().packet;
    queue_.pop();

    const NodeId dst = packet.dst;
    PacketSink sink;
    bool deliverable = dst >= 1 && dst <= node_up_.size() &&
                       node_up_[dst - 1] && sinks_[dst - 1];
    if (deliverable) {
      sink = sinks_[dst - 1];
      ++stats_.packets_delivered;
    } else {
      ++stats_.packets_dropped;
    }
    if (sink) {
      // Deliver outside the lock: the sink may immediately Send (e.g. a
      // system failure reply) or hand off to guardian processes.
      delivering_ = true;
      lock.unlock();
      sink(packet);
      lock.lock();
      delivering_ = false;
    }
    if (queue_.empty() && !delivering_) {
      drained_cv_.notify_all();
    }
  }
}

}  // namespace guardians
