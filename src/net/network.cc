#include "src/net/network.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "src/common/log.h"

namespace guardians {

Network::Network(uint64_t seed, MetricsRegistry* metrics, TraceBuffer* traces,
                 size_t shards, size_t batch_max, const ClockSource* clock)
    : clock_(clock != nullptr ? clock : WallClock::Get()), rng_(seed),
      metrics_(metrics), traces_(traces),
      batch_max_(std::max<size_t>(batch_max, 1)) {
  if (metrics_ != nullptr) {
    delivery_latency_ = metrics_->histogram("net.delivery_latency_us");
  }
  shards_.reserve(std::max<size_t>(shards, 1));
  for (size_t k = 0; k < std::max<size_t>(shards, 1); ++k) {
    auto shard = std::make_unique<Shard>();
    if (metrics_ != nullptr) {
      const std::string prefix = "net.shard." + std::to_string(k) + ".";
      shard->enqueued = metrics_->counter(prefix + "enqueued");
      shard->delivered = metrics_->counter(prefix + "delivered");
      shard->dropped = metrics_->counter(prefix + "dropped");
      shard->batch_drains = metrics_->counter(prefix + "batch.drains");
      shard->batch_packets = metrics_->counter(prefix + "batch.packets");
      shard->batch_size = metrics_->histogram(
          prefix + "batch.size", {1, 2, 4, 8, 16, 32, 64, 128, 256});
    }
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    raw->worker = std::thread([this, raw] { ShardLoop(*raw); });
  }
}

Network::~Network() { Shutdown(); }

void Network::Shutdown() {
  uint64_t abandoned_holds = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return;  // already shut down
    }
    stopped_ = true;
    // Packets still captured by a reorder hold will never be released;
    // count them dropped so conservation holds, and free the drain
    // barrier from waiting on them.
    abandoned_holds = held_.size();
    stats_.packets_dropped += abandoned_holds;
    for (const InFlight& entry : held_) {
      CountDrop(entry.packet, "holdback_shutdown");
    }
    held_.clear();
    held_pairs_.clear();
    held_max_ = 0;
  }
  if (abandoned_holds > 0) {
    FinishMany(abandoned_holds);
  }
  stopping_.store(true);
  for (auto& shard : shards_) {
    // Lock-then-notify so a worker between its predicate check and its
    // wait cannot miss the stop signal.
    { std::lock_guard<std::mutex> lock(shard->mu); }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    shard->worker.join();
  }
  // Unblock any drainer waiting on packets the stopped workers abandoned.
  { std::lock_guard<std::mutex> lock(drain_mu_); }
  drained_cv_.notify_all();
}

NodeId Network::AddNode(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  node_names_.push_back(name);
  node_up_.push_back(true);
  sinks_.emplace_back();
  return static_cast<NodeId>(node_names_.size());
}

std::string Network::NodeName(NodeId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > node_names_.size()) {
    return "?";
  }
  return node_names_[id - 1];
}

size_t Network::node_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return node_names_.size();
}

void Network::SetSink(NodeId node, PacketSink sink) {
  // Wrapped so the engine has exactly one (batched) delivery path; a
  // per-packet sink just sees the batch unrolled in order.
  SetBatchSink(node, [sink = std::move(sink)](std::vector<Packet>&& batch) {
    for (Packet& packet : batch) {
      sink(std::move(packet));
    }
  });
}

void Network::SetBatchSink(NodeId node, PacketBatchSink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(node >= 1 && node <= sinks_.size());
  sinks_[node - 1] = std::move(sink);
}

void Network::SetNodeUp(NodeId node, bool up) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(node >= 1 && node <= node_up_.size());
  node_up_[node - 1] = up;
}

bool Network::IsNodeUp(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return node >= 1 && node <= node_up_.size() && node_up_[node - 1];
}

void Network::SetDefaultLink(const LinkParams& params) {
  std::lock_guard<std::mutex> lock(mu_);
  default_link_ = params;
  ++link_epoch_;
}

void Network::SetLink(NodeId a, NodeId b, const LinkParams& params) {
  std::lock_guard<std::mutex> lock(mu_);
  links_[LinkKey(a, b)] = params;
  links_[LinkKey(b, a)] = params;
  ++link_epoch_;
}

LinkParams Network::GetLink(NodeId from, NodeId to) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = links_.find(LinkKey(from, to));
  return it != links_.end() ? it->second : default_link_;
}

void Network::SetPartitioned(NodeId a, NodeId b, bool cut) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cut) {
    partitions_.insert(LinkKey(a, b));
    partitions_.insert(LinkKey(b, a));
  } else {
    partitions_.erase(LinkKey(a, b));
    partitions_.erase(LinkKey(b, a));
  }
  ++link_epoch_;
}

void Network::SetPartitionedOneWay(NodeId from, NodeId to, bool cut) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cut) {
    oneway_partitions_.insert(LinkKey(from, to));
  } else {
    oneway_partitions_.erase(LinkKey(from, to));
  }
  ++link_epoch_;
}

bool Network::IsPartitioned(NodeId from, NodeId to) const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t key = LinkKey(from, to);
  return partitions_.count(key) > 0 || oneway_partitions_.count(key) > 0;
}

uint64_t Network::link_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return link_epoch_;
}

void Network::Send(Packet packet) {
  InFlight entry;
  std::optional<InFlight> duplicate;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.packets_sent;
    stats_.bytes_sent += packet.WireSize();
    LinkCounters* link_counters = CountersForLink(packet.src, packet.dst);
    if (link_counters != nullptr) {
      link_counters->sent->Inc();
    }

    const bool src_ok = packet.src >= 1 && packet.src <= node_up_.size() &&
                        node_up_[packet.src - 1];
    const bool partitioned =
        packet.src != packet.dst &&
        partitions_.count(LinkKey(packet.src, packet.dst)) > 0;
    const bool cut_oneway =
        packet.src != packet.dst &&
        oneway_partitions_.count(LinkKey(packet.src, packet.dst)) > 0;
    if (!src_ok || partitioned || cut_oneway) {
      ++stats_.packets_dropped;
      CountDrop(packet, !src_ok ? "src_down"
                                : (partitioned ? "partition"
                                               : "partition_oneway"));
      return;
    }

    LinkParams link = default_link_;
    if (packet.src != packet.dst) {
      auto it = links_.find(LinkKey(packet.src, packet.dst));
      if (it != links_.end()) {
        link = it->second;
      }
    } else {
      link = LinkParams{Micros(0), Micros(0), 0.0, 0.0, 0.0};
    }

    if (rng_.NextBool(link.drop_prob)) {
      ++stats_.packets_dropped;
      CountDrop(packet, "loss");
      return;
    }
    if (!packet.payload.empty() && rng_.NextBool(link.corrupt_prob)) {
      // Flip one byte; the error-detection bits will reject the packet at
      // the receiving node (it keeps its stale CRC on purpose).
      // MutableData copy-on-writes this one fragment's view, so sibling
      // fragments and any duplicate injected below share storage with each
      // other but never see the flipped byte... unless the duplicate is
      // cloned *from* the corrupted packet, which is exactly the old
      // deep-copy behavior: corruption-then-dup yields two bad twins.
      const size_t at = rng_.NextBelow(packet.payload.size());
      packet.payload.MutableData()[at] ^=
          static_cast<uint8_t>(1 + rng_.NextBelow(255));
      ++stats_.packets_corrupted;
      if (link_counters != nullptr) {
        link_counters->corrupted->Inc();
        metrics_->counter("net.corrupted")->Inc();
      }
      if (traces_ != nullptr) {
        traces_->Record(packet.trace_id, 0, "net.corrupted",
                        "n" + std::to_string(packet.src) + "->n" +
                            std::to_string(packet.dst));
      }
    }

    // Each copy rolls its own latency/jitter, so a duplicate reorders
    // freely against the original (it may even arrive first).
    auto roll_delay = [&]() {
      int64_t delay_us = ToMicros(link.latency);
      if (link.jitter.count() > 0) {
        delay_us += static_cast<int64_t>(
            rng_.NextNormal(0.0, static_cast<double>(link.jitter.count())));
      }
      if (link.bytes_per_micro > 0.0) {
        delay_us += static_cast<int64_t>(
            static_cast<double>(packet.WireSize()) / link.bytes_per_micro);
      }
      return std::max<int64_t>(delay_us, 0);
    };

    entry.sent_at = clock_->Now();
    entry.deliver_at = entry.sent_at + Micros(roll_delay());
    entry.seq = seq_++;

    if (rng_.NextBool(link.dup_prob)) {
      // The network invents a second in-flight copy of the same packet
      // (§1.1: the network may duplicate messages). Both copies resolve
      // independently downstream, so packets_delivered + packets_dropped
      // balances against packets_sent + packets_duplicated.
      ++stats_.packets_duplicated;
      if (metrics_ != nullptr) {
        metrics_->counter("net.dup.injected")->Inc();
      }
      if (link_counters != nullptr) {
        link_counters->duplicated->Inc();
      }
      if (traces_ != nullptr) {
        traces_->Record(packet.trace_id, 0, "net.duplicated",
                        "n" + std::to_string(packet.src) + "->n" +
                            std::to_string(packet.dst) + " frag " +
                            std::to_string(packet.frag_index + 1) + "/" +
                            std::to_string(packet.frag_count));
      }
      InFlight copy;
      copy.sent_at = entry.sent_at;
      copy.deliver_at = entry.sent_at + Micros(roll_delay());
      copy.seq = seq_++;
      copy.packet = packet;  // payload is a shared view: the twin costs a
                             // refcount bump, not a byte clone
      duplicate.emplace(std::move(copy));
    }
    entry.packet = std::move(packet);

    // Reordering storm: a held link captures decided packets instead of
    // scheduling them (the dice above rolled exactly as usual, so counts
    // and the rng stream are unchanged); ReleaseHeld re-schedules them
    // shuffled. Held copies are in flight — drains wait for the release.
    if (!held_pairs_.empty() &&
        held_pairs_.count(LinkKey(entry.packet.src, entry.packet.dst)) > 0) {
      const uint64_t copies = duplicate.has_value() ? 2 : 1;
      if (held_.size() + copies <= held_max_) {
        in_flight_.fetch_add(copies, std::memory_order_acq_rel);
        held_.push_back(std::move(entry));
        if (duplicate.has_value()) {
          held_.push_back(std::move(*duplicate));
        }
        return;
      }
    }
  }

  // The drop/corrupt/latency/duplication dice are cast; hand the copy (or
  // copies — a duplicate shares the destination, hence the shard) to its
  // destination's shard. in_flight_ rises before the worker can resolve
  // the packets, so DrainForTesting never observes a false zero.
  const uint64_t copies = duplicate.has_value() ? 2 : 1;
  in_flight_.fetch_add(copies, std::memory_order_acq_rel);
  EnqueueToShard(std::move(entry));
  if (duplicate.has_value()) {
    EnqueueToShard(std::move(*duplicate));
  }
}

void Network::EnqueueToShard(InFlight&& entry) {
  Shard& shard = ShardFor(entry.packet.dst);
  bool wake_worker = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (stopping_.load()) {
      // Workers are gone; the packet silently vanishes (it was "in
      // flight" when the world stopped), and the drain barrier must not
      // wait on it.
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }
    const bool was_empty = shard.heap.empty();
    const TimePoint old_front_due =
        was_empty ? TimePoint{} : shard.heap.front().deliver_at;
    shard.heap.push_back(std::move(entry));
    std::push_heap(shard.heap.begin(), shard.heap.end(), DueLater{});
    if (shard.enqueued != nullptr) {
      shard.enqueued->Inc();
    }
    // Wake coalescing: the worker only needs a signal when the heap went
    // empty -> non-empty (it may be in its indefinite wait) or when a new
    // entry preempts the front (its wait_until deadline is now too late).
    // A backlogged shard — front already due — never needs one: the worker
    // is either draining or about to re-check the heap, so the common
    // saturated Send pays no futex wake at all.
    wake_worker =
        was_empty || shard.heap.front().deliver_at < old_front_due;
  }
  if (wake_worker) {
    shard.cv.notify_all();
  }
}

void Network::HoldLink(NodeId a, NodeId b, size_t max_held) {
  std::lock_guard<std::mutex> lock(mu_);
  held_pairs_.insert(LinkKey(a, b));
  held_pairs_.insert(LinkKey(b, a));
  held_max_ = std::max(held_max_, max_held);
  ++link_epoch_;
}

void Network::ReleaseHeld(uint64_t shuffle_seed) {
  std::vector<InFlight> held;
  {
    std::lock_guard<std::mutex> lock(mu_);
    held = std::move(held_);
    held_.clear();
    held_pairs_.clear();
    held_max_ = 0;
    ++link_epoch_;
    if (!held.empty()) {
      // Fisher–Yates on a dedicated rng (the send-path dice stream must
      // not depend on how many packets a hold captured), then deliver_at
      // offsets one microsecond apart so each destination's heap pops
      // the shuffled order verbatim, at any shard/batch configuration.
      Rng shuffle(shuffle_seed ^ 0x5EED0DE2ull);
      for (size_t i = held.size(); i > 1; --i) {
        std::swap(held[i - 1], held[shuffle.NextBelow(i)]);
      }
      const TimePoint now = clock_->Now();
      for (size_t i = 0; i < held.size(); ++i) {
        held[i].deliver_at = now + Micros(static_cast<int64_t>(i));
      }
      if (metrics_ != nullptr) {
        metrics_->counter("net.reorder.released")->Inc(held.size());
      }
    }
  }
  for (InFlight& entry : held) {
    EnqueueToShard(std::move(entry));
  }
}

size_t Network::held_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return held_.size();
}

void Network::DrainForTesting() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drained_cv_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0 ||
           stopping_.load();
  });
}

bool Network::DrainForTesting(Micros wall_timeout) {
  std::unique_lock<std::mutex> lock(drain_mu_);
  return drained_cv_.wait_for(lock, wall_timeout, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0 ||
           stopping_.load();
  });
}

NetworkStats Network::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Network::LinkCounters* Network::CountersForLink(NodeId src, NodeId dst) {
  if (metrics_ == nullptr) {
    return nullptr;
  }
  const uint64_t key = LinkKey(src, dst);
  auto it = link_counters_.find(key);
  if (it == link_counters_.end()) {
    auto name_of = [this](NodeId id) {
      return (id >= 1 && id <= node_names_.size()) ? node_names_[id - 1]
                                                   : "?";
    };
    const std::string prefix =
        "net.link." + name_of(src) + "->" + name_of(dst) + ".";
    LinkCounters counters;
    counters.sent = metrics_->counter(prefix + "sent");
    counters.delivered = metrics_->counter(prefix + "delivered");
    counters.dropped = metrics_->counter(prefix + "dropped");
    counters.corrupted = metrics_->counter(prefix + "corrupted");
    counters.duplicated = metrics_->counter(prefix + "duplicated");
    it = link_counters_.emplace(key, counters).first;
  }
  return &it->second;
}

void Network::CountDrop(const Packet& packet, const char* reason) {
  if (metrics_ != nullptr) {
    metrics_->counter(std::string("net.drop.") + reason)->Inc();
    LinkCounters* link_counters = CountersForLink(packet.src, packet.dst);
    if (link_counters != nullptr) {
      link_counters->dropped->Inc();
    }
  }
  if (traces_ != nullptr) {
    traces_->Record(packet.trace_id, 0, std::string("net.drop.") + reason,
                    "n" + std::to_string(packet.src) + "->n" +
                        std::to_string(packet.dst) + " frag " +
                        std::to_string(packet.frag_index + 1) + "/" +
                        std::to_string(packet.frag_count));
  }
}

void Network::ShardLoop(Shard& shard) {
  std::unique_lock<std::mutex> lock(shard.mu);
  std::vector<InFlight> batch;
  batch.reserve(batch_max_);
  for (;;) {
    if (stopping_.load()) {
      return;
    }
    if (shard.heap.empty()) {
      clock_->WaitUntil(
          shard.cv, lock, TimePoint::max(),
          [&] { return stopping_.load() || !shard.heap.empty(); });
      continue;
    }
    const TimePoint now = clock_->Now();
    if (now < shard.heap.front().deliver_at) {
      clock_->WaitOnce(shard.cv, lock, shard.heap.front().deliver_at);
      continue;
    }

    // One lock acquisition drains every due entry (bounded by batch_max_),
    // in heap order — so per-destination delivery order is exactly what
    // the one-packet-per-wake engine produced.
    batch.clear();
    while (!shard.heap.empty() && batch.size() < batch_max_ &&
           shard.heap.front().deliver_at <= now) {
      std::pop_heap(shard.heap.begin(), shard.heap.end(), DueLater{});
      batch.push_back(std::move(shard.heap.back()));
      shard.heap.pop_back();
    }

    // Deliver outside the shard lock: a sink may immediately Send (e.g. a
    // system failure reply) or hand off to guardian processes, and other
    // shards' sinks run concurrently with this one.
    lock.unlock();
    if (shard.batch_drains != nullptr) {
      shard.batch_drains->Inc();
      shard.batch_packets->Inc(batch.size());
      shard.batch_size->Observe(batch.size());
    }
    DeliverBatch(shard, batch);
    FinishMany(batch.size());
    lock.lock();
  }
}

void Network::DeliverBatch(Shard& shard, std::vector<InFlight>& batch) {
  // Group by destination, preserving first-appearance order so a given
  // seed produces the same sink-call sequence at every batch size. The
  // scan is linear in (groups × batch): a shard owns few destinations and
  // batches are small, so this beats a map allocation per drain.
  std::vector<std::pair<NodeId, std::vector<InFlight>>> groups;
  for (InFlight& entry : batch) {
    const NodeId dst = entry.packet.dst;
    std::vector<InFlight>* group = nullptr;
    for (auto& [node, members] : groups) {
      if (node == dst) {
        group = &members;
        break;
      }
    }
    if (group == nullptr) {
      groups.emplace_back(dst, std::vector<InFlight>());
      group = &groups.back().second;
    }
    group->push_back(std::move(entry));
  }
  for (auto& [dst, group] : groups) {
    DeliverGroup(shard, dst, group);
  }
}

void Network::DeliverGroup(Shard& shard, NodeId dst,
                           std::vector<InFlight>& group) {
  PacketBatchSink sink;
  std::vector<Packet> deliverable;
  {
    // One stats-lock round-trip covers the whole group — at batch_max 1
    // this is the old per-packet acquisition, bit for bit.
    std::lock_guard<std::mutex> lock(mu_);
    const bool ok = dst >= 1 && dst <= node_up_.size() &&
                    node_up_[dst - 1] && sinks_[dst - 1];
    if (ok) {
      sink = sinks_[dst - 1];
      deliverable.reserve(group.size());
      stats_.packets_delivered += group.size();
      const TimePoint handoff_now = clock_->Now();
      for (InFlight& entry : group) {
        // Stamp the time this packet spent inside the network, measured
        // entirely on the network's own clock — the receiver decrements
        // any relative deadline budget by this, never by comparing
        // timestamps across (possibly skewed) node clocks.
        entry.packet.age_micros =
            std::max<int64_t>(ToMicros(handoff_now - entry.sent_at), 0);
        if (delivery_latency_ != nullptr) {
          delivery_latency_->Observe(
              static_cast<uint64_t>(entry.packet.age_micros));
        }
        LinkCounters* link_counters = CountersForLink(entry.packet.src, dst);
        if (link_counters != nullptr) {
          link_counters->delivered->Inc();
        }
        if (traces_ != nullptr) {
          traces_->Record(entry.packet.trace_id, 0, "net.delivered",
                          "n" + std::to_string(entry.packet.src) + "->n" +
                              std::to_string(dst) + " frag " +
                              std::to_string(entry.packet.frag_index + 1) +
                              "/" + std::to_string(entry.packet.frag_count));
        }
        deliverable.push_back(std::move(entry.packet));
      }
    } else {
      stats_.packets_dropped += group.size();
      for (const InFlight& entry : group) {
        CountDrop(entry.packet, "dst_down");
      }
    }
  }
  if (sink) {
    if (shard.delivered != nullptr) {
      shard.delivered->Inc(deliverable.size());
    }
    sink(std::move(deliverable));
  } else if (shard.dropped != nullptr) {
    shard.dropped->Inc(group.size());
  }
}

void Network::FinishMany(uint64_t n) {
  if (in_flight_.fetch_sub(n, std::memory_order_acq_rel) == n) {
    // Synchronize with a drainer between its predicate check and its wait.
    { std::lock_guard<std::mutex> lock(drain_mu_); }
    drained_cv_.notify_all();
  }
}

}  // namespace guardians
