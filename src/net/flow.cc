#include "src/net/flow.h"

#include <algorithm>
#include <string>
#include <utility>

namespace guardians {

FlowSlot& FlowSlot::operator=(FlowSlot&& other) noexcept {
  if (this != &other) {
    Release();
    controller_ = other.controller_;
    to_ = other.to_;
    epoch_ = other.epoch_;
    ok_ = other.ok_;
    other.controller_ = nullptr;
    other.ok_ = false;
  }
  return *this;
}

void FlowSlot::Success() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot(to_, epoch_, /*success=*/true);
    controller_ = nullptr;
  }
}

void FlowSlot::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot(to_, epoch_, /*success=*/false);
    controller_ = nullptr;
  }
}

FlowController::FlowController(FlowControlConfig config,
                               MetricsRegistry* metrics, TraceBuffer* traces,
                               uint32_t node, const ClockSource* clock)
    : config_(config), traces_(traces), node_(node),
      clock_(clock != nullptr ? clock : WallClock::Get()) {
  if (metrics != nullptr) {
    credits_granted_ = metrics->counter("flow.credits_granted");
    implicit_credits_ = metrics->counter("flow.implicit_credits");
    full_nacks_ = metrics->counter("flow.full_nacks");
    sends_deferred_ = metrics->counter("flow.sends_deferred");
    acquire_timeouts_ = metrics->counter("flow.acquire_timeouts");
    defer_wait_us_ = metrics->histogram("flow.defer_wait_us");
    window_hist_ = metrics->histogram(
        "flow.window", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512});
  }
}

FlowController::Entry& FlowController::EntryFor(const PortName& to) {
  auto it = entries_.find(to);
  if (it == entries_.end()) {
    Entry entry;
    entry.window = config_.initial_window;
    it = entries_.emplace(to, entry).first;
  }
  return it->second;
}

FlowSlot FlowController::Acquire(const PortName& to, const Deadline& deadline) {
  FlowSlot slot;
  if (!config_.enabled) {
    slot.ok_ = true;
    return slot;
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    slot.ok_ = true;
    return slot;
  }

  const TimePoint started = clock_->Now();
  bool deferred = false;
  for (;;) {
    // Re-look-up each iteration: a concurrent Reset() invalidates
    // references into entries_.
    Entry& entry = EntryFor(to);
    const TimePoint now = clock_->Now();
    const bool congested = now < entry.congested_until;
    if (!congested &&
        static_cast<double>(entry.in_flight) < entry.window) {
      ++entry.in_flight;
      slot.controller_ = this;
      slot.to_ = to;
      slot.epoch_ = epoch_;
      slot.ok_ = true;
      if (window_hist_ != nullptr) {
        window_hist_->Observe(static_cast<uint64_t>(entry.window));
      }
      break;
    }
    if (deadline.Expired()) {
      if (acquire_timeouts_ != nullptr) acquire_timeouts_->Inc();
      break;  // slot.ok_ stays false: the send is abandoned unsent
    }
    if (!deferred) {
      deferred = true;
      if (sends_deferred_ != nullptr) sends_deferred_->Inc();
      if (traces_ != nullptr) {
        traces_->Record(CurrentTraceId(), node_, "flow.defer",
                        "window closed for " + to.ToString());
      }
    }
    // Wake when feedback arrives or — during a congested hold — when the
    // hold elapses; always bounded by the caller's deadline.
    TimePoint wake = deadline.IsInfinite() ? TimePoint::max() : deadline.at();
    if (congested) wake = std::min(wake, entry.congested_until);
    clock_->WaitOnce(cv_, lock, wake);
    if (shutdown_) {
      slot.ok_ = true;  // unaccounted: the node is going down anyway
      break;
    }
  }
  if (deferred && defer_wait_us_ != nullptr) {
    defer_wait_us_->Observe(
        static_cast<uint64_t>(
            std::max<int64_t>(0, ToMicros(clock_->Now() - started))));
  }
  return slot;
}

void FlowController::ReleaseSlot(const PortName& to, uint64_t epoch,
                                 bool success) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != epoch_) return;  // window state was Reset() meanwhile
  auto it = entries_.find(to);
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  if (entry.in_flight > 0) --entry.in_flight;
  if (success) {
    if (implicit_credits_ != nullptr) implicit_credits_->Inc();
    Grow(entry);
  }
  cv_.notify_all();
}

void FlowController::Grow(Entry& entry) {
  entry.window = std::min(
      entry.window + config_.additive_increase / std::max(entry.window, 1.0),
      config_.max_window);
  if (entry.capacity_hint > 0) {
    entry.window = std::min(
        entry.window,
        std::max(static_cast<double>(entry.capacity_hint),
                 config_.min_window));
  }
}

void FlowController::OnCredit(const PortName& port, uint32_t queue_depth,
                              uint32_t capacity) {
  OnCreditBatch(port, queue_depth, capacity, 1);
}

void FlowController::OnCreditBatch(const PortName& port, uint32_t queue_depth,
                                   uint32_t capacity, uint32_t credits) {
  (void)queue_depth;
  if (!config_.enabled || credits == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return;
  Entry& entry = EntryFor(port);
  if (capacity > 0) entry.capacity_hint = capacity;
  entry.congested_until = TimePoint{};
  entry.reopen = Micros{0};
  if (credits_granted_ != nullptr) credits_granted_->Inc(credits);
  for (uint32_t i = 0; i < credits; ++i) {
    Grow(entry);
  }
  cv_.notify_all();
}

void FlowController::OnFullNack(const PortName& port, uint32_t queue_depth,
                                uint32_t capacity) {
  if (!config_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return;
  Entry& entry = EntryFor(port);
  if (capacity > 0) entry.capacity_hint = capacity;
  entry.window =
      std::max(entry.window * config_.decrease_factor, config_.min_window);
  entry.reopen = entry.reopen.count() == 0
                     ? config_.reopen_initial
                     : std::min(entry.reopen * 2, config_.reopen_max);
  entry.congested_until = clock_->Now() + entry.reopen;
  if (full_nacks_ != nullptr) full_nacks_->Inc();
  if (traces_ != nullptr) {
    traces_->Record(CurrentTraceId(), node_, "flow.nack",
                    port.ToString() + " depth=" + std::to_string(queue_depth));
  }
  // Waiters re-evaluate: the window shrank but congested_until also moved,
  // so they mostly re-arm their timed wait.
  cv_.notify_all();
}

void FlowController::OnLocalSuccess(const PortName& port) {
  if (!config_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return;
  Entry& entry = EntryFor(port);
  if (implicit_credits_ != nullptr) implicit_credits_->Inc();
  Grow(entry);
  cv_.notify_all();
}

double FlowController::WindowFor(const PortName& to) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(to);
  return it == entries_.end() ? config_.initial_window : it->second.window;
}

size_t FlowController::InFlightFor(const PortName& to) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(to);
  return it == entries_.end() ? 0 : it->second.in_flight;
}

void FlowController::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  cv_.notify_all();
}

void FlowController::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  ++epoch_;
  shutdown_ = false;
  cv_.notify_all();
}

}  // namespace guardians
