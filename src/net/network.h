// Simulated communications network (Section 1.1 assumptions).
//
// "The nodes may communicate only via the network; there is no (other)
//  shared memory. We make no assumptions about the network itself other
//  than that it supports communication between any pair of nodes."
//
// The simulator delivers packets point-to-point with per-link latency,
// jitter (which reorders packets, as Section 3.4 permits), loss, corruption
// (caught later by the error-detection bits) and optional bandwidth-based
// serialization delay. Links may be partitioned, and nodes marked down lose
// all packets addressed to them — exactly what a peer observes of a crash.
//
// The substitution for the paper's physical network is documented in
// DESIGN.md: every failure mode the paper reasons about (loss, reordering,
// corruption, unreachable nodes) is reproduced with controllable,
// seed-deterministic parameters.
#ifndef GUARDIANS_SRC_NET_NETWORK_H_
#define GUARDIANS_SRC_NET_NETWORK_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/wire/packet.h"

namespace guardians {

// Transmission characteristics of one directed link. Defaults model a
// quiet short-haul network; experiments override them.
struct LinkParams {
  Micros latency{100};        // propagation delay
  Micros jitter{0};           // stddev of normal jitter (reorders packets)
  double drop_prob = 0.0;     // silent loss probability per packet
  double corrupt_prob = 0.0;  // bit-error probability per packet
  double bytes_per_micro = 0.0;  // bandwidth; 0 means unlimited
};

// Counters for experiments; all monotically increasing.
struct NetworkStats {
  uint64_t packets_sent = 0;
  uint64_t packets_delivered = 0;
  uint64_t packets_dropped = 0;     // loss + partitions + down nodes
  uint64_t packets_corrupted = 0;   // delivered with flipped bits
  uint64_t bytes_sent = 0;
};

// Receives reassembly-ready packets at a node. Called on the network's
// delivery thread; implementations must be quick and must not block.
using PacketSink = std::function<void(const Packet&)>;

class Network {
 public:
  // `metrics`/`traces` are optional observability sinks (owned by the
  // caller, usually the System): per-link packet counters, drop-reason
  // counters, a delivery-latency histogram, and per-hop trace events.
  explicit Network(uint64_t seed = 1, MetricsRegistry* metrics = nullptr,
                   TraceBuffer* traces = nullptr);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Registers a node; ids start at 1 (0 is "no node").
  NodeId AddNode(const std::string& name);
  // By value: a reference into node_names_ would dangle if a concurrent
  // AddNode reallocated the vector after the lock is released.
  std::string NodeName(NodeId id) const;
  size_t node_count() const;

  // Delivery callback for a node. Replaces any previous sink.
  void SetSink(NodeId node, PacketSink sink);

  // A down node neither sends nor receives; packets in flight to it are
  // lost at delivery time.
  void SetNodeUp(NodeId node, bool up);
  bool IsNodeUp(NodeId node) const;

  // Link characteristics. SetLink applies to both directions.
  void SetDefaultLink(const LinkParams& params);
  void SetLink(NodeId a, NodeId b, const LinkParams& params);
  LinkParams GetLink(NodeId from, NodeId to) const;

  // Cut or restore connectivity between two nodes (both directions).
  void SetPartitioned(NodeId a, NodeId b, bool cut);

  // Inject one packet. Loss/corruption/latency are decided here; delivery
  // happens later on the delivery thread. Local (src == dst) delivery still
  // goes through the queue but with zero link cost.
  void Send(Packet packet);

  // Block until no packets remain in flight (useful in tests).
  void DrainForTesting();

  // Stop the delivery thread and join it; no sink runs after this returns.
  // Idempotent. System teardown calls it before destroying the node
  // runtimes the sinks point into (they would otherwise race a delivery
  // already in flight); ~Network calls it too.
  void Shutdown();

  NetworkStats stats() const;

 private:
  struct InFlight {
    TimePoint deliver_at;
    TimePoint sent_at;  // for the delivery-latency histogram
    uint64_t seq;  // tie-break so the heap is deterministic
    Packet packet;
    bool operator>(const InFlight& other) const {
      if (deliver_at != other.deliver_at) {
        return deliver_at > other.deliver_at;
      }
      return seq > other.seq;
    }
  };

  static uint64_t LinkKey(NodeId a, NodeId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  // Per-link counters resolved once per link; further updates lock-free.
  struct LinkCounters {
    Counter* sent = nullptr;
    Counter* delivered = nullptr;
    Counter* dropped = nullptr;
    Counter* corrupted = nullptr;
  };

  void DeliveryLoop();
  // Requires mu_ held (names the link by node names).
  LinkCounters* CountersForLink(NodeId src, NodeId dst);
  void CountDrop(const Packet& packet, const char* reason);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable drained_cv_;
  bool stopping_ = false;
  bool delivering_ = false;  // a sink callback is running right now
  uint64_t seq_ = 0;
  Rng rng_;
  LinkParams default_link_;
  NetworkStats stats_;
  std::vector<std::string> node_names_;     // index = id - 1
  std::vector<bool> node_up_;               // index = id - 1
  std::vector<PacketSink> sinks_;           // index = id - 1
  std::unordered_map<uint64_t, LinkParams> links_;
  std::unordered_set<uint64_t> partitions_;
  MetricsRegistry* metrics_;  // may be null (standalone networks in tests)
  TraceBuffer* traces_;       // may be null
  Histogram* delivery_latency_ = nullptr;
  std::unordered_map<uint64_t, LinkCounters> link_counters_;
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> queue_;
  std::thread delivery_thread_;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_NET_NETWORK_H_
