// Simulated communications network (Section 1.1 assumptions).
//
// "The nodes may communicate only via the network; there is no (other)
//  shared memory. We make no assumptions about the network itself other
//  than that it supports communication between any pair of nodes."
//
// The simulator delivers packets point-to-point with per-link latency,
// jitter (which reorders packets, as Section 3.4 permits), loss, corruption
// (caught later by the error-detection bits) and optional bandwidth-based
// serialization delay. Links may be partitioned, and nodes marked down lose
// all packets addressed to them — exactly what a peer observes of a crash.
//
// Delivery engine: packets are sharded by destination node across N worker
// threads, each owning its own timing heap and condition variable. §3.4
// promises *unordered* best-effort delivery across destinations, so the
// only order that matters — packets to one node — is preserved (one node
// always maps to one shard). Loss, corruption, duplication, and latency
// are decided seed-deterministically at Send() time under one lock, so
// drop, corruption, and duplicate counts are bit-identical for a given
// seed at every worker count; only wall-clock parallelism changes.
//
// Batched drains (DESIGN.md §12): on each wake a shard worker moves every
// due heap entry — up to `batch_max` — into a local batch under one lock
// acquisition, groups the batch by destination node, and hands each group
// to the destination's sink in one call. At saturation this amortizes the
// shard lock, the global stats lock, and the condvar wake over the whole
// batch instead of paying them per packet. Per-destination delivery order
// is unchanged (the drain pops in heap order), so a batch_max of 1
// reproduces the unbatched engine exactly, and outcome counts stay
// bit-identical at every batch size.
//
// The substitution for the paper's physical network is documented in
// DESIGN.md: every failure mode the paper reasons about (loss, reordering,
// corruption, unreachable nodes) is reproduced with controllable,
// seed-deterministic parameters.
#ifndef GUARDIANS_SRC_NET_NETWORK_H_
#define GUARDIANS_SRC_NET_NETWORK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/wire/packet.h"

namespace guardians {

// Transmission characteristics of one directed link. Defaults model a
// quiet short-haul network; experiments override them.
struct LinkParams {
  Micros latency{100};        // propagation delay
  Micros jitter{0};           // stddev of normal jitter (reorders packets)
  double drop_prob = 0.0;     // silent loss probability per packet
  double corrupt_prob = 0.0;  // bit-error probability per packet
  double bytes_per_micro = 0.0;  // bandwidth; 0 means unlimited
  // Duplicate-delivery probability per packet (§1.1: the network "may
  // lose, duplicate, and reorder messages"). The extra copy gets its own
  // latency/jitter roll, so the two copies reorder freely. Decided at
  // Send() under the global lock, like loss and corruption, so duplicate
  // counts are bit-identical for a given seed at every shard count.
  double dup_prob = 0.0;
};

// Counters for experiments; all monotonically increasing. Conservation
// law once the network is drained:
//   packets_delivered + packets_dropped == packets_sent + packets_duplicated
// Send-time drops (loss, partition, src down) count one per *send*; a
// duplicated packet adds one extra in-flight copy, and each copy resolves
// independently as delivered or dropped (dst down) at delivery time.
struct NetworkStats {
  uint64_t packets_sent = 0;        // Send() calls accepted (copies excluded)
  uint64_t packets_delivered = 0;   // copies handed to a sink
  uint64_t packets_dropped = 0;     // loss + partitions + down nodes, per copy
  uint64_t packets_corrupted = 0;   // delivered with flipped bits
  uint64_t packets_duplicated = 0;  // extra copies injected by dup_prob
  uint64_t bytes_sent = 0;
};

// Receives reassembly-ready packets at a node. Called on a delivery worker
// thread; the packet is handed over by move (the network keeps nothing).
// Implementations must be quick and must not block. Sinks for different
// nodes may run concurrently; the sink of one node never runs reentrantly.
using PacketSink = std::function<void(Packet&&)>;
// The batch entry point: every packet in one call shares the destination
// node and arrives in delivery order. Same threading contract as
// PacketSink — one call per (destination, drained batch).
using PacketBatchSink = std::function<void(std::vector<Packet>&&)>;

class Network {
 public:
  static constexpr size_t kDefaultShards = 4;
  // Due heap entries a shard worker may drain per wake. 1 = deliver one
  // packet per lock round-trip (the pre-batching engine, bit for bit).
  static constexpr size_t kDefaultBatchMax = 64;

  // `metrics`/`traces` are optional observability sinks (owned by the
  // caller, usually the System): per-link packet counters, drop-reason
  // counters, per-shard delivery counters, a delivery-latency histogram,
  // and per-hop trace events. `shards` is the number of delivery worker
  // threads (clamped to >= 1); destination nodes are statically assigned
  // to shards round-robin. `batch_max` bounds one drain (clamped to >= 1).
  // `clock` is the time source for delivery scheduling (sent_at /
  // deliver_at, the shard workers' timed waits). Null means the wall
  // clock; a SimulatedClock runs the whole delivery engine on virtual
  // time. Borrowed; must outlive the network.
  explicit Network(uint64_t seed = 1, MetricsRegistry* metrics = nullptr,
                   TraceBuffer* traces = nullptr,
                   size_t shards = kDefaultShards,
                   size_t batch_max = kDefaultBatchMax,
                   const ClockSource* clock = nullptr);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Registers a node; ids start at 1 (0 is "no node").
  NodeId AddNode(const std::string& name);
  // By value: a reference into node_names_ would dangle if a concurrent
  // AddNode reallocated the vector after the lock is released.
  std::string NodeName(NodeId id) const;
  size_t node_count() const;
  size_t shard_count() const { return shards_.size(); }

  // Delivery callback for a node. Replaces any previous sink (either
  // form). The per-packet form is wrapped into a batch sink internally, so
  // there is exactly one delivery code path.
  void SetSink(NodeId node, PacketSink sink);
  void SetBatchSink(NodeId node, PacketBatchSink sink);

  // A down node neither sends nor receives; packets in flight to it are
  // lost at delivery time.
  void SetNodeUp(NodeId node, bool up);
  bool IsNodeUp(NodeId node) const;

  // Link characteristics. SetLink applies to both directions. All link
  // mutators (SetLink, SetDefaultLink, the partition calls) take the same
  // global lock Send() rolls its dice under, so a mid-run storm applies on
  // a packet boundary: every packet is sent entirely under the old params
  // or entirely under the new ones, never a mixture — which keeps chaos
  // runs deterministic at any shard/batch configuration.
  void SetDefaultLink(const LinkParams& params);
  void SetLink(NodeId a, NodeId b, const LinkParams& params);
  LinkParams GetLink(NodeId from, NodeId to) const;

  // Cut or restore connectivity between two nodes (both directions).
  void SetPartitioned(NodeId a, NodeId b, bool cut);
  // Cut or restore one direction only: packets from -> to are dropped
  // (counted as net.drop.partition_oneway), while to -> from still flows.
  // Independent of the symmetric cut: healing one never heals the other.
  void SetPartitionedOneWay(NodeId from, NodeId to, bool cut);
  // True when from -> to is currently cut (by either kind of partition).
  bool IsPartitioned(NodeId from, NodeId to) const;

  // Reordering storm (§1.1: the network may reorder messages, and a
  // misbehaving switch may do so pathologically). After HoldLink, up to
  // `max_held` packets sent on the a<->b link (either direction) are
  // captured instead of scheduled; ReleaseHeld re-schedules every held
  // packet in a seed-deterministic shuffled order (back-to-back
  // deliver_at offsets force that order within each destination).
  // Packets beyond `max_held` flow normally. Held packets stay in the
  // in-flight count, so DrainForTesting waits for the release; Shutdown
  // drops any still-held packets (counted, so conservation holds).
  void HoldLink(NodeId a, NodeId b, size_t max_held);
  void ReleaseHeld(uint64_t shuffle_seed);
  size_t held_count() const;

  // Monotone counter bumped by every link mutation (SetLink,
  // SetDefaultLink, SetPartitioned, SetPartitionedOneWay, HoldLink,
  // ReleaseHeld), under the same
  // lock. Lets a harness assert that a scheduled storm or cut really was
  // applied, and marks epochs in traces.
  uint64_t link_epoch() const;

  // Inject one packet. Loss/corruption/latency are decided here, under one
  // lock and one rng, so outcomes depend only on the seed and the Send
  // order — never on worker count. Delivery happens later on the
  // destination's shard worker. Local (src == dst) delivery still goes
  // through the shard queue but with zero link cost.
  void Send(Packet packet);

  // Block until no packets remain in flight on any shard and no sink is
  // mid-call (useful in tests). Packets a sink re-sends while draining are
  // waited for too. Returns immediately after Shutdown().
  void DrainForTesting();
  // Same, but give up after `wall_timeout` of *real* time. Returns true
  // iff the network drained (or stopped). Lets a simulated-time caller
  // interleave drain attempts with virtual clock steps so packets heaped
  // at future virtual deliver_at instants can become due.
  bool DrainForTesting(Micros wall_timeout);

  // Stop every delivery worker and join them; no sink runs after this
  // returns. Idempotent. System teardown calls it before destroying the
  // node runtimes the sinks point into (they would otherwise race a
  // delivery already in flight); ~Network calls it too.
  void Shutdown();

  NetworkStats stats() const;

 private:
  struct InFlight {
    TimePoint deliver_at;
    TimePoint sent_at;  // for the delivery-latency histogram
    uint64_t seq;  // assigned at Send under the global lock; tie-break so
                   // each shard's heap pops in a deterministic order
    Packet packet;
  };

  // Min-heap order on (deliver_at, seq).
  struct DueLater {
    bool operator()(const InFlight& a, const InFlight& b) const {
      if (a.deliver_at != b.deliver_at) {
        return a.deliver_at > b.deliver_at;
      }
      return a.seq > b.seq;
    }
  };

  // One delivery worker: a timing heap of packets addressed to the nodes
  // this shard owns, its own lock/condvar, and per-shard counters
  // (net.shard.<k>.{enqueued,delivered,dropped} plus the batching
  // telemetry net.shard.<k>.batch.{drains,packets} and the batch.size
  // histogram).
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<InFlight> heap;  // guarded by mu; DueLater min-heap
    std::thread worker;
    Counter* enqueued = nullptr;   // may be null (no registry)
    Counter* delivered = nullptr;
    Counter* dropped = nullptr;
    Counter* batch_drains = nullptr;
    Counter* batch_packets = nullptr;
    Histogram* batch_size = nullptr;
  };

  static uint64_t LinkKey(NodeId a, NodeId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  // Per-link counters resolved once per link; further updates lock-free.
  struct LinkCounters {
    Counter* sent = nullptr;
    Counter* delivered = nullptr;
    Counter* dropped = nullptr;
    Counter* corrupted = nullptr;
    Counter* duplicated = nullptr;
  };

  Shard& ShardFor(NodeId dst) {
    return *shards_[dst == 0 ? 0 : (dst - 1) % shards_.size()];
  }
  void ShardLoop(Shard& shard);
  // Deliver one drained batch: group by destination (first-appearance
  // order; the batch itself is in (deliver_at, seq) order, so each group's
  // subsequence is too), then one stats pass + one sink call per group.
  void DeliverBatch(Shard& shard, std::vector<InFlight>& batch);
  void DeliverGroup(Shard& shard, NodeId dst, std::vector<InFlight>& group);
  // `n` packets left the system (delivered or dropped at delivery time);
  // wakes DrainForTesting when the last one resolves.
  void FinishMany(uint64_t n);
  // Requires mu_ held (names the link by node names).
  LinkCounters* CountersForLink(NodeId src, NodeId dst);
  void CountDrop(const Packet& packet, const char* reason);

  // Enqueue one decided entry onto its destination shard (wake-coalesced);
  // the in-flight count must already cover it.
  void EnqueueToShard(InFlight&& entry);

  mutable std::mutex mu_;
  const ClockSource* clock_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  // guarded by mu_; makes Shutdown idempotent
  uint64_t seq_ = 0;
  Rng rng_;
  LinkParams default_link_;
  NetworkStats stats_;
  std::vector<std::string> node_names_;     // index = id - 1
  std::vector<bool> node_up_;               // index = id - 1
  std::vector<PacketBatchSink> sinks_;      // index = id - 1
  std::unordered_map<uint64_t, LinkParams> links_;
  std::unordered_set<uint64_t> partitions_;
  std::unordered_set<uint64_t> oneway_partitions_;  // directed src->dst cuts
  std::unordered_set<uint64_t> held_pairs_;  // links under a reorder hold
  std::vector<InFlight> held_;               // captured, unscheduled packets
  size_t held_max_ = 0;
  uint64_t link_epoch_ = 0;
  MetricsRegistry* metrics_;  // may be null (standalone networks in tests)
  TraceBuffer* traces_;       // may be null
  Histogram* delivery_latency_ = nullptr;
  std::unordered_map<uint64_t, LinkCounters> link_counters_;

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t batch_max_ = kDefaultBatchMax;

  // Packets accepted at Send but not yet resolved by a worker. The drain
  // barrier is shard-aware through this single count: it covers every
  // shard's heap plus any sink call still running.
  std::atomic<uint64_t> in_flight_{0};
  std::mutex drain_mu_;
  std::condition_variable drained_cv_;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_NET_NETWORK_H_
