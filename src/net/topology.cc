#include "src/net/topology.h"

namespace guardians {

int CampusTopology::CampusOf(NodeId node) const {
  for (size_t c = 0; c < campuses.size(); ++c) {
    for (NodeId member : campuses[c]) {
      if (member == node) {
        return static_cast<int>(c);
      }
    }
  }
  return -1;
}

bool CampusTopology::SameCampus(NodeId a, NodeId b) const {
  const int ca = CampusOf(a);
  return ca >= 0 && ca == CampusOf(b);
}

CampusTopology BuildCampuses(Network& network,
                             const std::vector<int>& campus_of,
                             const LinkParams& shorthaul,
                             const LinkParams& longhaul) {
  CampusTopology topology;
  int max_campus = -1;
  for (int campus : campus_of) {
    max_campus = campus > max_campus ? campus : max_campus;
  }
  topology.campuses.resize(max_campus + 1);
  for (size_t i = 0; i < campus_of.size(); ++i) {
    topology.campuses[campus_of[i]].push_back(static_cast<NodeId>(i + 1));
  }
  for (size_t i = 0; i < campus_of.size(); ++i) {
    for (size_t j = i + 1; j < campus_of.size(); ++j) {
      const NodeId a = static_cast<NodeId>(i + 1);
      const NodeId b = static_cast<NodeId>(j + 1);
      network.SetLink(a, b,
                      campus_of[i] == campus_of[j] ? shorthaul : longhaul);
    }
  }
  return topology;
}

void PartitionCampuses(Network& network, const CampusTopology& topology,
                       int campus_a, int campus_b, bool cut) {
  for (NodeId a : topology.campuses[campus_a]) {
    for (NodeId b : topology.campuses[campus_b]) {
      network.SetPartitioned(a, b, cut);
    }
  }
}

}  // namespace guardians
