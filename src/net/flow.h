// Credit-based flow control (DESIGN.md §11): the sender half of the
// receiver-advertised credit protocol.
//
// The paper's no-wait send (§3.1) decouples senders from receivers through
// bounded port buffers (§3.2), and §3.4 makes a full buffer a designed-in
// loss event. That is correct as a *primitive*, but a retry loop above it
// (ReliableSend) degenerates into a resend storm exactly when the receiver
// is busiest. This layer closes the loop without changing the primitive:
// receivers advertise their port state — piggybacked on receipt acks
// (credit grants) and on full-port nacks that carry the current queue
// depth — and each sending node keeps a per-(destination port) congestion
// window, AIMD style: additive increase on a credit, multiplicative
// decrease on a full nack. The higher-level send primitives *consume* the
// window (defer-before-send with deadline-aware waits) so their messages
// wait at the sender instead of dying at the port; the plain no-wait send
// is deliberately exempt — its whole point is to never block.
//
// After a full nack the destination also enters a short "congested" hold
// (doubling per consecutive nack, cleared by any credit), so a stalled
// receiver is probed on a shared per-destination timer rather than hammered
// by every caller's private backoff clock.
//
// Thread-safety: one mutex + condvar for the whole controller. Window
// updates arrive from the node's delivery worker (every node maps to one
// shard, so feedback for one sender is applied in deterministic heap
// order); Acquire/Release run on guardian threads.
#ifndef GUARDIANS_SRC_NET_FLOW_H_
#define GUARDIANS_SRC_NET_FLOW_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "src/common/clock.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/value/port_name.h"

namespace guardians {

struct FlowControlConfig {
  // Master switch for the whole credit protocol: when false, senders never
  // defer, receivers neither stamp credit on acks nor emit full nacks to
  // ack ports, and the pre-flow behaviour (blind backoff on ack timeout)
  // is exactly restored. The saturation bench runs both sides of this.
  bool enabled = true;
  double initial_window = 8.0;
  double min_window = 1.0;
  double max_window = 256.0;
  // Additive increase per credit: window += additive_increase / window,
  // the classic one-window-per-round-trip slope.
  double additive_increase = 1.0;
  // Multiplicative decrease: window *= decrease_factor on a full nack.
  double decrease_factor = 0.5;
  // Congested-hold length after a full nack; doubles per consecutive nack
  // up to reopen_max and resets on any credit.
  Micros reopen_initial{500};
  Micros reopen_max{20000};
};

class FlowController;

// RAII ownership of one in-flight slot of a destination's window. Obtained
// from FlowController::Acquire; releases on destruction. `ok()` is false
// when the window stayed closed until the caller's deadline — the send was
// deferred away entirely and never reached the wire.
class FlowSlot {
 public:
  FlowSlot() = default;
  FlowSlot(FlowSlot&& other) noexcept { *this = std::move(other); }
  FlowSlot& operator=(FlowSlot&& other) noexcept;
  FlowSlot(const FlowSlot&) = delete;
  FlowSlot& operator=(const FlowSlot&) = delete;
  ~FlowSlot() { Release(); }

  // True when the caller may send (slot granted, or flow control off).
  bool ok() const { return ok_; }
  // Release now, counting the round trip as an implicit credit (used by
  // RemoteCall, whose replies come from application guardians and so never
  // carry wire credit; without this, call-style windows could only shrink).
  void Success();
  void Release();

 private:
  friend class FlowController;
  FlowController* controller_ = nullptr;  // null when nothing to release
  PortName to_;
  uint64_t epoch_ = 0;
  bool ok_ = false;
};

class FlowController {
 public:
  // `metrics`/`traces` may be null (standalone unit tests). `node` labels
  // trace events with the sending node id. `clock` drives the congested
  // holds and deferred waits (null = wall clock; a node's view of a
  // SimulatedClock makes the holds virtual and skewable).
  FlowController(FlowControlConfig config, MetricsRegistry* metrics,
                 TraceBuffer* traces, uint32_t node,
                 const ClockSource* clock = nullptr);

  FlowController(const FlowController&) = delete;
  FlowController& operator=(const FlowController&) = delete;

  // Wait until the destination's window has room (in_flight < window and
  // not in a congested hold), then claim one in-flight slot. Returns a
  // slot with ok() == false if the window stayed closed until `deadline`.
  // When flow control is disabled or the controller is shut down the slot
  // is granted immediately without accounting.
  FlowSlot Acquire(const PortName& to, const Deadline& deadline);

  // Receiver feedback, applied on the sender's delivery path.
  // A credit grant piggybacked on a receipt ack: additive increase, clamp
  // the window to the advertised capacity, clear any congested hold.
  void OnCredit(const PortName& port, uint32_t queue_depth, uint32_t capacity);
  // `credits` coalesced grants for one port applied as one window update
  // (the batched delivery path collects a drained batch's credits per port
  // and flushes them here): equivalent to `credits` sequential OnCredit
  // calls carrying the run's final depth/capacity, under one lock.
  void OnCreditBatch(const PortName& port, uint32_t queue_depth,
                     uint32_t capacity, uint32_t credits);
  // A full-port nack carrying the receiver's current queue depth:
  // multiplicative decrease plus the congested hold.
  void OnFullNack(const PortName& port, uint32_t queue_depth,
                  uint32_t capacity);
  // A successful round trip observed locally (reply received) with no wire
  // credit attached: additive increase only.
  void OnLocalSuccess(const PortName& port);

  // Introspection for tests and reports.
  double WindowFor(const PortName& to) const;
  size_t InFlightFor(const PortName& to) const;

  // Node crash: wake every waiter; subsequent Acquires are granted without
  // accounting (the send itself will fail with kNodeDown).
  void Shutdown();
  // Node restart: drop all window state (the peer's ports are gone or
  // recreated) and resume accounting.
  void Reset();

 private:
  struct Entry {
    double window = 0;
    size_t in_flight = 0;
    uint32_t capacity_hint = 0;     // 0 = receiver capacity unknown
    TimePoint congested_until{};    // holds Acquire after a full nack
    Micros reopen{0};               // current congested-hold length
  };

  friend class FlowSlot;
  void ReleaseSlot(const PortName& to, uint64_t epoch, bool success);
  // Both require mu_ held.
  Entry& EntryFor(const PortName& to);
  void Grow(Entry& entry);

  const FlowControlConfig config_;
  TraceBuffer* traces_;
  const uint32_t node_;
  const ClockSource* clock_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;                                 // guarded by mu_
  uint64_t epoch_ = 0;                                    // guarded by mu_
  std::unordered_map<PortName, Entry, PortNameHash> entries_;  // mu_

  // flow.* metrics; null when no registry was given.
  Counter* credits_granted_ = nullptr;
  Counter* implicit_credits_ = nullptr;
  Counter* full_nacks_ = nullptr;
  Counter* sends_deferred_ = nullptr;
  Counter* acquire_timeouts_ = nullptr;
  Histogram* defer_wait_us_ = nullptr;
  Histogram* window_hist_ = nullptr;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_NET_FLOW_H_
