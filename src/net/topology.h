// Topology helpers (Section 1.1): "the network may be longhaul or
// shorthaul, or some combination with gateways in between; these details
// are invisible at the programmer level."
//
// The simulator exposes per-pair link parameters; these helpers configure
// whole shapes so experiments can say "three campuses, fast LANs, slow
// WAN" in one call. Programs are untouched — only latencies change, which
// is exactly the invisibility the paper requires.
#ifndef GUARDIANS_SRC_NET_TOPOLOGY_H_
#define GUARDIANS_SRC_NET_TOPOLOGY_H_

#include <string>
#include <vector>

#include "src/net/network.h"

namespace guardians {

struct CampusTopology {
  // campus index -> node ids on that campus.
  std::vector<std::vector<NodeId>> campuses;

  int CampusOf(NodeId node) const;
  bool SameCampus(NodeId a, NodeId b) const;
};

// Configure every existing pair of nodes: intra-campus pairs get
// `shorthaul`, inter-campus pairs get `longhaul` (the gateway hop is folded
// into the longhaul figure, as it is invisible to programs anyway).
// `campus_of[i]` is the campus of node id i+1.
CampusTopology BuildCampuses(Network& network,
                             const std::vector<int>& campus_of,
                             const LinkParams& shorthaul,
                             const LinkParams& longhaul);

// Cut (or restore) every link between two campuses — a WAN partition.
void PartitionCampuses(Network& network, const CampusTopology& topology,
                       int campus_a, int campus_b, bool cut);

}  // namespace guardians

#endif  // GUARDIANS_SRC_NET_TOPOLOGY_H_
