// Minimal leveled logging to stderr. Quiet by default so benchmarks and
// tests stay readable; raise the level in examples to watch the system run.
#ifndef GUARDIANS_SRC_COMMON_LOG_H_
#define GUARDIANS_SRC_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace guardians {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are discarded. Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emit a single line, prefixed with level and a relative timestamp.
void LogLine(LogLevel level, const std::string& line);

namespace internal {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define GUARDIANS_LOG(level)                                           \
  if (::guardians::GetLogLevel() > ::guardians::LogLevel::level) {     \
  } else                                                               \
    ::guardians::internal::LogMessage(::guardians::LogLevel::level)    \
        .stream()

#define GLOG_DEBUG GUARDIANS_LOG(kDebug)
#define GLOG_INFO GUARDIANS_LOG(kInfo)
#define GLOG_WARN GUARDIANS_LOG(kWarn)
#define GLOG_ERROR GUARDIANS_LOG(kError)

}  // namespace guardians

#endif  // GUARDIANS_SRC_COMMON_LOG_H_
