// Time helpers. All latencies and timeouts in the library are
// std::chrono::microseconds on the steady clock — by default. Every
// component that sleeps, polls, or arms a deadline does so through a
// ClockSource, so the whole stack can run on simulated time: a
// SimulatedClock only advances when explicitly stepped (or by its
// auto-stepper), per-node views can disagree about "now" (skew steps,
// drift multipliers), and timeout-heavy tests finish at simulation
// speed instead of wall speed. The wall-clock build pays nothing: the
// default WallClock forwards straight to std::chrono / std::thread.
#ifndef GUARDIANS_SRC_COMMON_CLOCK_H_
#define GUARDIANS_SRC_COMMON_CLOCK_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace guardians {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Micros = std::chrono::microseconds;
using Millis = std::chrono::milliseconds;

// The raw wall clock. Harness bookkeeping (log timestamps, bench wall
// budgets) stays on this even when the system under test runs simulated.
inline TimePoint Now() { return Clock::now(); }

inline int64_t ToMicros(Clock::duration d) {
  return std::chrono::duration_cast<Micros>(d).count();
}

// A source of time plus the three blocking shapes the library uses. The
// condvar waits take the caller's own cv and held lock — a simulated
// clock registers the wait (mutex, cv, deadline) so a stepping thread
// can wake it when virtual time crosses the deadline; the wall clock
// forwards to the std primitives untouched.
class ClockSource {
 public:
  virtual ~ClockSource() = default;

  virtual TimePoint Now() const = 0;

  // Block the calling thread for `d` on this clock.
  virtual void SleepFor(Micros d) const = 0;

  // Wait until pred() holds or `deadline` passes on this clock.
  // `lock` must be held on entry and is held again on return. Returns
  // pred()'s final value. TimePoint::max() waits forever.
  virtual bool WaitUntil(std::condition_variable& cv,
                         std::unique_lock<std::mutex>& lock,
                         TimePoint deadline,
                         std::function<bool()> pred) const = 0;

  // One wait round: block until notified, woken spuriously, or the
  // deadline passes on this clock. Returns true iff the deadline had
  // passed when the wait ended (the cv_status::timeout shape callers
  // that re-derive their wake condition each loop need).
  virtual bool WaitOnce(std::condition_variable& cv,
                        std::unique_lock<std::mutex>& lock,
                        TimePoint deadline) const = 0;

  virtual bool is_simulated() const { return false; }
};

// Passthrough to the steady clock. Stateless; one shared instance.
class WallClock : public ClockSource {
 public:
  static WallClock* Get();

  TimePoint Now() const override { return Clock::now(); }
  void SleepFor(Micros d) const override { std::this_thread::sleep_for(d); }
  bool WaitUntil(std::condition_variable& cv,
                 std::unique_lock<std::mutex>& lock, TimePoint deadline,
                 std::function<bool()> pred) const override;
  bool WaitOnce(std::condition_variable& cv,
                std::unique_lock<std::mutex>& lock,
                TimePoint deadline) const override;
};

// Virtual time. Base time advances only via Advance / AdvanceTo /
// AdvanceToNextDeadline or the optional auto-stepper; every blocked
// virtual wait is registered so the stepper can see the earliest
// pending deadline and wake exactly the waits it crosses, in a
// deterministic order (due time, then registration order).
//
// Per-node views (NodeView) let nodes disagree about "now": a view's
// time is anchor_value + (base - anchor_base) * drift, re-anchored by
// StepNode (a forward or backward jump) and SetNodeDrift. Waits made
// through a view carry node-local deadlines; due-ness is evaluated
// against the node's current mapping, so a skew step mid-wait makes the
// wait fire early (forward step) or late (backward step) exactly as a
// real skewed clock would.
class SimulatedClock : public ClockSource {
 public:
  SimulatedClock();
  ~SimulatedClock() override;

  TimePoint Now() const override;
  void SleepFor(Micros d) const override;
  bool WaitUntil(std::condition_variable& cv,
                 std::unique_lock<std::mutex>& lock, TimePoint deadline,
                 std::function<bool()> pred) const override;
  bool WaitOnce(std::condition_variable& cv,
                std::unique_lock<std::mutex>& lock,
                TimePoint deadline) const override;
  bool is_simulated() const override { return true; }

  // --- stepping (driver / test side) ---

  // Advance base time by d (>= 0) and wake every wait it makes due.
  void Advance(Micros d);
  void AdvanceTo(TimePoint t);

  // Jump base time to the earliest registered finite deadline and wake
  // its waiters. Returns false (and advances nothing) when no finite
  // virtual deadline is registered.
  bool AdvanceToNextDeadline();

  // Block in *real* time until at least n virtual waits are registered
  // (or the real timeout passes). How tests rendezvous with a thread
  // they are about to step past a timeout.
  bool WaitForWaiters(size_t n, Micros real_timeout = Micros(2'000'000));
  size_t WaiterCount() const;

  // --- auto-stepper (chaos / whole-system runs) ---

  // Start a background thread that advances to the next deadline
  // whenever the waiter registry has been quiet for `quiet` of real
  // time (no registrations or wakeups — i.e. every participant is
  // blocked on virtual time and only a step can make progress).
  void StartAutoStep(Micros quiet = Micros(200));
  void StopAutoStep();

  // --- per-node skew / drift ---

  // Borrowed view; owned by (and valid for the life of) this clock.
  // Node 0 is the unskewed base view.
  ClockSource* NodeView(uint64_t node);
  // Step node's opinion of now by delta (may be negative).
  void StepNode(uint64_t node, Micros delta);
  // Node's clock runs at `rate` × base speed from this instant on.
  void SetNodeDrift(uint64_t node, double rate);
  TimePoint NowFor(uint64_t node) const;

 private:
  friend class SimNodeClock;

  struct Waiter {
    std::mutex* mu = nullptr;
    std::condition_variable* cv = nullptr;
    uint64_t node = 0;
    TimePoint deadline = TimePoint::max();  // in the node's timeline
    uint64_t seq = 0;
  };
  struct NodeSkew {
    TimePoint anchor_value{};  // node time at anchor_base
    TimePoint anchor_base{};   // base time of the last re-anchor
    double drift = 1.0;
  };

  TimePoint NowForLocked(uint64_t node) const;  // time_mu_ held
  // Node view at a hypothetical base instant (time_mu_ held).
  TimePoint NowAtLocked(uint64_t node, TimePoint base) const;
  // Base-time instant at which node's clock shows `node_deadline`.
  TimePoint DueBaseLocked(uint64_t node, TimePoint node_deadline) const;
  bool WaitCommon(std::condition_variable& cv,
                  std::unique_lock<std::mutex>& lock, uint64_t node,
                  TimePoint deadline, std::function<bool()>* pred) const;
  // Wake every registered wait that is due at the current time/skew.
  void NotifyDue();
  bool AdvanceToNextDeadlineInternal();
  void AutoStepLoop(Micros quiet);

  // Lock order: registry_mu_ -> (a waiter's mu) -> time_mu_. Never take
  // registry_mu_ or a waiter's mutex while holding time_mu_.
  mutable std::mutex time_mu_;
  TimePoint base_now_;
  std::map<uint64_t, NodeSkew> skew_;  // absent node: identity mapping

  mutable std::mutex registry_mu_;
  mutable std::condition_variable registry_cv_;  // real; register/wake churn
  mutable std::vector<Waiter*> waiters_;
  mutable uint64_t next_waiter_seq_ = 0;
  mutable uint64_t churn_ = 0;  // bumped on every register/deregister/step

  std::map<uint64_t, std::unique_ptr<ClockSource>> views_;
  std::mutex views_mu_;

  std::thread auto_stepper_;
  bool auto_stop_ = false;  // guarded by registry_mu_
};

// A simple deadline: constructed from a timeout on a clock (wall by
// default), queried for remaining time. Remaining() is clamped to be
// non-increasing so a backward skew step on the owning node's clock
// can never inflate a budget that was already partly spent.
class Deadline {
 public:
  explicit Deadline(Micros timeout, const ClockSource* clock = nullptr)
      : clock_(clock ? clock : WallClock::Get()),
        at_(clock_->Now() + timeout) {}

  static Deadline Infinite(const ClockSource* clock = nullptr) {
    return Deadline(TimePoint::max(), clock);
  }

  bool Expired() const {
    return at_ != TimePoint::max() && clock_->Now() >= at_;
  }
  bool IsInfinite() const { return at_ == TimePoint::max(); }
  TimePoint at() const { return at_; }
  const ClockSource* clock() const { return clock_; }

  Micros Remaining() const {
    if (at_ == TimePoint::max()) {
      return Micros::max();
    }
    const auto now = clock_->Now();
    Micros left = now >= at_ ? Micros(0)
                             : std::chrono::duration_cast<Micros>(at_ - now);
    if (left > floor_) left = floor_;
    floor_ = left;
    return left;
  }

 private:
  explicit Deadline(TimePoint at, const ClockSource* clock)
      : clock_(clock ? clock : WallClock::Get()), at_(at) {}
  const ClockSource* clock_;
  TimePoint at_;
  mutable Micros floor_{Micros::max()};
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_COMMON_CLOCK_H_
