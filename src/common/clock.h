// Time helpers. All latencies and timeouts in the library are
// std::chrono::microseconds on the steady clock.
#ifndef GUARDIANS_SRC_COMMON_CLOCK_H_
#define GUARDIANS_SRC_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace guardians {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Micros = std::chrono::microseconds;
using Millis = std::chrono::milliseconds;

inline TimePoint Now() { return Clock::now(); }

inline int64_t ToMicros(Clock::duration d) {
  return std::chrono::duration_cast<Micros>(d).count();
}

// A simple deadline: constructed from a timeout, queried for remaining time.
class Deadline {
 public:
  explicit Deadline(Micros timeout) : at_(Now() + timeout) {}

  static Deadline Infinite() { return Deadline(TimePoint::max()); }

  bool Expired() const { return at_ != TimePoint::max() && Now() >= at_; }
  bool IsInfinite() const { return at_ == TimePoint::max(); }
  TimePoint at() const { return at_; }

  Micros Remaining() const {
    if (at_ == TimePoint::max()) {
      return Micros::max();
    }
    const auto now = Now();
    return now >= at_ ? Micros(0)
                      : std::chrono::duration_cast<Micros>(at_ - now);
  }

 private:
  explicit Deadline(TimePoint at) : at_(at) {}
  TimePoint at_;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_COMMON_CLOCK_H_
