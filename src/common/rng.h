// Deterministic pseudo-random number generator (splitmix64 seeded
// xoshiro256**). Used by the network simulator (loss, jitter, corruption),
// workload generators and property tests so that every experiment is
// reproducible from a seed.
#ifndef GUARDIANS_SRC_COMMON_RNG_H_
#define GUARDIANS_SRC_COMMON_RNG_H_

#include <cstdint>

namespace guardians {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Uniform 64-bit value.
  uint64_t NextU64();
  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);
  // Uniform in [lo, hi] inclusive. lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);
  // Uniform in [0, 1).
  double NextDouble();
  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);
  // Exponential with the given mean (for inter-arrival times).
  double NextExponential(double mean);
  // Normal(mu, sigma) via Box-Muller (for latency jitter).
  double NextNormal(double mu, double sigma);

  // Derive an independent stream (e.g. one per node) from this one.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_COMMON_RNG_H_
