#include "src/common/clock.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace guardians {

// ---------------------------------------------------------------- WallClock

WallClock* WallClock::Get() {
  static WallClock instance;
  return &instance;
}

bool WallClock::WaitUntil(std::condition_variable& cv,
                          std::unique_lock<std::mutex>& lock,
                          TimePoint deadline,
                          std::function<bool()> pred) const {
  if (deadline == TimePoint::max()) {
    cv.wait(lock, std::move(pred));
    return true;
  }
  return cv.wait_until(lock, deadline, std::move(pred));
}

bool WallClock::WaitOnce(std::condition_variable& cv,
                         std::unique_lock<std::mutex>& lock,
                         TimePoint deadline) const {
  if (deadline == TimePoint::max()) {
    cv.wait(lock);
    return false;
  }
  return cv.wait_until(lock, deadline) == std::cv_status::timeout;
}

// ----------------------------------------------------------- SimNodeClock

namespace {
constexpr double kMinDrift = 1e-6;
}  // namespace

// A node's borrowed view of the simulated clock: same registry, but all
// deadlines live in the node's (possibly skewed, drifting) timeline.
class SimNodeClock : public ClockSource {
 public:
  SimNodeClock(SimulatedClock* parent, uint64_t node)
      : parent_(parent), node_(node) {}

  TimePoint Now() const override { return parent_->NowFor(node_); }

  void SleepFor(Micros d) const override {
    std::mutex mu;
    std::condition_variable cv;
    std::unique_lock<std::mutex> lock(mu);
    const TimePoint deadline = Now() + d;
    parent_->WaitCommon(cv, lock, node_, deadline, nullptr);
  }

  bool WaitUntil(std::condition_variable& cv,
                 std::unique_lock<std::mutex>& lock, TimePoint deadline,
                 std::function<bool()> pred) const override {
    return parent_->WaitCommon(cv, lock, node_, deadline, &pred);
  }

  bool WaitOnce(std::condition_variable& cv,
                std::unique_lock<std::mutex>& lock,
                TimePoint deadline) const override {
    return parent_->WaitCommon(cv, lock, node_, deadline, nullptr);
  }

  bool is_simulated() const override { return true; }

 private:
  SimulatedClock* parent_;
  uint64_t node_;
};

// ---------------------------------------------------------- SimulatedClock

SimulatedClock::SimulatedClock()
    // An arbitrary non-zero epoch so backward skew near the start cannot
    // underflow a zero time base.
    : base_now_(TimePoint() + std::chrono::hours(1000)) {}

SimulatedClock::~SimulatedClock() { StopAutoStep(); }

TimePoint SimulatedClock::Now() const {
  std::lock_guard<std::mutex> t(time_mu_);
  return base_now_;
}

TimePoint SimulatedClock::NowAtLocked(uint64_t node, TimePoint base) const {
  const auto it = skew_.find(node);
  if (it == skew_.end()) {
    return base;
  }
  const NodeSkew& s = it->second;
  const double elapsed_ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(base -
                                                               s.anchor_base)
              .count()) *
      s.drift;
  return s.anchor_value +
         std::chrono::nanoseconds(static_cast<int64_t>(elapsed_ns));
}

TimePoint SimulatedClock::NowForLocked(uint64_t node) const {
  return NowAtLocked(node, base_now_);
}

TimePoint SimulatedClock::NowFor(uint64_t node) const {
  std::lock_guard<std::mutex> t(time_mu_);
  return NowForLocked(node);
}

TimePoint SimulatedClock::DueBaseLocked(uint64_t node,
                                        TimePoint node_deadline) const {
  if (node_deadline == TimePoint::max()) {
    return TimePoint::max();
  }
  const auto it = skew_.find(node);
  if (it == skew_.end()) {
    return node_deadline;
  }
  const NodeSkew& s = it->second;
  const double ahead_ns = std::ceil(
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              node_deadline - s.anchor_value)
              .count()) /
      s.drift);
  TimePoint due =
      s.anchor_base + std::chrono::nanoseconds(static_cast<int64_t>(ahead_ns));
  // The divide here and the multiply in NowAtLocked don't round-trip
  // exactly in double; if `due` lands a hair before the node view reaches
  // the deadline, the auto-stepper would advance base time exactly to
  // `due`, find nobody due, and never be able to cross the gap — a
  // permanent stall. Nudge forward (geometrically, so the loop is
  // log-bounded in the FP error) until the forward mapping really is due.
  std::chrono::nanoseconds bump(1);
  while (NowAtLocked(node, due) < node_deadline) {
    due += bump;
    bump *= 2;
  }
  return due;
}

void SimulatedClock::SleepFor(Micros d) const {
  std::mutex mu;
  std::condition_variable cv;
  std::unique_lock<std::mutex> lock(mu);
  const TimePoint deadline = Now() + d;
  WaitCommon(cv, lock, /*node=*/0, deadline, nullptr);
}

bool SimulatedClock::WaitUntil(std::condition_variable& cv,
                               std::unique_lock<std::mutex>& lock,
                               TimePoint deadline,
                               std::function<bool()> pred) const {
  return WaitCommon(cv, lock, /*node=*/0, deadline, &pred);
}

bool SimulatedClock::WaitOnce(std::condition_variable& cv,
                              std::unique_lock<std::mutex>& lock,
                              TimePoint deadline) const {
  return WaitCommon(cv, lock, /*node=*/0, deadline, nullptr);
}

// The wait core. Registration and deregistration drop the caller's lock
// first (lock order forbids taking registry_mu_ under it); a pred-based
// wait re-checks pred after re-locking, so it can never miss a producer
// notify. A pred-less WaitOnce that loses a notify inside the
// registration gap sleeps until its (virtual) deadline instead — every
// WaitOnce caller re-derives its wake condition in a loop, so this is a
// latency blip in simulated time, never a correctness issue.
bool SimulatedClock::WaitCommon(std::condition_variable& cv,
                                std::unique_lock<std::mutex>& lock,
                                uint64_t node, TimePoint deadline,
                                std::function<bool()>* pred) const {
  Waiter w;
  w.mu = lock.mutex();
  w.cv = &cv;
  w.node = node;
  w.deadline = deadline;

  lock.unlock();
  {
    std::lock_guard<std::mutex> reg(registry_mu_);
    w.seq = next_waiter_seq_++;
    waiters_.push_back(&w);
    ++churn_;
    registry_cv_.notify_all();
  }
  lock.lock();

  bool result;
  if (pred != nullptr) {
    for (;;) {
      if ((*pred)()) {
        result = true;
        break;
      }
      if (deadline != TimePoint::max() && NowFor(node) >= deadline) {
        result = false;
        break;
      }
      cv.wait(lock);
    }
  } else {
    // WaitOnce / SleepFor shape: at most one block; report timeout-ness.
    if (deadline != TimePoint::max() && NowFor(node) >= deadline) {
      result = true;
    } else {
      cv.wait(lock);
      result = deadline != TimePoint::max() && NowFor(node) >= deadline;
    }
  }

  lock.unlock();
  {
    std::lock_guard<std::mutex> reg(registry_mu_);
    waiters_.erase(std::find(waiters_.begin(), waiters_.end(), &w));
    ++churn_;
    registry_cv_.notify_all();
  }
  lock.lock();
  return result;
}

// registry_mu_ held. Wake every wait whose node clock has reached its
// deadline, in deterministic order: base-time due instant, then
// registration order. Locking (then releasing) the waiter's own mutex
// before the notify serializes with its pred/deadline re-check, so a
// wake posted between that check and the cv.wait cannot be lost.
void SimulatedClock::NotifyDue() {
  struct Due {
    TimePoint due_base;
    uint64_t seq;
    std::mutex* mu;
    std::condition_variable* cv;
  };
  std::vector<Due> due;
  {
    std::lock_guard<std::mutex> t(time_mu_);
    for (Waiter* w : waiters_) {
      if (w->deadline == TimePoint::max()) {
        continue;
      }
      if (NowForLocked(w->node) >= w->deadline) {
        due.push_back({DueBaseLocked(w->node, w->deadline), w->seq, w->mu,
                       w->cv});
      }
    }
  }
  std::sort(due.begin(), due.end(), [](const Due& a, const Due& b) {
    return a.due_base != b.due_base ? a.due_base < b.due_base
                                    : a.seq < b.seq;
  });
  for (const Due& d : due) {
    {
      std::lock_guard<std::mutex> hold(*d.mu);
    }
    d.cv->notify_all();
  }
}

void SimulatedClock::Advance(Micros d) {
  {
    std::lock_guard<std::mutex> t(time_mu_);
    base_now_ += d;
  }
  std::lock_guard<std::mutex> reg(registry_mu_);
  NotifyDue();
}

void SimulatedClock::AdvanceTo(TimePoint t) {
  {
    std::lock_guard<std::mutex> tl(time_mu_);
    if (t > base_now_) {
      base_now_ = t;
    }
  }
  std::lock_guard<std::mutex> reg(registry_mu_);
  NotifyDue();
}

bool SimulatedClock::AdvanceToNextDeadlineInternal() {
  {
    std::lock_guard<std::mutex> t(time_mu_);
    TimePoint earliest = TimePoint::max();
    for (Waiter* w : waiters_) {
      if (w->deadline == TimePoint::max()) {
        continue;
      }
      earliest = std::min(earliest, DueBaseLocked(w->node, w->deadline));
    }
    if (earliest == TimePoint::max()) {
      return false;
    }
    if (earliest > base_now_) {
      base_now_ = earliest;
    }
  }
  NotifyDue();
  return true;
}

bool SimulatedClock::AdvanceToNextDeadline() {
  std::lock_guard<std::mutex> reg(registry_mu_);
  return AdvanceToNextDeadlineInternal();
}

bool SimulatedClock::WaitForWaiters(size_t n, Micros real_timeout) {
  std::unique_lock<std::mutex> reg(registry_mu_);
  return registry_cv_.wait_for(reg, real_timeout,
                               [&] { return waiters_.size() >= n; });
}

size_t SimulatedClock::WaiterCount() const {
  std::lock_guard<std::mutex> reg(registry_mu_);
  return waiters_.size();
}

ClockSource* SimulatedClock::NodeView(uint64_t node) {
  std::lock_guard<std::mutex> v(views_mu_);
  auto& slot = views_[node];
  if (!slot) {
    slot = std::make_unique<SimNodeClock>(this, node);
  }
  return slot.get();
}

void SimulatedClock::StepNode(uint64_t node, Micros delta) {
  {
    std::lock_guard<std::mutex> t(time_mu_);
    NodeSkew& s = skew_[node];
    if (s.anchor_base == TimePoint()) {
      s.anchor_value = base_now_;
      s.anchor_base = base_now_;
    }
    const TimePoint current = NowForLocked(node);
    s.anchor_value = current + delta;
    s.anchor_base = base_now_;
  }
  // A forward step can make node-local deadlines due right now.
  std::lock_guard<std::mutex> reg(registry_mu_);
  ++churn_;
  registry_cv_.notify_all();
  NotifyDue();
}

void SimulatedClock::SetNodeDrift(uint64_t node, double rate) {
  {
    std::lock_guard<std::mutex> t(time_mu_);
    NodeSkew& s = skew_[node];
    if (s.anchor_base == TimePoint()) {
      s.anchor_value = base_now_;
      s.anchor_base = base_now_;
    }
    const TimePoint current = NowForLocked(node);
    s.anchor_value = current;
    s.anchor_base = base_now_;
    s.drift = rate < kMinDrift ? kMinDrift : rate;
  }
  std::lock_guard<std::mutex> reg(registry_mu_);
  ++churn_;
  registry_cv_.notify_all();
  NotifyDue();
}

void SimulatedClock::StartAutoStep(Micros quiet) {
  StopAutoStep();
  {
    std::lock_guard<std::mutex> reg(registry_mu_);
    auto_stop_ = false;
  }
  auto_stepper_ = std::thread([this, quiet] { AutoStepLoop(quiet); });
}

void SimulatedClock::StopAutoStep() {
  {
    std::lock_guard<std::mutex> reg(registry_mu_);
    auto_stop_ = true;
    registry_cv_.notify_all();
  }
  if (auto_stepper_.joinable()) {
    auto_stepper_.join();
  }
}

// Advance to the next virtual deadline whenever the registry has been
// quiet (no register/deregister/skew churn) for `quiet` of real time:
// every participant is then blocked on virtual time and only a step can
// make progress. Runnable threads reset the quiet window on every wait
// they enter or leave, so the stepper never races active work — and a
// step that can't advance (no finite deadline registered) just re-arms.
void SimulatedClock::AutoStepLoop(Micros quiet) {
  std::unique_lock<std::mutex> reg(registry_mu_);
  uint64_t last_churn = churn_;
  auto last_change = Clock::now();
  while (!auto_stop_) {
    registry_cv_.wait_for(reg, quiet);
    if (auto_stop_) {
      break;
    }
    if (churn_ != last_churn) {
      last_churn = churn_;
      last_change = Clock::now();
      continue;
    }
    if (Clock::now() - last_change >= quiet) {
      AdvanceToNextDeadlineInternal();
      last_change = Clock::now();
    }
  }
}

}  // namespace guardians
