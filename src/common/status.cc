#include "src/common/status.h"

#include <ostream>

namespace guardians {

std::string_view CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "ok";
    case Code::kInvalidArgument:
      return "invalid argument";
    case Code::kNotFound:
      return "not found";
    case Code::kAlreadyExists:
      return "already exists";
    case Code::kOutOfRange:
      return "out of range";
    case Code::kUnimplemented:
      return "unimplemented";
    case Code::kInternal:
      return "internal";
    case Code::kTimeout:
      return "timeout";
    case Code::kPortFull:
      return "port full";
    case Code::kNoSuchPort:
      return "no such port";
    case Code::kNodeDown:
      return "node down";
    case Code::kUnreachable:
      return "unreachable";
    case Code::kCorrupt:
      return "corrupt";
    case Code::kTypeError:
      return "type error";
    case Code::kEncodeError:
      return "encode error";
    case Code::kDecodeError:
      return "decode error";
    case Code::kNotTransmittable:
      return "not transmittable";
    case Code::kPermissionDenied:
      return "permission denied";
    case Code::kBadToken:
      return "bad token";
    case Code::kStorageError:
      return "storage error";
    case Code::kLogCorrupt:
      return "log corrupt";
  }
  return "unknown";
}

std::string Status::ToString() const {
  std::string out(CodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace guardians
