// Result<T>: a value-or-Status, the library's return type for fallible
// operations that produce a value.
#ifndef GUARDIANS_SRC_COMMON_RESULT_H_
#define GUARDIANS_SRC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace guardians {

template <typename T>
class Result {
 public:
  // Implicit from a value (the common, readable case: `return 42;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  // Implicit from a non-ok status: `return Status(Code::kTimeout);`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "use Result(T) for success");
  }
  Result(Code code, std::string message)
      : status_(code, std::move(message)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T&& take() {
    assert(ok());
    return std::move(*value_);
  }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  std::optional<T> value_;
  Status status_;  // ok() status when value_ is set
};

// Propagate a non-ok Status from an expression.
//
//   GUARDIANS_RETURN_IF_ERROR(port.Check(msg));
#define GUARDIANS_RETURN_IF_ERROR(expr)            \
  do {                                             \
    ::guardians::Status _st = (expr);              \
    if (!_st.ok()) {                               \
      return _st;                                  \
    }                                              \
  } while (false)

// Assign a Result's value or propagate its Status.
//
//   GUARDIANS_ASSIGN_OR_RETURN(auto bytes, encoder.Finish());
#define GUARDIANS_ASSIGN_OR_RETURN(lhs, expr)      \
  GUARDIANS_ASSIGN_OR_RETURN_IMPL_(                \
      GUARDIANS_CONCAT_(_res_, __LINE__), lhs, expr)

#define GUARDIANS_CONCAT_INNER_(a, b) a##b
#define GUARDIANS_CONCAT_(a, b) GUARDIANS_CONCAT_INNER_(a, b)
#define GUARDIANS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                     \
  if (!tmp.ok()) {                                       \
    return tmp.status();                                 \
  }                                                      \
  lhs = std::move(tmp.take())

}  // namespace guardians

#endif  // GUARDIANS_SRC_COMMON_RESULT_H_
