#include "src/common/bytes.h"

#include <cstdio>

namespace guardians {

std::string HexDump(ConstByteSpan bytes, size_t max_bytes) {
  std::string out;
  const size_t n = bytes.size() < max_bytes ? bytes.size() : max_bytes;
  char buf[4];
  for (size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof(buf), "%02x", bytes[i]);
    out += buf;
    if (i % 2 == 1 && i + 1 < n) {
      out += ' ';
    }
  }
  if (bytes.size() > max_bytes) {
    out += "...";
  }
  return out;
}

uint64_t Fnv1a64(const void* data, size_t size) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace guardians
