#include "src/common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "src/common/clock.h"

namespace guardians {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;
const TimePoint g_start = Now();

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogLine(LogLevel level, const std::string& line) {
  if (level < g_level.load()) {
    return;
  }
  const double ms = static_cast<double>(ToMicros(Now() - g_start)) / 1000.0;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s %10.3fms] %s\n", LevelTag(level), ms,
               line.c_str());
}

}  // namespace guardians
