// Refcounted immutable byte buffers and cheap slice views — the zero-copy
// substrate of the wire path (DESIGN.md §13).
//
// A message is encoded exactly once into one contiguous Buffer; every
// fragment, duplicate and reassembly partial downstream is a BufferSlice
// (shared buffer + offset/length) whose copy constructor is a refcount
// bump. The only mutation escape hatch is MutableData(), which performs a
// copy-on-write of just the slice when the underlying storage is shared —
// so corrupting one fragment can never bleed into a twin duplicate or a
// sibling fragment of the same message.
//
// Copy/alloc accounting: every byte-materializing operation (CopyOf,
// ToBytes, COW, gather) bumps process-global relaxed counters readable via
// BufferStats. common cannot depend on obs, so System bridges the globals
// into the metrics registry as `buffer.bytes_copied` / `buffer.allocs`.
#ifndef GUARDIANS_SRC_COMMON_BUFFER_H_
#define GUARDIANS_SRC_COMMON_BUFFER_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "src/common/bytes.h"

namespace guardians {

// Process-global copy/alloc accounting, relaxed atomics (hot-path safe).
struct BufferStats {
  // Bytes materialized into fresh storage (explicit copies, COW, gathers).
  static uint64_t BytesCopied();
  // Buffer storage blocks created (adoptions count too: one per encode).
  static uint64_t Allocs();
  static void CountCopy(size_t bytes);
  static void CountAlloc();
};

// An immutable, refcounted byte array. Copying a Buffer shares storage.
class Buffer {
 public:
  Buffer() = default;

  // Takes over the vector's storage — no byte copy (the encoder's output
  // becomes the message buffer directly).
  static Buffer Adopt(Bytes bytes);
  // Explicit copy of a byte range into fresh storage (counted).
  static Buffer CopyOf(ConstByteSpan bytes);

  const uint8_t* data() const {
    return storage_ != nullptr ? storage_->data() : nullptr;
  }
  size_t size() const { return storage_ != nullptr ? storage_->size() : 0; }
  bool empty() const { return size() == 0; }

  // True when this handle is the only reference to the storage. Only
  // meaningful when the caller owns the sole externally-reachable handle
  // (the standard COW caveat).
  bool unique() const { return storage_ != nullptr && storage_.use_count() == 1; }
  // Identity of the underlying storage; null for the empty buffer.
  const void* id() const { return storage_.get(); }

 private:
  friend class BufferSlice;
  std::shared_ptr<Bytes> storage_;  // never written after construction,
                                    // except via BufferSlice's COW hatch
};

// A view of [offset, offset+length) of a shared Buffer. Copies are
// refcount bumps; the bytes themselves are immutable through this type
// except via the explicit MutableData() copy-on-write hatch.
class BufferSlice {
 public:
  BufferSlice() = default;

  // Adopts the vector's storage — zero-copy (the common construction: an
  // encoder's Take()n output becomes the message slice).
  /*implicit*/ BufferSlice(Bytes&& bytes);
  // Explicit copying construction from an lvalue (counted).
  explicit BufferSlice(const Bytes& bytes);
  explicit BufferSlice(Buffer buffer);
  BufferSlice(Buffer buffer, size_t offset, size_t length);

  // Explicit copy of an arbitrary byte range (counted).
  static BufferSlice CopyOf(ConstByteSpan bytes);

  const uint8_t* data() const { return buffer_.data() + offset_; }
  size_t size() const { return length_; }
  bool empty() const { return length_ == 0; }
  uint8_t operator[](size_t i) const { return data()[i]; }
  ConstByteSpan span() const { return ConstByteSpan(data(), length_); }
  /*implicit*/ operator ConstByteSpan() const { return span(); }

  // A sub-view sharing the same buffer (no copy). Bounds-clamped.
  BufferSlice Sub(size_t offset, size_t length) const;

  // Materialize an owning copy of the viewed bytes (counted).
  Bytes ToBytes() const;

  // The copy-on-write escape hatch. Returns writable storage for exactly
  // this slice's bytes: in place when this slice is the sole reference to
  // its whole buffer, otherwise the slice is first copied into a fresh
  // buffer of its own (counted) — shared-storage siblings are never
  // affected. Requires external synchronization, like any non-const op.
  uint8_t* MutableData();

  // Storage identity, for sharing assertions in tests and for the
  // contiguity fast path in reassembly.
  const Buffer& buffer() const { return buffer_; }
  size_t offset() const { return offset_; }
  bool SharesBufferWith(const BufferSlice& other) const {
    return buffer_.id() != nullptr && buffer_.id() == other.buffer_.id();
  }

 private:
  Buffer buffer_;
  size_t offset_ = 0;
  size_t length_ = 0;
};

// Join slices into one contiguous slice with at most one copy: when the
// parts are adjacent views of a single buffer (fragments of one encoded
// message arriving intact), the result is a zero-copy view spanning them;
// otherwise one pre-sized gather into fresh storage (counted).
BufferSlice GatherSlices(const std::vector<BufferSlice>& parts,
                         size_t total_bytes);

bool operator==(const BufferSlice& a, const BufferSlice& b);
bool operator==(const BufferSlice& a, ConstByteSpan b);
inline bool operator==(ConstByteSpan a, const BufferSlice& b) {
  return b == a;
}

// gtest-friendly printing (hex dump, capped).
void PrintTo(const BufferSlice& slice, std::ostream* os);

}  // namespace guardians

#endif  // GUARDIANS_SRC_COMMON_BUFFER_H_
