// Byte-buffer helpers shared by the wire format and stable storage.
#ifndef GUARDIANS_SRC_COMMON_BYTES_H_
#define GUARDIANS_SRC_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace guardians {

using Bytes = std::vector<uint8_t>;

inline Bytes ToBytes(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

inline std::string ToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

// Short hex dump for logs: "4a6f 6521" style, capped.
std::string HexDump(const Bytes& bytes, size_t max_bytes = 32);

// FNV-1a 64-bit hash, used for port-type hashes (the analog of the compiled
// guardian-header library key) and for deterministic ids.
uint64_t Fnv1a64(const void* data, size_t size);
uint64_t Fnv1a64(const std::string& s);

}  // namespace guardians

#endif  // GUARDIANS_SRC_COMMON_BYTES_H_
