// Byte-buffer helpers shared by the wire format and stable storage.
//
// All read-only helpers take non-owning views (std::span / std::string_view)
// so callers never materialize an owning vector or string just to hash,
// print, or compare bytes they already hold.
#ifndef GUARDIANS_SRC_COMMON_BYTES_H_
#define GUARDIANS_SRC_COMMON_BYTES_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace guardians {

using Bytes = std::vector<uint8_t>;

// Non-owning read-only view of a byte range. Bytes converts implicitly.
using ConstByteSpan = std::span<const uint8_t>;

inline ConstByteSpan AsByteSpan(std::string_view s) {
  return ConstByteSpan(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

// Owning conversions; both copy exactly once, at the caller's request.
inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string ToString(ConstByteSpan b) {
  return std::string(b.begin(), b.end());
}

// Short hex dump for logs: "4a6f 6521" style, capped. View-based: a packet
// payload slice can be dumped without materializing an owning vector.
std::string HexDump(ConstByteSpan bytes, size_t max_bytes = 32);

// FNV-1a 64-bit hash, used for port-type hashes (the analog of the compiled
// guardian-header library key) and for deterministic ids.
uint64_t Fnv1a64(const void* data, size_t size);
inline uint64_t Fnv1a64(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}
inline uint64_t Fnv1a64(ConstByteSpan b) { return Fnv1a64(b.data(), b.size()); }

}  // namespace guardians

#endif  // GUARDIANS_SRC_COMMON_BYTES_H_
