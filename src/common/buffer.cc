#include "src/common/buffer.h"

#include <atomic>
#include <cstring>
#include <ostream>

namespace guardians {

namespace {
std::atomic<uint64_t> g_bytes_copied{0};
std::atomic<uint64_t> g_allocs{0};
}  // namespace

uint64_t BufferStats::BytesCopied() {
  return g_bytes_copied.load(std::memory_order_relaxed);
}

uint64_t BufferStats::Allocs() {
  return g_allocs.load(std::memory_order_relaxed);
}

void BufferStats::CountCopy(size_t bytes) {
  g_bytes_copied.fetch_add(bytes, std::memory_order_relaxed);
}

void BufferStats::CountAlloc() {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
}

Buffer Buffer::Adopt(Bytes bytes) {
  Buffer b;
  b.storage_ = std::make_shared<Bytes>(std::move(bytes));
  BufferStats::CountAlloc();
  return b;
}

Buffer Buffer::CopyOf(ConstByteSpan bytes) {
  Buffer b = Adopt(Bytes(bytes.begin(), bytes.end()));
  BufferStats::CountCopy(bytes.size());
  return b;
}

BufferSlice::BufferSlice(Bytes&& bytes)
    : buffer_(Buffer::Adopt(std::move(bytes))) {
  length_ = buffer_.size();
}

BufferSlice::BufferSlice(const Bytes& bytes)
    : buffer_(Buffer::CopyOf(bytes)) {
  length_ = buffer_.size();
}

BufferSlice::BufferSlice(Buffer buffer)
    : buffer_(std::move(buffer)), offset_(0), length_(buffer_.size()) {}

BufferSlice::BufferSlice(Buffer buffer, size_t offset, size_t length)
    : buffer_(std::move(buffer)) {
  const size_t size = buffer_.size();
  offset_ = offset < size ? offset : size;
  length_ = length < size - offset_ ? length : size - offset_;
}

BufferSlice BufferSlice::CopyOf(ConstByteSpan bytes) {
  return BufferSlice(Buffer::CopyOf(bytes));
}

BufferSlice BufferSlice::Sub(size_t offset, size_t length) const {
  const size_t off = offset < length_ ? offset : length_;
  const size_t len = length < length_ - off ? length : length_ - off;
  return BufferSlice(buffer_, offset_ + off, len);
}

Bytes BufferSlice::ToBytes() const {
  BufferStats::CountCopy(length_);
  return Bytes(data(), data() + length_);
}

uint8_t* BufferSlice::MutableData() {
  if (buffer_.unique() && offset_ == 0 && length_ == buffer_.size()) {
    // Sole reference to the whole buffer: no one can observe the write.
    return buffer_.storage_->data();
  }
  // COW: this slice's bytes move into a private buffer; every other view
  // of the old storage is untouched.
  Buffer fresh = Buffer::CopyOf(span());
  buffer_ = std::move(fresh);
  offset_ = 0;
  return buffer_.storage_->data();
}

BufferSlice GatherSlices(const std::vector<BufferSlice>& parts,
                         size_t total_bytes) {
  if (parts.empty()) {
    return BufferSlice();
  }
  // Zero-copy fast path: adjacent views of one buffer (the common case —
  // every fragment of a message is a slice of its one encode buffer, and
  // delivery preserved them all).
  bool contiguous = parts[0].buffer().id() != nullptr;
  size_t expect = parts[0].offset();
  for (const BufferSlice& part : parts) {
    if (!contiguous || !part.SharesBufferWith(parts[0]) ||
        part.offset() != expect) {
      contiguous = false;
      break;
    }
    expect = part.offset() + part.size();
  }
  if (contiguous) {
    return BufferSlice(parts[0].buffer(), parts[0].offset(), total_bytes);
  }
  Bytes joined;
  joined.reserve(total_bytes);
  for (const BufferSlice& part : parts) {
    joined.insert(joined.end(), part.data(), part.data() + part.size());
  }
  BufferStats::CountCopy(joined.size());
  return BufferSlice(std::move(joined));
}

bool operator==(const BufferSlice& a, const BufferSlice& b) {
  return a.size() == b.size() &&
         (a.size() == 0 || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

bool operator==(const BufferSlice& a, ConstByteSpan b) {
  return a.size() == b.size() &&
         (a.size() == 0 || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

void PrintTo(const BufferSlice& slice, std::ostream* os) {
  *os << "BufferSlice{" << slice.size() << " bytes: "
      << HexDump(slice.span()) << "}";
}

}  // namespace guardians
