// Status and error codes used throughout the guardians library.
//
// The library does not use exceptions: every operation that can fail returns
// a Status or a Result<T> (see result.h). This mirrors the paper's treatment
// of failures as values that flow to the program ("the send command
// terminates and raises that exception" becomes a non-ok Status from Send).
#ifndef GUARDIANS_SRC_COMMON_STATUS_H_
#define GUARDIANS_SRC_COMMON_STATUS_H_

#include <iosfwd>
#include <string>
#include <string_view>

namespace guardians {

// Error taxonomy. Codes are stable; they appear in logs and in system
// failure(...) messages.
enum class Code {
  kOk = 0,
  // Generic.
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  // Communication (Section 3.4 of the paper).
  kTimeout,          // receive timed out; nothing is known about true state
  kPortFull,         // target port buffer had no room; message discarded
  kNoSuchPort,       // target port or guardian doesn't exist
  kNodeDown,         // local node crashed / shutting down
  kUnreachable,      // network cannot deliver (partition, node down)
  kCorrupt,          // error-detection bits rejected the data
  // Typing (Section 3.2: compile-time checking analog).
  kTypeError,        // message does not match the port's declared type
  kEncodeError,      // encode operation of a transmittable type failed
  kDecodeError,      // decode operation of a transmittable type failed
  kNotTransmittable, // type forbids sending its values in messages
  // Authority (Sections 1.1, 2.3).
  kPermissionDenied, // ACL or node admission policy refused the request
  kBadToken,         // token was not sealed by this guardian
  // Storage (Section 2.2).
  kStorageError,     // stable storage device failure
  kLogCorrupt,       // WAL record failed its frame check
};

// Human-readable name of a code ("kTimeout" -> "timeout").
std::string_view CodeName(Code code);

// A success-or-error value: a code plus an optional context message.
// Cheap to copy in the ok case.
class Status {
 public:
  Status() : code_(Code::kOk) {}
  explicit Status(Code code) : code_(code) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  // "timeout: no reply from regional manager" or "ok".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Code code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

inline Status OkStatus() { return Status::Ok(); }

}  // namespace guardians

#endif  // GUARDIANS_SRC_COMMON_STATUS_H_
