#include "src/airline/types.h"

namespace guardians {

namespace {
const ArgType kStr = ArgType::Of(TypeTag::kString);
const ArgType kInt = ArgType::Of(TypeTag::kInt);

std::vector<std::string> ReserveReplies() {
  return {"ok", "full", "wait_list", "pre_reserved", "no_such_flight"};
}

std::vector<std::string> CancelReplies() {
  return {"canceled", "not_reserved", "no_such_flight"};
}
}  // namespace

PortType FlightPortType() {
  return PortType(
      "flight_port",
      {MessageSig{"reserve", {kStr, kStr}, ReserveReplies()},
       MessageSig{"cancel", {kStr, kStr}, CancelReplies()},
       MessageSig{"list_passengers", {kStr, kStr}, {"info", "denied"}},
       // Administration (Section 2.3): archiving flights that have
       // occurred and collecting statistics about flight usage.
       MessageSig{"archive", {kStr, kStr}, {"archived", "denied"}},
       MessageSig{"flight_stats", {kStr}, {"stats_info", "denied"}}});
}

PortType RegionalPortType() {
  return PortType(
      "regional_port",
      {MessageSig{"reserve", {kInt, kStr, kStr}, ReserveReplies()},
       MessageSig{"cancel", {kInt, kStr, kStr}, CancelReplies()},
       MessageSig{"list_passengers",
                  {kInt, kStr, kStr},
                  {"info", "denied", "no_such_flight"}},
       MessageSig{"add_flight", {kInt, kInt}, {"added", "exists"}},
       MessageSig{"archive", {kInt, kStr, kStr},
                  {"archived", "denied", "no_such_flight"}},
       MessageSig{"flight_stats", {kInt, kStr},
                  {"stats_info", "denied", "no_such_flight"}},
       MessageSig{"region_stats", {}, {"stats_info"}}});
}

PortType ReservationReplyType() {
  return PortType(
      "reservation_reply",
      {MessageSig{"ok", {}, {}},
       MessageSig{"full", {}, {}},
       MessageSig{"wait_list", {}, {}},
       MessageSig{"pre_reserved", {}, {}},
       MessageSig{"no_such_flight", {}, {}},
       MessageSig{"canceled", {}, {}},
       MessageSig{"not_reserved", {}, {}},
       MessageSig{"denied", {}, {}},
       MessageSig{"info", {ArgType::Of(TypeTag::kArray)}, {}},
       MessageSig{"added", {}, {}},
       MessageSig{"exists", {}, {}},
       MessageSig{"archived", {ArgType::Of(TypeTag::kInt)}, {}},
       MessageSig{"stats_info", {ArgType::Of(TypeTag::kRecord)}, {}}});
}

PortType UserPortType() {
  return PortType(
      "user_port",
      {MessageSig{"start_transaction",
                  {kStr, ArgType::Of(TypeTag::kPortName)},
                  {"trans_started"}}});
}

PortType TransPortType() {
  return PortType("trans_port",
                  {MessageSig{"reserve", {kInt, kStr}, {}},
                   MessageSig{"cancel", {kInt, kStr}, {}},
                   MessageSig{"undo_last", {}, {}},
                   MessageSig{"undo_all", {}, {}},
                   MessageSig{"done", {}, {}}});
}

PortType TermPortType() {
  // Every message: (request ordinal, detail string).
  const std::vector<ArgType> note = {kInt, kStr};
  return PortType("term_port",
                  {MessageSig{"ok", note, {}},
                   MessageSig{"illegal", note, {}},
                   MessageSig{"full", note, {}},
                   MessageSig{"wait_list", note, {}},
                   MessageSig{"pre_reserved", note, {}},
                   MessageSig{"no_such_flight", note, {}},
                   MessageSig{"deferred", note, {}},
                   MessageSig{"undone", note, {}},
                   MessageSig{"cant_communicate", note, {}},
                   MessageSig{"trans_done", {ArgType::Of(TypeTag::kRecord)},
                              {}}});
}

PortType TransStartedReplyType() {
  return PortType(
      "trans_started_reply",
      {MessageSig{"trans_started", {ArgType::Of(TypeTag::kPortName)}, {}}});
}

}  // namespace guardians
