#include "src/airline/workload.h"

#include <cstdio>

#include "src/obs/trace.h"
#include "src/sendprims/remote_call.h"

namespace guardians {

int64_t FlightNo(int region, int index) {
  return static_cast<int64_t>(region) * 1000 + index;
}

int RegionOfFlight(int64_t flight) { return static_cast<int>(flight / 1000); }

std::string DateString(int day_index) {
  // 1979-09-01 plus day_index days, across month lengths (non-leap 1979).
  static const int kMonthDays[] = {31, 28, 31, 30, 31, 30,
                                   31, 31, 30, 31, 30, 31};
  int year = 1979;
  int month = 8;  // 0-based September
  int day = day_index;
  for (;;) {
    const int in_month = kMonthDays[month];
    if (day < in_month) {
      break;
    }
    day -= in_month;
    if (++month == 12) {
      month = 0;
      ++year;
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", year,
                static_cast<unsigned>(month + 1) % 100u,
                static_cast<unsigned>(day + 1) % 100u);
  return buf;
}

std::vector<std::vector<ClerkOp>> GenerateTransactions(
    const WorkloadParams& params) {
  Rng rng(params.seed);
  std::vector<std::vector<ClerkOp>> scripts;
  scripts.reserve(params.transactions);
  for (int t = 0; t < params.transactions; ++t) {
    const int home_region = params.regions > 0 ? t % params.regions : 0;
    std::vector<ClerkOp> ops;
    int performed = 0;
    for (int i = 0; i < params.ops_per_transaction; ++i) {
      ClerkOp op;
      const int region =
          rng.NextBool(params.local_fraction)
              ? home_region
              : static_cast<int>(rng.NextBelow(params.regions));
      op.flight = FlightNo(
          region, static_cast<int>(rng.NextBelow(params.flights_per_region)));
      op.date = DateString(static_cast<int>(rng.NextBelow(params.dates)));
      if (performed > 0 && rng.NextBool(params.undo_fraction)) {
        op.kind = ClerkOp::Kind::kUndoLast;
      } else if (rng.NextBool(params.cancel_fraction)) {
        op.kind = ClerkOp::Kind::kCancel;
      } else {
        op.kind = ClerkOp::Kind::kReserve;
      }
      ++performed;
      ops.push_back(std::move(op));
    }
    ops.push_back(ClerkOp{ClerkOp::Kind::kDone, 0, ""});
    scripts.push_back(std::move(ops));
  }
  return scripts;
}

Clerk::Clerk(Guardian& shell, std::string passenger)
    : shell_(shell), passenger_(std::move(passenger)) {
  term_ = shell_.AddPort(TermPortType(), /*capacity=*/128);
}

Clerk::~Clerk() { shell_.RetirePort(term_); }

const PortName& Clerk::term_port() const { return term_->name(); }

TransSummary Clerk::RunTransaction(const PortName& user_port,
                                   const std::vector<ClerkOp>& ops,
                                   Micros op_timeout, int max_retries) {
  TransSummary summary;

  // Each transaction is one causal chain: drop whatever trace this clerk
  // thread was in so the first send below mints a fresh trace id.
  SetCurrentTraceId(0);

  RemoteCallOptions start_options;
  start_options.timeout = op_timeout;
  start_options.max_attempts = 2;
  auto started = RemoteCall(
      shell_, user_port, "start_transaction",
      {Value::Str(passenger_), Value::OfPort(term_->name())},
      TransStartedReplyType(), start_options);
  if (!started.ok() || started->command != "trans_started") {
    return summary;
  }
  summary.started = true;
  const PortName trans = started->args[0].port_value();

  // Drain anything stale on the terminal before starting.
  while (shell_.Receive(term_, Micros(0)).ok()) {
  }

  for (const auto& op : ops) {
    int attempts_left = max_retries;
    for (;;) {
      Status sent;
      switch (op.kind) {
        case ClerkOp::Kind::kReserve:
          sent = shell_.Send(trans, "reserve",
                             {Value::Int(op.flight), Value::Str(op.date)});
          break;
        case ClerkOp::Kind::kCancel:
          sent = shell_.Send(trans, "cancel",
                             {Value::Int(op.flight), Value::Str(op.date)});
          break;
        case ClerkOp::Kind::kUndoLast:
          sent = shell_.Send(trans, "undo_last", {});
          break;
        case ClerkOp::Kind::kDone:
          sent = shell_.Send(trans, "done", {});
          break;
      }
      if (!sent.ok()) {
        ++summary.outcomes["send_error"];
        break;
      }
      auto response = shell_.Receive(term_, op_timeout);
      if (!response.ok()) {
        ++summary.outcomes["no_response"];
        break;  // move on; the transaction process may have missed the op
      }
      if (response->command == "trans_done") {
        summary.completed = true;
        auto reserves = response->args[0].field("reserves");
        if (reserves.ok()) {
          summary.reserves_standing = reserves->int_value();
        }
        return summary;
      }
      ++summary.outcomes[response->command];
      if (response->command == "cant_communicate" &&
          op.kind == ClerkOp::Kind::kReserve && attempts_left > 0) {
        // The clerk asks to retry; reserve is idempotent so this is safe.
        --attempts_left;
        ++summary.retries;
        continue;
      }
      break;
    }
  }
  return summary;
}

}  // namespace guardians
