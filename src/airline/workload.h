// Workload generation and the clerk driver for the airline experiments.
//
// The paper's clerks are humans at terminals; the substitution (DESIGN.md)
// is a scripted clerk that drives a UserGuardian through the same message
// protocol: start_transaction, then reserve/cancel/undo requests on the
// transaction port, results arriving on the clerk's terminal port.
#ifndef GUARDIANS_SRC_AIRLINE_WORKLOAD_H_
#define GUARDIANS_SRC_AIRLINE_WORKLOAD_H_

#include <map>
#include <string>
#include <vector>

#include "src/airline/types.h"
#include "src/common/rng.h"
#include "src/guardian/node_runtime.h"

namespace guardians {

// Flight numbering convention: region r owns flights r*1000 .. r*1000+999.
int64_t FlightNo(int region, int index);
int RegionOfFlight(int64_t flight);
// Day 0 = "1979-09-01"; increments are calendar-correct enough for keys.
std::string DateString(int day_index);

struct ClerkOp {
  enum class Kind { kReserve, kCancel, kUndoLast, kDone };
  Kind kind = Kind::kReserve;
  int64_t flight = 0;
  std::string date;
};

struct WorkloadParams {
  int regions = 1;
  int flights_per_region = 4;
  int dates = 8;
  int transactions = 16;
  int ops_per_transaction = 6;  // excluding the final done
  double cancel_fraction = 0.2;
  double undo_fraction = 0.05;
  // Fraction of a clerk's requests that target its *own* region (Figure 2's
  // "speed of access" claim needs a locality knob).
  double local_fraction = 1.0;
  uint64_t seed = 7;
};

// One op script per transaction, each ending with kDone. `home_region` of
// transaction t is t % params.regions.
std::vector<std::vector<ClerkOp>> GenerateTransactions(
    const WorkloadParams& params);

// Result of driving one transaction through a UserGuardian.
struct TransSummary {
  bool started = false;
  bool completed = false;        // trans_done received
  std::map<std::string, int> outcomes;  // term command -> count
  int retries = 0;               // reserve resends after cant_communicate
  int64_t reserves_standing = 0;  // from the trans_done summary
};

// A scripted reservations clerk: owns a terminal port on `shell` (the
// guardian that "manages the display"), and runs transactions against a
// user guardian.
class Clerk {
 public:
  // `shell` must outlive the Clerk. `passenger` identifies the customer.
  Clerk(Guardian& shell, std::string passenger);
  ~Clerk();

  // Drive one scripted transaction. `op_timeout` bounds each wait for a
  // terminal response; `max_retries` resends a reserve after
  // cant_communicate (sound: reserve is idempotent).
  TransSummary RunTransaction(const PortName& user_port,
                              const std::vector<ClerkOp>& ops,
                              Micros op_timeout, int max_retries = 2);

  const PortName& term_port() const;

 private:
  Guardian& shell_;
  std::string passenger_;
  Port* term_;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_AIRLINE_WORKLOAD_H_
