// UserGuardian: the user-interface guardian U_j of Figure 2 and the
// transaction process of Figure 5.
//
// "A possible organization for the U_j might be to fork a process to handle
//  a transaction consisting of many requests; this process would carry out
//  U_j's end of the coordination protocol... the 'state' of this
//  conversation is captured naturally in the state of process q"
//  (conversational continuity, Section 2.3).
//
// A clerk sends start_transaction(passenger, term_port); the guardian forks
// a dotrans process with a fresh transaction port and replies with its
// name. The process performs reserves immediately (reporting each result to
// the clerk's terminal), defers cancels to the end, supports undo, retries
// idempotent requests after timeouts, and — per Section 3.5 — *forgets*
// the transaction on a crash rather than trying to finish it.
#ifndef GUARDIANS_SRC_AIRLINE_USER_GUARDIAN_H_
#define GUARDIANS_SRC_AIRLINE_USER_GUARDIAN_H_

#include <atomic>
#include <string>
#include <vector>

#include "src/airline/trans_history.h"
#include "src/airline/types.h"
#include "src/guardian/node_runtime.h"

namespace guardians {

struct UserConfig {
  // The regional ports this U_j routes to. Flight numbers encode their
  // region: flight f belongs to regionals[f / 1000].
  std::vector<PortName> regionals;
  // The Figure 5 timeout expression e: "a delay long enough to permit the
  // request to complete under reasonable circumstances".
  Micros reserve_timeout{Millis(500)};
  // How long a transaction may sit idle before it is abandoned.
  Micros idle_timeout{Millis(10000)};
  // Retry budget for the end-of-transaction cancels (idempotent).
  int cancel_attempts = 3;

  ValueList ToArgs() const;
  static Result<UserConfig> FromArgs(const ValueList& args);
};

class UserGuardian : public Guardian {
 public:
  static constexpr char kTypeName[] = "user_guardian";

  Status Setup(const ValueList& args) override;
  void Main() override;

  uint64_t transactions_started() const { return started_.load(); }
  uint64_t transactions_completed() const { return completed_.load(); }

 private:
  // The dotrans procedure of Figure 5.
  void DoTrans(Port* trans_port, PortName term, std::string passenger);
  Result<PortName> RouteFlight(int64_t flight) const;

  UserConfig config_;
  std::atomic<uint64_t> started_{0};
  std::atomic<uint64_t> completed_{0};
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_AIRLINE_USER_GUARDIAN_H_
