// RegionalManager: the regional guardian P_j of Figure 2, sketched in
// Figure 4.
//
// "It simply looks up the guardian of the requested flight using a map, and
//  forwards the request; the response will go directly from the flight
//  guardian to the original requesting process, bypassing the regional
//  manager."
//
// The manager creates its flight guardians locally (a guardian "must have
// been created by a guardian at that node"), logs the directory so it can
// be rebuilt after a crash, and answers administrative requests itself.
#ifndef GUARDIANS_SRC_AIRLINE_REGIONAL_MANAGER_H_
#define GUARDIANS_SRC_AIRLINE_REGIONAL_MANAGER_H_

#include <map>
#include <mutex>
#include <string>

#include "src/airline/flight_guardian.h"
#include "src/airline/types.h"
#include "src/guardian/node_runtime.h"

namespace guardians {

struct RegionalConfig {
  // Defaults applied to the flight guardians this region creates.
  FlightOrganization organization = FlightOrganization::kOneAtATime;
  int flight_workers = 4;
  Micros flight_service_time{0};
  bool logging = true;
  int checkpoint_every = 256;

  ValueList ToArgs() const;
  static Result<RegionalConfig> FromArgs(const ValueList& args);
};

class RegionalManager : public Guardian {
 public:
  static constexpr char kTypeName[] = "regional_manager";
  static constexpr char kFlightTypeName[] = "flight";

  Status Setup(const ValueList& args) override;
  Status Recover(const ValueList& args) override;
  void Main() override;

  size_t flight_count() const;

 private:
  Status InitCommon(const ValueList& args, bool recovering);
  void HandleAddFlight(const Received& request);
  void ForwardToFlight(const Received& request);

  RegionalConfig config_;
  mutable std::mutex mu_;
  std::map<int64_t, PortName> directory_;  // the `map` of Figure 4
  Wal* dir_log_ = nullptr;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_AIRLINE_REGIONAL_MANAGER_H_
