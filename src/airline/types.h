// Port types of the Airline Reservation System (Sections 2.3 and 3.5,
// Figures 2, 4 and 5). These are the "guardian headers" of the example:
// every send in the airline is checked against them.
//
// Dates are strings ("1979-09-01"), flight numbers are ints, passengers and
// principals are strings — the paper's flight_no / passenger_id / date
// types mapped onto the built-in value universe.
#ifndef GUARDIANS_SRC_AIRLINE_TYPES_H_
#define GUARDIANS_SRC_AIRLINE_TYPES_H_

#include "src/value/port_type.h"

namespace guardians {

// Flight guardian port: reserve / cancel / list_passengers for one flight.
//   reserve (passenger, date)   replies (ok, full, wait_list, pre_reserved)
//   cancel  (passenger, date)   replies (canceled, not_reserved)
//   list_passengers (date, principal)
//                               replies (info(passenger_list), denied)
PortType FlightPortType();

// Regional guardian port (the P_j of Figure 2): the flight guardian's
// requests plus a flight_no argument, plus administration.
//   reserve (flight_no, passenger, date)  replies (..., no_such_flight)
//   cancel  (flight_no, passenger, date)  replies (..., no_such_flight)
//   list_passengers (flight_no, date, principal)
//   add_flight (flight_no, capacity)      replies (added, exists)
//   region_stats ()                       replies (stats_info)
PortType RegionalPortType();

// Replies to reservation-style requests flow to ports of this type (the
// replyport of Figure 5).
PortType ReservationReplyType();

// User interface guardian port (the U_j of Figure 2):
//   start_transaction (passenger, term_port) replies (trans_started)
PortType UserPortType();

// Transaction port (the transport of Figure 5): the clerk's requests for
// one transaction.
//   reserve (flight_no, date)
//   cancel  (flight_no, date)
//   undo_last ()
//   undo_all ()
//   done ()
PortType TransPortType();

// Terminal port (the termport of Figure 5): what the transaction process
// tells the clerk's display. All commands carry the request ordinal they
// answer plus detail.
//   ok / illegal / full / wait_list / pre_reserved / no_such_flight /
//   deferred / undone / cant_communicate / trans_done
PortType TermPortType();

// Reply type for start_transaction.
PortType TransStartedReplyType();

}  // namespace guardians

#endif  // GUARDIANS_SRC_AIRLINE_TYPES_H_
