#include "src/airline/flight_db.h"

#include <algorithm>

namespace guardians {

const char* OutcomeName(ReserveOutcome outcome) {
  switch (outcome) {
    case ReserveOutcome::kOk:
      return "ok";
    case ReserveOutcome::kPreReserved:
      return "pre_reserved";
    case ReserveOutcome::kFull:
      return "full";
    case ReserveOutcome::kWaitList:
      return "wait_list";
  }
  return "?";
}

const char* OutcomeName(CancelOutcome outcome) {
  switch (outcome) {
    case CancelOutcome::kCanceled:
      return "canceled";
    case CancelOutcome::kNotReserved:
      return "not_reserved";
  }
  return "?";
}

FlightDb::FlightDb(int64_t flight_no, int capacity, int waitlist_limit)
    : flight_no_(flight_no), capacity_(capacity),
      waitlist_limit_(waitlist_limit) {}

ReserveOutcome FlightDb::Reserve(const std::string& passenger,
                                 const std::string& date) {
  ++reserve_ops_;
  DateInventory& inv = dates_[date];
  if (inv.reserved.count(passenger) > 0) {
    ++idempotent_noops_;
    return ReserveOutcome::kPreReserved;
  }
  auto waiting = std::find(inv.waitlist.begin(), inv.waitlist.end(),
                           passenger);
  if (waiting != inv.waitlist.end()) {
    ++idempotent_noops_;
    return ReserveOutcome::kWaitList;
  }
  if (static_cast<int>(inv.reserved.size()) < capacity_) {
    inv.reserved.insert(passenger);
    return ReserveOutcome::kOk;
  }
  if (static_cast<int>(inv.waitlist.size()) < waitlist_limit_) {
    inv.waitlist.push_back(passenger);
    return ReserveOutcome::kWaitList;
  }
  return ReserveOutcome::kFull;
}

CancelOutcome FlightDb::Cancel(const std::string& passenger,
                               const std::string& date) {
  ++cancel_ops_;
  auto it = dates_.find(date);
  if (it == dates_.end()) {
    ++idempotent_noops_;
    return CancelOutcome::kNotReserved;
  }
  DateInventory& inv = it->second;
  auto waiting = std::find(inv.waitlist.begin(), inv.waitlist.end(),
                           passenger);
  if (waiting != inv.waitlist.end()) {
    inv.waitlist.erase(waiting);
    return CancelOutcome::kCanceled;
  }
  if (inv.reserved.erase(passenger) == 0) {
    ++idempotent_noops_;
    return CancelOutcome::kNotReserved;
  }
  // Promote the head of the waiting list into the freed seat.
  if (!inv.waitlist.empty()) {
    inv.reserved.insert(inv.waitlist.front());
    inv.waitlist.erase(inv.waitlist.begin());
  }
  return CancelOutcome::kCanceled;
}

bool FlightDb::IsReserved(const std::string& passenger,
                          const std::string& date) const {
  auto it = dates_.find(date);
  return it != dates_.end() && it->second.reserved.count(passenger) > 0;
}

bool FlightDb::IsWaitListed(const std::string& passenger,
                            const std::string& date) const {
  auto it = dates_.find(date);
  if (it == dates_.end()) {
    return false;
  }
  const auto& wl = it->second.waitlist;
  return std::find(wl.begin(), wl.end(), passenger) != wl.end();
}

std::vector<std::string> FlightDb::Passengers(const std::string& date) const {
  auto it = dates_.find(date);
  if (it == dates_.end()) {
    return {};
  }
  return std::vector<std::string>(it->second.reserved.begin(),
                                  it->second.reserved.end());
}

int FlightDb::SeatsTaken(const std::string& date) const {
  auto it = dates_.find(date);
  return it == dates_.end() ? 0
                            : static_cast<int>(it->second.reserved.size());
}

int FlightDb::Archive(const std::string& before_date) {
  int removed = 0;
  for (auto it = dates_.begin(); it != dates_.end();) {
    if (it->first < before_date) {
      it = dates_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

FlightDb::Stats FlightDb::GetStats() const {
  Stats stats;
  stats.dates = static_cast<int>(dates_.size());
  for (const auto& [date, inv] : dates_) {
    stats.reservations += static_cast<int>(inv.reserved.size());
    stats.wait_listed += static_cast<int>(inv.waitlist.size());
  }
  stats.reserve_ops = reserve_ops_;
  stats.cancel_ops = cancel_ops_;
  stats.idempotent_noops = idempotent_noops_;
  return stats;
}

bool FlightDb::CheckInvariants() const {
  for (const auto& [date, inv] : dates_) {
    if (static_cast<int>(inv.reserved.size()) > capacity_) {
      return false;
    }
    if (!inv.waitlist.empty() &&
        static_cast<int>(inv.reserved.size()) < capacity_) {
      return false;  // nobody waits while seats are free
    }
    if (static_cast<int>(inv.waitlist.size()) > waitlist_limit_) {
      return false;
    }
    for (const auto& passenger : inv.waitlist) {
      if (inv.reserved.count(passenger) > 0) {
        return false;  // holds a seat and waits
      }
    }
    std::set<std::string> unique_wait(inv.waitlist.begin(),
                                      inv.waitlist.end());
    if (unique_wait.size() != inv.waitlist.size()) {
      return false;  // duplicate wait-list entries
    }
  }
  return true;
}

void FlightDb::Apply(const std::string& op, const std::string& passenger,
                     const std::string& date) {
  if (op == "reserve") {
    Reserve(passenger, date);
  } else if (op == "cancel") {
    Cancel(passenger, date);
  } else if (op == "archive") {
    // passenger is unused; date is the archive threshold.
    Archive(date);
  }
}

Value FlightDb::ToSnapshot() const {
  std::vector<Value> date_values;
  for (const auto& [date, inv] : dates_) {
    std::vector<Value> reserved;
    for (const auto& passenger : inv.reserved) {
      reserved.push_back(Value::Str(passenger));
    }
    std::vector<Value> waitlist;
    for (const auto& passenger : inv.waitlist) {
      waitlist.push_back(Value::Str(passenger));
    }
    date_values.push_back(
        Value::Record({{"date", Value::Str(date)},
                       {"reserved", Value::Array(std::move(reserved))},
                       {"waitlist", Value::Array(std::move(waitlist))}}));
  }
  return Value::Record(
      {{"flight", Value::Int(flight_no_)},
       {"capacity", Value::Int(capacity_)},
       {"waitlist_limit", Value::Int(waitlist_limit_)},
       {"dates", Value::Array(std::move(date_values))}});
}

Result<FlightDb> FlightDb::FromSnapshot(const Value& snapshot) {
  GUARDIANS_ASSIGN_OR_RETURN(Value flight, snapshot.field("flight"));
  GUARDIANS_ASSIGN_OR_RETURN(Value capacity, snapshot.field("capacity"));
  GUARDIANS_ASSIGN_OR_RETURN(Value limit, snapshot.field("waitlist_limit"));
  GUARDIANS_ASSIGN_OR_RETURN(Value dates, snapshot.field("dates"));
  FlightDb db(flight.int_value(), static_cast<int>(capacity.int_value()),
              static_cast<int>(limit.int_value()));
  for (const auto& entry : dates.items()) {
    GUARDIANS_ASSIGN_OR_RETURN(Value date, entry.field("date"));
    GUARDIANS_ASSIGN_OR_RETURN(Value reserved, entry.field("reserved"));
    GUARDIANS_ASSIGN_OR_RETURN(Value waitlist, entry.field("waitlist"));
    DateInventory& inv = db.dates_[date.string_value()];
    for (const auto& passenger : reserved.items()) {
      inv.reserved.insert(passenger.string_value());
    }
    for (const auto& passenger : waitlist.items()) {
      inv.waitlist.push_back(passenger.string_value());
    }
  }
  return db;
}

bool FlightDb::Equals(const FlightDb& other) const {
  if (flight_no_ != other.flight_no_ || capacity_ != other.capacity_) {
    return false;
  }
  if (dates_.size() != other.dates_.size()) {
    return false;
  }
  for (const auto& [date, inv] : dates_) {
    auto it = other.dates_.find(date);
    if (it == other.dates_.end() || inv.reserved != it->second.reserved ||
        inv.waitlist != it->second.waitlist) {
      return false;
    }
  }
  return true;
}

}  // namespace guardians
