// TransHistory: the `transhistory` data abstraction of Figure 5 — the
// record of one clerk transaction.
//
// "The process keeps a history of the transaction; if the clerk wishes the
//  transaction can be partially or totally undone. Cancellations are saved
//  until the end of the transaction to permit the customer a late change of
//  mind. An unwanted reservation can be undone by a cancel, but the reverse
//  is not true since the seat may have been taken in the meantime."
//
// So: reserves are performed immediately and recorded; cancels are recorded
// as pending; undoing a pending cancel simply drops it; undoing a performed
// reserve schedules a compensating cancel for the end of the transaction.
#ifndef GUARDIANS_SRC_AIRLINE_TRANS_HISTORY_H_
#define GUARDIANS_SRC_AIRLINE_TRANS_HISTORY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace guardians {

class TransHistory {
 public:
  enum class Action { kReserve, kCancel };

  struct Entry {
    Action action;
    int64_t flight;
    std::string date;
    bool undone = false;
  };

  // A reserve that was performed (the flight guardian said ok/wait_list).
  void AddReserve(int64_t flight, const std::string& date) {
    entries_.push_back(Entry{Action::kReserve, flight, date, false});
  }

  // A cancel, deferred to the end of the transaction.
  void AddCancel(int64_t flight, const std::string& date) {
    entries_.push_back(Entry{Action::kCancel, flight, date, false});
  }

  // Undo the most recent not-yet-undone entry. Returns it, or nullopt when
  // there is nothing left to undo.
  std::optional<Entry> UndoLast() {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (!it->undone) {
        it->undone = true;
        return *it;
      }
    }
    return std::nullopt;
  }

  // Undo everything; returns how many entries were newly undone.
  int UndoAll() {
    int count = 0;
    for (auto& entry : entries_) {
      if (!entry.undone) {
        entry.undone = true;
        ++count;
      }
    }
    return count;
  }

  // The cancels to perform when the clerk says "done": every pending (not
  // undone) cancel, plus a compensating cancel for every undone reserve.
  std::vector<Entry> CancelsToPerform() const {
    std::vector<Entry> cancels;
    for (const auto& entry : entries_) {
      if ((entry.action == Action::kCancel && !entry.undone) ||
          (entry.action == Action::kReserve && entry.undone)) {
        cancels.push_back(entry);
      }
    }
    return cancels;
  }

  // Reserves that stand (performed, not undone).
  int ActiveReserves() const {
    int count = 0;
    for (const auto& entry : entries_) {
      if (entry.action == Action::kReserve && !entry.undone) {
        ++count;
      }
    }
    return count;
  }

  const std::vector<Entry>& entries() const { return entries_; }
  bool Empty() const { return entries_.empty(); }

 private:
  std::vector<Entry> entries_;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_AIRLINE_TRANS_HISTORY_H_
