#include "src/airline/user_guardian.h"

#include "src/common/log.h"
#include "src/sendprims/remote_call.h"

namespace guardians {

ValueList UserConfig::ToArgs() const {
  std::vector<Value> ports;
  ports.reserve(regionals.size());
  for (const auto& port : regionals) {
    ports.push_back(Value::OfPort(port));
  }
  return {Value::Array(std::move(ports)),
          Value::Int(reserve_timeout.count()),
          Value::Int(idle_timeout.count()),
          Value::Int(cancel_attempts)};
}

Result<UserConfig> UserConfig::FromArgs(const ValueList& args) {
  if (args.size() != 4 || !args[0].is(TypeTag::kArray) ||
      !args[1].is(TypeTag::kInt) || !args[2].is(TypeTag::kInt) ||
      !args[3].is(TypeTag::kInt)) {
    return Status(Code::kInvalidArgument,
                  "user guardian takes 4 creation arguments");
  }
  UserConfig config;
  for (const auto& port : args[0].items()) {
    GUARDIANS_ASSIGN_OR_RETURN(PortName pn, port.AsPort());
    config.regionals.push_back(pn);
  }
  config.reserve_timeout = Micros(args[1].int_value());
  config.idle_timeout = Micros(args[2].int_value());
  config.cancel_attempts = static_cast<int>(args[3].int_value());
  return config;
}

Status UserGuardian::Setup(const ValueList& args) {
  GUARDIANS_ASSIGN_OR_RETURN(config_, UserConfig::FromArgs(args));
  if (config_.regionals.empty()) {
    return Status(Code::kInvalidArgument,
                  "user guardian needs at least one regional port");
  }
  AddPort(UserPortType(), /*capacity=*/256, /*provided=*/true);
  return OkStatus();
}

void UserGuardian::Main() {
  Port* requests = port(0);
  uint64_t trans_seq = 0;
  for (;;) {
    auto received = Receive(requests, Micros::max());
    if (!received.ok()) {
      return;
    }
    if (received->command != "start_transaction") {
      continue;  // failure(...) to the user port: nothing to do
    }
    std::string passenger = received->args[0].string_value();
    PortName term = received->args[1].port_value();

    // One fresh transaction port per conversation.
    Port* trans_port = AddPort(TransPortType(), /*capacity=*/64);
    started_.fetch_add(1);
    Fork("dotrans-" + std::to_string(trans_seq++),
         [this, trans_port, term, passenger = std::move(passenger)] {
           DoTrans(trans_port, term, passenger);
         });
    if (trans_seq % 32 == 0) {
      ReapProcesses();
    }
    if (!received->reply_to.IsNull()) {
      Status st = Send(received->reply_to, "trans_started",
                       {Value::OfPort(trans_port->name())});
      (void)st;
    }
  }
}

Result<PortName> UserGuardian::RouteFlight(int64_t flight) const {
  const int64_t region = flight / 1000;
  if (region < 0 || region >= static_cast<int64_t>(config_.regionals.size())) {
    return Status(Code::kNotFound, "no region for flight");
  }
  return config_.regionals[region];
}

void UserGuardian::DoTrans(Port* trans_port, PortName term,
                           std::string passenger) {
  TransHistory history;
  int64_t ordinal = 0;

  auto tell_clerk = [&](const char* command, const std::string& detail) {
    if (term.IsNull()) {
      return;
    }
    Status st = Send(term, command,
                     {Value::Int(ordinal), Value::Str(detail)});
    (void)st;
  };

  auto perform_cancel = [&](const TransHistory::Entry& entry) -> bool {
    auto regional = RouteFlight(entry.flight);
    if (!regional.ok()) {
      return false;
    }
    RemoteCallOptions options;
    options.timeout = config_.reserve_timeout;
    options.max_attempts = config_.cancel_attempts;  // idempotent
    auto reply = RemoteCall(
        *this, *regional, "cancel",
        {Value::Int(entry.flight), Value::Str(passenger),
         Value::Str(entry.date)},
        ReservationReplyType(), options);
    return reply.ok() && (reply->command == "canceled" ||
                          reply->command == "not_reserved");
  };

  for (;;) {
    auto received = Receive(trans_port, config_.idle_timeout);
    if (!received.ok()) {
      // Node down or the clerk went silent. "We have chosen to forget
      // transactions rather than to try and finish them after a crash" —
      // and likewise for abandoned conversations.
      RetirePort(trans_port);
      return;
    }
    ++ordinal;

    if (received->command == "reserve") {
      const int64_t flight = received->args[0].int_value();
      const std::string date = received->args[1].string_value();
      auto regional = RouteFlight(flight);
      if (!regional.ok()) {
        tell_clerk("illegal", "no region serves flight " +
                                  std::to_string(flight));
        continue;
      }
      RemoteCallOptions options;
      options.timeout = config_.reserve_timeout;
      options.max_attempts = 1;  // the *clerk* decides whether to retry
      auto reply = RemoteCall(*this, *regional, "reserve",
                              {Value::Int(flight), Value::Str(passenger),
                               Value::Str(date)},
                              ReservationReplyType(), options);
      if (!reply.ok()) {
        // Timeout: nothing is known about the true state of affairs; the
        // request may never be done, or it might already be done. The
        // information is conveyed to the clerk, who may retry (reserve is
        // idempotent).
        tell_clerk("cant_communicate", "can't communicate");
        continue;
      }
      if (reply->command == "ok" || reply->command == "wait_list" ||
          reply->command == "pre_reserved") {
        if (reply->command != "pre_reserved") {
          history.AddReserve(flight, date);
        }
        tell_clerk(reply->command.c_str(), date);
      } else if (reply->command == kFailureCommand) {
        tell_clerk("cant_communicate",
                   reply->args.empty() ? "failure"
                                       : reply->args[0].string_value());
      } else {  // full, no_such_flight
        tell_clerk(reply->command.c_str(), date);
      }

    } else if (received->command == "cancel") {
      const int64_t flight = received->args[0].int_value();
      const std::string date = received->args[1].string_value();
      // "Cancel requests are not done immediately, however, but are
      //  processed at the time the transaction finishes."
      history.AddCancel(flight, date);
      tell_clerk("deferred", date);

    } else if (received->command == "undo_last") {
      auto undone = history.UndoLast();
      if (undone.has_value()) {
        tell_clerk("undone", undone->action == TransHistory::Action::kReserve
                                 ? "reserve"
                                 : "cancel");
      } else {
        tell_clerk("illegal", "nothing to undo");
      }

    } else if (received->command == "undo_all") {
      const int count = history.UndoAll();
      tell_clerk("undone", std::to_string(count));

    } else if (received->command == "done") {
      // Perform the saved cancels now (idempotent, with retries).
      int performed = 0;
      int failed = 0;
      for (const auto& entry : history.CancelsToPerform()) {
        if (perform_cancel(entry)) {
          ++performed;
        } else {
          ++failed;
        }
      }
      if (!term.IsNull()) {
        Value summary = Value::Record(
            {{"reserves", Value::Int(history.ActiveReserves())},
             {"cancels", Value::Int(performed)},
             {"cancel_failures", Value::Int(failed)},
             {"requests", Value::Int(ordinal)}});
        Status st = Send(term, "trans_done", {summary});
        (void)st;
      }
      completed_.fetch_add(1);
      RetirePort(trans_port);
      return;
    }
  }
}

}  // namespace guardians
