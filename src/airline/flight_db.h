// FlightDb: the guarded resource of one flight guardian — per-date seat
// inventory with a waiting list. Pure data structure (no threads, no I/O)
// so it can be tested exhaustively and replayed from a log.
//
// Reserve and cancel are *idempotent*, which Section 3.5 leans on: "a retry
// may result in a reserve or cancel request being made more than once, no
// problems result since they are idempotent (many performances are
// equivalent to one)".
#ifndef GUARDIANS_SRC_AIRLINE_FLIGHT_DB_H_
#define GUARDIANS_SRC_AIRLINE_FLIGHT_DB_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/value/value.h"

namespace guardians {

enum class ReserveOutcome { kOk, kPreReserved, kFull, kWaitList };
enum class CancelOutcome { kCanceled, kNotReserved };

const char* OutcomeName(ReserveOutcome outcome);
const char* OutcomeName(CancelOutcome outcome);

class FlightDb {
 public:
  // `capacity` seats per date; `waitlist_limit` passengers may queue beyond
  // that (0 disables wait-listing: a full flight refuses outright).
  explicit FlightDb(int64_t flight_no, int capacity, int waitlist_limit = 4);

  int64_t flight_no() const { return flight_no_; }
  int capacity() const { return capacity_; }

  // Idempotent: reserving an already-held seat is kPreReserved; reserving
  // while wait-listed re-reports kWaitList.
  ReserveOutcome Reserve(const std::string& passenger,
                         const std::string& date);
  // Idempotent: cancelling a non-reservation is kNotReserved. A freed seat
  // promotes the head of the waiting list.
  CancelOutcome Cancel(const std::string& passenger, const std::string& date);

  bool IsReserved(const std::string& passenger,
                  const std::string& date) const;
  bool IsWaitListed(const std::string& passenger,
                    const std::string& date) const;
  std::vector<std::string> Passengers(const std::string& date) const;
  int SeatsTaken(const std::string& date) const;

  // Administration (Section 2.3: "deleting or archiving information about
  // flights that have occurred, collecting statistics about flight usage").
  // Removes every date strictly before `before_date`; returns dates freed.
  int Archive(const std::string& before_date);
  struct Stats {
    int dates = 0;
    int reservations = 0;
    int wait_listed = 0;
    uint64_t reserve_ops = 0;
    uint64_t cancel_ops = 0;
    // Operations that changed nothing because an identical performance had
    // already happened (pre_reserved, repeated wait_list, not_reserved):
    // exactly the "many performances are equivalent to one" absorptions the
    // Section 3.5 retry story depends on.
    uint64_t idempotent_noops = 0;
  };
  Stats GetStats() const;

  // Every seat-holder set is within capacity; wait lists only exist when
  // full; no passenger both holds a seat and waits. Used by property tests
  // and the consistency checks of the FIG45 experiment.
  bool CheckInvariants() const;

  // --- Log replay / snapshot (Section 2.2 permanence) -----------------------
  // Apply one logged operation without recording new log state.
  void Apply(const std::string& op, const std::string& passenger,
             const std::string& date);
  Value ToSnapshot() const;
  static Result<FlightDb> FromSnapshot(const Value& snapshot);

  bool Equals(const FlightDb& other) const;

 private:
  struct DateInventory {
    std::set<std::string> reserved;
    std::vector<std::string> waitlist;
  };

  int64_t flight_no_;
  int capacity_;
  int waitlist_limit_;
  std::map<std::string, DateInventory> dates_;
  uint64_t reserve_ops_ = 0;
  uint64_t cancel_ops_ = 0;
  uint64_t idempotent_noops_ = 0;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_AIRLINE_FLIGHT_DB_H_
