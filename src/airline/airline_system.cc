#include "src/airline/airline_system.h"

#include "src/airline/workload.h"
#include "src/sendprims/remote_call.h"

namespace guardians {

Result<AirlineTopology> BuildAirline(System& system,
                                     const AirlineParams& params) {
  AirlineTopology topology;

  RegionalConfig regional_config;
  regional_config.organization = params.organization;
  regional_config.flight_workers = params.flight_workers;
  regional_config.flight_service_time = params.flight_service_time;
  regional_config.logging = params.logging;
  regional_config.checkpoint_every = params.checkpoint_every;

  for (int r = 0; r < params.regions; ++r) {
    NodeRuntime& node = system.AddNode("region-" + std::to_string(r));
    node.RegisterGuardianType(RegionalManager::kTypeName,
                              MakeFactory<RegionalManager>());
    node.RegisterGuardianType(RegionalManager::kFlightTypeName,
                              MakeFactory<FlightGuardian>());
    node.RegisterGuardianType(UserGuardian::kTypeName,
                              MakeFactory<UserGuardian>());
    node.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());

    GUARDIANS_ASSIGN_OR_RETURN(
        RegionalManager * regional,
        node.Create<RegionalManager>(RegionalManager::kTypeName,
                                     "P" + std::to_string(r),
                                     regional_config.ToArgs(),
                                     /*persistent=*/params.logging));
    topology.region_nodes.push_back(node.id());
    topology.regionals.push_back(regional);
    topology.regional_ports.push_back(regional->ProvidedPorts()[0]);
  }

  // Every U_j guards the entire airline data base: it routes to all P_j.
  UserConfig user_config;
  user_config.regionals = topology.regional_ports;
  user_config.reserve_timeout = params.reserve_timeout;
  user_config.idle_timeout = params.idle_timeout;
  user_config.cancel_attempts = params.cancel_attempts;
  for (int r = 0; r < params.regions; ++r) {
    NodeRuntime& node = system.node(topology.region_nodes[r]);
    GUARDIANS_ASSIGN_OR_RETURN(
        UserGuardian * user,
        node.Create<UserGuardian>(UserGuardian::kTypeName,
                                  "U" + std::to_string(r),
                                  user_config.ToArgs(),
                                  /*persistent=*/false));
    topology.users.push_back(user);
    topology.user_ports.push_back(user->ProvidedPorts()[0]);
  }

  // Register the flights through the message protocol, as an airline
  // administrator's program would.
  NodeRuntime& admin_node = system.node(topology.region_nodes[0]);
  GUARDIANS_ASSIGN_OR_RETURN(
      Guardian * admin,
      admin_node.CreateGuardian("shell", "airline-admin", {}, false));
  for (int r = 0; r < params.regions; ++r) {
    for (int f = 0; f < params.flights_per_region; ++f) {
      RemoteCallOptions options;
      options.timeout = Millis(2000);
      options.max_attempts = 3;  // add_flight is idempotent ("exists")
      GUARDIANS_ASSIGN_OR_RETURN(
          RemoteReply reply,
          RemoteCall(*admin, topology.regional_ports[r], "add_flight",
                     {Value::Int(FlightNo(r, f)), Value::Int(params.capacity)},
                     ReservationReplyType(), options));
      if (reply.command != "added" && reply.command != "exists") {
        return Status(Code::kInternal,
                      "add_flight failed: " + reply.command);
      }
    }
  }
  return topology;
}

}  // namespace guardians
