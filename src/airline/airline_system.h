// Assembly of the Figure 2 topology: one node per geographical region, each
// hosting its regional guardian P_j and user-interface guardian U_j; flight
// guardians created locally by each P_j.
//
// "each node belonging to the airline has one guardian, P_j, for the region
//  in which it resides, and one guardian, U_j, to provide an interface to
//  the airline data base for that node's users."
#ifndef GUARDIANS_SRC_AIRLINE_AIRLINE_SYSTEM_H_
#define GUARDIANS_SRC_AIRLINE_AIRLINE_SYSTEM_H_

#include <vector>

#include "src/airline/flight_guardian.h"
#include "src/airline/regional_manager.h"
#include "src/airline/user_guardian.h"
#include "src/guardian/system.h"

namespace guardians {

struct AirlineParams {
  int regions = 2;
  int flights_per_region = 4;
  int capacity = 100;
  FlightOrganization organization = FlightOrganization::kOneAtATime;
  int flight_workers = 4;
  Micros flight_service_time{0};
  bool logging = true;
  int checkpoint_every = 256;
  // User guardian behaviour (Figure 5 timeouts).
  Micros reserve_timeout{Millis(500)};
  Micros idle_timeout{Millis(10000)};
  int cancel_attempts = 3;
};

struct AirlineTopology {
  std::vector<NodeId> region_nodes;       // node of region r
  std::vector<PortName> regional_ports;   // P_r request port
  std::vector<PortName> user_ports;       // U_r start_transaction port
  std::vector<RegionalManager*> regionals;
  std::vector<UserGuardian*> users;
};

// Builds the whole airline inside `system`: adds the region nodes, creates
// the guardians, and registers every flight (region r owns flights
// FlightNo(r, 0..flights_per_region-1)). Flights are added through the
// message protocol, exactly as an administrator's program would.
Result<AirlineTopology> BuildAirline(System& system,
                                     const AirlineParams& params);

}  // namespace guardians

#endif  // GUARDIANS_SRC_AIRLINE_AIRLINE_SYSTEM_H_
