// FlightGuardian: the guardian for a single flight (Sections 2.3 and 3.5).
//
// "A flight guardian might be organized in several different ways" —
// Figure 1 gives three, all implemented here and selectable at creation:
//
//  1. kOneAtATime (Fig. 1a): "a single process handles requests one at a
//     time."
//  2. kSerializer (Fig. 1b): "a single process synchronizes requests; it
//     hands them off to other processes that perform the actual work when
//     the flight data of interest are available" — requests for different
//     dates proceed in parallel.
//  3. kMonitorFork (Fig. 1c): "a single process receives a request and
//     immediately creates a process to handle it. The forked processes
//     synchronize... using shared data, e.g., a monitor providing
//     operations start_request(date) and end_request(date)."
//
// "Organizations 2 and 3 can provide concurrent manipulation of the data
//  base, while organization 1 cannot." — the claim the FIG1 experiment
//  measures.
//
// The guardian performs reserve and cancel as atomic operations and logs
// them (Section 2.2); created persistent, it recovers its FlightDb from the
// log after a node crash.
#ifndef GUARDIANS_SRC_AIRLINE_FLIGHT_GUARDIAN_H_
#define GUARDIANS_SRC_AIRLINE_FLIGHT_GUARDIAN_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>

#include "src/airline/flight_db.h"
#include "src/airline/types.h"
#include "src/guardian/acl.h"
#include "src/guardian/node_runtime.h"
#include "src/runtime/monitor.h"
#include "src/runtime/serializer.h"

namespace guardians {

enum class FlightOrganization : int {
  kOneAtATime = 0,
  kSerializer = 1,
  kMonitorFork = 2,
};

struct FlightConfig {
  int64_t flight_no = 0;
  int capacity = 100;
  FlightOrganization organization = FlightOrganization::kOneAtATime;
  int workers = 4;          // q_i processes for kSerializer
  Micros service_time{0};   // simulated per-request work on the date's data
  bool logging = true;      // Section 2.2 permanence on/off (for ROBUST)
  int checkpoint_every = 256;

  ValueList ToArgs() const;
  static Result<FlightConfig> FromArgs(const ValueList& args);
};

class FlightGuardian : public Guardian {
 public:
  Status Setup(const ValueList& args) override;
  Status Recover(const ValueList& args) override;
  void Main() override;

  // Test/experiment access: a consistent copy of the guarded resource.
  FlightDb SnapshotDb() const;
  uint64_t handled() const { return handled_.load(); }

  // The flight guardian's ACL: list_passengers is for managers only.
  AccessControlList& acl() { return acl_; }

 private:
  Status InitCommon(const ValueList& args, bool recovering);
  void ServeLoop();
  void HandleRequest(Received request);
  void DoReserve(const Received& request);
  void DoCancel(const Received& request);
  void DoListPassengers(const Received& request);
  void DoArchive(const Received& request);
  void DoStats(const Received& request);
  void LogOp(const std::string& op, const std::string& passenger,
             const std::string& date);
  void MaybeCheckpoint();
  void ReplySimple(const PortName& to, const char* command);

  FlightConfig config_;
  mutable std::mutex db_mu_;
  std::optional<FlightDb> db_;
  AccessControlList acl_;
  Wal* log_ = nullptr;
  std::unique_ptr<Serializer> serializer_;
  KeyedMonitor<std::string> date_monitor_;
  std::atomic<uint64_t> handled_{0};
  std::atomic<uint64_t> forked_{0};
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_AIRLINE_FLIGHT_GUARDIAN_H_
