#include "src/airline/regional_manager.h"

#include "src/common/log.h"
#include "src/wire/value_codec.h"

namespace guardians {

ValueList RegionalConfig::ToArgs() const {
  return {Value::Int(static_cast<int>(organization)),
          Value::Int(flight_workers),
          Value::Int(flight_service_time.count()),
          Value::Bool(logging),
          Value::Int(checkpoint_every)};
}

Result<RegionalConfig> RegionalConfig::FromArgs(const ValueList& args) {
  if (args.size() != 5 || !args[0].is(TypeTag::kInt) ||
      !args[1].is(TypeTag::kInt) || !args[2].is(TypeTag::kInt) ||
      !args[3].is(TypeTag::kBool) || !args[4].is(TypeTag::kInt)) {
    return Status(Code::kInvalidArgument,
                  "regional manager takes 5 creation arguments");
  }
  RegionalConfig config;
  const int64_t org = args[0].int_value();
  if (org < 0 || org > 2) {
    return Status(Code::kInvalidArgument, "bad flight organization");
  }
  config.organization = static_cast<FlightOrganization>(org);
  config.flight_workers = static_cast<int>(args[1].int_value());
  config.flight_service_time = Micros(args[2].int_value());
  config.logging = args[3].bool_value();
  config.checkpoint_every = static_cast<int>(args[4].int_value());
  return config;
}

Status RegionalManager::Setup(const ValueList& args) {
  return InitCommon(args, /*recovering=*/false);
}

Status RegionalManager::Recover(const ValueList& args) {
  return InitCommon(args, /*recovering=*/true);
}

Status RegionalManager::InitCommon(const ValueList& args, bool recovering) {
  GUARDIANS_ASSIGN_OR_RETURN(config_, RegionalConfig::FromArgs(args));
  // The flight-guardian program must be runnable at this node for the
  // region to create flights.
  if (!runtime().KnowsGuardianType(kFlightTypeName)) {
    runtime().RegisterGuardianType(kFlightTypeName,
                                   MakeFactory<FlightGuardian>());
  }
  if (config_.logging) {
    dir_log_ = OpenLog("directory");
    if (recovering) {
      // Rebuild the flight map. The flight guardians themselves are
      // re-created by the node (they were created persistent), with the
      // same guardian ids — so the logged port names are still theirs.
      GUARDIANS_ASSIGN_OR_RETURN(auto records, dir_log_->RecoverValues());
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& record : records) {
        GUARDIANS_ASSIGN_OR_RETURN(Value flight, record.field("flight"));
        GUARDIANS_ASSIGN_OR_RETURN(Value port, record.field("port"));
        directory_[flight.int_value()] = port.port_value();
      }
    }
  }
  AddPort(RegionalPortType(), /*capacity=*/1024, /*provided=*/true);
  return OkStatus();
}

void RegionalManager::Main() {
  Port* requests = port(0);
  for (;;) {
    auto received = Receive(requests, Micros::max());
    if (!received.ok()) {
      return;
    }
    if (received->command == "add_flight") {
      HandleAddFlight(*received);
    } else if (received->command == "reserve" ||
               received->command == "cancel" ||
               received->command == "list_passengers" ||
               received->command == "archive" ||
               received->command == "flight_stats") {
      ForwardToFlight(*received);
    } else if (received->command == "region_stats") {
      if (!received->reply_to.IsNull()) {
        Value stats = Value::Record(
            {{"flights", Value::Int(static_cast<int64_t>(flight_count()))},
             {"node", Value::Int(node())}});
        Status st = Send(received->reply_to, "stats_info", {stats});
        (void)st;
      }
    }
  }
}

void RegionalManager::HandleAddFlight(const Received& request) {
  const int64_t flight_no = request.args[0].int_value();
  const int capacity = static_cast<int>(request.args[1].int_value());
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (directory_.count(flight_no) > 0) {
      if (!request.reply_to.IsNull()) {
        Status st = Send(request.reply_to, "exists", {});
        (void)st;
      }
      return;
    }
  }
  FlightConfig flight_config;
  flight_config.flight_no = flight_no;
  flight_config.capacity = capacity;
  flight_config.organization = config_.organization;
  flight_config.workers = config_.flight_workers;
  flight_config.service_time = config_.flight_service_time;
  flight_config.logging = config_.logging;
  flight_config.checkpoint_every = config_.checkpoint_every;

  auto created = runtime().Create<FlightGuardian>(
      kFlightTypeName, name() + "/flight-" + std::to_string(flight_no),
      flight_config.ToArgs(), /*persistent=*/IsPersistent());
  if (!created.ok()) {
    GLOG_ERROR << "region " << name() << " could not create flight "
               << flight_no << ": " << created.status();
    if (!request.reply_to.IsNull()) {
      Status st = Send(request.reply_to, "exists", {});
      (void)st;
    }
    return;
  }
  const PortName flight_port = (*created)->ProvidedPorts()[0];
  {
    std::lock_guard<std::mutex> lock(mu_);
    directory_[flight_no] = flight_port;
  }
  if (dir_log_ != nullptr) {
    Status st = dir_log_->AppendValue(
        Value::Record({{"flight", Value::Int(flight_no)},
                       {"port", Value::OfPort(flight_port)}}));
    (void)st;
  }
  if (!request.reply_to.IsNull()) {
    Status st = Send(request.reply_to, "added", {});
    (void)st;
  }
}

void RegionalManager::ForwardToFlight(const Received& request) {
  const int64_t flight_no = request.args[0].int_value();
  PortName flight_port;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = directory_.find(flight_no);
    if (it == directory_.end()) {
      // `except when no_entry` of Figure 4.
      if (!request.reply_to.IsNull()) {
        Status st = Send(request.reply_to, "no_such_flight", {});
        (void)st;
      }
      return;
    }
    flight_port = it->second;
  }
  // Forward minus the flight_no argument, keeping the original replyto:
  // the response bypasses this manager entirely (Figure 4).
  ValueList forwarded(request.args.begin() + 1, request.args.end());
  Status st = Send(flight_port, request.command, std::move(forwarded),
                   request.reply_to);
  (void)st;
}

size_t RegionalManager::flight_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return directory_.size();
}

}  // namespace guardians
