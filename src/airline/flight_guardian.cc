#include "src/airline/flight_guardian.h"

#include <thread>

#include "src/common/bytes.h"
#include "src/common/log.h"
#include "src/fault/crashpoint.h"
#include "src/wire/value_codec.h"

namespace guardians {

namespace {
// The §2.2 log-then-reply window at the application layer: before the log
// write the operation must vanish without trace; after it, it must survive
// recovery even though the requester was never told.
CrashPoint crash_reserve_before_log("flight.reserve.before_log");
CrashPoint crash_reserve_after_log("flight.reserve.after_log");
CrashPoint crash_cancel_after_log("flight.cancel.after_log");
}  // namespace

ValueList FlightConfig::ToArgs() const {
  return {Value::Int(flight_no),
          Value::Int(capacity),
          Value::Int(static_cast<int>(organization)),
          Value::Int(workers),
          Value::Int(service_time.count()),
          Value::Bool(logging),
          Value::Int(checkpoint_every)};
}

Result<FlightConfig> FlightConfig::FromArgs(const ValueList& args) {
  if (args.size() != 7) {
    return Status(Code::kInvalidArgument,
                  "flight guardian takes 7 creation arguments");
  }
  for (size_t i = 0; i < args.size(); ++i) {
    const TypeTag want = i == 5 ? TypeTag::kBool : TypeTag::kInt;
    if (!args[i].is(want)) {
      return Status(Code::kInvalidArgument,
                    "bad flight guardian creation argument " +
                        std::to_string(i));
    }
  }
  FlightConfig config;
  config.flight_no = args[0].int_value();
  config.capacity = static_cast<int>(args[1].int_value());
  const int64_t org = args[2].int_value();
  if (org < 0 || org > 2) {
    return Status(Code::kInvalidArgument, "bad flight organization");
  }
  config.organization = static_cast<FlightOrganization>(org);
  config.workers = static_cast<int>(args[3].int_value());
  config.service_time = Micros(args[4].int_value());
  config.logging = args[5].bool_value();
  config.checkpoint_every = static_cast<int>(args[6].int_value());
  return config;
}

Status FlightGuardian::Setup(const ValueList& args) {
  return InitCommon(args, /*recovering=*/false);
}

Status FlightGuardian::Recover(const ValueList& args) {
  return InitCommon(args, /*recovering=*/true);
}

Status FlightGuardian::InitCommon(const ValueList& args, bool recovering) {
  GUARDIANS_ASSIGN_OR_RETURN(config_, FlightConfig::FromArgs(args));
  db_.emplace(config_.flight_no, config_.capacity);
  // Only managers may list passengers or administer the flight
  // (Section 2.3's access control example); reserve/cancel are open to any
  // requester.
  acl_.Grant("manager", "list_passengers");
  acl_.Grant("manager", "archive");
  acl_.Grant("manager", "flight_stats");

  if (config_.logging) {
    log_ = OpenLog("flight");
    if (recovering) {
      // The recovery process: re-apply the snapshot and every logged
      // operation, in order. FlightDb is a deterministic state machine, so
      // replay reproduces the pre-crash state exactly.
      GUARDIANS_ASSIGN_OR_RETURN(WalRecovery recovery, log_->Recover());
      if (recovery.snapshot.has_value()) {
        GUARDIANS_ASSIGN_OR_RETURN(Value snapshot,
                                   DecodeValueFromBytes(*recovery.snapshot));
        GUARDIANS_ASSIGN_OR_RETURN(FlightDb db,
                                   FlightDb::FromSnapshot(snapshot));
        db_.emplace(std::move(db));
      }
      for (const auto& record : recovery.records) {
        GUARDIANS_ASSIGN_OR_RETURN(Value v, DecodeValueFromBytes(record));
        GUARDIANS_ASSIGN_OR_RETURN(Value op, v.field("op"));
        GUARDIANS_ASSIGN_OR_RETURN(Value passenger, v.field("p"));
        GUARDIANS_ASSIGN_OR_RETURN(Value date, v.field("d"));
        db_->Apply(op.string_value(), passenger.string_value(),
                   date.string_value());
      }
    }
  }

  if (config_.organization == FlightOrganization::kSerializer) {
    serializer_ = std::make_unique<Serializer>(
        static_cast<size_t>(config_.workers));
  }
  AddPort(FlightPortType(), /*capacity=*/1024, /*provided=*/true);
  return OkStatus();
}

void FlightGuardian::Main() { ServeLoop(); }

void FlightGuardian::ServeLoop() {
  Port* requests = port(0);
  for (;;) {
    auto received = Receive(requests, Micros::max());
    if (!received.ok()) {
      return;  // node down
    }
    switch (config_.organization) {
      case FlightOrganization::kOneAtATime:
        // Figure 1a: process p handles requests sequentially.
        HandleRequest(std::move(*received));
        break;
      case FlightOrganization::kSerializer: {
        // Figure 1b: p queues the request; a worker q_i performs it when
        // the flight data of interest (the date) are available.
        const uint64_t key =
            received->args.size() >= 2 &&
                    received->args[1].is(TypeTag::kString)
                ? Fnv1a64(received->args[1].string_value())
                : 0;
        serializer_->Enqueue(key,
                             [this, message = std::move(*received)]() mutable {
                               HandleRequest(std::move(message));
                             });
        break;
      }
      case FlightOrganization::kMonitorFork: {
        // Figure 1c: p forks q_i per request; the q_i synchronize through
        // the keyed monitor inside HandleRequest.
        Fork("req-" + std::to_string(forked_.fetch_add(1)),
             [this, message = std::move(*received)]() mutable {
               HandleRequest(std::move(message));
             });
        if (forked_.load() % 64 == 0) {
          ReapProcesses();
        }
        break;
      }
    }
  }
}

void FlightGuardian::HandleRequest(Received request) {
  if (request.command == "reserve") {
    DoReserve(request);
  } else if (request.command == "cancel") {
    DoCancel(request);
  } else if (request.command == "list_passengers") {
    DoListPassengers(request);
  } else if (request.command == "archive") {
    DoArchive(request);
  } else if (request.command == "flight_stats") {
    DoStats(request);
  }
  handled_.fetch_add(1);
}

void FlightGuardian::ReplySimple(const PortName& to, const char* command) {
  if (to.IsNull()) {
    return;
  }
  Status st = Send(to, command, {});
  (void)st;  // delivery is best-effort; the requester times out otherwise
}

void FlightGuardian::LogOp(const std::string& op,
                           const std::string& passenger,
                           const std::string& date) {
  if (log_ == nullptr) {
    return;
  }
  Status st = log_->AppendValue(Value::Record({{"op", Value::Str(op)},
                                               {"p", Value::Str(passenger)},
                                               {"d", Value::Str(date)}}));
  if (!st.ok()) {
    GLOG_ERROR << "flight " << config_.flight_no << " log failed: " << st;
  }
}

void FlightGuardian::MaybeCheckpoint() {
  // Checkpointing truncates the log; it is only safe when no operation can
  // sit between "logged" and "applied", i.e. in the sequential
  // organization, and only *after* the triggering operation has been
  // applied (the snapshot must cover everything the truncation discards).
  if (log_ == nullptr ||
      config_.organization != FlightOrganization::kOneAtATime ||
      config_.checkpoint_every <= 0 ||
      log_->appended() % static_cast<uint64_t>(config_.checkpoint_every) !=
          0) {
    return;
  }
  Bytes snapshot;
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    auto encoded = EncodeValueToBytes(db_->ToSnapshot());
    if (!encoded.ok()) {
      return;
    }
    snapshot = encoded.take();
  }
  Status cp = log_->Checkpoint(snapshot);
  (void)cp;
}

void FlightGuardian::DoReserve(const Received& request) {
  const std::string& passenger = request.args[0].string_value();
  const std::string& date = request.args[1].string_value();
  // Only one process manipulates the data for a particular date at a time.
  // (The serializer organization already guarantees this by keying the
  // queue on the date; the monitor organization uses the keyed monitor.)
  const bool use_monitor =
      config_.organization == FlightOrganization::kMonitorFork;
  if (use_monitor) {
    date_monitor_.StartRequest(date);
  }
  if (config_.service_time.count() > 0) {
    runtime().clock().SleepFor(config_.service_time);
  }
  // Permanence first (Section 2.2): the operation is logged before it is
  // applied and before the requester learns the result.
  crash_reserve_before_log.Hit();
  LogOp("reserve", passenger, date);
  crash_reserve_after_log.Hit();
  ReserveOutcome outcome;
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    outcome = db_->Reserve(passenger, date);
  }
  MaybeCheckpoint();
  if (use_monitor) {
    date_monitor_.EndRequest(date);
  }
  ReplySimple(request.reply_to, OutcomeName(outcome));
}

void FlightGuardian::DoCancel(const Received& request) {
  const std::string& passenger = request.args[0].string_value();
  const std::string& date = request.args[1].string_value();
  const bool use_monitor =
      config_.organization == FlightOrganization::kMonitorFork;
  if (use_monitor) {
    date_monitor_.StartRequest(date);
  }
  if (config_.service_time.count() > 0) {
    runtime().clock().SleepFor(config_.service_time);
  }
  LogOp("cancel", passenger, date);
  crash_cancel_after_log.Hit();
  CancelOutcome outcome;
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    outcome = db_->Cancel(passenger, date);
  }
  MaybeCheckpoint();
  if (use_monitor) {
    date_monitor_.EndRequest(date);
  }
  ReplySimple(request.reply_to, OutcomeName(outcome));
}

void FlightGuardian::DoListPassengers(const Received& request) {
  const std::string& date = request.args[0].string_value();
  const std::string& principal = request.args[1].string_value();
  if (!acl_.Allows(principal, "list_passengers")) {
    ReplySimple(request.reply_to, "denied");
    return;
  }
  std::vector<Value> passengers;
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    for (const auto& passenger : db_->Passengers(date)) {
      passengers.push_back(Value::Str(passenger));
    }
  }
  if (!request.reply_to.IsNull()) {
    Status st = Send(request.reply_to, "info",
                     {Value::Array(std::move(passengers))});
    (void)st;
  }
}

void FlightGuardian::DoArchive(const Received& request) {
  const std::string& before_date = request.args[0].string_value();
  const std::string& principal = request.args[1].string_value();
  if (!acl_.Allows(principal, "archive")) {
    ReplySimple(request.reply_to, "denied");
    return;
  }
  // Archival is a state change: it must be logged like any other, or a
  // recovery would resurrect the archived dates.
  LogOp("archive", "", before_date);
  int removed;
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    removed = db_->Archive(before_date);
  }
  MaybeCheckpoint();
  if (!request.reply_to.IsNull()) {
    Status st = Send(request.reply_to, "archived", {Value::Int(removed)});
    (void)st;
  }
}

void FlightGuardian::DoStats(const Received& request) {
  const std::string& principal = request.args[0].string_value();
  if (!acl_.Allows(principal, "flight_stats")) {
    ReplySimple(request.reply_to, "denied");
    return;
  }
  FlightDb::Stats stats;
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    stats = db_->GetStats();
  }
  if (!request.reply_to.IsNull()) {
    Value record = Value::Record(
        {{"flight", Value::Int(config_.flight_no)},
         {"dates", Value::Int(stats.dates)},
         {"reservations", Value::Int(stats.reservations)},
         {"wait_listed", Value::Int(stats.wait_listed)},
         {"reserve_ops", Value::Int(static_cast<int64_t>(stats.reserve_ops))},
         {"cancel_ops", Value::Int(static_cast<int64_t>(stats.cancel_ops))}});
    Status st = Send(request.reply_to, "stats_info", {record});
    (void)st;
  }
}

FlightDb FlightGuardian::SnapshotDb() const {
  std::lock_guard<std::mutex> lock(db_mu_);
  return *db_;
}

}  // namespace guardians
