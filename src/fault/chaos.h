// Deterministic chaos harness: FoundationDB-style simulation testing for
// the §1.1/§2.2 fault model.
//
// One seed generates a time-ordered schedule of composed fault events —
// symmetric and one-way partitions forming and healing, campus-level cuts
// (topology.h), link-quality storms (LinkParams loss/dup/corrupt/jitter
// mutated mid-run through the Network's link-epoch path, under the global
// send lock), node crashes (quiescent power failures, or armed crashpoints
// inside durability windows with supervised restarts), and StableStore
// device failures — interleaved with the bank and airline workloads plus a
// non-idempotent tally guardian that witnesses duplicate effects.
//
// After every epoch and at final quiescence a ChaosInvariants pass asserts
// the global laws the system already implies:
//
//   - packet conservation: delivered + dropped == sent + duplicated
//   - bank balance conservation (no creation mid-run; exact at the end)
//   - airline no-oversell, FlightDb invariants, §2.2 permanence of acked
//     effects after recovery, no phantoms
//   - zero duplicate non-idempotent effects (the tally witness)
//   - no expired op produces an effect: every kOverloadStorm op carries a
//     1us wire budget it cannot survive, and the tally witness proves none
//     of them ever executed (§16 deadline-aware shedding)
//   - metric ledger identities, e.g.
//     sendprims.reliable.calls == ok + exhausted + deadline_exceeded
//     + hard_fail, and net.dup.injected == packets_duplicated
//
// On a violation the engine dumps the seed, the full event schedule and
// DumpTrace output; ShrinkSchedule then delta-debugs the schedule (ddmin
// chunk removal) down to a 1-minimal failing schedule — no single event
// can be dropped without the failure disappearing — which is what a
// human debugs.
//
// Determinism: in the default (unsupervised) mode the workload is driven
// in lockstep — each operation completes (or times out) before the next
// starts, and every event applies on a drained network at an epoch
// boundary — so the global Send order, and with it every loss/dup/corrupt
// die roll, is a pure function of the seed. The outcome counts are then
// bit-identical at every (delivery_shards x delivery_batch_max) point,
// which tests/test_chaos.cc asserts over the same grid test_batching uses.
#ifndef GUARDIANS_SRC_FAULT_CHAOS_H_
#define GUARDIANS_SRC_FAULT_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/net/network.h"

namespace guardians {

enum class ChaosEventKind {
  kPartition,        // symmetric cut between nodes a and b
  kHeal,             // heal the symmetric cut
  kPartitionOneWay,  // cut a -> b only; b -> a still flows
  kHealOneWay,       // heal the one-way cut
  kCampusCut,        // cut every cross-campus pair (PartitionCampuses)
  kCampusHeal,       // heal the campus cut
  kLinkStorm,        // override LinkParams on the a<->b link
  kLinkCalm,         // restore the default params on the a<->b link
  kCrash,            // crash node a; restarted per ChaosConfig::supervised
  kStoreFail,        // node a's stable store starts failing mutations
  kStoreHeal,        // the store works again
  kDupReplay,        // re-send a duplicate of a completed non-idempotent op
  // Simulated-time events (generated only when ChaosConfig::sim_time; a
  // wall-clock RunSchedule treats them as no-ops so hand-built schedules
  // stay portable):
  kClockSkew,        // step node a's clock by skew_us (may be negative)
  kClockDrift,       // node a's clock runs at `drift` x base speed
  kReorderStorm,     // hold up to reorder_k packets on the a<->b link;
                     // released in a seed-shuffled order at epoch end
  // Clock-agnostic again (wall and sim alike):
  kOverloadStorm,    // burst of overload_n deadline-doomed tracked adds
                     // (1us wire budgets no hop can survive); the tally
                     // witness proves none of them produced an effect
};

struct ChaosEvent {
  ChaosEventKind kind = ChaosEventKind::kPartition;
  int epoch = 0;   // applied (in schedule order) before this epoch's ops
  NodeId a = 0;    // primary node: crash/store target, or link endpoint
  NodeId b = 0;    // second link endpoint (partition/storm events)
  LinkParams storm;         // kLinkStorm only
  std::string crash_point;  // kCrash, supervised mode: armed site; empty =
                            // direct power failure between operations
  uint64_t nth_hit = 1;     // which hit of crash_point fires
  int64_t skew_us = 0;      // kClockSkew: step size (negative = backward)
  double drift = 1.0;       // kClockDrift: rate vs base time
  uint64_t reorder_k = 0;   // kReorderStorm: max packets held
  uint64_t overload_n = 0;  // kOverloadStorm: doomed ops in the burst

  std::string Describe() const;
};

struct ChaosConfig {
  uint64_t seed = 1;
  int epochs = 6;
  int ops_per_epoch = 6;
  // Forwarded into SystemConfig: the determinism grid.
  size_t delivery_shards = Network::kDefaultShards;
  size_t delivery_batch_max = Network::kDefaultBatchMax;
  // false: deterministic mode — crashes are quiescent power failures with
  // an immediate synchronous restart, storms keep dup off the RPC links,
  // and outcome counts are bit-identical across the shard/batch grid.
  // true: supervised mode — crashes arm crashpoints inside durability
  // windows, a Supervisor restarts (and may quarantine) the node, and
  // storms hit every link; counts are then timing-dependent, so only the
  // schedule and the invariants are asserted.
  bool supervised = false;
  // Generous on purpose: a healthy op must never time out from host
  // scheduling jitter alone (a spurious retry changes the packet counts
  // and breaks grid determinism on slow or oversubscribed machines);
  // doomed ops don't pay this — their budgets are derived from the
  // schedule-mirrored link state.
  Micros op_timeout{Millis(400)};
  int op_attempts = 4;
  // Epilogue budget: heal everything, restart what is down, and wait for
  // the system to answer probes before the final invariant pass.
  Micros settle_deadline{Millis(15000)};
  // Plant the known at-most-once bug (NodeRuntime skips the dedup journal
  // write) for the shrinker proof. Tests only.
  bool plant_dedup_bug = false;
  // Run the whole world on a SimulatedClock owned by RunSchedule (with an
  // auto-stepper driving virtual time). Unlocks the clock-skew / drift /
  // reordering events above; timeout-heavy schedules finish at simulation
  // speed. Off by default: the wall-clock build and its pinned seeds are
  // untouched.
  bool sim_time = false;
  // Receiver dedup-session idle GC horizon, forwarded to SystemConfig
  // (0 = sweep disabled). Only meaningful with sim_time skew schedules or
  // very long runs.
  Micros dedup_session_idle{0};
  // Plant the TTL-on-local-clock bug (NodeRuntime measures dedup-session
  // idleness on the node's skewable clock instead of the monotonic base
  // clock). Only a sim_time schedule with a forward skew step >= the idle
  // horizon can expose it — wall-clock chaos cannot reproduce it
  // deterministically. Tests only.
  bool plant_clock_bug = false;
};

// Outcome counts that must be bit-identical across the shard/batch grid in
// deterministic mode (the test_batching contract, extended to chaos runs).
struct ChaosCounts {
  NetworkStats net;
  uint64_t delivered = 0;    // deliver.delivered (per-shard sum)
  uint64_t executions = 0;   // NodeStats::messages_delivered, all nodes
  uint64_t suppressed = 0;   // duplicate deliveries recognised and stopped
  uint64_t replayed = 0;     // ...of which answered from the reply cache
  uint64_t partition_drops = 0;         // net.drop.partition
  uint64_t oneway_partition_drops = 0;  // net.drop.partition_oneway
  uint64_t link_epochs = 0;  // Network::link_epoch at the end of the run

  bool Equal(const ChaosCounts& other) const;
  std::string Diff(const ChaosCounts& other) const;  // empty when Equal
};

struct ChaosViolation {
  int epoch = -1;  // -1: the final post-settle pass
  std::string invariant;
  std::string detail;
};

struct ChaosReport {
  uint64_t seed = 0;
  std::vector<ChaosEvent> schedule;
  std::vector<ChaosViolation> violations;
  ChaosCounts counts;
  uint64_t events_applied = 0;
  uint64_t crashes = 0;
  uint64_t recoveries = 0;
  uint64_t dup_replays = 0;
  int ops_attempted = 0;
  int ops_acked = 0;
  // Seed + schedule + DumpTrace evidence; filled when violations exist.
  std::string failure_dump;

  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

// The engine. Stateless between runs: every Run/RunSchedule builds a fresh
// three-node world (region: accounts + branch + flight f1 + tally; annex:
// flight f2 + a fire-and-forget noise sink; client: the driver), campuses
// {region, annex} | {client}, drives the composed workload through the
// schedule, and checks invariants at every epoch boundary.
class ChaosEngine {
 public:
  explicit ChaosEngine(ChaosConfig config);

  // Pure function of the config: same seed, same schedule, every time.
  std::vector<ChaosEvent> GenerateSchedule() const;

  // GenerateSchedule + RunSchedule.
  ChaosReport Run();
  // Run the workload under an explicit schedule (the shrinker's entry
  // point; also how tests construct hand-built schedules).
  ChaosReport RunSchedule(const std::vector<ChaosEvent>& schedule);

  const ChaosConfig& config() const { return config_; }

 private:
  ChaosConfig config_;
};

struct ShrinkResult {
  std::vector<ChaosEvent> minimal;  // smallest schedule that still fails
  int runs = 0;                     // re-runs the shrinker spent
  ChaosReport final_report;         // the report of the minimal schedule
};

// ddmin (Zeller/Hildebrandt) chunk removal: split the schedule into n
// chunks, try dropping each whole chunk, restart coarse on success and
// double the granularity on failure, until no single event can be removed
// (1-minimal). Removing a chunk of k events costs one re-run instead of
// k, so a 12-event schedule with a 2-event culprit shrinks in ~a dozen
// runs rather than ~60. The engine's epilogue heals every fault
// regardless of schedule content, so any subset of a sane schedule is
// itself sane (no stuck partitions/stores).
ShrinkResult ShrinkSchedule(const ChaosConfig& config,
                            const std::vector<ChaosEvent>& failing);

}  // namespace guardians

#endif  // GUARDIANS_SRC_FAULT_CHAOS_H_
