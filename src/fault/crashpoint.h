// Deterministic crashpoints: named injection sites compiled into the
// durability-critical code paths (Wal::Append, Wal::Checkpoint between the
// snapshot write and the log truncate, StableStore's media write,
// NodeRuntime's creation-persist path, the flight guardian's log-then-reply
// window).
//
// Section 2.2's permanence claim is about exactly these windows: a guardian
// logs before it replies, and recovery must rebuild a consistent state no
// matter which instruction the power failed at. Crashing a node *between*
// operations (what test code could do before this layer existed) never
// exercises those windows; a CrashPlan{point, nth_hit} crashes *inside*
// one, at a precise, repeatable instruction.
//
// Model: each site is a namespace-scope `CrashPoint` static, so the full
// set registers itself before main() and the crash-schedule explorer can
// enumerate it. `Hit()` costs one relaxed atomic load and a predicted
// branch while the layer is inactive, so the sites stay compiled into
// release binaries (bench_fig45 measures no difference). Arming a plan for
// a scope (a NodeRuntime*) makes the Nth hit of that site — by a thread
// whose ScopedFaultScope matches — simulate a power failure there: the
// injector runs the crash action (NodeRuntime::BeginCrash) and throws
// CrashPointTriggered so no statement after the site executes. Everything
// already on stable storage survives; everything after the site never
// happens. That is the fault model, made schedulable.
#ifndef GUARDIANS_SRC_FAULT_CRASHPOINT_H_
#define GUARDIANS_SRC_FAULT_CRASHPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace guardians {

namespace internal {
// One process-wide flag gates every site's fast path. Inline so Hit() can
// stay header-only; relaxed because arming happens-before driving the
// workload through ordinary synchronization (thread creation, mutexes).
inline std::atomic<bool> g_fault_layer_active{false};
}  // namespace internal

// True while the injector is counting or armed. StableStore uses this to
// decide whether to model an append as two half-writes (so a crash between
// them leaves a torn tail, as real media would).
inline bool FaultInjectionActive() {
  return internal::g_fault_layer_active.load(std::memory_order_relaxed);
}

// Thrown by an armed CrashPoint at its Nth hit, after the crash action has
// run. Unwinds the doomed thread so the operation in progress is abandoned
// mid-flight; Guardian::Fork and NodeRuntime's entry points catch it.
struct CrashPointTriggered {
  std::string point;
  uint64_t hit = 0;
};

// One schedule: crash at the nth_hit-th hit of `point` (1-based).
struct CrashPlan {
  std::string point;
  uint64_t nth_hit = 1;
};

// The calling thread's fault scope: which node's stable-storage work it is
// doing. Guardian processes and NodeRuntime entry points set it to the
// owning NodeRuntime*, so hits are attributed to the right node even
// though the registry is process-wide.
class ScopedFaultScope {
 public:
  explicit ScopedFaultScope(const void* scope);
  ~ScopedFaultScope();

  ScopedFaultScope(const ScopedFaultScope&) = delete;
  ScopedFaultScope& operator=(const ScopedFaultScope&) = delete;

  static const void* Current();

 private:
  const void* previous_;
};

class CrashPoint;

// Process-wide singleton: the site registry plus at most one armed plan
// and at most one counting window at a time (the explorer runs schedules
// sequentially; concurrent Systems hitting sites from other scopes are
// simply not matched).
class FaultInjector {
 public:
  static FaultInjector& Instance();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Every registered site name, sorted (the explorer's enumeration input).
  std::vector<std::string> SiteNames() const;

  // Counting window: tally hits attributed to `scope` until StopCounting,
  // which returns the per-site totals. The explorer's baseline run uses
  // this to learn how many (point x hit) schedules exist.
  void StartCounting(const void* scope);
  std::map<std::string, uint64_t> StopCounting();

  // Arm one plan: the nth hit of plan.point by a thread scoped to `scope`
  // runs `on_crash` (typically NodeRuntime::BeginCrash) and then throws
  // CrashPointTriggered. Fails on an unknown point or if already armed.
  Status Arm(const CrashPlan& plan, const void* scope,
             std::function<void()> on_crash);
  void Disarm();
  // True once the armed plan has fired (it fires at most once per Arm).
  bool triggered() const { return triggered_.load(); }

 private:
  friend class CrashPoint;

  FaultInjector() = default;
  void Register(CrashPoint* point);
  void OnHit(CrashPoint* point);  // slow path behind the active flag
  void UpdateActiveLocked();

  mutable std::mutex mu_;
  std::vector<CrashPoint*> points_;

  bool counting_ = false;
  const void* count_scope_ = nullptr;
  std::map<std::string, uint64_t> counts_;

  CrashPoint* armed_point_ = nullptr;
  uint64_t armed_nth_ = 0;
  uint64_t armed_hits_ = 0;
  const void* armed_scope_ = nullptr;
  std::function<void()> on_crash_;
  std::atomic<bool> triggered_{false};
};

// A named injection site. Define at namespace scope next to the code path
// it instruments and call Hit() at the exact instruction a power failure
// should be schedulable at.
class CrashPoint {
 public:
  explicit CrashPoint(const char* name) : name_(name) {
    FaultInjector::Instance().Register(this);
  }

  CrashPoint(const CrashPoint&) = delete;
  CrashPoint& operator=(const CrashPoint&) = delete;

  const char* name() const { return name_; }

  // The site. Zero work unless the injector is counting or armed.
  void Hit() {
    if (!FaultInjectionActive()) {
      return;
    }
    FaultInjector::Instance().OnHit(this);
  }

 private:
  const char* name_;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_FAULT_CRASHPOINT_H_
