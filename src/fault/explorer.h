// Crash-schedule explorer: systematic coverage of the §2.2 fault model.
//
// A baseline run of an airline workload counts how many times each
// registered crashpoint is hit by the region node; that yields the full
// set of (point x hit-ordinal) schedules the workload can reach. The
// explorer then re-runs the workload once per schedule — enumerated, not
// sampled — crashing the region node exactly there, letting a Supervisor
// restart it, and checking the permanence invariants on the recovered
// state:
//
//   - every acked operation survives (a reserve acked "ok"/"pre_reserved"
//     is present after recovery; an acked cancel stays absent),
//   - no phantoms (every passenger in the recovered db was actually
//     requested by the workload),
//   - guardian ids and port names are stable across the crash,
//   - the FlightDb's own invariants hold,
//   - a persistent guardian whose remote creation was acked still exists.
//
// Used by tests/test_fault_explorer.cc (tier-1) and bench_robustness.
#ifndef GUARDIANS_SRC_FAULT_EXPLORER_H_
#define GUARDIANS_SRC_FAULT_EXPLORER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/fault/crashpoint.h"
#include "src/fault/supervisor.h"

namespace guardians {

struct ExplorerConfig {
  uint64_t seed = 1979;
  // Clerk operations against flight f1 (reserves with periodic cancels);
  // halfway through, a second persistent flight is created remotely.
  int ops = 8;
  // Small so checkpoints happen *inside* the workload window and the
  // checkpoint crashpoints get real hits.
  int checkpoint_every = 3;
  Micros op_timeout{Millis(250)};
  int op_attempts = 8;  // retries ride out the supervised restart
  // Every link duplicates this fraction of packets (seed-deterministic),
  // so each schedule also proves the at-most-once layer: duplicates and
  // retries of non-idempotent ops — reserves, cancels, remote creation —
  // must leave no double effects. Hit counts stay deterministic because
  // exactly one copy of a tracked request executes; the rest are
  // suppressed before they reach any journaling site.
  double dup_prob = 0.05;
  Micros verify_deadline{Millis(10000)};
  SupervisorConfig supervisor = FastSupervisor();

  // Supervisor tuned for explorer turnaround: tight poll, short backoff,
  // and a strike budget one-shot crashes can never exhaust.
  static SupervisorConfig FastSupervisor();
};

struct ScheduleOutcome {
  CrashPlan plan;
  bool triggered = false;      // the armed hit was actually reached
  Status verdict = OkStatus();  // invariant check result
  Micros recovery{0};          // mean supervised Restart() time of the run
  int acked = 0;               // operations the clerk saw acked
};

struct ExplorerReport {
  // Per-site hit counts of the baseline run; the schedule space is its sum.
  std::map<std::string, uint64_t> baseline_hits;
  std::vector<ScheduleOutcome> schedules;
  size_t triggered = 0;
  size_t failures = 0;
  double mean_recovery_us = 0;

  // "52 schedules over 12 sites, 52 triggered, 0 failures, ..."
  std::string Summary() const;
};

// Runs the whole enumeration. An error Status means the harness itself
// could not run (e.g. the baseline run failed verification); per-schedule
// invariant violations are reported in the outcomes' verdicts.
Result<ExplorerReport> ExploreCrashSchedules(const ExplorerConfig& config);

}  // namespace guardians

#endif  // GUARDIANS_SRC_FAULT_EXPLORER_H_
