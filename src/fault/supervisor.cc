#include "src/fault/supervisor.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/obs/trace.h"

namespace guardians {

Supervisor::Supervisor(System* system, SupervisorConfig config)
    : system_(system),
      config_(config),
      clock_(system->clock()),
      crashes_detected_(system->metrics().counter(
          "supervisor.crashes_detected")),
      restarts_(system->metrics().counter("supervisor.restarts")),
      restart_failures_(system->metrics().counter(
          "supervisor.restart_failures")),
      quarantined_count_(system->metrics().counter("supervisor.quarantined")),
      unquarantined_count_(
          system->metrics().counter("supervisor.unquarantines")),
      backoff_us_(system->metrics().histogram("supervisor.backoff_us")),
      recovery_us_(system->metrics().histogram("supervisor.recovery_us")),
      rng_(config.seed) {
  trace_id_ = rng_.NextU64() | 1;  // nonzero: 0 means "untraced"
  system_->SetHealthOracle(
      [this](NodeId id) { return IsQuarantined(id); });
}

Supervisor::~Supervisor() {
  Stop();
  system_->SetHealthOracle(nullptr);
}

void Supervisor::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) {
      return;
    }
    running_ = true;
  }
  thread_ = std::thread([this] { RunLoop(); });
}

void Supervisor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      return;
    }
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void Supervisor::Ignore(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  state_[id].ignored = true;
}

bool Supervisor::IsQuarantined(NodeId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = state_.find(id);
  return it != state_.end() && it->second.quarantined;
}

void Supervisor::ForceQuarantine(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& st = state_[id];
  if (!st.quarantined) {
    QuarantineLocked(st, id, "forced");
  }
}

void Supervisor::ClearQuarantine(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& st = state_[id];
  st.quarantined = false;
  st.strikes = 0;
  st.down_seen = false;
}

void Supervisor::Unquarantine(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& st = state_[id];
  if (!st.quarantined) {
    return;  // nothing to reverse; don't inflate the counter
  }
  st.quarantined = false;
  st.strikes = 0;
  st.down_seen = false;
  unquarantined_count_->Inc();
  system_->traces().Record(trace_id_, static_cast<uint32_t>(id),
                           "supervisor.unquarantine",
                           "rejoining rotation");
}

Supervisor::NodeHealth Supervisor::Health(NodeId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  NodeHealth out;
  auto it = state_.find(id);
  if (it != state_.end()) {
    out.strikes = it->second.strikes;
    out.restarts = it->second.restarts;
    out.quarantined = it->second.quarantined;
  }
  return out;
}

void Supervisor::RunLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (running_) {
    lk.unlock();
    Scan();
    lk.lock();
    clock_->WaitUntil(cv_, lk, clock_->Now() + config_.poll_interval,
                      [this] { return !running_; });
  }
}

void Supervisor::Scan() {
  const size_t n = system_->node_count();
  for (NodeId id = 1; id <= n; ++id) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      const NodeState& st = state_[id];
      if (st.ignored || st.quarantined) {
        continue;
      }
    }
    NodeRuntime& node = system_->node(id);
    if (node.IsUp()) {
      std::lock_guard<std::mutex> lock(mu_);
      state_[id].down_seen = false;
      continue;
    }
    HandleDown(id, node);
  }
}

void Supervisor::HandleDown(NodeId id, NodeRuntime& node) {
  {
    const TimePoint now = clock_->Now();
    std::lock_guard<std::mutex> lock(mu_);
    NodeState& st = state_[id];
    if (!st.down_seen) {
      st.down_seen = true;
      crashes_detected_->Inc();
      system_->traces().Record(trace_id_, static_cast<uint32_t>(id),
                               "supervisor.crash_detected", node.name());
      // Strike accounting: crashing again shortly after the last recovery
      // means restarting isn't helping.
      if (st.restarts > 0 && now - st.last_recovery < config_.rapid_window) {
        ++st.strikes;
      } else {
        st.strikes = 1;
      }
      if (st.strikes >= config_.quarantine_strikes) {
        QuarantineLocked(st, id, "crash-looping");
        return;
      }
      const Micros wait = NextBackoffLocked(st.strikes);
      st.restart_at = now + wait;
      system_->traces().Record(trace_id_, static_cast<uint32_t>(id),
                               "supervisor.backoff",
                               std::to_string(wait.count()) + "us, strike " +
                                   std::to_string(st.strikes));
      return;
    }
    if (now < st.restart_at) {
      return;  // still backing off
    }
  }

  // The restart attempt runs outside mu_: it joins guardian threads and
  // replays logs. Crash() first completes a crashpoint-initiated crash
  // whose FinishCrash nobody ran yet.
  node.Crash();
  const TimePoint t0 = Now();
  Status restarted = node.Restart();
  const uint64_t recovery_us = static_cast<uint64_t>(ToMicros(Now() - t0));
  if (!restarted.ok()) {
    // Tear the half-booted node back down before the next attempt.
    node.Crash();
  }

  std::lock_guard<std::mutex> lock(mu_);
  NodeState& st = state_[id];
  if (restarted.ok()) {
    ++st.restarts;
    st.down_seen = false;
    st.last_recovery = clock_->Now();
    restarts_->Inc();
    recovery_us_->Observe(recovery_us);
    system_->traces().Record(trace_id_, static_cast<uint32_t>(id),
                             "supervisor.restart",
                             node.name() + " recovered in " +
                                 std::to_string(recovery_us) + "us");
  } else {
    restart_failures_->Inc();
    ++st.strikes;
    system_->traces().Record(trace_id_, static_cast<uint32_t>(id),
                             "supervisor.restart_failed",
                             restarted.ToString());
    if (st.strikes >= config_.quarantine_strikes) {
      QuarantineLocked(st, id, restarted.ToString());
    } else {
      st.restart_at = clock_->Now() + NextBackoffLocked(st.strikes);
    }
  }
}

Micros Supervisor::NextBackoffLocked(int strikes) {
  double base = static_cast<double>(config_.initial_backoff.count()) *
                std::pow(config_.backoff_multiplier,
                         std::max(0, strikes - 1));
  base = std::min(base, static_cast<double>(config_.max_backoff.count()));
  // Jitter desynchronizes restart herds; seeded, so runs are reproducible.
  const double factor = 1.0 + config_.jitter * (2.0 * rng_.NextDouble() - 1.0);
  const uint64_t us =
      static_cast<uint64_t>(std::max(1.0, base * factor));
  backoff_us_->Observe(us);
  return Micros(static_cast<int64_t>(us));
}

void Supervisor::QuarantineLocked(NodeState& st, NodeId id,
                                  const std::string& why) {
  st.quarantined = true;
  quarantined_count_->Inc();
  system_->traces().Record(trace_id_, static_cast<uint32_t>(id),
                           "supervisor.quarantine",
                           why + " after " + std::to_string(st.strikes) +
                               " strikes");
}

}  // namespace guardians
