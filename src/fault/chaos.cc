#include "src/fault/chaos.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "src/airline/flight_guardian.h"
#include "src/airline/types.h"
#include "src/bank/branch_guardian.h"
#include "src/fault/crashpoint.h"
#include "src/fault/supervisor.h"
#include "src/guardian/system.h"
#include "src/net/topology.h"
#include "src/sendprims/reliable_send.h"
#include "src/sendprims/remote_call.h"

// TSAN slows compute 10-20x, so the auto-stepper's real-time quiet
// heuristic needs a matching stretch: 200us of registry quiet on a plain
// build means "everyone is blocked on virtual time", but under TSAN a
// thread can be mid-computation (or starved by the scheduler) that long,
// and stepping past its deadline turns host slowness into spurious
// virtual timeouts.
#if defined(__SANITIZE_THREAD__)
#define GUARDIANS_CHAOS_CC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GUARDIANS_CHAOS_CC_TSAN 1
#endif
#endif
#ifndef GUARDIANS_CHAOS_CC_TSAN
#define GUARDIANS_CHAOS_CC_TSAN 0
#endif

namespace guardians {
namespace {

constexpr Micros kAutoStepQuiet =
    GUARDIANS_CHAOS_CC_TSAN ? Micros(2000) : Micros(200);

// Node ids are fixed by construction order in BuildWorld.
constexpr NodeId kRegionNode = 1;
constexpr NodeId kAnnexNode = 2;
constexpr NodeId kClientNode = 3;

const char* const kDates[] = {"d0", "d1", "d2"};
constexpr int kNumDates = 3;
constexpr int kNumAccounts = 3;
constexpr int64_t kInitialBalance = 1000;
constexpr int64_t kTotalMoney = kNumAccounts * kInitialBalance;
constexpr int kFlightCapacity = 64;
constexpr int64_t kFlight1 = 1;
constexpr int64_t kFlight2 = 2;

LinkParams LanParams() {
  LinkParams p;
  p.latency = Micros(60);
  return p;
}

LinkParams WanParams() {
  LinkParams p;
  p.latency = Micros(250);
  return p;
}

PortType TallyPortType() {
  const ArgType kInt = ArgType::Of(TypeTag::kInt);
  const ArgType kStr = ArgType::Of(TypeTag::kString);
  return PortType("tally_port",
                  {MessageSig{"add", {kStr, kInt}, {"tally_ok", "tally_fail"}},
                   MessageSig{"read", {}, {"tally_ok"}}});
}

PortType TallyReplyType() {
  return PortType("tally_reply",
                  {MessageSig{"tally_ok", {ArgType::Of(TypeTag::kInt)}, {}},
                   MessageSig{"tally_fail", {}, {}}});
}

// A deliberately non-idempotent accumulator that *witnesses* at-most-once
// violations instead of suffering them: every add carries an op id, and a
// duplicate id reaching the guardian means the system's dedup layer failed
// (re-deliveries are supposed to be suppressed below the application). The
// duplicate is counted, not re-applied, so the run's other invariants stay
// interpretable while chaos.double_applies pinpoints the broken law.
class TallyGuardian : public Guardian {
 public:
  static constexpr char kTypeName[] = "tally";

  Status Setup(const ValueList& args) override {
    (void)args;
    return Init(false);
  }
  Status Recover(const ValueList& args) override {
    (void)args;
    return Init(true);
  }

  void Main() override {
    Port* requests = port(0);
    while (!Closed()) {
      auto got = Receive(requests, Micros::max());
      if (!got.ok()) {
        return;
      }
      Handle(*got);
    }
  }

  int64_t sum() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
  }
  uint64_t double_applies() const {
    std::lock_guard<std::mutex> lock(mu_);
    return double_applies_;
  }
  // Whether an add with this op id ever executed (applied or witnessed as
  // a duplicate) — how the overload-storm invariant proves a doomed op
  // never produced an effect.
  bool Saw(const std::string& id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return seen_.count(id) > 0;
  }

 private:
  Status Init(bool recovering) {
    AddPort(TallyPortType(), 1024, /*provided=*/true);
    log_ = OpenLog("tally");
    if (recovering) {
      auto records = log_->RecoverValues();
      if (!records.ok()) {
        return records.status();
      }
      std::lock_guard<std::mutex> lock(mu_);
      for (const Value& record : *records) {
        auto id = record.field("id");
        auto amount = record.field("amount");
        if (!id.ok() || !amount.ok()) {
          return Status(Code::kInternal, "bad tally log record");
        }
        auto id_str = id->AsString();
        auto amt = amount->AsInt();
        if (!id_str.ok() || !amt.ok()) {
          return Status(Code::kInternal, "bad tally log field");
        }
        if (seen_.insert(*id_str).second) {
          sum_ += *amt;
        }
      }
    }
    return OkStatus();
  }

  void Handle(const Received& request) {
    auto reply = [&](const char* command, ValueList args) {
      if (!request.reply_to.IsNull()) {
        (void)Send(request.reply_to, command, std::move(args));
      }
    };
    if (request.command == "read") {
      reply("tally_ok", {Value::Int(sum())});
      return;
    }
    if (request.command != "add" || request.args.size() != 2) {
      return;
    }
    auto id = request.args[0].AsString();
    auto amount = request.args[1].AsInt();
    if (!id.ok() || !amount.ok()) {
      return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (seen_.count(*id) > 0) {
      // The at-most-once layer let a duplicate through. Witness it.
      ++double_applies_;
      const int64_t current = sum_;
      lock.unlock();
      reply("tally_ok", {Value::Int(current)});
      return;
    }
    // Permanence first: log, then apply, then ack.
    Status logged = log_->AppendValue(
        Value::Record({{"id", Value::Str(*id)},
                       {"amount", Value::Int(*amount)}}));
    if (!logged.ok()) {
      lock.unlock();
      reply("tally_fail", {});
      return;
    }
    seen_.insert(*id);
    sum_ += *amount;
    const int64_t current = sum_;
    lock.unlock();
    reply("tally_ok", {Value::Int(current)});
  }

  mutable std::mutex mu_;
  std::set<std::string> seen_;
  int64_t sum_ = 0;
  uint64_t double_applies_ = 0;
  Wal* log_ = nullptr;
};

constexpr char TallyGuardian::kTypeName[];

// One disposable universe per schedule. Member order matters: the
// supervisor is declared last so it stops (and uninstalls its health
// oracle) before the System it watches dies.
struct ChaosWorld {
  explicit ChaosWorld(const SystemConfig& config) : system(config) {}

  System system;
  NodeRuntime* region = nullptr;
  NodeRuntime* annex = nullptr;
  NodeRuntime* client = nullptr;
  CampusTopology topology;
  Guardian* clerk = nullptr;
  Port* tally_reply = nullptr;  // persistent: dup replays reuse it
  std::vector<PortName> accounts;
  PortName branch_port;
  PortName f1_port;
  PortName f2_port;
  PortName tally_port;
  PortName noise_port;
  std::unique_ptr<Supervisor> supervisor;
};

FlightConfig MakeFlightConfig(int64_t flight_no) {
  FlightConfig fc;
  fc.flight_no = flight_no;
  fc.capacity = kFlightCapacity;
  fc.organization = FlightOrganization::kOneAtATime;
  fc.logging = true;
  fc.checkpoint_every = 8;  // small, so checkpoint crashpoints get hit
  return fc;
}

Result<std::unique_ptr<ChaosWorld>> BuildWorld(const ChaosConfig& config,
                                               SimulatedClock* sim) {
  SystemConfig sc;
  sc.seed = config.seed;
  sc.delivery_shards = config.delivery_shards;
  sc.delivery_batch_max = config.delivery_batch_max;
  sc.default_link.latency = Micros(100);
  sc.sim_clock = sim;  // null: wall clock, the default world
  sc.dedup_session_idle = config.dedup_session_idle;
  auto world = std::make_unique<ChaosWorld>(sc);
  world->region = &world->system.AddNode("region");
  world->annex = &world->system.AddNode("annex");
  world->client = &world->system.AddNode("client");
  if (world->region->id() != kRegionNode || world->annex->id() != kAnnexNode ||
      world->client->id() != kClientNode) {
    return Status(Code::kInternal, "unexpected node id assignment");
  }
  // Campuses: {region, annex} on campus 0, {client} on campus 1 — campus
  // cuts sever the driver from both application nodes at once.
  world->topology =
      BuildCampuses(world->system.network(), {0, 0, 1}, LanParams(),
                    WanParams());

  world->region->RegisterGuardianType(AccountGuardian::kTypeName,
                                      MakeFactory<AccountGuardian>());
  world->region->RegisterGuardianType(BranchGuardian::kTypeName,
                                      MakeFactory<BranchGuardian>());
  world->region->RegisterGuardianType("flight", MakeFactory<FlightGuardian>());
  world->region->RegisterGuardianType(TallyGuardian::kTypeName,
                                      MakeFactory<TallyGuardian>());
  world->annex->RegisterGuardianType("flight", MakeFactory<FlightGuardian>());
  world->annex->RegisterGuardianType(TallyGuardian::kTypeName,
                                     MakeFactory<TallyGuardian>());
  world->client->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());

  auto clerk = world->client->Create<ShellGuardian>("shell", "clerk", {});
  GUARDIANS_RETURN_IF_ERROR(clerk.status());
  world->clerk = *clerk;

  for (int k = 0; k < kNumAccounts; ++k) {
    auto account = world->region->Create<AccountGuardian>(
        AccountGuardian::kTypeName, "a" + std::to_string(k),
        {Value::Str("owner" + std::to_string(k)), Value::Int(kInitialBalance)},
        /*persistent=*/true);
    GUARDIANS_RETURN_IF_ERROR(account.status());
    world->accounts.push_back((*account)->ProvidedPorts()[0]);
  }
  // Wide leg budget on purpose: both legs are region-local (no schedule
  // event ever cuts them), so a leg can only time out when the host stalls
  // the account guardian's thread (tsan, throttled CI boxes). A timed-out
  // deposit leaves the transfer in-doubt until branch *recovery* runs —
  // and a schedule with no region crash never runs it, which would read
  // as a (false) conservation shortfall for the rest of the run.
  auto branch = world->region->Create<BranchGuardian>(
      BranchGuardian::kTypeName, "branch",
      {Value::Int(Millis(500).count()), Value::Int(4)}, /*persistent=*/true);
  GUARDIANS_RETURN_IF_ERROR(branch.status());
  world->branch_port = (*branch)->ProvidedPorts()[0];

  auto f1 = world->region->Create<FlightGuardian>(
      "flight", "f1", MakeFlightConfig(kFlight1).ToArgs(), /*persistent=*/true);
  GUARDIANS_RETURN_IF_ERROR(f1.status());
  world->f1_port = (*f1)->ProvidedPorts()[0];
  auto f2 = world->annex->Create<FlightGuardian>(
      "flight", "f2", MakeFlightConfig(kFlight2).ToArgs(), /*persistent=*/true);
  GUARDIANS_RETURN_IF_ERROR(f2.status());
  world->f2_port = (*f2)->ProvidedPorts()[0];

  auto tally = world->region->Create<TallyGuardian>(
      TallyGuardian::kTypeName, "tally", {}, /*persistent=*/true);
  GUARDIANS_RETURN_IF_ERROR(tally.status());
  world->tally_port = (*tally)->ProvidedPorts()[0];
  auto noise = world->annex->Create<TallyGuardian>(
      TallyGuardian::kTypeName, "noise", {}, /*persistent=*/true);
  GUARDIANS_RETURN_IF_ERROR(noise.status());
  world->noise_port = (*noise)->ProvidedPorts()[0];

  world->tally_reply = world->clerk->AddPort(TallyReplyType(), 64);

  if (config.supervised) {
    SupervisorConfig scfg;
    scfg.poll_interval = Millis(2);
    scfg.initial_backoff = Millis(2);
    scfg.max_backoff = Millis(50);
    scfg.rapid_window = Millis(300);
    scfg.quarantine_strikes = 8;
    world->supervisor =
        std::make_unique<Supervisor>(&world->system, scfg);
    world->supervisor->Ignore(world->client->id());
    world->supervisor->Start();
  }
  return world;
}

// Drives one schedule through a ChaosWorld: applies the epoch's events,
// runs the lockstep op mix, waits for quiescence, and checks the global
// invariants. All bookkeeping (what was acked, what is cut) is a pure
// function of the schedule and the reply stream, never of wall time, which
// is what keeps deterministic-mode counts grid-identical.
class ChaosRun {
 public:
  ChaosRun(const ChaosConfig& config, ChaosWorld* world, ChaosReport* report,
           SimulatedClock* sim)
      : config_(config),
        world_(world),
        report_(report),
        sim_(sim),
        chaos_trace_(0xC0A05EEDull ^ config.seed) {}

  void Execute(const std::vector<ChaosEvent>& schedule) {
    int epochs_total = config_.epochs;
    for (const ChaosEvent& ev : schedule) {
      epochs_total = std::max(epochs_total, ev.epoch + 1);
    }
    for (int epoch = 0; epoch < epochs_total; ++epoch) {
      for (const ChaosEvent& ev : schedule) {
        if (ev.epoch == epoch) {
          Apply(ev);
        }
      }
      for (int k = 0; k < config_.ops_per_epoch; ++k) {
        DriveOp(op_index_++);
      }
      EndEpoch(epoch);
    }
    Epilogue();
    CheckFinal();
    FillCounts();
    if (!report_->violations.empty()) {
      BuildFailureDump();
    }
  }

 private:
  using Key = std::tuple<int64_t, std::string, std::string>;

  System& system() { return world_->system; }
  Network& network() { return world_->system.network(); }
  MetricsRegistry& metrics() { return world_->system.metrics(); }
  Guardian* clerk() { return world_->clerk; }

  NodeRuntime* NodeById(NodeId id) {
    if (id == kRegionNode) return world_->region;
    if (id == kAnnexNode) return world_->annex;
    return world_->client;
  }
  TallyGuardian* Tally() {
    return dynamic_cast<TallyGuardian*>(
        world_->region->FindGuardian(world_->tally_port.guardian));
  }
  TallyGuardian* Noise() {
    return dynamic_cast<TallyGuardian*>(
        world_->annex->FindGuardian(world_->noise_port.guardian));
  }
  FlightGuardian* Flight(NodeId home, const PortName& port) {
    return dynamic_cast<FlightGuardian*>(
        NodeById(home)->FindGuardian(port.guardian));
  }

  static std::pair<NodeId, NodeId> SymKey(NodeId a, NodeId b) {
    return {std::min(a, b), std::max(a, b)};
  }

  // Mirror of the schedule-declared link state, used only to pick attempt
  // budgets for ops that cannot possibly succeed (so a cut epoch burns
  // milliseconds, not attempts x timeout each). Pure schedule state — the
  // decisions cannot drift with timing.
  bool Reachable(NodeId target) const {
    if (campus_cut_) return false;
    if (sym_cuts_.count(SymKey(kClientNode, target)) > 0) return false;
    if (oneway_cuts_.count({kClientNode, target}) > 0) return false;
    return true;
  }
  bool Ackable(NodeId target) const {
    return Reachable(target) && oneway_cuts_.count({target, kClientNode}) == 0;
  }
  RemoteCallOptions OptionsFor(NodeId target) const {
    RemoteCallOptions o;
    o.timeout = config_.op_timeout;
    o.max_attempts = config_.op_attempts;
    if (!Reachable(target)) {
      o.timeout = Millis(20);
      o.max_attempts = 1;
    } else if (!Ackable(target)) {
      o.timeout = Millis(30);
      o.max_attempts = 2;
    }
    return o;
  }

  void AddViolation(int epoch, const std::string& invariant,
                    const std::string& detail) {
    report_->violations.push_back({epoch, invariant, detail});
    metrics().counter("chaos.violations")->Inc();
    system().traces().Record(chaos_trace_, 0, "chaos.violation",
                             invariant + ": " + detail);
  }

  // --- Events ---------------------------------------------------------------

  void Apply(const ChaosEvent& ev) {
    ++report_->events_applied;
    metrics().counter("chaos.events")->Inc();
    system().traces().Record(chaos_trace_, 0, "chaos.event", ev.Describe());
    Network& net = network();
    switch (ev.kind) {
      case ChaosEventKind::kPartition:
        net.SetPartitioned(ev.a, ev.b, true);
        sym_cuts_.insert(SymKey(ev.a, ev.b));
        break;
      case ChaosEventKind::kHeal:
        net.SetPartitioned(ev.a, ev.b, false);
        sym_cuts_.erase(SymKey(ev.a, ev.b));
        break;
      case ChaosEventKind::kPartitionOneWay:
        net.SetPartitionedOneWay(ev.a, ev.b, true);
        oneway_cuts_.insert({ev.a, ev.b});
        break;
      case ChaosEventKind::kHealOneWay:
        net.SetPartitionedOneWay(ev.a, ev.b, false);
        oneway_cuts_.erase({ev.a, ev.b});
        break;
      case ChaosEventKind::kCampusCut:
        PartitionCampuses(net, world_->topology, 0, 1, true);
        campus_cut_ = true;
        break;
      case ChaosEventKind::kCampusHeal:
        PartitionCampuses(net, world_->topology, 0, 1, false);
        campus_cut_ = false;
        break;
      case ChaosEventKind::kLinkStorm:
        net.SetLink(ev.a, ev.b, ev.storm);
        break;
      case ChaosEventKind::kLinkCalm:
        net.SetLink(ev.a, ev.b, WanParams());
        break;
      case ChaosEventKind::kCrash:
        DoCrash(ev);
        break;
      case ChaosEventKind::kStoreFail:
        NodeById(ev.a)->stable_store().SetFailed(true);
        if (ev.a == kAnnexNode) annex_store_failed_ = true;
        break;
      case ChaosEventKind::kStoreHeal:
        NodeById(ev.a)->stable_store().SetFailed(false);
        if (ev.a == kAnnexNode) annex_store_failed_ = false;
        break;
      case ChaosEventKind::kDupReplay:
        DoDupReplay(ev.epoch);
        break;
      // The simulated-time events. Without a simulated clock they are
      // no-ops (traced above), so a sim-authored schedule can replay in a
      // wall world without faulting — it just cannot reproduce the bug.
      case ChaosEventKind::kClockSkew:
        if (sim_ != nullptr) {
          sim_->StepNode(ev.a, Micros(ev.skew_us));
        }
        break;
      case ChaosEventKind::kClockDrift:
        if (sim_ != nullptr) {
          sim_->SetNodeDrift(ev.a, ev.drift);
        }
        break;
      case ChaosEventKind::kReorderStorm:
        if (sim_ != nullptr) {
          net.HoldLink(ev.a, ev.b, ev.reorder_k);
          reorder_active_ = true;
        }
        break;
      case ChaosEventKind::kOverloadStorm:
        DoOverloadStorm(ev);
        break;
    }
  }

  void DoCrash(const ChaosEvent& ev) {
    NodeRuntime* target = NodeById(ev.a);
    metrics().counter("chaos.crashes")->Inc();
    if (!config_.supervised) {
      // Deterministic power failure: quiesce first so zero in-flight
      // packets are lost to timing, then crash + restart synchronously.
      system().WaitQuiescent(config_.settle_deadline);
      target->Crash();
      Status up = target->Restart();
      if (!up.ok()) {
        AddViolation(ev.epoch, "crash.restart", up.ToString());
      }
      ++report_->crashes;
      ++report_->recoveries;
      return;
    }
    if (ev.crash_point.empty()) {
      target->BeginCrash();  // the supervisor finishes and restarts it
      ++report_->crashes;
      return;
    }
    Status armed = FaultInjector::Instance().Arm(
        CrashPlan{ev.crash_point, ev.nth_hit}, target,
        [target] { target->BeginCrash(); });
    if (armed.ok()) {
      armed_ = true;
    } else {
      AddViolation(ev.epoch, "crash.arm", armed.ToString());
    }
  }

  void DoDupReplay(int epoch) {
    (void)epoch;
    ++report_->dup_replays;
    metrics().counter("chaos.dup_replays")->Inc();
    if (acked_tally_.empty()) {
      return;
    }
    // Re-send a byte-faithful duplicate of the most recent *acked* tally
    // op: same dedup seq, same args, same reply port. The ack proves the
    // reply was journaled, so a correct system must suppress this and
    // answer from the reply cache — even across a crash.
    const TallyOp& op = acked_tally_.back();
    (void)clerk()->SendFull(world_->tally_port, "add",
                            {Value::Str(op.id), Value::Int(op.amount)},
                            world_->tally_reply->name(), PortName{}, op.seq);
    system().WaitQuiescent(config_.settle_deadline);
    FlushTallyReplies();
  }

  void DoOverloadStorm(const ChaosEvent& ev) {
    // A burst of deadline-doomed tracked adds: each carries a 1us wire
    // budget, which the receiver's >=1us-per-hop charge (§16) spends by
    // construction — even when a negative jitter draw clamps the link
    // delay to zero virtual time — so every one that reaches the region
    // node must be shed before the dedup gate and before dispatch. The
    // shed decision is thus clock- and schedule-independent, so the
    // counts stay grid-deterministic. The
    // amounts are huge on purpose: a single doomed op leaking through
    // would blow tally.bounds as well as the expired-effect witness.
    for (uint64_t k = 0; k < ev.overload_n; ++k) {
      const std::string id =
          "x" + std::to_string(ev.epoch) + "-" + std::to_string(k);
      doomed_ids_.push_back(id);
      (void)clerk()->SendFull(world_->tally_port, "add",
                              {Value::Str(id), Value::Int(1'000'000)},
                              world_->tally_reply->name(), PortName{},
                              world_->client->NextDedupSeq(),
                              /*deadline_micros=*/1);
    }
    system().WaitQuiescent(config_.settle_deadline);
    FlushTallyReplies();  // the expired-shed failure nacks land here
  }

  void FlushTallyReplies() {
    while (clerk()->Receive(world_->tally_reply, Millis(2)).ok()) {
    }
  }

  // --- Workload -------------------------------------------------------------

  void DriveOp(int i) {
    ++report_->ops_attempted;
    switch (i % 6) {
      case 0:
        BankTransfer(i);
        break;
      case 1:
        AirlineOp(world_->f1_port, kFlight1, "reserve",
                  "p" + std::to_string(i), kDates[i % kNumDates], kRegionNode);
        break;
      case 2:
        TallyAdd(i);
        break;
      case 3:
        AirlineOp(world_->f2_port, kFlight2, "reserve",
                  "q" + std::to_string(i), kDates[i % kNumDates], kAnnexNode);
        break;
      case 4:
        NoiseBurst(i);
        break;
      case 5:
        CancelAndReliable(i);
        break;
    }
  }

  void BankTransfer(int i) {
    const int from = i % kNumAccounts;
    const int to = (i + 1) % kNumAccounts;
    const int64_t amount = 1 + (i % 17);
    auto reply = RemoteCall(
        *clerk(), world_->branch_port, "transfer",
        {Value::OfPort(world_->accounts[from]),
         Value::OfPort(world_->accounts[to]), Value::Int(amount),
         Value::Str("tx-" + std::to_string(i))},
        BankReplyType(), OptionsFor(kRegionNode));
    if (reply.ok() && (reply->command == "transfer_done" ||
                       reply->command == "transfer_failed")) {
      ++report_->ops_acked;
    }
  }

  void AirlineOp(const PortName& port, int64_t flight_no,
                 const std::string& command, const std::string& passenger,
                 const std::string& date, NodeId home) {
    auto reply = RemoteCall(*clerk(), port, command,
                            {Value::Str(passenger), Value::Str(date)},
                            ReservationReplyType(), OptionsFor(home));
    const std::string got = reply.ok() ? reply->command : std::string();
    const Key key{flight_no, passenger, date};
    attempted_.insert(key);
    // Permanence trap (§2.2): the flight guardians ack even when their WAL
    // append failed, so any ack earned while the node's store is failing
    // is downgraded to "unknown" — asserted neither way after recovery.
    const bool durable = !(home == kAnnexNode && annex_store_failed_);
    if (got == "ok" || got == "pre_reserved") {
      ++report_->ops_acked;
      if (durable) {
        expected_[key] = true;
      } else {
        expected_.erase(key);
      }
    } else if (got == "canceled" || got == "not_reserved") {
      ++report_->ops_acked;
      if (durable) {
        expected_[key] = false;
      } else {
        expected_.erase(key);
      }
    } else if (got == "full" || got == "wait_list") {
      ++report_->ops_acked;
      expected_.erase(key);
    } else {
      expected_.erase(key);  // unknown — assert neither way
    }
  }

  void TallyAdd(int i) {
    const std::string id = "t" + std::to_string(i);
    const int64_t amount = 1 + (i % 9);
    // Hand-rolled tracked call: one dedup seq for every attempt, replies on
    // the persistent reply port — the ops DoDupReplay can later duplicate.
    const uint64_t seq = world_->client->NextDedupSeq();
    const RemoteCallOptions o = OptionsFor(kRegionNode);
    bool acked = false;
    bool failed = false;
    for (int attempt = 0; attempt < o.max_attempts && !acked && !failed;
         ++attempt) {
      auto sent = clerk()->SendFull(world_->tally_port, "add",
                                    {Value::Str(id), Value::Int(amount)},
                                    world_->tally_reply->name(), PortName{},
                                    seq);
      if (!sent.ok()) {
        break;
      }
      auto got = clerk()->Receive(world_->tally_reply, o.timeout);
      if (!got.ok()) {
        continue;  // timeout: retry with the same seq
      }
      if (got->command == "tally_ok") {
        acked = true;
      } else if (got->command == "tally_fail") {
        failed = true;  // log append failed before apply: definitely not in
      } else {
        break;  // synthesized failure(...): outcome unknown
      }
    }
    if (acked) {
      tally_acked_ += amount;
      acked_tally_.push_back({id, amount, seq});
      ++report_->ops_acked;
    } else if (!failed) {
      tally_unknown_ += amount;
    }
  }

  void NoiseBurst(int i) {
    // Fire-and-forget tracked sends into the annex sink; the only link the
    // generator storms with dup_prob in deterministic mode, so duplicate
    // suppression is exercised without replies racing the verdict.
    for (int k = 0; k < 4; ++k) {
      (void)clerk()->SendFull(
          world_->noise_port, "add",
          {Value::Str("n" + std::to_string(i) + "-" + std::to_string(k)),
           Value::Int(1)},
          PortName{}, PortName{}, world_->client->NextDedupSeq());
    }
  }

  void CancelAndReliable(int i) {
    const int j = i - 4;  // the f1 reserve four ops earlier (j % 6 == 1)
    AirlineOp(world_->f1_port, kFlight1, "cancel", "p" + std::to_string(j),
              kDates[j % kNumDates], kRegionNode);
    ReliableSendOptions ro;
    ro.jitter = 0.0;
    if (Ackable(kRegionNode)) {
      ro.max_attempts = 3;
      // Wide for the same reason as ChaosConfig::op_timeout: a healthy
      // dequeue-ack must never lose to scheduler jitter, or the spurious
      // retransmission skews the grid-compared counts.
      ro.ack_timeout = Millis(200);
    } else {
      ro.max_attempts = 1;
      ro.ack_timeout = Millis(15);
    }
    const int64_t amount = 1 + (i % 9);
    auto res = ReliableSend(*clerk(), world_->tally_port, "add",
                            {Value::Str("r" + std::to_string(i)),
                             Value::Int(amount)},
                            ro);
    // The receipt ack fires on dequeue, before the apply: in deterministic
    // mode (no mid-epoch crashes) dequeue implies the apply completes, so
    // the ack is a lower bound; under supervised crashes it is not.
    if (res.ok() && !config_.supervised) {
      tally_acked_ += amount;
      ++report_->ops_acked;
    } else {
      tally_unknown_ += amount;
    }
  }

  struct TallyOp {
    std::string id;
    int64_t amount = 0;
    uint64_t seq = 0;
  };

  const ChaosConfig& config_;
  ChaosWorld* world_;
  ChaosReport* report_;
  SimulatedClock* sim_ = nullptr;  // null in wall-clock runs
  const uint64_t chaos_trace_;

  int op_index_ = 0;
  bool armed_ = false;
  bool reorder_active_ = false;  // a HoldLink is capturing packets

  // Schedule-mirrored link state.
  bool campus_cut_ = false;
  bool annex_store_failed_ = false;
  std::set<std::pair<NodeId, NodeId>> sym_cuts_;
  std::set<std::pair<NodeId, NodeId>> oneway_cuts_;

  // Workload truth tracking.
  std::map<Key, bool> expected_;
  std::set<Key> attempted_;
  std::vector<std::string> doomed_ids_;  // overload-storm ops; must never run
  std::vector<TallyOp> acked_tally_;
  int64_t tally_acked_ = 0;
  int64_t tally_unknown_ = 0;

 public:
  void EndEpoch(int epoch);
  void Epilogue();
  void CheckEpoch(int epoch);
  void CheckFinal();
  void FillCounts();
  void BuildFailureDump();
  int64_t BankSum(bool* ok);
  void CheckPacketConservation(int epoch);
  void CheckFlightInvariants(int epoch, NodeId home, const PortName& port,
                             int64_t flight_no, bool check_permanence);
  void CheckWitnesses(int epoch);
};

void ChaosRun::EndEpoch(int epoch) {
  FaultInjector& injector = FaultInjector::Instance();
  if (armed_) {
    if (injector.triggered()) {
      ++report_->crashes;
    }
    injector.Disarm();
    armed_ = false;
  }
  if (reorder_active_) {
    // Flush the reordering storm before the quiescence barrier: the held
    // packets re-enter the heaps in a seed-shuffled order (so the shuffle
    // is schedule-deterministic, keyed off the epoch) and deliver
    // back-to-back. Conservation and at-most-once must absorb the storm.
    network().ReleaseHeld(config_.seed ^ (0x0DDC0DEull * (epoch + 1)));
    reorder_active_ = false;
  }
  if (config_.supervised) {
    // Let the supervisor finish any in-progress restart before checking.
    Deadline deadline(config_.settle_deadline);
    while (!deadline.Expired() &&
           !(world_->region->IsUp() && world_->annex->IsUp())) {
      for (NodeId id : {kRegionNode, kAnnexNode}) {
        if (world_->supervisor->IsQuarantined(id)) {
          world_->supervisor->Unquarantine(id);
        }
      }
      std::this_thread::sleep_for(Millis(2));
    }
  }
  if (!system().WaitQuiescent(config_.settle_deadline, Millis(2), 3)) {
    AddViolation(epoch, "quiescence", "network would not settle");
    return;
  }
  CheckEpoch(epoch);
}

void ChaosRun::CheckEpoch(int epoch) {
  CheckPacketConservation(epoch);
  if (world_->region->IsUp()) {
    bool ok = false;
    int64_t sum = BankSum(&ok);
    // Mid-run law: money is never created. (In deterministic mode every
    // transfer completes both local legs before the next op, so the sum is
    // exact; under supervised crashes a transfer may be in doubt until the
    // branch's recovery completes it, so only the upper bound holds here.)
    // One timing hole: a client-side RemoteCall timeout can leave the
    // branch mid-transfer *past* the quiescence settle window when the
    // machine is slow enough (tsan runs), so poll briefly to convergence
    // before convicting — a genuine conservation bug never converges.
    Deadline converge(Millis(2000));
    while (ok &&
           (sum > kTotalMoney ||
            (!config_.supervised && sum != kTotalMoney)) &&
           !converge.Expired()) {
      std::this_thread::sleep_for(Millis(2));
      system().WaitQuiescent(Millis(200));
      sum = BankSum(&ok);
    }
    if (ok && sum > kTotalMoney) {
      AddViolation(epoch, "bank.conservation",
                   "balances sum to " + std::to_string(sum) + " > " +
                       std::to_string(kTotalMoney));
    }
    if (ok && !config_.supervised && sum != kTotalMoney) {
      AddViolation(epoch, "bank.conservation",
                   "balances sum to " + std::to_string(sum) + " != " +
                       std::to_string(kTotalMoney));
    }
    CheckFlightInvariants(epoch, kRegionNode, world_->f1_port, kFlight1,
                          /*check_permanence=*/true);
  }
  if (world_->annex->IsUp()) {
    CheckFlightInvariants(epoch, kAnnexNode, world_->f2_port, kFlight2,
                          /*check_permanence=*/true);
  }
  CheckWitnesses(epoch);
}

void ChaosRun::CheckPacketConservation(int epoch) {
  const NetworkStats s = network().stats();
  if (s.packets_delivered + s.packets_dropped !=
      s.packets_sent + s.packets_duplicated) {
    AddViolation(epoch, "net.conservation",
                 "delivered " + std::to_string(s.packets_delivered) +
                     " + dropped " + std::to_string(s.packets_dropped) +
                     " != sent " + std::to_string(s.packets_sent) +
                     " + duplicated " + std::to_string(s.packets_duplicated));
  }
}

int64_t ChaosRun::BankSum(bool* ok) {
  int64_t sum = 0;
  for (const PortName& port : world_->accounts) {
    auto* account = dynamic_cast<AccountGuardian*>(
        world_->region->FindGuardian(port.guardian));
    if (account == nullptr) {
      *ok = false;
      return 0;
    }
    sum += account->BalanceForTesting();
  }
  *ok = true;
  return sum;
}

void ChaosRun::CheckFlightInvariants(int epoch, NodeId home,
                                     const PortName& port, int64_t flight_no,
                                     bool check_permanence) {
  FlightGuardian* flight = Flight(home, port);
  if (flight == nullptr) {
    // Mid-run a supervised node can be between FinishCrash and recovery;
    // only the final pass treats a missing guardian as a violation.
    if (epoch < 0) {
      AddViolation(epoch, "airline.recovery",
                   "flight " + std::to_string(flight_no) +
                       " missing after settle");
    }
    return;
  }
  const FlightDb db = flight->SnapshotDb();
  if (!db.CheckInvariants()) {
    AddViolation(epoch, "airline.db",
                 "flight " + std::to_string(flight_no) +
                     ": FlightDb invariants violated");
  }
  for (const char* date : kDates) {
    const auto passengers = db.Passengers(date);
    if (passengers.size() > static_cast<size_t>(kFlightCapacity)) {
      AddViolation(epoch, "airline.oversell",
                   "flight " + std::to_string(flight_no) + " date " + date +
                       ": " + std::to_string(passengers.size()) + " seats of " +
                       std::to_string(kFlightCapacity));
    }
    for (const std::string& passenger : passengers) {
      if (attempted_.count({flight_no, passenger, date}) == 0) {
        AddViolation(epoch, "airline.phantom",
                     "flight " + std::to_string(flight_no) + ": " + passenger +
                         "/" + date + " was never requested");
      }
    }
  }
  if (!check_permanence) {
    return;
  }
  for (const auto& [key, present] : expected_) {
    const auto& [kf, passenger, date] = key;
    if (kf != flight_no) {
      continue;
    }
    if (db.IsReserved(passenger, date) != present) {
      AddViolation(epoch, "airline.permanence",
                   "flight " + std::to_string(flight_no) + ": acked " +
                       (present ? "reserve" : "cancel") + " of " + passenger +
                       "/" + date + " not honored");
    }
  }
}

void ChaosRun::CheckWitnesses(int epoch) {
  if (world_->region->IsUp()) {
    TallyGuardian* tally = Tally();
    if (tally != nullptr) {
      const uint64_t doubles = tally->double_applies();
      // A crash between a guardian's own log append and the dedup-journal
      // append legitimately lets one client retry re-execute, so the
      // supervised bound is `crashes`; deterministic crashes are quiescent
      // and must never leak a duplicate.
      const uint64_t bound = config_.supervised ? report_->crashes : 0;
      if (doubles > bound) {
        AddViolation(epoch, "tally.double_apply",
                     std::to_string(doubles) +
                         " duplicate non-idempotent effects (bound " +
                         std::to_string(bound) + ")");
      }
      // §16 invariant: no expired op produces an effect. Every overload-
      // storm add was doomed by construction (a 1us budget against a
      // >=60us link), so its id must never enter the witness's seen set.
      for (const std::string& id : doomed_ids_) {
        if (tally->Saw(id)) {
          AddViolation(epoch, "deadline.expired_effect",
                       "doomed op " + id +
                           " executed despite an expired budget");
        }
      }
    }
  }
  if (!config_.supervised && world_->annex->IsUp()) {
    TallyGuardian* noise = Noise();
    if (noise != nullptr && noise->double_applies() != 0) {
      AddViolation(epoch, "noise.double_apply",
                   std::to_string(noise->double_applies()) +
                       " duplicate fire-and-forget effects");
    }
  }
}

void ChaosRun::Epilogue() {
  FaultInjector::Instance().Disarm();
  armed_ = false;
  if (reorder_active_) {
    network().ReleaseHeld(config_.seed ^ 0x0DDC0DEull);
    reorder_active_ = false;
  }
  // Unconditionally heal *everything*, whether or not the schedule cut it:
  // this is what makes any subset of a sane schedule sane, which the
  // shrinker depends on. The call count is fixed, so link_epoch stays
  // grid-comparable.
  Network& net = network();
  const NodeId pairs[3][2] = {{kRegionNode, kAnnexNode},
                              {kRegionNode, kClientNode},
                              {kAnnexNode, kClientNode}};
  for (const auto& p : pairs) {
    net.SetPartitioned(p[0], p[1], false);
    net.SetPartitionedOneWay(p[0], p[1], false);
    net.SetPartitionedOneWay(p[1], p[0], false);
  }
  PartitionCampuses(net, world_->topology, 0, 1, false);
  net.SetLink(kClientNode, kRegionNode, WanParams());
  net.SetLink(kClientNode, kAnnexNode, WanParams());
  world_->annex->stable_store().SetFailed(false);
  world_->region->stable_store().SetFailed(false);
  campus_cut_ = false;
  annex_store_failed_ = false;
  sym_cuts_.clear();
  oneway_cuts_.clear();

  if (!config_.supervised) {
    for (NodeRuntime* node : {world_->region, world_->annex}) {
      if (!node->IsUp()) {
        Status up = node->Restart();
        if (!up.ok()) {
          AddViolation(-1, "settle.restart", up.ToString());
        }
      }
    }
    if (config_.sim_time) {
      // The reliable-send receipt ack fires on dequeue, before the apply.
      // On the wall clock the apply always wins the race to CheckFinal,
      // but on simulated time the tally guardian can still be inside a
      // virtual store-latency sleep while the harness runs ahead in real
      // time. A read probe is FIFO-ordered behind every pending add on
      // the port, so its reply means sum() is final.
      Deadline deadline(config_.settle_deadline);
      RemoteCallOptions probe;
      probe.timeout = config_.op_timeout;
      bool tally_ok = false;
      while (!deadline.Expired() && !tally_ok) {
        auto r = RemoteCall(*clerk(), world_->tally_port, "read", {},
                            TallyReplyType(), probe);
        tally_ok = r.ok() && r->command == "tally_ok";
      }
      if (!tally_ok) {
        AddViolation(-1, "settle.probe", "tally never answered the probe");
      }
    }
  } else {
    Deadline deadline(config_.settle_deadline);
    while (!deadline.Expired() &&
           !(world_->region->IsUp() && world_->annex->IsUp())) {
      for (NodeId id : {kRegionNode, kAnnexNode}) {
        if (world_->supervisor->IsQuarantined(id)) {
          world_->supervisor->Unquarantine(id);
        }
      }
      std::this_thread::sleep_for(Millis(2));
    }
    if (!world_->region->IsUp() || !world_->annex->IsUp()) {
      AddViolation(-1, "settle.nodes", "a node never came back up");
      return;
    }
    // Probe both applications end to end before judging permanence.
    RemoteCallOptions probe;
    probe.timeout = config_.op_timeout;
    bool region_ok = false;
    bool annex_ok = false;
    while (!deadline.Expired() && !(region_ok && annex_ok)) {
      if (!region_ok) {
        auto r = RemoteCall(*clerk(), world_->tally_port, "read", {},
                            TallyReplyType(), probe);
        region_ok = r.ok() && r->command == "tally_ok";
      }
      if (!annex_ok) {
        auto r = RemoteCall(*clerk(), world_->f2_port, "flight_stats",
                            {Value::Str("manager")}, ReservationReplyType(),
                            probe);
        annex_ok = r.ok() && r->command == "stats_info";
      }
    }
    if (!region_ok || !annex_ok) {
      AddViolation(-1, "settle.probe", "applications never answered probes");
    }
  }
  system().WaitQuiescent(config_.settle_deadline, Millis(2), 3);
}

void ChaosRun::CheckFinal() {
  CheckPacketConservation(-1);
  // Exact conservation: recovery completes every in-doubt transfer, so the
  // sum must converge to the initial total within the settle budget.
  Deadline deadline(config_.settle_deadline);
  bool ok = false;
  int64_t sum = BankSum(&ok);
  while ((!ok || sum != kTotalMoney) && !deadline.Expired()) {
    std::this_thread::sleep_for(Millis(2));
    system().WaitQuiescent(Millis(500));
    sum = BankSum(&ok);
  }
  if (!ok) {
    AddViolation(-1, "bank.conservation", "account guardians missing");
  } else if (sum != kTotalMoney) {
    AddViolation(-1, "bank.conservation",
                 "final balances sum to " + std::to_string(sum) + " != " +
                     std::to_string(kTotalMoney));
  }
  CheckFlightInvariants(-1, kRegionNode, world_->f1_port, kFlight1, true);
  CheckFlightInvariants(-1, kAnnexNode, world_->f2_port, kFlight2, true);
  CheckWitnesses(-1);

  TallyGuardian* tally = Tally();
  if (tally == nullptr) {
    AddViolation(-1, "tally.recovery", "tally guardian missing after settle");
  } else {
    const int64_t tally_sum = tally->sum();
    if (tally_sum < tally_acked_ ||
        tally_sum > tally_acked_ + tally_unknown_) {
      AddViolation(-1, "tally.bounds",
                   "sum " + std::to_string(tally_sum) + " outside [" +
                       std::to_string(tally_acked_) + ", " +
                       std::to_string(tally_acked_ + tally_unknown_) + "]");
    }
  }

  // Metric ledger identities.
  MetricsRegistry& m = metrics();
  const uint64_t calls = m.CounterValue("sendprims.reliable.calls");
  const uint64_t outcomes = m.CounterValue("sendprims.reliable.ok") +
                            m.CounterValue("sendprims.reliable.exhausted") +
                            m.CounterValue("sendprims.reliable.deadline_exceeded") +
                            m.CounterValue("sendprims.reliable.hard_fail");
  if (calls != outcomes) {
    AddViolation(-1, "ledger.reliable",
                 "calls " + std::to_string(calls) + " != outcome sum " +
                     std::to_string(outcomes));
  }
  const NetworkStats s = network().stats();
  const uint64_t dup_injected = m.CounterValue("net.dup.injected");
  if (dup_injected != s.packets_duplicated) {
    AddViolation(-1, "ledger.dup",
                 "net.dup.injected " + std::to_string(dup_injected) +
                     " != packets_duplicated " +
                     std::to_string(s.packets_duplicated));
  }
  uint64_t enq = 0;
  uint64_t done = 0;
  for (int k = 0; k < 64; ++k) {
    const std::string prefix = "net.shard." + std::to_string(k) + ".";
    enq += m.CounterValue(prefix + "enqueued");
    done += m.CounterValue(prefix + "delivered") +
            m.CounterValue(prefix + "dropped");
  }
  if (enq != done) {
    AddViolation(-1, "ledger.shards",
                 "enqueued " + std::to_string(enq) +
                     " != delivered+dropped " + std::to_string(done));
  }
}

void ChaosRun::FillCounts() {
  ChaosCounts& c = report_->counts;
  c.net = network().stats();
  MetricsRegistry& m = metrics();
  for (int k = 0; k < 64; ++k) {
    c.delivered +=
        m.CounterValue("net.shard." + std::to_string(k) + ".delivered");
  }
  for (NodeRuntime* node : {world_->region, world_->annex, world_->client}) {
    const NodeStats ns = node->stats();
    c.executions += ns.messages_delivered;
    c.suppressed += ns.duplicates_suppressed;
    c.replayed += ns.replies_replayed;
  }
  c.partition_drops = m.CounterValue("net.drop.partition");
  c.oneway_partition_drops = m.CounterValue("net.drop.partition_oneway");
  c.link_epochs = network().link_epoch();
  if (config_.supervised) {
    report_->recoveries = m.CounterValue("supervisor.restarts");
  }
}

void ChaosRun::BuildFailureDump() {
  std::string d = "chaos seed " + std::to_string(config_.seed) +
                  (config_.supervised ? " (supervised)" : " (deterministic)") +
                  "\nschedule (" + std::to_string(report_->schedule.size()) +
                  " events):\n";
  for (const ChaosEvent& ev : report_->schedule) {
    d += "  " + ev.Describe() + "\n";
  }
  d += "violations:\n";
  for (const ChaosViolation& v : report_->violations) {
    d += "  [epoch " + std::to_string(v.epoch) + "] " + v.invariant + ": " +
         v.detail + "\n";
  }
  d += system().traces().DumpTrace(chaos_trace_);
  report_->failure_dump = d;
}

}  // namespace

// --- Public types -----------------------------------------------------------

std::string ChaosEvent::Describe() const {
  const std::string na = "n" + std::to_string(a);
  const std::string pair = na + "<->n" + std::to_string(b);
  const std::string arrow = na + "->n" + std::to_string(b);
  std::string what;
  switch (kind) {
    case ChaosEventKind::kPartition:
      what = "partition " + pair;
      break;
    case ChaosEventKind::kHeal:
      what = "heal " + pair;
      break;
    case ChaosEventKind::kPartitionOneWay:
      what = "cut-oneway " + arrow;
      break;
    case ChaosEventKind::kHealOneWay:
      what = "heal-oneway " + arrow;
      break;
    case ChaosEventKind::kCampusCut:
      what = "campus-cut";
      break;
    case ChaosEventKind::kCampusHeal:
      what = "campus-heal";
      break;
    case ChaosEventKind::kLinkStorm: {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    " loss=%.2f dup=%.2f corrupt=%.2f jitter=%lldus",
                    storm.drop_prob, storm.dup_prob, storm.corrupt_prob,
                    static_cast<long long>(storm.jitter.count()));
      what = "storm " + pair + buf;
      break;
    }
    case ChaosEventKind::kLinkCalm:
      what = "calm " + pair;
      break;
    case ChaosEventKind::kCrash:
      what = "crash " + na;
      if (!crash_point.empty()) {
        what += " @" + crash_point + "#" + std::to_string(nth_hit);
      } else {
        what += " (power)";
      }
      break;
    case ChaosEventKind::kStoreFail:
      what = "store-fail " + na;
      break;
    case ChaosEventKind::kStoreHeal:
      what = "store-heal " + na;
      break;
    case ChaosEventKind::kDupReplay:
      what = "dup-replay";
      break;
    case ChaosEventKind::kClockSkew:
      what = "clock-skew " + na + " " +
             (skew_us >= 0 ? "+" : "") + std::to_string(skew_us) + "us";
      break;
    case ChaosEventKind::kClockDrift: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3fx", drift);
      what = "clock-drift " + na + " " + buf;
      break;
    }
    case ChaosEventKind::kReorderStorm:
      what = "reorder-storm " + pair + " k=" + std::to_string(reorder_k);
      break;
    case ChaosEventKind::kOverloadStorm:
      what = "overload-storm n=" + std::to_string(overload_n);
      break;
  }
  return "e" + std::to_string(epoch) + " " + what;
}

std::string ChaosCounts::Diff(const ChaosCounts& other) const {
  std::string out;
  auto cmp = [&out](const char* name, uint64_t x, uint64_t y) {
    if (x != y) {
      out += std::string(name) + ": " + std::to_string(x) + " vs " +
             std::to_string(y) + "\n";
    }
  };
  cmp("packets_sent", net.packets_sent, other.net.packets_sent);
  cmp("packets_delivered", net.packets_delivered, other.net.packets_delivered);
  cmp("packets_dropped", net.packets_dropped, other.net.packets_dropped);
  cmp("packets_corrupted", net.packets_corrupted, other.net.packets_corrupted);
  cmp("packets_duplicated", net.packets_duplicated,
      other.net.packets_duplicated);
  cmp("bytes_sent", net.bytes_sent, other.net.bytes_sent);
  cmp("delivered", delivered, other.delivered);
  cmp("executions", executions, other.executions);
  cmp("suppressed", suppressed, other.suppressed);
  cmp("replayed", replayed, other.replayed);
  cmp("partition_drops", partition_drops, other.partition_drops);
  cmp("oneway_partition_drops", oneway_partition_drops,
      other.oneway_partition_drops);
  cmp("link_epochs", link_epochs, other.link_epochs);
  return out;
}

bool ChaosCounts::Equal(const ChaosCounts& other) const {
  return Diff(other).empty();
}

std::string ChaosReport::Summary() const {
  std::string out = "seed " + std::to_string(seed) + ": " +
                    std::to_string(events_applied) + " events, " +
                    std::to_string(crashes) + " crashes, " +
                    std::to_string(recoveries) + " recoveries, " +
                    std::to_string(dup_replays) + " dup-replays, " +
                    std::to_string(ops_acked) + "/" +
                    std::to_string(ops_attempted) + " ops acked, " +
                    std::to_string(violations.size()) + " violations";
  for (const ChaosViolation& v : violations) {
    out += "\n  [epoch " + std::to_string(v.epoch) + "] " + v.invariant +
           ": " + v.detail;
  }
  return out;
}

// --- Engine -----------------------------------------------------------------

ChaosEngine::ChaosEngine(ChaosConfig config) : config_(config) {}

namespace {

LinkParams StormParams(Rng& g, bool allow_dup) {
  LinkParams p;
  p.latency = Micros(static_cast<int64_t>(150 + g.NextBelow(300)));
  p.jitter = Micros(static_cast<int64_t>(100 + g.NextBelow(400)));
  p.drop_prob = 0.05 + 0.15 * g.NextDouble();
  p.corrupt_prob = 0.01 + 0.05 * g.NextDouble();
  p.dup_prob = allow_dup ? 0.05 + 0.15 * g.NextDouble() : 0.0;
  return p;
}

}  // namespace

std::vector<ChaosEvent> ChaosEngine::GenerateSchedule() const {
  Rng g(config_.seed ^ 0xC0A05EEDull);
  // The sim-time chapter draws from its own stream so the wall-mode menu
  // sees the exact same draws whether or not sim_time is set: the wall
  // events of a sim schedule equal the wall schedule for the same seed.
  Rng sim_g(config_.seed ^ 0x51D0C10Cull);
  // Overload storms draw from a third independent stream for the same
  // reason: adding them must leave every pre-existing wall and sim draw
  // for a seed untouched (the new events only append to the schedule).
  Rng ov_g(config_.seed ^ 0x0BADD11Eull);
  std::vector<ChaosEvent> out;
  // Heals scheduled against faults already emitted, keyed by target epoch.
  std::multimap<int, ChaosEvent> pending;
  const int last = config_.epochs - 1;
  // Generator-side mirror, to keep every emitted schedule well-formed
  // (no double cut of one pair, no crash of a store-failed node, ...).
  bool campus_cut = false;
  bool store_failed = false;
  std::set<std::pair<NodeId, NodeId>> sym;
  std::set<std::pair<NodeId, NodeId>> oneway;
  std::set<std::pair<NodeId, NodeId>> stormed;
  auto sym_key = [](NodeId a, NodeId b) {
    return std::make_pair(std::min(a, b), std::max(a, b));
  };
  // Supervised crash menu: "" is a plain power failure; the rest are armed
  // crashpoints inside durability windows (log append, reserve logging,
  // the dedup journal, checkpointing).
  const char* const kCrashSites[] = {
      "", "wal.append.after_frame", "flight.reserve.before_log",
      "node.dedup.before_journal", "wal.checkpoint.after_snapshot"};

  // Epoch 0 is a clean warm-up (the dup-replay pool needs an acked op);
  // the last epoch is heal-only cool-down.
  for (int e = 1; e <= last; ++e) {
    for (auto it = pending.begin();
         it != pending.end() && it->first <= e;) {
      ChaosEvent heal = it->second;
      heal.epoch = e;
      switch (heal.kind) {
        case ChaosEventKind::kHeal:
          sym.erase(sym_key(heal.a, heal.b));
          break;
        case ChaosEventKind::kHealOneWay:
          oneway.erase({heal.a, heal.b});
          break;
        case ChaosEventKind::kCampusHeal:
          campus_cut = false;
          break;
        case ChaosEventKind::kLinkCalm:
          stormed.erase(sym_key(heal.a, heal.b));
          break;
        case ChaosEventKind::kStoreHeal:
          store_failed = false;
          break;
        default:
          break;
      }
      out.push_back(heal);
      it = pending.erase(it);
    }
    if (e == last) {
      continue;  // cool-down: heals only
    }
    bool crashed_this_epoch = false;
    const int faults = static_cast<int>(g.NextBelow(3));  // 0..2 new faults
    for (int k = 0; k < faults; ++k) {
      const int heal_after = 1 + static_cast<int>(g.NextBelow(2));
      const int heal_epoch = std::min(last, e + heal_after);
      switch (g.NextBelow(8)) {
        case 0:
        case 1: {
          const NodeId x = g.NextBool(0.5) ? kRegionNode : kAnnexNode;
          if (campus_cut || sym.count(sym_key(kClientNode, x)) > 0 ||
              oneway.count({kClientNode, x}) > 0 ||
              oneway.count({x, kClientNode}) > 0) {
            break;
          }
          sym.insert(sym_key(kClientNode, x));
          out.push_back({ChaosEventKind::kPartition, e, kClientNode, x});
          pending.emplace(heal_epoch, ChaosEvent{ChaosEventKind::kHeal,
                                                 heal_epoch, kClientNode, x});
          break;
        }
        case 2: {
          const NodeId x = g.NextBool(0.5) ? kRegionNode : kAnnexNode;
          const bool cut_requests = g.NextBool(0.5);
          const NodeId from = cut_requests ? kClientNode : x;
          const NodeId to = cut_requests ? x : kClientNode;
          if (campus_cut || sym.count(sym_key(kClientNode, x)) > 0 ||
              oneway.count({from, to}) > 0) {
            break;
          }
          oneway.insert({from, to});
          out.push_back({ChaosEventKind::kPartitionOneWay, e, from, to});
          pending.emplace(heal_epoch,
                          ChaosEvent{ChaosEventKind::kHealOneWay, heal_epoch,
                                     from, to});
          break;
        }
        case 3: {
          if (campus_cut || !sym.empty() || !oneway.empty()) {
            break;
          }
          campus_cut = true;
          // Campus cuts heal after exactly one epoch: they silence the
          // whole workload, so longer would just burn wall time.
          const int ch = std::min(last, e + 1);
          out.push_back({ChaosEventKind::kCampusCut, e});
          pending.emplace(ch, ChaosEvent{ChaosEventKind::kCampusHeal, ch});
          break;
        }
        case 4: {
          // Storm the fire-and-forget noise link; dup is always safe there.
          const LinkParams storm = StormParams(g, /*allow_dup=*/true);
          if (stormed.count(sym_key(kClientNode, kAnnexNode)) > 0) {
            break;
          }
          stormed.insert(sym_key(kClientNode, kAnnexNode));
          ChaosEvent ev{ChaosEventKind::kLinkStorm, e, kClientNode,
                        kAnnexNode};
          ev.storm = storm;
          out.push_back(ev);
          pending.emplace(heal_epoch,
                          ChaosEvent{ChaosEventKind::kLinkCalm, heal_epoch,
                                     kClientNode, kAnnexNode});
          break;
        }
        case 5: {
          // Storm the RPC link. Duplicated tracked requests race the
          // suppress-vs-replay verdict (a replay resends the cached
          // reply), so dup here is only allowed when counts are not being
          // compared across the grid.
          const LinkParams storm = StormParams(g, config_.supervised);
          if (stormed.count(sym_key(kClientNode, kRegionNode)) > 0) {
            break;
          }
          stormed.insert(sym_key(kClientNode, kRegionNode));
          ChaosEvent ev{ChaosEventKind::kLinkStorm, e, kClientNode,
                        kRegionNode};
          ev.storm = storm;
          out.push_back(ev);
          pending.emplace(heal_epoch,
                          ChaosEvent{ChaosEventKind::kLinkCalm, heal_epoch,
                                     kClientNode, kRegionNode});
          break;
        }
        case 6: {
          const NodeId target = g.NextBool(0.5) ? kRegionNode : kAnnexNode;
          const uint64_t site = g.NextBelow(5);
          const uint64_t nth = 1 + g.NextBelow(2);
          // A restart against a failing store would fail (recovery writes);
          // that is a harness artifact, not a system bug, so avoid it.
          if (crashed_this_epoch ||
              (target == kAnnexNode && store_failed)) {
            break;
          }
          crashed_this_epoch = true;
          ChaosEvent ev{ChaosEventKind::kCrash, e, target};
          if (config_.supervised) {
            ev.crash_point = kCrashSites[site];
            ev.nth_hit = nth;
          }
          out.push_back(ev);
          break;
        }
        case 7: {
          if (store_failed) {
            break;
          }
          store_failed = true;
          out.push_back({ChaosEventKind::kStoreFail, e, kAnnexNode});
          pending.emplace(heal_epoch,
                          ChaosEvent{ChaosEventKind::kStoreHeal, heal_epoch,
                                     kAnnexNode});
          break;
        }
        default:
          break;
      }
    }
    if (e >= 2 && g.NextBool(0.35)) {
      out.push_back({ChaosEventKind::kDupReplay, e});
    }
    if (ov_g.NextBool(0.35)) {
      // Doomed-by-construction overload bursts (clock-agnostic, so part
      // of the wall menu): see ChaosRun::DoOverloadStorm.
      ChaosEvent ev{ChaosEventKind::kOverloadStorm, e};
      ev.overload_n = 4 + ov_g.NextBelow(5);
      out.push_back(ev);
    }
    // Simulated-time chapter: appended after the wall-mode menu for the
    // epoch and drawn from the independent sim_g stream, so a seed's wall
    // schedule is byte-identical with sim_time on or off (the pinned-seed
    // counts in ci.sh depend on the wall half never moving).
    if (config_.sim_time) {
      if (sim_g.NextBool(0.45)) {
        ChaosEvent ev{ChaosEventKind::kClockSkew, e};
        ev.a = static_cast<NodeId>(1 + sim_g.NextBelow(3));
        const bool forward = sim_g.NextBool(0.5);
        const int64_t mag =
            static_cast<int64_t>(1000 + sim_g.NextBelow(2'000'000));
        ev.skew_us = forward ? mag : -mag;
        out.push_back(ev);
      }
      if (sim_g.NextBool(0.3)) {
        ChaosEvent ev{ChaosEventKind::kClockDrift, e};
        ev.a = static_cast<NodeId>(1 + sim_g.NextBelow(3));
        // 0.5x .. 2.0x in deterministic 1/16 steps; never exactly the
        // degenerate near-zero rates the clock clamps anyway.
        ev.drift = 0.5 + 0.0625 * static_cast<double>(sim_g.NextBelow(25));
        out.push_back(ev);
      }
      if (sim_g.NextBool(0.3)) {
        // Reordering storms ride the fire-and-forget noise link: held
        // packets deliver late (after the epoch's ops), so a link whose
        // senders wait for replies would read every hold as a timeout.
        ChaosEvent ev{ChaosEventKind::kReorderStorm, e, kClientNode,
                      kAnnexNode};
        ev.reorder_k = 2 + sim_g.NextBelow(7);
        out.push_back(ev);
      }
    }
  }
  return out;
}

ChaosReport ChaosEngine::Run() { return RunSchedule(GenerateSchedule()); }

ChaosReport ChaosEngine::RunSchedule(const std::vector<ChaosEvent>& schedule) {
  ChaosReport report;
  report.seed = config_.seed;
  report.schedule = schedule;
  NodeRuntime::SetSkipDedupJournalForTesting(config_.plant_dedup_bug);
  NodeRuntime::SetDedupSweepOnLocalClockForTesting(config_.plant_clock_bug);
  // The virtual clock must outlive the world (every wait in it is
  // registered here) and its auto-stepper runs for the whole lifetime:
  // any phase of the run — construction, workload, teardown — may block
  // on a virtual deadline only a step can cross.
  std::unique_ptr<SimulatedClock> sim;
  if (config_.sim_time) {
    sim = std::make_unique<SimulatedClock>();
    sim->StartAutoStep(kAutoStepQuiet);
  }
  {
    auto world = BuildWorld(config_, sim.get());
    if (!world.ok()) {
      NodeRuntime::SetSkipDedupJournalForTesting(false);
      NodeRuntime::SetDedupSweepOnLocalClockForTesting(false);
      report.violations.push_back(
          {-1, "harness.build", world.status().ToString()});
      return report;
    }
    ChaosRun run(config_, world->get(), &report, sim.get());
    run.Execute(schedule);
    if ((*world)->supervisor) {
      (*world)->supervisor->Stop();
    }
  }
  if (sim) {
    sim->StopAutoStep();
  }
  NodeRuntime::SetSkipDedupJournalForTesting(false);
  NodeRuntime::SetDedupSweepOnLocalClockForTesting(false);
  return report;
}

// --- Shrinker ---------------------------------------------------------------

ShrinkResult ShrinkSchedule(const ChaosConfig& config,
                            const std::vector<ChaosEvent>& failing) {
  ShrinkResult result;
  result.minimal = failing;
  ChaosEngine engine(config);
  // ddmin chunk removal (Zeller & Hildebrandt): split the schedule into n
  // chunks and try dropping whole chunks, doubling n only when no chunk is
  // removable. A 12-event schedule whose failure needs two events sheds
  // its decoys a half/quarter at a time instead of one event per O(n)
  // scan; at n == size the granularity is single events, so the loop
  // can only exit 1-minimal (every remaining event was proven necessary).
  // The engine's always-heal epilogue makes every subset a sane schedule.
  auto fails = [&](const std::vector<ChaosEvent>& candidate) {
    ++result.runs;
    ChaosReport attempt = engine.RunSchedule(candidate);
    if (!attempt.ok()) {
      result.final_report = std::move(attempt);
      return true;
    }
    return false;
  };
  size_t n = 2;
  while (result.minimal.size() >= 2) {
    const size_t len = result.minimal.size();
    n = std::min(n, len);
    bool reduced = false;
    for (size_t chunk = 0; chunk < n; ++chunk) {
      const size_t begin = chunk * len / n;
      const size_t end = (chunk + 1) * len / n;
      std::vector<ChaosEvent> candidate;
      candidate.reserve(len - (end - begin));
      candidate.insert(candidate.end(), result.minimal.begin(),
                       result.minimal.begin() + static_cast<long>(begin));
      candidate.insert(candidate.end(),
                       result.minimal.begin() + static_cast<long>(end),
                       result.minimal.end());
      if (fails(candidate)) {
        result.minimal = std::move(candidate);
        // Complement of chunk i under granularity n has n-1 natural
        // chunks; restarting there re-tests every surviving chunk.
        n = n > 2 ? n - 1 : 2;
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= len) {
        break;  // single-event granularity, nothing removable: 1-minimal
      }
      n = std::min(2 * n, len);
    }
  }
  if (result.final_report.violations.empty()) {
    // Nothing was removable (or the schedule was already minimal): the
    // final report must still describe the minimal schedule's failure.
    result.final_report = engine.RunSchedule(result.minimal);
    ++result.runs;
  }
  return result;
}

}  // namespace guardians
