#include "src/fault/explorer.h"

#include <memory>
#include <set>
#include <tuple>
#include <utility>

#include "src/airline/flight_guardian.h"
#include "src/airline/types.h"
#include "src/guardian/system.h"
#include "src/sendprims/remote_call.h"

namespace guardians {
namespace {

const char* const kDates[] = {"d0", "d1", "d2"};
constexpr int kNumDates = 3;
constexpr int64_t kFlight1 = 1;
constexpr int64_t kFlight2 = 2;

// One disposable universe per schedule: a region node running the flight
// guardians under supervision, and a client node driving them. Member
// order matters — the supervisor is declared last so it stops (and
// uninstalls its health oracle) before the System it watches dies.
struct CrashWorld {
  explicit CrashWorld(const SystemConfig& config) : system(config) {}

  System system;
  NodeRuntime* region = nullptr;
  NodeRuntime* client = nullptr;
  Guardian* clerk = nullptr;
  PortName f1_port;
  std::unique_ptr<Supervisor> supervisor;
};

FlightConfig MakeFlightConfig(const ExplorerConfig& config,
                              int64_t flight_no) {
  FlightConfig fc;
  fc.flight_no = flight_no;
  // Huge so "full"/"wait_list" never muddy the expected-state bookkeeping.
  fc.capacity = 1 << 20;
  fc.organization = FlightOrganization::kOneAtATime;
  fc.logging = true;
  fc.checkpoint_every = config.checkpoint_every;
  return fc;
}

Result<std::unique_ptr<CrashWorld>> BuildWorld(const ExplorerConfig& config) {
  SystemConfig sc;
  sc.seed = config.seed;
  sc.default_link.latency = Micros(100);
  sc.default_link.dup_prob = config.dup_prob;
  auto world = std::make_unique<CrashWorld>(sc);
  world->region = &world->system.AddNode("region");
  world->client = &world->system.AddNode("client");
  world->region->RegisterGuardianType("flight", MakeFactory<FlightGuardian>());
  world->region->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  world->client->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());

  auto clerk = world->client->Create<ShellGuardian>("shell", "clerk", {});
  GUARDIANS_RETURN_IF_ERROR(clerk.status());
  world->clerk = *clerk;

  auto f1 = world->region->Create<FlightGuardian>(
      "flight", "f1", MakeFlightConfig(config, kFlight1).ToArgs(),
      /*persistent=*/true);
  GUARDIANS_RETURN_IF_ERROR(f1.status());
  world->f1_port = (*f1)->ProvidedPorts()[0];

  world->supervisor =
      std::make_unique<Supervisor>(&world->system, config.supervisor);
  // The client node is the test driver; if it ever went down that would be
  // the harness's bug, not a fault to heal.
  world->supervisor->Ignore(world->client->id());
  world->supervisor->Start();
  return world;
}

// What the workload learned from its acks. Keys are (flight, passenger,
// date). An op whose reply was lost is *unknown* — §3.5: "nothing is known
// about the true state of affairs" — so it is asserted neither way, but it
// stays in `attempted` so its effects don't count as phantoms.
struct WorkloadTrace {
  using Key = std::tuple<int64_t, std::string, std::string>;
  std::map<Key, bool> expected;  // true = must be reserved after recovery
  std::set<Key> attempted;
  int acked = 0;
  bool f2_acked = false;
  PortName f2_port;
};

// The airline workload every schedule replays: reserves with periodic
// cancels against f1, a remote persistent creation of f2 halfway through,
// and a final reserve on f2. Deterministic, so the armed run hits every
// crashpoint in the same order as the baseline right up to the crash.
void DriveWorkload(CrashWorld& world, const ExplorerConfig& config,
                   WorkloadTrace& trace) {
  RemoteCallOptions options;
  options.timeout = config.op_timeout;
  options.max_attempts = config.op_attempts;  // rides out the restart

  auto call = [&](const PortName& port, const std::string& command,
                  const std::string& passenger,
                  const std::string& date) -> std::string {
    auto reply = RemoteCall(*world.clerk, port, command,
                            {Value::Str(passenger), Value::Str(date)},
                            ReservationReplyType(), options);
    return reply.ok() ? reply->command : std::string();
  };
  auto track = [&](int64_t flight, const std::string& passenger,
                   const std::string& date, const std::string& got) {
    const WorkloadTrace::Key key{flight, passenger, date};
    trace.attempted.insert(key);
    if (got == "ok" || got == "pre_reserved") {
      trace.expected[key] = true;
      ++trace.acked;
    } else if (got == "canceled" || got == "not_reserved") {
      trace.expected[key] = false;
      ++trace.acked;
    } else {
      trace.expected.erase(key);  // unknown — assert neither way
    }
  };

  for (int i = 0; i < config.ops; ++i) {
    if (i == config.ops / 2) {
      // Remote persistent creation mid-workload: exercises the
      // node.persist_creation / persist_next_id sites from the message
      // path. Creation is not idempotent, but retrying it is: duplicates
      // are suppressed at the region and creation is keyed by guardian
      // name there, so the retries converge on one f2.
      auto ports = CreateGuardianAt(
          *world.clerk, world.region->PrimordialPort(), "flight", "f2",
          MakeFlightConfig(config, kFlight2).ToArgs(),
          /*persistent=*/true, config.op_timeout, config.op_attempts);
      if (ports.ok() && !ports->empty()) {
        trace.f2_acked = true;
        trace.f2_port = (*ports)[0];
        ++trace.acked;
      }
    }
    if (i % 4 == 3) {
      const std::string passenger = "p" + std::to_string(i - 1);
      const std::string date = kDates[(i - 1) % kNumDates];
      track(kFlight1, passenger, date,
            call(world.f1_port, "cancel", passenger, date));
    } else {
      const std::string passenger = "p" + std::to_string(i);
      const std::string date = kDates[i % kNumDates];
      track(kFlight1, passenger, date,
            call(world.f1_port, "reserve", passenger, date));
    }
  }
  if (trace.f2_acked) {
    track(kFlight2, "q0", kDates[0],
          call(trace.f2_port, "reserve", "q0", kDates[0]));
  }
}

Status Fail(const std::string& why) { return Status(Code::kInternal, why); }

// One flight's post-recovery obligations: id and port stability, db
// invariants, acked-op permanence, no phantoms.
Status VerifyFlight(CrashWorld& world, const WorkloadTrace& trace,
                    int64_t flight_no, const PortName& port) {
  auto* recovered = dynamic_cast<FlightGuardian*>(
      world.region->FindGuardian(port.guardian));
  if (recovered == nullptr) {
    return Fail("flight " + std::to_string(flight_no) +
                ": guardian id not stable across crash");
  }
  if (recovered->ProvidedPorts().empty() ||
      !(recovered->ProvidedPorts()[0] == port)) {
    return Fail("flight " + std::to_string(flight_no) +
                ": port name changed across crash");
  }
  const FlightDb db = recovered->SnapshotDb();
  if (!db.CheckInvariants()) {
    return Fail("flight " + std::to_string(flight_no) +
                ": FlightDb invariants violated after recovery");
  }
  for (const auto& [key, present] : trace.expected) {
    const auto& [flight, passenger, date] = key;
    if (flight != flight_no) {
      continue;
    }
    if (db.IsReserved(passenger, date) != present) {
      return Fail("flight " + std::to_string(flight_no) + ": acked " +
                  (present ? "reserve" : "cancel") + " of " + passenger +
                  "/" + date + " did not survive recovery");
    }
  }
  for (const char* date : kDates) {
    for (const std::string& passenger : db.Passengers(date)) {
      if (trace.attempted.count({flight_no, passenger, date}) == 0) {
        return Fail("flight " + std::to_string(flight_no) + ": phantom " +
                    passenger + "/" + date + " after recovery");
      }
    }
  }
  return OkStatus();
}

Status VerifySchedule(CrashWorld& world, const ExplorerConfig& config,
                      const WorkloadTrace& trace) {
  // Wait for the supervisor to bring the region back: the node must be up
  // AND f1 answering (an authorized flight_stats probe round-trips the
  // whole recovered message path).
  Deadline deadline(config.verify_deadline);
  RemoteCallOptions probe;
  probe.timeout = config.op_timeout;
  bool alive = false;
  while (!deadline.Expired()) {
    if (world.region->IsUp()) {
      auto reply =
          RemoteCall(*world.clerk, world.f1_port, "flight_stats",
                     {Value::Str("manager")}, ReservationReplyType(), probe);
      if (reply.ok() && reply->command == "stats_info") {
        alive = true;
        break;
      }
    }
  }
  if (!alive) {
    return Fail("region did not recover within the verify deadline");
  }
  GUARDIANS_RETURN_IF_ERROR(
      VerifyFlight(world, trace, kFlight1, world.f1_port));
  if (trace.f2_acked) {
    // The creation was acked, so the guardian is permanent state too.
    GUARDIANS_RETURN_IF_ERROR(
        VerifyFlight(world, trace, kFlight2, trace.f2_port));
  }
  // Creation-retry convergence: re-issuing the (non-idempotent) remote
  // creation of f2 after recovery must land on ONE guardian, whatever the
  // crash did to the original request — never executed, executed but the
  // ack lost, or logged-but-not-acked. Two back-to-back creations must
  // agree with each other, and with the workload's ack when there was one.
  auto first = CreateGuardianAt(
      *world.clerk, world.region->PrimordialPort(), "flight", "f2",
      MakeFlightConfig(config, kFlight2).ToArgs(),
      /*persistent=*/true, config.op_timeout, config.op_attempts);
  if (!first.ok() || first->empty()) {
    return Fail("post-recovery creation of f2 failed: " +
                first.status().ToString());
  }
  auto second = CreateGuardianAt(
      *world.clerk, world.region->PrimordialPort(), "flight", "f2",
      MakeFlightConfig(config, kFlight2).ToArgs(),
      /*persistent=*/true, config.op_timeout, config.op_attempts);
  if (!second.ok() || second->empty()) {
    return Fail("repeated creation of f2 failed: " +
                second.status().ToString());
  }
  if (!((*first)[0] == (*second)[0])) {
    return Fail("creation retries diverged: two guardians answer to f2");
  }
  if (trace.f2_acked && !((*first)[0] == trace.f2_port)) {
    return Fail("phantom guardian: post-recovery creation of f2 did not "
                "converge on the acked one");
  }
  return OkStatus();
}

ScheduleOutcome RunSchedule(const ExplorerConfig& config,
                            const CrashPlan& plan) {
  ScheduleOutcome out;
  out.plan = plan;
  auto world = BuildWorld(config);
  if (!world.ok()) {
    out.verdict = world.status();
    return out;
  }
  FaultInjector& injector = FaultInjector::Instance();
  NodeRuntime* region = (*world)->region;
  // Arm after the world is built so hit ordinals line up with the baseline
  // count window. The crash action is BeginCrash only: the faulting thread
  // takes the node down and unwinds; the supervisor (not the harness)
  // finishes the crash and restarts the node.
  Status armed =
      injector.Arm(plan, region, [region] { region->BeginCrash(); });
  if (!armed.ok()) {
    out.verdict = armed;
    return out;
  }
  WorkloadTrace trace;
  DriveWorkload(**world, config, trace);
  out.triggered = injector.triggered();
  injector.Disarm();
  out.acked = trace.acked;
  out.verdict = VerifySchedule(**world, config, trace);
  if (out.verdict.ok() && !out.triggered) {
    out.verdict = Fail("armed crashpoint was never reached (" + plan.point +
                       " hit " + std::to_string(plan.nth_hit) + ")");
  }
  Histogram* recovery =
      (*world)->system.metrics().histogram("supervisor.recovery_us");
  if (recovery->count() > 0) {
    out.recovery = Micros(static_cast<int64_t>(
        recovery->sum() / recovery->count()));
  }
  return out;
}

}  // namespace

SupervisorConfig ExplorerConfig::FastSupervisor() {
  SupervisorConfig sc;
  sc.poll_interval = Millis(2);
  sc.initial_backoff = Millis(2);
  sc.max_backoff = Millis(50);
  sc.rapid_window = Millis(300);
  // Each schedule crashes once (the trigger latches), so quarantine should
  // stay out of the way even if recovery itself re-trips the site.
  sc.quarantine_strikes = 8;
  return sc;
}

std::string ExplorerReport::Summary() const {
  std::string out = std::to_string(schedules.size()) + " schedules over " +
                    std::to_string(baseline_hits.size()) + " sites, " +
                    std::to_string(triggered) + " triggered, " +
                    std::to_string(failures) + " failures";
  if (mean_recovery_us > 0) {
    out += ", mean recovery " +
           std::to_string(static_cast<int64_t>(mean_recovery_us)) + "us";
  }
  for (const ScheduleOutcome& s : schedules) {
    if (!s.verdict.ok()) {
      out += "\n  FAIL " + s.plan.point + " hit " +
             std::to_string(s.plan.nth_hit) + ": " + s.verdict.ToString();
    }
  }
  return out;
}

Result<ExplorerReport> ExploreCrashSchedules(const ExplorerConfig& config) {
  ExplorerReport report;

  // Baseline: run the workload uninjected, counting every crashpoint hit
  // attributable to the region node. The counts define the schedule space.
  {
    auto world = BuildWorld(config);
    GUARDIANS_RETURN_IF_ERROR(world.status());
    FaultInjector::Instance().StartCounting((*world)->region);
    WorkloadTrace trace;
    DriveWorkload(**world, config, trace);
    report.baseline_hits = FaultInjector::Instance().StopCounting();
    // The baseline must itself satisfy the invariants, or every schedule's
    // verdict would be noise.
    auto* f1 = dynamic_cast<FlightGuardian*>(
        (*world)->region->FindGuardian((*world)->f1_port.guardian));
    if (f1 == nullptr || !f1->SnapshotDb().CheckInvariants()) {
      return Status(Code::kInternal, "baseline workload failed");
    }
  }
  // Every registered site appears in the report, hit or not, so coverage
  // gaps are visible rather than silently absent.
  for (const std::string& name : FaultInjector::Instance().SiteNames()) {
    report.baseline_hits.emplace(name, 0);
  }

  double recovery_sum = 0;
  size_t recovery_n = 0;
  for (const auto& [point, hits] : report.baseline_hits) {
    for (uint64_t nth = 1; nth <= hits; ++nth) {
      ScheduleOutcome out = RunSchedule(config, CrashPlan{point, nth});
      if (out.triggered) {
        ++report.triggered;
      }
      if (!out.verdict.ok()) {
        ++report.failures;
      }
      if (out.recovery.count() > 0) {
        recovery_sum += static_cast<double>(out.recovery.count());
        ++recovery_n;
      }
      report.schedules.push_back(std::move(out));
    }
  }
  if (recovery_n > 0) {
    report.mean_recovery_us = recovery_sum / static_cast<double>(recovery_n);
  }
  return report;
}

}  // namespace guardians
