#include "src/fault/crashpoint.h"

#include <algorithm>

namespace guardians {

namespace {
thread_local const void* t_fault_scope = nullptr;
}  // namespace

ScopedFaultScope::ScopedFaultScope(const void* scope)
    : previous_(t_fault_scope) {
  t_fault_scope = scope;
}

ScopedFaultScope::~ScopedFaultScope() { t_fault_scope = previous_; }

const void* ScopedFaultScope::Current() { return t_fault_scope; }

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Register(CrashPoint* point) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.push_back(point);
}

std::vector<std::string> FaultInjector::SiteNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const CrashPoint* point : points_) {
    names.emplace_back(point->name());
  }
  std::sort(names.begin(), names.end());
  return names;
}

void FaultInjector::StartCounting(const void* scope) {
  std::lock_guard<std::mutex> lock(mu_);
  counting_ = true;
  count_scope_ = scope;
  counts_.clear();
  UpdateActiveLocked();
}

std::map<std::string, uint64_t> FaultInjector::StopCounting() {
  std::lock_guard<std::mutex> lock(mu_);
  counting_ = false;
  count_scope_ = nullptr;
  UpdateActiveLocked();
  return std::move(counts_);
}

Status FaultInjector::Arm(const CrashPlan& plan, const void* scope,
                          std::function<void()> on_crash) {
  std::lock_guard<std::mutex> lock(mu_);
  if (armed_point_ != nullptr) {
    return Status(Code::kInvalidArgument,
                  "a crash plan is already armed (" +
                      std::string(armed_point_->name()) + ")");
  }
  if (plan.nth_hit == 0) {
    return Status(Code::kInvalidArgument, "nth_hit is 1-based");
  }
  auto it = std::find_if(points_.begin(), points_.end(),
                         [&plan](const CrashPoint* p) {
                           return plan.point == p->name();
                         });
  if (it == points_.end()) {
    return Status(Code::kNotFound,
                  "no crashpoint named '" + plan.point + "'");
  }
  armed_point_ = *it;
  armed_nth_ = plan.nth_hit;
  armed_hits_ = 0;
  armed_scope_ = scope;
  on_crash_ = std::move(on_crash);
  triggered_.store(false);
  UpdateActiveLocked();
  return OkStatus();
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_point_ = nullptr;
  armed_nth_ = 0;
  armed_hits_ = 0;
  armed_scope_ = nullptr;
  on_crash_ = nullptr;
  UpdateActiveLocked();
}

void FaultInjector::UpdateActiveLocked() {
  internal::g_fault_layer_active.store(counting_ || armed_point_ != nullptr,
                                       std::memory_order_relaxed);
}

void FaultInjector::OnHit(CrashPoint* point) {
  std::function<void()> on_crash;
  uint64_t ordinal = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const void* scope = ScopedFaultScope::Current();
    if (counting_ && scope == count_scope_) {
      ++counts_[point->name()];
    }
    if (armed_point_ == point && !triggered_.load() &&
        scope == armed_scope_) {
      ordinal = ++armed_hits_;
      if (ordinal == armed_nth_) {
        triggered_.store(true);
        on_crash = on_crash_;
      }
    }
  }
  if (ordinal != 0 && ordinal == armed_nth_) {
    // The simulated power failure: take the node down (mailboxes close, no
    // further effect reaches stable storage from this node), then unwind
    // this thread so nothing after the site executes.
    if (on_crash) {
      on_crash();
    }
    throw CrashPointTriggered{point->name(), ordinal};
  }
}

}  // namespace guardians
