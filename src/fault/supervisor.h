// Supervisor: an opt-in per-System watcher that brings crashed nodes back.
//
// The paper leaves "when does a crashed node run its recovery processes"
// to the environment; this is that environment. A background thread polls
// node liveness, restarts a down node after an exponential backoff with
// seeded jitter (so restart herds desynchronize but runs stay
// reproducible), and quarantines a node that keeps crashing right back —
// K rapid failures (a crash within the rapid window of the last recovery,
// or a failed restart) stop the restart loop and mark the node dead.
//
// Quarantine state is exported to the rest of the system two ways: the
// supervisor.* metrics/trace events below, and a health oracle installed
// into the System so FailoverCall can demote known-dead replicas without
// the send primitives ever linking this library.
//
//   supervisor.crashes_detected   down transitions observed
//   supervisor.restarts           successful Restart() calls
//   supervisor.restart_failures   Restart() errors (node re-crashed)
//   supervisor.quarantined        nodes given up on
//   supervisor.backoff_us         backoff waits chosen (histogram)
//   supervisor.recovery_us        Restart() wall time (histogram)
#ifndef GUARDIANS_SRC_FAULT_SUPERVISOR_H_
#define GUARDIANS_SRC_FAULT_SUPERVISOR_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/guardian/system.h"
#include "src/obs/metrics.h"

namespace guardians {

struct SupervisorConfig {
  Micros poll_interval{Millis(5)};
  Micros initial_backoff{Millis(5)};
  Micros max_backoff{Millis(500)};
  double backoff_multiplier = 2.0;
  // Each backoff is scaled by a uniform factor in [1-jitter, 1+jitter].
  double jitter = 0.2;
  // K: strikes before a node is quarantined. A strike is a crash within
  // rapid_window of the last successful recovery, or a failed restart.
  int quarantine_strikes = 5;
  Micros rapid_window{Millis(1000)};
  uint64_t seed = 0x5EED5C0FFEEull;
};

class Supervisor {
 public:
  // Installs the health oracle immediately; the watcher thread only runs
  // between Start() and Stop(). `system` must outlive the supervisor, and
  // the supervisor must be stopped (or destroyed) before the System dies.
  explicit Supervisor(System* system, SupervisorConfig config = {});
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  void Start();
  void Stop();

  // Exempt a node from supervision (e.g. a client node a test crashes on
  // purpose).
  void Ignore(NodeId id);

  bool IsQuarantined(NodeId id) const;
  // Manually mark a node dead / alive again (tests, operators).
  void ForceQuarantine(NodeId id);
  void ClearQuarantine(NodeId id);
  // Operator-grade un-quarantine: like ClearQuarantine, but counted
  // (supervisor.unquarantines) and traced, so a harness that heals a long
  // partition can prove the node rejoined rotation. Without this, K-strike
  // quarantine is permanent — a healed node would stay demoted forever.
  void Unquarantine(NodeId id);

  struct NodeHealth {
    int strikes = 0;
    uint64_t restarts = 0;
    bool quarantined = false;
  };
  NodeHealth Health(NodeId id) const;

 private:
  struct NodeState {
    bool ignored = false;
    bool quarantined = false;
    bool down_seen = false;       // currently handling an outage
    int strikes = 0;
    uint64_t restarts = 0;
    TimePoint restart_at{};       // backoff deadline for the next attempt
    TimePoint last_recovery{};    // when the node last came back up
  };

  void RunLoop();
  void Scan();
  void HandleDown(NodeId id, NodeRuntime& node);
  Micros NextBackoffLocked(int strikes);
  void QuarantineLocked(NodeState& st, NodeId id, const std::string& why);

  System* system_;
  const SupervisorConfig config_;
  // The system's base time source: poll cadence, backoff deadlines and
  // the rapid-crash window all run on it, so a simulated clock drives
  // supervision too (recovery_us_ stays a wall measurement — it reports
  // real Restart() cost, not modeled time).
  const ClockSource* clock_;

  Counter* crashes_detected_;
  Counter* restarts_;
  Counter* restart_failures_;
  Counter* quarantined_count_;
  Counter* unquarantined_count_;
  Histogram* backoff_us_;
  Histogram* recovery_us_;
  uint64_t trace_id_;  // all supervisor.* trace events share one trace

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  Rng rng_;
  std::map<NodeId, NodeState> state_;
  std::thread thread_;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_FAULT_SUPERVISOR_H_
