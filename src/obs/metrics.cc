#include "src/obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace guardians {

Histogram::Histogram(std::vector<uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(uint64_t v) {
  const size_t at = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[at].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  const auto counts = BucketCounts();
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) {
      continue;
    }
    if (i < bounds_.size()) {
      os << "le=" << bounds_[i];
    } else {
      os << "inf";
    }
    os << ": " << counts[i] << "  ";
  }
  os << "(count=" << count() << " sum=" << sum() << ")";
  return os.str();
}

std::vector<uint64_t> Histogram::DefaultLatencyBoundsUs() {
  std::vector<uint64_t> bounds;
  for (uint64_t b = 1; b <= (1ull << 24); b *= 4) {  // 1us .. ~16.8s
    bounds.push_back(b);
  }
  return bounds;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (bounds.empty()) {
      bounds = Histogram::DefaultLatencyBoundsUs();
    }
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it != counters_.end() ? it->second->value() : 0;
}

std::map<std::string, uint64_t> MetricsRegistry::CounterSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = counter->value();
  }
  return out;
}

std::map<std::string, uint64_t> MetricsRegistry::CountersWithPrefix(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> out;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    out[it->first] = it->second->value();
  }
  return out;
}

std::string MetricsRegistry::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    const uint64_t v = counter->value();
    if (v != 0) {
      os << "  " << name << " = " << v << "\n";
    }
  }
  for (const auto& [name, histogram] : histograms_) {
    if (histogram->count() != 0) {
      os << "  " << name << " ~ " << histogram->ToString() << "\n";
    }
  }
  return os.str();
}

}  // namespace guardians
