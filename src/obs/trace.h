// Trace-ID propagation and the bounded in-memory trace buffer.
//
// Every message gets a 64-bit trace id, stamped into the Envelope at the
// first Send of a causal chain and carried through fragmentation,
// reassembly, reply ports, system failure(...) replies and receipt acks.
// Each layer records per-hop events (send, net delivery or drop with
// reason, port enqueue or drop with reason, receive) into the system's
// TraceBuffer, so a lost airline transaction can be followed hop-by-hop
// with DumpTrace(id) — the §3.4 "silent discard" made observable.
//
// Propagation uses a thread-local current trace id: Receive sets it from
// the dequeued message, Send inherits it (or mints a fresh one when the
// thread has no active trace). This matches the process model — a guardian
// process handles one message at a time — and costs nothing on the wire
// beyond the 8-byte envelope field.
#ifndef GUARDIANS_SRC_OBS_TRACE_H_
#define GUARDIANS_SRC_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"

namespace guardians {

// The calling thread's active trace id; 0 means "no active trace". A new
// logical operation (e.g. one clerk transaction) clears it so the next Send
// starts a fresh trace.
uint64_t CurrentTraceId();
void SetCurrentTraceId(uint64_t id);

// The calling thread's inherited deadline: the instant, on the handling
// node's own clock, at which the message currently being processed runs
// out of budget. TimePoint::max() means "no deadline". Receive sets it
// from the dequeued message (unconditionally, so a budget never leaks
// from one message into the next); nested sends (RemoteCall/FailoverCall)
// clamp their own budgets to it — deadline propagation rides the same
// thread-local channel as the trace id, at zero wire cost beyond the
// envelope's relative-budget field.
TimePoint CurrentDeadlineAt();
void SetCurrentDeadlineAt(TimePoint at);

// One hop event. `node` is the node that observed the event (0 for the
// network itself). `point` identifies the layer and outcome, e.g. "send",
// "net.drop.loss", "port.drop.retired", "recv".
struct TraceEvent {
  TimePoint at;
  uint32_t node = 0;
  std::string point;
  std::string detail;
};

// Bounded, thread-safe store of per-trace event lists. When the trace cap
// is hit the oldest trace is evicted; when one trace's event cap is hit
// further events for it are counted but not stored (the dump says so).
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t max_traces = 4096,
                       size_t max_events_per_trace = 256);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  // No-op when trace_id is 0 (untraced message).
  void Record(uint64_t trace_id, uint32_t node, std::string point,
              std::string detail = std::string());

  // Human-readable hop-by-hop dump; timestamps relative to the first event.
  std::string DumpTrace(uint64_t trace_id) const;

  bool HasTrace(uint64_t trace_id) const;
  std::vector<TraceEvent> Events(uint64_t trace_id) const;

  // The most recently started trace containing an event whose point starts
  // with `point_prefix` (e.g. "port.drop" to sample a lost message).
  std::optional<uint64_t> FindTraceWithPoint(
      const std::string& point_prefix) const;

  size_t trace_count() const;
  uint64_t evicted_traces() const;
  uint64_t suppressed_events() const;
  void Clear();

 private:
  struct Trace {
    std::vector<TraceEvent> events;
    uint64_t suppressed = 0;  // events beyond max_events_per_trace_
  };

  mutable std::mutex mu_;
  const size_t max_traces_;
  const size_t max_events_per_trace_;
  uint64_t evicted_ = 0;
  uint64_t suppressed_ = 0;
  std::unordered_map<uint64_t, Trace> traces_;
  std::deque<uint64_t> order_;  // insertion order, for eviction & sampling
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_OBS_TRACE_H_
