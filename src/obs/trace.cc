#include "src/obs/trace.h"

#include <algorithm>
#include <sstream>

namespace guardians {

namespace {
thread_local uint64_t t_current_trace_id = 0;
thread_local TimePoint t_current_deadline_at = TimePoint::max();
}  // namespace

uint64_t CurrentTraceId() { return t_current_trace_id; }
void SetCurrentTraceId(uint64_t id) { t_current_trace_id = id; }

TimePoint CurrentDeadlineAt() { return t_current_deadline_at; }
void SetCurrentDeadlineAt(TimePoint at) { t_current_deadline_at = at; }

TraceBuffer::TraceBuffer(size_t max_traces, size_t max_events_per_trace)
    : max_traces_(max_traces), max_events_per_trace_(max_events_per_trace) {}

void TraceBuffer::Record(uint64_t trace_id, uint32_t node, std::string point,
                         std::string detail) {
  if (trace_id == 0) {
    return;
  }
  TraceEvent event;
  event.at = Now();
  event.node = node;
  event.point = std::move(point);
  event.detail = std::move(detail);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = traces_.find(trace_id);
  if (it == traces_.end()) {
    while (traces_.size() >= max_traces_ && !order_.empty()) {
      traces_.erase(order_.front());
      order_.pop_front();
      ++evicted_;
    }
    it = traces_.emplace(trace_id, Trace{}).first;
    order_.push_back(trace_id);
  }
  Trace& trace = it->second;
  if (trace.events.size() >= max_events_per_trace_) {
    ++trace.suppressed;
    ++suppressed_;
    return;
  }
  trace.events.push_back(std::move(event));
}

std::string TraceBuffer::DumpTrace(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "trace " << trace_id << ":";
  auto it = traces_.find(trace_id);
  if (it == traces_.end()) {
    os << " (not recorded)\n";
    return os.str();
  }
  os << "\n";
  const Trace& trace = it->second;
  const TimePoint t0 =
      trace.events.empty() ? TimePoint{} : trace.events.front().at;
  for (const TraceEvent& event : trace.events) {
    os << "  +" << ToMicros(event.at - t0) << "us";
    if (event.node != 0) {
      os << "  n" << event.node;
    } else {
      os << "  net";
    }
    os << "  " << event.point;
    if (!event.detail.empty()) {
      os << "  " << event.detail;
    }
    os << "\n";
  }
  if (trace.suppressed > 0) {
    os << "  (+" << trace.suppressed << " events beyond buffer bound)\n";
  }
  return os.str();
}

bool TraceBuffer::HasTrace(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.count(trace_id) > 0;
}

std::vector<TraceEvent> TraceBuffer::Events(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = traces_.find(trace_id);
  return it != traces_.end() ? it->second.events : std::vector<TraceEvent>{};
}

std::optional<uint64_t> TraceBuffer::FindTraceWithPoint(
    const std::string& point_prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    auto found = traces_.find(*it);
    if (found == traces_.end()) {
      continue;
    }
    for (const TraceEvent& event : found->second.events) {
      if (event.point.compare(0, point_prefix.size(), point_prefix) == 0) {
        return *it;
      }
    }
  }
  return std::nullopt;
}

size_t TraceBuffer::trace_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

uint64_t TraceBuffer::evicted_traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

uint64_t TraceBuffer::suppressed_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  traces_.clear();
  order_.clear();
  evicted_ = 0;
  suppressed_ = 0;
}

}  // namespace guardians
