// Metrics (observability layer): named monotonic counters and fixed-bucket
// histograms behind a single registry.
//
// The paper's §3.4 delivery semantics make message loss a designed-in
// behaviour ("if there is no room for the message, the message is thrown
// away"), so the only way to debug or tune a guardian system is to count
// exactly where and why messages die. The registry is lock-cheap: name
// resolution takes a mutex once, after which callers hold a raw `Counter*`
// / `Histogram*` whose updates are single relaxed atomic operations — safe
// to call from the network delivery thread and every guardian process.
//
// Naming convention (dots separate subsystems, see DESIGN.md §7):
//   net.link.<a>-><b>.sent          per-link packet counters
//   net.shard.<k>.<event>           enqueued / delivered / dropped per
//                                   delivery worker (shard) of the network
//   net.drop.<reason>               loss / partition / src_down / dst_down
//   deliver.drop.<reason>           no_guardian / no_port / port_retired /
//                                   port_full / type_mismatch / decode_error
//   sendprims.<prim>.<event>        the §3 send-primitive ladder
//   flow.<event>                    credit-based flow control (§11):
//                                   credits_granted / full_nacks /
//                                   sends_deferred / window histogram
#ifndef GUARDIANS_SRC_OBS_METRICS_H_
#define GUARDIANS_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace guardians {

// A monotonically increasing counter. All operations are relaxed atomics:
// counters order nothing, they only count.
class Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// A histogram over fixed upper-bound buckets (ascending), with an implicit
// final +inf bucket. Observations are two relaxed atomic adds plus a binary
// search over a handful of bounds.
class Histogram {
 public:
  // `upper_bounds` must be strictly ascending; a value v lands in the first
  // bucket with v <= bound, or the overflow bucket.
  explicit Histogram(std::vector<uint64_t> upper_bounds);

  void Observe(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<uint64_t>& bounds() const { return bounds_; }
  // bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<uint64_t> BucketCounts() const;

  // "le=100: 17  le=1000: 3  inf: 1  (count=21 sum=1234)"
  std::string ToString() const;

  // Exponential bounds suited to microsecond latencies (1us .. ~16s).
  static std::vector<uint64_t> DefaultLatencyBoundsUs();

 private:
  std::vector<uint64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// Owner of all counters and histograms of one System. Get-or-create by
// name; returned pointers stay valid for the registry's lifetime, so hot
// paths resolve once and then update lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  // `bounds` is only consulted on first creation; empty means the default
  // latency bounds.
  Histogram* histogram(const std::string& name,
                       std::vector<uint64_t> bounds = {});

  // 0 when the counter was never touched (absent == never incremented).
  uint64_t CounterValue(const std::string& name) const;
  std::map<std::string, uint64_t> CounterSnapshot() const;
  // Counters whose name starts with `prefix`, e.g. "deliver.drop.".
  std::map<std::string, uint64_t> CountersWithPrefix(
      const std::string& prefix) const;

  // Text dump of every nonzero counter and every histogram.
  std::string Report() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_OBS_METRICS_H_
