// Banking guardians — the second application domain from the paper's
// introduction ("banking systems, airline reservation systems, office
// automation").
//
// AccountGuardian guards one account:
//  - deposit/withdraw are atomic, logged before reply (Section 2.2
//    permanence of effect), and *exactly-once* under retries: every request
//    carries a transaction id and the guardian remembers applied ids, so
//    the Section 3.5 retry-after-timeout pattern is safe even though the
//    operations are not naturally idempotent;
//  - the statement is reached through a token (Section 2.1): the guardian
//    seals an index into its private statement table — guardian-dependent
//    information that would be meaningless (and unusable) anywhere else.
#ifndef GUARDIANS_SRC_BANK_ACCOUNT_GUARDIAN_H_
#define GUARDIANS_SRC_BANK_ACCOUNT_GUARDIAN_H_

#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/guardian/node_runtime.h"

namespace guardians {

// deposit (amount, txid)  replies (ok_balance, bad_amount)
// withdraw (amount, txid) replies (ok_balance, insufficient, bad_amount)
// balance ()              replies (balance_is)
// statement_token ()      replies (the_token)
// read_statement (token)  replies (statement, bad_token)
PortType AccountPortType();
// All replies an account client may receive.
PortType BankReplyType();

class AccountGuardian : public Guardian {
 public:
  static constexpr char kTypeName[] = "account";

  // args: [owner string, initial_balance int]
  Status Setup(const ValueList& args) override;
  Status Recover(const ValueList& args) override;
  void Main() override;

  int64_t BalanceForTesting() const;

 private:
  struct Entry {
    std::string txid;
    std::string kind;  // "deposit" | "withdraw"
    int64_t amount;
    int64_t balance_after;
  };

  Status InitCommon(const ValueList& args, bool recovering);
  void HandleRequest(const Received& request);
  // Applies a mutation if its txid is new; returns the resulting balance
  // (current balance when duplicate). Logs before applying.
  Result<int64_t> ApplyOp(const std::string& kind, int64_t amount,
                          const std::string& txid);

  std::string owner_;
  mutable std::mutex mu_;
  int64_t balance_ = 0;
  std::set<std::string> applied_;      // txids already applied
  std::vector<Entry> statement_;       // private table; indexed via tokens
  Wal* log_ = nullptr;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_BANK_ACCOUNT_GUARDIAN_H_
