#include "src/bank/branch_guardian.h"

#include "src/common/log.h"
#include "src/sendprims/remote_call.h"

namespace guardians {

PortType BranchPortType() {
  return PortType("branch_port",
                  {MessageSig{"transfer",
                              {ArgType::Of(TypeTag::kPortName),
                               ArgType::Of(TypeTag::kPortName),
                               ArgType::Of(TypeTag::kInt),
                               ArgType::Of(TypeTag::kString)},
                              {"transfer_done", "transfer_failed"}}});
}

Status BranchGuardian::Setup(const ValueList& args) {
  return InitCommon(args, /*recovering=*/false);
}

Status BranchGuardian::Recover(const ValueList& args) {
  return InitCommon(args, /*recovering=*/true);
}

Status BranchGuardian::InitCommon(const ValueList& args, bool recovering) {
  if (args.size() != 2 || !args[0].is(TypeTag::kInt) ||
      !args[1].is(TypeTag::kInt)) {
    return Status(Code::kInvalidArgument,
                  "branch takes (leg_timeout_us, attempts)");
  }
  leg_timeout_ = Micros(args[0].int_value());
  attempts_ = static_cast<int>(args[1].int_value());
  log_ = OpenLog("transfers");
  AddPort(BranchPortType(), /*capacity=*/256, /*provided=*/true);

  if (recovering) {
    // Finish every transfer whose outcome is not yet decided. Both legs
    // are exactly-once at the accounts (txid-deduplicated), so re-running
    // a possibly-completed leg is always safe:
    //  - "start" without "withdrawn": the withdraw may or may not have
    //    landed; re-run it. A duplicate is absorbed; "insufficient" proves
    //    it never landed and the transfer aborts having moved nothing.
    //  - "withdrawn" without "done": re-run the deposit until confirmed.
    GUARDIANS_ASSIGN_OR_RETURN(auto records, log_->RecoverValues());
    struct Pending {
      PortName from, to;
      int64_t amount = 0;
      bool started = false;
      bool withdrawn = false;
      bool decided = false;
    };
    std::map<std::string, Pending> transfers;
    for (const auto& record : records) {
      GUARDIANS_ASSIGN_OR_RETURN(Value txid, record.field("txid"));
      GUARDIANS_ASSIGN_OR_RETURN(Value state, record.field("state"));
      Pending& pending = transfers[txid.string_value()];
      const std::string& s = state.string_value();
      if (s == "start") {
        GUARDIANS_ASSIGN_OR_RETURN(Value from, record.field("from"));
        GUARDIANS_ASSIGN_OR_RETURN(Value to, record.field("to"));
        GUARDIANS_ASSIGN_OR_RETURN(Value amount, record.field("amount"));
        pending.from = from.port_value();
        pending.to = to.port_value();
        pending.amount = amount.int_value();
        pending.started = true;
      } else if (s == "withdrawn") {
        pending.withdrawn = true;
      } else if (s == "done" || s == "aborted") {
        pending.decided = true;
      }
    }
    for (auto& [txid, pending] : transfers) {
      if (!pending.started || pending.decided) {
        continue;
      }
      // Finish on a recovery process, not inline: the accounts may still
      // be recovering themselves.
      Fork("recover-" + txid, [this, txid = txid, pending] {
        if (!pending.withdrawn) {
          bool insufficient = false;
          if (!WithdrawLeg(pending.from, pending.amount, txid,
                           insufficient)) {
            if (insufficient) {
              LogState(txid, "aborted", {}, {}, 0);
            }
            return;  // still unreachable; a later recovery retries
          }
          LogState(txid, "withdrawn", {}, {}, 0);
        }
        if (DepositLeg(pending.to, pending.amount, txid)) {
          LogState(txid, "done", {}, {}, 0);
          recovered_.fetch_add(1);
        }
      });
    }
  }
  return OkStatus();
}

void BranchGuardian::Main() {
  Port* requests = port(0);
  uint64_t seq = 0;
  for (;;) {
    auto received = Receive(requests, Micros::max());
    if (!received.ok()) {
      return;
    }
    if (received->command != "transfer") {
      continue;
    }
    // One process per transfer: conversational continuity for the
    // multi-step protocol.
    Fork("transfer-" + std::to_string(seq++),
         [this, request = std::move(*received)] { HandleTransfer(request); });
    if (seq % 32 == 0) {
      ReapProcesses();
    }
  }
}

void BranchGuardian::LogState(const std::string& txid,
                              const std::string& state, const PortName& from,
                              const PortName& to, int64_t amount) {
  std::vector<Value::Field> fields = {{"txid", Value::Str(txid)},
                                      {"state", Value::Str(state)}};
  if (state == "start") {
    fields.emplace_back("from", Value::OfPort(from));
    fields.emplace_back("to", Value::OfPort(to));
    fields.emplace_back("amount", Value::Int(amount));
  }
  Status st = log_->AppendValue(Value::Record(std::move(fields)));
  if (!st.ok()) {
    GLOG_ERROR << "branch log failed: " << st;
  }
}

bool BranchGuardian::WithdrawLeg(const PortName& from, int64_t amount,
                                 const std::string& txid,
                                 bool& insufficient) {
  RemoteCallOptions options;
  options.timeout = leg_timeout_;
  options.max_attempts = attempts_;  // safe: account dedups by txid
  auto reply = RemoteCall(*this, from, "withdraw",
                          {Value::Int(amount), Value::Str(txid + ":w")},
                          BankReplyType(), options);
  if (reply.ok() && reply->command == "insufficient") {
    insufficient = true;
    return false;
  }
  return reply.ok() && reply->command == "ok_balance";
}

bool BranchGuardian::DepositLeg(const PortName& to, int64_t amount,
                                const std::string& txid) {
  RemoteCallOptions options;
  options.timeout = leg_timeout_;
  options.max_attempts = attempts_;
  auto reply = RemoteCall(*this, to, "deposit",
                          {Value::Int(amount), Value::Str(txid + ":d")},
                          BankReplyType(), options);
  return reply.ok() && reply->command == "ok_balance";
}

void BranchGuardian::HandleTransfer(const Received& request) {
  const PortName from = request.args[0].port_value();
  const PortName to = request.args[1].port_value();
  const int64_t amount = request.args[2].int_value();
  const std::string txid = request.args[3].string_value();

  auto reply = [&](const char* command, const std::string& detail) {
    if (!request.reply_to.IsNull()) {
      Status st = Send(request.reply_to, command, {Value::Str(detail)});
      (void)st;
    }
  };

  // Intent first (permanence): if this node crashes at ANY later point, or
  // even if both withdraw replies are lost, the recovery process can finish
  // or abort the transfer from this record — no money is ever stranded.
  LogState(txid, "start", from, to, amount);

  bool insufficient = false;
  if (!WithdrawLeg(from, amount, txid, insufficient)) {
    if (insufficient) {
      LogState(txid, "aborted", {}, {}, 0);
      reply("transfer_failed", "insufficient funds");
    } else {
      // Unknown outcome: the withdraw may have landed with its reply lost.
      // Leave the transfer in "start"; recovery re-runs it (exactly-once
      // at the account) and drives it to done or aborted.
      reply("transfer_failed", "in doubt; will complete after recovery");
    }
    return;
  }
  LogState(txid, "withdrawn", {}, {}, 0);

  if (DepositLeg(to, amount, txid)) {
    LogState(txid, "done", {}, {}, 0);
    completed_.fetch_add(1);
    reply("transfer_done", txid);
    return;
  }
  // Deposit unconfirmed. Compensating now could *create* money (the deposit
  // may in fact have landed and only its reply was lost), so the transfer
  // stays logged as "withdrawn": the forward deposit is exactly-once at the
  // destination, and the recovery process re-runs it until confirmed.
  // Money is conserved in every case.
  reply("transfer_failed", "in doubt; will complete after recovery");
}

}  // namespace guardians
