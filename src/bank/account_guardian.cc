#include "src/bank/account_guardian.h"

#include "src/common/log.h"
#include "src/wire/value_codec.h"

namespace guardians {

PortType AccountPortType() {
  const ArgType kInt = ArgType::Of(TypeTag::kInt);
  const ArgType kStr = ArgType::Of(TypeTag::kString);
  return PortType(
      "account_port",
      {MessageSig{"deposit", {kInt, kStr}, {"ok_balance", "bad_amount"}},
       MessageSig{"withdraw",
                  {kInt, kStr},
                  {"ok_balance", "insufficient", "bad_amount"}},
       MessageSig{"balance", {}, {"balance_is"}},
       MessageSig{"statement_token", {}, {"the_token"}},
       MessageSig{"read_statement",
                  {ArgType::Of(TypeTag::kToken)},
                  {"statement", "bad_token"}}});
}

PortType BankReplyType() {
  return PortType(
      "bank_reply",
      {MessageSig{"ok_balance", {ArgType::Of(TypeTag::kInt)}, {}},
       MessageSig{"insufficient", {ArgType::Of(TypeTag::kInt)}, {}},
       MessageSig{"bad_amount", {}, {}},
       MessageSig{"balance_is", {ArgType::Of(TypeTag::kInt)}, {}},
       MessageSig{"the_token", {ArgType::Of(TypeTag::kToken)}, {}},
       MessageSig{"statement", {ArgType::Of(TypeTag::kArray)}, {}},
       MessageSig{"bad_token", {}, {}},
       MessageSig{"transfer_done", {ArgType::Of(TypeTag::kString)}, {}},
       MessageSig{"transfer_failed", {ArgType::Of(TypeTag::kString)}, {}}});
}

Status AccountGuardian::Setup(const ValueList& args) {
  return InitCommon(args, /*recovering=*/false);
}

Status AccountGuardian::Recover(const ValueList& args) {
  return InitCommon(args, /*recovering=*/true);
}

Status AccountGuardian::InitCommon(const ValueList& args, bool recovering) {
  if (args.size() != 2 || !args[0].is(TypeTag::kString) ||
      !args[1].is(TypeTag::kInt)) {
    return Status(Code::kInvalidArgument,
                  "account takes (owner, initial_balance)");
  }
  owner_ = args[0].string_value();
  balance_ = args[1].int_value();
  log_ = OpenLog("account");
  if (recovering) {
    GUARDIANS_ASSIGN_OR_RETURN(auto records, log_->RecoverValues());
    for (const auto& record : records) {
      GUARDIANS_ASSIGN_OR_RETURN(Value kind, record.field("kind"));
      GUARDIANS_ASSIGN_OR_RETURN(Value amount, record.field("amount"));
      GUARDIANS_ASSIGN_OR_RETURN(Value txid, record.field("txid"));
      const std::string id = txid.string_value();
      if (applied_.count(id) > 0) {
        continue;
      }
      applied_.insert(id);
      const int64_t delta = kind.string_value() == "deposit"
                                ? amount.int_value()
                                : -amount.int_value();
      balance_ += delta;
      statement_.push_back(Entry{id, kind.string_value(),
                                 amount.int_value(), balance_});
    }
  }
  AddPort(AccountPortType(), /*capacity=*/256, /*provided=*/true);
  return OkStatus();
}

void AccountGuardian::Main() {
  Port* requests = port(0);
  for (;;) {
    auto received = Receive(requests, Micros::max());
    if (!received.ok()) {
      return;
    }
    HandleRequest(*received);
  }
}

Result<int64_t> AccountGuardian::ApplyOp(const std::string& kind,
                                         int64_t amount,
                                         const std::string& txid) {
  std::lock_guard<std::mutex> lock(mu_);
  if (applied_.count(txid) > 0) {
    return balance_;  // exactly-once: a retry observes the original effect
  }
  if (kind == "withdraw" && balance_ < amount) {
    return Status(Code::kInvalidArgument, "insufficient");
  }
  // Permanence first: log, then apply, then the caller replies.
  Status logged = log_->AppendValue(
      Value::Record({{"kind", Value::Str(kind)},
                     {"amount", Value::Int(amount)},
                     {"txid", Value::Str(txid)}}));
  if (!logged.ok()) {
    return logged;
  }
  applied_.insert(txid);
  balance_ += kind == "deposit" ? amount : -amount;
  statement_.push_back(Entry{txid, kind, amount, balance_});
  return balance_;
}

void AccountGuardian::HandleRequest(const Received& request) {
  auto reply = [&](const char* command, ValueList args) {
    if (!request.reply_to.IsNull()) {
      Status st = Send(request.reply_to, command, std::move(args));
      (void)st;
    }
  };

  if (request.command == "deposit" || request.command == "withdraw") {
    const int64_t amount = request.args[0].int_value();
    const std::string& txid = request.args[1].string_value();
    if (amount <= 0) {
      reply("bad_amount", {});
      return;
    }
    auto balance = ApplyOp(request.command, amount, txid);
    if (!balance.ok()) {
      if (balance.status().code() == Code::kInvalidArgument) {
        std::lock_guard<std::mutex> lock(mu_);
        reply("insufficient", {Value::Int(balance_)});
      }
      return;  // storage failure: stay silent, requester times out
    }
    reply("ok_balance", {Value::Int(*balance)});

  } else if (request.command == "balance") {
    std::lock_guard<std::mutex> lock(mu_);
    reply("balance_is", {Value::Int(balance_)});

  } else if (request.command == "statement_token") {
    size_t index;
    {
      std::lock_guard<std::mutex> lock(mu_);
      index = statement_.size();  // statement as of now
    }
    reply("the_token", {Value::OfToken(Seal(index))});

  } else if (request.command == "read_statement") {
    auto index = Unseal(request.args[0].token_value());
    if (!index.ok()) {
      reply("bad_token", {});
      return;
    }
    std::vector<Value> entries;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const size_t limit = std::min<size_t>(*index, statement_.size());
      for (size_t i = 0; i < limit; ++i) {
        const Entry& entry = statement_[i];
        entries.push_back(Value::Record(
            {{"txid", Value::Str(entry.txid)},
             {"kind", Value::Str(entry.kind)},
             {"amount", Value::Int(entry.amount)},
             {"balance", Value::Int(entry.balance_after)}}));
      }
    }
    reply("statement", {Value::Array(std::move(entries))});
  }
}

int64_t AccountGuardian::BalanceForTesting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return balance_;
}

}  // namespace guardians
