// BranchGuardian: a transfer coordinator built from the paper's primitives.
//
// A transfer is the classic two-message protocol the paper's Section 3
// discusses: withdraw from one account guardian, deposit to another, with
// timeouts, idempotent retries (the account guardians deduplicate by txid),
// compensation on failure, and a transfer log providing permanence: a
// transfer that crashed between withdraw and deposit is *finished* by the
// recovery process — deposits are exactly-once, so re-running is safe.
#ifndef GUARDIANS_SRC_BANK_BRANCH_GUARDIAN_H_
#define GUARDIANS_SRC_BANK_BRANCH_GUARDIAN_H_

#include <atomic>
#include <map>
#include <string>

#include "src/bank/account_guardian.h"

namespace guardians {

// transfer (from_port, to_port, amount, txid)
//          replies (transfer_done, transfer_failed)
PortType BranchPortType();

class BranchGuardian : public Guardian {
 public:
  static constexpr char kTypeName[] = "branch";

  // args: [withdraw/deposit timeout micros int, attempts int]
  Status Setup(const ValueList& args) override;
  Status Recover(const ValueList& args) override;
  void Main() override;

  uint64_t transfers_completed() const { return completed_.load(); }
  uint64_t transfers_recovered() const { return recovered_.load(); }

 private:
  Status InitCommon(const ValueList& args, bool recovering);
  void HandleTransfer(const Received& request);
  // Runs the deposit leg; true on confirmed success.
  bool DepositLeg(const PortName& to, int64_t amount,
                  const std::string& txid);
  bool WithdrawLeg(const PortName& from, int64_t amount,
                   const std::string& txid, bool& insufficient);
  void LogState(const std::string& txid, const std::string& state,
                const PortName& from, const PortName& to, int64_t amount);

  Micros leg_timeout_{Millis(500)};
  int attempts_ = 3;
  Wal* log_ = nullptr;
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> recovered_{0};
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_BANK_BRANCH_GUARDIAN_H_
