// ReliableSend: at-least-once delivery built above the primitives.
//
// Section 3: "The no-wait send can usually ensure message delivery. The
// synchronization send can guarantee delivery (if it terminates)." Neither
// survives loss by itself; the guarantee the paper wants applications to
// build is this loop — send, await the receipt, resend on timeout — which
// is possible precisely because the chosen primitive composes.
//
// Delivery used to be at-least-once: a resend racing a delayed ack
// duplicates the message on the wire. Every ReliableSend is now *tracked*
// (one dedup sequence number spans all its attempts), so the receiving
// node's at-most-once layer (DESIGN.md §10) suppresses those duplicates —
// while still acknowledging their receipt — and the receiving process sees
// at most one copy. The old caveat about idempotent-only payloads is gone.
//
// Overload handling (DESIGN.md §11): each attempt goes through SyncSend,
// which defers on the destination's congestion window before sending. A
// full-port nack comes back as kPortFull and is retried immediately — the
// window's congested hold, not the blind exponential backoff, paces that
// retry at the receiver's actual drain rate. The backoff below applies
// only to genuine ack timeouts (loss, partition, dead receiver). Outcomes
// are counted so .ok + .exhausted + .deadline_exceeded + .hard_fail sums
// to .calls; hard_fail is the non-retryable bucket (type error, node
// down).
#ifndef GUARDIANS_SRC_SENDPRIMS_RELIABLE_SEND_H_
#define GUARDIANS_SRC_SENDPRIMS_RELIABLE_SEND_H_

#include <string>

#include "src/guardian/guardian.h"

namespace guardians {

struct ReliableSendOptions {
  Micros ack_timeout{Millis(100)};  // per-attempt wait for the receipt
  int max_attempts = 10;
  // Exponential backoff between timed-out attempts. A resend storm into a
  // congested port only deepens the overload that timed the ack out; each
  // retry waits initial_backoff * backoff_multiplier^(attempt-1), capped at
  // max_backoff, with ±jitter randomization so synchronized senders
  // desynchronize. jitter = 0 disables randomization; initial_backoff = 0
  // restores the old retry-immediately behaviour.
  Micros initial_backoff{Millis(1)};
  Micros max_backoff{Millis(50)};
  double backoff_multiplier = 2.0;
  double jitter = 0.5;
  // Overall wall-clock bound across every attempt and backoff sleep; 0
  // disables it (the old behaviour, where max_attempts × max_backoff was
  // the only bound). When it expires the call fails with kTimeout and
  // counts in sendprims.reliable.deadline_exceeded; per-attempt ack waits
  // are clipped to the time remaining so the bound is honoured exactly.
  Micros deadline{0};
};

struct ReliableSendResult {
  int attempts = 0;  // sends performed (≥1 extra wire message each: the ack)
  Micros total_backoff{0};  // time spent sleeping between attempts
};

// Blocks until the target process has received (one copy of) the message,
// or attempts are exhausted (kTimeout: the guarantee is conditional on
// termination, exactly as the paper says).
Result<ReliableSendResult> ReliableSend(Guardian& sender, const PortName& to,
                                        const std::string& command,
                                        const ValueList& args,
                                        const ReliableSendOptions& options);

}  // namespace guardians

#endif  // GUARDIANS_SRC_SENDPRIMS_RELIABLE_SEND_H_
