// FailoverCall: availability from redundant guardians.
//
// The paper's introduction lists "the potential for better reliability and
// higher availability" among the advantages of distribution: a service
// offered by guardians at several nodes stays reachable when a node is
// down. Nothing new is needed from the system — port names are values, so
// a client simply holds several and tries them in order, exactly the kind
// of application protocol the no-wait send + timeout was chosen to permit.
//
// Guarantees under the at-most-once layer (DESIGN.md §10), made precise:
//
//  - Per replica: at most one execution. Each target gets its own dedup
//    sequence number (a fresh RemoteCall), so retries *against one
//    replica* never double-execute there, even across that replica's
//    crash-and-recovery while its reply cache survives.
//  - Across replicas: at most one execution PER REPLICA TRIED, not one
//    overall. Replicas are distinct guardians with distinct state and
//    distinct dedup tables; when failover moves on after a timeout, the
//    earlier target may still have performed the request even though its
//    reply was lost. Nothing correlates the two attempts.
//  - Across demotion: quarantine only reorders the try list. A demoted
//    replica that recovers mid-call is still tried (at the back), under
//    the same rules; a replica tried *before* it was quarantined may have
//    executed. Demotion never cancels an execution already performed.
//
// So FailoverCall is exactly-once only when the request is idempotent
// across replicas (e.g. reads, or writes the replicas reconcile), or when
// the replicas share the deduplicating resource. For single-home
// non-idempotent state, use RemoteCall with retries against the one home.
#ifndef GUARDIANS_SRC_SENDPRIMS_FAILOVER_H_
#define GUARDIANS_SRC_SENDPRIMS_FAILOVER_H_

#include <vector>

#include "src/sendprims/remote_call.h"

namespace guardians {

struct FailoverResult {
  RemoteReply reply;
  int target_index = -1;  // which replica answered
};

// Try `targets` in order with the given per-target options; the first
// non-failure reply wins. kUnreachable when every replica failed.
// Replicas whose node a fault Supervisor has quarantined (known
// crash-looping — see System::NodeQuarantined) are demoted to the end of
// the order instead of burning a full per-target timeout up front;
// target_index always refers to the caller's original list.
Result<FailoverResult> FailoverCall(Guardian& caller,
                                    const std::vector<PortName>& targets,
                                    const std::string& command,
                                    const ValueList& args,
                                    const PortType& reply_type,
                                    const RemoteCallOptions& per_target);

}  // namespace guardians

#endif  // GUARDIANS_SRC_SENDPRIMS_FAILOVER_H_
