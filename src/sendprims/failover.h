// FailoverCall: availability from redundant guardians.
//
// The paper's introduction lists "the potential for better reliability and
// higher availability" among the advantages of distribution: a service
// offered by guardians at several nodes stays reachable when a node is
// down. Nothing new is needed from the system — port names are values, so
// a client simply holds several and tries them in order, exactly the kind
// of application protocol the no-wait send + timeout was chosen to permit.
//
// Only sound for idempotent requests: an earlier target may have performed
// the request even though its reply was lost.
#ifndef GUARDIANS_SRC_SENDPRIMS_FAILOVER_H_
#define GUARDIANS_SRC_SENDPRIMS_FAILOVER_H_

#include <vector>

#include "src/sendprims/remote_call.h"

namespace guardians {

struct FailoverResult {
  RemoteReply reply;
  int target_index = -1;  // which replica answered
};

// Try `targets` in order with the given per-target options; the first
// non-failure reply wins. kUnreachable when every replica failed.
// Replicas whose node a fault Supervisor has quarantined (known
// crash-looping — see System::NodeQuarantined) are demoted to the end of
// the order instead of burning a full per-target timeout up front;
// target_index always refers to the caller's original list.
Result<FailoverResult> FailoverCall(Guardian& caller,
                                    const std::vector<PortName>& targets,
                                    const std::string& command,
                                    const ValueList& args,
                                    const PortType& reply_type,
                                    const RemoteCallOptions& per_target);

}  // namespace guardians

#endif  // GUARDIANS_SRC_SENDPRIMS_FAILOVER_H_
