#include "src/sendprims/failover.h"

#include <algorithm>

#include "src/guardian/node_runtime.h"
#include "src/guardian/system.h"

namespace guardians {

Result<FailoverResult> FailoverCall(Guardian& caller,
                                    const std::vector<PortName>& targets,
                                    const std::string& command,
                                    const ValueList& args,
                                    const PortType& reply_type,
                                    const RemoteCallOptions& per_target) {
  System& system = caller.runtime().system();
  MetricsRegistry& metrics = system.metrics();
  metrics.counter("sendprims.failover.calls")->Inc();
  Counter* failovers_counter = metrics.counter("sendprims.failover.failovers");

  // Replica order: healthy first. A replica the supervisor has quarantined
  // is known to be crash-looping, so trying it first would burn a full
  // per-target timeout; it is demoted to a last resort (not skipped
  // outright — the caller's list is still exhausted before giving up).
  std::vector<size_t> order;
  std::vector<size_t> demoted;
  order.reserve(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    (system.NodeQuarantined(targets[i].node) ? demoted : order).push_back(i);
  }
  if (!demoted.empty()) {
    metrics.counter("sendprims.failover.quarantine_skips")
        ->Inc(demoted.size());
    order.insert(order.end(), demoted.begin(), demoted.end());
  }

  // Inherited deadline split (§16): when this call runs under a propagated
  // budget, each replica gets an equal share of whatever remains at the
  // moment its attempt starts — a slow first replica must not eat the
  // whole budget and turn every later replica into a zero-time attempt.
  const ClockSource& clock = caller.runtime().clock();
  const TimePoint inherited_at = CurrentDeadlineAt();

  Status last(Code::kUnreachable, "no targets");
  for (size_t attempt = 0; attempt < order.size(); ++attempt) {
    const size_t i = order[attempt];
    if (attempt > 0) {
      // Attempting the next replica because the previous one failed us.
      failovers_counter->Inc();
    }
    RemoteCallOptions opts = per_target;
    if (inherited_at != TimePoint::max()) {
      const TimePoint now = clock.Now();
      if (now >= inherited_at) {
        metrics.counter("sendprims.failover.deadline_exceeded")->Inc();
        last = Status(Code::kTimeout,
                      "inherited deadline exhausted after " +
                          std::to_string(attempt) + " of " +
                          std::to_string(order.size()) + " replicas");
        break;
      }
      const int64_t left_us =
          std::chrono::duration_cast<Micros>(inherited_at - now).count();
      const int64_t targets_left = static_cast<int64_t>(order.size() - attempt);
      opts.timeout = std::min(
          per_target.timeout, Micros(std::max<int64_t>(
                                  left_us / targets_left, 1)));
    }
    auto reply =
        RemoteCall(caller, targets[i], command, args, reply_type, opts);
    if (!reply.ok()) {
      if (reply.status().code() == Code::kTypeError ||
          reply.status().code() == Code::kEncodeError) {
        return reply.status();  // local problem; no replica will differ
      }
      last = reply.status();
      continue;
    }
    if (reply->command == kFailureCommand) {
      last = Status(Code::kUnreachable,
                    reply->args.empty() ? "failure"
                                        : reply->args[0].string_value());
      continue;
    }
    FailoverResult out;
    out.reply = reply.take();
    out.target_index = static_cast<int>(i);
    return out;
  }
  return last;
}

}  // namespace guardians
