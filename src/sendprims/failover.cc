#include "src/sendprims/failover.h"

#include "src/guardian/node_runtime.h"
#include "src/guardian/system.h"

namespace guardians {

Result<FailoverResult> FailoverCall(Guardian& caller,
                                    const std::vector<PortName>& targets,
                                    const std::string& command,
                                    const ValueList& args,
                                    const PortType& reply_type,
                                    const RemoteCallOptions& per_target) {
  System& system = caller.runtime().system();
  MetricsRegistry& metrics = system.metrics();
  metrics.counter("sendprims.failover.calls")->Inc();
  Counter* failovers_counter = metrics.counter("sendprims.failover.failovers");

  // Replica order: healthy first. A replica the supervisor has quarantined
  // is known to be crash-looping, so trying it first would burn a full
  // per-target timeout; it is demoted to a last resort (not skipped
  // outright — the caller's list is still exhausted before giving up).
  std::vector<size_t> order;
  std::vector<size_t> demoted;
  order.reserve(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    (system.NodeQuarantined(targets[i].node) ? demoted : order).push_back(i);
  }
  if (!demoted.empty()) {
    metrics.counter("sendprims.failover.quarantine_skips")
        ->Inc(demoted.size());
    order.insert(order.end(), demoted.begin(), demoted.end());
  }

  Status last(Code::kUnreachable, "no targets");
  for (size_t attempt = 0; attempt < order.size(); ++attempt) {
    const size_t i = order[attempt];
    if (attempt > 0) {
      // Attempting the next replica because the previous one failed us.
      failovers_counter->Inc();
    }
    auto reply =
        RemoteCall(caller, targets[i], command, args, reply_type,
                   per_target);
    if (!reply.ok()) {
      if (reply.status().code() == Code::kTypeError ||
          reply.status().code() == Code::kEncodeError) {
        return reply.status();  // local problem; no replica will differ
      }
      last = reply.status();
      continue;
    }
    if (reply->command == kFailureCommand) {
      last = Status(Code::kUnreachable,
                    reply->args.empty() ? "failure"
                                        : reply->args[0].string_value());
      continue;
    }
    FailoverResult out;
    out.reply = reply.take();
    out.target_index = static_cast<int>(i);
    return out;
  }
  return last;
}

}  // namespace guardians
