#include "src/sendprims/sync_send.h"

#include <algorithm>

#include "src/guardian/node_runtime.h"
#include "src/guardian/system.h"

namespace guardians {

Status SyncSend(Guardian& sender, const PortName& to,
                const std::string& command, ValueList args, Micros timeout,
                uint64_t dedup_seq) {
  NodeRuntime& rt = sender.runtime();
  MetricsRegistry& metrics = rt.system().metrics();
  metrics.counter("sendprims.sync.calls")->Inc();
  // Micros::max() is explicitly infinite — constructing a Deadline from it
  // would overflow Now() + timeout into the past and expire immediately,
  // the exact expired-vs-unset confusion the 0-sentinel audit exists to
  // remove.
  const Deadline deadline = timeout == Micros::max()
                                ? Deadline::Infinite(&rt.clock())
                                : Deadline(timeout, &rt.clock());
  // Defer-before-send: claim a slot of the destination's congestion window
  // first. When the window is closed (or the destination is in a congested
  // hold after a full nack) the message waits here, at the sender, instead
  // of being shed at the receiver's port.
  FlowSlot slot = rt.flow().Acquire(to, deadline);
  if (!slot.ok()) {
    metrics.counter("sendprims.sync.timeouts")->Inc();
    return Status(Code::kTimeout, "flow window closed until deadline");
  }
  // Ack-port capacity comes from the system config (sync_ack_capacity):
  // under dup_prob a burst of duplicate/stale acks used to evict the real
  // ack from a hardcoded 4-slot buffer, turning a delivered message into a
  // spurious timeout + retry.
  // Stamp the remaining budget onto the wire (§16): the receiver
  // decrements it by observed network age and sheds the message instead
  // of executing it once it is gone. A budget that is already spent here
  // (the flow wait consumed it) is stamped as the 1µs floor rather than
  // 0 — on the wire 0 means "no deadline", and an expired budget must
  // never widen into an unbudgeted send.
  uint64_t budget_micros = 0;
  if (!deadline.IsInfinite()) {
    budget_micros = static_cast<uint64_t>(
        std::max<int64_t>(deadline.Remaining().count(), 1));
  }
  Port* ack_port =
      sender.AddPort(AckPortType(), rt.system().config().sync_ack_capacity);
  auto sent = sender.SendFull(to, command, std::move(args), PortName{},
                              ack_port->name(), dedup_seq, budget_micros);
  if (!sent.ok()) {
    sender.RetirePort(ack_port);
    return sent.status();
  }
  const std::string want = std::to_string(*sent);

  for (;;) {
    auto received = sender.Receive(ack_port, deadline.Remaining());
    if (!received.ok()) {
      if (received.status().code() == Code::kTimeout) {
        metrics.counter("sendprims.sync.timeouts")->Inc();
      }
      sender.RetirePort(ack_port);
      return received.status();
    }
    if (received->command == kFailureCommand) {
      const bool expired_nack =
          !received->args.empty() &&
          received->args[0].is(TypeTag::kString) &&
          received->args[0].string_value().rfind("deadline expired", 0) == 0;
      if (expired_nack) {
        // The receiver shed the message because our budget died in flight
        // (or in its queue). That is a deadline outcome, not congestion:
        // kTimeout, so ReliableSend books it against the overall deadline
        // instead of fast-retrying into a window that has nothing to do
        // with it.
        metrics.counter("sendprims.sync.expired")->Inc();
        sender.RetirePort(ack_port);
        return Status(Code::kTimeout, received->args[0].string_value());
      }
      // A full-port nack delivered to the ack port (flow control routes
      // the §3.4 failure here when the send carried an ack port): the
      // message was shed. Fail fast with kPortFull — no need to wait out
      // the ack timeout — and let the caller's retry be paced by the
      // congestion window, whose halving was applied when the nack's fc
      // fields were consumed on the delivery path.
      metrics.counter("sendprims.sync.full_nacks")->Inc();
      sender.RetirePort(ack_port);
      return Status(Code::kPortFull,
                    received->args.empty()
                        ? "message shed at target port"
                        : received->args[0].ToString());
    }
    if (received->command == "ack" && !received->args.empty() &&
        received->args[0].is(TypeTag::kString) &&
        received->args[0].string_value() == want) {
      sender.RetirePort(ack_port);
      return OkStatus();
    }
    // A stale or foreign ack; keep waiting until the deadline.
    if (deadline.Expired()) {
      metrics.counter("sendprims.sync.timeouts")->Inc();
      sender.RetirePort(ack_port);
      return Status(Code::kTimeout, "no receipt acknowledgement");
    }
  }
}

}  // namespace guardians
