#include "src/sendprims/sync_send.h"

#include "src/guardian/node_runtime.h"
#include "src/guardian/system.h"

namespace guardians {

Status SyncSend(Guardian& sender, const PortName& to,
                const std::string& command, ValueList args, Micros timeout,
                uint64_t dedup_seq) {
  MetricsRegistry& metrics = sender.runtime().system().metrics();
  metrics.counter("sendprims.sync.calls")->Inc();
  Port* ack_port = sender.AddPort(AckPortType(), /*capacity=*/4);
  auto sent = sender.SendFull(to, command, std::move(args), PortName{},
                              ack_port->name(), dedup_seq);
  if (!sent.ok()) {
    sender.RetirePort(ack_port);
    return sent.status();
  }
  const std::string want = std::to_string(*sent);

  const Deadline deadline(timeout);
  for (;;) {
    auto received = sender.Receive(ack_port, deadline.Remaining());
    if (!received.ok()) {
      if (received.status().code() == Code::kTimeout) {
        metrics.counter("sendprims.sync.timeouts")->Inc();
      }
      sender.RetirePort(ack_port);
      return received.status();
    }
    if (received->command == "ack" && !received->args.empty() &&
        received->args[0].is(TypeTag::kString) &&
        received->args[0].string_value() == want) {
      sender.RetirePort(ack_port);
      return OkStatus();
    }
    // A stale or foreign ack; keep waiting until the deadline.
    if (deadline.Expired()) {
      metrics.counter("sendprims.sync.timeouts")->Inc();
      sender.RetirePort(ack_port);
      return Status(Code::kTimeout, "no receipt acknowledgement");
    }
  }
}

}  // namespace guardians
