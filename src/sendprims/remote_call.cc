#include "src/sendprims/remote_call.h"

#include <algorithm>

#include "src/guardian/node_runtime.h"
#include "src/guardian/system.h"

namespace guardians {

Result<RemoteReply> RemoteCall(Guardian& caller, const PortName& to,
                               const std::string& command, ValueList args,
                               const PortType& reply_type,
                               const RemoteCallOptions& options) {
  MetricsRegistry& metrics = caller.runtime().system().metrics();
  metrics.counter("sendprims.call.calls")->Inc();
  Counter* attempts_counter = metrics.counter("sendprims.call.attempts");
  Counter* timeouts_counter = metrics.counter("sendprims.call.timeouts");
  const ClockSource& clock = caller.runtime().clock();
  // Inherit the caller's propagated deadline (§16): a handler that fans
  // out nested calls must never promise downstream more time than its own
  // caller has left. Set by Receive from the message being handled;
  // TimePoint::max() when the current message carried no budget.
  const TimePoint inherited_at = CurrentDeadlineAt();
  Port* reply_port = caller.AddPort(reply_type, /*capacity=*/8);
  Status last(Code::kTimeout, "no attempts made");
  RemoteReply reply;
  // One dedup sequence number and one reply port for the whole call:
  // every attempt is the same logical request, so the receiver executes at
  // most one and a replayed cached reply still lands where we are waiting.
  const uint64_t dedup_seq = caller.runtime().NextDedupSeq();
  for (int attempt = 1; attempt <= options.max_attempts; ++attempt) {
    Micros effective = options.timeout;
    if (inherited_at != TimePoint::max()) {
      const TimePoint now = clock.Now();
      if (now >= inherited_at) {
        // The inherited budget is gone: another attempt could only
        // produce a reply nobody upstream is still waiting for.
        metrics.counter("sendprims.call.deadline_exceeded")->Inc();
        last = Status(Code::kTimeout,
                      "inherited deadline exhausted before attempt " +
                          std::to_string(attempt));
        break;
      }
      effective = std::min(
          effective, std::chrono::duration_cast<Micros>(inherited_at - now));
    }
    reply.attempts = attempt;
    attempts_counter->Inc();
    // Defer-before-send against the destination's congestion window; a
    // window that stays closed for the attempt's whole timeout counts as
    // a timed-out attempt (the receiver is that congested).
    FlowSlot slot = caller.runtime().flow().Acquire(
        to, effective == Micros::max() ? Deadline::Infinite(&clock)
                                       : Deadline(effective, &clock));
    if (!slot.ok()) {
      last = Status(Code::kTimeout, "flow window closed for remote call");
      timeouts_counter->Inc();
      continue;
    }
    // Stamp this attempt's budget onto the wire so the server sheds the
    // request instead of executing it once we have stopped waiting.
    const uint64_t budget_micros =
        effective == Micros::max()
            ? 0
            : static_cast<uint64_t>(std::max<int64_t>(effective.count(), 1));
    auto sent = caller.SendFull(to, command, args, reply_port->name(),
                                PortName{}, dedup_seq, budget_micros);
    if (!sent.ok()) {
      // Local errors (type error, encode failure, node down) will not be
      // cured by retrying.
      caller.RetirePort(reply_port);
      return sent.status();
    }
    auto received = caller.Receive(reply_port, effective);
    if (!received.ok()) {
      last = received.status();  // timeout or node down
      if (received.status().code() == Code::kNodeDown) {
        break;
      }
      timeouts_counter->Inc();
      continue;
    }
    if (received->command == kFailureCommand &&
        attempt < options.max_attempts) {
      // e.g. "target port doesn't exist" because the server is recovering,
      // or "no room at target port" (a flow nack — the window was already
      // halved when the nack's fc fields were consumed); retrying is as
      // sound as retrying after a timeout.
      last = Status(Code::kUnreachable, received->args.empty()
                                            ? "failure"
                                            : received->args[0].ToString());
      continue;
    }
    // A good reply is the call-pattern's credit: request/reply traffic
    // carries no receipt acks, so without this the window could only ever
    // shrink.
    slot.Success();
    reply.command = received->command;
    reply.args = std::move(received->args);
    caller.RetirePort(reply_port);
    return reply;
  }
  caller.RetirePort(reply_port);
  return last;
}

Result<std::vector<PortName>> CreateGuardianAt(
    Guardian& caller, const PortName& primordial,
    const std::string& type_name, const std::string& guardian_name,
    ValueList creation_args, bool persistent, Micros timeout,
    int max_attempts) {
  RemoteCallOptions options;
  options.timeout = timeout;
  // Safe despite creation being non-idempotent: duplicates are suppressed
  // at the target, and remote creation is keyed by guardian name there.
  options.max_attempts = max_attempts;
  GUARDIANS_ASSIGN_OR_RETURN(
      RemoteReply reply,
      RemoteCall(caller, primordial, "create_guardian",
                 {Value::Str(type_name), Value::Str(guardian_name),
                  Value::Array(std::move(creation_args)),
                  Value::Bool(persistent)},
                 CreationReplyPortType(), options));
  if (reply.command == "refused") {
    return Status(Code::kPermissionDenied,
                  reply.args.empty() ? "refused"
                                     : reply.args[0].string_value());
  }
  if (reply.command == kFailureCommand) {
    return Status(Code::kUnreachable,
                  reply.args.empty() ? "failure"
                                     : reply.args[0].string_value());
  }
  if (reply.command != "created" || reply.args.size() != 1 ||
      !reply.args[0].is(TypeTag::kArray)) {
    return Status(Code::kInternal, "malformed creation reply");
  }
  std::vector<PortName> ports;
  for (const auto& v : reply.args[0].items()) {
    GUARDIANS_ASSIGN_OR_RETURN(PortName pn, v.AsPort());
    ports.push_back(pn);
  }
  return ports;
}

}  // namespace guardians
