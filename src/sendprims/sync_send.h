// The synchronization send (Section 3, primitive 2): "The sending process
// waits until the message has been received by the target process" — the
// primitive of Hoare's CSP.
//
// The paper chooses the no-wait send precisely because the others "can be
// implemented by it, but not vice versa (if extra message passing is to be
// avoided)". This module is that construction: a no-wait send carrying a
// hidden acknowledgement port; the system acks when (and only when) a
// receive in the target guardian dequeues the message. The extra wire
// message is intrinsic to the primitive, which the SEND experiment
// measures.
#ifndef GUARDIANS_SRC_SENDPRIMS_SYNC_SEND_H_
#define GUARDIANS_SRC_SENDPRIMS_SYNC_SEND_H_

#include <string>

#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/guardian/guardian.h"

namespace guardians {

// Blocks the calling process until the target process has received the
// message, or the timeout expires (a node failure would otherwise block the
// caller forever — "a subsequent node failure will disrupt communication").
// A kTimeout result leaves the true state unknown: the message may yet be
// received.
//
// A nonzero `dedup_seq` makes the send tracked for at-most-once execution:
// the receiving node suppresses re-deliveries of the same (session, seq) —
// including our own resends — but still acknowledges their receipt, so a
// retry loop above this primitive terminates without re-executing.
//
// Flow control (DESIGN.md §11): the send first claims a slot of the
// destination port's congestion window, waiting (up to the timeout) while
// the window is closed — kTimeout if it never opens. If the receiver sheds
// the message at a full port, the full-nack arrives on the ack port and
// the call fails fast with kPortFull instead of waiting out the timeout.
Status SyncSend(Guardian& sender, const PortName& to,
                const std::string& command, ValueList args, Micros timeout,
                uint64_t dedup_seq = 0);

}  // namespace guardians

#endif  // GUARDIANS_SRC_SENDPRIMS_SYNC_SEND_H_
