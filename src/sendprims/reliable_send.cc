#include "src/sendprims/reliable_send.h"

#include <algorithm>
#include <thread>

#include "src/common/rng.h"
#include "src/guardian/node_runtime.h"
#include "src/guardian/system.h"
#include "src/sendprims/sync_send.h"

namespace guardians {

Result<ReliableSendResult> ReliableSend(Guardian& sender, const PortName& to,
                                        const std::string& command,
                                        const ValueList& args,
                                        const ReliableSendOptions& options) {
  MetricsRegistry& metrics = sender.runtime().system().metrics();
  metrics.counter("sendprims.reliable.calls")->Inc();
  Counter* attempts_counter = metrics.counter("sendprims.reliable.attempts");
  Counter* timeouts_counter = metrics.counter("sendprims.reliable.timeouts");
  Histogram* backoff_hist =
      metrics.histogram("sendprims.reliable.backoff_us");

  Rng rng = sender.runtime().ForkRng();
  ReliableSendResult result;
  Status last(Code::kTimeout, "no attempts made");
  double backoff_us =
      static_cast<double>(options.initial_backoff.count());
  // One dedup sequence number for the whole call: every resend is the same
  // logical operation, so the receiver executes at most one of them.
  const uint64_t dedup_seq = sender.runtime().NextDedupSeq();
  const ClockSource& clock = sender.runtime().clock();
  const Deadline overall = options.deadline.count() > 0
                               ? Deadline(options.deadline, &clock)
                               : Deadline::Infinite(&clock);
  for (int attempt = 1; attempt <= options.max_attempts; ++attempt) {
    // Zero-remaining boundary: Remaining() can be 0µs while Expired() is
    // still false — the clamped floor after a backward clock-skew step, or
    // the clock landing exactly on the deadline between the two reads.
    // Before the fix, min(ack_timeout, 0) pushed a 0 timeout into
    // SyncSend, which reads 0 as an immediate poll — the attempt burned a
    // send and a dedup-tracked retry on a budget that was already gone.
    // A non-positive remaining budget IS the deadline being exceeded.
    const Micros remaining = overall.Remaining();
    if (overall.Expired() ||
        (!overall.IsInfinite() && remaining.count() <= 0)) {
      metrics.counter("sendprims.reliable.deadline_exceeded")->Inc();
      return Status(Code::kTimeout, "reliable send deadline exceeded after " +
                                        std::to_string(result.attempts) +
                                        " attempts");
    }
    result.attempts = attempt;
    attempts_counter->Inc();
    Status st = SyncSend(sender, to, command, args,
                         overall.IsInfinite()
                             ? options.ack_timeout
                             : std::min(options.ack_timeout, remaining),
                         dedup_seq);
    if (st.ok()) {
      metrics.counter("sendprims.reliable.ok")->Inc();
      return result;
    }
    if (st.code() != Code::kTimeout && st.code() != Code::kPortFull) {
      // Type error, node down, ...: retrying cannot help. Counted so the
      // per-call outcome breakdown (.ok + .exhausted + .deadline_exceeded
      // + .hard_fail) sums to .calls.
      metrics.counter("sendprims.reliable.hard_fail")->Inc();
      return st;
    }
    if (st.code() == Code::kPortFull) {
      // A fast full-port nack: the receiver shed the message and the
      // congestion window already halved. Retry without the blind
      // exponential backoff — the window's congested hold paces the next
      // SyncSend at the receiver's actual recovery rate.
      metrics.counter("sendprims.reliable.full_nacks")->Inc();
      last = st;
      continue;
    }
    timeouts_counter->Inc();
    last = st;
    if (attempt < options.max_attempts && backoff_us > 0.0) {
      // ±jitter around the current backoff step, capped at max_backoff and
      // never sleeping past the overall deadline.
      double jittered =
          backoff_us * (1.0 + options.jitter * (2.0 * rng.NextDouble() - 1.0));
      jittered = std::clamp(
          jittered, 0.0, static_cast<double>(options.max_backoff.count()));
      if (!overall.IsInfinite()) {
        jittered = std::min(
            jittered, static_cast<double>(overall.Remaining().count()));
      }
      const Micros delay(static_cast<int64_t>(jittered));
      if (delay.count() > 0) {
        backoff_hist->Observe(static_cast<uint64_t>(delay.count()));
        clock.SleepFor(delay);
        result.total_backoff += delay;
      }
      backoff_us = std::min(
          backoff_us * options.backoff_multiplier,
          static_cast<double>(options.max_backoff.count()));
    }
  }
  metrics.counter("sendprims.reliable.exhausted")->Inc();
  return last;
}

}  // namespace guardians
