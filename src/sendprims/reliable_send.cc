#include "src/sendprims/reliable_send.h"

#include "src/sendprims/sync_send.h"

namespace guardians {

Result<ReliableSendResult> ReliableSend(Guardian& sender, const PortName& to,
                                        const std::string& command,
                                        const ValueList& args,
                                        const ReliableSendOptions& options) {
  ReliableSendResult result;
  Status last(Code::kTimeout, "no attempts made");
  for (int attempt = 1; attempt <= options.max_attempts; ++attempt) {
    result.attempts = attempt;
    Status st = SyncSend(sender, to, command, args, options.ack_timeout);
    if (st.ok()) {
      return result;
    }
    if (st.code() != Code::kTimeout) {
      return st;  // type error, node down, ...: retrying cannot help
    }
    last = st;
  }
  return last;
}

}  // namespace guardians
