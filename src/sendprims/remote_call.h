// The remote transaction send (Section 3, primitive 3): "The sending
// process waits for a response from the receiving process that the command
// has been carried out" — Brinch Hansen's primitive, and the shape of
// remote invocation.
//
// Built on the no-wait send: the request carries an ephemeral reply port;
// the caller blocks on it with a timeout. On timeout "nothing is known
// about the true state of affairs: the request may never be done, or it
// might already be done" (Section 3.5). Historically that made retries
// sound only for idempotent requests; now every call is *tracked* — one
// dedup sequence number spans all attempts, the receiving node executes at
// most one of them and answers later attempts from its reply cache
// (DESIGN.md §10) — so retrying a non-idempotent request is safe.
#ifndef GUARDIANS_SRC_SENDPRIMS_REMOTE_CALL_H_
#define GUARDIANS_SRC_SENDPRIMS_REMOTE_CALL_H_

#include <string>

#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/guardian/guardian.h"

namespace guardians {

struct RemoteCallOptions {
  // Per-attempt receive timeout ("the expression e would cause a delay long
  // enough to permit the request to complete under reasonable
  // circumstances").
  Micros timeout{Millis(500)};
  // Total attempts. The at-most-once layer makes >1 sound even for
  // non-idempotent requests: re-deliveries are suppressed at the receiver
  // and answered from its reply cache, so "many performances" literally
  // are one performance. On exhaustion the uncertainty remains (the one
  // execution may still have happened), as Section 3.5 warns.
  int max_attempts = 1;
};

struct RemoteReply {
  std::string command;  // one of the declared replies, or "failure"
  ValueList args;
  int attempts = 0;     // how many sends it took
};

// Send `command` to `to` and wait for any reply on a fresh reply port of
// `reply_type`. System failure(...) messages count as replies (command
// "failure") on the final attempt but trigger a retry while attempts
// remain, like timeouts do.
Result<RemoteReply> RemoteCall(Guardian& caller, const PortName& to,
                               const std::string& command, ValueList args,
                               const PortType& reply_type,
                               const RemoteCallOptions& options = {});

// Convenience for the common remote-creation flow: ask `primordial` (the
// primordial port of another node) to create a guardian there, returning
// the provided ports. Creation is not idempotent, but retrying it is safe:
// the request is tracked (duplicates answered from the reply cache), and
// the target node keys remote creation by guardian name, so retries — even
// across a crash of the target in the logged-but-not-acked window —
// converge on the one guardian the first execution made.
Result<std::vector<PortName>> CreateGuardianAt(
    Guardian& caller, const PortName& primordial,
    const std::string& type_name, const std::string& guardian_name,
    ValueList creation_args, bool persistent, Micros timeout,
    int max_attempts = 3);

}  // namespace guardians

#endif  // GUARDIANS_SRC_SENDPRIMS_REMOTE_CALL_H_
