#include "src/transmit/document.h"

#include <sstream>

namespace guardians {

size_t Document::WordCount() const {
  size_t words = 0;
  for (const auto& para : paragraphs_) {
    bool in_word = false;
    for (char c : para) {
      const bool is_space = c == ' ' || c == '\t' || c == '\n';
      if (!is_space && !in_word) {
        ++words;
      }
      in_word = !is_space;
    }
  }
  return words;
}

Result<Value> Document::Encode() const {
  std::vector<Value> paras;
  paras.reserve(paragraphs_.size());
  for (const auto& para : paragraphs_) {
    paras.push_back(Value::Str(para));
  }
  // local_cache_index_ is intentionally absent: it indexes a private table
  // of the owning guardian and has no meaning elsewhere.
  return Value::Record({{"title", Value::Str(title_)},
                        {"paras", Value::Array(std::move(paras))}});
}

bool Document::AbstractEquals(const AbstractObject& other) const {
  if (other.TypeName() != kDocumentTypeName) {
    return false;
  }
  const auto& d = static_cast<const Document&>(other);
  return title_ == d.title_ && paragraphs_ == d.paragraphs_;
}

std::string Document::DebugString() const {
  std::ostringstream os;
  os << '"' << title_ << "\", " << paragraphs_.size() << " para(s)";
  return os.str();
}

Result<Value> SealedNote::Encode() const {
  return Status(Code::kNotTransmittable,
                "sealed_note values may not be sent in messages");
}

bool SealedNote::AbstractEquals(const AbstractObject& other) const {
  if (other.TypeName() != kSealedNoteTypeName) {
    return false;
  }
  return secret_ == static_cast<const SealedNote&>(other).secret_;
}

std::shared_ptr<Document> MakeDocument(std::string title,
                                       std::vector<std::string> paragraphs) {
  return std::make_shared<Document>(std::move(title), std::move(paragraphs));
}

AbstractPtr MakeSealedNote(std::string secret) {
  return std::make_shared<SealedNote>(std::move(secret));
}

TransmitRegistry::DecodeFn DocumentDecoder() {
  return [](const Value& external) -> Result<AbstractPtr> {
    GUARDIANS_ASSIGN_OR_RETURN(Value title_field, external.field("title"));
    GUARDIANS_ASSIGN_OR_RETURN(Value paras_field, external.field("paras"));
    GUARDIANS_ASSIGN_OR_RETURN(std::string title, title_field.AsString());
    if (!paras_field.is(TypeTag::kArray)) {
      return Status(Code::kDecodeError, "document paras not an array");
    }
    std::vector<std::string> paras;
    paras.reserve(paras_field.items().size());
    for (const auto& para : paras_field.items()) {
      GUARDIANS_ASSIGN_OR_RETURN(std::string text, para.AsString());
      paras.push_back(std::move(text));
    }
    return AbstractPtr(MakeDocument(std::move(title), std::move(paras)));
  };
}

}  // namespace guardians
