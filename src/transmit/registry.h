// TransmitRegistry: the per-node table of transmittable abstract types
// (Section 3.3).
//
// "It is desirable to permit different representations of types on
//  different nodes... Each implementation of a transmittable type must
//  provide two operations, encode and decode."
//
// Encode lives on the object itself (AbstractObject::Encode); the registry
// supplies the *receiving* side: for each type name, the decode operation
// that maps the system-wide external rep into this node's internal
// representation. Nodes may register different decoders for the same type
// name — that is the point. A type name absent from the registry is not
// transmittable at this node; a type may also be explicitly forbidden
// (reason 4 of Section 3.3).
#ifndef GUARDIANS_SRC_TRANSMIT_REGISTRY_H_
#define GUARDIANS_SRC_TRANSMIT_REGISTRY_H_

#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/common/result.h"
#include "src/value/value.h"
#include "src/wire/value_codec.h"

namespace guardians {

class TransmitRegistry {
 public:
  using DecodeFn = std::function<Result<AbstractPtr>(const Value& external)>;

  // Install this node's decode operation for `type_name`.
  Status Register(const std::string& type_name, DecodeFn decode);

  // Mark a type as deliberately non-transmittable at this node; decoding a
  // value of it fails with kNotTransmittable.
  void Forbid(const std::string& type_name);

  bool Knows(const std::string& type_name) const;

  Result<AbstractPtr> Decode(const std::string& type_name,
                             const Value& external) const;

  // Adapter handed to the wire layer's DecodeEnvelope.
  AbstractDecodeFn AsDecodeFn() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, DecodeFn> decoders_;
  std::unordered_map<std::string, bool> forbidden_;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_TRANSMIT_REGISTRY_H_
