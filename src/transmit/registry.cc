#include "src/transmit/registry.h"

namespace guardians {

Status TransmitRegistry::Register(const std::string& type_name,
                                  DecodeFn decode) {
  std::lock_guard<std::mutex> lock(mu_);
  if (decoders_.count(type_name) > 0) {
    return Status(Code::kAlreadyExists,
                  "type '" + type_name + "' already registered");
  }
  decoders_[type_name] = std::move(decode);
  return OkStatus();
}

void TransmitRegistry::Forbid(const std::string& type_name) {
  std::lock_guard<std::mutex> lock(mu_);
  forbidden_[type_name] = true;
  decoders_.erase(type_name);
}

bool TransmitRegistry::Knows(const std::string& type_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return decoders_.count(type_name) > 0;
}

Result<AbstractPtr> TransmitRegistry::Decode(const std::string& type_name,
                                             const Value& external) const {
  DecodeFn decode;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto forbidden = forbidden_.find(type_name);
    if (forbidden != forbidden_.end() && forbidden->second) {
      return Status(Code::kNotTransmittable,
                    "type '" + type_name + "' is forbidden at this node");
    }
    auto it = decoders_.find(type_name);
    if (it == decoders_.end()) {
      return Status(Code::kNotTransmittable,
                    "no decode operation for type '" + type_name +
                        "' at this node");
    }
    decode = it->second;
  }
  return decode(external);
}

AbstractDecodeFn TransmitRegistry::AsDecodeFn() const {
  return [this](const std::string& type_name, const Value& external) {
    return Decode(type_name, external);
  };
}

}  // namespace guardians
