#include "src/transmit/assoc_memory.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace guardians {

Result<Value> AssocMemoryObject::Encode() const {
  std::vector<Value> pairs;
  pairs.reserve(Size());
  VisitSorted([&pairs](const std::string& key, const std::string& item) {
    pairs.push_back(Value::Record(
        {{"key", Value::Str(key)}, {"item", Value::Str(item)}}));
  });
  return Value::Array(std::move(pairs));
}

bool AssocMemoryObject::AbstractEquals(const AbstractObject& other) const {
  if (other.TypeName() != kAssocMemoryTypeName) {
    return false;
  }
  const auto& b = static_cast<const AssocMemoryObject&>(other);
  if (Size() != b.Size()) {
    return false;
  }
  std::vector<std::pair<std::string, std::string>> mine;
  std::vector<std::pair<std::string, std::string>> theirs;
  VisitSorted([&mine](const std::string& k, const std::string& v) {
    mine.emplace_back(k, v);
  });
  b.VisitSorted([&theirs](const std::string& k, const std::string& v) {
    theirs.emplace_back(k, v);
  });
  return mine == theirs;
}

std::string AssocMemoryObject::DebugString() const {
  std::ostringstream os;
  os << Size() << " entries";
  return os.str();
}

void HashAssocMemory::AddItem(const std::string& key,
                              const std::string& item) {
  map_[key] = item;
}

Result<std::string> HashAssocMemory::GetItem(const std::string& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return Status(Code::kNotFound, "no item for key '" + key + "'");
  }
  return it->second;
}

void HashAssocMemory::VisitSorted(
    const std::function<void(const std::string&, const std::string&)>& fn)
    const {
  // Hash order is representation-private; encode must produce the canonical
  // external rep, so sort first.
  std::vector<const std::pair<const std::string, std::string>*> entries;
  entries.reserve(map_.size());
  for (const auto& entry : map_) {
    entries.push_back(&entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* entry : entries) {
    fn(entry->first, entry->second);
  }
}

void TreeAssocMemory::AddItem(const std::string& key,
                              const std::string& item) {
  map_[key] = item;
}

Result<std::string> TreeAssocMemory::GetItem(const std::string& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return Status(Code::kNotFound, "no item for key '" + key + "'");
  }
  return it->second;
}

void TreeAssocMemory::VisitSorted(
    const std::function<void(const std::string&, const std::string&)>& fn)
    const {
  for (const auto& [key, item] : map_) {
    fn(key, item);
  }
}

std::shared_ptr<HashAssocMemory> MakeHashAssocMemory() {
  return std::make_shared<HashAssocMemory>();
}

std::shared_ptr<TreeAssocMemory> MakeTreeAssocMemory() {
  return std::make_shared<TreeAssocMemory>();
}

namespace {

template <typename Rep>
Result<AbstractPtr> DecodeInto(const Value& external) {
  if (!external.is(TypeTag::kArray)) {
    return Status(Code::kDecodeError, "assoc_memory external rep not array");
  }
  auto rep = std::make_shared<Rep>();
  for (const auto& pair : external.items()) {
    GUARDIANS_ASSIGN_OR_RETURN(Value key_field, pair.field("key"));
    GUARDIANS_ASSIGN_OR_RETURN(Value item_field, pair.field("item"));
    GUARDIANS_ASSIGN_OR_RETURN(std::string key, key_field.AsString());
    GUARDIANS_ASSIGN_OR_RETURN(std::string item, item_field.AsString());
    rep->AddItem(key, item);
  }
  return AbstractPtr(rep);
}

}  // namespace

TransmitRegistry::DecodeFn HashAssocMemoryDecoder() {
  return [](const Value& external) {
    return DecodeInto<HashAssocMemory>(external);
  };
}

TransmitRegistry::DecodeFn TreeAssocMemoryDecoder() {
  return [](const Value& external) {
    return DecodeInto<TreeAssocMemory>(external);
  };
}

}  // namespace guardians
