#include "src/transmit/complex.h"

#include <cmath>
#include <sstream>

namespace guardians {

Result<Value> ComplexObject::Encode() const {
  return Value::Record({{"re", Value::Real(Re())}, {"im", Value::Real(Im())}});
}

bool ComplexObject::AbstractEquals(const AbstractObject& other) const {
  if (other.TypeName() != kComplexTypeName) {
    return false;
  }
  const auto& c = static_cast<const ComplexObject&>(other);
  constexpr double kEps = 1e-9;
  return std::fabs(Re() - c.Re()) < kEps && std::fabs(Im() - c.Im()) < kEps;
}

std::string ComplexObject::DebugString() const {
  std::ostringstream os;
  os << Re() << (Im() < 0 ? "" : "+") << Im() << "i";
  return os.str();
}

double PolarComplex::Re() const { return r_ * std::cos(theta_); }
double PolarComplex::Im() const { return r_ * std::sin(theta_); }

AbstractPtr MakeRectComplex(double re, double im) {
  return std::make_shared<RectComplex>(re, im);
}

AbstractPtr MakePolarComplex(double r, double theta) {
  return std::make_shared<PolarComplex>(r, theta);
}

namespace {

Result<std::pair<double, double>> ParseExternal(const Value& external) {
  GUARDIANS_ASSIGN_OR_RETURN(Value re_field, external.field("re"));
  GUARDIANS_ASSIGN_OR_RETURN(Value im_field, external.field("im"));
  GUARDIANS_ASSIGN_OR_RETURN(double re, re_field.AsReal());
  GUARDIANS_ASSIGN_OR_RETURN(double im, im_field.AsReal());
  return std::make_pair(re, im);
}

}  // namespace

TransmitRegistry::DecodeFn RectComplexDecoder() {
  return [](const Value& external) -> Result<AbstractPtr> {
    GUARDIANS_ASSIGN_OR_RETURN(auto coords, ParseExternal(external));
    return MakeRectComplex(coords.first, coords.second);
  };
}

TransmitRegistry::DecodeFn PolarComplexDecoder() {
  return [](const Value& external) -> Result<AbstractPtr> {
    GUARDIANS_ASSIGN_OR_RETURN(auto coords, ParseExternal(external));
    const double r = std::hypot(coords.first, coords.second);
    const double theta = std::atan2(coords.second, coords.first);
    return MakePolarComplex(r, theta);
  };
}

}  // namespace guardians
