// Document: a transmittable type for the office-automation domain the
// paper's introduction motivates. It demonstrates two more of Section 3.3's
// reasons why transmission must be programmer-controlled:
//
//  - reason 3: an object may contain guardian-dependent information (here,
//    a node-local cache index) "which should not be transmitted in a
//    message since it would not be meaningful to any other guardian" — the
//    encode operation deliberately omits it;
//  - reason 4: "for some types it may be desirable to forbid sending the
//    abstract values in messages" — SealedNote always refuses to encode.
//
// External rep of document: record{title: string, paras: array of string}.
#ifndef GUARDIANS_SRC_TRANSMIT_DOCUMENT_H_
#define GUARDIANS_SRC_TRANSMIT_DOCUMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/transmit/registry.h"
#include "src/value/value.h"

namespace guardians {

inline constexpr char kDocumentTypeName[] = "document";
inline constexpr char kSealedNoteTypeName[] = "sealed_note";

class Document : public AbstractObject {
 public:
  Document(std::string title, std::vector<std::string> paragraphs)
      : title_(std::move(title)), paragraphs_(std::move(paragraphs)) {}

  const std::string& title() const { return title_; }
  const std::vector<std::string>& paragraphs() const { return paragraphs_; }
  size_t WordCount() const;

  // Guardian-dependent information: meaningful only inside the guardian
  // that set it; never transmitted (Section 3.3 reason 3).
  void SetLocalCacheIndex(int64_t index) { local_cache_index_ = index; }
  int64_t local_cache_index() const { return local_cache_index_; }

  std::string TypeName() const override { return kDocumentTypeName; }
  Result<Value> Encode() const override;
  bool AbstractEquals(const AbstractObject& other) const override;
  std::string DebugString() const override;

 private:
  std::string title_;
  std::vector<std::string> paragraphs_;
  int64_t local_cache_index_ = -1;
};

// A type whose values may never leave the guardian: Encode always fails
// with kNotTransmittable, so any send containing one terminates.
class SealedNote : public AbstractObject {
 public:
  explicit SealedNote(std::string secret) : secret_(std::move(secret)) {}

  const std::string& secret() const { return secret_; }

  std::string TypeName() const override { return kSealedNoteTypeName; }
  Result<Value> Encode() const override;
  bool AbstractEquals(const AbstractObject& other) const override;
  std::string DebugString() const override { return "<sealed>"; }

 private:
  std::string secret_;
};

std::shared_ptr<Document> MakeDocument(std::string title,
                                       std::vector<std::string> paragraphs);
AbstractPtr MakeSealedNote(std::string secret);

TransmitRegistry::DecodeFn DocumentDecoder();

}  // namespace guardians

#endif  // GUARDIANS_SRC_TRANSMIT_DOCUMENT_H_
