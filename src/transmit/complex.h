// Complex numbers: the paper's first transmittable-type example.
//
// "A simple example is complex numbers, where on one node the
//  representation might be real/imaginary coordinates, while on another
//  polar coordinates might be used; the external rep might be the
//  real/imaginary coordinates."
//
// External rep (system-wide): record{re: real, im: real}.
#ifndef GUARDIANS_SRC_TRANSMIT_COMPLEX_H_
#define GUARDIANS_SRC_TRANSMIT_COMPLEX_H_

#include <memory>

#include "src/transmit/registry.h"
#include "src/value/value.h"

namespace guardians {

inline constexpr char kComplexTypeName[] = "complex";

// Abstract interface shared by both representations.
class ComplexObject : public AbstractObject {
 public:
  virtual double Re() const = 0;
  virtual double Im() const = 0;

  std::string TypeName() const override { return kComplexTypeName; }
  Result<Value> Encode() const override;
  bool AbstractEquals(const AbstractObject& other) const override;
  std::string DebugString() const override;
};

// Rectangular (real/imaginary) representation.
class RectComplex : public ComplexObject {
 public:
  RectComplex(double re, double im) : re_(re), im_(im) {}
  double Re() const override { return re_; }
  double Im() const override { return im_; }

 private:
  double re_;
  double im_;
};

// Polar (magnitude/angle) representation.
class PolarComplex : public ComplexObject {
 public:
  PolarComplex(double r, double theta) : r_(r), theta_(theta) {}
  double Re() const override;
  double Im() const override;
  double Magnitude() const { return r_; }
  double Angle() const { return theta_; }

 private:
  double r_;
  double theta_;
};

AbstractPtr MakeRectComplex(double re, double im);
AbstractPtr MakePolarComplex(double r, double theta);

// Per-node decode operations: external rep -> this node's representation.
TransmitRegistry::DecodeFn RectComplexDecoder();
TransmitRegistry::DecodeFn PolarComplexDecoder();

}  // namespace guardians

#endif  // GUARDIANS_SRC_TRANSMIT_COMPLEX_H_
