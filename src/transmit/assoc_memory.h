// Associative memory: the paper's second transmittable-type example.
//
// "Suppose that on node A the representation makes use of a hash table,
//  while on node B the representation uses a tree. A possible external rep
//  might be a sequence of items with associated keys. Then encode on node A
//  would build a sequence of key-item pairs from the hash table
//  representation, and decode on node B would construct a tree
//  representation from such a sequence."
//
// External rep (system-wide): array of record{key: string, item: string},
// sorted by key so the external form is canonical.
#ifndef GUARDIANS_SRC_TRANSMIT_ASSOC_MEMORY_H_
#define GUARDIANS_SRC_TRANSMIT_ASSOC_MEMORY_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/transmit/registry.h"
#include "src/value/value.h"

namespace guardians {

inline constexpr char kAssocMemoryTypeName[] = "assoc_memory";

// Abstract operations of the type (add-item, get-item) shared by both
// representations. Objects are used copy-on-build here: construct, fill,
// then treat as a value.
class AssocMemoryObject : public AbstractObject {
 public:
  virtual void AddItem(const std::string& key, const std::string& item) = 0;
  virtual Result<std::string> GetItem(const std::string& key) const = 0;
  virtual size_t Size() const = 0;
  // Visit pairs in canonical (sorted-key) order, for encode and equality.
  virtual void VisitSorted(
      const std::function<void(const std::string&, const std::string&)>& fn)
      const = 0;

  std::string TypeName() const override { return kAssocMemoryTypeName; }
  Result<Value> Encode() const override;
  bool AbstractEquals(const AbstractObject& other) const override;
  std::string DebugString() const override;
};

// Node-A representation: hash table.
class HashAssocMemory : public AssocMemoryObject {
 public:
  void AddItem(const std::string& key, const std::string& item) override;
  Result<std::string> GetItem(const std::string& key) const override;
  size_t Size() const override { return map_.size(); }
  void VisitSorted(
      const std::function<void(const std::string&, const std::string&)>& fn)
      const override;

 private:
  std::unordered_map<std::string, std::string> map_;
};

// Node-B representation: ordered tree.
class TreeAssocMemory : public AssocMemoryObject {
 public:
  void AddItem(const std::string& key, const std::string& item) override;
  Result<std::string> GetItem(const std::string& key) const override;
  size_t Size() const override { return map_.size(); }
  void VisitSorted(
      const std::function<void(const std::string&, const std::string&)>& fn)
      const override;

 private:
  std::map<std::string, std::string> map_;
};

std::shared_ptr<HashAssocMemory> MakeHashAssocMemory();
std::shared_ptr<TreeAssocMemory> MakeTreeAssocMemory();

TransmitRegistry::DecodeFn HashAssocMemoryDecoder();
TransmitRegistry::DecodeFn TreeAssocMemoryDecoder();

}  // namespace guardians

#endif  // GUARDIANS_SRC_TRANSMIT_ASSOC_MEMORY_H_
