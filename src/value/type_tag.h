// Type tags for the built-in value universe (Section 3.1: messages carry
// the *values* of objects, never addresses).
#ifndef GUARDIANS_SRC_VALUE_TYPE_TAG_H_
#define GUARDIANS_SRC_VALUE_TYPE_TAG_H_

#include <cstdint>
#include <string_view>

namespace guardians {

enum class TypeTag : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,       // 64-bit signed, subject to system-wide WireLimits (§3.3)
  kReal = 3,      // IEEE double
  kString = 4,
  kBytes = 5,
  kArray = 6,     // homogeneous or heterogeneous sequence of values
  kRecord = 7,    // ordered named fields
  kPortName = 8,  // global name of a port (§3.2) — the only global names
  kToken = 9,     // sealed capability for an object (§2.1)
  kAbstract = 10, // user-defined transmittable type (§3.3)
  kAny = 11,      // wildcard in port-type signatures only; never on the wire
};

std::string_view TypeTagName(TypeTag tag);

}  // namespace guardians

#endif  // GUARDIANS_SRC_VALUE_TYPE_TAG_H_
