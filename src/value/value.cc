#include "src/value/value.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace guardians {

std::string_view TypeTagName(TypeTag tag) {
  switch (tag) {
    case TypeTag::kNull:
      return "null";
    case TypeTag::kBool:
      return "bool";
    case TypeTag::kInt:
      return "int";
    case TypeTag::kReal:
      return "real";
    case TypeTag::kString:
      return "string";
    case TypeTag::kBytes:
      return "bytes";
    case TypeTag::kArray:
      return "array";
    case TypeTag::kRecord:
      return "record";
    case TypeTag::kPortName:
      return "port";
    case TypeTag::kToken:
      return "token";
    case TypeTag::kAbstract:
      return "abstract";
    case TypeTag::kAny:
      return "any";
  }
  return "unknown";
}

std::string PortName::ToString() const {
  std::ostringstream os;
  os << "port(n" << node << "/g" << guardian << "." << port_index << ")";
  return os.str();
}

std::string Token::ToString() const {
  std::ostringstream os;
  os << "token(g" << owner << "/sealed)";
  return os.str();
}

// --- Constructors ----------------------------------------------------------

Value Value::Bool(bool b) {
  Value v;
  v.tag_ = TypeTag::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Int(int64_t i) {
  Value v;
  v.tag_ = TypeTag::kInt;
  v.int_ = i;
  return v;
}

Value Value::Real(double d) {
  Value v;
  v.tag_ = TypeTag::kReal;
  v.real_ = d;
  return v;
}

Value Value::Str(std::string s) {
  Value v;
  v.tag_ = TypeTag::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::Blob(Bytes b) {
  Value v;
  v.tag_ = TypeTag::kBytes;
  v.bytes_ = std::move(b);
  return v;
}

Value Value::Array(std::vector<Value> its) {
  Value v;
  v.tag_ = TypeTag::kArray;
  v.items_ = std::move(its);
  return v;
}

Value Value::Record(std::vector<Field> fs) {
  Value v;
  v.tag_ = TypeTag::kRecord;
  v.fields_ = std::move(fs);
  return v;
}

Value Value::OfPort(const PortName& p) {
  Value v;
  v.tag_ = TypeTag::kPortName;
  v.port_ = p;
  return v;
}

Value Value::OfToken(const Token& t) {
  Value v;
  v.tag_ = TypeTag::kToken;
  v.token_ = t;
  return v;
}

Value Value::Abstract(AbstractPtr obj) {
  assert(obj != nullptr);
  Value v;
  v.tag_ = TypeTag::kAbstract;
  v.abstract_ = std::move(obj);
  return v;
}

// --- Checked accessors -----------------------------------------------------

namespace {
Status TagMismatch(TypeTag want, TypeTag got) {
  return Status(Code::kTypeError,
                std::string("expected ") + std::string(TypeTagName(want)) +
                    ", got " + std::string(TypeTagName(got)));
}
}  // namespace

Result<bool> Value::AsBool() const {
  if (tag_ != TypeTag::kBool) {
    return TagMismatch(TypeTag::kBool, tag_);
  }
  return bool_;
}

Result<int64_t> Value::AsInt() const {
  if (tag_ != TypeTag::kInt) {
    return TagMismatch(TypeTag::kInt, tag_);
  }
  return int_;
}

Result<double> Value::AsReal() const {
  if (tag_ != TypeTag::kReal) {
    return TagMismatch(TypeTag::kReal, tag_);
  }
  return real_;
}

Result<std::string> Value::AsString() const {
  if (tag_ != TypeTag::kString) {
    return TagMismatch(TypeTag::kString, tag_);
  }
  return string_;
}

Result<Bytes> Value::AsBytes() const {
  if (tag_ != TypeTag::kBytes) {
    return TagMismatch(TypeTag::kBytes, tag_);
  }
  return bytes_;
}

Result<PortName> Value::AsPort() const {
  if (tag_ != TypeTag::kPortName) {
    return TagMismatch(TypeTag::kPortName, tag_);
  }
  return port_;
}

Result<Token> Value::AsToken() const {
  if (tag_ != TypeTag::kToken) {
    return TagMismatch(TypeTag::kToken, tag_);
  }
  return token_;
}

Result<AbstractPtr> Value::AsAbstract() const {
  if (tag_ != TypeTag::kAbstract) {
    return TagMismatch(TypeTag::kAbstract, tag_);
  }
  return abstract_;
}

// --- Unchecked accessors ---------------------------------------------------

bool Value::bool_value() const {
  assert(tag_ == TypeTag::kBool);
  return bool_;
}

int64_t Value::int_value() const {
  assert(tag_ == TypeTag::kInt);
  return int_;
}

double Value::real_value() const {
  assert(tag_ == TypeTag::kReal);
  return real_;
}

const std::string& Value::string_value() const {
  assert(tag_ == TypeTag::kString);
  return string_;
}

const Bytes& Value::bytes_value() const {
  assert(tag_ == TypeTag::kBytes);
  return bytes_;
}

const PortName& Value::port_value() const {
  assert(tag_ == TypeTag::kPortName);
  return port_;
}

const Token& Value::token_value() const {
  assert(tag_ == TypeTag::kToken);
  return token_;
}

const AbstractPtr& Value::abstract_value() const {
  assert(tag_ == TypeTag::kAbstract);
  return abstract_;
}

const std::vector<Value>& Value::items() const {
  assert(tag_ == TypeTag::kArray);
  return items_;
}

size_t Value::size() const {
  assert(tag_ == TypeTag::kArray);
  return items_.size();
}

const Value& Value::at(size_t i) const {
  assert(tag_ == TypeTag::kArray && i < items_.size());
  return items_[i];
}

const std::vector<Value::Field>& Value::fields() const {
  assert(tag_ == TypeTag::kRecord);
  return fields_;
}

Result<Value> Value::field(const std::string& name) const {
  if (tag_ != TypeTag::kRecord) {
    return TagMismatch(TypeTag::kRecord, tag_);
  }
  for (const auto& [k, v] : fields_) {
    if (k == name) {
      return v;
    }
  }
  return Status(Code::kNotFound, "no field '" + name + "'");
}

bool Value::HasField(const std::string& name) const {
  if (tag_ != TypeTag::kRecord) {
    return false;
  }
  for (const auto& [k, v] : fields_) {
    if (k == name) {
      return true;
    }
  }
  return false;
}

// --- Equality, size, rendering --------------------------------------------

bool Value::Equals(const Value& other) const {
  if (tag_ != other.tag_) {
    return false;
  }
  switch (tag_) {
    case TypeTag::kNull:
      return true;
    case TypeTag::kBool:
      return bool_ == other.bool_;
    case TypeTag::kInt:
      return int_ == other.int_;
    case TypeTag::kReal:
      return real_ == other.real_;
    case TypeTag::kString:
      return string_ == other.string_;
    case TypeTag::kBytes:
      return bytes_ == other.bytes_;
    case TypeTag::kArray: {
      if (items_.size() != other.items_.size()) {
        return false;
      }
      for (size_t i = 0; i < items_.size(); ++i) {
        if (!items_[i].Equals(other.items_[i])) {
          return false;
        }
      }
      return true;
    }
    case TypeTag::kRecord: {
      if (fields_.size() != other.fields_.size()) {
        return false;
      }
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].first != other.fields_[i].first ||
            !fields_[i].second.Equals(other.fields_[i].second)) {
          return false;
        }
      }
      return true;
    }
    case TypeTag::kPortName:
      return port_ == other.port_;
    case TypeTag::kToken:
      return token_ == other.token_;
    case TypeTag::kAbstract:
      return abstract_->AbstractEquals(*other.abstract_);
    case TypeTag::kAny:
      return false;
  }
  return false;
}

size_t Value::ApproxSize() const {
  switch (tag_) {
    case TypeTag::kNull:
      return 1;
    case TypeTag::kBool:
      return 1;
    case TypeTag::kInt:
      return 8;
    case TypeTag::kReal:
      return 8;
    case TypeTag::kString:
      return string_.size() + 4;
    case TypeTag::kBytes:
      return bytes_.size() + 4;
    case TypeTag::kArray: {
      size_t n = 4;
      for (const auto& v : items_) {
        n += v.ApproxSize();
      }
      return n;
    }
    case TypeTag::kRecord: {
      size_t n = 4;
      for (const auto& [k, v] : fields_) {
        n += k.size() + v.ApproxSize();
      }
      return n;
    }
    case TypeTag::kPortName:
      return 24;
    case TypeTag::kToken:
      return 24;
    case TypeTag::kAbstract:
      return 64;  // estimate; real size known only after encode
    case TypeTag::kAny:
      return 0;
  }
  return 0;
}

std::string Value::ToString() const {
  std::ostringstream os;
  switch (tag_) {
    case TypeTag::kNull:
      os << "null";
      break;
    case TypeTag::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case TypeTag::kInt:
      os << int_;
      break;
    case TypeTag::kReal:
      os << real_;
      break;
    case TypeTag::kString:
      os << '"' << string_ << '"';
      break;
    case TypeTag::kBytes:
      os << "bytes[" << bytes_.size() << "]";
      break;
    case TypeTag::kArray: {
      os << '[';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) {
          os << ", ";
        }
        os << items_[i].ToString();
      }
      os << ']';
      break;
    }
    case TypeTag::kRecord: {
      os << '{';
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) {
          os << ", ";
        }
        os << fields_[i].first << ": " << fields_[i].second.ToString();
      }
      os << '}';
      break;
    }
    case TypeTag::kPortName:
      os << port_.ToString();
      break;
    case TypeTag::kToken:
      os << token_.ToString();
      break;
    case TypeTag::kAbstract:
      os << abstract_->TypeName() << "(" << abstract_->DebugString() << ")";
      break;
    case TypeTag::kAny:
      os << "any";
      break;
  }
  return os.str();
}

}  // namespace guardians
