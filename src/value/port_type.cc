#include "src/value/port_type.h"

#include <sstream>

#include "src/common/bytes.h"

namespace guardians {

bool ArgType::Matches(const Value& v) const {
  if (tag == TypeTag::kAny) {
    return true;
  }
  if (v.tag() != tag) {
    return false;
  }
  if (tag == TypeTag::kAbstract) {
    return v.abstract_value()->TypeName() == abstract_name;
  }
  return true;
}

std::string ArgType::Canonical() const {
  if (tag == TypeTag::kAbstract) {
    return "abstract<" + abstract_name + ">";
  }
  return std::string(TypeTagName(tag));
}

std::string MessageSig::Canonical() const {
  std::ostringstream os;
  os << command << '(';
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) {
      os << ',';
    }
    os << args[i].Canonical();
  }
  os << ')';
  if (!replies.empty()) {
    os << " replies(";
    for (size_t i = 0; i < replies.size(); ++i) {
      if (i > 0) {
        os << ',';
      }
      os << replies[i];
    }
    os << ')';
  }
  return os.str();
}

PortType::PortType(std::string name, std::vector<MessageSig> sigs)
    : name_(std::move(name)), sigs_(std::move(sigs)) {
  hash_ = Fnv1a64(Canonical());
}

std::string PortType::Canonical() const {
  std::ostringstream os;
  os << "port " << name_ << " {";
  for (const auto& sig : sigs_) {
    os << ' ' << sig.Canonical() << ';';
  }
  os << " }";
  return os.str();
}

MessageSig FailureSig() {
  return MessageSig{kFailureCommand, {ArgType::Of(TypeTag::kString)}, {}};
}

Result<MessageSig> PortType::Find(const std::string& command) const {
  if (command == kFailureCommand) {
    return FailureSig();
  }
  for (const auto& sig : sigs_) {
    if (sig.command == command) {
      return sig;
    }
  }
  return Status(Code::kNotFound,
                "port type '" + name_ + "' has no command '" + command + "'");
}

Status PortType::Check(const std::string& command, const ValueList& args,
                       bool has_reply_port) const {
  auto sig = Find(command);
  if (!sig.ok()) {
    return Status(Code::kTypeError, sig.status().message());
  }
  if (args.size() != sig->args.size()) {
    std::ostringstream os;
    os << "command '" << command << "' of port type '" << name_ << "' takes "
       << sig->args.size() << " argument(s), got " << args.size();
    return Status(Code::kTypeError, os.str());
  }
  for (size_t i = 0; i < args.size(); ++i) {
    if (!sig->args[i].Matches(args[i])) {
      std::ostringstream os;
      os << "argument " << i << " of '" << command << "': expected "
         << sig->args[i].Canonical() << ", got "
         << TypeTagName(args[i].tag());
      return Status(Code::kTypeError, os.str());
    }
  }
  if (has_reply_port && sig->replies.empty() && command != kFailureCommand) {
    return Status(Code::kTypeError,
                  "command '" + command +
                      "' declares no replies but a replyto port was given");
  }
  return OkStatus();
}

bool PortType::ExpectsReply(const std::string& command) const {
  auto sig = Find(command);
  return sig.ok() && !sig->replies.empty();
}

}  // namespace guardians
