// Port types (Section 3.2): a port is described by the messages that can be
// sent to it. Each message signature pairs a command identifier with the
// argument types and, optionally, the reply commands the requester may
// expect (the `replies` clause — really a description of the extra replyto
// argument, singled out to clarify intent).
//
// Port types are the unit of message type checking: the type's hash is
// embedded in every PortName, and every send is validated against the
// declared type before transmission. This reproduces CLU's compile-time
// checking "in the context of a library containing descriptions of guardian
// headers", moved to send time.
#ifndef GUARDIANS_SRC_VALUE_PORT_TYPE_H_
#define GUARDIANS_SRC_VALUE_PORT_TYPE_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/value/value.h"

namespace guardians {

// The type of one message argument. For built-in types the tag suffices;
// for abstract types the system-wide type name is part of the signature.
struct ArgType {
  TypeTag tag = TypeTag::kAny;
  std::string abstract_name;  // set only when tag == kAbstract

  static ArgType Any() { return {TypeTag::kAny, ""}; }
  static ArgType Of(TypeTag t) { return {t, ""}; }
  static ArgType AbstractOf(std::string name) {
    return {TypeTag::kAbstract, std::move(name)};
  }

  // Does a concrete value satisfy this argument type?
  bool Matches(const Value& v) const;

  // Canonical rendering used in the type hash ("int", "abstract<complex>").
  std::string Canonical() const;

  friend bool operator==(const ArgType& a, const ArgType& b) {
    return a.tag == b.tag && a.abstract_name == b.abstract_name;
  }
};

// One `when C(arg types) [replies (r1, r2, ...)]` line of a port type.
struct MessageSig {
  std::string command;
  std::vector<ArgType> args;
  // Commands of the expected responses; empty means no response expected.
  // As in the paper, a non-empty replies list means the message carries an
  // implicit extra replyto-port argument.
  std::vector<std::string> replies;

  std::string Canonical() const;
};

// A full port type: a named set of message signatures. The implicit system
// message `failure(string)` is associated with *every* port type and need
// not (must not) be declared.
class PortType {
 public:
  PortType() = default;
  PortType(std::string name, std::vector<MessageSig> sigs);

  const std::string& name() const { return name_; }
  const std::vector<MessageSig>& signatures() const { return sigs_; }
  uint64_t hash() const { return hash_; }

  // Find the signature for a command; understands the implicit failure
  // message. kNoSuchPort... no: kNotFound when the command isn't declared.
  Result<MessageSig> Find(const std::string& command) const;

  // Check a concrete (command, args, has_reply_port) against this type.
  // Returns kTypeError with a specific explanation on mismatch.
  Status Check(const std::string& command, const ValueList& args,
               bool has_reply_port) const;

  // Does `command` expect replies (i.e. may carry a replyto port)?
  bool ExpectsReply(const std::string& command) const;

  // The canonical text from which the hash is computed; stable across
  // processes, suitable for the guardian-header library.
  std::string Canonical() const;

 private:
  std::string name_;
  std::vector<MessageSig> sigs_;
  uint64_t hash_ = 0;
};

// The implicit system failure message's command identifier.
inline constexpr char kFailureCommand[] = "failure";

// Signature of the implicit failure message: failure(string).
MessageSig FailureSig();

}  // namespace guardians

#endif  // GUARDIANS_SRC_VALUE_PORT_TYPE_H_
