// PortName: the global name of a port (Section 3.2). Ports are the only
// entities with global names; a port name can be sent in messages, so many
// sources may come to hold it.
//
// The name is location-bearing (node + guardian + port index), matching the
// paper's requirement that the programmer, not the system, controls where
// things reside. It also carries the hash of the port's type so that every
// send can be checked against the declared port type (the analog of CLU's
// compile-time checking against a library of guardian headers).
#ifndef GUARDIANS_SRC_VALUE_PORT_NAME_H_
#define GUARDIANS_SRC_VALUE_PORT_NAME_H_

#include <cstdint>
#include <functional>
#include <string>

namespace guardians {

using NodeId = uint32_t;
using GuardianId = uint64_t;

struct PortName {
  NodeId node = 0;
  GuardianId guardian = 0;
  uint32_t port_index = 0;
  uint64_t type_hash = 0;

  bool IsNull() const { return node == 0 && guardian == 0; }

  // "port(n2/g5.1)" for logs.
  std::string ToString() const;

  friend bool operator==(const PortName& a, const PortName& b) {
    return a.node == b.node && a.guardian == b.guardian &&
           a.port_index == b.port_index;
  }
  friend bool operator!=(const PortName& a, const PortName& b) {
    return !(a == b);
  }
};

struct PortNameHash {
  size_t operator()(const PortName& p) const {
    return std::hash<uint64_t>()(
        (static_cast<uint64_t>(p.node) << 40) ^ (p.guardian << 8) ^
        p.port_index);
  }
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_VALUE_PORT_NAME_H_
