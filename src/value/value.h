// Value: the dynamic, CLU-like value universe carried in messages.
//
// Messages contain the values of objects ("2", or the value of a bank
// account object), never their addresses (Section 2.1). A Value is a deep,
// immutable-in-spirit tree over the built-in types plus port names, tokens
// and abstract (user-defined transmittable) values.
#ifndef GUARDIANS_SRC_VALUE_VALUE_H_
#define GUARDIANS_SRC_VALUE_VALUE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/value/abstract.h"
#include "src/value/port_name.h"
#include "src/value/token.h"
#include "src/value/type_tag.h"

namespace guardians {

class Value {
 public:
  using Field = std::pair<std::string, Value>;

  // --- Constructors --------------------------------------------------------
  Value() : tag_(TypeTag::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Int(int64_t i);
  static Value Real(double d);
  static Value Str(std::string s);
  static Value Blob(Bytes b);
  static Value Array(std::vector<Value> items);
  static Value Record(std::vector<Field> fields);
  static Value OfPort(const PortName& p);
  static Value OfToken(const Token& t);
  static Value Abstract(AbstractPtr obj);

  // --- Inspection ----------------------------------------------------------
  TypeTag tag() const { return tag_; }
  bool is(TypeTag t) const { return tag_ == t; }

  // Checked accessors: Result-returning, used when handling untrusted
  // (wire-decoded) values.
  Result<bool> AsBool() const;
  Result<int64_t> AsInt() const;
  Result<double> AsReal() const;
  Result<std::string> AsString() const;
  Result<Bytes> AsBytes() const;
  Result<PortName> AsPort() const;
  Result<Token> AsToken() const;
  Result<AbstractPtr> AsAbstract() const;

  // Unchecked accessors: assert on tag mismatch; for values whose shape the
  // caller has already validated against a port type.
  bool bool_value() const;
  int64_t int_value() const;
  double real_value() const;
  const std::string& string_value() const;
  const Bytes& bytes_value() const;
  const PortName& port_value() const;
  const Token& token_value() const;
  const AbstractPtr& abstract_value() const;

  // Array access.
  const std::vector<Value>& items() const;
  size_t size() const;
  const Value& at(size_t i) const;

  // Record access.
  const std::vector<Field>& fields() const;
  // Field by name; kNotFound if absent.
  Result<Value> field(const std::string& name) const;
  bool HasField(const std::string& name) const;

  // Deep structural equality. Abstract values compare via AbstractEquals.
  bool Equals(const Value& other) const;
  friend bool operator==(const Value& a, const Value& b) {
    return a.Equals(b);
  }

  // Total bytes of payload data (rough size, used for port buffer budgets).
  size_t ApproxSize() const;

  // Debug rendering: `record{flight: 12, date: "1979-09-01"}`.
  std::string ToString() const;

 private:
  TypeTag tag_;
  bool bool_ = false;
  int64_t int_ = 0;
  double real_ = 0.0;
  std::string string_;
  Bytes bytes_;
  std::vector<Value> items_;
  std::vector<Field> fields_;
  PortName port_;
  Token token_;
  AbstractPtr abstract_;
};

using ValueList = std::vector<Value>;

}  // namespace guardians

#endif  // GUARDIANS_SRC_VALUE_VALUE_H_
