// AbstractObject: the in-computer form of a value of a user-defined
// transmittable type (Section 3.3).
//
// Every transmittable type has one system-wide *external rep* (a built-in
// Value shape) and per-implementation encode/decode operations. Encode maps
// the node-local internal representation to the external rep; decode maps
// the external rep to the receiving node's internal representation. Encode
// and decode do not construct messages — the wire layer does that from the
// external rep.
#ifndef GUARDIANS_SRC_VALUE_ABSTRACT_H_
#define GUARDIANS_SRC_VALUE_ABSTRACT_H_

#include <memory>
#include <string>

#include "src/common/result.h"

namespace guardians {

class Value;

// Interface implemented by every node-local representation of a
// transmittable abstract type.
class AbstractObject {
 public:
  virtual ~AbstractObject() = default;

  // The system-wide type name; part of the fixed meaning of the type.
  virtual std::string TypeName() const = 0;

  // encode: internal representation -> external rep (a built-in Value).
  // May fail, in which case the enclosing send terminates with the error
  // ("some encode invocation may raise an exception; in this case the send
  //  command terminates and raises that exception").
  virtual Result<Value> Encode() const = 0;

  // Structural equality on the abstract value (used by tests; the paper's
  // fixed type meaning implies equality is representation-independent).
  virtual bool AbstractEquals(const AbstractObject& other) const = 0;

  // Debug rendering.
  virtual std::string DebugString() const = 0;
};

using AbstractPtr = std::shared_ptr<const AbstractObject>;

}  // namespace guardians

#endif  // GUARDIANS_SRC_VALUE_ABSTRACT_H_
