// Token: a sealed capability for an object inside a guardian (Section 2.1).
//
// "It is possible to send a token for an object in a message; a token is an
//  external name for the object, which can be returned to the guardian that
//  owns the object to request some manipulation of the object. (A token is a
//  sealed capability that can be unsealed only by the creating guardian.)"
//
// The seal is an unforgeable (random, guardian-private) value; only the
// guardian whose seal matches can recover the handle. The system makes no
// guarantee the named object still exists — only the guardian can.
#ifndef GUARDIANS_SRC_VALUE_TOKEN_H_
#define GUARDIANS_SRC_VALUE_TOKEN_H_

#include <cstdint>
#include <string>

#include "src/value/port_name.h"

namespace guardians {

struct Token {
  GuardianId owner = 0;   // the guardian that sealed it
  uint64_t seal = 0;      // sealing value; opaque to everyone else
  uint64_t handle = 0;    // owner-private object handle, hidden by the seal

  bool IsNull() const { return owner == 0 && seal == 0 && handle == 0; }

  std::string ToString() const;

  friend bool operator==(const Token& a, const Token& b) {
    return a.owner == b.owner && a.seal == b.seal && a.handle == b.handle;
  }
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_VALUE_TOKEN_H_
