#include "src/services/catalog.h"

#include "src/guardian/system.h"
#include "src/sendprims/remote_call.h"

namespace guardians {

PortType CatalogPortType() {
  const ArgType kStr = ArgType::Of(TypeTag::kString);
  const ArgType kPort = ArgType::Of(TypeTag::kPortName);
  return PortType(
      "catalog",
      {MessageSig{"register_name", {kStr, kPort},
                  {"registered", "name_taken"}},
       MessageSig{"lookup", {kStr}, {"found", "unknown_name"}},
       MessageSig{"unregister", {kStr}, {"removed", "unknown_name"}},
       MessageSig{"list_names", {kStr}, {"names"}}});
}

PortType CatalogReplyType() {
  return PortType(
      "catalog_reply",
      {MessageSig{"registered", {}, {}},
       MessageSig{"name_taken", {ArgType::Of(TypeTag::kPortName)}, {}},
       MessageSig{"found", {ArgType::Of(TypeTag::kPortName)}, {}},
       MessageSig{"unknown_name", {}, {}},
       MessageSig{"removed", {}, {}},
       MessageSig{"names", {ArgType::Of(TypeTag::kArray)}, {}}});
}

Status CatalogGuardian::Setup(const ValueList& args) {
  (void)args;
  return InitCommon(/*recovering=*/false);
}

Status CatalogGuardian::Recover(const ValueList& args) {
  (void)args;
  return InitCommon(/*recovering=*/true);
}

Status CatalogGuardian::InitCommon(bool recovering) {
  log_ = OpenLog("names");
  if (recovering) {
    GUARDIANS_ASSIGN_OR_RETURN(auto records, log_->RecoverValues());
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& record : records) {
      GUARDIANS_ASSIGN_OR_RETURN(Value op, record.field("op"));
      GUARDIANS_ASSIGN_OR_RETURN(Value name, record.field("name"));
      if (op.string_value() == "register") {
        GUARDIANS_ASSIGN_OR_RETURN(Value port, record.field("port"));
        names_[name.string_value()] = port.port_value();
      } else {
        names_.erase(name.string_value());
      }
    }
  }
  AddPort(CatalogPortType(), /*capacity=*/256, /*provided=*/true);
  return OkStatus();
}

void CatalogGuardian::Main() {
  Port* requests = port(0);
  for (;;) {
    auto received = Receive(requests, Micros::max());
    if (!received.ok()) {
      return;
    }
    HandleRequest(*received);
  }
}

void CatalogGuardian::HandleRequest(const Received& request) {
  runtime().system().metrics().counter("services.catalog.requests")->Inc();
  auto reply = [&](const char* command, ValueList args) {
    if (!request.reply_to.IsNull()) {
      Status st = Send(request.reply_to, command, std::move(args));
      (void)st;
    }
  };

  if (request.command == "register_name") {
    const std::string& name = request.args[0].string_value();
    const PortName port = request.args[1].port_value();
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = names_.find(name);
      if (it != names_.end()) {
        if (it->second == port) {
          // Idempotent re-registration (a recovering guardian announcing
          // itself again) succeeds.
          reply("registered", {});
        } else {
          reply("name_taken", {Value::OfPort(it->second)});
        }
        return;
      }
      names_[name] = port;
    }
    Status st = log_->AppendValue(
        Value::Record({{"op", Value::Str("register")},
                       {"name", Value::Str(name)},
                       {"port", Value::OfPort(port)}}));
    (void)st;
    reply("registered", {});

  } else if (request.command == "lookup") {
    const std::string& name = request.args[0].string_value();
    std::lock_guard<std::mutex> lock(mu_);
    auto it = names_.find(name);
    if (it == names_.end()) {
      reply("unknown_name", {});
    } else {
      reply("found", {Value::OfPort(it->second)});
    }

  } else if (request.command == "unregister") {
    const std::string& name = request.args[0].string_value();
    bool removed = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      removed = names_.erase(name) > 0;
    }
    if (removed) {
      Status st = log_->AppendValue(
          Value::Record({{"op", Value::Str("unregister")},
                         {"name", Value::Str(name)}}));
      (void)st;
      reply("removed", {});
    } else {
      reply("unknown_name", {});
    }

  } else if (request.command == "list_names") {
    const std::string& prefix = request.args[0].string_value();
    std::vector<Value> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [name, port] : names_) {
        if (name.compare(0, prefix.size(), prefix) == 0) {
          out.push_back(Value::Str(name));
        }
      }
    }
    reply("names", {Value::Array(std::move(out))});
  }
}

size_t CatalogGuardian::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

Result<PortName> CatalogLookup(Guardian& caller, const PortName& catalog,
                               const std::string& name, Micros timeout,
                               int attempts) {
  RemoteCallOptions options;
  options.timeout = timeout;
  options.max_attempts = attempts;  // lookup is read-only, retry freely
  GUARDIANS_ASSIGN_OR_RETURN(
      RemoteReply reply,
      RemoteCall(caller, catalog, "lookup", {Value::Str(name)},
                 CatalogReplyType(), options));
  if (reply.command == "unknown_name") {
    return Status(Code::kNotFound, "no port registered as '" + name + "'");
  }
  if (reply.command != "found") {
    return Status(Code::kUnreachable, reply.command);
  }
  return reply.args[0].port_value();
}

Status CatalogRegister(Guardian& caller, const PortName& catalog,
                       const std::string& name, const PortName& port,
                       Micros timeout) {
  RemoteCallOptions options;
  options.timeout = timeout;
  options.max_attempts = 3;  // idempotent for the same (name, port)
  GUARDIANS_ASSIGN_OR_RETURN(
      RemoteReply reply,
      RemoteCall(caller, catalog, "register_name",
                 {Value::Str(name), Value::OfPort(port)},
                 CatalogReplyType(), options));
  if (reply.command == "registered") {
    return OkStatus();
  }
  if (reply.command == "name_taken") {
    return Status(Code::kAlreadyExists, "name '" + name + "' is taken");
  }
  return Status(Code::kUnreachable, reply.command);
}

}  // namespace guardians
