#include "src/services/cabinet.h"

#include "src/guardian/system.h"
#include "src/wire/value_codec.h"

namespace guardians {

PortType CabinetPortType() {
  return PortType(
      "cabinet",
      {MessageSig{"file_doc", {ArgType::AbstractOf(kDocumentTypeName)},
                  {"filed"}},
       MessageSig{"fetch", {ArgType::Of(TypeTag::kToken)},
                  {"doc_is", "bad_token"}},
       MessageSig{"find_title", {ArgType::Of(TypeTag::kString)},
                  {"filed", "unknown_title"}},
       MessageSig{"doc_count", {}, {"doc_count_is"}}});
}

PortType CabinetReplyType() {
  return PortType(
      "cabinet_reply",
      {MessageSig{"filed", {ArgType::Of(TypeTag::kToken)}, {}},
       MessageSig{"doc_is", {ArgType::AbstractOf(kDocumentTypeName)}, {}},
       MessageSig{"bad_token", {}, {}},
       MessageSig{"unknown_title", {}, {}},
       MessageSig{"doc_count_is", {ArgType::Of(TypeTag::kInt)}, {}}});
}

Status CabinetGuardian::Setup(const ValueList& args) {
  (void)args;
  return InitCommon(/*recovering=*/false);
}

Status CabinetGuardian::Recover(const ValueList& args) {
  (void)args;
  return InitCommon(/*recovering=*/true);
}

Status CabinetGuardian::InitCommon(bool recovering) {
  // The cabinet must be able to rebuild documents from their logged
  // external reps at recovery time.
  if (!runtime().transmit_registry().Knows(kDocumentTypeName)) {
    Status st = runtime().transmit_registry().Register(kDocumentTypeName,
                                                       DocumentDecoder());
    (void)st;
  }
  log_ = OpenLog("documents");
  if (recovering) {
    GUARDIANS_ASSIGN_OR_RETURN(auto recovery, log_->Recover());
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& record : recovery.records) {
      // Each record is the document's external rep.
      GUARDIANS_ASSIGN_OR_RETURN(Value external,
                                 DecodeValueFromBytes(record));
      auto doc = DocumentDecoder()(external);
      if (doc.ok()) {
        docs_.push_back(std::static_pointer_cast<const Document>(*doc));
      }
    }
  }
  AddPort(CabinetPortType(), /*capacity=*/256, /*provided=*/true);
  return OkStatus();
}

void CabinetGuardian::Main() {
  Port* requests = port(0);
  for (;;) {
    auto received = Receive(requests, Micros::max());
    if (!received.ok()) {
      return;
    }
    HandleRequest(*received);
  }
}

void CabinetGuardian::HandleRequest(const Received& request) {
  runtime().system().metrics().counter("services.cabinet.requests")->Inc();
  auto reply = [&](const char* command, ValueList args) {
    if (!request.reply_to.IsNull()) {
      Status st = Send(request.reply_to, command, std::move(args));
      (void)st;
    }
  };

  if (request.command == "file_doc") {
    auto doc = std::static_pointer_cast<const Document>(
        request.args[0].abstract_value());
    // Permanence first: log the external rep, then file.
    auto external = doc->Encode();
    if (!external.ok()) {
      return;  // not filable; requester times out
    }
    auto bytes = EncodeValueToBytes(*external);
    if (!bytes.ok() || !log_->Append(*bytes).ok()) {
      return;
    }
    size_t index;
    {
      std::lock_guard<std::mutex> lock(mu_);
      docs_.push_back(doc);
      index = docs_.size() - 1;
    }
    reply("filed", {Value::OfToken(Seal(index))});

  } else if (request.command == "fetch") {
    auto index = Unseal(request.args[0].token_value());
    std::shared_ptr<const Document> doc;
    if (index.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (*index < docs_.size()) {
        doc = docs_[*index];
      }
    }
    if (doc == nullptr) {
      reply("bad_token", {});
    } else {
      reply("doc_is", {Value::Abstract(doc)});
    }

  } else if (request.command == "find_title") {
    const std::string& title = request.args[0].string_value();
    // The recovery path for stale tokens: look the document up by content
    // and obtain a fresh token from the current incarnation.
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < docs_.size(); ++i) {
      if (docs_[i]->title() == title) {
        reply("filed", {Value::OfToken(Seal(i))});
        return;
      }
    }
    reply("unknown_title", {});

  } else if (request.command == "doc_count") {
    std::lock_guard<std::mutex> lock(mu_);
    reply("doc_count_is", {Value::Int(static_cast<int64_t>(docs_.size()))});
  }
}

size_t CabinetGuardian::DocCountForTesting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return docs_.size();
}

}  // namespace guardians
