// CabinetGuardian: a persistent filing cabinet for the office-automation
// domain of the paper's introduction.
//
// It exercises three primitives together:
//  - transmittable abstract values: documents arrive and leave as abstract
//    values (Section 3.3), whatever representation each node uses;
//  - tokens: filing returns a sealed token — the drawer index is
//    guardian-dependent information that never leaves in the clear
//    (Section 2.1);
//  - permanence: filed documents are logged and survive a node crash
//    (Section 2.2). Tokens do NOT survive: a new incarnation re-seals, and
//    "the system makes no guarantee that the object named by the token
//    continues to exist; only the guardian can provide such a guarantee" —
//    this guardian provides lookup-by-title as the recovery path.
#ifndef GUARDIANS_SRC_SERVICES_CABINET_H_
#define GUARDIANS_SRC_SERVICES_CABINET_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/guardian/node_runtime.h"
#include "src/transmit/document.h"

namespace guardians {

// file_doc (document)      replies (filed)
// fetch (token)            replies (doc_is, bad_token)
// find_title (title)       replies (filed, unknown_title)   [fresh token]
// doc_count ()             replies (doc_count_is)
PortType CabinetPortType();
PortType CabinetReplyType();

class CabinetGuardian : public Guardian {
 public:
  static constexpr char kTypeName[] = "cabinet";

  Status Setup(const ValueList& args) override;
  Status Recover(const ValueList& args) override;
  void Main() override;

  size_t DocCountForTesting() const;

 private:
  Status InitCommon(bool recovering);
  void HandleRequest(const Received& request);

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<const Document>> docs_;
  Wal* log_ = nullptr;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_SERVICES_CABINET_H_
