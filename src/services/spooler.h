// SpoolerGuardian: an office print spooler — a guardian that guards a
// *device* ("the resources being so guarded may be data, devices or
// computation", Section 2.3).
//
// Internal organization is Figure 1b in miniature: the Main process
// receives requests and queues jobs; a separate printer process consumes
// the queue, so submissions never wait for the device. Clients converse
// with the spooler about job state (queued / printing / done / canceled).
//
// The spooler is deliberately NOT persistent: like Section 3.5's
// transactions, a print queue is forgotten on a crash rather than resumed —
// the clerk resubmits, and the cabinet (which IS persistent) still has the
// document.
#ifndef GUARDIANS_SRC_SERVICES_SPOOLER_H_
#define GUARDIANS_SRC_SERVICES_SPOOLER_H_

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "src/guardian/node_runtime.h"
#include "src/transmit/document.h"

namespace guardians {

// submit (document)    replies (queued)            [job id]
// job_status (job)     replies (job_state)         [state string]
// cancel_job (job)     replies (canceled_job, too_late, unknown_job)
PortType SpoolerPortType();
PortType SpoolerReplyType();

class SpoolerGuardian : public Guardian {
 public:
  static constexpr char kTypeName[] = "spooler";

  // args: [per_word_print_time_us int]
  Status Setup(const ValueList& args) override;
  void Main() override;

  uint64_t printed() const;

 private:
  enum class JobState { kQueued, kPrinting, kDone, kCanceled };
  struct Job {
    int64_t id;
    std::shared_ptr<const Document> doc;
  };

  void PrinterLoop();
  const char* StateName(JobState state) const;

  Micros per_word_{Micros(100)};
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Job> queue_;
  std::map<int64_t, JobState> states_;
  int64_t next_job_ = 1;
  uint64_t printed_ = 0;
  bool shutdown_ = false;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_SERVICES_SPOOLER_H_
