#include "src/services/spooler.h"

#include <thread>

#include "src/guardian/system.h"

namespace guardians {

PortType SpoolerPortType() {
  return PortType(
      "spooler",
      {MessageSig{"submit", {ArgType::AbstractOf(kDocumentTypeName)},
                  {"queued"}},
       MessageSig{"job_status", {ArgType::Of(TypeTag::kInt)},
                  {"job_state", "unknown_job"}},
       MessageSig{"cancel_job", {ArgType::Of(TypeTag::kInt)},
                  {"canceled_job", "too_late", "unknown_job"}}});
}

PortType SpoolerReplyType() {
  return PortType(
      "spooler_reply",
      {MessageSig{"queued", {ArgType::Of(TypeTag::kInt)}, {}},
       MessageSig{"job_state", {ArgType::Of(TypeTag::kString)}, {}},
       MessageSig{"unknown_job", {}, {}},
       MessageSig{"canceled_job", {}, {}},
       MessageSig{"too_late", {}, {}}});
}

Status SpoolerGuardian::Setup(const ValueList& args) {
  if (args.size() != 1 || !args[0].is(TypeTag::kInt)) {
    return Status(Code::kInvalidArgument,
                  "spooler takes (per_word_print_time_us)");
  }
  per_word_ = Micros(args[0].int_value());
  // Documents must be decodable at this node for submissions to arrive.
  if (!runtime().transmit_registry().Knows(kDocumentTypeName)) {
    Status st = runtime().transmit_registry().Register(kDocumentTypeName,
                                                       DocumentDecoder());
    (void)st;
  }
  AddPort(SpoolerPortType(), /*capacity=*/128, /*provided=*/true);
  // The device process (the q of Figure 1b, with the queue as S).
  Fork("printer", [this] { PrinterLoop(); });
  return OkStatus();
}

void SpoolerGuardian::Main() {
  Port* requests = port(0);
  for (;;) {
    auto received = Receive(requests, Micros::max());
    if (!received.ok()) {
      // Node down: release the printer process too.
      {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
      }
      work_cv_.notify_all();
      return;
    }
    runtime().system().metrics().counter("services.spooler.requests")->Inc();
    auto reply = [&](const char* command, ValueList args) {
      if (!received->reply_to.IsNull()) {
        Status st = Send(received->reply_to, command, std::move(args));
        (void)st;
      }
    };

    if (received->command == "submit") {
      auto doc = std::static_pointer_cast<const Document>(
          received->args[0].abstract_value());
      int64_t id;
      {
        std::lock_guard<std::mutex> lock(mu_);
        id = next_job_++;
        queue_.push_back(Job{id, std::move(doc)});
        states_[id] = JobState::kQueued;
      }
      work_cv_.notify_one();
      reply("queued", {Value::Int(id)});

    } else if (received->command == "job_status") {
      const int64_t id = received->args[0].int_value();
      std::lock_guard<std::mutex> lock(mu_);
      auto it = states_.find(id);
      if (it == states_.end()) {
        reply("unknown_job", {});
      } else {
        reply("job_state", {Value::Str(StateName(it->second))});
      }

    } else if (received->command == "cancel_job") {
      const int64_t id = received->args[0].int_value();
      std::lock_guard<std::mutex> lock(mu_);
      auto it = states_.find(id);
      if (it == states_.end()) {
        reply("unknown_job", {});
      } else if (it->second == JobState::kQueued) {
        it->second = JobState::kCanceled;
        reply("canceled_job", {});
      } else {
        // Printing, done, or already canceled: the paper's asymmetry again —
        // what has happened cannot be unhappened.
        reply("too_late", {});
      }
    }
  }
}

void SpoolerGuardian::PrinterLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (shutdown_) {
      return;
    }
    Job job = std::move(queue_.front());
    queue_.pop_front();
    if (states_[job.id] == JobState::kCanceled) {
      continue;  // canceled while queued
    }
    states_[job.id] = JobState::kPrinting;
    const size_t words = job.doc->WordCount();
    lock.unlock();
    // "Print": the device is busy for a word-proportional time.
    if (per_word_.count() > 0 && words > 0) {
      runtime().clock().SleepFor(per_word_ * words);
    }
    lock.lock();
    if (shutdown_) {
      return;
    }
    states_[job.id] = JobState::kDone;
    ++printed_;
  }
}

const char* SpoolerGuardian::StateName(JobState state) const {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kPrinting:
      return "printing";
    case JobState::kDone:
      return "done";
    case JobState::kCanceled:
      return "canceled";
  }
  return "?";
}

uint64_t SpoolerGuardian::printed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return printed_;
}

}  // namespace guardians
