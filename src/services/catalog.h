// CatalogGuardian: a name service built from the primitives.
//
// Port names are the only global names (Section 3.2), and they propagate by
// being "sent in messages". Something must bootstrap that propagation: a
// well-known guardian that maps human names to port names, itself reachable
// via a port name obtained at creation. (The Argus system that grew out of
// this paper acquired exactly such a catalog.)
//
// The catalog is persistent: registrations are logged, so the names survive
// a node crash — a name service that forgot everything on failure would
// undermine the recovery story of every guardian registered in it.
#ifndef GUARDIANS_SRC_SERVICES_CATALOG_H_
#define GUARDIANS_SRC_SERVICES_CATALOG_H_

#include <map>
#include <mutex>
#include <string>

#include "src/guardian/node_runtime.h"

namespace guardians {

// register_name (name, port)  replies (registered, name_taken)
// lookup (name)               replies (found, unknown_name)
// unregister (name)           replies (removed, unknown_name)
// list_names (prefix)         replies (names)
PortType CatalogPortType();
// Reply port type used by catalog clients.
PortType CatalogReplyType();

class CatalogGuardian : public Guardian {
 public:
  static constexpr char kTypeName[] = "catalog";

  Status Setup(const ValueList& args) override;
  Status Recover(const ValueList& args) override;
  void Main() override;

  size_t size() const;

 private:
  Status InitCommon(bool recovering);
  void HandleRequest(const Received& request);

  mutable std::mutex mu_;
  std::map<std::string, PortName> names_;
  Wal* log_ = nullptr;
};

// Client helpers (each is one remote invocation from `caller`).
Result<PortName> CatalogLookup(Guardian& caller, const PortName& catalog,
                               const std::string& name, Micros timeout,
                               int attempts = 3);
Status CatalogRegister(Guardian& caller, const PortName& catalog,
                       const std::string& name, const PortName& port,
                       Micros timeout);

}  // namespace guardians

#endif  // GUARDIANS_SRC_SERVICES_CATALOG_H_
