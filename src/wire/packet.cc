#include "src/wire/packet.h"

#include <algorithm>

#include "src/wire/crc32.h"

namespace guardians {

void Packet::Seal() { crc = Crc32(payload); }

bool Packet::Verify() const { return crc == Crc32(payload); }

std::vector<Packet> Fragment(BufferSlice message, uint64_t msg_id, NodeId src,
                             NodeId dst, uint64_t max_payload,
                             uint64_t trace_id, uint64_t src_session) {
  std::vector<Packet> packets;
  if (max_payload == 0) {
    max_payload = 1;
  }
  const uint32_t count = static_cast<uint32_t>(
      message.empty() ? 1 : (message.size() + max_payload - 1) / max_payload);
  packets.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Packet p;
    p.msg_id = msg_id;
    p.trace_id = trace_id;
    p.src_session = src_session;
    p.src = src;
    p.dst = dst;
    p.frag_index = i;
    p.frag_count = count;
    if (count == 1) {
      p.payload = std::move(message);
    } else {
      // A sub-view of the one encode buffer: all fragments share storage.
      const size_t begin = static_cast<size_t>(i) * max_payload;
      p.payload = message.Sub(begin, max_payload);
    }
    p.Seal();
    packets.push_back(std::move(p));
  }
  return packets;
}

Result<std::optional<BufferSlice>> Reassembler::Add(Packet&& packet) {
  return Add(std::move(packet), Now());
}

Result<std::optional<BufferSlice>> Reassembler::Add(Packet&& packet,
                                                    TimePoint now,
                                                    int64_t* age_micros_out) {
  if (expiry_.count() > 0 && now - last_sweep_ >= expiry_ / 4) {
    ExpireStale(now);
    last_sweep_ = now;
  }
  if (packet.src_session != 0) {
    auto [session_it, fresh_src] =
        sessions_.try_emplace(packet.src, packet.src_session);
    if (!fresh_src && session_it->second != packet.src_session) {
      // First packet from a new incarnation of this source: everything the
      // old incarnation left half-assembled is unfinishable.
      DropSourcePartials(packet.src);
      session_it->second = packet.src_session;
    }
  }
  const Key key{packet.src, packet.src_session, packet.msg_id};
  if (!packet.Verify()) {
    ++corrupt_dropped_;
    partial_.erase(key);
    return Status(Code::kCorrupt, "packet failed error detection");
  }
  if (packet.frag_count == 0 || packet.frag_index >= packet.frag_count) {
    ++corrupt_dropped_;
    partial_.erase(key);
    return Status(Code::kCorrupt, "inconsistent fragment header");
  }
  if (packet.frag_count == 1) {
    // Unfragmented: the payload slice passes straight through, zero-copy.
    if (age_micros_out != nullptr) {
      *age_micros_out = packet.age_micros;
    }
    return std::optional<BufferSlice>(std::move(packet.payload));
  }

  auto it = partial_.find(key);
  if (it == partial_.end()) {
    EvictOldestIfNeeded();
    Partial fresh;
    fresh.frags.resize(packet.frag_count);
    fresh.have.assign(packet.frag_count, 0);
    fresh.first_seen_seq = seq_++;
    fresh.last_update = now;
    it = partial_.emplace(key, std::move(fresh)).first;
  }
  Partial& part = it->second;
  part.last_update = now;
  if (part.frags.size() != packet.frag_count) {
    // Two messages with clashing ids or a corrupted count: drop everything.
    partial_.erase(it);
    ++corrupt_dropped_;
    return Status(Code::kCorrupt, "fragment count mismatch");
  }
  if (!part.have[packet.frag_index]) {
    part.have[packet.frag_index] = 1;
    part.total_bytes += packet.payload.size();
    // Project this fragment's send instant onto the local clock; the
    // partial remembers the earliest so the completed message's age covers
    // both network transit and the wait for sibling fragments.
    const TimePoint frag_sent = now - Micros(packet.age_micros);
    if (frag_sent < part.earliest_send) {
      part.earliest_send = frag_sent;
    }
    part.frags[packet.frag_index] = std::move(packet.payload);
    ++part.received;
  }
  if (part.received < packet.frag_count) {
    return std::optional<BufferSlice>(std::nullopt);
  }
  // At most one gather: when every fragment is still an adjacent view of
  // the sender's encode buffer this is a zero-copy spanning slice.
  BufferSlice message = GatherSlices(part.frags, part.total_bytes);
  if (age_micros_out != nullptr) {
    *age_micros_out =
        part.earliest_send == TimePoint::max()
            ? packet.age_micros
            : std::max<int64_t>(ToMicros(now - part.earliest_send), 0);
  }
  partial_.erase(it);
  return std::optional<BufferSlice>(std::move(message));
}

void Reassembler::SweepExpired(TimePoint now) {
  if (expiry_.count() == 0) {
    return;
  }
  ExpireStale(now);
  last_sweep_ = now;
}

void Reassembler::EvictOldestIfNeeded() {
  if (partial_.size() < max_partial_) {
    return;
  }
  auto oldest = partial_.begin();
  for (auto it = partial_.begin(); it != partial_.end(); ++it) {
    if (it->second.first_seen_seq < oldest->second.first_seen_seq) {
      oldest = it;
    }
  }
  partial_.erase(oldest);
}

void Reassembler::ExpireStale(TimePoint now) {
  for (auto it = partial_.begin(); it != partial_.end();) {
    if (now - it->second.last_update > expiry_) {
      it = partial_.erase(it);
      ++expired_;
    } else {
      ++it;
    }
  }
}

void Reassembler::DropSourcePartials(NodeId src) {
  for (auto it = partial_.begin(); it != partial_.end();) {
    if (it->first.src == src) {
      it = partial_.erase(it);
      ++session_dropped_;
    } else {
      ++it;
    }
  }
}

}  // namespace guardians
