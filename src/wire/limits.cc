#include "src/wire/limits.h"

#include <sstream>

namespace guardians {

Status WireLimits::CheckInt(int64_t v) const {
  if (int_bits >= 64) {
    return OkStatus();
  }
  const int64_t hi = (int64_t{1} << (int_bits - 1)) - 1;
  const int64_t lo = -(int64_t{1} << (int_bits - 1));
  if (v < lo || v > hi) {
    std::ostringstream os;
    os << "integer " << v << " exceeds the system-wide " << int_bits
       << "-bit bound [" << lo << ", " << hi << "]";
    return Status(Code::kOutOfRange, os.str());
  }
  return OkStatus();
}

const WireLimits& DefaultLimits() {
  static const WireLimits kDefault{};
  return kDefault;
}

}  // namespace guardians
