// Packets, fragmentation and reassembly (Section 3.3: "the system is
// responsible for the low-level protocols involved in actually transmitting
// a message, e.g., breaking a large message into packets and reassembling
// the packets, use of redundant information for error detection").
//
// A message is delivered to the target port only "when the message is
// entirely and correctly received at the receiving node (i.e., all packets
// have arrived, and the bits of the message are not in error, as is
// indicated by the error detection bits)". Corrupt or incomplete messages
// are silently dropped, which the upper layers observe as a timeout.
#ifndef GUARDIANS_SRC_WIRE_PACKET_H_
#define GUARDIANS_SRC_WIRE_PACKET_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/value/port_name.h"

namespace guardians {

struct Packet {
  uint64_t msg_id = 0;
  uint64_t trace_id = 0;  // carried beside the payload so the network can
                          // attribute per-hop drop events to a trace
  NodeId src = 0;
  NodeId dst = 0;
  uint32_t frag_index = 0;
  uint32_t frag_count = 1;
  Bytes payload;
  uint32_t crc = 0;  // CRC over payload; the error detection bits

  // Recompute and store the CRC (after constructing / corrupting payload).
  void Seal();
  // Do the error detection bits accept this packet?
  bool Verify() const;

  size_t WireSize() const { return payload.size() + 32; }
};

// Split an encoded message into CRC-sealed packets of at most
// `max_payload` bytes each. Every fragment carries the message's trace id.
std::vector<Packet> Fragment(const Bytes& message, uint64_t msg_id,
                             NodeId src, NodeId dst, uint64_t max_payload,
                             uint64_t trace_id = 0);

// Per-node packet reassembler. Not thread-safe; callers serialize.
class Reassembler {
 public:
  // Bound on concurrently-incomplete messages; oldest partials are evicted
  // beyond it (their messages are lost, as the network permits).
  explicit Reassembler(size_t max_partial = 1024)
      : max_partial_(max_partial) {}

  // Feed one packet. Returns:
  //  - the full message bytes when this packet completed a message,
  //  - std::nullopt when more packets are needed,
  //  - kCorrupt when the packet fails its CRC or is inconsistent (dropped;
  //    any partial state for that message is discarded).
  Result<std::optional<Bytes>> Add(const Packet& packet);

  size_t partial_count() const { return partial_.size(); }
  uint64_t corrupt_dropped() const { return corrupt_dropped_; }

 private:
  struct Partial {
    std::vector<Bytes> frags;
    uint32_t received = 0;
    uint64_t first_seen_seq = 0;
  };

  void EvictOldestIfNeeded();

  size_t max_partial_;
  uint64_t seq_ = 0;
  uint64_t corrupt_dropped_ = 0;
  std::unordered_map<uint64_t, Partial> partial_;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_WIRE_PACKET_H_
