// Packets, fragmentation and reassembly (Section 3.3: "the system is
// responsible for the low-level protocols involved in actually transmitting
// a message, e.g., breaking a large message into packets and reassembling
// the packets, use of redundant information for error detection").
//
// A message is delivered to the target port only "when the message is
// entirely and correctly received at the receiving node (i.e., all packets
// have arrived, and the bits of the message are not in error, as is
// indicated by the error detection bits)". Corrupt or incomplete messages
// are silently dropped, which the upper layers observe as a timeout.
#ifndef GUARDIANS_SRC_WIRE_PACKET_H_
#define GUARDIANS_SRC_WIRE_PACKET_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/value/port_name.h"

namespace guardians {

struct Packet {
  uint64_t msg_id = 0;
  uint64_t trace_id = 0;  // carried beside the payload so the network can
                          // attribute per-hop drop events to a trace
  NodeId src = 0;
  NodeId dst = 0;
  uint32_t frag_index = 0;
  uint32_t frag_count = 1;
  Bytes payload;
  uint32_t crc = 0;  // CRC over payload; the error detection bits

  // Recompute and store the CRC (after constructing / corrupting payload).
  void Seal();
  // Do the error detection bits accept this packet?
  bool Verify() const;

  size_t WireSize() const { return payload.size() + 32; }
};

// Split an encoded message into CRC-sealed packets of at most
// `max_payload` bytes each. Every fragment carries the message's trace id.
// Takes the message by value: a single-fragment message (the common case)
// moves the bytes straight into the packet instead of copying them.
std::vector<Packet> Fragment(Bytes message, uint64_t msg_id, NodeId src,
                             NodeId dst, uint64_t max_payload,
                             uint64_t trace_id = 0);

// Per-node packet reassembler. Not thread-safe; callers serialize.
class Reassembler {
 public:
  // Bound on concurrently-incomplete messages; oldest partials are evicted
  // beyond it (their messages are lost, as the network permits).
  explicit Reassembler(size_t max_partial = 1024)
      : max_partial_(max_partial) {}

  // Feed one packet (consumed: its payload is moved into the partial).
  // Returns:
  //  - the full message bytes when this packet completed a message,
  //  - std::nullopt when more packets are needed,
  //  - kCorrupt when the packet fails its CRC or is inconsistent (dropped;
  //    any partial state for that message is discarded).
  // Partials are keyed by (src, msg_id): two senders minting the same
  // msg_id toward one destination reassemble independently instead of
  // interleaving into (and corrupting) a shared partial.
  Result<std::optional<Bytes>> Add(Packet&& packet);

  size_t partial_count() const { return partial_.size(); }
  uint64_t corrupt_dropped() const { return corrupt_dropped_; }

 private:
  struct Key {
    NodeId src = 0;
    uint64_t msg_id = 0;
    bool operator==(const Key& other) const {
      return src == other.src && msg_id == other.msg_id;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.msg_id * 0x9E3779B97F4A7C15ull;
      h ^= static_cast<uint64_t>(k.src) + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  struct Partial {
    std::vector<Bytes> frags;
    // Explicit received-flags: an empty payload is a valid fragment body,
    // so emptiness cannot double as "not yet seen".
    std::vector<uint8_t> have;
    uint32_t received = 0;
    size_t total_bytes = 0;  // pre-sizes the join on completion
    uint64_t first_seen_seq = 0;
  };

  void EvictOldestIfNeeded();

  size_t max_partial_;
  uint64_t seq_ = 0;
  uint64_t corrupt_dropped_ = 0;
  std::unordered_map<Key, Partial, KeyHash> partial_;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_WIRE_PACKET_H_
