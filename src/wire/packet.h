// Packets, fragmentation and reassembly (Section 3.3: "the system is
// responsible for the low-level protocols involved in actually transmitting
// a message, e.g., breaking a large message into packets and reassembling
// the packets, use of redundant information for error detection").
//
// A message is delivered to the target port only "when the message is
// entirely and correctly received at the receiving node (i.e., all packets
// have arrived, and the bits of the message are not in error, as is
// indicated by the error detection bits)". Corrupt or incomplete messages
// are silently dropped, which the upper layers observe as a timeout.
#ifndef GUARDIANS_SRC_WIRE_PACKET_H_
#define GUARDIANS_SRC_WIRE_PACKET_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/value/port_name.h"

namespace guardians {

struct Packet {
  uint64_t msg_id = 0;
  uint64_t trace_id = 0;  // carried beside the payload so the network can
                          // attribute per-hop drop events to a trace
  // Sending node's incarnation (the §10 dedup session id, random per
  // boot; 0 = unknown/legacy). Reassembly keys partials on it so a
  // restarted node reusing a msg_id can never complete a message half
  // made of pre-crash fragments — each fragment passes its own CRC, so
  // nothing downstream would catch the splice.
  uint64_t src_session = 0;
  NodeId src = 0;
  NodeId dst = 0;
  uint32_t frag_index = 0;
  uint32_t frag_count = 1;
  // A view into the message's single encode buffer: copying a Packet (for
  // duplicate injection) bumps a refcount instead of cloning the bytes.
  // Mutation (test corruption, fault injection) must go through
  // payload.MutableData(), whose copy-on-write keeps shared-buffer twins
  // and sibling fragments intact.
  BufferSlice payload;
  uint32_t crc = 0;  // CRC over payload; the error detection bits
  // Time this packet spent inside the network (queueing + link latency),
  // stamped by the delivery worker at handoff. In-memory metadata, not
  // wire-encoded: it is how the receiving node decrements the envelope's
  // relative deadline budget (§16) without ever comparing absolute
  // timestamps across skewed clocks.
  int64_t age_micros = 0;

  // Recompute and store the CRC (after constructing / corrupting payload).
  void Seal();
  // Do the error detection bits accept this packet?
  bool Verify() const;

  size_t WireSize() const { return payload.size() + 32; }
};

// Split an encoded message into CRC-sealed packets of at most
// `max_payload` bytes each. Every fragment carries the message's trace id
// and the sender's incarnation session. Fragment payloads are sub-views of
// the message slice — no payload bytes are copied, regardless of fragment
// count. (Bytes rvalues convert implicitly: `Fragment(enc.Take(), ...)`
// adopts the encoder's storage as the shared message buffer.)
std::vector<Packet> Fragment(BufferSlice message, uint64_t msg_id, NodeId src,
                             NodeId dst, uint64_t max_payload,
                             uint64_t trace_id = 0, uint64_t src_session = 0);

// Per-node packet reassembler. Not thread-safe; callers serialize.
class Reassembler {
 public:
  // Partials that received no fragment for this long are expired on the
  // next sweep: steady fragment loss must not pin dead partials' payload
  // bytes forever, nor let crash-era garbage outlive recent in-progress
  // messages under count pressure.
  static constexpr Micros kDefaultExpiry = Micros(2'000'000);

  // `max_partial` bounds concurrently-incomplete messages (oldest evicted
  // beyond it); `expiry` is the age horizon above (0 disables age expiry).
  explicit Reassembler(size_t max_partial = 1024,
                       Micros expiry = kDefaultExpiry)
      : max_partial_(max_partial), expiry_(expiry) {}

  // Feed one packet (consumed: its payload slice is moved into the
  // partial). Returns:
  //  - the full message as one contiguous slice when this packet completed
  //    a message. When every fragment is an adjacent view of the sender's
  //    single encode buffer (no corruption-COW along the way), completion
  //    is a zero-copy spanning view; otherwise one pre-sized gather. An
  //    unfragmented message passes its slice straight through.
  //  - std::nullopt when more packets are needed,
  //  - kCorrupt when the packet fails its CRC or is inconsistent (dropped;
  //    any partial state for that message is discarded).
  // Partials are keyed by (src, src_session, msg_id): two senders minting
  // the same msg_id toward one destination reassemble independently, and a
  // restarted sender (fresh session) can never complete a message begun by
  // its previous incarnation. The first packet carrying a *new* session
  // for a source drops that source's surviving partials outright — they
  // belong to a dead incarnation and can never complete legitimately.
  Result<std::optional<BufferSlice>> Add(Packet&& packet);
  // Same, with the caller supplying "now" — how NodeRuntime runs the age
  // sweep on the node's own (possibly simulated, possibly skewed) clock.
  // The no-argument form uses the wall clock. When a message completes and
  // `age_micros_out` is non-null it receives the message's network age: for
  // an unfragmented message the packet's own age, for a fragmented one the
  // oldest fragment's send-to-completion span (its network age plus the
  // time it waited in the partial for its siblings) — the amount a
  // relative deadline budget must be decremented by at this hop.
  Result<std::optional<BufferSlice>> Add(Packet&& packet, TimePoint now,
                                         int64_t* age_micros_out = nullptr);

  size_t partial_count() const { return partial_.size(); }
  uint64_t corrupt_dropped() const { return corrupt_dropped_; }
  // Partials discarded by the age sweep / by a source's session change.
  uint64_t expired() const { return expired_; }
  uint64_t session_dropped() const { return session_dropped_; }

  // Drop partials idle past the age horizon *now*, regardless of packet
  // arrivals. Add() only sweeps when fed, so a link that goes idle after a
  // lost fragment would otherwise pin its partials' payload bytes forever;
  // quiescence barriers and reports call this to reclaim them.
  void SweepExpired(TimePoint now);

 private:
  struct Key {
    NodeId src = 0;
    uint64_t session = 0;
    uint64_t msg_id = 0;
    bool operator==(const Key& other) const {
      return src == other.src && session == other.session &&
             msg_id == other.msg_id;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.msg_id * 0x9E3779B97F4A7C15ull;
      h ^= k.session + (h << 12) + (h >> 4);
      h ^= static_cast<uint64_t>(k.src) + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  struct Partial {
    // Slices share the sender's encode buffer; storing them costs refcount
    // bumps, not byte copies.
    std::vector<BufferSlice> frags;
    // Explicit received-flags: an empty payload is a valid fragment body,
    // so emptiness cannot double as "not yet seen".
    std::vector<uint8_t> have;
    uint32_t received = 0;
    size_t total_bytes = 0;  // pre-sizes the gather on completion
    uint64_t first_seen_seq = 0;
    TimePoint last_update{};  // refreshed per accepted fragment: a partial
                              // still making progress is not stale
    // Earliest (arrival - network age) over accepted fragments: the send
    // instant of the oldest fragment, projected onto this node's clock.
    // now - earliest_send at completion is the message's total age.
    TimePoint earliest_send = TimePoint::max();
  };

  void EvictOldestIfNeeded();
  // Drop partials idle past the horizon. Amortized: Add sweeps at most
  // once per expiry_/4, so the scan cost never dominates the hot path.
  void ExpireStale(TimePoint now);
  // A new incarnation of `src` appeared: its predecessor's partials are
  // unfinishable garbage.
  void DropSourcePartials(NodeId src);

  size_t max_partial_;
  Micros expiry_;
  TimePoint last_sweep_{};
  uint64_t seq_ = 0;
  uint64_t corrupt_dropped_ = 0;
  uint64_t expired_ = 0;
  uint64_t session_dropped_ = 0;
  std::unordered_map<Key, Partial, KeyHash> partial_;
  std::unordered_map<NodeId, uint64_t> sessions_;  // src -> latest session
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_WIRE_PACKET_H_
