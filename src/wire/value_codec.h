// Serialization of Values to and from wire bytes (Section 3.3/3.4 step 2:
// "the message is actually constructed (made into a string of bits with
// appropriate format)").
//
// Abstract values are encoded by first applying the object's own encode
// operation (internal rep -> external rep), then serializing the external
// rep tagged with the system-wide type name. Decoding an abstract value
// needs the *receiving node's* decode operation, supplied here as a hook so
// the wire layer stays independent of the transmittable-type registry.
#ifndef GUARDIANS_SRC_WIRE_VALUE_CODEC_H_
#define GUARDIANS_SRC_WIRE_VALUE_CODEC_H_

#include <functional>
#include <string>

#include "src/common/result.h"
#include "src/value/value.h"
#include "src/wire/codec.h"
#include "src/wire/limits.h"

namespace guardians {

// Rebuilds a node-local abstract object from (type name, external rep).
using AbstractDecodeFn =
    std::function<Result<AbstractPtr>(const std::string& type_name,
                                      const Value& external_rep)>;

// Encode one value. Applies WireLimits (integer bounds, blob sizes, depth).
// Returns kEncodeError / kOutOfRange / kNotTransmittable on failure; on
// failure nothing is sent (the send "terminates and raises").
Status EncodeValue(const Value& v, const WireLimits& limits,
                   WireEncoder& enc);

// Decode one value. `decode_abstract` may be null, in which case abstract
// values fail with kDecodeError (the type is not transmittable *here*).
Result<Value> DecodeValue(WireDecoder& dec, const WireLimits& limits,
                          const AbstractDecodeFn& decode_abstract);

// Whole-value convenience wrappers (used by the WAL for snapshots/records).
Result<Bytes> EncodeValueToBytes(const Value& v,
                                 const WireLimits& limits = DefaultLimits());
Result<Value> DecodeValueFromBytes(
    ConstByteSpan bytes, const WireLimits& limits = DefaultLimits(),
    const AbstractDecodeFn& decode_abstract = nullptr);

// Port names and tokens appear both inside values and in message headers.
void EncodePortName(const PortName& p, WireEncoder& enc);
Result<PortName> DecodePortName(WireDecoder& dec);
void EncodeToken(const Token& t, WireEncoder& enc);
Result<Token> DecodeToken(WireDecoder& dec);

}  // namespace guardians

#endif  // GUARDIANS_SRC_WIRE_VALUE_CODEC_H_
