#include "src/wire/envelope.h"

#include <sstream>

namespace guardians {

namespace {
// Format marker so stray/corrupt buffers fail fast in the decoder.
constexpr uint8_t kEnvelopeMagic = 0xE7;
}  // namespace

std::string Envelope::ToString() const {
  std::ostringstream os;
  os << command << '(';
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << args[i].ToString();
  }
  os << ") to " << target.ToString();
  if (HasReply()) {
    os << " replyto " << reply_to.ToString();
  }
  return os.str();
}

Result<Bytes> EncodeEnvelope(const Envelope& env, const WireLimits& limits) {
  WireEncoder enc;
  // Fixed header fields total ~154 bytes (magic + ids + four 24-byte port
  // names + flow feedback); reserve them plus the command up front so the
  // header encodes with zero reallocations.
  enc.Reserve(170 + env.command.size());
  enc.PutU8(kEnvelopeMagic);
  enc.PutU64(env.msg_id);
  enc.PutU64(env.trace_id);
  enc.PutU32(env.src_node);
  enc.PutU64(env.session_id);
  enc.PutU64(env.dedup_seq);
  EncodePortName(env.target, enc);
  EncodePortName(env.reply_to, enc);
  EncodePortName(env.ack_to, enc);
  EncodePortName(env.fc_port, enc);
  enc.PutU32(env.fc_depth);
  enc.PutU32(env.fc_capacity);
  enc.PutU8(env.fc_full ? 1 : 0);
  enc.PutVarU64(env.deadline_micros);
  enc.PutString(env.command);
  enc.PutVarU64(env.args.size());
  for (const auto& arg : env.args) {
    GUARDIANS_RETURN_IF_ERROR(EncodeValue(arg, limits, enc));
  }
  if (enc.size() > limits.max_message_bytes) {
    return Status(Code::kEncodeError,
                  "encoded message exceeds system message bound");
  }
  return enc.Take();
}

namespace {
Result<Envelope> DecodeHeaderInto(WireDecoder& dec) {
  GUARDIANS_ASSIGN_OR_RETURN(uint8_t magic, dec.GetU8());
  if (magic != kEnvelopeMagic) {
    return Status(Code::kCorrupt, "bad envelope magic");
  }
  Envelope env;
  GUARDIANS_ASSIGN_OR_RETURN(env.msg_id, dec.GetU64());
  GUARDIANS_ASSIGN_OR_RETURN(env.trace_id, dec.GetU64());
  GUARDIANS_ASSIGN_OR_RETURN(env.src_node, dec.GetU32());
  GUARDIANS_ASSIGN_OR_RETURN(env.session_id, dec.GetU64());
  GUARDIANS_ASSIGN_OR_RETURN(env.dedup_seq, dec.GetU64());
  GUARDIANS_ASSIGN_OR_RETURN(env.target, DecodePortName(dec));
  GUARDIANS_ASSIGN_OR_RETURN(env.reply_to, DecodePortName(dec));
  GUARDIANS_ASSIGN_OR_RETURN(env.ack_to, DecodePortName(dec));
  GUARDIANS_ASSIGN_OR_RETURN(env.fc_port, DecodePortName(dec));
  GUARDIANS_ASSIGN_OR_RETURN(env.fc_depth, dec.GetU32());
  GUARDIANS_ASSIGN_OR_RETURN(env.fc_capacity, dec.GetU32());
  GUARDIANS_ASSIGN_OR_RETURN(uint8_t fc_full, dec.GetU8());
  env.fc_full = fc_full != 0;
  GUARDIANS_ASSIGN_OR_RETURN(env.deadline_micros, dec.GetVarU64());
  GUARDIANS_ASSIGN_OR_RETURN(env.command, dec.GetString(4096));
  return env;
}
}  // namespace

Result<Envelope> DecodeEnvelopeHeader(ConstByteSpan bytes,
                                      const WireLimits& limits) {
  (void)limits;
  WireDecoder dec(bytes);
  return DecodeHeaderInto(dec);
}

Result<Envelope> DecodeEnvelope(ConstByteSpan bytes, const WireLimits& limits,
                                const AbstractDecodeFn& decode_abstract) {
  WireDecoder dec(bytes);
  GUARDIANS_ASSIGN_OR_RETURN(Envelope env, DecodeHeaderInto(dec));
  GUARDIANS_ASSIGN_OR_RETURN(uint64_t argc, dec.GetVarU64());
  if (argc > dec.remaining()) {
    return Status(Code::kCorrupt, "argument count exceeds data");
  }
  env.args.reserve(argc);
  for (uint64_t i = 0; i < argc; ++i) {
    GUARDIANS_ASSIGN_OR_RETURN(Value arg,
                               DecodeValue(dec, limits, decode_abstract));
    env.args.push_back(std::move(arg));
  }
  if (!dec.AtEnd()) {
    return Status(Code::kCorrupt, "trailing bytes after envelope");
  }
  return env;
}

}  // namespace guardians
