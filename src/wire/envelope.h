// Envelope: the on-the-wire form of one message (Section 3.1/3.4).
//
// A message is a command identifier plus zero or more argument values. The
// optional replyto port "is really an extra argument of the message, but it
// is singled out in the syntax to clarify the intent"; likewise the ack port
// used by the receipt-synchronized send built on top of the no-wait send.
#ifndef GUARDIANS_SRC_WIRE_ENVELOPE_H_
#define GUARDIANS_SRC_WIRE_ENVELOPE_H_

#include <cstdint>
#include <string>

#include "src/common/result.h"
#include "src/value/value.h"
#include "src/wire/value_codec.h"

namespace guardians {

struct Envelope {
  uint64_t msg_id = 0;       // unique per send; names fragments of one message
  uint64_t trace_id = 0;     // causal chain id; stamped at the first send,
                             // carried through replies/acks/failures
  NodeId src_node = 0;       // origin node (for system failure replies)
  // At-most-once identity. session_id names one incarnation of the sending
  // node (random per boot, so seqs from before a crash can never collide
  // with seqs after it); dedup_seq orders tracked sends within the session.
  // Retries of one logical operation reuse the same (session, seq) pair —
  // that is what lets the receiver recognise them as duplicates. A seq of 0
  // means "untracked": plain no-wait sends skip the dedup machinery.
  uint64_t session_id = 0;
  uint64_t dedup_seq = 0;
  PortName target;           // destination port
  PortName reply_to;         // optional; null when absent
  PortName ack_to;           // optional; used by the synchronization send
  // Flow-control feedback, piggybacked on receipt acks and full-port nacks
  // (DESIGN.md §11): fc_port names the port the feedback is about (null =
  // no feedback attached), fc_depth/fc_capacity are its queue depth and
  // capacity at the moment the feedback was generated, and fc_full says
  // whether this is a credit grant (false — the message was enqueued or
  // consumed) or a full-port nack (true — the message was shed).
  PortName fc_port;
  uint32_t fc_depth = 0;
  uint32_t fc_capacity = 0;
  bool fc_full = false;
  // Remaining deadline budget in microseconds at the instant the envelope
  // was handed to the network (DESIGN.md §16). 0 = no deadline. Always a
  // *relative* budget, never an absolute timestamp: each hop decrements it
  // by the elapsed time it observed on its own clock, so the field is
  // meaningful across nodes with skewed or drifting clocks.
  uint64_t deadline_micros = 0;
  std::string command;
  ValueList args;

  bool HasReply() const { return !reply_to.IsNull(); }
  bool HasAck() const { return !ack_to.IsNull(); }
  bool HasFlowFeedback() const { return !fc_port.IsNull(); }
  bool Tracked() const { return dedup_seq != 0; }

  std::string ToString() const;
};

// Serialize an envelope (including encode of abstract argument values).
// This is the wire path's single materialization point: the envelope is
// encoded exactly once into one contiguous byte vector, which the sender
// adopts as the message's shared buffer (everything downstream is views).
Result<Bytes> EncodeEnvelope(const Envelope& env, const WireLimits& limits);

// Deserialize; decode_abstract rebuilds abstract values with the receiving
// node's representations. Takes a non-owning view: Bytes and BufferSlice
// callers both decode in place, no owning copy.
Result<Envelope> DecodeEnvelope(ConstByteSpan bytes, const WireLimits& limits,
                                const AbstractDecodeFn& decode_abstract);

// Deserialize the header only (args left empty). Used by the receiving node
// to recover the replyto port when full decoding fails, so the system can
// still send a failure(...) message to it.
Result<Envelope> DecodeEnvelopeHeader(ConstByteSpan bytes,
                                      const WireLimits& limits);

}  // namespace guardians

#endif  // GUARDIANS_SRC_WIRE_ENVELOPE_H_
