#include "src/wire/codec.h"

#include <cstring>

namespace guardians {

void WireEncoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void WireEncoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void WireEncoder::PutVarU64(uint64_t v) {
  while (v >= 0x80) {
    out_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out_.push_back(static_cast<uint8_t>(v));
}

void WireEncoder::PutVarI64(int64_t v) {
  const uint64_t zz =
      (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  PutVarU64(zz);
}

void WireEncoder::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireEncoder::PutBytes(ConstByteSpan b) {
  out_.insert(out_.end(), b.begin(), b.end());
}

void WireEncoder::PutString(std::string_view s) {
  PutVarU64(s.size());
  out_.insert(out_.end(), s.begin(), s.end());
}

void WireEncoder::PutBlob(ConstByteSpan b) {
  PutVarU64(b.size());
  PutBytes(b);
}

Status WireDecoder::Need(size_t n) {
  if (size_ - pos_ < n) {
    return Status(Code::kCorrupt, "truncated wire data");
  }
  return OkStatus();
}

Result<uint8_t> WireDecoder::GetU8() {
  GUARDIANS_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint32_t> WireDecoder::GetU32() {
  GUARDIANS_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> WireDecoder::GetU64() {
  GUARDIANS_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<uint64_t> WireDecoder::GetVarU64() {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    GUARDIANS_RETURN_IF_ERROR(Need(1));
    const uint8_t byte = data_[pos_++];
    if (shift >= 64 || (shift == 63 && (byte & 0x7E) != 0)) {
      return Status(Code::kCorrupt, "varint overflow");
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
}

Result<int64_t> WireDecoder::GetVarI64() {
  GUARDIANS_ASSIGN_OR_RETURN(uint64_t zz, GetVarU64());
  return static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
}

Result<double> WireDecoder::GetDouble() {
  GUARDIANS_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> WireDecoder::GetString(uint64_t max_len) {
  GUARDIANS_ASSIGN_OR_RETURN(uint64_t len, GetVarU64());
  if (len > max_len) {
    return Status(Code::kCorrupt, "string length exceeds limit");
  }
  GUARDIANS_RETURN_IF_ERROR(Need(len));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

Result<Bytes> WireDecoder::GetBlob(uint64_t max_len) {
  GUARDIANS_ASSIGN_OR_RETURN(uint64_t len, GetVarU64());
  if (len > max_len) {
    return Status(Code::kCorrupt, "blob length exceeds limit");
  }
  GUARDIANS_RETURN_IF_ERROR(Need(len));
  Bytes b(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return b;
}

}  // namespace guardians
