// CRC-32 (IEEE 802.3 polynomial). The "redundant information for error
// detection" of Section 3.3: every packet carries a CRC, and a packet whose
// bits are in error is discarded by the receiving node.
#ifndef GUARDIANS_SRC_WIRE_CRC32_H_
#define GUARDIANS_SRC_WIRE_CRC32_H_

#include <cstddef>
#include <cstdint>

#include "src/common/bytes.h"

namespace guardians {

uint32_t Crc32(const void* data, size_t size);
inline uint32_t Crc32(ConstByteSpan bytes) {
  return Crc32(bytes.data(), bytes.size());
}

}  // namespace guardians

#endif  // GUARDIANS_SRC_WIRE_CRC32_H_
