// System-wide wire limits (Section 3.3): "the meaning of a type must be
// fixed and invariant over all the nodes... For example, the bounds on legal
// integer values must be defined system-wide."
//
// The paper's example is a 24-bit system integer: a byte machine would use
// 3 bytes, a 16-bit-word machine two words of which only 24 bits are legal,
// and "results of integer arithmetic must be checked to ensure they are
// within bounds. Otherwise it might be impossible to send an integer value
// in a message because it was too big." We enforce exactly that at
// message-construction time.
#ifndef GUARDIANS_SRC_WIRE_LIMITS_H_
#define GUARDIANS_SRC_WIRE_LIMITS_H_

#include <cstdint>

#include "src/common/status.h"

namespace guardians {

struct WireLimits {
  // Width of the system-wide integer type, in bits (2..64). Values outside
  // [-2^(n-1), 2^(n-1)-1] cannot be sent in a message.
  int int_bits = 64;
  // Largest string or byte payload allowed in a single value.
  uint64_t max_blob_bytes = 1 << 20;
  // Maximum nesting depth of arrays/records (guards the decoder).
  int max_depth = 32;
  // Maximum total encoded message size.
  uint64_t max_message_bytes = 4u << 20;
  // Maximum packet payload; larger messages are fragmented (Section 3.3:
  // "breaking a large message into packets and reassembling the packets").
  uint64_t max_packet_payload = 1024;

  Status CheckInt(int64_t v) const;
};

// The default limits used when a component isn't configured explicitly.
const WireLimits& DefaultLimits();

}  // namespace guardians

#endif  // GUARDIANS_SRC_WIRE_LIMITS_H_
