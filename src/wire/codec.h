// Low-level binary codec: little-endian fixed-width integers, LEB128
// varints, zigzag signed varints, length-prefixed blobs. The decoder never
// trusts its input: every read is bounds-checked and returns a Result.
#ifndef GUARDIANS_SRC_WIRE_CODEC_H_
#define GUARDIANS_SRC_WIRE_CODEC_H_

#include <cstdint>
#include <string>

#include "src/common/bytes.h"
#include "src/common/result.h"

namespace guardians {

class WireEncoder {
 public:
  void PutU8(uint8_t v) { out_.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutVarU64(uint64_t v);
  void PutVarI64(int64_t v);  // zigzag
  void PutDouble(double v);
  void PutString(const std::string& s);  // varint length + bytes
  void PutBlob(const Bytes& b);          // varint length + bytes

  const Bytes& bytes() const { return out_; }
  Bytes Take() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  Bytes out_;
};

class WireDecoder {
 public:
  explicit WireDecoder(const Bytes& in) : in_(in) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<uint64_t> GetVarU64();
  Result<int64_t> GetVarI64();
  Result<double> GetDouble();
  // max_len guards length-prefixed reads against hostile lengths.
  Result<std::string> GetString(uint64_t max_len);
  Result<Bytes> GetBlob(uint64_t max_len);

  bool AtEnd() const { return pos_ == in_.size(); }
  size_t remaining() const { return in_.size() - pos_; }

 private:
  Status Need(size_t n);

  const Bytes& in_;
  size_t pos_ = 0;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_WIRE_CODEC_H_
