// Low-level binary codec: little-endian fixed-width integers, LEB128
// varints, zigzag signed varints, length-prefixed blobs. The decoder never
// trusts its input: every read is bounds-checked and returns a Result.
//
// The encoder grows its vector with bulk appends (PutBytes) and an
// up-front Reserve sized by the caller, so the hot encode path is one
// allocation instead of per-byte growth. The decoder is a non-owning view
// (pointer + length): it reads straight out of a message buffer slice
// without materializing an owning vector.
#ifndef GUARDIANS_SRC_WIRE_CODEC_H_
#define GUARDIANS_SRC_WIRE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/bytes.h"
#include "src/common/result.h"

namespace guardians {

class WireEncoder {
 public:
  // Pre-size for `n` further bytes; one allocation for a well-estimated
  // message instead of log(n) doublings of push_back.
  void Reserve(size_t n) { out_.reserve(out_.size() + n); }

  void PutU8(uint8_t v) { out_.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutVarU64(uint64_t v);
  void PutVarI64(int64_t v);  // zigzag
  void PutDouble(double v);
  // Raw bytes, no length prefix.
  void PutBytes(ConstByteSpan b);
  void PutString(std::string_view s);  // varint length + bytes
  void PutBlob(ConstByteSpan b);       // varint length + bytes

  const Bytes& bytes() const { return out_; }
  Bytes Take() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  Bytes out_;
};

class WireDecoder {
 public:
  // A non-owning view; the underlying storage must outlive the decoder.
  // Bytes and BufferSlice both convert implicitly to ConstByteSpan.
  explicit WireDecoder(ConstByteSpan in)
      : data_(in.data()), size_(in.size()) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<uint64_t> GetVarU64();
  Result<int64_t> GetVarI64();
  Result<double> GetDouble();
  // max_len guards length-prefixed reads against hostile lengths.
  Result<std::string> GetString(uint64_t max_len);
  Result<Bytes> GetBlob(uint64_t max_len);

  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  Status Need(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace guardians

#endif  // GUARDIANS_SRC_WIRE_CODEC_H_
