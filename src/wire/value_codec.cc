#include "src/wire/value_codec.h"

namespace guardians {
namespace {

Status EncodeValueDepth(const Value& v, const WireLimits& limits,
                        WireEncoder& enc, int depth) {
  if (depth > limits.max_depth) {
    return Status(Code::kEncodeError, "value nesting exceeds system depth");
  }
  enc.PutU8(static_cast<uint8_t>(v.tag()));
  switch (v.tag()) {
    case TypeTag::kNull:
      return OkStatus();
    case TypeTag::kBool:
      enc.PutU8(v.bool_value() ? 1 : 0);
      return OkStatus();
    case TypeTag::kInt:
      GUARDIANS_RETURN_IF_ERROR(limits.CheckInt(v.int_value()));
      enc.PutVarI64(v.int_value());
      return OkStatus();
    case TypeTag::kReal:
      enc.PutDouble(v.real_value());
      return OkStatus();
    case TypeTag::kString:
      if (v.string_value().size() > limits.max_blob_bytes) {
        return Status(Code::kEncodeError, "string exceeds system blob bound");
      }
      // Pre-size for the length prefix + body: one growth step instead of
      // doubling through a large payload.
      enc.Reserve(10 + v.string_value().size());
      enc.PutString(v.string_value());
      return OkStatus();
    case TypeTag::kBytes:
      if (v.bytes_value().size() > limits.max_blob_bytes) {
        return Status(Code::kEncodeError, "bytes exceed system blob bound");
      }
      enc.Reserve(10 + v.bytes_value().size());
      enc.PutBlob(v.bytes_value());
      return OkStatus();
    case TypeTag::kArray: {
      enc.PutVarU64(v.items().size());
      for (const auto& item : v.items()) {
        GUARDIANS_RETURN_IF_ERROR(
            EncodeValueDepth(item, limits, enc, depth + 1));
      }
      return OkStatus();
    }
    case TypeTag::kRecord: {
      enc.PutVarU64(v.fields().size());
      for (const auto& [name, field] : v.fields()) {
        enc.PutString(name);
        GUARDIANS_RETURN_IF_ERROR(
            EncodeValueDepth(field, limits, enc, depth + 1));
      }
      return OkStatus();
    }
    case TypeTag::kPortName:
      EncodePortName(v.port_value(), enc);
      return OkStatus();
    case TypeTag::kToken:
      EncodeToken(v.token_value(), enc);
      return OkStatus();
    case TypeTag::kAbstract: {
      // internal rep -> external rep via the object's encode operation.
      auto external = v.abstract_value()->Encode();
      if (!external.ok()) {
        return Status(Code::kEncodeError,
                      "encode of '" + v.abstract_value()->TypeName() +
                          "' failed: " + external.status().message());
      }
      enc.PutString(v.abstract_value()->TypeName());
      return EncodeValueDepth(*external, limits, enc, depth + 1);
    }
    case TypeTag::kAny:
      return Status(Code::kEncodeError, "'any' is not a transmissible value");
  }
  return Status(Code::kInternal, "unknown value tag");
}

Result<Value> DecodeValueDepth(WireDecoder& dec, const WireLimits& limits,
                               const AbstractDecodeFn& decode_abstract,
                               int depth) {
  if (depth > limits.max_depth) {
    return Status(Code::kCorrupt, "value nesting exceeds system depth");
  }
  GUARDIANS_ASSIGN_OR_RETURN(uint8_t raw_tag, dec.GetU8());
  if (raw_tag > static_cast<uint8_t>(TypeTag::kAbstract)) {
    return Status(Code::kCorrupt, "unknown value tag on wire");
  }
  switch (static_cast<TypeTag>(raw_tag)) {
    case TypeTag::kNull:
      return Value::Null();
    case TypeTag::kBool: {
      GUARDIANS_ASSIGN_OR_RETURN(uint8_t b, dec.GetU8());
      return Value::Bool(b != 0);
    }
    case TypeTag::kInt: {
      GUARDIANS_ASSIGN_OR_RETURN(int64_t i, dec.GetVarI64());
      GUARDIANS_RETURN_IF_ERROR(limits.CheckInt(i));
      return Value::Int(i);
    }
    case TypeTag::kReal: {
      GUARDIANS_ASSIGN_OR_RETURN(double d, dec.GetDouble());
      return Value::Real(d);
    }
    case TypeTag::kString: {
      GUARDIANS_ASSIGN_OR_RETURN(std::string s,
                                 dec.GetString(limits.max_blob_bytes));
      return Value::Str(std::move(s));
    }
    case TypeTag::kBytes: {
      GUARDIANS_ASSIGN_OR_RETURN(Bytes b, dec.GetBlob(limits.max_blob_bytes));
      return Value::Blob(std::move(b));
    }
    case TypeTag::kArray: {
      GUARDIANS_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarU64());
      if (n > dec.remaining()) {
        return Status(Code::kCorrupt, "array count exceeds data");
      }
      std::vector<Value> items;
      items.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        GUARDIANS_ASSIGN_OR_RETURN(
            Value item, DecodeValueDepth(dec, limits, decode_abstract,
                                         depth + 1));
        items.push_back(std::move(item));
      }
      return Value::Array(std::move(items));
    }
    case TypeTag::kRecord: {
      GUARDIANS_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarU64());
      if (n > dec.remaining()) {
        return Status(Code::kCorrupt, "record count exceeds data");
      }
      std::vector<Value::Field> fields;
      fields.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        GUARDIANS_ASSIGN_OR_RETURN(std::string name, dec.GetString(4096));
        GUARDIANS_ASSIGN_OR_RETURN(
            Value field, DecodeValueDepth(dec, limits, decode_abstract,
                                          depth + 1));
        fields.emplace_back(std::move(name), std::move(field));
      }
      return Value::Record(std::move(fields));
    }
    case TypeTag::kPortName: {
      GUARDIANS_ASSIGN_OR_RETURN(PortName p, DecodePortName(dec));
      return Value::OfPort(p);
    }
    case TypeTag::kToken: {
      GUARDIANS_ASSIGN_OR_RETURN(Token t, DecodeToken(dec));
      return Value::OfToken(t);
    }
    case TypeTag::kAbstract: {
      GUARDIANS_ASSIGN_OR_RETURN(std::string type_name, dec.GetString(4096));
      GUARDIANS_ASSIGN_OR_RETURN(
          Value external, DecodeValueDepth(dec, limits, decode_abstract,
                                           depth + 1));
      if (!decode_abstract) {
        return Status(Code::kDecodeError,
                      "no decode operation for abstract type '" + type_name +
                          "' at this node");
      }
      auto obj = decode_abstract(type_name, external);
      if (!obj.ok()) {
        return Status(Code::kDecodeError,
                      "decode of '" + type_name +
                          "' failed: " + obj.status().message());
      }
      return Value::Abstract(obj.take());
    }
    default:
      return Status(Code::kCorrupt, "unknown value tag on wire");
  }
}

}  // namespace

Status EncodeValue(const Value& v, const WireLimits& limits,
                   WireEncoder& enc) {
  return EncodeValueDepth(v, limits, enc, 0);
}

Result<Value> DecodeValue(WireDecoder& dec, const WireLimits& limits,
                          const AbstractDecodeFn& decode_abstract) {
  return DecodeValueDepth(dec, limits, decode_abstract, 0);
}

Result<Bytes> EncodeValueToBytes(const Value& v, const WireLimits& limits) {
  WireEncoder enc;
  GUARDIANS_RETURN_IF_ERROR(EncodeValue(v, limits, enc));
  return enc.Take();
}

Result<Value> DecodeValueFromBytes(ConstByteSpan bytes,
                                   const WireLimits& limits,
                                   const AbstractDecodeFn& decode_abstract) {
  WireDecoder dec(bytes);
  GUARDIANS_ASSIGN_OR_RETURN(Value v, DecodeValue(dec, limits,
                                                  decode_abstract));
  if (!dec.AtEnd()) {
    return Status(Code::kCorrupt, "trailing bytes after value");
  }
  return v;
}

void EncodePortName(const PortName& p, WireEncoder& enc) {
  enc.PutU32(p.node);
  enc.PutU64(p.guardian);
  enc.PutU32(p.port_index);
  enc.PutU64(p.type_hash);
}

Result<PortName> DecodePortName(WireDecoder& dec) {
  PortName p;
  GUARDIANS_ASSIGN_OR_RETURN(p.node, dec.GetU32());
  GUARDIANS_ASSIGN_OR_RETURN(p.guardian, dec.GetU64());
  GUARDIANS_ASSIGN_OR_RETURN(p.port_index, dec.GetU32());
  GUARDIANS_ASSIGN_OR_RETURN(p.type_hash, dec.GetU64());
  return p;
}

void EncodeToken(const Token& t, WireEncoder& enc) {
  enc.PutU64(t.owner);
  enc.PutU64(t.seal);
  enc.PutU64(t.handle);
}

Result<Token> DecodeToken(WireDecoder& dec) {
  Token t;
  GUARDIANS_ASSIGN_OR_RETURN(t.owner, dec.GetU64());
  GUARDIANS_ASSIGN_OR_RETURN(t.seal, dec.GetU64());
  GUARDIANS_ASSIGN_OR_RETURN(t.handle, dec.GetU64());
  return t;
}

}  // namespace guardians
