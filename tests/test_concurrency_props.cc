// Concurrency property tests: a Hoare-monitor bounded buffer (exercising
// Monitor::Condition directly), serializer linearization under random keys,
// keyed-monitor exclusion under churn, WAL append safety under concurrent
// writers, and flight-guardian organization equivalence (all three Figure 1
// organizations compute the same final database for the same request
// multiset per date).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "src/airline/flight_guardian.h"
#include "src/guardian/system.h"
#include "src/runtime/monitor.h"
#include "src/runtime/process.h"
#include "src/runtime/serializer.h"
#include "src/sendprims/remote_call.h"
#include "src/store/wal.h"

namespace guardians {
namespace {

// A classic monitor: bounded buffer with not-full / not-empty conditions.
class BoundedBuffer : private Monitor {
 public:
  explicit BoundedBuffer(size_t capacity) : capacity_(capacity) {}

  void Put(int v) {
    Entry entry(*this);
    not_full_.WaitUntil(entry, [this] { return items_.size() < capacity_; });
    items_.push_back(v);
    not_empty_.Signal();
  }

  int Take() {
    Entry entry(*this);
    not_empty_.WaitUntil(entry, [this] { return !items_.empty(); });
    const int v = items_.front();
    items_.erase(items_.begin());
    not_full_.Signal();
    return v;
  }

  size_t SizeUnlocked() const { return items_.size(); }

 private:
  const size_t capacity_;
  std::vector<int> items_;
  Condition not_full_;
  Condition not_empty_;
};

TEST(MonitorBufferTest, ProducersAndConsumersMeetExactly) {
  BoundedBuffer buffer(4);
  constexpr int kPerProducer = 200;
  constexpr int kProducers = 3;
  std::atomic<int64_t> consumed_sum{0};
  ProcessGroup group;
  for (int p = 0; p < kProducers; ++p) {
    group.Fork("producer", [&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        buffer.Put(p * kPerProducer + i);
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    group.Fork("consumer", [&] {
      for (int i = 0; i < kPerProducer * kProducers / 2; ++i) {
        consumed_sum.fetch_add(buffer.Take());
      }
    });
  }
  group.JoinAll();
  const int64_t n = kPerProducer * kProducers;
  EXPECT_EQ(consumed_sum.load(), n * (n - 1) / 2);
  EXPECT_EQ(buffer.SizeUnlocked(), 0u);
}

class SerializerProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializerProperty, PerKeyOrderUnderRandomKeys) {
  Serializer serializer(6);
  constexpr int kTasks = 300;
  Rng rng(GetParam());
  std::mutex mu;
  std::map<uint64_t, std::vector<int>> per_key_order;
  std::vector<uint64_t> keys;
  for (int i = 0; i < kTasks; ++i) {
    keys.push_back(rng.NextBelow(5));
  }
  for (int i = 0; i < kTasks; ++i) {
    serializer.Enqueue(keys[i], [&, i] {
      std::lock_guard<std::mutex> lock(mu);
      per_key_order[keys[i]].push_back(i);
    });
  }
  serializer.Drain();
  EXPECT_EQ(serializer.executed(), static_cast<uint64_t>(kTasks));
  for (const auto& [key, order] : per_key_order) {
    for (size_t i = 1; i < order.size(); ++i) {
      EXPECT_LT(order[i - 1], order[i]) << "key " << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializerProperty,
                         ::testing::Values(3, 17, 99));

TEST(KeyedMonitorChurnTest, ManyKeysManyThreadsNoLostExclusion) {
  KeyedMonitor<int> monitor;
  constexpr int kKeys = 4;
  std::atomic<int> in_critical[kKeys] = {};
  std::atomic<bool> violated{false};
  ProcessGroup group;
  for (int t = 0; t < 6; ++t) {
    group.Fork("worker", [&, t] {
      Rng rng(t + 1);
      for (int i = 0; i < 100; ++i) {
        const int key = static_cast<int>(rng.NextBelow(kKeys));
        KeyedMonitor<int>::Request request(monitor, key);
        if (in_critical[key].fetch_add(1) != 0) {
          violated = true;
        }
        std::this_thread::sleep_for(Micros(20));
        in_critical[key].fetch_sub(1);
      }
    });
  }
  group.JoinAll();
  EXPECT_FALSE(violated.load());
}

TEST(WalConcurrencyTest, ParallelAppendsAllRecoverIntact) {
  StableStore store;
  Wal wal(&store, "g/parallel");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  ProcessGroup group;
  for (int t = 0; t < kThreads; ++t) {
    group.Fork("appender", [&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string payload =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE(wal.Append(ToBytes(payload)).ok());
      }
    });
  }
  group.JoinAll();
  auto recovery = wal.Recover();
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  ASSERT_EQ(recovery->records.size(),
            static_cast<size_t>(kThreads * kPerThread));
  EXPECT_FALSE(recovery->torn_tail);
  // Per-thread order is preserved (each append is atomic in the store).
  std::map<char, int> last_index;
  for (const auto& record : recovery->records) {
    const std::string s = ToString(record);
    const char thread_tag = s[1];
    const int index = std::stoi(s.substr(3));
    auto it = last_index.find(thread_tag);
    if (it != last_index.end()) {
      EXPECT_GT(index, it->second);
    }
    last_index[thread_tag] = index;
  }
}

// Organization equivalence: whatever the internal structure (Fig. 1a/1b/1c),
// the guardian computes the same abstract result for the same per-date
// request sequences — the organizations differ in concurrency, not meaning.
class OrgEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(OrgEquivalence, SameRequestsSameFinalDatabase) {
  SystemConfig config;
  config.seed = 8;
  config.default_link.latency = Micros(50);
  System system(config);
  NodeRuntime& node = system.AddNode("n");
  node.RegisterGuardianType("flight", MakeFactory<FlightGuardian>());
  node.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  Guardian* driver = *node.Create<ShellGuardian>("shell", "driver", {});

  FlightConfig flight_config;
  flight_config.flight_no = 1;
  flight_config.capacity = 3;
  flight_config.organization = static_cast<FlightOrganization>(GetParam());
  flight_config.workers = 4;
  flight_config.logging = false;
  auto flight = node.Create<FlightGuardian>("flight", "f",
                                            flight_config.ToArgs(), false);
  ASSERT_TRUE(flight.ok());
  const PortName port = (*flight)->ProvidedPorts()[0];

  // One clerk per date so each date sees a deterministic sequence even in
  // the concurrent organizations.
  constexpr int kDates = 3;
  std::vector<std::thread> clerks;
  for (int d = 0; d < kDates; ++d) {
    clerks.emplace_back([&, d] {
      Rng rng(100 + d);
      const std::string date = "d" + std::to_string(d);
      for (int i = 0; i < 40; ++i) {
        const std::string passenger = "p" + std::to_string(rng.NextBelow(5));
        const bool cancel = rng.NextBool(0.3);
        RemoteCallOptions options;
        options.timeout = Millis(5000);
        auto reply = RemoteCall(
            *driver, port, cancel ? "cancel" : "reserve",
            {Value::Str(passenger), Value::Str(date)},
            ReservationReplyType(), options);
        ASSERT_TRUE(reply.ok()) << reply.status();
      }
    });
  }
  for (auto& clerk : clerks) {
    clerk.join();
  }

  // Compare against the reference computed directly on a FlightDb.
  FlightDb reference(1, 3);
  for (int d = 0; d < kDates; ++d) {
    Rng rng(100 + d);
    const std::string date = "d" + std::to_string(d);
    for (int i = 0; i < 40; ++i) {
      const std::string passenger = "p" + std::to_string(rng.NextBelow(5));
      const bool cancel = rng.NextBool(0.3);
      reference.Apply(cancel ? "cancel" : "reserve", passenger, date);
    }
  }
  EXPECT_TRUE((*flight)->SnapshotDb().Equals(reference))
      << "organization " << GetParam()
      << " diverged from the sequential reference";
}

INSTANTIATE_TEST_SUITE_P(AllOrganizations, OrgEquivalence,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace guardians
