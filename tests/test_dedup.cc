// The at-most-once layer (DESIGN.md §10): the DedupTable's window and
// reply-cache mechanics, duplicate suppression and cached-reply replay
// end-to-end, retry-safety of non-idempotent operations (including remote
// creation), the durable dedup journal across a crash, and the behaviour
// of a retry storm across a partition heal.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/airline/flight_guardian.h"
#include "src/airline/types.h"
#include "src/guardian/port.h"
#include "src/guardian/system.h"
#include "src/sendprims/reliable_send.h"
#include "src/sendprims/remote_call.h"
#include "src/sendprims/sync_send.h"

namespace guardians {
namespace {

// ---------------------------------------------------------------------------
// DedupTable unit tests
// ---------------------------------------------------------------------------

DedupTable::CachedReply Reply(const std::string& command) {
  DedupTable::CachedReply r;
  r.command = command;
  return r;
}

TEST(DedupTableTest, ClassifyMarkCacheReplayRoundTrip) {
  DedupTable table;
  EXPECT_EQ(table.Classify(7, 1, nullptr), DedupTable::Verdict::kFresh);
  table.MarkSeen(7, 1);
  EXPECT_EQ(table.Classify(7, 1, nullptr), DedupTable::Verdict::kDuplicate);
  // A different session's seq 1 is unrelated.
  EXPECT_EQ(table.Classify(8, 1, nullptr), DedupTable::Verdict::kFresh);

  table.CacheReply(7, 1, Reply("ok"));
  DedupTable::CachedReply replay;
  EXPECT_EQ(table.Classify(7, 1, &replay), DedupTable::Verdict::kReplay);
  EXPECT_EQ(replay.command, "ok");
  EXPECT_EQ(table.HighWater(7), 1u);
}

TEST(DedupTableTest, WindowFloorIsConservativelySeen) {
  DedupTable::Config config;
  config.window = 4;
  DedupTable table(config);
  table.MarkSeen(1, 10);  // floor slides to 6
  // In-window seqs the session never sent are still fresh (reordering
  // within the window must not be mistaken for duplication)...
  EXPECT_EQ(table.Classify(1, 8, nullptr), DedupTable::Verdict::kFresh);
  // ...but anything at or below the floor is conservatively a duplicate:
  // dropping an ancient straggler is allowed, executing it twice is not.
  EXPECT_EQ(table.Classify(1, 6, nullptr), DedupTable::Verdict::kDuplicate);
  EXPECT_EQ(table.Classify(1, 2, nullptr), DedupTable::Verdict::kDuplicate);
}

TEST(DedupTableTest, ReplyCacheEvictsOldestFirst) {
  DedupTable::Config config;
  config.reply_cache_capacity = 2;
  DedupTable table(config);
  table.CacheReply(1, 1, Reply("a"));
  table.CacheReply(1, 2, Reply("b"));
  table.CacheReply(1, 3, Reply("c"));
  EXPECT_EQ(table.cached_reply_count(), 2u);
  // The evicted op stays seen — its duplicate is suppressed, just no
  // longer answerable.
  EXPECT_EQ(table.Classify(1, 1, nullptr), DedupTable::Verdict::kDuplicate);
  EXPECT_EQ(table.Classify(1, 2, nullptr), DedupTable::Verdict::kReplay);
  EXPECT_EQ(table.Classify(1, 3, nullptr), DedupTable::Verdict::kReplay);
}

TEST(DedupTableTest, UnmarkMakesASeqFreshAgain) {
  DedupTable table;
  table.MarkSeen(5, 3);
  table.Unmark(5, 3);
  // The push failed, the message was thrown away: the retry must land.
  EXPECT_EQ(table.Classify(5, 3, nullptr), DedupTable::Verdict::kFresh);
}

TEST(DedupTableTest, AckedTracksDequeuedOps) {
  DedupTable table;
  table.MarkSeen(5, 3);
  EXPECT_FALSE(table.Acked(5, 3));
  table.MarkAcked(5, 3);
  EXPECT_TRUE(table.Acked(5, 3));
  EXPECT_FALSE(table.Acked(5, 4));
}

TEST(DedupTableTest, RestoreFloorMakesRecoveredSeqsSeenAndAcked) {
  DedupTable table;
  table.RestoreFloor(9, 5);
  EXPECT_EQ(table.Classify(9, 3, nullptr), DedupTable::Verdict::kDuplicate);
  EXPECT_TRUE(table.Acked(9, 5));
  EXPECT_EQ(table.Classify(9, 6, nullptr), DedupTable::Verdict::kFresh);
  EXPECT_EQ(table.HighWater(9), 5u);
}

// ---------------------------------------------------------------------------
// End-to-end: suppression, replay, journal recovery, retry safety
// ---------------------------------------------------------------------------

PortType CounterPortType() {
  return PortType("count_req", {MessageSig{"inc", {}, {"val"}}});
}

class DedupSystemTest : public ::testing::Test {
 protected:
  DedupSystemTest() : system_(MakeConfig()) {
    client_node_ = &system_.AddNode("client");
    region_ = &system_.AddNode("region");
    for (auto* node : {client_node_, region_}) {
      node->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
    }
    region_->RegisterGuardianType("flight", MakeFactory<FlightGuardian>());
    client_ = *client_node_->Create<ShellGuardian>("shell", "client", {});
    server_ = *region_->Create<ShellGuardian>("shell", "server", {});
  }

  static SystemConfig MakeConfig() {
    SystemConfig config;
    config.seed = 4242;
    config.default_link.latency = Micros(100);
    return config;
  }

  FlightConfig MakeFlight(int64_t flight_no, int capacity) {
    FlightConfig fc;
    fc.flight_no = flight_no;
    fc.capacity = capacity;
    fc.organization = FlightOrganization::kOneAtATime;
    fc.logging = true;
    fc.checkpoint_every = 64;
    return fc;
  }

  System system_;
  NodeRuntime* client_node_ = nullptr;
  NodeRuntime* region_ = nullptr;
  Guardian* client_ = nullptr;
  Guardian* server_ = nullptr;
};

TEST_F(DedupSystemTest, ReliableSendDeliversOneCopyUnderFullDuplication) {
  // Every packet is duplicated on the wire; the receiving process must
  // still see exactly one copy, and the extra one must be counted as
  // suppressed, not delivered.
  LinkParams dupy;
  dupy.latency = Micros(100);
  dupy.dup_prob = 1.0;
  system_.network().SetLink(client_node_->id(), region_->id(), dupy);

  Port* port = server_->AddPort(CounterPortType(), 16);
  std::atomic<int> received{0};
  server_->Fork("count", [this, port, &received] {
    while (server_->Receive(port, Micros::max()).ok()) {
      ++received;
    }
  });

  ReliableSendOptions options;
  options.ack_timeout = Millis(1000);
  options.max_attempts = 3;
  auto result =
      ReliableSend(*client_, port->name(), "inc", {}, options);
  ASSERT_TRUE(result.ok()) << result.status();

  system_.network().DrainForTesting();
  std::this_thread::sleep_for(Millis(50));
  EXPECT_EQ(received.load(), 1);
  EXPECT_GE(region_->stats().duplicates_suppressed, 1u);
}

TEST_F(DedupSystemTest, NonIdempotentRetryExecutesExactlyOnce) {
  // The server is slow: the first attempt's reply arrives after the
  // caller's per-attempt timeout, forcing a retry of a NON-idempotent
  // operation. The retry must be suppressed (the original is still in
  // progress), and the late reply satisfies the call: one execution.
  Port* port = server_->AddPort(CounterPortType(), 16);
  std::atomic<int> executions{0};
  server_->Fork("slow_counter", [this, port, &executions] {
    for (;;) {
      auto request = server_->Receive(port, Micros::max());
      if (!request.ok()) {
        return;
      }
      std::this_thread::sleep_for(Millis(400));
      const int val = ++executions;
      if (!request->reply_to.IsNull()) {
        (void)server_->Send(request->reply_to, "val", {Value::Int(val)});
      }
    }
  });

  RemoteCallOptions options;
  options.timeout = Millis(150);  // < the 400ms service time
  options.max_attempts = 5;
  PortType reply_type("count_reply", {MessageSig{"val", {ArgType::Of(
                                          TypeTag::kInt)}, {}}});
  auto reply = RemoteCall(*client_, port->name(), "inc", {}, reply_type,
                          options);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->command, "val");
  EXPECT_GE(reply->attempts, 2);  // the slow first attempt really timed out
  system_.network().DrainForTesting();
  EXPECT_EQ(executions.load(), 1);
  EXPECT_GE(region_->stats().duplicates_suppressed, 1u);
}

TEST_F(DedupSystemTest, CachedReplyAnswersDuplicateAndSurvivesCrash) {
  auto flight = region_->Create<FlightGuardian>(
      "flight", "f1", MakeFlight(1, 1 << 10).ToArgs(), /*persistent=*/true);
  ASSERT_TRUE(flight.ok());
  const PortName flight_port = (*flight)->ProvidedPorts()[0];

  // A tracked request sent by hand so the retry can reuse the exact
  // (session, seq) identity across the region's crash.
  Port* reply_port = client_->AddPort(ReservationReplyType(), 8);
  const uint64_t seq = client_node_->NextDedupSeq();
  auto send = [&] {
    return client_->SendFull(flight_port, "reserve",
                             {Value::Str("p0"), Value::Str("d0")},
                             reply_port->name(), PortName{}, seq);
  };

  ASSERT_TRUE(send().ok());
  auto first = client_->Receive(reply_port, Millis(2000));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->command, "ok");

  // A duplicate of the identical request: answered from the reply cache
  // without re-executing.
  ASSERT_TRUE(send().ok());
  auto replayed = client_->Receive(reply_port, Millis(2000));
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->command, "ok");
  EXPECT_EQ(system_.metrics().CounterValue("deliver.dup.replayed"), 1u);

  // Power-fail the region. The dedup journal is stable storage: after
  // recovery the same duplicate is still answered from the cache, not
  // re-executed.
  region_->Crash();
  ASSERT_TRUE(region_->Restart().ok());
  ASSERT_TRUE(send().ok());
  auto recovered = client_->Receive(reply_port, Millis(5000));
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->command, "ok");
  EXPECT_EQ(system_.metrics().CounterValue("deliver.dup.replayed"), 2u);

  auto* recovered_flight = dynamic_cast<FlightGuardian*>(
      region_->FindGuardian(flight_port.guardian));
  ASSERT_NE(recovered_flight, nullptr);
  const FlightDb db = recovered_flight->SnapshotDb();
  EXPECT_TRUE(db.CheckInvariants());
  EXPECT_TRUE(db.IsReserved("p0", "d0"));
  EXPECT_EQ(db.Passengers("d0").size(), 1u);
}

TEST_F(DedupSystemTest, CreationRetriesConvergeOnOneGuardian) {
  // Remote creation is not idempotent; under full duplication every
  // creation request reaches the primordial twice, and the client issues
  // it twice more on top. All roads must lead to the same guardian.
  LinkParams dupy;
  dupy.latency = Micros(100);
  dupy.dup_prob = 1.0;
  system_.network().SetLink(client_node_->id(), region_->id(), dupy);

  auto first = CreateGuardianAt(*client_, region_->PrimordialPort(),
                                "flight", "fx", MakeFlight(7, 64).ToArgs(),
                                /*persistent=*/true, Millis(2000));
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_FALSE(first->empty());
  auto second = CreateGuardianAt(*client_, region_->PrimordialPort(),
                                 "flight", "fx", MakeFlight(7, 64).ToArgs(),
                                 /*persistent=*/true, Millis(2000));
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_FALSE(second->empty());
  EXPECT_TRUE((*first)[0] == (*second)[0])
      << "creation retries produced distinct guardians";
  EXPECT_NE(region_->FindGuardianByName("fx"), nullptr);
}

TEST_F(DedupSystemTest, PartitionHealRetryStormDoesNotDoubleBook) {
  // Cut the link mid-call: the client's attempts pile up against the
  // partition, then the heal lets the storm through — duplicated 1:1 by
  // the link on top. The seat must be booked exactly once.
  LinkParams dupy;
  dupy.latency = Micros(100);
  dupy.dup_prob = 1.0;
  system_.network().SetLink(client_node_->id(), region_->id(), dupy);

  auto flight = region_->Create<FlightGuardian>(
      "flight", "f9", MakeFlight(9, 2).ToArgs(), /*persistent=*/true);
  ASSERT_TRUE(flight.ok());
  const PortName flight_port = (*flight)->ProvidedPorts()[0];

  system_.network().SetPartitioned(client_node_->id(), region_->id(), true);
  std::thread healer([this] {
    std::this_thread::sleep_for(Millis(400));
    system_.network().SetPartitioned(client_node_->id(), region_->id(),
                                     false);
  });

  RemoteCallOptions options;
  options.timeout = Millis(150);
  options.max_attempts = 20;  // spans the 400ms partition comfortably
  auto reply = RemoteCall(*client_, flight_port, "reserve",
                          {Value::Str("p0"), Value::Str("d0")},
                          ReservationReplyType(), options);
  healer.join();
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->command, "ok");
  EXPECT_GT(reply->attempts, 1);  // the partition really forced retries

  system_.network().DrainForTesting();
  const FlightDb db = dynamic_cast<FlightGuardian*>(
                          region_->FindGuardian(flight_port.guardian))
                          ->SnapshotDb();
  EXPECT_TRUE(db.CheckInvariants());
  EXPECT_TRUE(db.IsReserved("p0", "d0"));
  EXPECT_EQ(db.Passengers("d0").size(), 1u) << "seat double-booked";
  EXPECT_GE(region_->stats().duplicates_suppressed, 1u);
}

TEST_F(DedupSystemTest, ReliableSendHonoursOverallDeadline) {
  // Nobody ever receives: without a deadline this would grind through all
  // max_attempts x ack_timeout; the overall deadline cuts it off and is
  // counted.
  Port* port = server_->AddPort(CounterPortType(), 16);
  ReliableSendOptions options;
  options.ack_timeout = Millis(100);
  options.max_attempts = 1000;
  options.initial_backoff = Millis(5);
  options.jitter = 0.0;
  options.deadline = Millis(300);

  const TimePoint start = Now();
  auto result = ReliableSend(*client_, port->name(), "inc", {}, options);
  const int64_t elapsed = ToMicros(Now() - start);
  EXPECT_EQ(result.status().code(), Code::kTimeout);
  EXPECT_GE(elapsed, 290000);
  EXPECT_LT(elapsed, 2000000);
  EXPECT_EQ(system_.metrics().CounterValue(
                "sendprims.reliable.deadline_exceeded"),
            1u);
}

// ---------------------------------------------------------------------------
// Duplicate-ack-storm regression (SyncSend ack-port capacity)
// ---------------------------------------------------------------------------

PortType StormPortType() {
  return PortType("storm",
                  {MessageSig{"flood", {ArgType::Of(TypeTag::kPortName)}, {}},
                   MessageSig{"put", {}, {}}});
}

// SyncSend's transient ack port had a hardcoded capacity of 4: a burst of
// stale/duplicate acks could evict the real receipt ack, turning a
// delivered message into a spurious timeout + retry. The capacity now
// comes from SystemConfig::sync_ack_capacity. The storm is staged
// deterministically: the receiver is told the ack port's (predictable)
// name up front, floods it with stale acks, and only then dequeues the
// synchronized send — so the real ack always arrives behind the storm.
TEST(SyncAckStorm, StaleAckBurstCannotEvictTheRealAck) {
  SystemConfig config;
  config.seed = 77;
  config.default_link.latency = Micros(100);
  config.sync_ack_capacity = 48;  // distinctive, to prove the plumbing
  System system(config);
  NodeRuntime& a = system.AddNode("a");
  NodeRuntime& b = system.AddNode("b");
  for (auto* node : {&a, &b}) {
    node->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  }
  Guardian* client = *a.Create<ShellGuardian>("shell", "storm_client", {});
  Guardian* server = *b.Create<ShellGuardian>("shell", "storm_server", {});
  Port* storm_port = server->AddPort(StormPortType(), 16);

  constexpr int kStaleAcks = 32;  // would bury a 4-slot buffer many times
  server->Fork("storm", [server, storm_port] {
    auto flood = server->Receive(storm_port, Millis(5000));
    if (!flood.ok() || flood->args.empty()) {
      return;
    }
    auto ack_name = flood->args[0].AsPort();
    if (!ack_name.ok()) {
      return;
    }
    for (int i = 0; i < kStaleAcks; ++i) {
      (void)server->Send(*ack_name, "ack",
                         {Value::Str("stale-" + std::to_string(i))});
    }
    // Only now dequeue the synchronized send: its receipt ack leaves after
    // every stale ack is already on the wire.
    (void)server->Receive(storm_port, Millis(5000));
  });

  // SyncSend's ack port is the client shell's first port: index 0.
  PortName predicted_ack;
  predicted_ack.node = a.id();
  predicted_ack.guardian = client->id();
  predicted_ack.port_index = 0;
  predicted_ack.type_hash = AckPortType().hash();

  ASSERT_TRUE(
      client->Send(storm_port->name(), "flood", {Value::OfPort(predicted_ack)})
          .ok());
  Status st = SyncSend(*client, storm_port->name(), "put", {}, Millis(5000));
  EXPECT_TRUE(st.ok()) << st;
  EXPECT_EQ(system.metrics().CounterValue("sendprims.sync.timeouts"), 0u);

  // The ack port (retired by now, but still visible in the stats) really
  // was sized from config, not the old hardcoded 4.
  const auto stats = client->PortStats();
  ASSERT_FALSE(stats.empty());
  EXPECT_EQ(stats[0].type_name, "sys_ack");
  EXPECT_EQ(stats[0].capacity, config.sync_ack_capacity);
  EXPECT_GE(stats[0].enqueued, 1u);  // the real ack got in
}

}  // namespace
}  // namespace guardians
