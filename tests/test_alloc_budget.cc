// Allocation budget for the zero-copy wire path.
//
// A global operator-new interposer counts heap allocations made while a
// thread-local gate is open. The tests open the gate around exactly the
// region under measurement (never around gtest assertions, which allocate
// for their messages) and assert the wire hot path stays within a fixed
// allocation budget per message — the regression guard for the refcounted
// buffer work: a reintroduced payload clone or per-fragment vector copy
// shows up here as a budget overrun.
//
// Single-threaded on purpose (not tsan-labeled, no Network workers): the
// gate is thread-local, so only allocations made by this thread count and
// the numbers are exactly reproducible.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <optional>

#include "src/common/buffer.h"
#include "src/wire/envelope.h"
#include "src/wire/packet.h"

namespace guardians {
namespace {

std::atomic<uint64_t> g_allocations{0};
thread_local bool t_counting = false;

// Opens the counting gate for one scope and reports the delta.
class AllocationMeter {
 public:
  AllocationMeter() : start_(g_allocations.load(std::memory_order_relaxed)) {
    t_counting = true;
  }
  ~AllocationMeter() { t_counting = false; }
  uint64_t Stop() {
    t_counting = false;
    return g_allocations.load(std::memory_order_relaxed) - start_;
  }

 private:
  uint64_t start_;
};

}  // namespace
}  // namespace guardians

// The interposer itself: count while the gate is open, allocate as usual.
void* operator new(std::size_t size) {
  if (guardians::t_counting) {
    guardians::g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (guardians::t_counting) {
    guardians::g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace guardians {
namespace {

Envelope SmallEnvelope() {
  Envelope env;
  env.msg_id = 1;
  env.src_node = 1;
  env.target = PortName{2, 3, 0, 0xABCD};
  env.command = "tick";
  env.args = {Value::Int(42)};
  return env;
}

TEST(AllocBudgetTest, UnfragmentedSendToDeliverPathIsBounded) {
  // The steady-state hot path for a small message: encode once, wrap the
  // bytes (buffer adoption), one single-fragment packet, reassembler
  // passthrough. Budget rationale: ~3 for the encoder vector + Result
  // plumbing, 2 for buffer adoption (control block may be separate), 1 for
  // the packets vector — with slack for library-version noise, but far
  // below what any reintroduced payload copy chain would cost.
  constexpr uint64_t kBudget = 12;

  Reassembler reassembler;
  const Envelope env = SmallEnvelope();
  // Warm up once outside the meter (lazy statics, first-touch pools).
  {
    auto warm = EncodeEnvelope(env, DefaultLimits());
    ASSERT_TRUE(warm.ok());
    auto packets = Fragment(std::move(*warm), 0, 1, 2, 1024);
    auto out = reassembler.Add(std::move(packets[0]));
    ASSERT_TRUE(out.ok());
  }

  uint64_t allocations = 0;
  bool ok = true;
  std::optional<BufferSlice> delivered;
  {
    AllocationMeter meter;
    auto bytes = EncodeEnvelope(env, DefaultLimits());
    ok = bytes.ok();
    if (ok) {
      auto packets =
          Fragment(std::move(*bytes), /*msg_id=*/1, 1, 2, /*max_payload=*/1024);
      auto out = reassembler.Add(std::move(packets[0]));
      ok = out.ok() && out->has_value();
      if (ok) {
        delivered = std::move(**out);
      }
    }
    allocations = meter.Stop();
  }
  ASSERT_TRUE(ok);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_LE(allocations, kBudget)
      << "unfragmented send->deliver allocated " << allocations
      << " times; the zero-copy path budget is " << kBudget;
}

TEST(AllocBudgetTest, FragmentationAddsNoPerFragmentPayloadAllocations) {
  // A 4-fragment message: fragmentation must cost one packets vector, not
  // one payload clone per fragment, and reassembly completes by view.
  const Bytes message(256, 0x5A);
  Reassembler reassembler;
  {  // warm-up
    auto packets = Fragment(BufferSlice(message), 0, 1, 2, 64);
    for (auto& p : packets) {
      ASSERT_TRUE(reassembler.Add(std::move(p)).ok());
    }
  }

  const uint64_t copied_before = BufferStats::BytesCopied();
  uint64_t allocations = 0;
  bool completed = false;
  Bytes fresh = message;
  {
    AllocationMeter meter;
    BufferSlice slice(std::move(fresh));  // adopt a fresh buffer
    auto packets = Fragment(std::move(slice), /*msg_id=*/1, 1, 2, 64);
    for (auto& p : packets) {
      auto out = reassembler.Add(std::move(p));
      if (out.ok() && out->has_value()) {
        completed = true;
      }
    }
    allocations = meter.Stop();
  }
  ASSERT_TRUE(completed);
  // Adoption + packets vector + the reassembler's partial bookkeeping
  // (map node, frags/have vectors). The old subrange-copy path added 4
  // payload clones on top; a regression busts this budget immediately.
  EXPECT_LE(allocations, 14u);
  EXPECT_EQ(BufferStats::BytesCopied() - copied_before, 0u)
      << "fragment + reassemble must not copy payload bytes";
}

}  // namespace
}  // namespace guardians
