// Tests for ReliableSend (the §3 delivery-guarantee construction) and the
// campus/gateway topology helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "src/guardian/system.h"
#include "src/net/topology.h"
#include "src/sendprims/reliable_send.h"
#include "src/sendprims/remote_call.h"

namespace guardians {
namespace {

PortType NumberedPortType() {
  return PortType("numbered",
                  {MessageSig{"put", {ArgType::Of(TypeTag::kInt)}, {}}});
}

// Receives puts and counts distinct sequence numbers (receiver-side dedup,
// as at-least-once delivery requires).
class DedupSink : public Guardian {
 public:
  Status Setup(const ValueList&) override {
    AddPort(NumberedPortType(), 256, /*provided=*/true);
    return OkStatus();
  }
  void Main() override {
    for (;;) {
      auto m = Receive(port(0), Micros::max());
      if (!m.ok()) {
        return;
      }
      std::lock_guard<std::mutex> lock(mu_);
      const int64_t n = m->args[0].int_value();
      if (!seen_.insert(n).second) {
        ++duplicates_;
      }
    }
  }
  size_t distinct() const {
    std::lock_guard<std::mutex> lock(mu_);
    return seen_.size();
  }
  int duplicates() const {
    std::lock_guard<std::mutex> lock(mu_);
    return duplicates_;
  }

 private:
  mutable std::mutex mu_;
  std::set<int64_t> seen_;
  int duplicates_ = 0;
};

TEST(ReliableSendTest, DeliversEverythingOverALossyLink) {
  SystemConfig config;
  config.seed = 91;
  config.default_link.latency = Micros(100);
  config.default_link.drop_prob = 0.3;  // brutal
  System system(config);
  NodeRuntime& a = system.AddNode("a");
  NodeRuntime& b = system.AddNode("b");
  a.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  b.RegisterGuardianType("sink", MakeFactory<DedupSink>());
  Guardian* sender = *a.Create<ShellGuardian>("shell", "sender", {});
  auto sink = b.Create<DedupSink>("sink", "sink", {}, false);
  const PortName port = (*sink)->ProvidedPorts()[0];

  constexpr int kMessages = 30;
  int total_attempts = 0;
  ReliableSendOptions options;
  options.ack_timeout = Millis(30);
  options.max_attempts = 40;
  for (int i = 0; i < kMessages; ++i) {
    auto result = ReliableSend(*sender, port, "put", {Value::Int(i)},
                               options);
    ASSERT_TRUE(result.ok()) << "message " << i << ": " << result.status();
    total_attempts += result->attempts;
  }
  // Every message arrived exactly once at the abstraction level...
  EXPECT_EQ((*sink)->distinct(), static_cast<size_t>(kMessages));
  // ...at the cost of resends (the loss actually bit).
  EXPECT_GT(total_attempts, kMessages);
}

TEST(ReliableSendTest, PlainNoWaitSendLosesMessagesOnTheSameLink) {
  SystemConfig config;
  config.seed = 91;  // same seed, same link
  config.default_link.latency = Micros(100);
  config.default_link.drop_prob = 0.3;
  System system(config);
  NodeRuntime& a = system.AddNode("a");
  NodeRuntime& b = system.AddNode("b");
  a.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  b.RegisterGuardianType("sink", MakeFactory<DedupSink>());
  Guardian* sender = *a.Create<ShellGuardian>("shell", "sender", {});
  auto sink = b.Create<DedupSink>("sink", "sink", {}, false);

  constexpr int kMessages = 100;
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(sender->Send((*sink)->ProvidedPorts()[0], "put",
                             {Value::Int(i)})
                    .ok());
  }
  system.network().DrainForTesting();
  std::this_thread::sleep_for(Millis(50));
  // ~30% loss: decidedly not all of them ("delivery is not guaranteed").
  EXPECT_LT((*sink)->distinct(), static_cast<size_t>(kMessages));
  EXPECT_GT((*sink)->distinct(), 0u);
}

TEST(ReliableSendTest, GivesUpAfterAttemptBudget) {
  SystemConfig config;
  config.default_link.latency = Micros(100);
  System system(config);
  NodeRuntime& a = system.AddNode("a");
  NodeRuntime& b = system.AddNode("b");
  a.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  b.RegisterGuardianType("sink", MakeFactory<DedupSink>());
  Guardian* sender = *a.Create<ShellGuardian>("shell", "sender", {});
  auto sink = b.Create<DedupSink>("sink", "sink", {}, false);
  const PortName port = (*sink)->ProvidedPorts()[0];
  b.Crash();

  ReliableSendOptions options;
  options.ack_timeout = Millis(20);
  options.max_attempts = 3;
  auto result = ReliableSend(*sender, port, "put", {Value::Int(1)}, options);
  EXPECT_EQ(result.status().code(), Code::kTimeout);
}

TEST(TopologyTest, CampusesGetShortAndLongHaulLinks) {
  Network network(1);
  for (int i = 0; i < 5; ++i) {
    network.AddNode("n" + std::to_string(i));
  }
  const LinkParams lan{Micros(50), Micros(0), 0, 0, 0};
  const LinkParams wan{Millis(5), Micros(0), 0, 0, 0};
  // Nodes 1,2 on campus 0; nodes 3,4,5 on campus 1.
  auto topology = BuildCampuses(network, {0, 0, 1, 1, 1}, lan, wan);

  EXPECT_EQ(network.GetLink(1, 2).latency, Micros(50));
  EXPECT_EQ(network.GetLink(3, 5).latency, Micros(50));
  EXPECT_EQ(network.GetLink(1, 3).latency, Millis(5));
  EXPECT_EQ(network.GetLink(5, 2).latency, Millis(5));

  EXPECT_TRUE(topology.SameCampus(1, 2));
  EXPECT_FALSE(topology.SameCampus(2, 3));
  EXPECT_EQ(topology.CampusOf(4), 1);
  EXPECT_EQ(topology.CampusOf(99), -1);
}

TEST(TopologyTest, CampusPartitionCutsOnlyWanPairs) {
  Network network(1);
  for (int i = 0; i < 4; ++i) {
    network.AddNode("n" + std::to_string(i));
  }
  const LinkParams lan{Micros(10), Micros(0), 0, 0, 0};
  const LinkParams wan{Micros(500), Micros(0), 0, 0, 0};
  auto topology = BuildCampuses(network, {0, 0, 1, 1}, lan, wan);

  std::atomic<int> delivered{0};
  for (NodeId n = 1; n <= 4; ++n) {
    network.SetSink(n, [&](Packet&&) { ++delivered; });
  }
  PartitionCampuses(network, topology, 0, 1, true);

  auto send = [&](NodeId from, NodeId to) {
    Packet p;
    p.msg_id = from * 10 + to;
    p.src = from;
    p.dst = to;
    p.payload = Bytes{1};
    p.Seal();
    network.Send(p);
  };
  send(1, 2);  // intra-campus: delivered
  send(3, 4);  // intra-campus: delivered
  send(1, 3);  // cross-campus: cut
  send(4, 2);  // cross-campus: cut
  network.DrainForTesting();
  EXPECT_EQ(delivered.load(), 2);

  PartitionCampuses(network, topology, 0, 1, false);
  send(1, 3);
  network.DrainForTesting();
  EXPECT_EQ(delivered.load(), 3);
}

}  // namespace
}  // namespace guardians
