// Unit tests for TransHistory (Figure 5), ACLs, Status/Result, Rng and the
// small common utilities.
#include <gtest/gtest.h>

#include <cmath>

#include "src/airline/trans_history.h"
#include "src/airline/workload.h"
#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/guardian/acl.h"

namespace guardians {
namespace {

// --- TransHistory ------------------------------------------------------------

TEST(TransHistoryTest, ReservesAreImmediateCancelsDeferred) {
  TransHistory history;
  history.AddReserve(1, "d1");
  history.AddCancel(2, "d2");
  EXPECT_EQ(history.ActiveReserves(), 1);
  auto cancels = history.CancelsToPerform();
  ASSERT_EQ(cancels.size(), 1u);
  EXPECT_EQ(cancels[0].flight, 2);
}

TEST(TransHistoryTest, UndoLastReserveSchedulesCompensatingCancel) {
  TransHistory history;
  history.AddReserve(1, "d1");
  auto undone = history.UndoLast();
  ASSERT_TRUE(undone.has_value());
  EXPECT_EQ(undone->action, TransHistory::Action::kReserve);
  EXPECT_EQ(history.ActiveReserves(), 0);
  // The undone reserve becomes a cancel at done-time ("an unwanted
  // reservation can be undone by a cancel").
  auto cancels = history.CancelsToPerform();
  ASSERT_EQ(cancels.size(), 1u);
  EXPECT_EQ(cancels[0].flight, 1);
}

TEST(TransHistoryTest, UndoLastPendingCancelJustDropsIt) {
  TransHistory history;
  history.AddCancel(3, "d3");
  auto undone = history.UndoLast();
  ASSERT_TRUE(undone.has_value());
  EXPECT_EQ(undone->action, TransHistory::Action::kCancel);
  EXPECT_TRUE(history.CancelsToPerform().empty());
}

TEST(TransHistoryTest, UndoOrderIsLifoAndSkipsUndone) {
  TransHistory history;
  history.AddReserve(1, "d1");
  history.AddReserve(2, "d2");
  history.AddReserve(3, "d3");
  EXPECT_EQ(history.UndoLast()->flight, 3);
  EXPECT_EQ(history.UndoLast()->flight, 2);
  EXPECT_EQ(history.UndoLast()->flight, 1);
  EXPECT_FALSE(history.UndoLast().has_value());
}

TEST(TransHistoryTest, UndoAll) {
  TransHistory history;
  history.AddReserve(1, "d1");
  history.AddCancel(2, "d2");
  history.AddReserve(3, "d3");
  EXPECT_EQ(history.UndoAll(), 3);
  EXPECT_EQ(history.UndoAll(), 0);
  EXPECT_EQ(history.ActiveReserves(), 0);
  // Undone reserves (1, 3) become cancels; the undone cancel (2) vanishes.
  EXPECT_EQ(history.CancelsToPerform().size(), 2u);
}

TEST(TransHistoryTest, EmptyHistory) {
  TransHistory history;
  EXPECT_TRUE(history.Empty());
  EXPECT_FALSE(history.UndoLast().has_value());
  EXPECT_TRUE(history.CancelsToPerform().empty());
}

// --- ACL ---------------------------------------------------------------------

TEST(AclTest, GrantAndCheck) {
  AccessControlList acl;
  acl.Grant("manager", "list_passengers");
  EXPECT_TRUE(acl.Allows("manager", "list_passengers"));
  EXPECT_FALSE(acl.Allows("clerk", "list_passengers"));
  EXPECT_FALSE(acl.Allows("manager", "archive"));
  EXPECT_TRUE(acl.Check("manager", "list_passengers").ok());
  EXPECT_EQ(acl.Check("clerk", "list_passengers").code(),
            Code::kPermissionDenied);
}

TEST(AclTest, WildcardPrincipal) {
  AccessControlList acl;
  acl.Grant("*", "reserve");
  EXPECT_TRUE(acl.Allows("anybody", "reserve"));
  EXPECT_FALSE(acl.Allows("anybody", "cancel"));
}

TEST(AclTest, Revoke) {
  AccessControlList acl;
  acl.Grant("manager", "archive");
  acl.Revoke("manager", "archive");
  EXPECT_FALSE(acl.Allows("manager", "archive"));
  acl.Revoke("ghost", "nothing");  // harmless
}

// --- Status / Result ----------------------------------------------------------

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(OkStatus().ok());
  Status st(Code::kTimeout, "no reply");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.ToString(), "timeout: no reply");
  EXPECT_EQ(Status(Code::kTimeout), st);  // equality is by code
  EXPECT_EQ(OkStatus().ToString(), "ok");
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> good = 7;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  EXPECT_EQ(good.value_or(0), 7);

  Result<int> bad = Status(Code::kNotFound, "x");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Code::kNotFound);
  EXPECT_EQ(bad.value_or(-1), -1);
}

Result<int> Doubler(Result<int> in) {
  GUARDIANS_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(Status(Code::kTimeout)).status().code(), Code::kTimeout);
}

// --- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
  Rng c(124);
  EXPECT_NE(Rng(123).NextU64(), c.NextU64());
}

TEST(RngTest, RangesRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
    const int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoolProbabilityEdges) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
  int heads = 0;
  for (int i = 0; i < 2000; ++i) {
    heads += rng.NextBool(0.5) ? 1 : 0;
  }
  EXPECT_GT(heads, 800);
  EXPECT_LT(heads, 1200);
}

TEST(RngTest, DistributionsSane) {
  Rng rng(11);
  double exp_sum = 0;
  double norm_sum = 0;
  constexpr int kSamples = 4000;
  for (int i = 0; i < kSamples; ++i) {
    exp_sum += rng.NextExponential(3.0);
    norm_sum += rng.NextNormal(10.0, 2.0);
  }
  EXPECT_NEAR(exp_sum / kSamples, 3.0, 0.3);
  EXPECT_NEAR(norm_sum / kSamples, 10.0, 0.2);
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng parent(9);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextU64() == child.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

// --- bytes / workload utilities ------------------------------------------------

TEST(BytesTest, HexDumpAndHash) {
  EXPECT_EQ(HexDump(Bytes{0x4a, 0x6f, 0x65, 0x21}), "4a6f 6521");
  EXPECT_EQ(HexDump(Bytes(40, 0), 4), "0000 0000...");
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_EQ(Fnv1a64(""), 0xCBF29CE484222325ull);
}

TEST(WorkloadTest, FlightNumberingRoundTrips) {
  EXPECT_EQ(FlightNo(2, 34), 2034);
  EXPECT_EQ(RegionOfFlight(2034), 2);
  EXPECT_EQ(RegionOfFlight(FlightNo(0, 1)), 0);
}

TEST(WorkloadTest, DateStringCrossesMonthsAndYears) {
  EXPECT_EQ(DateString(0), "1979-09-01");
  EXPECT_EQ(DateString(29), "1979-09-30");
  EXPECT_EQ(DateString(30), "1979-10-01");
  EXPECT_EQ(DateString(122), "1980-01-01");
}

TEST(WorkloadTest, GeneratorShapesScripts) {
  WorkloadParams params;
  params.regions = 2;
  params.transactions = 10;
  params.ops_per_transaction = 5;
  params.seed = 99;
  auto scripts = GenerateTransactions(params);
  ASSERT_EQ(scripts.size(), 10u);
  for (const auto& script : scripts) {
    ASSERT_EQ(script.size(), 6u);  // ops + done
    EXPECT_EQ(script.back().kind, ClerkOp::Kind::kDone);
    for (const auto& op : script) {
      if (op.kind == ClerkOp::Kind::kReserve ||
          op.kind == ClerkOp::Kind::kCancel) {
        EXPECT_GE(RegionOfFlight(op.flight), 0);
        EXPECT_LT(RegionOfFlight(op.flight), 2);
        EXPECT_FALSE(op.date.empty());
      }
    }
  }
  // Deterministic from the seed.
  auto again = GenerateTransactions(params);
  EXPECT_EQ(again[0].size(), scripts[0].size());
  EXPECT_EQ(again[3][0].flight, scripts[3][0].flight);
}

}  // namespace
}  // namespace guardians
