// Unit tests for stable storage and the write-ahead log (Section 2.2).
#include <gtest/gtest.h>

#include "src/fault/crashpoint.h"
#include "src/store/stable_store.h"
#include "src/store/wal.h"
#include "src/wire/value_codec.h"

namespace guardians {
namespace {

TEST(StableStoreTest, StreamsAppendAndRead) {
  StableStore store;
  ASSERT_TRUE(store.Append("log", ToBytes("abc")).ok());
  ASSERT_TRUE(store.Append("log", ToBytes("def")).ok());
  EXPECT_EQ(ToString(store.Read("log")), "abcdef");
  EXPECT_EQ(store.StreamSize("log"), 6u);
  EXPECT_TRUE(store.Read("missing").empty());
}

TEST(StableStoreTest, TruncateAndDelete) {
  StableStore store;
  ASSERT_TRUE(store.Append("s", ToBytes("0123456789")).ok());
  ASSERT_TRUE(store.Truncate("s", 4).ok());
  EXPECT_EQ(ToString(store.Read("s")), "0123");
  EXPECT_FALSE(store.Truncate("missing", 0).ok());
  store.Delete("s");
  EXPECT_EQ(store.StreamSize("s"), 0u);
}

TEST(StableStoreTest, Cells) {
  StableStore store;
  store.PutCell("meta", ToBytes("v1"));
  EXPECT_EQ(ToString(*store.GetCell("meta")), "v1");
  store.PutCell("meta", ToBytes("v2"));  // replace-on-write
  EXPECT_EQ(ToString(*store.GetCell("meta")), "v2");
  EXPECT_EQ(store.GetCell("nope").status().code(), Code::kNotFound);
  store.DeleteCell("meta");
  EXPECT_FALSE(store.GetCell("meta").ok());
}

TEST(StableStoreTest, ChopTailSimulatesTornWrite) {
  StableStore store;
  ASSERT_TRUE(store.Append("s", ToBytes("hello")).ok());
  store.ChopTail("s", 2);
  EXPECT_EQ(ToString(store.Read("s")), "hel");
  store.ChopTail("s", 100);
  EXPECT_TRUE(store.Read("s").empty());
  store.ChopTail("missing", 5);  // harmless
}

TEST(StableStoreTest, DeviceFailure) {
  StableStore store;
  store.SetFailed(true);
  EXPECT_EQ(store.Append("s", ToBytes("x")).code(), Code::kStorageError);
  store.SetFailed(false);
  EXPECT_TRUE(store.Append("s", ToBytes("x")).ok());
}

TEST(StableStoreTest, FailedDeviceRejectsAllMutatingOps) {
  StableStore store;
  ASSERT_TRUE(store.Append("s", ToBytes("data")).ok());
  store.PutCell("c", ToBytes("v1"));
  store.SetFailed(true);
  // Every mutating operation fails; nothing reaches the media.
  EXPECT_EQ(store.Append("s", ToBytes("x")).code(), Code::kStorageError);
  EXPECT_EQ(store.PutCell("c", ToBytes("v2")).code(), Code::kStorageError);
  EXPECT_EQ(store.Truncate("s", 1).code(), Code::kStorageError);
  EXPECT_EQ(store.Delete("s").code(), Code::kStorageError);
  EXPECT_EQ(store.DeleteCell("c").code(), Code::kStorageError);
  // Reads still serve what was stable before the failure.
  EXPECT_EQ(ToString(store.Read("s")), "data");
  EXPECT_EQ(ToString(*store.GetCell("c")), "v1");
}

TEST(StableStoreTest, AccountingAndListing) {
  StableStore store;
  ASSERT_TRUE(store.Append("a", ToBytes("12")).ok());
  ASSERT_TRUE(store.Append("b", ToBytes("345")).ok());
  store.PutCell("c", ToBytes("6"));
  EXPECT_EQ(store.TotalBytes(), 6u);
  EXPECT_EQ(store.ListStreams(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(store.append_count(), 2u);
}

TEST(WalTest, AppendAndRecover) {
  StableStore store;
  Wal wal(&store, "g/test");
  ASSERT_TRUE(wal.Append(ToBytes("one")).ok());
  ASSERT_TRUE(wal.Append(ToBytes("two")).ok());
  auto recovery = wal.Recover();
  ASSERT_TRUE(recovery.ok());
  EXPECT_FALSE(recovery->snapshot.has_value());
  ASSERT_EQ(recovery->records.size(), 2u);
  EXPECT_EQ(ToString(recovery->records[0]), "one");
  EXPECT_EQ(ToString(recovery->records[1]), "two");
  EXPECT_FALSE(recovery->torn_tail);
}

TEST(WalTest, EmptyLogRecoversEmpty) {
  StableStore store;
  Wal wal(&store, "g/empty");
  auto recovery = wal.Recover();
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->records.empty());
  EXPECT_FALSE(recovery->torn_tail);
}

class WalTornTail : public ::testing::TestWithParam<size_t> {};

TEST_P(WalTornTail, ChoppedTailDiscardsOnlyTheLastRecord) {
  StableStore store;
  Wal wal(&store, "g/torn");
  ASSERT_TRUE(wal.Append(ToBytes("record-aaaa")).ok());
  ASSERT_TRUE(wal.Append(ToBytes("record-bbbb")).ok());
  ASSERT_TRUE(wal.Append(ToBytes("record-cccc")).ok());
  // Chop 1..(frame size) bytes: the final record becomes torn; the first
  // two must always survive.
  store.ChopTail("g/torn.log", GetParam());
  auto recovery = wal.Recover();
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  ASSERT_GE(recovery->records.size(), 2u);
  EXPECT_EQ(ToString(recovery->records[0]), "record-aaaa");
  EXPECT_EQ(ToString(recovery->records[1]), "record-bbbb");
  if (recovery->records.size() == 2) {
    EXPECT_TRUE(recovery->torn_tail);
  }
}

INSTANTIATE_TEST_SUITE_P(ChopSizes, WalTornTail,
                         ::testing::Values(1, 2, 5, 8, 11, 18));

TEST(WalTest, MidStreamCorruptionIsDeviceFailure) {
  StableStore store;
  Wal wal(&store, "g/bad");
  ASSERT_TRUE(wal.Append(ToBytes("record-aaaa")).ok());
  ASSERT_TRUE(wal.Append(ToBytes("record-bbbb")).ok());
  // Flip a payload byte of the FIRST record: not a torn tail.
  Bytes raw = store.Read("g/bad.log");
  raw[10] ^= 0xFF;
  store.Delete("g/bad.log");
  ASSERT_TRUE(store.Append("g/bad.log", raw).ok());
  auto recovery = wal.Recover();
  EXPECT_EQ(recovery.status().code(), Code::kLogCorrupt);
}

TEST(WalTest, GarbageOnlyFinalFrameIsTornTail) {
  StableStore store;
  Wal wal(&store, "g/tail");
  ASSERT_TRUE(wal.Append(ToBytes("good")).ok());
  ASSERT_TRUE(wal.Append(ToBytes("last")).ok());
  Bytes raw = store.Read("g/tail.log");
  raw.back() ^= 0xFF;  // corrupt inside the final frame's payload
  store.Delete("g/tail.log");
  ASSERT_TRUE(store.Append("g/tail.log", raw).ok());
  auto recovery = wal.Recover();
  ASSERT_TRUE(recovery.ok());
  ASSERT_EQ(recovery->records.size(), 1u);
  EXPECT_TRUE(recovery->torn_tail);
}

TEST(WalTest, CheckpointReplacesPrefix) {
  StableStore store;
  Wal wal(&store, "g/cp");
  ASSERT_TRUE(wal.Append(ToBytes("old-1")).ok());
  ASSERT_TRUE(wal.Append(ToBytes("old-2")).ok());
  ASSERT_TRUE(wal.Checkpoint(ToBytes("SNAP")).ok());
  ASSERT_TRUE(wal.Append(ToBytes("new-1")).ok());
  auto recovery = wal.Recover();
  ASSERT_TRUE(recovery.ok());
  ASSERT_TRUE(recovery->snapshot.has_value());
  EXPECT_EQ(ToString(*recovery->snapshot), "SNAP");
  ASSERT_EQ(recovery->records.size(), 1u);
  EXPECT_EQ(ToString(recovery->records[0]), "new-1");
}

TEST(WalTest, CheckpointPropagatesDeviceFailure) {
  StableStore store;
  Wal wal(&store, "g/devfail");
  ASSERT_TRUE(wal.Append(ToBytes("op-1")).ok());
  store.SetFailed(true);
  EXPECT_EQ(wal.Checkpoint(ToBytes("SNAP")).code(), Code::kStorageError);
  store.SetFailed(false);
  // The failed checkpoint left no committed snapshot; the log still wins.
  auto recovery = wal.Recover();
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  EXPECT_FALSE(recovery->snapshot.has_value());
  ASSERT_EQ(recovery->records.size(), 1u);
  EXPECT_EQ(ToString(recovery->records[0]), "op-1");
}

TEST(WalTest, CrashBetweenSnapshotWriteAndTruncateRollsForward) {
  StableStore store;
  Wal wal(&store, "g/mid");
  ASSERT_TRUE(wal.Append(ToBytes("old-1")).ok());
  ASSERT_TRUE(wal.Checkpoint(ToBytes("SNAP1")).ok());
  ASSERT_TRUE(wal.Append(ToBytes("covered-1")).ok());
  ASSERT_TRUE(wal.Append(ToBytes("covered-2")).ok());

  // Crash the checkpoint through the real injection machinery: arm the
  // site between the snapshot write and the truncate, scoped to this
  // thread.
  ScopedFaultScope scope(&store);
  ASSERT_TRUE(FaultInjector::Instance()
                  .Arm({"wal.checkpoint.after_snapshot", 1}, &store, nullptr)
                  .ok());
  EXPECT_THROW(
      { Status st = wal.Checkpoint(ToBytes("SNAP2")); (void)st; },
      CrashPointTriggered);
  FaultInjector::Instance().Disarm();

  // The new snapshot is on media but the covered records were never
  // truncated. Recovery must prefer the snapshot (it covers them) rather
  // than replaying them on top of it, and must repair the half-done
  // checkpoint.
  auto recovery = wal.Recover();
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  EXPECT_TRUE(recovery->interrupted_checkpoint);
  ASSERT_TRUE(recovery->snapshot.has_value());
  EXPECT_EQ(ToString(*recovery->snapshot), "SNAP2");
  EXPECT_TRUE(recovery->records.empty());

  // Rolled forward: a second recovery is ordinary, and the log keeps
  // working.
  auto again = wal.Recover();
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->interrupted_checkpoint);
  EXPECT_EQ(ToString(*again->snapshot), "SNAP2");
  ASSERT_TRUE(wal.Append(ToBytes("new-1")).ok());
  auto final_rec = wal.Recover();
  ASSERT_TRUE(final_rec.ok());
  ASSERT_EQ(final_rec->records.size(), 1u);
  EXPECT_EQ(ToString(final_rec->records[0]), "new-1");
}

TEST(WalTest, RecoverValuesRejectsUndecodablePayload) {
  StableStore store;
  Wal wal(&store, "g/undec");
  // A CRC-valid frame whose payload is not a wire-encoded Value: framing
  // accepts it, value decoding must not.
  ASSERT_TRUE(wal.Append(Bytes{0xFF, 0xFE, 0xFD}).ok());
  ASSERT_TRUE(wal.AppendValue(Value::Record({{"op", Value::Str("x")}}))
                  .ok());
  auto values = wal.RecoverValues();
  EXPECT_FALSE(values.ok());
  // Framing-level recovery of the same log is fine.
  auto raw = wal.Recover();
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->records.size(), 2u);
}

TEST(WalTest, ValueRecords) {
  StableStore store;
  Wal wal(&store, "g/vals");
  ASSERT_TRUE(wal.AppendValue(Value::Record({{"op", Value::Str("reserve")},
                                             {"n", Value::Int(3)}}))
                  .ok());
  auto values = wal.RecoverValues();
  ASSERT_TRUE(values.ok());
  ASSERT_EQ(values->size(), 1u);
  EXPECT_EQ((*values)[0].field("op")->string_value(), "reserve");
  EXPECT_EQ((*values)[0].field("n")->int_value(), 3);
}

TEST(WalTest, SizeAndAppendCountTrack) {
  StableStore store;
  Wal wal(&store, "g/size");
  EXPECT_EQ(wal.SizeBytes(), 0u);
  ASSERT_TRUE(wal.Append(Bytes(100, 1)).ok());
  EXPECT_EQ(wal.SizeBytes(), 108u);  // 8-byte frame header
  EXPECT_EQ(wal.appended(), 1u);
}

TEST(WalTest, TwoWalsShareAStoreIndependently) {
  StableStore store;
  Wal a(&store, "g/a");
  Wal b(&store, "g/b");
  ASSERT_TRUE(a.Append(ToBytes("A")).ok());
  ASSERT_TRUE(b.Append(ToBytes("B")).ok());
  EXPECT_EQ(ToString(a.Recover()->records[0]), "A");
  EXPECT_EQ(ToString(b.Recover()->records[0]), "B");
}

}  // namespace
}  // namespace guardians
