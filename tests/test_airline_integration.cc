// Integration tests of the full Figure 2 airline: regional partitioning,
// forwarding with reply bypass (Figure 4), clerk transactions with deferred
// cancels and undo (Figure 5), access control, and crash recovery.
#include <gtest/gtest.h>

#include "src/airline/airline_system.h"
#include "src/airline/workload.h"
#include "src/sendprims/remote_call.h"

namespace guardians {
namespace {

class AirlineTest : public ::testing::Test {
 protected:
  AirlineTest() : system_(MakeConfig()) {}

  static SystemConfig MakeConfig() {
    SystemConfig config;
    config.seed = 11;
    config.default_link.latency = Micros(150);
    return config;
  }

  void Build(const AirlineParams& params) {
    auto topology = BuildAirline(system_, params);
    ASSERT_TRUE(topology.ok()) << topology.status();
    topology_ = topology.take();
    NodeRuntime& clerk_node = system_.node(topology_.region_nodes[0]);
    auto shell = clerk_node.Create<ShellGuardian>("shell", "clerk-shell", {});
    ASSERT_TRUE(shell.ok());
    shell_ = *shell;
  }

  // Reserve directly against a regional port (admin-style).
  std::string DirectReserve(int region, int64_t flight,
                            const std::string& passenger,
                            const std::string& date) {
    RemoteCallOptions options;
    options.timeout = Millis(1000);
    options.max_attempts = 2;
    auto reply = RemoteCall(*shell_, topology_.regional_ports[region],
                            "reserve",
                            {Value::Int(flight), Value::Str(passenger),
                             Value::Str(date)},
                            ReservationReplyType(), options);
    return reply.ok() ? reply->command
                      : std::string(CodeName(reply.status().code()));
  }

  std::vector<std::string> ListPassengers(int region, int64_t flight,
                                          const std::string& date,
                                          const std::string& principal) {
    RemoteCallOptions options;
    options.timeout = Millis(1000);
    auto reply = RemoteCall(
        *shell_, topology_.regional_ports[region], "list_passengers",
        {Value::Int(flight), Value::Str(date), Value::Str(principal)},
        ReservationReplyType(), options);
    std::vector<std::string> names;
    if (reply.ok() && reply->command == "info") {
      for (const auto& v : reply->args[0].items()) {
        names.push_back(v.string_value());
      }
    } else if (reply.ok()) {
      names.push_back("<" + reply->command + ">");
    }
    return names;
  }

  System system_;
  AirlineTopology topology_;
  Guardian* shell_ = nullptr;
};

TEST_F(AirlineTest, ReserveCancelListAcrossRegions) {
  AirlineParams params;
  params.regions = 2;
  params.flights_per_region = 2;
  params.capacity = 2;
  Build(params);

  // Reserve on a region-1 flight from a shell at region 0's node.
  EXPECT_EQ(DirectReserve(1, FlightNo(1, 0), "smith", "1979-09-03"), "ok");
  EXPECT_EQ(DirectReserve(1, FlightNo(1, 0), "smith", "1979-09-03"),
            "pre_reserved");
  EXPECT_EQ(DirectReserve(1, FlightNo(1, 0), "jones", "1979-09-03"), "ok");
  // Capacity 2 + waitlist: third passenger is wait-listed.
  EXPECT_EQ(DirectReserve(1, FlightNo(1, 0), "brown", "1979-09-03"),
            "wait_list");

  // Only a manager may list passengers.
  auto names = ListPassengers(1, FlightNo(1, 0), "1979-09-03", "manager");
  EXPECT_EQ(names.size(), 2u);
  auto denied = ListPassengers(1, FlightNo(1, 0), "1979-09-03", "clerk");
  ASSERT_EQ(denied.size(), 1u);
  EXPECT_EQ(denied[0], "<denied>");

  // Unknown flight.
  EXPECT_EQ(DirectReserve(0, 999, "smith", "1979-09-03"), "no_such_flight");
}

TEST_F(AirlineTest, ClerkTransactionWithDeferredCancelAndUndo) {
  AirlineParams params;
  params.regions = 2;
  params.flights_per_region = 2;
  params.capacity = 10;
  Build(params);

  Clerk clerk(*shell_, "passenger-1");
  std::vector<ClerkOp> ops = {
      {ClerkOp::Kind::kReserve, FlightNo(0, 0), "1979-09-05"},
      {ClerkOp::Kind::kReserve, FlightNo(1, 1), "1979-09-06"},
      // Change of mind: undo the second reserve (cancelled at done-time).
      {ClerkOp::Kind::kUndoLast, 0, ""},
      {ClerkOp::Kind::kDone, 0, ""},
  };
  TransSummary summary =
      clerk.RunTransaction(topology_.user_ports[0], ops, Millis(2000));
  EXPECT_TRUE(summary.started);
  EXPECT_TRUE(summary.completed);
  EXPECT_EQ(summary.reserves_standing, 1);
  EXPECT_EQ(summary.outcomes["ok"], 2);
  EXPECT_EQ(summary.outcomes["undone"], 1);

  // The undone reserve was cancelled; the first stands.
  auto first = ListPassengers(0, FlightNo(0, 0), "1979-09-05", "manager");
  EXPECT_EQ(first, std::vector<std::string>{"passenger-1"});
  auto second = ListPassengers(1, FlightNo(1, 1), "1979-09-06", "manager");
  EXPECT_TRUE(second.empty());
}

TEST_F(AirlineTest, CrashTimeoutRetryAfterRestartIsIdempotent) {
  AirlineParams params;
  params.regions = 2;
  params.flights_per_region = 1;
  params.capacity = 5;
  params.logging = true;
  Build(params);

  // A reservation that must survive the crash.
  ASSERT_EQ(DirectReserve(1, FlightNo(1, 0), "durable", "1979-09-10"), "ok");

  NodeRuntime& region1 = system_.node(topology_.region_nodes[1]);
  region1.Crash();

  // While the node is down: timeout — nothing is known about the true
  // state of affairs.
  EXPECT_EQ(DirectReserve(1, FlightNo(1, 0), "during", "1979-09-10"),
            "timeout");

  ASSERT_TRUE(region1.Restart().ok());

  // Retry after restart: idempotent, and the pre-crash reservation is
  // still there (permanence of effect).
  EXPECT_EQ(DirectReserve(1, FlightNo(1, 0), "durable", "1979-09-10"),
            "pre_reserved");
  EXPECT_EQ(DirectReserve(1, FlightNo(1, 0), "during", "1979-09-10"), "ok");
  auto names = ListPassengers(1, FlightNo(1, 0), "1979-09-10", "manager");
  EXPECT_EQ(names.size(), 2u);
}

TEST_F(AirlineTest, WorkloadRunsToCompletionAndStaysConsistent) {
  AirlineParams params;
  params.regions = 2;
  params.flights_per_region = 3;
  params.capacity = 4;
  params.organization = FlightOrganization::kSerializer;
  Build(params);

  WorkloadParams wl;
  wl.regions = 2;
  wl.flights_per_region = 3;
  wl.dates = 4;
  wl.transactions = 8;
  wl.ops_per_transaction = 5;
  wl.seed = 3;
  auto scripts = GenerateTransactions(wl);

  int completed = 0;
  for (size_t t = 0; t < scripts.size(); ++t) {
    Clerk clerk(*shell_, "pax-" + std::to_string(t));
    TransSummary summary = clerk.RunTransaction(
        topology_.user_ports[t % topology_.user_ports.size()], scripts[t],
        Millis(2000));
    if (summary.completed) {
      ++completed;
    }
  }
  EXPECT_EQ(completed, static_cast<int>(scripts.size()));

  // Every flight's inventory satisfies its invariants.
  for (RegionalManager* regional : topology_.regionals) {
    EXPECT_GT(regional->flight_count(), 0u);
  }
  for (NodeId node_id : topology_.region_nodes) {
    NodeRuntime& node = system_.node(node_id);
    for (GuardianId gid = 2; gid < 64; ++gid) {
      Guardian* guardian = node.FindGuardian(gid);
      if (guardian == nullptr) {
        continue;
      }
      auto* flight = dynamic_cast<FlightGuardian*>(guardian);
      if (flight != nullptr) {
        EXPECT_TRUE(flight->SnapshotDb().CheckInvariants());
      }
    }
  }
}

}  // namespace
}  // namespace guardians
