// Unit tests for the simulated network (the Section 1.1 substrate).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

#include "src/net/network.h"
#include "src/runtime/latch.h"

namespace guardians {
namespace {

Packet MakePacket(NodeId src, NodeId dst, uint64_t id, size_t size = 16) {
  Packet p;
  p.msg_id = id;
  p.src = src;
  p.dst = dst;
  p.payload = Bytes(size, static_cast<uint8_t>(id));
  p.Seal();
  return p;
}

TEST(NetworkTest, DeliversToRegisteredSink) {
  Network network(1);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  CountdownLatch arrived(1);
  std::atomic<uint64_t> got{0};
  network.SetSink(b, [&](Packet&& p) {
    got = p.msg_id;
    arrived.CountDown();
  });
  network.SetDefaultLink(LinkParams{Micros(100), Micros(0), 0, 0, 0});
  network.Send(MakePacket(a, b, 42));
  ASSERT_TRUE(arrived.WaitFor(Millis(2000)));
  EXPECT_EQ(got.load(), 42u);
  EXPECT_EQ(network.stats().packets_delivered, 1u);
}

TEST(NetworkTest, LatencyIsApplied) {
  Network network(1);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  CountdownLatch arrived(1);
  network.SetSink(b, [&](Packet&&) { arrived.CountDown(); });
  network.SetDefaultLink(LinkParams{Millis(20), Micros(0), 0, 0, 0});
  const TimePoint begin = Now();
  network.Send(MakePacket(a, b, 1));
  ASSERT_TRUE(arrived.WaitFor(Millis(5000)));
  EXPECT_GE(ToMicros(Now() - begin), 19000);
}

TEST(NetworkTest, DropProbabilityLosesRoughlyThatFraction) {
  Network network(7);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  std::atomic<int> delivered{0};
  network.SetSink(b, [&](Packet&&) { ++delivered; });
  network.SetDefaultLink(LinkParams{Micros(10), Micros(0), 0.5, 0, 0});
  constexpr int kPackets = 600;
  for (int i = 0; i < kPackets; ++i) {
    network.Send(MakePacket(a, b, i));
  }
  network.DrainForTesting();
  EXPECT_GT(delivered.load(), kPackets / 4);
  EXPECT_LT(delivered.load(), 3 * kPackets / 4);
  EXPECT_EQ(network.stats().packets_dropped +
                network.stats().packets_delivered,
            static_cast<uint64_t>(kPackets));
}

TEST(NetworkTest, CorruptionFlipsBitsButDelivers) {
  Network network(3);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  std::atomic<int> failed_crc{0};
  std::atomic<int> total{0};
  network.SetSink(b, [&](Packet&& p) {
    ++total;
    if (!p.Verify()) {
      ++failed_crc;
    }
  });
  network.SetDefaultLink(LinkParams{Micros(10), Micros(0), 0, 1.0, 0});
  for (int i = 0; i < 50; ++i) {
    network.Send(MakePacket(a, b, i));
  }
  network.DrainForTesting();
  EXPECT_EQ(total.load(), 50);
  // With corrupt_prob=1 every packet was mangled, and the error-detection
  // bits catch every one.
  EXPECT_EQ(failed_crc.load(), 50);
  EXPECT_EQ(network.stats().packets_corrupted, 50u);
}

TEST(NetworkTest, PartitionCutsBothDirections) {
  Network network(1);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  std::atomic<int> delivered{0};
  network.SetSink(a, [&](Packet&&) { ++delivered; });
  network.SetSink(b, [&](Packet&&) { ++delivered; });
  network.SetDefaultLink(LinkParams{Micros(10), Micros(0), 0, 0, 0});
  network.SetPartitioned(a, b, true);
  network.Send(MakePacket(a, b, 1));
  network.Send(MakePacket(b, a, 2));
  network.DrainForTesting();
  EXPECT_EQ(delivered.load(), 0);
  network.SetPartitioned(a, b, false);
  network.Send(MakePacket(a, b, 3));
  network.DrainForTesting();
  EXPECT_EQ(delivered.load(), 1);
}

TEST(NetworkTest, DownNodeNeitherSendsNorReceives) {
  Network network(1);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  std::atomic<int> delivered{0};
  network.SetSink(b, [&](Packet&&) { ++delivered; });
  network.SetDefaultLink(LinkParams{Micros(10), Micros(0), 0, 0, 0});

  network.SetNodeUp(b, false);
  network.Send(MakePacket(a, b, 1));  // lost at delivery
  network.DrainForTesting();
  EXPECT_EQ(delivered.load(), 0);

  network.SetNodeUp(b, true);
  network.SetNodeUp(a, false);
  network.Send(MakePacket(a, b, 2));  // refused at send
  network.DrainForTesting();
  EXPECT_EQ(delivered.load(), 0);

  network.SetNodeUp(a, true);
  network.Send(MakePacket(a, b, 3));
  network.DrainForTesting();
  EXPECT_EQ(delivered.load(), 1);
}

TEST(NetworkTest, InFlightPacketsLostWhenDestinationCrashes) {
  Network network(1);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  std::atomic<int> delivered{0};
  network.SetSink(b, [&](Packet&&) { ++delivered; });
  network.SetDefaultLink(LinkParams{Millis(50), Micros(0), 0, 0, 0});
  network.Send(MakePacket(a, b, 1));
  network.SetNodeUp(b, false);  // crash while the packet is in flight
  network.DrainForTesting();
  EXPECT_EQ(delivered.load(), 0);
}

TEST(NetworkTest, PerLinkParamsOverrideDefault) {
  Network network(1);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  const NodeId c = network.AddNode("c");
  network.SetDefaultLink(LinkParams{Millis(30), Micros(0), 0, 0, 0});
  network.SetLink(a, b, LinkParams{Micros(100), Micros(0), 0, 0, 0});
  EXPECT_EQ(network.GetLink(a, b).latency, Micros(100));
  EXPECT_EQ(network.GetLink(b, a).latency, Micros(100));
  EXPECT_EQ(network.GetLink(a, c).latency, Millis(30));

  CountdownLatch fast(1);
  network.SetSink(b, [&](Packet&&) { fast.CountDown(); });
  const TimePoint begin = Now();
  network.Send(MakePacket(a, b, 1));
  ASSERT_TRUE(fast.WaitFor(Millis(2000)));
  EXPECT_LT(ToMicros(Now() - begin), 20000);
}

TEST(NetworkTest, BandwidthAddsSerializationDelay) {
  Network network(1);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  CountdownLatch arrived(1);
  network.SetSink(b, [&](Packet&&) { arrived.CountDown(); });
  // 1 byte per microsecond: a ~1KB packet takes ~1ms extra.
  network.SetDefaultLink(LinkParams{Micros(0), Micros(0), 0, 0, 1.0});
  const TimePoint begin = Now();
  network.Send(MakePacket(a, b, 1, 1000));
  ASSERT_TRUE(arrived.WaitFor(Millis(2000)));
  EXPECT_GE(ToMicros(Now() - begin), 1000);
}

TEST(NetworkTest, LocalDeliveryBypassesLinkParams) {
  Network network(1);
  const NodeId a = network.AddNode("a");
  CountdownLatch arrived(1);
  network.SetSink(a, [&](Packet&&) { arrived.CountDown(); });
  network.SetDefaultLink(LinkParams{Millis(60), Micros(0), 1.0, 0, 0});
  network.Send(MakePacket(a, a, 1));
  // Same-node traffic is immediate and lossless despite the brutal link.
  ASSERT_TRUE(arrived.WaitFor(Millis(2000)));
}

TEST(NetworkTest, NodeNames) {
  Network network(1);
  const NodeId a = network.AddNode("alpha");
  EXPECT_EQ(network.NodeName(a), "alpha");
  EXPECT_EQ(network.NodeName(999), "?");
  EXPECT_EQ(network.node_count(), 1u);
}

TEST(NetworkTest, DuplicationDeliversExtraCopies) {
  Network network(11);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  std::atomic<int> delivered{0};
  network.SetSink(b, [&](Packet&&) { ++delivered; });
  network.SetDefaultLink(LinkParams{Micros(10), Micros(0), 0, 0, 0, 1.0});
  constexpr int kPackets = 40;
  for (int i = 0; i < kPackets; ++i) {
    network.Send(MakePacket(a, b, i));
  }
  network.DrainForTesting();
  // dup_prob = 1: every send produces exactly one extra in-flight copy.
  EXPECT_EQ(delivered.load(), 2 * kPackets);
  const NetworkStats stats = network.stats();
  EXPECT_EQ(stats.packets_sent, static_cast<uint64_t>(kPackets));
  EXPECT_EQ(stats.packets_duplicated, static_cast<uint64_t>(kPackets));
  EXPECT_EQ(stats.packets_delivered, static_cast<uint64_t>(2 * kPackets));
  EXPECT_EQ(stats.packets_dropped, 0u);
}

TEST(NetworkTest, ConservationLawHoldsUnderLossAndDuplication) {
  Network network(23);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  std::atomic<int> delivered{0};
  network.SetSink(b, [&](Packet&&) { ++delivered; });
  // Loss and duplication together: a send-time drop consumes the packet
  // before the duplication roll, a surviving send may add one extra copy.
  network.SetDefaultLink(LinkParams{Micros(10), Micros(0), 0.3, 0, 0, 0.3});
  constexpr int kPackets = 500;
  for (int i = 0; i < kPackets; ++i) {
    network.Send(MakePacket(a, b, i));
  }
  network.DrainForTesting();
  const NetworkStats stats = network.stats();
  EXPECT_EQ(stats.packets_sent, static_cast<uint64_t>(kPackets));
  EXPECT_GT(stats.packets_duplicated, 0u);
  EXPECT_GT(stats.packets_dropped, 0u);
  // The conservation law: every accepted send and every injected copy is
  // eventually resolved exactly once, as a delivery or as a drop.
  EXPECT_EQ(stats.packets_delivered + stats.packets_dropped,
            stats.packets_sent + stats.packets_duplicated);
  EXPECT_EQ(stats.packets_delivered,
            static_cast<uint64_t>(delivered.load()));
}

TEST(NetworkTest, DuplicateSharesPayloadBufferWithOriginal) {
  // The zero-copy wire path: duplicate injection must not clone payload
  // bytes. With corruption off, both twins arrive as views of one buffer.
  Network network(11);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  std::mutex mu;
  std::vector<Packet> received;
  network.SetSink(b, [&](Packet&& p) {
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(std::move(p));
  });
  network.SetDefaultLink(LinkParams{Micros(10), Micros(0), 0, 0, 0, 1.0});
  network.Send(MakePacket(a, b, 7));
  network.DrainForTesting();
  ASSERT_EQ(received.size(), 2u);
  EXPECT_TRUE(received[0].payload.SharesBufferWith(received[1].payload));
  EXPECT_EQ(received[0].payload, received[1].payload);
  EXPECT_TRUE(received[0].Verify());
  EXPECT_TRUE(received[1].Verify());
}

TEST(NetworkTest, CorruptionIsCopyOnWriteIsolatedFromSharedTwin) {
  // corrupt_prob=1 and dup_prob=1: the corruption COW happens before the
  // duplicate is cloned, so the twins share the *corrupted* buffer — the
  // same observable outcome as the old deep-copy engine (both fail CRC) —
  // while the sender's prototype packet is never written through.
  Network network(3);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  std::mutex mu;
  std::vector<Packet> received;
  network.SetSink(b, [&](Packet&& p) {
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(std::move(p));
  });
  network.SetDefaultLink(LinkParams{Micros(10), Micros(0), 0, 1.0, 0, 1.0});

  Packet prototype = MakePacket(a, b, 9);
  const Bytes original = prototype.payload.ToBytes();
  network.Send(prototype);  // by-value: the network corrupts its own copy
  network.DrainForTesting();

  // The caller's packet still shows the bytes it sealed — the corruption
  // wrote through a private COW buffer, not the shared one.
  EXPECT_EQ(prototype.payload, original);
  EXPECT_TRUE(prototype.Verify());

  ASSERT_EQ(received.size(), 2u);
  for (const Packet& p : received) {
    EXPECT_FALSE(p.Verify()) << "corruption must break the CRC";
    EXPECT_FALSE(p.payload == ConstByteSpan(original));
  }
  // Corruption preceded duplication, so the twins share the bad buffer.
  EXPECT_TRUE(received[0].payload.SharesBufferWith(received[1].payload));
  EXPECT_EQ(received[0].payload, received[1].payload);
}

TEST(NetworkTest, CorruptedFragmentDoesNotBleedIntoSiblings) {
  // All fragments of one message are slices of one encode buffer. When the
  // network corrupts exactly one of them, the COW must confine the damage:
  // every sibling still verifies and still shows its original bytes.
  Network network(5);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  std::mutex mu;
  std::vector<Packet> received;
  network.SetSink(b, [&](Packet&& p) {
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(std::move(p));
  });
  network.SetDefaultLink(LinkParams{Micros(10), Micros(0), 0, 0, 0});
  network.SetLink(a, b, LinkParams{Micros(10), Micros(0), 0, 0, 0});

  Bytes message(64, 0);
  for (size_t i = 0; i < message.size(); ++i) {
    message[i] = static_cast<uint8_t>(i);
  }
  auto packets = Fragment(BufferSlice(Bytes(message)), /*msg_id=*/1, a, b,
                          /*max_payload=*/16);
  ASSERT_EQ(packets.size(), 4u);
  for (size_t i = 1; i < packets.size(); ++i) {
    ASSERT_TRUE(packets[i].payload.SharesBufferWith(packets[0].payload));
  }

  // Corrupt fragment 2 by hand through the COW hatch (deterministic stand-in
  // for the network's corruption roll) and send everything.
  packets[2].payload.MutableData()[0] ^= 0x40;  // stale CRC kept on purpose
  // The COW detached fragment 2 into its own private buffer.
  for (size_t i = 0; i < packets.size(); ++i) {
    if (i != 2) {
      EXPECT_FALSE(packets[i].payload.SharesBufferWith(packets[2].payload));
    }
  }
  for (auto& p : packets) {
    network.Send(std::move(p));
  }
  network.DrainForTesting();

  ASSERT_EQ(received.size(), 4u);
  int bad = 0;
  for (const Packet& p : received) {
    if (!p.Verify()) {
      ++bad;
      EXPECT_EQ(p.frag_index, 2u);
      continue;
    }
    // Every intact sibling shows exactly its slice of the original message.
    const size_t begin = p.frag_index * 16u;
    EXPECT_EQ(p.payload,
              ConstByteSpan(message.data() + begin, p.payload.size()));
  }
  EXPECT_EQ(bad, 1);
}

TEST(NetworkTest, DuplicateCountsBitIdenticalAcrossShardCounts) {
  // Loss, duplication, and corruption are all decided at Send() under one
  // lock and one rng: for a fixed seed the counts must not depend on how
  // many delivery workers drain the heaps.
  constexpr uint64_t kSeed = 1979;
  constexpr int kPackets = 400;
  std::vector<NetworkStats> runs;
  for (size_t shards : {1u, 2u, 4u}) {
    Network network(kSeed, nullptr, nullptr, shards);
    const NodeId a = network.AddNode("a");
    const NodeId b = network.AddNode("b");
    network.SetSink(b, [](Packet&&) {});
    network.SetDefaultLink(
        LinkParams{Micros(10), Micros(5), 0.2, 0.1, 0, 0.25});
    for (int i = 0; i < kPackets; ++i) {
      network.Send(MakePacket(a, b, i));
    }
    network.DrainForTesting();
    runs.push_back(network.stats());
  }
  ASSERT_EQ(runs.size(), 3u);
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].packets_duplicated, runs[0].packets_duplicated)
        << "shard count changed the duplicate count";
    EXPECT_EQ(runs[i].packets_dropped, runs[0].packets_dropped);
    EXPECT_EQ(runs[i].packets_corrupted, runs[0].packets_corrupted);
    EXPECT_EQ(runs[i].packets_delivered, runs[0].packets_delivered);
    EXPECT_EQ(runs[i].packets_delivered + runs[i].packets_dropped,
              runs[i].packets_sent + runs[i].packets_duplicated);
  }
  EXPECT_GT(runs[0].packets_duplicated, 0u);
}

}  // namespace
}  // namespace guardians
