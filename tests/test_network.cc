// Unit tests for the simulated network (the Section 1.1 substrate).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

#include "src/net/network.h"
#include "src/runtime/latch.h"

namespace guardians {
namespace {

Packet MakePacket(NodeId src, NodeId dst, uint64_t id, size_t size = 16) {
  Packet p;
  p.msg_id = id;
  p.src = src;
  p.dst = dst;
  p.payload = Bytes(size, static_cast<uint8_t>(id));
  p.Seal();
  return p;
}

TEST(NetworkTest, DeliversToRegisteredSink) {
  Network network(1);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  CountdownLatch arrived(1);
  std::atomic<uint64_t> got{0};
  network.SetSink(b, [&](Packet&& p) {
    got = p.msg_id;
    arrived.CountDown();
  });
  network.SetDefaultLink(LinkParams{Micros(100), Micros(0), 0, 0, 0});
  network.Send(MakePacket(a, b, 42));
  ASSERT_TRUE(arrived.WaitFor(Millis(2000)));
  EXPECT_EQ(got.load(), 42u);
  EXPECT_EQ(network.stats().packets_delivered, 1u);
}

TEST(NetworkTest, LatencyIsApplied) {
  Network network(1);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  CountdownLatch arrived(1);
  network.SetSink(b, [&](Packet&&) { arrived.CountDown(); });
  network.SetDefaultLink(LinkParams{Millis(20), Micros(0), 0, 0, 0});
  const TimePoint begin = Now();
  network.Send(MakePacket(a, b, 1));
  ASSERT_TRUE(arrived.WaitFor(Millis(5000)));
  EXPECT_GE(ToMicros(Now() - begin), 19000);
}

TEST(NetworkTest, DropProbabilityLosesRoughlyThatFraction) {
  Network network(7);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  std::atomic<int> delivered{0};
  network.SetSink(b, [&](Packet&&) { ++delivered; });
  network.SetDefaultLink(LinkParams{Micros(10), Micros(0), 0.5, 0, 0});
  constexpr int kPackets = 600;
  for (int i = 0; i < kPackets; ++i) {
    network.Send(MakePacket(a, b, i));
  }
  network.DrainForTesting();
  EXPECT_GT(delivered.load(), kPackets / 4);
  EXPECT_LT(delivered.load(), 3 * kPackets / 4);
  EXPECT_EQ(network.stats().packets_dropped +
                network.stats().packets_delivered,
            static_cast<uint64_t>(kPackets));
}

TEST(NetworkTest, CorruptionFlipsBitsButDelivers) {
  Network network(3);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  std::atomic<int> failed_crc{0};
  std::atomic<int> total{0};
  network.SetSink(b, [&](Packet&& p) {
    ++total;
    if (!p.Verify()) {
      ++failed_crc;
    }
  });
  network.SetDefaultLink(LinkParams{Micros(10), Micros(0), 0, 1.0, 0});
  for (int i = 0; i < 50; ++i) {
    network.Send(MakePacket(a, b, i));
  }
  network.DrainForTesting();
  EXPECT_EQ(total.load(), 50);
  // With corrupt_prob=1 every packet was mangled, and the error-detection
  // bits catch every one.
  EXPECT_EQ(failed_crc.load(), 50);
  EXPECT_EQ(network.stats().packets_corrupted, 50u);
}

TEST(NetworkTest, PartitionCutsBothDirections) {
  Network network(1);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  std::atomic<int> delivered{0};
  network.SetSink(a, [&](Packet&&) { ++delivered; });
  network.SetSink(b, [&](Packet&&) { ++delivered; });
  network.SetDefaultLink(LinkParams{Micros(10), Micros(0), 0, 0, 0});
  network.SetPartitioned(a, b, true);
  network.Send(MakePacket(a, b, 1));
  network.Send(MakePacket(b, a, 2));
  network.DrainForTesting();
  EXPECT_EQ(delivered.load(), 0);
  network.SetPartitioned(a, b, false);
  network.Send(MakePacket(a, b, 3));
  network.DrainForTesting();
  EXPECT_EQ(delivered.load(), 1);
}

TEST(NetworkTest, DownNodeNeitherSendsNorReceives) {
  Network network(1);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  std::atomic<int> delivered{0};
  network.SetSink(b, [&](Packet&&) { ++delivered; });
  network.SetDefaultLink(LinkParams{Micros(10), Micros(0), 0, 0, 0});

  network.SetNodeUp(b, false);
  network.Send(MakePacket(a, b, 1));  // lost at delivery
  network.DrainForTesting();
  EXPECT_EQ(delivered.load(), 0);

  network.SetNodeUp(b, true);
  network.SetNodeUp(a, false);
  network.Send(MakePacket(a, b, 2));  // refused at send
  network.DrainForTesting();
  EXPECT_EQ(delivered.load(), 0);

  network.SetNodeUp(a, true);
  network.Send(MakePacket(a, b, 3));
  network.DrainForTesting();
  EXPECT_EQ(delivered.load(), 1);
}

TEST(NetworkTest, InFlightPacketsLostWhenDestinationCrashes) {
  Network network(1);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  std::atomic<int> delivered{0};
  network.SetSink(b, [&](Packet&&) { ++delivered; });
  network.SetDefaultLink(LinkParams{Millis(50), Micros(0), 0, 0, 0});
  network.Send(MakePacket(a, b, 1));
  network.SetNodeUp(b, false);  // crash while the packet is in flight
  network.DrainForTesting();
  EXPECT_EQ(delivered.load(), 0);
}

TEST(NetworkTest, PerLinkParamsOverrideDefault) {
  Network network(1);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  const NodeId c = network.AddNode("c");
  network.SetDefaultLink(LinkParams{Millis(30), Micros(0), 0, 0, 0});
  network.SetLink(a, b, LinkParams{Micros(100), Micros(0), 0, 0, 0});
  EXPECT_EQ(network.GetLink(a, b).latency, Micros(100));
  EXPECT_EQ(network.GetLink(b, a).latency, Micros(100));
  EXPECT_EQ(network.GetLink(a, c).latency, Millis(30));

  CountdownLatch fast(1);
  network.SetSink(b, [&](Packet&&) { fast.CountDown(); });
  const TimePoint begin = Now();
  network.Send(MakePacket(a, b, 1));
  ASSERT_TRUE(fast.WaitFor(Millis(2000)));
  EXPECT_LT(ToMicros(Now() - begin), 20000);
}

TEST(NetworkTest, BandwidthAddsSerializationDelay) {
  Network network(1);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  CountdownLatch arrived(1);
  network.SetSink(b, [&](Packet&&) { arrived.CountDown(); });
  // 1 byte per microsecond: a ~1KB packet takes ~1ms extra.
  network.SetDefaultLink(LinkParams{Micros(0), Micros(0), 0, 0, 1.0});
  const TimePoint begin = Now();
  network.Send(MakePacket(a, b, 1, 1000));
  ASSERT_TRUE(arrived.WaitFor(Millis(2000)));
  EXPECT_GE(ToMicros(Now() - begin), 1000);
}

TEST(NetworkTest, LocalDeliveryBypassesLinkParams) {
  Network network(1);
  const NodeId a = network.AddNode("a");
  CountdownLatch arrived(1);
  network.SetSink(a, [&](Packet&&) { arrived.CountDown(); });
  network.SetDefaultLink(LinkParams{Millis(60), Micros(0), 1.0, 0, 0});
  network.Send(MakePacket(a, a, 1));
  // Same-node traffic is immediate and lossless despite the brutal link.
  ASSERT_TRUE(arrived.WaitFor(Millis(2000)));
}

TEST(NetworkTest, NodeNames) {
  Network network(1);
  const NodeId a = network.AddNode("alpha");
  EXPECT_EQ(network.NodeName(a), "alpha");
  EXPECT_EQ(network.NodeName(999), "?");
  EXPECT_EQ(network.node_count(), 1u);
}

TEST(NetworkTest, DuplicationDeliversExtraCopies) {
  Network network(11);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  std::atomic<int> delivered{0};
  network.SetSink(b, [&](Packet&&) { ++delivered; });
  network.SetDefaultLink(LinkParams{Micros(10), Micros(0), 0, 0, 0, 1.0});
  constexpr int kPackets = 40;
  for (int i = 0; i < kPackets; ++i) {
    network.Send(MakePacket(a, b, i));
  }
  network.DrainForTesting();
  // dup_prob = 1: every send produces exactly one extra in-flight copy.
  EXPECT_EQ(delivered.load(), 2 * kPackets);
  const NetworkStats stats = network.stats();
  EXPECT_EQ(stats.packets_sent, static_cast<uint64_t>(kPackets));
  EXPECT_EQ(stats.packets_duplicated, static_cast<uint64_t>(kPackets));
  EXPECT_EQ(stats.packets_delivered, static_cast<uint64_t>(2 * kPackets));
  EXPECT_EQ(stats.packets_dropped, 0u);
}

TEST(NetworkTest, ConservationLawHoldsUnderLossAndDuplication) {
  Network network(23);
  const NodeId a = network.AddNode("a");
  const NodeId b = network.AddNode("b");
  std::atomic<int> delivered{0};
  network.SetSink(b, [&](Packet&&) { ++delivered; });
  // Loss and duplication together: a send-time drop consumes the packet
  // before the duplication roll, a surviving send may add one extra copy.
  network.SetDefaultLink(LinkParams{Micros(10), Micros(0), 0.3, 0, 0, 0.3});
  constexpr int kPackets = 500;
  for (int i = 0; i < kPackets; ++i) {
    network.Send(MakePacket(a, b, i));
  }
  network.DrainForTesting();
  const NetworkStats stats = network.stats();
  EXPECT_EQ(stats.packets_sent, static_cast<uint64_t>(kPackets));
  EXPECT_GT(stats.packets_duplicated, 0u);
  EXPECT_GT(stats.packets_dropped, 0u);
  // The conservation law: every accepted send and every injected copy is
  // eventually resolved exactly once, as a delivery or as a drop.
  EXPECT_EQ(stats.packets_delivered + stats.packets_dropped,
            stats.packets_sent + stats.packets_duplicated);
  EXPECT_EQ(stats.packets_delivered,
            static_cast<uint64_t>(delivered.load()));
}

TEST(NetworkTest, DuplicateCountsBitIdenticalAcrossShardCounts) {
  // Loss, duplication, and corruption are all decided at Send() under one
  // lock and one rng: for a fixed seed the counts must not depend on how
  // many delivery workers drain the heaps.
  constexpr uint64_t kSeed = 1979;
  constexpr int kPackets = 400;
  std::vector<NetworkStats> runs;
  for (size_t shards : {1u, 2u, 4u}) {
    Network network(kSeed, nullptr, nullptr, shards);
    const NodeId a = network.AddNode("a");
    const NodeId b = network.AddNode("b");
    network.SetSink(b, [](Packet&&) {});
    network.SetDefaultLink(
        LinkParams{Micros(10), Micros(5), 0.2, 0.1, 0, 0.25});
    for (int i = 0; i < kPackets; ++i) {
      network.Send(MakePacket(a, b, i));
    }
    network.DrainForTesting();
    runs.push_back(network.stats());
  }
  ASSERT_EQ(runs.size(), 3u);
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].packets_duplicated, runs[0].packets_duplicated)
        << "shard count changed the duplicate count";
    EXPECT_EQ(runs[i].packets_dropped, runs[0].packets_dropped);
    EXPECT_EQ(runs[i].packets_corrupted, runs[0].packets_corrupted);
    EXPECT_EQ(runs[i].packets_delivered, runs[0].packets_delivered);
    EXPECT_EQ(runs[i].packets_delivered + runs[i].packets_dropped,
              runs[i].packets_sent + runs[i].packets_duplicated);
  }
  EXPECT_GT(runs[0].packets_duplicated, 0u);
}

}  // namespace
}  // namespace guardians
