// Unit and property tests for FlightDb — the guarded resource of a flight
// guardian — including the idempotence the Section 3.5 retry story
// depends on and log-replay determinism.
#include <gtest/gtest.h>

#include "src/airline/flight_db.h"
#include "src/common/rng.h"

namespace guardians {
namespace {

TEST(FlightDbTest, ReserveUntilFullThenWaitlist) {
  FlightDb db(1, /*capacity=*/2, /*waitlist_limit=*/1);
  EXPECT_EQ(db.Reserve("a", "d1"), ReserveOutcome::kOk);
  EXPECT_EQ(db.Reserve("b", "d1"), ReserveOutcome::kOk);
  EXPECT_EQ(db.Reserve("c", "d1"), ReserveOutcome::kWaitList);
  EXPECT_EQ(db.Reserve("d", "d1"), ReserveOutcome::kFull);
  EXPECT_EQ(db.SeatsTaken("d1"), 2);
  EXPECT_TRUE(db.IsWaitListed("c", "d1"));
  EXPECT_TRUE(db.CheckInvariants());
}

TEST(FlightDbTest, DatesAreIndependent) {
  FlightDb db(1, 1);
  EXPECT_EQ(db.Reserve("a", "d1"), ReserveOutcome::kOk);
  EXPECT_EQ(db.Reserve("a", "d2"), ReserveOutcome::kOk);
  EXPECT_EQ(db.SeatsTaken("d1"), 1);
  EXPECT_EQ(db.SeatsTaken("d2"), 1);
}

TEST(FlightDbTest, ReserveIsIdempotent) {
  FlightDb db(1, 2);
  EXPECT_EQ(db.Reserve("a", "d1"), ReserveOutcome::kOk);
  EXPECT_EQ(db.Reserve("a", "d1"), ReserveOutcome::kPreReserved);
  EXPECT_EQ(db.Reserve("a", "d1"), ReserveOutcome::kPreReserved);
  EXPECT_EQ(db.SeatsTaken("d1"), 1);
  EXPECT_EQ(db.GetStats().idempotent_noops, 2u);
}

TEST(FlightDbTest, WaitlistedRetryIsIdempotent) {
  FlightDb db(1, 1, 2);
  EXPECT_EQ(db.Reserve("a", "d1"), ReserveOutcome::kOk);
  EXPECT_EQ(db.Reserve("b", "d1"), ReserveOutcome::kWaitList);
  EXPECT_EQ(db.Reserve("b", "d1"), ReserveOutcome::kWaitList);
  // Only one wait-list entry despite the retry.
  EXPECT_EQ(db.GetStats().wait_listed, 1);
  EXPECT_TRUE(db.CheckInvariants());
}

TEST(FlightDbTest, CancelIsIdempotent) {
  FlightDb db(1, 2);
  EXPECT_EQ(db.Cancel("ghost", "d1"), CancelOutcome::kNotReserved);
  EXPECT_EQ(db.Reserve("a", "d1"), ReserveOutcome::kOk);
  EXPECT_EQ(db.Cancel("a", "d1"), CancelOutcome::kCanceled);
  EXPECT_EQ(db.Cancel("a", "d1"), CancelOutcome::kNotReserved);
  EXPECT_EQ(db.SeatsTaken("d1"), 0);
}

TEST(FlightDbTest, CancelPromotesWaitlistHead) {
  FlightDb db(1, 1, 3);
  EXPECT_EQ(db.Reserve("a", "d1"), ReserveOutcome::kOk);
  EXPECT_EQ(db.Reserve("b", "d1"), ReserveOutcome::kWaitList);
  EXPECT_EQ(db.Reserve("c", "d1"), ReserveOutcome::kWaitList);
  EXPECT_EQ(db.Cancel("a", "d1"), CancelOutcome::kCanceled);
  EXPECT_TRUE(db.IsReserved("b", "d1"));     // FIFO promotion
  EXPECT_FALSE(db.IsReserved("c", "d1"));
  EXPECT_TRUE(db.IsWaitListed("c", "d1"));
  EXPECT_TRUE(db.CheckInvariants());
}

TEST(FlightDbTest, CancelFromWaitlistDoesNotPromote) {
  FlightDb db(1, 1, 3);
  EXPECT_EQ(db.Reserve("a", "d1"), ReserveOutcome::kOk);
  EXPECT_EQ(db.Reserve("b", "d1"), ReserveOutcome::kWaitList);
  EXPECT_EQ(db.Cancel("b", "d1"), CancelOutcome::kCanceled);
  EXPECT_TRUE(db.IsReserved("a", "d1"));
  EXPECT_FALSE(db.IsWaitListed("b", "d1"));
}

TEST(FlightDbTest, ZeroWaitlistLimitRefusesOutright) {
  FlightDb db(1, 1, /*waitlist_limit=*/0);
  EXPECT_EQ(db.Reserve("a", "d1"), ReserveOutcome::kOk);
  EXPECT_EQ(db.Reserve("b", "d1"), ReserveOutcome::kFull);
}

TEST(FlightDbTest, PassengersSorted) {
  FlightDb db(1, 5);
  db.Reserve("zoe", "d1");
  db.Reserve("abe", "d1");
  EXPECT_EQ(db.Passengers("d1"),
            (std::vector<std::string>{"abe", "zoe"}));
  EXPECT_TRUE(db.Passengers("other").empty());
}

TEST(FlightDbTest, ArchiveRemovesOldDates) {
  FlightDb db(1, 5);
  db.Reserve("a", "1979-08-01");
  db.Reserve("a", "1979-09-01");
  db.Reserve("a", "1979-10-01");
  EXPECT_EQ(db.Archive("1979-09-15"), 2);
  EXPECT_EQ(db.GetStats().dates, 1);
  EXPECT_TRUE(db.IsReserved("a", "1979-10-01"));
}

TEST(FlightDbTest, StatsCountOps) {
  FlightDb db(1, 5);
  db.Reserve("a", "d1");
  db.Reserve("b", "d1");
  db.Cancel("a", "d1");
  const auto stats = db.GetStats();
  EXPECT_EQ(stats.reserve_ops, 2u);
  EXPECT_EQ(stats.cancel_ops, 1u);
  EXPECT_EQ(stats.reservations, 1);
}

TEST(FlightDbTest, SnapshotRoundTrip) {
  FlightDb db(12, 2, 2);
  db.Reserve("a", "d1");
  db.Reserve("b", "d1");
  db.Reserve("c", "d1");  // waitlisted
  db.Reserve("a", "d2");
  auto back = FlightDb::FromSnapshot(db.ToSnapshot());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(db.Equals(*back));
  EXPECT_TRUE(back->IsWaitListed("c", "d1"));
}

TEST(FlightDbTest, FromSnapshotRejectsGarbage) {
  EXPECT_FALSE(FlightDb::FromSnapshot(Value::Int(1)).ok());
  EXPECT_FALSE(
      FlightDb::FromSnapshot(Value::Record({{"flight", Value::Int(1)}}))
          .ok());
}

// Property: replaying the same operation log from scratch reproduces the
// exact state (this is what crash recovery does), and invariants hold at
// every step under random workloads.
class FlightDbProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlightDbProperty, RandomOpsKeepInvariantsAndReplayDeterministically) {
  Rng rng(GetParam());
  FlightDb db(1, 3, 2);
  struct Op {
    std::string kind, passenger, date;
  };
  std::vector<Op> log;
  for (int i = 0; i < 400; ++i) {
    Op op;
    op.kind = rng.NextBool(0.6) ? "reserve" : "cancel";
    op.passenger = "p" + std::to_string(rng.NextBelow(6));
    op.date = "d" + std::to_string(rng.NextBelow(3));
    db.Apply(op.kind, op.passenger, op.date);
    log.push_back(op);
    ASSERT_TRUE(db.CheckInvariants()) << "after op " << i;
  }
  FlightDb replayed(1, 3, 2);
  for (const auto& op : log) {
    replayed.Apply(op.kind, op.passenger, op.date);
  }
  EXPECT_TRUE(db.Equals(replayed));

  // Replay from an intermediate snapshot + suffix also reproduces it.
  auto snapshot = FlightDb::FromSnapshot(db.ToSnapshot());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(db.Equals(*snapshot));
}

TEST_P(FlightDbProperty, DuplicatedLogReplayIsHarmlessPerOpPair) {
  // Idempotence at the operation level: performing each op immediately
  // twice yields the same final state as performing it once, because
  // reserve/cancel absorb their own duplicates.
  Rng rng(GetParam() ^ 0x5555);
  FlightDb once(1, 3, 2);
  FlightDb twice(1, 3, 2);
  for (int i = 0; i < 200; ++i) {
    const std::string kind = rng.NextBool(0.6) ? "reserve" : "cancel";
    const std::string passenger = "p" + std::to_string(rng.NextBelow(6));
    const std::string date = "d" + std::to_string(rng.NextBelow(3));
    once.Apply(kind, passenger, date);
    twice.Apply(kind, passenger, date);
    twice.Apply(kind, passenger, date);  // the duplicated performance
  }
  EXPECT_TRUE(once.Equals(twice));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlightDbProperty,
                         ::testing::Values(1, 7, 42, 1979, 31337));

}  // namespace
}  // namespace guardians
