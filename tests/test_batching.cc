// Batched delivery drains (DESIGN.md §12).
//
// The invariant the tentpole must not break: loss, corruption, duplication
// and latency are all decided at Send() under one lock and one rng, so the
// outcome counts — delivered, dropped, duplicated, dedup-suppressed — are
// bit-identical for a given seed at EVERY (delivery_batch_max,
// delivery_shards) combination. Batching may only change how many lock
// round-trips those outcomes cost, never which outcomes happen.
//
// Runs under the tsan label: the multi-threaded cases exercise concurrent
// Send() against batched drains, PushBatch fan-in, DrainForTesting's
// barrier with batches mid-flight, and Shutdown with a loaded heap.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/guardian/system.h"
#include "src/net/network.h"

namespace guardians {
namespace {

PortType BatchPortType() {
  return PortType("batch_put",
                  {MessageSig{"put", {ArgType::Of(TypeTag::kString)}, {}}});
}

struct Counts {
  NetworkStats net;
  uint64_t delivered = 0;
  uint64_t suppressed = 0;
  uint64_t port_full = 0;
  uint64_t credits = 0;

  void ExpectEq(const Counts& other, const std::string& what) const {
    EXPECT_EQ(net.packets_sent, other.net.packets_sent) << what;
    EXPECT_EQ(net.packets_delivered, other.net.packets_delivered) << what;
    EXPECT_EQ(net.packets_dropped, other.net.packets_dropped) << what;
    EXPECT_EQ(net.packets_duplicated, other.net.packets_duplicated) << what;
    EXPECT_EQ(net.packets_corrupted, other.net.packets_corrupted) << what;
    EXPECT_EQ(delivered, other.delivered) << what;
    EXPECT_EQ(suppressed, other.suppressed) << what;
    EXPECT_EQ(port_full, other.port_full) << what;
    EXPECT_EQ(credits, other.credits) << what;
  }
};

// One deterministic workload: 400 tracked sends from one thread through a
// lossy, duplicating link into a passive receiver with room for everything.
// Single-threaded sends fix the global Send order, which (with the seed)
// fixes every wire outcome; the delivery side may then run at any batch
// size and shard count.
Counts RunWorkload(size_t batch_max, size_t shards) {
  SystemConfig config;
  config.seed = 97;
  config.delivery_batch_max = batch_max;
  config.delivery_shards = shards;
  config.default_link.latency = Micros(30);
  config.default_link.jitter = Micros(10);
  config.default_link.drop_prob = 0.05;
  config.default_link.dup_prob = 0.02;
  System system(config);
  NodeRuntime& a = system.AddNode("a");
  NodeRuntime& b = system.AddNode("b");
  for (auto* node : {&a, &b}) {
    node->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  }
  Guardian* sender = *a.Create<ShellGuardian>("shell", "sender", {});
  Guardian* receiver = *b.Create<ShellGuardian>("shell", "receiver", {});
  Port* target = receiver->AddPort(BatchPortType(), /*capacity=*/1024);
  for (int i = 0; i < 400; ++i) {
    const uint64_t seq = a.NextDedupSeq();
    auto sent = sender->SendFull(target->name(), "put",
                                 {Value::Str("m" + std::to_string(i))},
                                 PortName{}, PortName{}, seq);
    EXPECT_TRUE(sent.ok());
  }
  system.network().DrainForTesting();
  Counts c;
  c.net = system.network().stats();
  c.delivered = system.metrics().CounterValue("deliver.delivered");
  c.suppressed = system.metrics().CounterValue("deliver.dup.suppressed");
  c.port_full = system.metrics().CounterValue("deliver.drop.port_full");
  c.credits = system.metrics().CounterValue("flow.credits_granted");
  return c;
}

TEST(BatchingTest, CountsBitIdenticalAcrossBatchSizesAndShardCounts) {
  const Counts baseline = RunWorkload(/*batch_max=*/1, /*shards=*/1);
  // The dice really rolled: a workload where nothing is ever dropped or
  // duplicated would pass this test vacuously.
  EXPECT_GT(baseline.net.packets_dropped, 0u);
  EXPECT_GT(baseline.net.packets_duplicated, 0u);
  EXPECT_GT(baseline.suppressed, 0u);
  EXPECT_EQ(baseline.port_full, 0u);

  for (size_t batch_max : {1u, 8u, 64u}) {
    for (size_t shards : {1u, 4u}) {
      if (batch_max == 1 && shards == 1) {
        continue;
      }
      const Counts c = RunWorkload(batch_max, shards);
      c.ExpectEq(baseline, "batch_max=" + std::to_string(batch_max) +
                               " shards=" + std::to_string(shards));
    }
  }
}

TEST(BatchingTest, BatchedDrainsMovePacketsInBulkAndBatchOneDoesNot) {
  // A burst sent well inside the link latency is all due at once; a
  // batched shard must then move many packets per lock round-trip.
  auto run = [](size_t batch_max) {
    SystemConfig config;
    config.seed = 11;
    config.delivery_batch_max = batch_max;
    config.delivery_shards = 2;
    config.default_link.latency = Millis(5);  // queue the whole burst first
    System system(config);
    NodeRuntime& a = system.AddNode("a");
    NodeRuntime& b = system.AddNode("b");
    for (auto* node : {&a, &b}) {
      node->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
    }
    Guardian* sender = *a.Create<ShellGuardian>("shell", "sender", {});
    Guardian* receiver = *b.Create<ShellGuardian>("shell", "receiver", {});
    Port* target = receiver->AddPort(BatchPortType(), /*capacity=*/512);
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(sender->Send(target->name(), "put",
                               {Value::Str("m")}).ok());
    }
    system.network().DrainForTesting();
    uint64_t drains = 0;
    uint64_t packets = 0;
    for (size_t k = 0; k < system.network().shard_count(); ++k) {
      const std::string prefix = "net.shard." + std::to_string(k);
      drains += system.metrics().CounterValue(prefix + ".batch.drains");
      packets += system.metrics().CounterValue(prefix + ".batch.packets");
    }
    EXPECT_EQ(packets, system.network().stats().packets_delivered);
    return std::make_pair(drains, packets);
  };

  const auto [drains_batched, packets_batched] = run(/*batch_max=*/64);
  EXPECT_LT(drains_batched, packets_batched)
      << "some drain must have moved more than one packet";

  // batch_max = 1 is the old engine bit for bit: one drain per packet.
  const auto [drains_single, packets_single] = run(/*batch_max=*/1);
  EXPECT_EQ(drains_single, packets_single);
  EXPECT_EQ(packets_single, packets_batched);
}

TEST(BatchingTest, ConcurrentSendersDrainBarrierAndConservationLaw) {
  // tsan workhorse: many threads Send() while shard workers drain batches
  // into the same destination ports. After the barrier, the conservation
  // law must hold exactly — no packet may be double-resolved or leaked by
  // the grouped delivery path.
  SystemConfig config;
  config.seed = 13;
  config.delivery_batch_max = 32;
  config.delivery_shards = 4;
  config.default_link.latency = Micros(100);
  config.default_link.jitter = Micros(50);
  config.default_link.drop_prob = 0.02;
  config.default_link.dup_prob = 0.02;
  System system(config);
  NodeRuntime& a = system.AddNode("a");
  NodeRuntime& b = system.AddNode("b");
  NodeRuntime& c = system.AddNode("c");
  for (auto* node : {&a, &b, &c}) {
    node->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  }
  Guardian* sender = *a.Create<ShellGuardian>("shell", "sender", {});
  Guardian* rb = *b.Create<ShellGuardian>("shell", "rb", {});
  Guardian* rc = *c.Create<ShellGuardian>("shell", "rc", {});
  Port* tb = rb->AddPort(BatchPortType(), /*capacity=*/2048);
  Port* tc = rc->AddPort(BatchPortType(), /*capacity=*/2048);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([sender, tb, tc, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Port* target = (t + i) % 2 == 0 ? tb : tc;
        EXPECT_TRUE(sender->Send(target->name(), "put",
                                 {Value::Str("m")}).ok());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  system.network().DrainForTesting();

  const NetworkStats stats = system.network().stats();
  EXPECT_EQ(stats.packets_sent, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.packets_delivered + stats.packets_dropped,
            stats.packets_sent + stats.packets_duplicated);
  EXPECT_EQ(system.metrics().CounterValue("deliver.delivered"),
            stats.packets_delivered);
  EXPECT_EQ(tb->enqueued() + tc->enqueued(), stats.packets_delivered);
}

TEST(BatchingTest, ShutdownWithBatchesInFlightDoesNotCrashOrHang) {
  // Load every shard heap with far-future packets and tear the system
  // down: Shutdown must stop the workers without delivering (or leaking)
  // the backlog, and must win any race with a batch mid-drain.
  for (int round = 0; round < 3; ++round) {
    SystemConfig config;
    config.seed = 17 + static_cast<uint64_t>(round);
    config.delivery_batch_max = 64;
    config.delivery_shards = 4;
    config.default_link.latency = Millis(50);  // still in-heap at teardown
    System system(config);
    NodeRuntime& a = system.AddNode("a");
    NodeRuntime& b = system.AddNode("b");
    for (auto* node : {&a, &b}) {
      node->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
    }
    Guardian* sender = *a.Create<ShellGuardian>("shell", "sender", {});
    Guardian* receiver = *b.Create<ShellGuardian>("shell", "receiver", {});
    Port* target = receiver->AddPort(BatchPortType(), /*capacity=*/1024);
    for (int i = 0; i < 256; ++i) {
      ASSERT_TRUE(sender->Send(target->name(), "put",
                               {Value::Str("m")}).ok());
    }
    // ~System: Crash() the nodes, then Network::Shutdown() with ~256
    // packets still heaped. DrainForTesting afterwards must return
    // immediately (documented contract), not wait for the dead backlog.
    system.network().Shutdown();
    system.network().DrainForTesting();
  }
}

}  // namespace
}  // namespace guardians
