// Tests of the airline's administrative functions (Section 2.3): archiving
// flights that have occurred and collecting usage statistics, including
// their interaction with ACLs, forwarding and crash recovery; plus the
// failover pattern from the introduction's availability advantage.
#include <gtest/gtest.h>

#include "src/airline/airline_system.h"
#include "src/airline/workload.h"
#include "src/sendprims/failover.h"

namespace guardians {
namespace {

class AdminTest : public ::testing::Test {
 protected:
  AdminTest() : system_(MakeConfig()) {
    AirlineParams params;
    params.regions = 2;
    params.flights_per_region = 1;
    params.capacity = 10;
    auto topology = BuildAirline(system_, params);
    EXPECT_TRUE(topology.ok()) << topology.status();
    topology_ = topology.take();
    NodeRuntime& node = system_.node(topology_.region_nodes[0]);
    shell_ = *node.Create<ShellGuardian>("shell", "admin", {});
  }

  static SystemConfig MakeConfig() {
    SystemConfig config;
    config.seed = 4242;
    config.default_link.latency = Micros(100);
    return config;
  }

  RemoteReply Regional(int region, const std::string& command,
                       ValueList args, int attempts = 3) {
    RemoteCallOptions options;
    options.timeout = Millis(1000);
    options.max_attempts = attempts;
    auto reply =
        RemoteCall(*shell_, topology_.regional_ports[region], command,
                   std::move(args), ReservationReplyType(), options);
    EXPECT_TRUE(reply.ok()) << reply.status();
    return reply.ok() ? *reply : RemoteReply{};
  }

  System system_;
  AirlineTopology topology_;
  Guardian* shell_ = nullptr;
};

TEST_F(AdminTest, StatsReflectUsage) {
  const int64_t flight = FlightNo(0, 0);
  Regional(0, "reserve",
           {Value::Int(flight), Value::Str("a"), Value::Str("1979-09-02")});
  Regional(0, "reserve",
           {Value::Int(flight), Value::Str("b"), Value::Str("1979-09-03")});
  Regional(0, "cancel",
           {Value::Int(flight), Value::Str("a"), Value::Str("1979-09-02")});

  auto stats = Regional(0, "flight_stats",
                        {Value::Int(flight), Value::Str("manager")});
  ASSERT_EQ(stats.command, "stats_info");
  const Value& record = stats.args[0];
  EXPECT_EQ(record.field("flight")->int_value(), flight);
  EXPECT_EQ(record.field("reservations")->int_value(), 1);
  EXPECT_GE(record.field("reserve_ops")->int_value(), 2);
  EXPECT_GE(record.field("cancel_ops")->int_value(), 1);
}

TEST_F(AdminTest, StatsDeniedToNonManagers) {
  auto denied = Regional(0, "flight_stats",
                         {Value::Int(FlightNo(0, 0)), Value::Str("clerk")});
  EXPECT_EQ(denied.command, "denied");
}

TEST_F(AdminTest, ArchiveRemovesPastDatesOnly) {
  const int64_t flight = FlightNo(0, 0);
  Regional(0, "reserve",
           {Value::Int(flight), Value::Str("old"), Value::Str("1979-09-01")});
  Regional(0, "reserve",
           {Value::Int(flight), Value::Str("new"), Value::Str("1979-12-01")});

  auto archived = Regional(0, "archive",
                           {Value::Int(flight), Value::Str("1979-10-01"),
                            Value::Str("manager")});
  ASSERT_EQ(archived.command, "archived");
  EXPECT_EQ(archived.args[0].int_value(), 1);

  // The archived passenger is gone; the future one remains.
  auto info = Regional(0, "list_passengers",
                       {Value::Int(flight), Value::Str("1979-12-01"),
                        Value::Str("manager")});
  ASSERT_EQ(info.command, "info");
  EXPECT_EQ(info.args[0].items().size(), 1u);
  auto gone = Regional(0, "list_passengers",
                       {Value::Int(flight), Value::Str("1979-09-01"),
                        Value::Str("manager")});
  ASSERT_EQ(gone.command, "info");
  EXPECT_TRUE(gone.args[0].items().empty());
}

TEST_F(AdminTest, ArchiveDeniedToNonManagers) {
  auto denied = Regional(0, "archive",
                         {Value::Int(FlightNo(0, 0)),
                          Value::Str("1980-01-01"), Value::Str("clerk")});
  EXPECT_EQ(denied.command, "denied");
}

TEST_F(AdminTest, ArchiveSurvivesCrashRecovery) {
  const int64_t flight = FlightNo(1, 0);
  Regional(1, "reserve",
           {Value::Int(flight), Value::Str("old"), Value::Str("1979-09-01")});
  Regional(1, "reserve",
           {Value::Int(flight), Value::Str("new"), Value::Str("1979-12-01")});
  auto archived = Regional(1, "archive",
                           {Value::Int(flight), Value::Str("1979-10-01"),
                            Value::Str("manager")});
  ASSERT_EQ(archived.command, "archived");

  NodeRuntime& node = system_.node(topology_.region_nodes[1]);
  node.Crash();
  ASSERT_TRUE(node.Restart().ok());

  // Without logging the archive, recovery would replay the old reserve and
  // resurrect the archived date.
  auto gone = Regional(1, "list_passengers",
                       {Value::Int(flight), Value::Str("1979-09-01"),
                        Value::Str("manager")});
  ASSERT_EQ(gone.command, "info");
  EXPECT_TRUE(gone.args[0].items().empty());
  auto kept = Regional(1, "list_passengers",
                       {Value::Int(flight), Value::Str("1979-12-01"),
                        Value::Str("manager")});
  ASSERT_EQ(kept.command, "info");
  EXPECT_EQ(kept.args[0].items().size(), 1u);
}

TEST_F(AdminTest, RegionStats) {
  auto stats = Regional(0, "region_stats", {});
  ASSERT_EQ(stats.command, "stats_info");
  EXPECT_EQ(stats.args[0].field("flights")->int_value(), 1);
}

TEST_F(AdminTest, FailoverCallSkipsDeadRegion) {
  // Both regional ports accept region_stats; kill region 0 and let the
  // failover client find region 1.
  system_.node(topology_.region_nodes[0]).Crash();

  // The admin shell lives on the crashed node; drive from region 1's node.
  NodeRuntime& alive = system_.node(topology_.region_nodes[1]);
  Guardian* shell = *alive.Create<ShellGuardian>("shell", "admin2", {});

  RemoteCallOptions per_target;
  per_target.timeout = Millis(150);
  per_target.max_attempts = 1;
  auto result = FailoverCall(
      *shell, {topology_.regional_ports[0], topology_.regional_ports[1]},
      "region_stats", {}, ReservationReplyType(), per_target);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->target_index, 1);
  EXPECT_EQ(result->reply.command, "stats_info");

  // With every replica dead, the failure is reported.
  alive.Crash();
  Guardian* orphan = shell;  // guardian husk still usable for local errors
  auto dead = FailoverCall(
      *orphan, {topology_.regional_ports[0], topology_.regional_ports[1]},
      "region_stats", {}, ReservationReplyType(), per_target);
  EXPECT_FALSE(dead.ok());
}

}  // namespace
}  // namespace guardians
