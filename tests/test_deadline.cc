// §16 deadline propagation: the zero-remaining boundary (Expired() and
// Remaining()==0 are NOT the same predicate, and the gap between them is
// exactly where the pre-fix ReliableSend burned attempts), the
// Micros-sentinel audit (max = infinite, 0 = poll / disabled — never
// "expired"), expiry-shedding at the port queue with the dedup mark
// rolled back so an in-deadline retry still executes exactly once, the
// idle-link reassembler sweep hook, and inherited-budget fail-fast in
// RemoteCall / FailoverCall. Everything runs on the §15 SimulatedClock:
// the boundary states are constructed exactly, not raced for.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/guardian/system.h"
#include "src/obs/trace.h"
#include "src/sendprims/failover.h"
#include "src/sendprims/reliable_send.h"
#include "src/sendprims/remote_call.h"
#include "src/sendprims/sync_send.h"
#include "src/wire/packet.h"

namespace guardians {
namespace {

// Wall-time ceiling for things that should take ~zero wall time.
constexpr Micros kWallBudget = Micros(10'000'000);

PortType WorkPortType() {
  return PortType("dwork", {MessageSig{"put", {ArgType::Of(TypeTag::kInt)},
                                       {}}});
}

PortType CtrlPortType() {
  return PortType("dctrl", {MessageSig{"go", {}, {}}});
}

class SilentSink : public Guardian {
 public:
  Status Setup(const ValueList&) override {
    AddPort(WorkPortType(), 64, /*provided=*/true);
    return OkStatus();
  }
  void Main() override {
    for (;;) {
      auto m = Receive(port(0), Micros::max());
      if (!m.ok()) {
        return;
      }
    }
  }
};

// Receives nothing from its work port until the control port says "go" —
// which is how a message gets to *age out inside the queue* instead of
// being consumed or shed on arrival.
class GatedSink : public Guardian {
 public:
  Status Setup(const ValueList&) override {
    AddPort(WorkPortType(), 8, /*provided=*/true);
    AddPort(CtrlPortType(), 4, /*provided=*/true);
    return OkStatus();
  }
  void Main() override {
    if (!Receive(port(1), Micros::max()).ok()) {
      return;
    }
    for (;;) {
      auto m = Receive(port(0), Micros::max());
      if (!m.ok()) {
        return;
      }
      if (m->command == "put") {
        executed_.fetch_add(1);
      }
    }
  }
  int executed() const { return executed_.load(); }

 private:
  std::atomic<int> executed_{0};
};

// --- The two boundary states, pinned at the Deadline level ------------------

// Backward clock skew after the budget ran dry: Expired() (a raw now-vs-at_
// comparison) flips back to false, while Remaining() keeps reporting 0
// through its monotonic floor. This disagreement is the state the
// `remaining <= 0` guard in ReliableSend exists for.
TEST(DeadlineBoundary, BackwardSkewFloorKeepsZeroRemainingUnexpired) {
  SimulatedClock sim;
  Deadline d(Micros(1'000), sim.NodeView(9));
  sim.StepNode(9, Micros(1'000));  // the node reaches the deadline exactly
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.Remaining(), Micros(0));  // floor pinned at zero
  sim.StepNode(9, Micros(-400));  // backward skew: now < at_ again
  EXPECT_FALSE(d.Expired());            // the raw check says "time left"
  EXPECT_EQ(d.Remaining(), Micros(0));  // the clamp says the budget is gone
}

// Sub-microsecond remainder: Remaining() truncates to whole Micros, so the
// last fraction of a microsecond reads as 0 while Expired() is still
// false. No skew involved — plain forward time hits this on every deadline
// that doesn't land on a microsecond boundary.
TEST(DeadlineBoundary, SubMicrosecondRemainderIsZeroRemainingUnexpired) {
  SimulatedClock sim;
  Deadline d(Micros(10), &sim);
  sim.AdvanceTo(sim.Now() + Micros(9) + std::chrono::nanoseconds(500));
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.Remaining(), Micros(0));
}

// --- ReliableSend at the boundary (the satellite-1 regression) --------------

// Walks ReliableSend into the exact state above: the first attempt's ack
// wait is woken 500ns short of the overall deadline, so the retry loop
// re-checks with Expired() == false and Remaining() == 0. The fixed loop
// books that as deadline_exceeded after 1 attempt; the pre-fix loop pushed
// min(ack_timeout, 0) == 0 into SyncSend and burned the remaining attempts
// as zero-timeout polls, exiting via `exhausted` with attempts == 3.
TEST(ReliableSendDeadlineBoundary, ZeroRemainingBudgetIsDeadlineExceeded) {
  SimulatedClock sim;
  const TimePoint wall_start = Now();
  sim.StartAutoStep();
  SystemConfig config;
  config.seed = 11;
  config.sim_clock = &sim;
  System system(config);
  NodeRuntime& a = system.AddNode("a");
  NodeRuntime& b = system.AddNode("b");
  a.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  b.RegisterGuardianType("sink", MakeFactory<SilentSink>());
  Guardian* sender = *a.Create<ShellGuardian>("shell", "sender", {});
  SilentSink* sink = *b.Create<SilentSink>("sink", "sink", {});
  const PortName target = sink->ProvidedPorts()[0];
  system.network().SetPartitioned(a.id(), b.id(), true);
  ASSERT_TRUE(system.WaitQuiescent(Millis(2'000)));
  // From here the clock is stepped by hand: the auto-stepper would land
  // every wake exactly on its deadline, and this test needs the 500ns
  // overshoot.
  sim.StopAutoStep();

  ReliableSendOptions options;
  options.deadline = Micros(10'000);
  options.ack_timeout = Micros(9'999);  // attempt 1 wakes 1us short...
  options.max_attempts = 3;
  options.initial_backoff = Micros(0);  // no backoff sleep in the way
  options.jitter = 0.0;

  const size_t base_waiters = sim.WaiterCount();
  const TimePoint t0 = sim.Now();
  Result<ReliableSendResult> result = Status(Code::kInternal, "not run");
  std::thread caller([&] {
    result = ReliableSend(*sender, target, "put", {Value::Int(1)}, options);
  });
  // The partitioned send drops at send time, so the one new waiter is the
  // attempt's ack wait (deadline t0 + 9999us).
  ASSERT_TRUE(sim.WaitForWaiters(base_waiters + 1, kWallBudget));
  // ...and the wake overshoots it by half a microsecond, leaving 500ns of
  // budget: Expired() false, Remaining() 0.
  sim.AdvanceTo(t0 + Micros(9'999) + std::chrono::nanoseconds(500));
  caller.join();

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Code::kTimeout);
  EXPECT_NE(result.status().message().find("deadline exceeded"),
            std::string::npos)
      << result.status().message();
  MetricsRegistry& metrics = system.metrics();
  EXPECT_EQ(metrics.counter("sendprims.reliable.attempts")->value(), 1u);
  EXPECT_EQ(metrics.counter("sendprims.reliable.deadline_exceeded")->value(),
            1u);
  EXPECT_EQ(metrics.counter("sendprims.reliable.exhausted")->value(), 0u);
  // The per-call outcome ledger still sums: calls == ok + exhausted
  // + deadline_exceeded + hard_fail.
  EXPECT_EQ(metrics.counter("sendprims.reliable.calls")->value(), 1u);
  EXPECT_EQ(metrics.counter("sendprims.sync.calls")->value(), 1u);
  EXPECT_LT(Now() - wall_start, kWallBudget);
  // Teardown (joining guardian threads) may need virtual-time steps; the
  // system destructs before `sim`, whose destructor stops the stepper.
  sim.StartAutoStep();
}

// --- The Micros sentinel audit (satellite 2) --------------------------------

// Micros::max() must mean "no deadline". Before the audit, SyncSend built
// Deadline(Micros::max()) directly, which overflowed Now() + timeout into
// the past: an *infinite* timeout behaved as an *expired* one and every
// such send died instantly.
TEST(MicrosSentinels, SyncSendMaxTimeoutIsInfiniteNotExpired) {
  SimulatedClock sim;
  sim.StartAutoStep();
  const TimePoint wall_start = Now();
  {
    SystemConfig config;
    config.seed = 12;
    config.sim_clock = &sim;
    System system(config);
    NodeRuntime& a = system.AddNode("a");
    NodeRuntime& b = system.AddNode("b");
    a.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
    b.RegisterGuardianType("sink", MakeFactory<SilentSink>());
    Guardian* sender = *a.Create<ShellGuardian>("shell", "sender", {});
    SilentSink* sink = *b.Create<SilentSink>("sink", "sink", {});
    const Status st =
        SyncSend(*sender, sink->ProvidedPorts()[0], "put", {Value::Int(7)},
                 Micros::max(), a.NextDedupSeq());
    EXPECT_TRUE(st.ok()) << st.message();
  }
  sim.StopAutoStep();
  EXPECT_LT(Now() - wall_start, kWallBudget);
}

// ReliableSendOptions.deadline == 0 means "no overall deadline", not "a
// deadline that already passed": the call must run its attempts normally.
TEST(MicrosSentinels, ReliableSendZeroDeadlineMeansDisabled) {
  SimulatedClock sim;
  sim.StartAutoStep();
  {
    SystemConfig config;
    config.seed = 13;
    config.sim_clock = &sim;
    System system(config);
    NodeRuntime& a = system.AddNode("a");
    NodeRuntime& b = system.AddNode("b");
    a.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
    b.RegisterGuardianType("sink", MakeFactory<SilentSink>());
    Guardian* sender = *a.Create<ShellGuardian>("shell", "sender", {});
    SilentSink* sink = *b.Create<SilentSink>("sink", "sink", {});
    ReliableSendOptions options;
    options.deadline = Micros(0);  // disabled, not expired
    auto result = ReliableSend(*sender, sink->ProvidedPorts()[0], "put",
                               {Value::Int(2)}, options);
    EXPECT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(
        system.metrics().counter("sendprims.reliable.deadline_exceeded")
            ->value(),
        0u);
  }
  sim.StopAutoStep();
}

// Receive with a 0 timeout is an immediate poll: it returns kTimeout on an
// empty port without registering for a clock step (on a SimulatedClock a
// genuine wait would block forever here — nobody is stepping).
TEST(MicrosSentinels, ReceiveZeroTimeoutIsAnImmediatePoll) {
  SimulatedClock sim;
  sim.StartAutoStep();
  SystemConfig config;
  config.seed = 14;
  config.sim_clock = &sim;
  System system(config);
  NodeRuntime& a = system.AddNode("a");
  a.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  Guardian* g = *a.Create<ShellGuardian>("shell", "poller", {});
  sim.StopAutoStep();
  const TimePoint wall_start = Now();
  Port* port = g->AddPort(WorkPortType(), 4);
  auto m = g->Receive(port, Micros(0));
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), Code::kTimeout);
  EXPECT_LT(Now() - wall_start, kWallBudget);
  sim.StartAutoStep();  // teardown may need steps
}

// --- Queue-expiry shedding rolls back the dedup mark (satellite 4) ----------

// A tracked message whose budget dies while queued is discarded at
// dequeue — and the dedup mark must be rolled back with it, or the
// sender's in-deadline retry of the same dedup_seq would be suppressed as
// a "duplicate" of an operation that never executed. The retry must
// execute exactly once.
TEST(QueueExpiry, DequeueShedUnmarksSoInDeadlineRetryExecutesOnce) {
  SimulatedClock sim;
  sim.StartAutoStep();
  const TimePoint wall_start = Now();
  {
    SystemConfig config;
    config.seed = 15;
    config.sim_clock = &sim;
    System system(config);
    NodeRuntime& a = system.AddNode("a");
    NodeRuntime& b = system.AddNode("b");
    a.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
    b.RegisterGuardianType("gated", MakeFactory<GatedSink>());
    Guardian* sender = *a.Create<ShellGuardian>("shell", "sender", {});
    GatedSink* sink = *b.Create<GatedSink>("gated", "sink", {});
    const PortName work = sink->ProvidedPorts()[0];
    const PortName ctrl = sink->ProvidedPorts()[1];
    MetricsRegistry& metrics = system.metrics();

    // One logical operation: both the original and the retry carry seq.
    const uint64_t seq = a.NextDedupSeq();
    ASSERT_TRUE(sender
                    ->SendFull(work, "put", {Value::Int(1)}, PortName{},
                               PortName{}, seq, /*deadline_micros=*/50'000)
                    .ok());
    ASSERT_TRUE(system.WaitQuiescent(Millis(2'000)));
    // Alive on arrival (not shed), marked seen, parked in the queue.
    EXPECT_EQ(metrics.counter("deliver.expired.shed")->value(), 0u);
    EXPECT_EQ(metrics.counter("deliver.expired.queue")->value(), 0u);

    // The budget dies in the queue; then the gate opens and the dequeue
    // path discards the corpse and rolls the mark back.
    sim.Advance(Micros(200'000));
    ASSERT_TRUE(sender
                    ->SendFull(ctrl, "go", {}, PortName{}, PortName{},
                               /*dedup_seq=*/0, /*deadline_micros=*/0)
                    .ok());
    while (metrics.counter("deliver.expired.queue")->value() == 0 &&
           Now() - wall_start < kWallBudget) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(metrics.counter("deliver.expired.queue")->value(), 1u);
    EXPECT_EQ(sink->executed(), 0);

    // The in-deadline retry of the SAME dedup_seq must execute — the
    // shed-then-unmark made the receiver forget it ever saw seq.
    ASSERT_TRUE(sender
                    ->SendFull(work, "put", {Value::Int(1)}, PortName{},
                               PortName{}, seq,
                               /*deadline_micros=*/10'000'000)
                    .ok());
    ASSERT_TRUE(system.WaitQuiescent(Millis(2'000)));
    while (sink->executed() == 0 && Now() - wall_start < kWallBudget) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(sink->executed(), 1);
    EXPECT_EQ(metrics.counter("deliver.dup.suppressed")->value(), 0u);
    EXPECT_EQ(metrics.counter("deliver.expired.queue")->value(), 1u);
  }
  sim.StopAutoStep();
  EXPECT_LT(Now() - wall_start, kWallBudget);
}

// A hop always costs at least 1us of budget. With a zero-latency link
// under virtual time, the network-observed age is exactly 0 virtual
// microseconds — no residual wall time leaks in — so without the floor a
// 1us budget would cross the hop unspent and execute at the very instant
// it should have died (this is how chaos seed 1001's overload storm leaked
// doomed ops: a negative jitter draw clamped the storm delay to zero).
TEST(ArrivalShed, OneMicroBudgetNeverSurvivesAZeroLatencyHop) {
  SimulatedClock sim;
  sim.StartAutoStep();
  const TimePoint wall_start = Now();
  {
    SystemConfig config;
    config.seed = 16;
    config.sim_clock = &sim;
    config.default_link.latency = Micros(0);
    System system(config);
    NodeRuntime& a = system.AddNode("a");
    NodeRuntime& b = system.AddNode("b");
    a.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
    b.RegisterGuardianType("gated", MakeFactory<GatedSink>());
    Guardian* sender = *a.Create<ShellGuardian>("shell", "sender", {});
    GatedSink* sink = *b.Create<GatedSink>("gated", "sink", {});
    const PortName work = sink->ProvidedPorts()[0];
    const PortName ctrl = sink->ProvidedPorts()[1];
    MetricsRegistry& metrics = system.metrics();

    // Open the gate first: the sink is parked in Receive on the work
    // port, ready to execute anything the arrival gate lets through.
    ASSERT_TRUE(sender
                    ->SendFull(ctrl, "go", {}, PortName{}, PortName{},
                               /*dedup_seq=*/0, /*deadline_micros=*/0)
                    .ok());
    ASSERT_TRUE(system.WaitQuiescent(Millis(2'000)));

    ASSERT_TRUE(sender
                    ->SendFull(work, "put", {Value::Int(1)}, PortName{},
                               PortName{}, a.NextDedupSeq(),
                               /*deadline_micros=*/1)
                    .ok());
    ASSERT_TRUE(system.WaitQuiescent(Millis(2'000)));
    EXPECT_EQ(metrics.counter("deliver.expired.shed")->value(), 1u);
    EXPECT_EQ(sink->executed(), 0);
  }
  sim.StopAutoStep();
  EXPECT_LT(Now() - wall_start, kWallBudget);
}

// --- Idle-link reassembler sweep (satellite 3) ------------------------------

// The in-Add age sweep only runs when packets arrive. A fragment lost on a
// link that then goes idle used to pin its partial (and payload bytes)
// forever; WaitQuiescent/Report now sweep every node's reassembler so
// quiescence reclaims it.
TEST(ReassemblerSweep, IdlePartialIsReclaimedAtQuiescence) {
  SimulatedClock sim;
  sim.StartAutoStep();
  SystemConfig config;
  config.seed = 16;
  config.sim_clock = &sim;
  System system(config);
  NodeRuntime& a = system.AddNode("a");
  NodeRuntime& b = system.AddNode("b");

  Bytes message(256, 0xCD);
  auto frags = Fragment(BufferSlice(std::move(message)), /*msg_id=*/99,
                        a.id(), b.id(), /*max_payload=*/64);
  ASSERT_GT(frags.size(), 1u);
  // Only the first fragment ever arrives; the link then goes idle.
  system.network().Send(std::move(frags[0]));
  ASSERT_TRUE(system.WaitQuiescent(Millis(2'000)));
  EXPECT_EQ(system.metrics().counter("net.reassembly.expired")->value(), 0u);

  // Three virtual seconds beat the 2s partial-expiry horizon. No traffic
  // flows, so only the quiescence sweep can reclaim the partial.
  sim.Advance(Micros(3'000'000));
  ASSERT_TRUE(system.WaitQuiescent(Millis(2'000)));
  EXPECT_EQ(system.metrics().counter("net.reassembly.expired")->value(), 1u);
}

// --- Inherited budgets fail fast (§16 propagation) --------------------------

// A handler whose caller's budget is already gone must not start a nested
// call at all: RemoteCall checks the thread's inherited deadline before
// every attempt.
TEST(InheritedBudget, RemoteCallFailsFastOnExhaustedInheritedDeadline) {
  SimulatedClock sim;
  sim.StartAutoStep();
  SystemConfig config;
  config.seed = 17;
  config.sim_clock = &sim;
  System system(config);
  NodeRuntime& a = system.AddNode("a");
  NodeRuntime& b = system.AddNode("b");
  a.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  b.RegisterGuardianType("sink", MakeFactory<SilentSink>());
  Guardian* caller = *a.Create<ShellGuardian>("shell", "caller", {});
  SilentSink* sink = *b.Create<SilentSink>("sink", "sink", {});
  sim.StopAutoStep();

  SetCurrentDeadlineAt(a.clock().Now());  // inherited budget: spent
  RemoteCallOptions options;
  options.timeout = Micros(5'000'000);  // irrelevant: inherited wins
  auto reply = RemoteCall(*caller, sink->ProvidedPorts()[0], "put",
                          {Value::Int(3)}, WorkPortType(), options);
  SetCurrentDeadlineAt(TimePoint::max());

  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), Code::kTimeout);
  EXPECT_NE(reply.status().message().find("inherited deadline"),
            std::string::npos)
      << reply.status().message();
  EXPECT_EQ(
      system.metrics().counter("sendprims.call.deadline_exceeded")->value(),
      1u);
  // It failed before the first attempt: nothing was sent.
  EXPECT_EQ(system.metrics().counter("sendprims.call.attempts")->value(), 0u);
  sim.StartAutoStep();  // teardown may need steps
}

TEST(InheritedBudget, FailoverCallFailsFastOnExhaustedInheritedDeadline) {
  SimulatedClock sim;
  sim.StartAutoStep();
  SystemConfig config;
  config.seed = 18;
  config.sim_clock = &sim;
  System system(config);
  NodeRuntime& a = system.AddNode("a");
  NodeRuntime& b = system.AddNode("b");
  a.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  b.RegisterGuardianType("sink", MakeFactory<SilentSink>());
  Guardian* caller = *a.Create<ShellGuardian>("shell", "caller", {});
  SilentSink* s1 = *b.Create<SilentSink>("sink", "s1", {});
  SilentSink* s2 = *b.Create<SilentSink>("sink", "s2", {});
  sim.StopAutoStep();

  SetCurrentDeadlineAt(a.clock().Now());
  RemoteCallOptions per_target;
  per_target.timeout = Micros(5'000'000);
  auto result = FailoverCall(
      *caller, {s1->ProvidedPorts()[0], s2->ProvidedPorts()[0]}, "put",
      {Value::Int(4)}, WorkPortType(), per_target);
  SetCurrentDeadlineAt(TimePoint::max());

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Code::kTimeout);
  EXPECT_NE(result.status().message().find("inherited deadline"),
            std::string::npos)
      << result.status().message();
  EXPECT_EQ(
      system.metrics().counter("sendprims.failover.deadline_exceeded")
          ->value(),
      1u);
  EXPECT_EQ(system.metrics().counter("sendprims.call.calls")->value(), 0u);
  sim.StartAutoStep();  // teardown may need steps
}

}  // namespace
}  // namespace guardians
