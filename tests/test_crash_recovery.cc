// Crash/recovery semantics (Section 2.2): persistent guardian id stability,
// meta-log replay, torn-tail tolerance, permanence under repeated
// crash/restart cycles with fault injection.
#include <gtest/gtest.h>

#include <thread>

#include "src/airline/flight_guardian.h"
#include "src/bank/account_guardian.h"
#include "src/guardian/system.h"
#include "src/sendprims/remote_call.h"

namespace guardians {
namespace {

class CrashTest : public ::testing::Test {
 protected:
  CrashTest() : system_(MakeConfig()) {
    node_ = &system_.AddNode("server");
    client_node_ = &system_.AddNode("client");
    node_->RegisterGuardianType("flight", MakeFactory<FlightGuardian>());
    node_->RegisterGuardianType(AccountGuardian::kTypeName,
                                MakeFactory<AccountGuardian>());
    node_->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
    client_node_->RegisterGuardianType("shell",
                                       MakeFactory<ShellGuardian>());
    client_ = *client_node_->Create<ShellGuardian>("shell", "client", {});
  }

  static SystemConfig MakeConfig() {
    SystemConfig config;
    config.seed = 1979;
    config.default_link.latency = Micros(100);
    return config;
  }

  FlightGuardian* MakeFlight(const std::string& name, int64_t flight_no,
                             bool persistent = true) {
    FlightConfig config;
    config.flight_no = flight_no;
    config.capacity = 100;
    auto flight =
        node_->Create<FlightGuardian>("flight", name, config.ToArgs(),
                                      persistent);
    EXPECT_TRUE(flight.ok()) << flight.status();
    return *flight;
  }

  std::string Reserve(const PortName& port, const std::string& passenger,
                      const std::string& date, int attempts = 1) {
    RemoteCallOptions options;
    options.timeout = Millis(500);
    options.max_attempts = attempts;
    auto reply = RemoteCall(
        *client_, port, "reserve",
        {Value::Str(passenger), Value::Str(date)},
        PortType("rr", {MessageSig{"ok", {}, {}},
                        MessageSig{"pre_reserved", {}, {}},
                        MessageSig{"full", {}, {}},
                        MessageSig{"wait_list", {}, {}}}),
        options);
    return reply.ok() ? reply->command
                      : std::string(CodeName(reply.status().code()));
  }

  System system_;
  NodeRuntime* node_ = nullptr;
  NodeRuntime* client_node_ = nullptr;
  Guardian* client_ = nullptr;
};

TEST_F(CrashTest, PersistentGuardianKeepsIdAndPortName) {
  FlightGuardian* flight = MakeFlight("f1", 1);
  const PortName before = flight->ProvidedPorts()[0];
  ASSERT_EQ(Reserve(before, "smith", "d1"), "ok");

  node_->Crash();
  ASSERT_TRUE(node_->Restart().ok());

  auto* recovered =
      dynamic_cast<FlightGuardian*>(node_->FindGuardian(before.guardian));
  ASSERT_NE(recovered, nullptr);
  const PortName after = recovered->ProvidedPorts()[0];
  EXPECT_EQ(before, after);
  EXPECT_EQ(before.type_hash, after.type_hash);
  // The old name still works and the state survived.
  EXPECT_EQ(Reserve(before, "smith", "d1"), "pre_reserved");
}

TEST_F(CrashTest, NonPersistentGuardianIsForgotten) {
  FlightGuardian* flight = MakeFlight("temp", 2, /*persistent=*/false);
  const PortName port = flight->ProvidedPorts()[0];
  ASSERT_EQ(Reserve(port, "smith", "d1"), "ok");

  node_->Crash();
  ASSERT_TRUE(node_->Restart().ok());
  EXPECT_EQ(node_->FindGuardian(port.guardian), nullptr);
  // Sends to it are discarded ("target guardian doesn't exist").
  EXPECT_EQ(Reserve(port, "smith", "d1"), "failure");
}

TEST_F(CrashTest, GuardianIdsNeverCollideAcrossRestarts) {
  MakeFlight("keep", 1, true);
  FlightGuardian* ephemeral = MakeFlight("temp", 2, false);
  const GuardianId old_id = ephemeral->id();

  node_->Crash();
  ASSERT_TRUE(node_->Restart().ok());

  // A new guardian must not reuse the dead ephemeral's id, or stale port
  // names would silently route to the wrong guardian.
  FlightGuardian* fresh = MakeFlight("fresh", 3, false);
  EXPECT_GT(fresh->id(), old_id);
}

TEST_F(CrashTest, DestroyedGuardianIsNotRecovered) {
  FlightGuardian* flight = MakeFlight("gone", 4, true);
  const GuardianId gid = flight->id();
  ASSERT_TRUE(node_->DestroyGuardian(gid).ok());
  node_->Crash();
  ASSERT_TRUE(node_->Restart().ok());
  EXPECT_EQ(node_->FindGuardian(gid), nullptr);
}

TEST_F(CrashTest, RepeatedCrashRestartCyclesPreserveEveryAckedOp) {
  FlightGuardian* flight = MakeFlight("cycle", 5);
  PortName port = flight->ProvidedPorts()[0];
  std::vector<std::string> acked;
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (int i = 0; i < 8; ++i) {
      const std::string passenger =
          "p" + std::to_string(cycle) + "-" + std::to_string(i);
      if (Reserve(port, passenger, "d1") == "ok") {
        acked.push_back(passenger);
      }
    }
    node_->Crash();
    ASSERT_TRUE(node_->Restart().ok());
  }
  auto* recovered =
      dynamic_cast<FlightGuardian*>(node_->FindGuardian(port.guardian));
  ASSERT_NE(recovered, nullptr);
  const FlightDb db = recovered->SnapshotDb();
  for (const auto& passenger : acked) {
    EXPECT_TRUE(db.IsReserved(passenger, "d1")) << passenger;
  }
  EXPECT_EQ(acked.size(), 32u);
}

TEST_F(CrashTest, TornLogTailLosesAtMostTheUnackedOp) {
  FlightGuardian* flight = MakeFlight("torn", 6);
  PortName port = flight->ProvidedPorts()[0];
  ASSERT_EQ(Reserve(port, "a", "d1"), "ok");
  ASSERT_EQ(Reserve(port, "b", "d1"), "ok");

  node_->Crash();
  // A crash in the middle of the *next* append: chop bytes off the log.
  node_->stable_store().ChopTail("g/torn/flight.log", 3);
  ASSERT_TRUE(node_->Restart().ok());

  auto* recovered =
      dynamic_cast<FlightGuardian*>(node_->FindGuardian(port.guardian));
  ASSERT_NE(recovered, nullptr);
  const FlightDb db = recovered->SnapshotDb();
  // "a" was acked with an intact record; "b"'s record was torn — it is as
  // if b's request had never been done, which the timeout semantics allow.
  EXPECT_TRUE(db.IsReserved("a", "d1"));
  EXPECT_FALSE(db.IsReserved("b", "d1"));
  // And b can simply retry (idempotent).
  EXPECT_EQ(Reserve(port, "b", "d1"), "ok");
}

TEST_F(CrashTest, CheckpointedGuardianRecoversSameState) {
  FlightConfig config;
  config.flight_no = 7;
  config.capacity = 100;
  config.checkpoint_every = 8;
  auto flight = node_->Create<FlightGuardian>("flight", "ckpt",
                                              config.ToArgs(), true);
  ASSERT_TRUE(flight.ok());
  PortName port = (*flight)->ProvidedPorts()[0];
  for (int i = 0; i < 30; ++i) {
    ASSERT_EQ(Reserve(port, "p" + std::to_string(i), "d1"), "ok");
  }
  const FlightDb before = (*flight)->SnapshotDb();

  node_->Crash();
  ASSERT_TRUE(node_->Restart().ok());

  auto* recovered =
      dynamic_cast<FlightGuardian*>(node_->FindGuardian(port.guardian));
  ASSERT_NE(recovered, nullptr);
  EXPECT_TRUE(before.Equals(recovered->SnapshotDb()));
}

TEST_F(CrashTest, ClientObservesOnlyTimeoutsDuringOutage) {
  FlightGuardian* flight = MakeFlight("outage", 8);
  PortName port = flight->ProvidedPorts()[0];
  node_->Crash();
  EXPECT_EQ(Reserve(port, "x", "d1"), "timeout");
  ASSERT_TRUE(node_->Restart().ok());
  EXPECT_EQ(Reserve(port, "x", "d1", /*attempts=*/3), "ok");
}

TEST_F(CrashTest, AccountLogDedupSurvivesCrash) {
  auto account = node_->Create<AccountGuardian>(
      AccountGuardian::kTypeName, "acct",
      {Value::Str("eve"), Value::Int(10)}, true);
  ASSERT_TRUE(account.ok());
  const PortName port = (*account)->ProvidedPorts()[0];

  RemoteCallOptions options;
  options.timeout = Millis(500);
  options.max_attempts = 3;
  auto deposit = [&](const std::string& txid) {
    return RemoteCall(*client_, port, "deposit",
                      {Value::Int(5), Value::Str(txid)}, BankReplyType(),
                      options);
  };
  ASSERT_TRUE(deposit("t1").ok());
  node_->Crash();
  ASSERT_TRUE(node_->Restart().ok());
  // The same txid after recovery must not re-apply.
  auto reply = deposit("t1");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->args[0].int_value(), 15);
  auto* recovered = dynamic_cast<AccountGuardian*>(
      node_->FindGuardian(port.guardian));
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->BalanceForTesting(), 15);
}

TEST_F(CrashTest, RestartWhileUpIsRejected) {
  EXPECT_FALSE(node_->Restart().ok());
}

TEST_F(CrashTest, DoubleCrashIsIdempotent) {
  node_->Crash();
  node_->Crash();  // harmless
  EXPECT_FALSE(node_->IsUp());
  ASSERT_TRUE(node_->Restart().ok());
  EXPECT_TRUE(node_->IsUp());
}

}  // namespace
}  // namespace guardians
