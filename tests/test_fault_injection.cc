// System-level fault injection: concurrent clerks drive the airline while
// region nodes crash and restart and the network loses traffic. After the
// storm: every flight database satisfies its invariants, every reservation
// a clerk saw acknowledged ("ok") is present (permanence of effect), and
// the system is again fully operational.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>

#include "src/airline/airline_system.h"
#include "src/airline/workload.h"
#include "src/sendprims/remote_call.h"

namespace guardians {
namespace {

class FaultStormTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultStormTest, AckedReservationsSurviveCrashStorm) {
  SystemConfig config;
  config.seed = GetParam();
  config.default_link.latency = Micros(200);
  config.default_link.drop_prob = 0.05;
  System system(config);

  AirlineParams params;
  params.regions = 2;
  params.flights_per_region = 2;
  params.capacity = 1 << 20;
  params.organization = FlightOrganization::kOneAtATime;
  params.logging = true;
  auto topology = BuildAirline(system, params);
  ASSERT_TRUE(topology.ok()) << topology.status();

  // Clerks live on their own node so they never crash.
  NodeRuntime& clerk_node = system.AddNode("clerks");
  clerk_node.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());

  std::mutex acked_mu;
  // (flight, passenger, date) triples the flight guardian acknowledged.
  std::vector<std::tuple<int64_t, std::string, std::string>> acked;
  std::atomic<bool> stop{false};

  constexpr int kClerks = 3;
  std::vector<Guardian*> shells;
  for (int c = 0; c < kClerks; ++c) {
    auto shell = clerk_node.Create<ShellGuardian>(
        "shell", "clerk-" + std::to_string(c), {});
    ASSERT_TRUE(shell.ok());
    shells.push_back(*shell);
  }

  std::vector<std::thread> clerks;
  for (int c = 0; c < kClerks; ++c) {
    clerks.emplace_back([&, c] {
      Rng rng(GetParam() * 101 + c);
      int i = 0;
      while (!stop.load()) {
        const int region = static_cast<int>(rng.NextBelow(params.regions));
        const int64_t flight = FlightNo(
            region,
            static_cast<int>(rng.NextBelow(params.flights_per_region)));
        const std::string passenger =
            "c" + std::to_string(c) + "-" + std::to_string(i++);
        const std::string date = DateString(
            static_cast<int>(rng.NextBelow(4)));
        RemoteCallOptions options;
        options.timeout = Millis(50);
        options.max_attempts = 3;  // reserve is idempotent
        auto reply = RemoteCall(
            *shells[c], topology->regional_ports[region], "reserve",
            {Value::Int(flight), Value::Str(passenger), Value::Str(date)},
            ReservationReplyType(), options);
        if (reply.ok() && reply->command == "ok") {
          std::lock_guard<std::mutex> lock(acked_mu);
          acked.emplace_back(flight, passenger, date);
        }
      }
    });
  }

  // The storm: crash and restart each region twice, interleaved.
  Rng storm_rng(GetParam());
  for (int round = 0; round < 2; ++round) {
    for (int r = 0; r < params.regions; ++r) {
      std::this_thread::sleep_for(Millis(60));
      NodeRuntime& node = system.node(topology->region_nodes[r]);
      node.Crash();
      std::this_thread::sleep_for(Millis(40));
      ASSERT_TRUE(node.Restart().ok());
    }
  }
  std::this_thread::sleep_for(Millis(100));
  stop = true;
  for (auto& clerk : clerks) {
    clerk.join();
  }

  // Stop losing packets for the verification phase.
  LinkParams clean;
  clean.latency = Micros(200);
  system.network().SetDefaultLink(clean);

  size_t checked = 0;
  {
    std::lock_guard<std::mutex> lock(acked_mu);
    ASSERT_GT(acked.size(), 0u) << "storm starved the clerks entirely";
    for (const auto& [flight, passenger, date] : acked) {
      const int region = RegionOfFlight(flight);
      NodeRuntime& node = system.node(topology->region_nodes[region]);
      // Find the recovered flight guardian and check the reservation.
      bool found = false;
      for (GuardianId gid = 2; gid < 64 && !found; ++gid) {
        auto* fg = dynamic_cast<FlightGuardian*>(node.FindGuardian(gid));
        if (fg != nullptr && fg->SnapshotDb().flight_no() == flight) {
          const FlightDb db = fg->SnapshotDb();
          EXPECT_TRUE(db.IsReserved(passenger, date))
              << "acked reservation lost: flight " << flight << " "
              << passenger << " " << date;
          EXPECT_TRUE(db.CheckInvariants());
          found = true;
          ++checked;
        }
      }
      EXPECT_TRUE(found) << "flight guardian " << flight
                         << " missing after recovery";
    }
  }
  EXPECT_EQ(checked, acked.size());
}

INSTANTIATE_TEST_SUITE_P(Storms, FaultStormTest,
                         ::testing::Values(1, 23, 456));

}  // namespace
}  // namespace guardians
