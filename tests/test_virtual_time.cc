// Virtual time: the SimulatedClock contract (time moves only when
// stepped; per-node skew and drift), clock-aware Deadlines, reassembly
// age expiry on a caller-supplied clock, and whole-stack timeout paths
// (reliable-send backoff, remote-call budgets) running at simulation
// speed — no wall sleeps anywhere in these tests, which is the point.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/guardian/system.h"
#include "src/sendprims/reliable_send.h"
#include "src/sendprims/remote_call.h"
#include "src/wire/packet.h"

namespace guardians {
namespace {

// Wall-time budget for things that should take ~zero wall time. Generous
// on purpose: sanitizer builds and loaded CI boxes are slow, but nothing
// here should ever approach a virtual second per virtual second.
constexpr Micros kWallBudget = Micros(10'000'000);

TEST(SimulatedClockTest, TimeMovesOnlyWhenStepped) {
  SimulatedClock sim;
  const TimePoint t0 = sim.Now();
  EXPECT_EQ(sim.Now(), t0);
  sim.Advance(Micros(250));
  EXPECT_EQ(sim.Now(), t0 + Micros(250));
  sim.AdvanceTo(t0 + Micros(100));  // backward AdvanceTo is a no-op
  EXPECT_EQ(sim.Now(), t0 + Micros(250));
}

TEST(SimulatedClockTest, SleepForWakesOnStepNotWall) {
  SimulatedClock sim;
  const TimePoint wall_start = Now();
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    sim.SleepFor(Micros(3'600'000'000));  // one virtual hour
    woke.store(true);
  });
  ASSERT_TRUE(sim.WaitForWaiters(1));
  EXPECT_FALSE(woke.load());
  EXPECT_TRUE(sim.AdvanceToNextDeadline());
  sleeper.join();
  EXPECT_TRUE(woke.load());
  EXPECT_LT(Now() - wall_start, kWallBudget);
}

// Regression: the node-deadline -> base-time mapping divides by drift and
// the reverse mapping multiplies; double rounding once let the stepper
// advance exactly to the computed due instant while the node view was
// still a nanosecond short, wedging the whole simulation. Every drift
// here must round-trip: the sleeper wakes or the test times out.
TEST(SimulatedClockTest, DriftedDeadlinesRoundTripExactly) {
  for (double drift : {0.3, 0.5, 0.9999, 1.0001, 1.5, 1.875, 3.0}) {
    SimulatedClock sim;
    sim.SetNodeDrift(7, drift);
    ClockSource* view = sim.NodeView(7);
    std::thread sleeper([&] { view->SleepFor(Micros(123'457)); });
    ASSERT_TRUE(sim.WaitForWaiters(1)) << "drift " << drift;
    EXPECT_TRUE(sim.AdvanceToNextDeadline()) << "drift " << drift;
    sleeper.join();
  }
}

TEST(SimulatedClockTest, ForwardStepFiresNodeWaitWithoutBaseAdvance) {
  SimulatedClock sim;
  ClockSource* view = sim.NodeView(1);
  const TimePoint base0 = sim.Now();
  std::thread sleeper([&] { view->SleepFor(Micros(1'000'000'000)); });
  ASSERT_TRUE(sim.WaitForWaiters(1));
  sim.StepNode(1, Micros(1'000'000'001));  // the node's clock jumps past it
  sleeper.join();
  EXPECT_EQ(sim.Now(), base0);  // base time never moved
}

TEST(SimulatedClockTest, SkewAndDriftChangeOnlyThatNodesView) {
  SimulatedClock sim;
  const TimePoint t0 = sim.Now();
  sim.StepNode(2, Micros(500));
  sim.SetNodeDrift(3, 2.0);
  sim.Advance(Micros(1000));
  EXPECT_EQ(sim.NowFor(1), t0 + Micros(1000));         // untouched node
  EXPECT_EQ(sim.NowFor(2), t0 + Micros(1500));         // stepped
  EXPECT_EQ(sim.NowFor(3), t0 + Micros(2000));         // 2x drift
  EXPECT_EQ(sim.Now(), t0 + Micros(1000));             // base
}

// --- Deadline ---------------------------------------------------------------

TEST(DeadlineTest, ExpiresOnVirtualAdvanceWithoutWallWaiting) {
  SimulatedClock sim;
  const TimePoint wall_start = Now();
  Deadline d(Micros(5'000'000), &sim);  // five virtual seconds
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.Remaining(), Micros(5'000'000));
  sim.Advance(Micros(2'000'000));
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.Remaining(), Micros(3'000'000));
  sim.Advance(Micros(3'000'000));
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.Remaining(), Micros(0));
  EXPECT_LT(Now() - wall_start, kWallBudget);
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  SimulatedClock sim;
  Deadline d = Deadline::Infinite(&sim);
  EXPECT_TRUE(d.IsInfinite());
  EXPECT_FALSE(d.Expired());
  sim.Advance(Micros(1'000'000'000'000));  // eleven virtual days
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.Remaining(), Micros::max());
}

TEST(DeadlineTest, RemainingIsMonotonicUnderBackwardSkew) {
  SimulatedClock sim;
  Deadline d(Micros(1'000'000), sim.NodeView(4));
  sim.Advance(Micros(400'000));
  const Micros spent = d.Remaining();
  EXPECT_EQ(spent, Micros(600'000));
  // The node's clock jumps backward: its raw view now says more budget is
  // left than was ever granted. Remaining() must clamp, not inflate.
  sim.StepNode(4, Micros(-300'000));
  EXPECT_LE(d.Remaining(), spent);
  sim.Advance(Micros(200'000));
  EXPECT_LE(d.Remaining(), spent);
}

// --- Reassembly expiry on a supplied clock ----------------------------------

TEST(ReassemblerVirtualTime, AgeExpiryRunsOnTheCallersClock) {
  Reassembler reassembler(/*max_partial=*/16, /*expiry=*/Micros(2'000'000));
  const Bytes msg(64, 0xAB);
  auto frags = Fragment(BufferSlice(msg), /*msg_id=*/1, /*src=*/1, /*dst=*/2,
                        /*max_payload=*/16);
  ASSERT_GT(frags.size(), 1u);
  SimulatedClock sim;
  // First fragment arrives; the rest never do.
  auto r = reassembler.Add(std::move(frags[0]), sim.Now());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
  EXPECT_EQ(reassembler.partial_count(), 1u);
  // Three virtual seconds later an unrelated packet triggers the sweep.
  sim.Advance(Micros(3'000'000));
  const Bytes other(8, 0x01);
  auto single = Fragment(BufferSlice(other), /*msg_id=*/2, /*src=*/3,
                         /*dst=*/2, /*max_payload=*/1024);
  ASSERT_EQ(single.size(), 1u);
  r = reassembler.Add(std::move(single[0]), sim.Now());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->has_value());
  EXPECT_EQ(reassembler.partial_count(), 0u);
  EXPECT_EQ(reassembler.expired(), 1u);
}

// --- Whole-stack timeout paths at simulation speed --------------------------

PortType SinkPortType() {
  return PortType("sink", {MessageSig{"put", {ArgType::Of(TypeTag::kInt)},
                                      {}}});
}

class SilentSink : public Guardian {
 public:
  Status Setup(const ValueList&) override {
    AddPort(SinkPortType(), 64, /*provided=*/true);
    return OkStatus();
  }
  void Main() override {
    for (;;) {
      auto m = Receive(port(0), Micros::max());
      if (!m.ok()) {
        return;
      }
    }
  }
};

// ReliableSend into a severed link: every attempt times out on the
// virtual clock and every inter-attempt backoff is a virtual sleep. With
// ~9.3 virtual seconds of budget, wall time stays bounded by the
// auto-stepper's real-time quiet windows — simulation speed, not wall
// speed. This is the "timeout-heavy test with zero wall sleep_for" shape
// the clock work exists for.
TEST(VirtualTimeEndToEnd, ReliableSendBackoffRunsAtSimSpeed) {
  SimulatedClock sim;
  sim.StartAutoStep();
  const TimePoint wall_start = Now();
  const TimePoint virt_start = sim.Now();
  {
    SystemConfig config;
    config.seed = 3;
    config.sim_clock = &sim;
    System system(config);
    NodeRuntime& a = system.AddNode("a");
    NodeRuntime& b = system.AddNode("b");
    a.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
    b.RegisterGuardianType("sink", MakeFactory<SilentSink>());
    Guardian* sender = *a.Create<ShellGuardian>("shell", "sender", {});
    auto sink = b.Create<SilentSink>("sink", "sink", {}, false);
    const PortName port = (*sink)->ProvidedPorts()[0];
    system.network().SetPartitioned(a.id(), b.id(), true);

    ReliableSendOptions options;
    options.ack_timeout = Millis(800);
    options.max_attempts = 8;
    options.initial_backoff = Millis(100);
    options.backoff_multiplier = 2.0;
    options.max_backoff = Millis(400);
    options.jitter = 0.0;
    auto result = ReliableSend(*sender, port, "put", {Value::Int(1)},
                               options);
    EXPECT_FALSE(result.ok());
  }
  sim.StopAutoStep();
  // All eight 800ms attempt timeouts plus the backoff ladder elapsed in
  // virtual time...
  EXPECT_GE(sim.Now() - virt_start, Micros(6'400'000));
  // ...while the wall clock barely moved.
  EXPECT_LT(Now() - wall_start, kWallBudget);
}

// Remote calls against a partitioned peer exhaust generous virtual
// budgets instantly in wall terms, and the guardian Receive path (condvar
// wait through the node's clock) is what carries them.
TEST(VirtualTimeEndToEnd, RemoteCallBudgetsAreVirtual) {
  SimulatedClock sim;
  sim.StartAutoStep();
  const TimePoint wall_start = Now();
  {
    SystemConfig config;
    config.seed = 4;
    config.sim_clock = &sim;
    System system(config);
    NodeRuntime& a = system.AddNode("a");
    NodeRuntime& b = system.AddNode("b");
    a.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
    b.RegisterGuardianType("sink", MakeFactory<SilentSink>());
    Guardian* caller = *a.Create<ShellGuardian>("shell", "caller", {});
    auto sink = b.Create<SilentSink>("sink", "sink", {}, false);
    const PortName port = (*sink)->ProvidedPorts()[0];
    system.network().SetPartitioned(a.id(), b.id(), true);

    RemoteCallOptions options;
    options.timeout = Micros(2'000'000);  // two virtual seconds per attempt
    options.max_attempts = 3;
    auto reply = RemoteCall(*caller, port, "put", {Value::Int(7)},
                            SinkPortType(), options);
    EXPECT_FALSE(reply.ok());
  }
  sim.StopAutoStep();
  EXPECT_LT(Now() - wall_start, kWallBudget);
}

}  // namespace
}  // namespace guardians
