// Unit tests for the transmittable-type machinery (Section 3.3).
#include <gtest/gtest.h>

#include <cmath>

#include "src/transmit/assoc_memory.h"
#include "src/transmit/complex.h"
#include "src/transmit/document.h"
#include "src/transmit/registry.h"
#include "src/wire/value_codec.h"

namespace guardians {
namespace {

TEST(RegistryTest, RegisterLookupForbid) {
  TransmitRegistry registry;
  EXPECT_FALSE(registry.Knows("complex"));
  ASSERT_TRUE(registry.Register("complex", RectComplexDecoder()).ok());
  EXPECT_TRUE(registry.Knows("complex"));
  // Double registration of the same name is an error.
  EXPECT_EQ(registry.Register("complex", PolarComplexDecoder()).code(),
            Code::kAlreadyExists);
  registry.Forbid("complex");
  EXPECT_FALSE(registry.Knows("complex"));
  auto out = registry.Decode("complex", Value::Record({}));
  EXPECT_EQ(out.status().code(), Code::kNotTransmittable);
}

TEST(RegistryTest, UnknownTypeNotTransmittable) {
  TransmitRegistry registry;
  auto out = registry.Decode("matrix", Value::Record({}));
  EXPECT_EQ(out.status().code(), Code::kNotTransmittable);
}

TEST(ComplexTest, ExternalRepIsRectCoordinates) {
  auto polar = MakePolarComplex(2.0, M_PI / 2);
  auto external = polar->Encode();
  ASSERT_TRUE(external.ok());
  EXPECT_NEAR(external->field("re")->real_value(), 0.0, 1e-9);
  EXPECT_NEAR(external->field("im")->real_value(), 2.0, 1e-9);
}

TEST(ComplexTest, DecodeIntoEitherRepresentation) {
  const Value external = Value::Record(
      {{"re", Value::Real(1.0)}, {"im", Value::Real(-1.0)}});
  auto rect = RectComplexDecoder()(external);
  ASSERT_TRUE(rect.ok());
  auto polar = PolarComplexDecoder()(external);
  ASSERT_TRUE(polar.ok());
  EXPECT_TRUE((*rect)->AbstractEquals(**polar));
  auto p = std::dynamic_pointer_cast<const PolarComplex>(*polar);
  ASSERT_NE(p, nullptr);
  EXPECT_NEAR(p->Magnitude(), std::sqrt(2.0), 1e-9);
}

TEST(ComplexTest, MalformedExternalRepRejected) {
  EXPECT_FALSE(RectComplexDecoder()(Value::Int(2)).ok());
  EXPECT_FALSE(
      RectComplexDecoder()(Value::Record({{"re", Value::Real(1)}})).ok());
  EXPECT_FALSE(RectComplexDecoder()(Value::Record(
                                        {{"re", Value::Str("x")},
                                         {"im", Value::Real(0)}}))
                   .ok());
}

TEST(AssocMemoryTest, OperationsOnBothReps) {
  for (auto memory : {std::shared_ptr<AssocMemoryObject>(MakeHashAssocMemory()),
                      std::shared_ptr<AssocMemoryObject>(
                          MakeTreeAssocMemory())}) {
    memory->AddItem("k1", "v1");
    memory->AddItem("k2", "v2");
    memory->AddItem("k1", "v1b");  // replace
    EXPECT_EQ(memory->Size(), 2u);
    EXPECT_EQ(*memory->GetItem("k1"), "v1b");
    EXPECT_EQ(memory->GetItem("zzz").status().code(), Code::kNotFound);
  }
}

TEST(AssocMemoryTest, EncodeIsCanonicalAcrossReps) {
  auto hash = MakeHashAssocMemory();
  auto tree = MakeTreeAssocMemory();
  for (const auto& [k, v] : std::vector<std::pair<std::string, std::string>>{
           {"zebra", "1"}, {"apple", "2"}, {"mango", "3"}}) {
    hash->AddItem(k, v);
    tree->AddItem(k, v);
  }
  auto from_hash = hash->Encode();
  auto from_tree = tree->Encode();
  ASSERT_TRUE(from_hash.ok());
  ASSERT_TRUE(from_tree.ok());
  // The single external rep is part of the type's fixed meaning: the two
  // representations must encode identically.
  EXPECT_TRUE(from_hash->Equals(*from_tree));
  // Sorted by key.
  EXPECT_EQ(from_hash->at(0).field("key")->string_value(), "apple");
}

TEST(AssocMemoryTest, HashToTreeRoundTripPreservesValue) {
  auto hash = MakeHashAssocMemory();
  for (int i = 0; i < 30; ++i) {
    hash->AddItem("key-" + std::to_string(i), "item-" + std::to_string(i));
  }
  auto external = hash->Encode();
  ASSERT_TRUE(external.ok());
  auto tree = TreeAssocMemoryDecoder()(*external);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(hash->AbstractEquals(**tree));
  EXPECT_NE(dynamic_cast<const TreeAssocMemory*>(tree->get()), nullptr);
}

TEST(AssocMemoryTest, DecoderRejectsGarbage) {
  EXPECT_FALSE(TreeAssocMemoryDecoder()(Value::Int(1)).ok());
  EXPECT_FALSE(
      TreeAssocMemoryDecoder()(Value::Array({Value::Int(1)})).ok());
}

TEST(DocumentTest, GuardianDependentInfoNotTransmitted) {
  auto doc = MakeDocument("t", {"one two", "three"});
  doc->SetLocalCacheIndex(42);
  auto external = doc->Encode();
  ASSERT_TRUE(external.ok());
  EXPECT_FALSE(external->HasField("local_cache_index"));
  auto back = DocumentDecoder()(*external);
  ASSERT_TRUE(back.ok());
  auto restored = std::dynamic_pointer_cast<const Document>(*back);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->local_cache_index(), -1);  // reset, not transmitted
  EXPECT_TRUE(doc->AbstractEquals(*restored));   // but same abstract value
}

TEST(DocumentTest, WordCount) {
  EXPECT_EQ(MakeDocument("t", {"one two", " three  four "})->WordCount(), 4u);
  EXPECT_EQ(MakeDocument("t", {})->WordCount(), 0u);
}

TEST(SealedNoteTest, RefusesTransmission) {
  auto note = MakeSealedNote("secret");
  auto external = note->Encode();
  EXPECT_EQ(external.status().code(), Code::kNotTransmittable);
  // And therefore wire encoding of a value containing one fails.
  auto bytes = EncodeValueToBytes(Value::Abstract(note));
  EXPECT_EQ(bytes.status().code(), Code::kEncodeError);
}

TEST(AbstractEqualityTest, DifferentTypesNeverEqual) {
  auto complex = MakeRectComplex(1, 2);
  auto doc = MakeDocument("t", {});
  EXPECT_FALSE(complex->AbstractEquals(*doc));
  EXPECT_FALSE(doc->AbstractEquals(*complex));
}

}  // namespace
}  // namespace guardians
