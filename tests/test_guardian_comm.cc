// Tests of the Section 3.4 communication semantics at the guardian level:
// buffering and discard-on-full, receive priority, timeouts, the
// synchronization send's receipt semantics, retries under loss, and stale
// port names.
#include <gtest/gtest.h>

#include <thread>

#include "src/guardian/system.h"
#include "src/sendprims/remote_call.h"
#include "src/sendprims/sync_send.h"

namespace guardians {
namespace {

PortType TinyPortType() {
  return PortType("tiny",
                  {MessageSig{"put", {ArgType::Of(TypeTag::kInt)}, {}}});
}

PortType PairPortType() {
  return PortType("pair",
                  {MessageSig{"hi", {}, {}},
                   MessageSig{"lo", {}, {}}});
}

class CommTest : public ::testing::Test {
 protected:
  CommTest() : system_(MakeConfig()) {
    a_ = &system_.AddNode("a");
    b_ = &system_.AddNode("b");
    for (auto* node : {a_, b_}) {
      node->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
    }
    sender_ = *a_->Create<ShellGuardian>("shell", "sender", {});
    receiver_ = *b_->Create<ShellGuardian>("shell", "receiver", {});
  }

  static SystemConfig MakeConfig() {
    SystemConfig config;
    config.seed = 77;
    config.default_link.latency = Micros(100);
    return config;
  }

  System system_;
  NodeRuntime* a_ = nullptr;
  NodeRuntime* b_ = nullptr;
  Guardian* sender_ = nullptr;
  Guardian* receiver_ = nullptr;
};

TEST_F(CommTest, MessagesQueueUpToCapacityThenDiscard) {
  Port* port = receiver_->AddPort(TinyPortType(), /*capacity=*/3);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(sender_->Send(port->name(), "put", {Value::Int(i)}).ok());
  }
  system_.network().DrainForTesting();
  EXPECT_EQ(port->depth(), 3u);
  EXPECT_EQ(port->enqueued(), 3u);
  EXPECT_EQ(b_->stats().discarded_port_full, 3u);
  // Without a reply port, the discards are silent: no failures synthesized.
  EXPECT_EQ(b_->stats().failures_synthesized, 0u);

  // Draining the port makes room again.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(receiver_->Receive(port, Millis(100)).ok());
  }
  ASSERT_TRUE(sender_->Send(port->name(), "put", {Value::Int(9)}).ok());
  system_.network().DrainForTesting();
  EXPECT_EQ(port->depth(), 1u);
}

TEST_F(CommTest, ReceiveScansPortListInPriorityOrder) {
  Port* high = receiver_->AddPort(PairPortType(), 8);
  Port* low = receiver_->AddPort(PairPortType(), 8);
  ASSERT_TRUE(sender_->Send(low->name(), "lo", {}).ok());
  ASSERT_TRUE(sender_->Send(high->name(), "hi", {}).ok());
  system_.network().DrainForTesting();
  // Both queued; the first port in the list wins regardless of arrival.
  auto first = receiver_->Receive({high, low}, Millis(200));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->command, "hi");
  auto second = receiver_->Receive({high, low}, Millis(200));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->command, "lo");
}

TEST_F(CommTest, ReceiveTimesOutWhenNothingArrives) {
  Port* port = receiver_->AddPort(TinyPortType(), 8);
  const TimePoint begin = Now();
  auto out = receiver_->Receive(port, Millis(50));
  EXPECT_EQ(out.status().code(), Code::kTimeout);
  EXPECT_GE(ToMicros(Now() - begin), 45000);
}

TEST_F(CommTest, ZeroTimeoutPollsWithoutBlocking) {
  Port* port = receiver_->AddPort(TinyPortType(), 8);
  EXPECT_EQ(receiver_->Receive(port, Micros(0)).status().code(),
            Code::kTimeout);
  ASSERT_TRUE(sender_->Send(port->name(), "put", {Value::Int(1)}).ok());
  system_.network().DrainForTesting();
  EXPECT_TRUE(receiver_->Receive(port, Micros(0)).ok());
}

TEST_F(CommTest, SyncSendCompletesOnlyWhenTargetProcessReceives) {
  Port* port = receiver_->AddPort(TinyPortType(), 8);
  std::atomic<bool> sync_done{false};
  std::thread syncer([&] {
    Status st = SyncSend(*sender_, port->name(), "put", {Value::Int(1)},
                         Millis(5000));
    EXPECT_TRUE(st.ok()) << st;
    sync_done = true;
  });
  // The message is *delivered* quickly, but no process has received it, so
  // the synchronization send must still be blocked.
  system_.network().DrainForTesting();
  std::this_thread::sleep_for(Millis(50));
  EXPECT_FALSE(sync_done.load());
  EXPECT_EQ(port->depth(), 1u);

  // The moment a receive dequeues it, the sender unblocks.
  ASSERT_TRUE(receiver_->Receive(port, Millis(1000)).ok());
  syncer.join();
  EXPECT_TRUE(sync_done.load());
  EXPECT_EQ(b_->stats().acks_sent, 1u);
}

TEST_F(CommTest, SyncSendTimesOutIfNobodyReceives) {
  Port* port = receiver_->AddPort(TinyPortType(), 8);
  Status st = SyncSend(*sender_, port->name(), "put", {Value::Int(1)},
                       Millis(80));
  EXPECT_EQ(st.code(), Code::kTimeout);
}

TEST_F(CommTest, RemoteCallRetriesUntilLossyLinkCooperates) {
  // A very lossy link: single attempts usually fail, a retry budget wins.
  system_.network().SetLink(a_->id(), b_->id(),
                            LinkParams{Micros(100), Micros(0), 0.5, 0, 0});
  PortType ping_type("ping_req", {MessageSig{"hi", {}, {"hi"}}});
  Port* port = receiver_->AddPort(ping_type, 64);
  // Echo process.
  receiver_->Fork("echo", [this, port] {
    for (;;) {
      auto received = receiver_->Receive(port, Micros::max());
      if (!received.ok()) {
        return;
      }
      if (!received->reply_to.IsNull()) {
        Status st = receiver_->Send(received->reply_to, "hi", {});
        (void)st;
      }
    }
  });
  PortType reply_type("pair_reply", {MessageSig{"hi", {}, {}}});
  int succeeded = 0;
  int attempts_used = 0;
  for (int i = 0; i < 10; ++i) {
    RemoteCallOptions options;
    options.timeout = Millis(60);
    options.max_attempts = 25;
    auto reply = RemoteCall(*sender_, port->name(), "hi", {}, reply_type,
                            options);
    if (reply.ok()) {
      ++succeeded;
      attempts_used += reply->attempts;
    }
  }
  // 25 attempts at ~84% round-trip failure: virtually certain success.
  EXPECT_EQ(succeeded, 10);
  EXPECT_GT(attempts_used, 10);  // the loss actually forced retries
}

TEST_F(CommTest, StaleNameAfterPortChangeYieldsTypeMismatchFailure) {
  Port* old_port = receiver_->AddPort(TinyPortType(), 8);
  PortName stale = old_port->name();
  // The guardian retires the port; a *different* port type now lives at
  // another index, but the stale name still points at index 0.
  receiver_->RetirePort(old_port);
  auto reply_port = sender_->AddPort(
      PortType("r", {MessageSig{"ok", {}, {}}}), 8);
  ASSERT_TRUE(system_.port_types().Register(TinyPortType()).ok());
  // Sending to the retired port: the drop is attributed to the port being
  // retired — not "no port" and not "full" — so the sender can tell that
  // retrying this name is pointless until the port is recreated.
  ASSERT_TRUE(sender_->Send(stale, "put", {Value::Int(1)}).ok());
  system_.network().DrainForTesting();
  EXPECT_EQ(b_->stats().discarded_port_retired, 1u);
  EXPECT_EQ(b_->stats().discarded_no_port, 0u);
  EXPECT_EQ(b_->stats().discarded_port_full, 0u);
  EXPECT_EQ(old_port->discarded_retired(), 1u);
  (void)reply_port;
}

TEST_F(CommTest, ReceiveOnClosedNodeReturnsNodeDown) {
  Port* port = receiver_->AddPort(TinyPortType(), 8);
  std::thread closer([this] {
    std::this_thread::sleep_for(Millis(30));
    b_->Crash();
  });
  auto out = receiver_->Receive(port, Micros::max());
  EXPECT_EQ(out.status().code(), Code::kNodeDown);
  closer.join();
}

TEST_F(CommTest, SendFromCrashedNodeFailsLocally) {
  Port* port = receiver_->AddPort(TinyPortType(), 8);
  const PortName name = port->name();
  a_->Crash();
  EXPECT_EQ(sender_->Send(name, "put", {Value::Int(1)}).code(),
            Code::kNodeDown);
}

TEST_F(CommTest, LargeMessageFragmentsAndReassembles) {
  PortType big_type("big",
                    {MessageSig{"blob", {ArgType::Of(TypeTag::kBytes)}, {}}});
  Port* port = receiver_->AddPort(big_type, 8);
  Bytes payload(10000);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 31);
  }
  ASSERT_TRUE(
      sender_->Send(port->name(), "blob", {Value::Blob(payload)}).ok());
  auto out = receiver_->Receive(port, Millis(2000));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->args[0].bytes_value(), payload);
  // The default packet payload is 1KB, so this took >= 10 packets.
  EXPECT_GE(system_.network().stats().packets_sent, 10u);
}

TEST_F(CommTest, CorruptedFragmentLosesTheWholeMessageSilently) {
  PortType big_type("big2",
                    {MessageSig{"blob", {ArgType::Of(TypeTag::kBytes)}, {}}});
  Port* port = receiver_->AddPort(big_type, 8);
  system_.network().SetLink(a_->id(), b_->id(),
                            LinkParams{Micros(100), Micros(0), 0, 1.0, 0});
  ASSERT_TRUE(
      sender_->Send(port->name(), "blob", {Value::Blob(Bytes(5000, 1))})
          .ok());
  auto out = receiver_->Receive(port, Millis(300));
  EXPECT_EQ(out.status().code(), Code::kTimeout);
  EXPECT_GT(b_->stats().discarded_corrupt, 0u);
}

TEST_F(CommTest, NoOrderingGuaranteeAcknowledgedInApi) {
  // With jitter, two back-to-back messages may invert; the runtime must
  // deliver both without confusion (exact inversion is probabilistic, so
  // only delivery of both is asserted here; the PORTQ bench measures the
  // inversion rate).
  system_.network().SetLink(a_->id(), b_->id(),
                            LinkParams{Micros(300), Micros(300), 0, 0, 0});
  Port* port = receiver_->AddPort(TinyPortType(), 8);
  ASSERT_TRUE(sender_->Send(port->name(), "put", {Value::Int(1)}).ok());
  ASSERT_TRUE(sender_->Send(port->name(), "put", {Value::Int(2)}).ok());
  int sum = 0;
  for (int i = 0; i < 2; ++i) {
    auto out = receiver_->Receive(port, Millis(2000));
    ASSERT_TRUE(out.ok());
    sum += static_cast<int>(out->args[0].int_value());
  }
  EXPECT_EQ(sum, 3);
}

}  // namespace
}  // namespace guardians
