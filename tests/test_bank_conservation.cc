// Money-conservation property under loss and crashes: across any number of
// transfers on a lossy network with retries, plus a crash/restart of the
// branch node, no money is ever created; after recovery completes every
// in-doubt transfer, none is destroyed either.
#include <gtest/gtest.h>

#include <thread>

#include "src/bank/branch_guardian.h"
#include "src/guardian/system.h"
#include "src/sendprims/remote_call.h"

namespace guardians {
namespace {

class ConservationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConservationTest, TransfersUnderLossConserveMoney) {
  SystemConfig config;
  config.seed = GetParam();
  config.default_link.latency = Micros(150);
  config.default_link.drop_prob = 0.10;
  System system(config);

  NodeRuntime& hq = system.AddNode("hq");
  NodeRuntime& branch_node = system.AddNode("branch-town");
  for (NodeRuntime* node : {&hq, &branch_node}) {
    node->RegisterGuardianType(AccountGuardian::kTypeName,
                               MakeFactory<AccountGuardian>());
    node->RegisterGuardianType(BranchGuardian::kTypeName,
                               MakeFactory<BranchGuardian>());
    node->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  }

  constexpr int kAccounts = 4;
  constexpr int64_t kInitial = 100;
  std::vector<AccountGuardian*> accounts;
  std::vector<PortName> account_ports;
  for (int i = 0; i < kAccounts; ++i) {
    NodeRuntime& node = i % 2 == 0 ? hq : branch_node;
    auto account = node.Create<AccountGuardian>(
        AccountGuardian::kTypeName, "acct-" + std::to_string(i),
        {Value::Str("owner-" + std::to_string(i)), Value::Int(kInitial)},
        /*persistent=*/true);
    ASSERT_TRUE(account.ok());
    accounts.push_back(*account);
    account_ports.push_back((*account)->ProvidedPorts()[0]);
  }
  auto branch = hq.Create<BranchGuardian>(
      BranchGuardian::kTypeName, "branch",
      {Value::Int(60000), Value::Int(4)}, /*persistent=*/true);
  ASSERT_TRUE(branch.ok());
  const PortName branch_port = (*branch)->ProvidedPorts()[0];

  auto teller = branch_node.Create<ShellGuardian>("shell", "teller", {});
  ASSERT_TRUE(teller.ok());

  // Fire transfers under loss.
  Rng rng(GetParam() ^ 0xC0FFEE);
  constexpr int kTransfers = 24;
  for (int i = 0; i < kTransfers; ++i) {
    const int from = static_cast<int>(rng.NextBelow(kAccounts));
    int to = static_cast<int>(rng.NextBelow(kAccounts));
    if (to == from) {
      to = (to + 1) % kAccounts;
    }
    RemoteCallOptions options;
    options.timeout = Millis(500);
    options.max_attempts = 3;  // the transfer request itself is txid-keyed
    auto reply = RemoteCall(
        **teller, branch_port, "transfer",
        {Value::OfPort(account_ports[from]), Value::OfPort(account_ports[to]),
         Value::Int(1 + static_cast<int64_t>(rng.NextBelow(20))),
         Value::Str("tx-" + std::to_string(i))},
        BankReplyType(), options);
    (void)reply;  // done, failed, or in doubt — conservation must hold
  }

  // Crash the branch's node mid-life and restart: recovery completes any
  // in-doubt transfer.
  hq.Crash();
  ASSERT_TRUE(hq.Restart().ok());

  // Stop losing packets and let recovery settle.
  LinkParams clean;
  clean.latency = Micros(150);
  system.network().SetDefaultLink(clean);

  auto total = [&]() {
    int64_t sum = 0;
    for (int i = 0; i < kAccounts; ++i) {
      // Re-find accounts on hq (their guardians were re-created).
      NodeRuntime& node = i % 2 == 0 ? hq : branch_node;
      auto* account = dynamic_cast<AccountGuardian*>(
          node.FindGuardian(account_ports[i].guardian));
      if (account == nullptr) {
        return int64_t{-1};
      }
      sum += account->BalanceForTesting();
    }
    return sum;
  };

  // Money must never exceed the initial supply (no creation), and after
  // recovery drains it must equal it exactly (no destruction).
  const Deadline deadline(Millis(8000));
  int64_t sum = -1;
  while (!deadline.Expired()) {
    sum = total();
    if (sum == kAccounts * kInitial) {
      break;
    }
    ASSERT_LE(sum, kAccounts * kInitial) << "money was created";
    std::this_thread::sleep_for(Millis(25));
  }
  EXPECT_EQ(sum, kAccounts * kInitial)
      << "money was destroyed (an in-doubt transfer never completed)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationTest,
                         ::testing::Values(11, 222, 3333));

TEST(PartitionHealTest, RetryStormAfterHealDoesNotDoubleApplyTransfers) {
  // The link between teller and branch is cut mid-workload and then
  // restored, with every surviving packet duplicated on the wire. The
  // retry storm that follows the heal — resent requests plus their network
  // duplicates — must be deduplicated: each transfer applies once, so the
  // total supply is conserved exactly.
  SystemConfig config;
  config.seed = 808;
  config.default_link.latency = Micros(150);
  config.default_link.dup_prob = 1.0;
  System system(config);

  NodeRuntime& hq = system.AddNode("hq");
  NodeRuntime& branch_node = system.AddNode("branch-town");
  for (NodeRuntime* node : {&hq, &branch_node}) {
    node->RegisterGuardianType(AccountGuardian::kTypeName,
                               MakeFactory<AccountGuardian>());
    node->RegisterGuardianType(BranchGuardian::kTypeName,
                               MakeFactory<BranchGuardian>());
    node->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  }

  constexpr int kAccounts = 2;
  constexpr int64_t kInitial = 100;
  std::vector<PortName> account_ports;
  for (int i = 0; i < kAccounts; ++i) {
    auto account = hq.Create<AccountGuardian>(
        AccountGuardian::kTypeName, "acct-" + std::to_string(i),
        {Value::Str("owner-" + std::to_string(i)), Value::Int(kInitial)},
        /*persistent=*/true);
    ASSERT_TRUE(account.ok());
    account_ports.push_back((*account)->ProvidedPorts()[0]);
  }
  auto branch = hq.Create<BranchGuardian>(
      BranchGuardian::kTypeName, "branch",
      {Value::Int(60000), Value::Int(4)}, /*persistent=*/true);
  ASSERT_TRUE(branch.ok());
  const PortName branch_port = (*branch)->ProvidedPorts()[0];
  auto teller = branch_node.Create<ShellGuardian>("shell", "teller", {});
  ASSERT_TRUE(teller.ok());

  system.network().SetPartitioned(hq.id(), branch_node.id(), true);
  std::thread healer([&] {
    std::this_thread::sleep_for(Millis(400));
    system.network().SetPartitioned(hq.id(), branch_node.id(), false);
  });

  constexpr int kTransfers = 6;
  int applied = 0;
  for (int i = 0; i < kTransfers; ++i) {
    RemoteCallOptions options;
    options.timeout = Millis(150);
    options.max_attempts = 20;  // the first call's storm spans the heal
    auto reply = RemoteCall(
        **teller, branch_port, "transfer",
        {Value::OfPort(account_ports[0]), Value::OfPort(account_ports[1]),
         Value::Int(5), Value::Str("heal-tx-" + std::to_string(i))},
        BankReplyType(), options);
    if (reply.ok() && reply->command == "transfer_done") {
      ++applied;
    }
  }
  healer.join();
  EXPECT_EQ(applied, kTransfers);

  system.network().DrainForTesting();
  auto balance = [&](int i) {
    return dynamic_cast<AccountGuardian*>(
               hq.FindGuardian(account_ports[i].guardian))
        ->BalanceForTesting();
  };
  // Deadline loop: the last transfer's debit/credit legs may still be
  // settling inside the branch when the reply arrives.
  const Deadline deadline(Millis(8000));
  while (!deadline.Expired() &&
         balance(1) != kInitial + 5 * kTransfers) {
    std::this_thread::sleep_for(Millis(25));
  }
  // Exactly once each: duplicates suppressed, no double-applied legs.
  EXPECT_EQ(balance(0), kInitial - 5 * kTransfers);
  EXPECT_EQ(balance(1), kInitial + 5 * kTransfers);
  EXPECT_EQ(balance(0) + balance(1), kAccounts * kInitial);
  EXPECT_GE(hq.stats().duplicates_suppressed, 1u);
}

}  // namespace
}  // namespace guardians
