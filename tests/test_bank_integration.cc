// Integration tests of the banking domain: exactly-once deposits and
// withdrawals under retries, token-guarded statements, account recovery,
// and in-doubt transfer completion by the branch's recovery process.
#include <gtest/gtest.h>

#include <thread>

#include "src/bank/branch_guardian.h"
#include "src/guardian/system.h"
#include "src/sendprims/remote_call.h"

namespace guardians {
namespace {

class BankTest : public ::testing::Test {
 protected:
  BankTest() : system_(MakeConfig()) {
    bank_node_ = &system_.AddNode("bank");
    remote_node_ = &system_.AddNode("remote-branch");
    for (NodeRuntime* node : {bank_node_, remote_node_}) {
      node->RegisterGuardianType(AccountGuardian::kTypeName,
                                 MakeFactory<AccountGuardian>());
      node->RegisterGuardianType(BranchGuardian::kTypeName,
                                 MakeFactory<BranchGuardian>());
      node->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
    }
    auto shell = bank_node_->Create<ShellGuardian>("shell", "teller", {});
    EXPECT_TRUE(shell.ok());
    shell_ = *shell;
  }

  static SystemConfig MakeConfig() {
    SystemConfig config;
    config.seed = 5;
    config.default_link.latency = Micros(120);
    return config;
  }

  AccountGuardian* MakeAccount(NodeRuntime& node, const std::string& owner,
                               int64_t initial) {
    auto account = node.Create<AccountGuardian>(
        AccountGuardian::kTypeName, "acct-" + owner,
        {Value::Str(owner), Value::Int(initial)}, /*persistent=*/true);
    EXPECT_TRUE(account.ok()) << account.status();
    return *account;
  }

  RemoteReply Call(const PortName& to, const std::string& command,
                   ValueList args, int attempts = 1) {
    RemoteCallOptions options;
    options.timeout = Millis(1000);
    options.max_attempts = attempts;
    auto reply =
        RemoteCall(*shell_, to, command, std::move(args), BankReplyType(),
                   options);
    EXPECT_TRUE(reply.ok()) << reply.status();
    return reply.ok() ? *reply : RemoteReply{};
  }

  System system_;
  NodeRuntime* bank_node_ = nullptr;
  NodeRuntime* remote_node_ = nullptr;
  Guardian* shell_ = nullptr;
};

TEST_F(BankTest, DepositWithdrawBalance) {
  AccountGuardian* account = MakeAccount(*bank_node_, "alice", 100);
  const PortName port = account->ProvidedPorts()[0];

  auto reply = Call(port, "deposit", {Value::Int(50), Value::Str("t1")});
  EXPECT_EQ(reply.command, "ok_balance");
  EXPECT_EQ(reply.args[0].int_value(), 150);

  reply = Call(port, "withdraw", {Value::Int(70), Value::Str("t2")});
  EXPECT_EQ(reply.command, "ok_balance");
  EXPECT_EQ(reply.args[0].int_value(), 80);

  reply = Call(port, "withdraw", {Value::Int(1000), Value::Str("t3")});
  EXPECT_EQ(reply.command, "insufficient");

  reply = Call(port, "deposit", {Value::Int(-5), Value::Str("t4")});
  EXPECT_EQ(reply.command, "bad_amount");
}

TEST_F(BankTest, DuplicateTxidAppliesExactlyOnce) {
  AccountGuardian* account = MakeAccount(*bank_node_, "bob", 0);
  const PortName port = account->ProvidedPorts()[0];

  for (int i = 0; i < 3; ++i) {
    auto reply = Call(port, "deposit", {Value::Int(25), Value::Str("same")});
    EXPECT_EQ(reply.command, "ok_balance");
    EXPECT_EQ(reply.args[0].int_value(), 25) << "retry " << i;
  }
  EXPECT_EQ(account->BalanceForTesting(), 25);
}

TEST_F(BankTest, StatementThroughToken) {
  AccountGuardian* account = MakeAccount(*bank_node_, "carol", 10);
  const PortName port = account->ProvidedPorts()[0];
  Call(port, "deposit", {Value::Int(5), Value::Str("d1")});
  Call(port, "withdraw", {Value::Int(3), Value::Str("w1")});

  auto token_reply = Call(port, "statement_token", {});
  ASSERT_EQ(token_reply.command, "the_token");
  const Token token = token_reply.args[0].token_value();

  auto statement = Call(port, "read_statement", {Value::OfToken(token)});
  ASSERT_EQ(statement.command, "statement");
  EXPECT_EQ(statement.args[0].items().size(), 2u);

  // A forged token is rejected.
  Token forged = token;
  forged.handle ^= 0xFF;
  auto rejected = Call(port, "read_statement", {Value::OfToken(forged)});
  EXPECT_EQ(rejected.command, "bad_token");
}

TEST_F(BankTest, AccountRecoversBalanceAfterCrash) {
  AccountGuardian* account = MakeAccount(*remote_node_, "dave", 100);
  const PortName port = account->ProvidedPorts()[0];
  Call(port, "deposit", {Value::Int(40), Value::Str("d1")});
  Call(port, "withdraw", {Value::Int(15), Value::Str("w1")});

  remote_node_->Crash();
  ASSERT_TRUE(remote_node_->Restart().ok());

  auto reply = Call(port, "balance", {}, /*attempts=*/3);
  ASSERT_EQ(reply.command, "balance_is");
  EXPECT_EQ(reply.args[0].int_value(), 125);

  // Tokens sealed by the previous incarnation no longer unseal.
  auto* recovered = dynamic_cast<AccountGuardian*>(
      remote_node_->FindGuardian(port.guardian));
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->BalanceForTesting(), 125);
}

TEST_F(BankTest, TransferMovesMoney) {
  AccountGuardian* src = MakeAccount(*bank_node_, "src", 100);
  AccountGuardian* dst = MakeAccount(*remote_node_, "dst", 10);
  auto branch = bank_node_->Create<BranchGuardian>(
      BranchGuardian::kTypeName, "branch-0",
      {Value::Int(Millis(500).count() * 1000), Value::Int(3)},
      /*persistent=*/true);
  ASSERT_TRUE(branch.ok());

  auto reply = Call((*branch)->ProvidedPorts()[0], "transfer",
                    {Value::OfPort(src->ProvidedPorts()[0]),
                     Value::OfPort(dst->ProvidedPorts()[0]), Value::Int(30),
                     Value::Str("tx-1")});
  EXPECT_EQ(reply.command, "transfer_done");
  EXPECT_EQ(src->BalanceForTesting(), 70);
  EXPECT_EQ(dst->BalanceForTesting(), 40);
}

TEST_F(BankTest, InDoubtTransferCompletesAfterRecovery) {
  AccountGuardian* src = MakeAccount(*bank_node_, "src2", 100);
  AccountGuardian* dst = MakeAccount(*remote_node_, "dst2", 0);
  auto branch = bank_node_->Create<BranchGuardian>(
      BranchGuardian::kTypeName, "branch-1",
      {Value::Int(200000), Value::Int(1)}, /*persistent=*/true);
  ASSERT_TRUE(branch.ok());

  // Cut the branch off from the destination: withdraw succeeds (source is
  // local), deposit cannot be confirmed.
  system_.network().SetPartitioned(bank_node_->id(), remote_node_->id(),
                                   true);
  auto reply = Call((*branch)->ProvidedPorts()[0], "transfer",
                    {Value::OfPort(src->ProvidedPorts()[0]),
                     Value::OfPort(dst->ProvidedPorts()[0]), Value::Int(25),
                     Value::Str("tx-doubt")});
  EXPECT_EQ(reply.command, "transfer_failed");
  EXPECT_EQ(src->BalanceForTesting(), 75);
  EXPECT_EQ(dst->BalanceForTesting(), 0);  // money in flight, not lost

  // Heal the partition and crash/restart the branch's node: the recovery
  // process finishes the in-doubt transfer.
  system_.network().SetPartitioned(bank_node_->id(), remote_node_->id(),
                                   false);
  bank_node_->Crash();
  ASSERT_TRUE(bank_node_->Restart().ok());

  // The source account lives on the same node; it recovered too.
  auto* src_recovered = dynamic_cast<AccountGuardian*>(
      bank_node_->FindGuardian(src->ProvidedPorts()[0].guardian));
  ASSERT_NE(src_recovered, nullptr);

  // Wait for the recovery deposit to land.
  const Deadline deadline(Millis(3000));
  while (dst->BalanceForTesting() != 25 && !deadline.Expired()) {
    std::this_thread::sleep_for(Millis(20));
  }
  EXPECT_EQ(dst->BalanceForTesting(), 25);
  EXPECT_EQ(src_recovered->BalanceForTesting(), 75);
}

}  // namespace
}  // namespace guardians
