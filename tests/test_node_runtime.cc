// Tests of NodeRuntime mechanics: message-id uniqueness, stats accounting,
// guardian destruction, transmit-side errors, and the send primitives'
// message economics (the §3 "can implement the others" construction).
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/guardian/system.h"
#include "src/sendprims/remote_call.h"
#include "src/sendprims/sync_send.h"

namespace guardians {
namespace {

PortType EchoType() {
  return PortType("node_echo",
                  {MessageSig{"echo", {ArgType::Of(TypeTag::kString)},
                              {"echoed"}},
                   MessageSig{"drop", {}, {}}});
}

PortType EchoReply() {
  return PortType("node_echo_reply",
                  {MessageSig{"echoed", {ArgType::Of(TypeTag::kString)},
                              {}}});
}

class Echoer : public Guardian {
 public:
  Status Setup(const ValueList&) override {
    AddPort(EchoType(), 64, /*provided=*/true);
    return OkStatus();
  }
  void Main() override {
    for (;;) {
      auto m = Receive(port(0), Micros::max());
      if (!m.ok()) {
        return;
      }
      if (m->command == "echo" && !m->reply_to.IsNull()) {
        Status st = Send(m->reply_to, "echoed", {m->args[0]});
        (void)st;
      }
    }
  }
};

class NodeRuntimeTest : public ::testing::Test {
 protected:
  NodeRuntimeTest() : system_(MakeConfig()) {
    a_ = &system_.AddNode("a");
    b_ = &system_.AddNode("b");
    a_->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
    b_->RegisterGuardianType("echo", MakeFactory<Echoer>());
    driver_ = *a_->Create<ShellGuardian>("shell", "driver", {});
    echoer_ = *b_->Create<Echoer>("echo", "echoer", {});
    echo_port_ = echoer_->ProvidedPorts()[0];
  }

  static SystemConfig MakeConfig() {
    SystemConfig config;
    config.seed = 333;
    config.default_link.latency = Micros(100);
    return config;
  }

  System system_;
  NodeRuntime* a_ = nullptr;
  NodeRuntime* b_ = nullptr;
  Guardian* driver_ = nullptr;
  Echoer* echoer_ = nullptr;
  PortName echo_port_;
};

TEST_F(NodeRuntimeTest, MessageIdsAreUniqueAcrossNodes) {
  std::set<uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.insert(a_->NextMsgId());
    ids.insert(b_->NextMsgId());
  }
  EXPECT_EQ(ids.size(), 2000u);
}

TEST_F(NodeRuntimeTest, StatsAccountForDeliveriesAndDiscards) {
  ASSERT_TRUE(driver_->Send(echo_port_, "drop", {}).ok());
  system_.network().DrainForTesting();
  EXPECT_EQ(a_->stats().messages_sent, 1u);
  EXPECT_EQ(b_->stats().messages_delivered, 1u);

  PortName missing = echo_port_;
  missing.guardian = 4040;
  ASSERT_TRUE(driver_->Send(missing, "drop", {}).ok());
  system_.network().DrainForTesting();
  EXPECT_EQ(b_->stats().discarded_no_guardian, 1u);

  PortName bad_index = echo_port_;
  bad_index.port_index = 99;
  ASSERT_TRUE(driver_->Send(bad_index, "drop", {}).ok());
  system_.network().DrainForTesting();
  EXPECT_EQ(b_->stats().discarded_no_port, 1u);
}

TEST_F(NodeRuntimeTest, SendToNullPortRejectedLocally) {
  EXPECT_EQ(driver_->Send(PortName{}, "drop", {}).code(),
            Code::kInvalidArgument);
}

TEST_F(NodeRuntimeTest, SendWithUnknownTypeHashRejected) {
  PortName forged = echo_port_;
  forged.type_hash = 0xDEAD;  // not in the guardian-header library
  EXPECT_EQ(driver_->Send(forged, "drop", {}).code(), Code::kTypeError);
}

TEST_F(NodeRuntimeTest, DestroyGuardianStopsItAndFreesTheName) {
  ASSERT_TRUE(b_->DestroyGuardian(echo_port_.guardian).ok());
  EXPECT_EQ(b_->FindGuardian(echo_port_.guardian), nullptr);
  EXPECT_FALSE(b_->DestroyGuardian(echo_port_.guardian).ok());

  RemoteCallOptions options;
  options.timeout = Millis(500);
  auto reply = RemoteCall(*driver_, echo_port_, "echo", {Value::Str("x")},
                          EchoReply(), options);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->command, "failure");
}

TEST_F(NodeRuntimeTest, FailureMessagesCannotLoop) {
  // A failure synthesized for a missing guardian carries no reply port, so
  // a second failure is never produced even if the first is undeliverable.
  PortName missing = echo_port_;
  missing.guardian = 5050;
  Port* reply_port = driver_->AddPort(EchoReply(), 8);
  ASSERT_TRUE(driver_->Send(missing, "echo", {Value::Str("x")},
                            reply_port->name())
                  .ok());
  // Retire the reply port before the failure can arrive.
  driver_->RetirePort(reply_port);
  system_.network().DrainForTesting();
  std::this_thread::sleep_for(Millis(50));
  // Exactly one failure was synthesized (at node b), none at node a.
  EXPECT_EQ(b_->stats().failures_synthesized, 1u);
  EXPECT_EQ(a_->stats().failures_synthesized, 0u);
}

TEST_F(NodeRuntimeTest, PrimordialRejectsMalformedCreateGracefully) {
  // Wrong arg types are caught by the send-side check.
  EXPECT_EQ(driver_
                ->Send(b_->PrimordialPort(), "create_guardian",
                       {Value::Int(1), Value::Int(2), Value::Int(3),
                        Value::Int(4)})
                .code(),
            Code::kTypeError);
}

TEST_F(NodeRuntimeTest, SyncSendUsesExactlyTwoWireMessages) {
  // The §3 construction: synchronization send = no-wait send + ack. The
  // runtime acks at delivery, and the echoer's own Main loop consumes the
  // message (a second receiver here would race it for the same port).
  const uint64_t before = system_.network().stats().packets_sent;
  Status st = SyncSend(*driver_, echo_port_, "drop", {}, Millis(3000));
  EXPECT_TRUE(st.ok()) << st;
  system_.network().DrainForTesting();
  const uint64_t after = system_.network().stats().packets_sent;
  EXPECT_EQ(after - before, 2u);  // message + receipt ack, nothing else
}

TEST_F(NodeRuntimeTest, NoWaitSendUsesExactlyOneWireMessage) {
  const uint64_t before = system_.network().stats().packets_sent;
  ASSERT_TRUE(driver_->Send(echo_port_, "drop", {}).ok());
  system_.network().DrainForTesting();
  EXPECT_EQ(system_.network().stats().packets_sent - before, 1u);
}

TEST_F(NodeRuntimeTest, RemoteCallReportsAttempts) {
  RemoteCallOptions options;
  options.timeout = Millis(500);
  options.max_attempts = 3;
  auto reply = RemoteCall(*driver_, echo_port_, "echo", {Value::Str("hi")},
                          EchoReply(), options);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->attempts, 1);  // clean network: first attempt wins
  EXPECT_EQ(reply->command, "echoed");
}

TEST_F(NodeRuntimeTest, RemoteCallDoesNotRetryLocalTypeErrors) {
  RemoteCallOptions options;
  options.timeout = Millis(500);
  options.max_attempts = 5;
  const uint64_t before = a_->stats().messages_sent;
  auto reply = RemoteCall(*driver_, echo_port_, "echo", {Value::Int(3)},
                          EchoReply(), options);
  EXPECT_EQ(reply.status().code(), Code::kTypeError);
  EXPECT_EQ(a_->stats().messages_sent, before);  // nothing ever sent
}

TEST_F(NodeRuntimeTest, TransmitRegistryKnownness) {
  EXPECT_FALSE(a_->transmit_registry().Knows("complex"));
  EXPECT_TRUE(a_->KnowsGuardianType("shell"));
  EXPECT_FALSE(a_->KnowsGuardianType("echo"));
}

TEST_F(NodeRuntimeTest, PortTypeRegistryIsSystemWide) {
  // The echo header was "compiled into the library" when the port was
  // added at node b; node a can check sends against it.
  EXPECT_TRUE(system_.port_types().Knows(EchoType().hash()));
  auto looked_up = system_.port_types().Lookup(EchoType().hash());
  ASSERT_TRUE(looked_up.ok());
  EXPECT_EQ(looked_up->name(), "node_echo");
  // Conflicting redefinition of the same hash is rejected; identical
  // re-registration is idempotent.
  EXPECT_TRUE(system_.port_types().Register(EchoType()).ok());
}

}  // namespace
}  // namespace guardians
