// End-to-end smoke tests of the guardian runtime: remote guardian creation
// through the primordial guardian, request/response messaging, failure
// synthesis, and crash visibility.
#include <gtest/gtest.h>

#include "src/guardian/node_runtime.h"
#include "src/guardian/system.h"
#include "src/sendprims/remote_call.h"

namespace guardians {
namespace {

PortType EchoPortType() {
  return PortType("echo",
                  {MessageSig{"echo",
                              {ArgType::Of(TypeTag::kString)},
                              {"echoed"}},
                   MessageSig{"quiet", {ArgType::Of(TypeTag::kString)}, {}}});
}

PortType EchoReplyType() {
  return PortType("echo_reply",
                  {MessageSig{"echoed", {ArgType::Of(TypeTag::kString)}, {}}});
}

class EchoGuardian : public Guardian {
 public:
  Status Setup(const ValueList& args) override {
    (void)args;
    AddPort(EchoPortType(), Port::kDefaultCapacity, /*provided=*/true);
    return OkStatus();
  }

  void Main() override {
    for (;;) {
      auto received = Receive(port(0), Micros::max());
      if (!received.ok()) {
        return;
      }
      if (received->command == "echo" && !received->reply_to.IsNull()) {
        Status st = Send(received->reply_to, "echoed",
                         {Value::Str(received->args[0].string_value())});
        ASSERT_TRUE(st.ok()) << st;
      }
    }
  }
};

class CoreSmokeTest : public ::testing::Test {
 protected:
  CoreSmokeTest() : system_(MakeConfig()) {
    node_a_ = &system_.AddNode("a");
    node_b_ = &system_.AddNode("b");
    node_b_->RegisterGuardianType("echo", MakeFactory<EchoGuardian>());
    node_a_->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
    auto driver = node_a_->Create<ShellGuardian>("shell", "driver", {});
    EXPECT_TRUE(driver.ok()) << driver.status();
    driver_ = *driver;
  }

  static SystemConfig MakeConfig() {
    SystemConfig config;
    config.seed = 42;
    config.default_link.latency = Micros(200);
    return config;
  }

  System system_;
  NodeRuntime* node_a_ = nullptr;
  NodeRuntime* node_b_ = nullptr;
  Guardian* driver_ = nullptr;
};

TEST_F(CoreSmokeTest, PingPrimordial) {
  RemoteCallOptions options;
  options.timeout = Millis(500);
  auto reply = RemoteCall(*driver_, node_b_->PrimordialPort(), "ping", {},
                          CreationReplyPortType(), options);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->command, "pong");
}

TEST_F(CoreSmokeTest, RemoteCreateAndEcho) {
  auto ports = CreateGuardianAt(*driver_, node_b_->PrimordialPort(), "echo",
                                "echo-1", {}, /*persistent=*/false,
                                Millis(1000));
  ASSERT_TRUE(ports.ok()) << ports.status();
  ASSERT_EQ(ports->size(), 1u);

  RemoteCallOptions options;
  options.timeout = Millis(500);
  auto reply = RemoteCall(*driver_, (*ports)[0], "echo",
                          {Value::Str("hello, 1979")}, EchoReplyType(),
                          options);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->command, "echoed");
  ASSERT_EQ(reply->args.size(), 1u);
  EXPECT_EQ(reply->args[0].string_value(), "hello, 1979");
}

TEST_F(CoreSmokeTest, UnknownTypeRefused) {
  auto ports = CreateGuardianAt(*driver_, node_b_->PrimordialPort(),
                                "nonexistent", "x", {}, false, Millis(1000));
  ASSERT_FALSE(ports.ok());
  EXPECT_EQ(ports.status().code(), Code::kPermissionDenied);
}

TEST_F(CoreSmokeTest, AdmissionPolicyRefusesRemoteCreation) {
  node_b_->SetAdmissionPolicy(
      [](const std::string&, NodeId) { return false; });
  auto ports = CreateGuardianAt(*driver_, node_b_->PrimordialPort(), "echo",
                                "echo-x", {}, false, Millis(1000));
  ASSERT_FALSE(ports.ok());
  EXPECT_EQ(ports.status().code(), Code::kPermissionDenied);
}

TEST_F(CoreSmokeTest, SendToMissingGuardianSynthesizesFailure) {
  PortName bogus;
  bogus.node = node_b_->id();
  bogus.guardian = 999;
  bogus.port_index = 0;
  bogus.type_hash = EchoPortType().hash();
  // The type must be in the library for the send to pass checking.
  ASSERT_TRUE(system_.port_types().Register(EchoPortType()).ok());

  RemoteCallOptions options;
  options.timeout = Millis(1000);
  auto reply = RemoteCall(*driver_, bogus, "echo", {Value::Str("x")},
                          EchoReplyType(), options);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->command, "failure");
  ASSERT_EQ(reply->args.size(), 1u);
  EXPECT_EQ(reply->args[0].string_value(), "target guardian doesn't exist");
}

TEST_F(CoreSmokeTest, TypeCheckingRejectsBadSend) {
  ASSERT_TRUE(system_.port_types().Register(EchoPortType()).ok());
  PortName somewhere;
  somewhere.node = node_b_->id();
  somewhere.guardian = 2;
  somewhere.port_index = 0;
  somewhere.type_hash = EchoPortType().hash();

  // Wrong arg type.
  Status st = driver_->Send(somewhere, "echo", {Value::Int(7)});
  EXPECT_EQ(st.code(), Code::kTypeError);
  // Unknown command.
  st = driver_->Send(somewhere, "reserve", {Value::Str("x")});
  EXPECT_EQ(st.code(), Code::kTypeError);
  // replyto supplied for a message that declares no replies.
  st = driver_->Send(somewhere, "quiet", {Value::Str("x")},
                     driver_->AddPort(EchoReplyType())->name());
  EXPECT_EQ(st.code(), Code::kTypeError);
}

TEST_F(CoreSmokeTest, CrashMakesNodeUnreachableAndRestartRecovers) {
  node_b_->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  node_b_->Crash();
  EXPECT_FALSE(node_b_->IsUp());

  RemoteCallOptions options;
  options.timeout = Millis(300);
  auto reply = RemoteCall(*driver_, node_b_->PrimordialPort(), "ping", {},
                          CreationReplyPortType(), options);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), Code::kTimeout);

  ASSERT_TRUE(node_b_->Restart().ok());
  auto reply2 = RemoteCall(*driver_, node_b_->PrimordialPort(), "ping", {},
                           CreationReplyPortType(), options);
  ASSERT_TRUE(reply2.ok()) << reply2.status();
  EXPECT_EQ(reply2->command, "pong");
}

TEST_F(CoreSmokeTest, TokensUnsealOnlyByOwner) {
  auto other = node_a_->Create<ShellGuardian>("shell", "other", {});
  ASSERT_TRUE(other.ok());

  Token token = driver_->Seal(1234);
  auto opened = driver_->Unseal(token);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, 1234u);

  auto stolen = (*other)->Unseal(token);
  ASSERT_FALSE(stolen.ok());
  EXPECT_EQ(stolen.status().code(), Code::kBadToken);

  Token forged = token;
  forged.seal ^= 1;
  EXPECT_FALSE(driver_->Unseal(forged).ok());
}

}  // namespace
}  // namespace guardians
