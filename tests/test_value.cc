// Unit tests for the Value universe (src/value).
#include <gtest/gtest.h>

#include <cmath>

#include "src/transmit/complex.h"
#include "src/value/value.h"

namespace guardians {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is(TypeTag::kNull));
  EXPECT_TRUE(v.Equals(Value::Null()));
}

TEST(ValueTest, BoolRoundTrip) {
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_FALSE(Value::Bool(false).bool_value());
  EXPECT_TRUE(Value::Bool(true).AsBool().ok());
  EXPECT_FALSE(Value::Bool(true).AsInt().ok());
}

TEST(ValueTest, IntAccessors) {
  const Value v = Value::Int(-42);
  EXPECT_EQ(v.int_value(), -42);
  ASSERT_TRUE(v.AsInt().ok());
  EXPECT_EQ(*v.AsInt(), -42);
  EXPECT_EQ(v.AsString().status().code(), Code::kTypeError);
}

TEST(ValueTest, RealAccessors) {
  const Value v = Value::Real(3.25);
  EXPECT_DOUBLE_EQ(v.real_value(), 3.25);
  EXPECT_FALSE(v.AsInt().ok());
}

TEST(ValueTest, StringAndBytes) {
  EXPECT_EQ(Value::Str("abc").string_value(), "abc");
  const Bytes raw = {1, 2, 3};
  EXPECT_EQ(Value::Blob(raw).bytes_value(), raw);
  EXPECT_FALSE(Value::Str("x").Equals(Value::Blob(ToBytes("x"))));
}

TEST(ValueTest, ArrayAccess) {
  const Value v = Value::Array({Value::Int(1), Value::Str("two")});
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.at(0).int_value(), 1);
  EXPECT_EQ(v.at(1).string_value(), "two");
}

TEST(ValueTest, RecordFieldLookup) {
  const Value v = Value::Record(
      {{"flight", Value::Int(12)}, {"date", Value::Str("1979-09-01")}});
  ASSERT_TRUE(v.field("flight").ok());
  EXPECT_EQ(v.field("flight")->int_value(), 12);
  EXPECT_TRUE(v.HasField("date"));
  EXPECT_FALSE(v.HasField("nope"));
  EXPECT_EQ(v.field("nope").status().code(), Code::kNotFound);
  EXPECT_EQ(Value::Int(1).field("x").status().code(), Code::kTypeError);
}

TEST(ValueTest, DeepEquality) {
  auto make = [] {
    return Value::Record(
        {{"a", Value::Array({Value::Int(1), Value::Real(2.0)})},
         {"b", Value::Str("x")}});
  };
  EXPECT_TRUE(make().Equals(make()));
  Value different = Value::Record(
      {{"a", Value::Array({Value::Int(1), Value::Real(2.5)})},
       {"b", Value::Str("x")}});
  EXPECT_FALSE(make().Equals(different));
}

TEST(ValueTest, RecordEqualityIsOrderSensitive) {
  const Value ab = Value::Record({{"a", Value::Int(1)}, {"b", Value::Int(2)}});
  const Value ba = Value::Record({{"b", Value::Int(2)}, {"a", Value::Int(1)}});
  EXPECT_FALSE(ab.Equals(ba));  // field order is part of the record's value
}

TEST(ValueTest, PortNameValue) {
  PortName pn;
  pn.node = 3;
  pn.guardian = 7;
  pn.port_index = 1;
  pn.type_hash = 99;
  const Value v = Value::OfPort(pn);
  EXPECT_TRUE(v.is(TypeTag::kPortName));
  EXPECT_EQ(v.port_value(), pn);
  // type_hash is not part of identity.
  PortName same = pn;
  same.type_hash = 1;
  EXPECT_TRUE(v.Equals(Value::OfPort(same)));
}

TEST(ValueTest, TokenValue) {
  Token t{5, 123, 456};
  const Value v = Value::OfToken(t);
  EXPECT_TRUE(v.is(TypeTag::kToken));
  EXPECT_EQ(v.token_value(), t);
  Token other{5, 123, 457};
  EXPECT_FALSE(v.Equals(Value::OfToken(other)));
}

TEST(ValueTest, AbstractEqualityCrossesRepresentations) {
  const Value rect = Value::Abstract(MakeRectComplex(1.0, 1.0));
  const Value polar = Value::Abstract(MakePolarComplex(
      std::sqrt(2.0), std::atan2(1.0, 1.0)));
  EXPECT_TRUE(rect.Equals(polar));  // same abstract value, different reps
  EXPECT_FALSE(rect.Equals(Value::Abstract(MakeRectComplex(1.0, 2.0))));
}

TEST(ValueTest, ToStringRendersNestedStructure) {
  const Value v = Value::Record(
      {{"n", Value::Int(2)}, {"xs", Value::Array({Value::Bool(true)})}});
  EXPECT_EQ(v.ToString(), "{n: 2, xs: [true]}");
}

TEST(ValueTest, ApproxSizeGrowsWithContent) {
  EXPECT_LT(Value::Str("a").ApproxSize(), Value::Str("aaaa....").ApproxSize());
  const Value small = Value::Array({Value::Int(1)});
  const Value big = Value::Array({Value::Int(1), Value::Int(2),
                                  Value::Str("padding")});
  EXPECT_LT(small.ApproxSize(), big.ApproxSize());
}

TEST(ValueTest, CrossTagEqualityIsFalse) {
  EXPECT_FALSE(Value::Int(0).Equals(Value::Real(0.0)));
  EXPECT_FALSE(Value::Null().Equals(Value::Bool(false)));
  EXPECT_FALSE(Value::Array({}).Equals(Value::Record({})));
}

TEST(TypeTagTest, NamesAreStable) {
  EXPECT_EQ(TypeTagName(TypeTag::kInt), "int");
  EXPECT_EQ(TypeTagName(TypeTag::kPortName), "port");
  EXPECT_EQ(TypeTagName(TypeTag::kAbstract), "abstract");
}

TEST(PortNameTest, NullAndToString) {
  PortName null_port;
  EXPECT_TRUE(null_port.IsNull());
  PortName p;
  p.node = 2;
  p.guardian = 5;
  p.port_index = 1;
  EXPECT_FALSE(p.IsNull());
  EXPECT_EQ(p.ToString(), "port(n2/g5.1)");
}

TEST(PortNameTest, HashDistinguishesComponents) {
  PortNameHash hash;
  PortName a;
  a.node = 1;
  a.guardian = 2;
  a.port_index = 3;
  PortName b = a;
  b.port_index = 4;
  EXPECT_NE(hash(a), hash(b));
}

}  // namespace
}  // namespace guardians
