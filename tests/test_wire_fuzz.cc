// Fuzz-style property tests of the envelope decoder (which faces the
// network and must survive anything) and of abstract values nested inside
// containers.
#include <gtest/gtest.h>

#include "src/common/buffer.h"
#include "src/common/rng.h"
#include "src/transmit/assoc_memory.h"
#include "src/transmit/complex.h"
#include "src/transmit/registry.h"
#include "src/wire/envelope.h"

namespace guardians {
namespace {

Envelope SampleEnvelope() {
  Envelope env;
  env.msg_id = 77;
  env.src_node = 1;
  env.target = PortName{2, 3, 0, 0xABCD};
  env.reply_to = PortName{1, 9, 2, 0x1111};
  env.command = "reserve";
  env.args = {Value::Str("smith"), Value::Int(12),
              Value::Array({Value::Bool(true), Value::Real(2.5)}),
              Value::Record({{"d", Value::Str("1979-09-01")}})};
  return env;
}

class EnvelopeFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnvelopeFuzz, SingleByteMutationsNeverCrashOrHang) {
  auto bytes = EncodeEnvelope(SampleEnvelope(), DefaultLimits());
  ASSERT_TRUE(bytes.ok());
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    Bytes mutated = *bytes;
    const size_t at = rng.NextBelow(mutated.size());
    mutated[at] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
    auto out = DecodeEnvelope(mutated, DefaultLimits(), nullptr);
    // Either a clean error or a structurally valid envelope; never UB.
    if (out.ok()) {
      EXPECT_LE(out->args.size(), 1000u);
    }
  }
}

TEST_P(EnvelopeFuzz, TruncationsNeverCrashOrHang) {
  auto bytes = EncodeEnvelope(SampleEnvelope(), DefaultLimits());
  ASSERT_TRUE(bytes.ok());
  for (size_t keep = 0; keep < bytes->size(); ++keep) {
    Bytes cut(bytes->begin(), bytes->begin() + static_cast<long>(keep));
    auto out = DecodeEnvelope(cut, DefaultLimits(), nullptr);
    EXPECT_FALSE(out.ok());  // a strict prefix can never be a full envelope
  }
}

TEST_P(EnvelopeFuzz, RandomGarbageIsRejected) {
  Rng rng(GetParam() ^ 0x9999);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes garbage(rng.NextBelow(200));
    for (auto& byte : garbage) {
      byte = static_cast<uint8_t>(rng.NextBelow(256));
    }
    auto out = DecodeEnvelope(garbage, DefaultLimits(), nullptr);
    // The magic byte rejects almost everything instantly; anything that
    // sneaks past must still fail structurally. (Probability of a random
    // 200-byte buffer being a valid envelope is negligible.)
    EXPECT_FALSE(out.ok());
  }
}

TEST_P(EnvelopeFuzz, SliceViewDecodeMatchesOwningDecode) {
  // The decoder is a non-owning view over (pointer, length). Decode the
  // same envelope through a BufferSlice carved at a random offset of a
  // padded buffer and through the owning vector: results must agree, and
  // the view decode must never read outside its window (the padding is
  // garbage on both sides).
  auto bytes = EncodeEnvelope(SampleEnvelope(), DefaultLimits());
  ASSERT_TRUE(bytes.ok());
  Rng rng(GetParam() ^ 0x511CE);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t lead = rng.NextBelow(64);
    const size_t tail = rng.NextBelow(64);
    Bytes padded;
    padded.reserve(lead + bytes->size() + tail);
    for (size_t i = 0; i < lead; ++i) {
      padded.push_back(static_cast<uint8_t>(rng.NextBelow(256)));
    }
    padded.insert(padded.end(), bytes->begin(), bytes->end());
    for (size_t i = 0; i < tail; ++i) {
      padded.push_back(static_cast<uint8_t>(rng.NextBelow(256)));
    }
    const BufferSlice whole(std::move(padded));
    const BufferSlice view = whole.Sub(lead, bytes->size());
    ASSERT_TRUE(view.SharesBufferWith(whole));  // a view, not a copy
    auto from_view = DecodeEnvelope(view, DefaultLimits(), nullptr);
    ASSERT_TRUE(from_view.ok()) << from_view.status();
    EXPECT_EQ(from_view->msg_id, 77u);
    EXPECT_EQ(from_view->command, "reserve");
    ASSERT_EQ(from_view->args.size(), 4u);
    EXPECT_EQ(from_view->args[0].string_value(), "smith");
    EXPECT_EQ(from_view->args[1].int_value(), 12);
  }
}

TEST_P(EnvelopeFuzz, RandomSubSlicesNeverCrashOrOverread) {
  // Arbitrary (offset, length) windows over a valid envelope: almost all
  // are invalid, every one must fail (or succeed) cleanly within bounds.
  auto bytes = EncodeEnvelope(SampleEnvelope(), DefaultLimits());
  ASSERT_TRUE(bytes.ok());
  const BufferSlice whole(std::move(*bytes));
  Rng rng(GetParam() ^ 0xF0F0);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t off = rng.NextBelow(whole.size() + 1);
    const size_t len = rng.NextBelow(whole.size() + 1);
    const BufferSlice view = whole.Sub(off, len);
    auto out = DecodeEnvelope(view, DefaultLimits(), nullptr);
    if (off != 0 || view.size() != whole.size()) {
      EXPECT_FALSE(out.ok());  // only the exact window is a valid envelope
    } else {
      EXPECT_TRUE(out.ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnvelopeFuzz, ::testing::Values(2, 71, 901));

TEST(NestedAbstractTest, AbstractValuesInsideContainersRoundTrip) {
  TransmitRegistry registry;
  ASSERT_TRUE(registry.Register(kComplexTypeName, PolarComplexDecoder()).ok());
  ASSERT_TRUE(
      registry.Register(kAssocMemoryTypeName, TreeAssocMemoryDecoder()).ok());

  auto memory = MakeHashAssocMemory();
  memory->AddItem("k", "v");
  const Value nested = Value::Record(
      {{"zs", Value::Array({Value::Abstract(MakeRectComplex(1, 2)),
                            Value::Abstract(MakeRectComplex(3, 4))})},
       {"index", Value::Abstract(memory)}});

  Envelope env;
  env.msg_id = 1;
  env.src_node = 1;
  env.target = PortName{2, 2, 0, 1};
  env.command = "carry";
  env.args = {nested};
  auto bytes = EncodeEnvelope(env, DefaultLimits());
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  auto back = DecodeEnvelope(*bytes, DefaultLimits(), registry.AsDecodeFn());
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->args.size(), 1u);
  EXPECT_TRUE(nested.Equals(back->args[0]));
  // The nested complex numbers arrived in the receiving node's (polar)
  // representation.
  auto zs = back->args[0].field("zs");
  ASSERT_TRUE(zs.ok());
  EXPECT_NE(std::dynamic_pointer_cast<const PolarComplex>(
                zs->at(0).abstract_value()),
            nullptr);
}

TEST(NestedAbstractTest, OneUndecodableElementPoisonsTheWholeMessage) {
  TransmitRegistry registry;  // knows complex but NOT assoc_memory
  ASSERT_TRUE(registry.Register(kComplexTypeName, RectComplexDecoder()).ok());
  auto memory = MakeHashAssocMemory();
  memory->AddItem("k", "v");
  Envelope env;
  env.msg_id = 2;
  env.src_node = 1;
  env.target = PortName{2, 2, 0, 1};
  env.command = "carry";
  env.args = {Value::Array({Value::Abstract(MakeRectComplex(1, 2)),
                            Value::Abstract(memory)})};
  auto bytes = EncodeEnvelope(env, DefaultLimits());
  ASSERT_TRUE(bytes.ok());
  auto back = DecodeEnvelope(*bytes, DefaultLimits(), registry.AsDecodeFn());
  // "Entirely and correctly received" is all-or-nothing.
  EXPECT_EQ(back.status().code(), Code::kDecodeError);
}

}  // namespace
}  // namespace guardians
