// Credit-based flow control (DESIGN.md §11): the AIMD congestion window's
// open/close/reopen mechanics in isolation, the end-to-end nack/credit
// loop through a System, determinism of credit-affected counts across
// delivery_shards, and the converged-window saturation property — a slow
// receiver stops causing deliver.drop.port_full once the window tracks its
// capacity.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/guardian/system.h"
#include "src/net/flow.h"
#include "src/sendprims/reliable_send.h"
#include "src/sendprims/sync_send.h"

namespace guardians {
namespace {

PortName P(uint32_t node, uint64_t guardian, uint32_t index) {
  PortName p;
  p.node = node;
  p.guardian = guardian;
  p.port_index = index;
  return p;
}

PortType FlowPortType() {
  return PortType("flow_put",
                  {MessageSig{"put", {ArgType::Of(TypeTag::kString)}, {}}});
}

// ---------------------------------------------------------------------------
// FlowController unit tests (no system, no wire)
// ---------------------------------------------------------------------------

TEST(FlowControllerTest, WindowHalvesOnNackAndGrowsOnCredit) {
  FlowControlConfig config;
  config.initial_window = 8.0;
  FlowController fc(config, nullptr, nullptr, 1);
  const PortName p = P(2, 5, 0);

  EXPECT_DOUBLE_EQ(fc.WindowFor(p), 8.0);
  fc.OnFullNack(p, 16, 16);
  EXPECT_DOUBLE_EQ(fc.WindowFor(p), 4.0);  // multiplicative decrease
  fc.OnFullNack(p, 16, 16);
  fc.OnFullNack(p, 16, 16);
  fc.OnFullNack(p, 16, 16);
  EXPECT_DOUBLE_EQ(fc.WindowFor(p), 1.0);  // floored at min_window

  fc.OnCredit(p, 0, 16);
  const double grown = fc.WindowFor(p);
  EXPECT_GT(grown, 1.0);  // additive increase
  EXPECT_LT(grown, 3.0);  // ...but only additive, not a jump

  // Sustained credit converges on the advertised capacity and stays there.
  for (int i = 0; i < 10000; ++i) {
    fc.OnCredit(p, 0, 16);
  }
  EXPECT_DOUBLE_EQ(fc.WindowFor(p), 16.0);

  // Windows are per destination port: a sibling port is untouched.
  EXPECT_DOUBLE_EQ(fc.WindowFor(P(2, 5, 1)), 8.0);
}

TEST(FlowControllerTest, AcquireTracksInFlightAndSlotReleasesOnDrop) {
  FlowControlConfig config;
  config.initial_window = 2.0;
  FlowController fc(config, nullptr, nullptr, 1);
  const PortName p = P(3, 1, 0);
  {
    FlowSlot s1 = fc.Acquire(p, Deadline(Micros(0)));
    FlowSlot s2 = fc.Acquire(p, Deadline(Micros(0)));
    EXPECT_TRUE(s1.ok());
    EXPECT_TRUE(s2.ok());
    EXPECT_EQ(fc.InFlightFor(p), 2u);
    // The window is exhausted and the deadline already passed: deferred
    // away without sending.
    FlowSlot s3 = fc.Acquire(p, Deadline(Micros(0)));
    EXPECT_FALSE(s3.ok());
  }
  EXPECT_EQ(fc.InFlightFor(p), 0u);  // RAII released both slots
}

TEST(FlowControllerTest, BlockedAcquireWakesWhenWindowReopens) {
  FlowControlConfig config;
  config.initial_window = 1.0;
  FlowController fc(config, nullptr, nullptr, 1);
  const PortName p = P(3, 1, 0);

  FlowSlot held = fc.Acquire(p, Deadline(Micros(0)));
  ASSERT_TRUE(held.ok());
  std::atomic<bool> got{false};
  std::thread waiter([&fc, &p, &got] {
    FlowSlot s = fc.Acquire(p, Deadline(Millis(5000)));
    got.store(s.ok());
  });
  std::this_thread::sleep_for(Millis(20));
  held.Release();  // frees the only slot; the waiter must wake and claim it
  waiter.join();
  EXPECT_TRUE(got.load());
  EXPECT_EQ(fc.InFlightFor(p), 0u);
}

TEST(FlowControllerTest, CongestedHoldClosesThenReopens) {
  FlowControlConfig config;
  config.initial_window = 4.0;
  config.reopen_initial = Millis(50);
  config.reopen_max = Millis(100);
  FlowController fc(config, nullptr, nullptr, 1);
  const PortName p = P(2, 1, 0);

  // A full nack closes the destination even though the window has room.
  fc.OnFullNack(p, 4, 4);
  EXPECT_EQ(fc.InFlightFor(p), 0u);
  FlowSlot during_hold = fc.Acquire(p, Deadline(Millis(5)));
  EXPECT_FALSE(during_hold.ok());

  // Any credit clears the hold immediately.
  fc.OnCredit(p, 0, 4);
  FlowSlot after_credit = fc.Acquire(p, Deadline(Millis(5)));
  EXPECT_TRUE(after_credit.ok());
  after_credit.Release();

  // With no credit, the hold simply elapses.
  fc.OnFullNack(p, 4, 4);
  const TimePoint start = Now();
  FlowSlot after_hold = fc.Acquire(p, Deadline(Millis(5000)));
  EXPECT_TRUE(after_hold.ok());
  EXPECT_GE(ToMicros(Now() - start), 40000);  // waited out most of 50ms
}

TEST(FlowControllerTest, DisabledControllerGrantsWithoutAccounting) {
  FlowControlConfig config;
  config.enabled = false;
  FlowController fc(config, nullptr, nullptr, 1);
  const PortName p = P(9, 9, 0);
  FlowSlot s = fc.Acquire(p, Deadline(Micros(0)));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(fc.InFlightFor(p), 0u);
  fc.OnFullNack(p, 4, 4);
  EXPECT_DOUBLE_EQ(fc.WindowFor(p), config.initial_window);  // inert
}

TEST(FlowControllerTest, ShutdownWakesWaitersAndResetRestoresAccounting) {
  FlowControlConfig config;
  config.initial_window = 1.0;
  FlowController fc(config, nullptr, nullptr, 1);
  const PortName p = P(4, 1, 0);

  FlowSlot held = fc.Acquire(p, Deadline(Micros(0)));
  ASSERT_TRUE(held.ok());
  std::atomic<bool> got{false};
  std::thread waiter([&fc, &p, &got] {
    FlowSlot s = fc.Acquire(p, Deadline(Millis(10000)));
    got.store(s.ok());  // granted unaccounted: the node is going down
  });
  std::this_thread::sleep_for(Millis(20));
  fc.Shutdown();
  waiter.join();
  EXPECT_TRUE(got.load());

  // Restart: fresh windows, accounting back on; the pre-reset slot's
  // release is recognised as stale (epoch) and cannot underflow.
  fc.Reset();
  held.Release();
  EXPECT_EQ(fc.InFlightFor(p), 0u);
  FlowSlot s = fc.Acquire(p, Deadline(Micros(0)));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(fc.InFlightFor(p), 1u);
}

// ---------------------------------------------------------------------------
// End-to-end: the nack/credit loop through a System
// ---------------------------------------------------------------------------

TEST(FlowSystemTest, FullPortNackFailsFastHalvesWindowAndCreditReopens) {
  SystemConfig config;
  config.seed = 21;
  config.default_link.latency = Micros(50);
  System system(config);
  NodeRuntime& a = system.AddNode("a");
  NodeRuntime& b = system.AddNode("b");
  for (auto* node : {&a, &b}) {
    node->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  }
  Guardian* sender = *a.Create<ShellGuardian>("shell", "sender", {});
  Guardian* receiver = *b.Create<ShellGuardian>("shell", "receiver", {});
  Port* target = receiver->AddPort(FlowPortType(), /*capacity=*/1);

  // Fill the port (nobody is receiving yet).
  ASSERT_TRUE(sender->Send(target->name(), "put", {Value::Str("fill")}).ok());
  system.network().DrainForTesting();

  // The synchronized send is shed at the full port; the nack reaches the
  // ack port well before the 2s ack timeout and halves the window.
  const double window_before = a.flow().WindowFor(target->name());
  const TimePoint start = Now();
  Status st =
      SyncSend(*sender, target->name(), "put", {Value::Str("x")}, Millis(2000));
  const int64_t elapsed_us = ToMicros(Now() - start);
  EXPECT_EQ(st.code(), Code::kPortFull) << st;
  EXPECT_LT(elapsed_us, 1000000) << "nack should beat the ack timeout";
  EXPECT_LT(a.flow().WindowFor(target->name()), window_before);
  EXPECT_GE(system.metrics().CounterValue("flow.full_nacks"), 1u);
  EXPECT_EQ(system.metrics().CounterValue("sendprims.sync.full_nacks"), 1u);

  // A receiver starts draining: the retry waits out the congested hold,
  // lands, and its receipt ack carries credit.
  std::thread drain([receiver, target] {
    for (int i = 0; i < 2; ++i) {
      (void)receiver->Receive(target, Millis(5000));
    }
  });
  Status retry =
      SyncSend(*sender, target->name(), "put", {Value::Str("x")}, Millis(5000));
  drain.join();
  EXPECT_TRUE(retry.ok()) << retry;
  EXPECT_GE(system.metrics().CounterValue("flow.credits_granted"), 1u);
  // The credit also learned the receiver's capacity: the window is clamped
  // to the 1-slot port, so the sender can never again overrun it.
  EXPECT_DOUBLE_EQ(a.flow().WindowFor(target->name()), 1.0);
}

TEST(FlowSystemTest, ReliableSendRidesNacksWithoutBlindBackoff) {
  SystemConfig config;
  config.seed = 23;
  config.default_link.latency = Micros(50);
  System system(config);
  NodeRuntime& a = system.AddNode("a");
  NodeRuntime& b = system.AddNode("b");
  for (auto* node : {&a, &b}) {
    node->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  }
  Guardian* sender = *a.Create<ShellGuardian>("shell", "sender", {});
  Guardian* receiver = *b.Create<ShellGuardian>("shell", "receiver", {});
  Port* target = receiver->AddPort(FlowPortType(), /*capacity=*/1);

  ASSERT_TRUE(sender->Send(target->name(), "put", {Value::Str("fill")}).ok());
  system.network().DrainForTesting();

  // The receiver frees the slot only after 20ms: early attempts are nacked
  // and paced by the congested hold, not by the (huge) blind backoff.
  std::thread drain([receiver, target] {
    std::this_thread::sleep_for(Millis(20));
    for (int i = 0; i < 2; ++i) {
      (void)receiver->Receive(target, Millis(5000));
    }
  });

  ReliableSendOptions options;
  options.ack_timeout = Millis(1000);
  options.max_attempts = 50;
  options.initial_backoff = Millis(250);  // would dwarf the test if used
  options.jitter = 0.0;
  auto result =
      ReliableSend(*sender, target->name(), "put", {Value::Str("x")}, options);
  drain.join();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(system.metrics().CounterValue("sendprims.reliable.full_nacks"),
            1u);
  // No attempt timed out, so the blind backoff never fired.
  EXPECT_EQ(system.metrics().CounterValue("sendprims.reliable.timeouts"), 0u);
  EXPECT_EQ(
      system.metrics().histogram("sendprims.reliable.backoff_us")->count(),
      0u);
  EXPECT_EQ(result->total_backoff.count(), 0);
}

// ---------------------------------------------------------------------------
// Shedding the shed-notice itself: when even the control headroom cannot
// admit an fc_full nack, the event is loud (flow.nacks_shed) and the
// sender degrades to the plain ack-timeout path instead of livelocking
// ---------------------------------------------------------------------------

TEST(FlowSystemTest, ShedNackIsCountedAndSenderDegradesToTimeout) {
  SystemConfig config;
  config.seed = 41;
  config.default_link.latency = Micros(50);
  System system(config);
  NodeRuntime& a = system.AddNode("a");
  NodeRuntime& b = system.AddNode("b");
  for (auto* node : {&a, &b}) {
    node->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  }
  Guardian* sender = *a.Create<ShellGuardian>("shell", "sender", {});
  Guardian* receiver = *b.Create<ShellGuardian>("shell", "receiver", {});
  Port* target = receiver->AddPort(FlowPortType(), /*capacity=*/1);

  // Fill the data port (nobody drains it).
  ASSERT_TRUE(sender->Send(target->name(), "put", {Value::Str("fill")}).ok());

  // Stuff the sender's ack port solid — capacity plus the control headroom
  // the returning nack would otherwise ride in on.
  Port* ack_port = sender->AddPort(AckPortType(), /*capacity=*/1);
  const size_t solid = 1 + Port::kControlHeadroom;
  for (size_t i = 0; i < solid; ++i) {
    ASSERT_TRUE(
        receiver->Send(ack_port->name(), "ack", {Value::Str("junk")}).ok());
  }
  system.network().DrainForTesting();
  ASSERT_EQ(ack_port->depth(), solid);

  // The send is shed at the full target; its fc_full nack comes back to
  // the jammed ack port and is shed in turn. Before this PR that second
  // shed vanished into the generic full-port counters.
  auto sent = sender->SendFull(target->name(), "put", {Value::Str("x")},
                               PortName{}, ack_port->name(), 0);
  ASSERT_TRUE(sent.ok());
  system.network().DrainForTesting();
  EXPECT_GE(system.metrics().CounterValue("flow.nacks_shed"), 1u);
  // The flow controller still learned (fc fields are consumed on the
  // delivery path, before the port push): the hold/window reacted. Only
  // the *waiting primitive* lost its wake-up message.
  EXPECT_GE(system.metrics().CounterValue("flow.full_nacks"), 1u);

  // Degradation, not livelock: the waiter sees junk acks but never the
  // nack, falls through to its deadline, and returns in bounded time —
  // the pre-§11 timeout path.
  const TimePoint start = Now();
  const Deadline deadline(Millis(100));
  Status last = OkStatus();
  for (;;) {
    auto got = sender->Receive(ack_port, deadline.Remaining());
    if (!got.ok()) {
      last = got.status();
      break;
    }
    EXPECT_NE(got->command, kFailureCommand) << "the nack was shed";
  }
  EXPECT_EQ(last.code(), Code::kTimeout);
  EXPECT_LT(ToMicros(Now() - start), 5'000'000) << "waiter must not livelock";
}

// ---------------------------------------------------------------------------
// Determinism: credit decisions must not perturb seed-determinism at any
// delivery_shards count (the PR 2 / PR 4 discipline)
// ---------------------------------------------------------------------------

TEST(FlowSystemTest, CountsBitIdenticalAcrossDeliveryShards) {
  struct Counts {
    NetworkStats net;
    uint64_t suppressed = 0;
    uint64_t delivered = 0;
    uint64_t port_full = 0;
    uint64_t credits = 0;
  };
  auto run = [](size_t shards) {
    SystemConfig config;
    config.seed = 31;
    config.delivery_shards = shards;
    config.default_link.latency = Micros(30);
    config.default_link.jitter = Micros(10);
    config.default_link.drop_prob = 0.05;
    config.default_link.dup_prob = 0.02;
    System system(config);
    NodeRuntime& a = system.AddNode("a");
    NodeRuntime& b = system.AddNode("b");
    for (auto* node : {&a, &b}) {
      node->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
    }
    Guardian* sender = *a.Create<ShellGuardian>("shell", "sender", {});
    Guardian* receiver = *b.Create<ShellGuardian>("shell", "receiver", {});
    // Passive receiver with room for everything: the only loss/dup rolls
    // are the wire's, all decided at Send() in global send order.
    Port* target = receiver->AddPort(FlowPortType(), /*capacity=*/1024);
    for (int i = 0; i < 400; ++i) {
      const uint64_t seq = a.NextDedupSeq();
      auto sent =
          sender->SendFull(target->name(), "put",
                           {Value::Str("m" + std::to_string(i))}, PortName{},
                           PortName{}, seq);
      EXPECT_TRUE(sent.ok());
    }
    system.network().DrainForTesting();
    Counts c;
    c.net = system.network().stats();
    c.suppressed = system.metrics().CounterValue("deliver.dup.suppressed");
    c.delivered = system.metrics().CounterValue("deliver.delivered");
    c.port_full = system.metrics().CounterValue("deliver.drop.port_full");
    c.credits = system.metrics().CounterValue("flow.credits_granted");
    return c;
  };

  const Counts one = run(1);
  EXPECT_GT(one.net.packets_dropped, 0u);     // the dice really rolled
  EXPECT_GT(one.net.packets_duplicated, 0u);
  EXPECT_EQ(one.port_full, 0u);
  for (size_t shards : {4u}) {
    const Counts many = run(shards);
    EXPECT_EQ(many.net.packets_sent, one.net.packets_sent) << shards;
    EXPECT_EQ(many.net.packets_dropped, one.net.packets_dropped) << shards;
    EXPECT_EQ(many.net.packets_duplicated, one.net.packets_duplicated)
        << shards;
    EXPECT_EQ(many.net.packets_delivered, one.net.packets_delivered)
        << shards;
    EXPECT_EQ(many.suppressed, one.suppressed) << shards;
    EXPECT_EQ(many.delivered, one.delivered) << shards;
    EXPECT_EQ(many.port_full, one.port_full) << shards;
    EXPECT_EQ(many.credits, one.credits) << shards;
  }
}

// ---------------------------------------------------------------------------
// Saturation: once the window converges, a slow receiver never causes
// port_full drops (the tsan-labeled concurrency test)
// ---------------------------------------------------------------------------

TEST(FlowSystemTest, SlowReceiverNeverDropsOnceWindowConverges) {
  SystemConfig config;
  config.seed = 37;
  config.default_link.latency = Micros(20);
  config.flow.initial_window = 1.0;  // one slot, so deferral really happens
  System system(config);
  NodeRuntime& a = system.AddNode("senders");
  NodeRuntime& b = system.AddNode("sink");
  for (auto* node : {&a, &b}) {
    node->RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  }
  Guardian* sender = *a.Create<ShellGuardian>("shell", "sender", {});
  Guardian* receiver = *b.Create<ShellGuardian>("shell", "sink", {});
  Port* target = receiver->AddPort(FlowPortType(), /*capacity=*/16);

  std::atomic<int> consumed{0};
  std::atomic<bool> stop{false};
  std::thread slow([receiver, target, &consumed, &stop] {
    while (!stop.load()) {
      auto got = receiver->Receive(target, Millis(500));
      if (got.ok()) {
        ++consumed;
        // The slow part: the service time, not the dequeue.
        std::this_thread::sleep_for(Micros(200));
      }
    }
  });

  // Invariant under test: acks (and so credits) are sent at dequeue, so a
  // message in the queue always has its sender's window slot held —
  // depth <= in_flight <= window <= advertised capacity. With generous ack
  // timeouts, nothing is shed no matter how hard the senders push.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::atomic<int> failures{0};
  std::atomic<bool> go{false};  // start barrier: all senders race the
                                // 1-slot window together
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([sender, target, &failures, &go] {
      while (!go.load()) {
        std::this_thread::yield();
      }
      ReliableSendOptions options;
      options.ack_timeout = Millis(5000);
      options.max_attempts = 3;
      for (int i = 0; i < kPerThread; ++i) {
        auto result =
            ReliableSend(*sender, target->name(), "put", {Value::Str("m")},
                         options);
        if (!result.ok()) {
          ++failures;
        }
      }
    });
  }
  go.store(true);
  for (auto& t : threads) {
    t.join();
  }
  system.network().DrainForTesting();
  while (consumed.load() < kThreads * kPerThread) {
    std::this_thread::sleep_for(Millis(1));
  }
  stop.store(true);
  slow.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(consumed.load(), kThreads * kPerThread);
  EXPECT_EQ(system.metrics().CounterValue("deliver.drop.port_full"), 0u);
  EXPECT_GE(system.metrics().CounterValue("flow.credits_granted"), 1u);
  EXPECT_GE(system.metrics().CounterValue("flow.sends_deferred"), 1u)
      << "the window never closed: the test exercised nothing";
}

}  // namespace
}  // namespace guardians
