// Edge cases of the Figure 5 transaction process, the dispatch failure
// clause, and a whole-system run under the paper's 24-bit integer limits.
#include <gtest/gtest.h>

#include <thread>

#include "src/airline/airline_system.h"
#include "src/airline/workload.h"
#include "src/guardian/dispatch.h"
#include "src/sendprims/remote_call.h"

namespace guardians {
namespace {

TEST(Fig5Test, IdleTransactionIsAbandoned) {
  SystemConfig config;
  config.seed = 61;
  config.default_link.latency = Micros(100);
  System system(config);
  AirlineParams params;
  params.regions = 1;
  params.flights_per_region = 1;
  params.idle_timeout = Millis(80);  // very impatient U_j
  auto topology = BuildAirline(system, params);
  ASSERT_TRUE(topology.ok());
  NodeRuntime& node = system.node(topology->region_nodes[0]);
  Guardian* shell = *node.Create<ShellGuardian>("shell", "clerk", {});

  Clerk clerk(*shell, "dawdler");
  RemoteCallOptions options;
  options.timeout = Millis(1000);
  auto started = RemoteCall(
      *shell, topology->user_ports[0], "start_transaction",
      {Value::Str("dawdler"), Value::OfPort(clerk.term_port())},
      TransStartedReplyType(), options);
  ASSERT_TRUE(started.ok());
  const PortName trans = started->args[0].port_value();

  // Dawdle past the idle timeout: the transaction process gives up and
  // retires its port ("we have chosen to forget transactions").
  std::this_thread::sleep_for(Millis(300));
  ASSERT_TRUE(shell->Send(trans, "done", {}).ok());
  // No trans_done ever arrives on the terminal (the Clerk's term port is
  // the shell's port 0).
  auto nothing = shell->Receive(shell->port(0), Millis(200));
  EXPECT_EQ(nothing.status().code(), Code::kTimeout);

  EXPECT_EQ(topology->users[0]->transactions_started(), 1u);
  EXPECT_EQ(topology->users[0]->transactions_completed(), 0u);
}

TEST(Fig5Test, UndoAllThenDoneCancelsEverything) {
  SystemConfig config;
  config.seed = 62;
  config.default_link.latency = Micros(100);
  System system(config);
  AirlineParams params;
  params.regions = 1;
  params.flights_per_region = 2;
  params.capacity = 5;
  auto topology = BuildAirline(system, params);
  ASSERT_TRUE(topology.ok());
  NodeRuntime& node = system.node(topology->region_nodes[0]);
  Guardian* shell = *node.Create<ShellGuardian>("shell", "clerk", {});

  Clerk clerk(*shell, "regretful");
  // Reserve two flights, then undo everything.
  std::vector<ClerkOp> ops = {
      {ClerkOp::Kind::kReserve, FlightNo(0, 0), "1979-09-05"},
      {ClerkOp::Kind::kReserve, FlightNo(0, 1), "1979-09-06"},
      {ClerkOp::Kind::kUndoLast, 0, ""},
      {ClerkOp::Kind::kUndoLast, 0, ""},
      {ClerkOp::Kind::kDone, 0, ""},
  };
  TransSummary summary =
      clerk.RunTransaction(topology->user_ports[0], ops, Millis(2000));
  EXPECT_TRUE(summary.completed);
  EXPECT_EQ(summary.reserves_standing, 0);

  // Both seats were given back.
  RemoteCallOptions options;
  options.timeout = Millis(1000);
  for (int f = 0; f < 2; ++f) {
    auto info = RemoteCall(
        *shell, topology->regional_ports[0], "list_passengers",
        {Value::Int(FlightNo(0, f)),
         Value::Str(f == 0 ? "1979-09-05" : "1979-09-06"),
         Value::Str("manager")},
        ReservationReplyType(), options);
    ASSERT_TRUE(info.ok());
    ASSERT_EQ(info->command, "info");
    EXPECT_TRUE(info->args[0].items().empty()) << "flight " << f;
  }
}

TEST(Fig5Test, UndoBeyondHistoryIsIllegal) {
  SystemConfig config;
  config.seed = 63;
  config.default_link.latency = Micros(100);
  System system(config);
  AirlineParams params;
  params.regions = 1;
  params.flights_per_region = 1;
  auto topology = BuildAirline(system, params);
  ASSERT_TRUE(topology.ok());
  NodeRuntime& node = system.node(topology->region_nodes[0]);
  Guardian* shell = *node.Create<ShellGuardian>("shell", "clerk", {});

  Clerk clerk(*shell, "confused");
  std::vector<ClerkOp> ops = {
      {ClerkOp::Kind::kUndoLast, 0, ""},  // nothing to undo yet
      {ClerkOp::Kind::kDone, 0, ""},
  };
  TransSummary summary =
      clerk.RunTransaction(topology->user_ports[0], ops, Millis(2000));
  EXPECT_TRUE(summary.completed);
  EXPECT_EQ(summary.outcomes["illegal"], 1);
}

TEST(DispatchFailureTest, FailureClauseReceivesSystemMessage) {
  SystemConfig config;
  config.seed = 64;
  config.default_link.latency = Micros(100);
  System system(config);
  NodeRuntime& a = system.AddNode("a");
  NodeRuntime& b = system.AddNode("b");
  a.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  Guardian* shell = *a.Create<ShellGuardian>("shell", "driver", {});

  PortType request_type("req", {MessageSig{"ask", {}, {"answered"}}});
  PortType reply_type("rep", {MessageSig{"answered", {}, {}}});
  ASSERT_TRUE(system.port_types().Register(request_type).ok());
  Port* reply_port = shell->AddPort(reply_type, 8);

  // Ask a guardian that doesn't exist; the system's failure lands on the
  // reply port and the dispatch failure clause fires.
  PortName nowhere;
  nowhere.node = b.id();
  nowhere.guardian = 777;
  nowhere.port_index = 0;
  nowhere.type_hash = request_type.hash();
  ASSERT_TRUE(shell->Send(nowhere, "ask", {}, reply_port->name()).ok());

  std::string failure_reason;
  Dispatch dispatch;
  dispatch.When("answered", [](const Received&) { FAIL(); })
      .OnFailure([&](const std::string& reason, const Received&) {
        failure_reason = reason;
      });
  Status st = dispatch.Once(*shell, {reply_port}, Millis(2000));
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(failure_reason, "target guardian doesn't exist");
}

TEST(SystemLimitsTest, TwentyFourBitSystemRejectsBigIntegersAtSendTime) {
  SystemConfig config;
  config.seed = 65;
  config.limits.int_bits = 24;  // the paper's example system
  config.default_link.latency = Micros(100);
  System system(config);
  NodeRuntime& a = system.AddNode("a");
  NodeRuntime& b = system.AddNode("b");
  a.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  b.RegisterGuardianType("shell", MakeFactory<ShellGuardian>());
  Guardian* sender = *a.Create<ShellGuardian>("shell", "sender", {});
  Guardian* receiver = *b.Create<ShellGuardian>("shell", "receiver", {});

  PortType number_type(
      "numbers", {MessageSig{"put", {ArgType::Of(TypeTag::kInt)}, {}}});
  Port* port = receiver->AddPort(number_type, 8);

  // In-bounds travels fine.
  ASSERT_TRUE(
      sender->Send(port->name(), "put", {Value::Int((1 << 23) - 1)}).ok());
  auto ok = receiver->Receive(port, Millis(1000));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->args[0].int_value(), (1 << 23) - 1);

  // Out-of-bounds: "it might be impossible to send an integer value in a
  // message because it was too big" — the send itself fails.
  Status too_big = sender->Send(port->name(), "put", {Value::Int(1 << 23)});
  EXPECT_EQ(too_big.code(), Code::kOutOfRange);
}

}  // namespace
}  // namespace guardians
