// Unit tests for the process/monitor/serializer runtime (Section 2.3's
// three organizations depend on these).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/common/clock.h"
#include "src/runtime/latch.h"
#include "src/runtime/monitor.h"
#include "src/runtime/process.h"
#include "src/runtime/serializer.h"

namespace guardians {
namespace {

TEST(ProcessTest, RunsBodyAndReportsDone) {
  std::atomic<bool> ran{false};
  Process p("t", [&] { ran = true; });
  p.Join();
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(p.Done());
}

TEST(ProcessGroupTest, JoinAllJoinsNestedForks) {
  ProcessGroup group;
  std::atomic<int> count{0};
  group.Fork("outer", [&] {
    ++count;
    group.Fork("inner", [&] { ++count; });
  });
  group.JoinAll();
  EXPECT_EQ(count.load(), 2);
  EXPECT_EQ(group.count(), 0u);
}

TEST(ProcessGroupTest, ReapReleasesFinishedOnly) {
  ProcessGroup group;
  CountdownLatch hold(1);
  group.Fork("fast", [] {});
  group.Fork("slow", [&] { hold.Wait(); });
  // Wait for "fast" to finish.
  for (int i = 0; i < 200 && group.count() == 2; ++i) {
    group.Reap();
    std::this_thread::sleep_for(Millis(1));
  }
  EXPECT_EQ(group.count(), 1u);
  hold.CountDown();
  group.JoinAll();
  EXPECT_EQ(group.count(), 0u);
}

TEST(ProcessGroupTest, ManyForksAllRun) {
  ProcessGroup group;
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) {
    group.Fork("p" + std::to_string(i), [&] { ++count; });
  }
  group.JoinAll();
  EXPECT_EQ(count.load(), 64);
}

TEST(KeyedMonitorTest, MutualExclusionPerKey) {
  KeyedMonitor<std::string> monitor;
  std::atomic<int> in_critical{0};
  std::atomic<bool> violated{false};
  ProcessGroup group;
  for (int i = 0; i < 8; ++i) {
    group.Fork("p" + std::to_string(i), [&] {
      for (int j = 0; j < 50; ++j) {
        KeyedMonitor<std::string>::Request request(monitor, "the-date");
        if (in_critical.fetch_add(1) != 0) {
          violated = true;
        }
        std::this_thread::sleep_for(Micros(50));
        in_critical.fetch_sub(1);
      }
    });
  }
  group.JoinAll();
  EXPECT_FALSE(violated.load());
  EXPECT_GT(monitor.blocked_waits(), 0u);  // there was real contention
}

TEST(KeyedMonitorTest, DistinctKeysProceedConcurrently) {
  KeyedMonitor<int> monitor;
  CountdownLatch both_inside(2);
  ProcessGroup group;
  for (int key : {1, 2}) {
    group.Fork("k" + std::to_string(key), [&, key] {
      KeyedMonitor<int>::Request request(monitor, key);
      both_inside.CountDown();
      // If keys excluded each other, the second process could never enter
      // while the first waits here, and this would time out.
      EXPECT_TRUE(both_inside.WaitFor(Millis(2000)));
    });
  }
  group.JoinAll();
  EXPECT_EQ(both_inside.count(), 0u);
}

TEST(SerializerTest, ExecutesEverythingOnce) {
  Serializer serializer(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    serializer.Enqueue(i % 5, [&] { ++count; });
  }
  serializer.Drain();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(serializer.executed(), 100u);
}

TEST(SerializerTest, SameKeyIsFifoAndExclusive) {
  Serializer serializer(4);
  std::vector<int> order;
  std::mutex order_mu;
  std::atomic<int> inside{0};
  std::atomic<bool> violated{false};
  for (int i = 0; i < 40; ++i) {
    serializer.Enqueue(7, [&, i] {
      if (inside.fetch_add(1) != 0) {
        violated = true;
      }
      std::this_thread::sleep_for(Micros(100));
      {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(i);
      }
      inside.fetch_sub(1);
    });
  }
  serializer.Drain();
  EXPECT_FALSE(violated.load());
  ASSERT_EQ(order.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(order[i], i);  // strict arrival order per key
  }
}

TEST(SerializerTest, DistinctKeysOverlap) {
  Serializer serializer(4);
  CountdownLatch overlap(2);
  for (int key : {1, 2}) {
    serializer.Enqueue(key, [&] {
      overlap.CountDown();
      EXPECT_TRUE(overlap.WaitFor(Millis(2000)));
    });
  }
  serializer.Drain();
  EXPECT_EQ(overlap.count(), 0u);
}

TEST(SerializerTest, BusyKeyDoesNotBlockLaterKeys) {
  Serializer serializer(2);
  CountdownLatch release(1);
  CountdownLatch other_ran(1);
  serializer.Enqueue(1, [&] { release.Wait(); });
  serializer.Enqueue(1, [&] {});  // stuck behind the first
  serializer.Enqueue(2, [&] { other_ran.CountDown(); });
  // Key 2 must run even while key 1's first task is blocked.
  EXPECT_TRUE(other_ran.WaitFor(Millis(2000)));
  release.CountDown();
  serializer.Drain();
  EXPECT_EQ(serializer.executed(), 3u);
}

TEST(SerializerTest, DrainWaitsForRunningTasks) {
  Serializer serializer(2);
  std::atomic<bool> finished{false};
  serializer.Enqueue(1, [&] {
    std::this_thread::sleep_for(Millis(20));
    finished = true;
  });
  serializer.Drain();
  EXPECT_TRUE(finished.load());
}

TEST(SerializerTest, QueueDepthTracked) {
  Serializer serializer(1);
  CountdownLatch release(1);
  serializer.Enqueue(1, [&] { release.Wait(); });
  for (int i = 0; i < 10; ++i) {
    serializer.Enqueue(1, [] {});
  }
  release.CountDown();
  serializer.Drain();
  EXPECT_GE(serializer.max_queue_depth(), 10u);
}

TEST(LatchTest, CountsDownAndTimesOut) {
  CountdownLatch latch(2);
  EXPECT_FALSE(latch.WaitFor(Millis(10)));
  latch.CountDown();
  EXPECT_EQ(latch.count(), 1u);
  latch.CountDown();
  EXPECT_TRUE(latch.WaitFor(Millis(10)));
  latch.Wait();  // returns immediately at zero
}

TEST(LatchTest, OverCountingClampsToZero) {
  CountdownLatch latch(1);
  latch.CountDown(5);
  EXPECT_EQ(latch.count(), 0u);
}

}  // namespace
}  // namespace guardians
