// Unit tests for port types and send-time message checking (Section 3.2).
#include <gtest/gtest.h>

#include "src/transmit/complex.h"
#include "src/value/port_type.h"

namespace guardians {
namespace {

PortType ReservePortType() {
  return PortType(
      "flight",
      {MessageSig{"reserve",
                  {ArgType::Of(TypeTag::kString), ArgType::Of(TypeTag::kInt)},
                  {"ok", "full"}},
       MessageSig{"note", {ArgType::Of(TypeTag::kString)}, {}},
       MessageSig{"poll", {}, {"status"}}});
}

TEST(ArgTypeTest, BuiltinMatching) {
  EXPECT_TRUE(ArgType::Of(TypeTag::kInt).Matches(Value::Int(1)));
  EXPECT_FALSE(ArgType::Of(TypeTag::kInt).Matches(Value::Str("1")));
  EXPECT_TRUE(ArgType::Any().Matches(Value::Str("anything")));
  EXPECT_TRUE(ArgType::Any().Matches(Value::Null()));
}

TEST(ArgTypeTest, AbstractMatchingByTypeName) {
  const ArgType complex_arg = ArgType::AbstractOf(kComplexTypeName);
  EXPECT_TRUE(complex_arg.Matches(Value::Abstract(MakeRectComplex(1, 2))));
  const ArgType other = ArgType::AbstractOf("matrix");
  EXPECT_FALSE(other.Matches(Value::Abstract(MakeRectComplex(1, 2))));
  EXPECT_FALSE(complex_arg.Matches(Value::Int(3)));
}

TEST(ArgTypeTest, Canonical) {
  EXPECT_EQ(ArgType::Of(TypeTag::kInt).Canonical(), "int");
  EXPECT_EQ(ArgType::AbstractOf("complex").Canonical(), "abstract<complex>");
  EXPECT_EQ(ArgType::Any().Canonical(), "any");
}

TEST(MessageSigTest, CanonicalIncludesReplies) {
  MessageSig sig{"reserve",
                 {ArgType::Of(TypeTag::kString)},
                 {"ok", "full"}};
  EXPECT_EQ(sig.Canonical(), "reserve(string) replies(ok,full)");
  MessageSig no_reply{"note", {}, {}};
  EXPECT_EQ(no_reply.Canonical(), "note()");
}

TEST(PortTypeTest, HashIsStableAndSensitive) {
  EXPECT_EQ(ReservePortType().hash(), ReservePortType().hash());
  PortType renamed(
      "flight2",
      {MessageSig{"reserve",
                  {ArgType::Of(TypeTag::kString), ArgType::Of(TypeTag::kInt)},
                  {"ok", "full"}},
       MessageSig{"note", {ArgType::Of(TypeTag::kString)}, {}},
       MessageSig{"poll", {}, {"status"}}});
  EXPECT_NE(ReservePortType().hash(), renamed.hash());
  PortType arg_changed(
      "flight",
      {MessageSig{"reserve",
                  {ArgType::Of(TypeTag::kString),
                   ArgType::Of(TypeTag::kReal)},
                  {"ok", "full"}},
       MessageSig{"note", {ArgType::Of(TypeTag::kString)}, {}},
       MessageSig{"poll", {}, {"status"}}});
  EXPECT_NE(ReservePortType().hash(), arg_changed.hash());
}

TEST(PortTypeTest, FindKnowsDeclaredAndImplicitFailure) {
  const PortType type = ReservePortType();
  EXPECT_TRUE(type.Find("reserve").ok());
  EXPECT_TRUE(type.Find("poll").ok());
  EXPECT_FALSE(type.Find("cancel").ok());
  // failure(string) is associated with every port type implicitly.
  auto failure = type.Find(kFailureCommand);
  ASSERT_TRUE(failure.ok());
  ASSERT_EQ(failure->args.size(), 1u);
  EXPECT_EQ(failure->args[0].tag, TypeTag::kString);
}

TEST(PortTypeTest, CheckAcceptsWellTypedMessage) {
  const PortType type = ReservePortType();
  EXPECT_TRUE(type.Check("reserve", {Value::Str("smith"), Value::Int(9)},
                         /*has_reply_port=*/true)
                  .ok());
  EXPECT_TRUE(type.Check("note", {Value::Str("hello")}, false).ok());
  EXPECT_TRUE(type.Check("poll", {}, true).ok());
  EXPECT_TRUE(type.Check(kFailureCommand, {Value::Str("oops")}, false).ok());
}

TEST(PortTypeTest, CheckRejectsArityMismatch) {
  const PortType type = ReservePortType();
  auto st = type.Check("reserve", {Value::Str("smith")}, true);
  EXPECT_EQ(st.code(), Code::kTypeError);
  EXPECT_NE(st.message().find("takes 2"), std::string::npos);
}

TEST(PortTypeTest, CheckRejectsWrongArgumentType) {
  const PortType type = ReservePortType();
  auto st = type.Check("reserve", {Value::Int(1), Value::Int(2)}, true);
  EXPECT_EQ(st.code(), Code::kTypeError);
}

TEST(PortTypeTest, CheckRejectsUnknownCommand) {
  auto st = ReservePortType().Check("cancel", {}, false);
  EXPECT_EQ(st.code(), Code::kTypeError);
}

TEST(PortTypeTest, CheckRejectsReplyPortWhenNoRepliesDeclared) {
  auto st = ReservePortType().Check("note", {Value::Str("x")},
                                    /*has_reply_port=*/true);
  EXPECT_EQ(st.code(), Code::kTypeError);
  // But a reply port on a replies-declaring command is fine, and optional.
  EXPECT_TRUE(ReservePortType()
                  .Check("reserve", {Value::Str("s"), Value::Int(1)}, false)
                  .ok());
}

TEST(PortTypeTest, ExpectsReply) {
  const PortType type = ReservePortType();
  EXPECT_TRUE(type.ExpectsReply("reserve"));
  EXPECT_TRUE(type.ExpectsReply("poll"));
  EXPECT_FALSE(type.ExpectsReply("note"));
  EXPECT_FALSE(type.ExpectsReply("unknown"));
}

TEST(PortTypeTest, FailureSigShape) {
  const MessageSig sig = FailureSig();
  EXPECT_EQ(sig.command, kFailureCommand);
  EXPECT_TRUE(sig.replies.empty());
}

}  // namespace
}  // namespace guardians
