// Unit and property tests for the low-level wire layer: varints, CRC32,
// value serialization, system-wide limits, packets and reassembly.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/common/rng.h"
#include "src/transmit/complex.h"
#include "src/transmit/registry.h"
#include "src/wire/codec.h"
#include "src/wire/crc32.h"
#include "src/wire/envelope.h"
#include "src/wire/packet.h"
#include "src/wire/value_codec.h"

namespace guardians {
namespace {

// --- codec ------------------------------------------------------------------

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, Unsigned) {
  WireEncoder enc;
  enc.PutVarU64(GetParam());
  WireDecoder dec(enc.bytes());
  auto out = dec.GetVarU64();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, GetParam());
  EXPECT_TRUE(dec.AtEnd());
}

TEST_P(VarintRoundTrip, SignedZigZagBothSigns) {
  for (int64_t v : {static_cast<int64_t>(GetParam()),
                    -static_cast<int64_t>(GetParam())}) {
    WireEncoder enc;
    enc.PutVarI64(v);
    WireDecoder dec(enc.bytes());
    auto out = dec.GetVarI64();
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(*out, v);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                      (1ull << 23) - 1, 1ull << 23, (1ull << 31),
                      (1ull << 63), ~0ull >> 1));

TEST(CodecTest, FixedWidthRoundTrip) {
  WireEncoder enc;
  enc.PutU8(0xAB);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutDouble(-2.5);
  WireDecoder dec(enc.bytes());
  EXPECT_EQ(*dec.GetU8(), 0xAB);
  EXPECT_EQ(*dec.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*dec.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(*dec.GetDouble(), -2.5);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CodecTest, StringAndBlob) {
  WireEncoder enc;
  enc.PutString("héllo");
  enc.PutBlob(Bytes{0, 255, 7});
  WireDecoder dec(enc.bytes());
  EXPECT_EQ(*dec.GetString(100), "héllo");
  EXPECT_EQ(*dec.GetBlob(100), (Bytes{0, 255, 7}));
}

TEST(CodecTest, TruncatedInputFailsCleanly) {
  WireEncoder enc;
  enc.PutU64(42);
  Bytes cut(enc.bytes().begin(), enc.bytes().begin() + 3);
  WireDecoder dec(cut);
  EXPECT_EQ(dec.GetU64().status().code(), Code::kCorrupt);
}

TEST(CodecTest, LengthLimitEnforced) {
  WireEncoder enc;
  enc.PutString("abcdefgh");
  WireDecoder dec(enc.bytes());
  EXPECT_EQ(dec.GetString(4).status().code(), Code::kCorrupt);
}

TEST(CodecTest, HostileLengthDoesNotOverread) {
  // A varint length far beyond the buffer.
  WireEncoder enc;
  enc.PutVarU64(1ull << 40);
  WireDecoder dec(enc.bytes());
  EXPECT_FALSE(dec.GetBlob(1ull << 41).ok());
}

TEST(CodecTest, VarintOverflowRejected) {
  Bytes evil(11, 0xFF);
  WireDecoder dec(evil);
  EXPECT_EQ(dec.GetVarU64().status().code(), Code::kCorrupt);
}

// --- crc32 -----------------------------------------------------------------

TEST(Crc32Test, KnownVectors) {
  // IEEE 802.3 test vector: "123456789" -> 0xCBF43926.
  const std::string nine = "123456789";
  EXPECT_EQ(Crc32(nine.data(), nine.size()), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  Bytes data = ToBytes("permanence of effect");
  const uint32_t clean = Crc32(data);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x10;
    EXPECT_NE(Crc32(data), clean) << "flip at " << i;
    data[i] ^= 0x10;
  }
}

// --- value serialization -----------------------------------------------------

Value RandomValue(Rng& rng, int depth) {
  const uint64_t pick = rng.NextBelow(depth > 2 ? 6 : 8);
  switch (pick) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Bool(rng.NextBool(0.5));
    case 2:
      return Value::Int(static_cast<int64_t>(rng.NextU64()));
    case 3:
      return Value::Real(rng.NextDouble() * 1e6 - 5e5);
    case 4: {
      std::string s;
      for (uint64_t i = 0; i < rng.NextBelow(12); ++i) {
        s += static_cast<char>('a' + rng.NextBelow(26));
      }
      return Value::Str(std::move(s));
    }
    case 5: {
      Bytes b;
      for (uint64_t i = 0; i < rng.NextBelow(12); ++i) {
        b.push_back(static_cast<uint8_t>(rng.NextBelow(256)));
      }
      return Value::Blob(std::move(b));
    }
    case 6: {
      std::vector<Value> items;
      for (uint64_t i = 0; i < rng.NextBelow(4); ++i) {
        items.push_back(RandomValue(rng, depth + 1));
      }
      return Value::Array(std::move(items));
    }
    default: {
      std::vector<Value::Field> fields;
      for (uint64_t i = 0; i < rng.NextBelow(4); ++i) {
        fields.emplace_back("f" + std::to_string(i),
                            RandomValue(rng, depth + 1));
      }
      return Value::Record(std::move(fields));
    }
  }
}

class ValueCodecProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValueCodecProperty, RoundTripPreservesEquality) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Value v = RandomValue(rng, 0);
    auto bytes = EncodeValueToBytes(v);
    ASSERT_TRUE(bytes.ok()) << bytes.status();
    auto back = DecodeValueFromBytes(*bytes);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_TRUE(v.Equals(*back)) << v.ToString() << " vs "
                                 << back->ToString();
  }
}

TEST_P(ValueCodecProperty, CorruptionNeverCrashesTheDecoder) {
  Rng rng(GetParam() ^ 0xBEEF);
  for (int i = 0; i < 50; ++i) {
    const Value v = RandomValue(rng, 0);
    auto bytes = EncodeValueToBytes(v);
    ASSERT_TRUE(bytes.ok());
    Bytes mutated = *bytes;
    if (mutated.empty()) {
      continue;
    }
    mutated[rng.NextBelow(mutated.size())] ^=
        static_cast<uint8_t>(1 + rng.NextBelow(255));
    // Either decodes to *something* or fails cleanly; must not crash or
    // hang. (The network discards CRC-failing packets before this layer,
    // but the decoder must still be defensive.)
    auto out = DecodeValueFromBytes(mutated);
    (void)out;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueCodecProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(ValueCodecTest, PortAndTokenRoundTrip) {
  PortName pn;
  pn.node = 9;
  pn.guardian = 77;
  pn.port_index = 3;
  pn.type_hash = 0xFEED;
  Token t{4, 0xAA, 0xBB};
  const Value v = Value::Array({Value::OfPort(pn), Value::OfToken(t)});
  auto bytes = EncodeValueToBytes(v);
  ASSERT_TRUE(bytes.ok());
  auto back = DecodeValueFromBytes(*bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->at(0).port_value().type_hash, 0xFEEDu);
  EXPECT_TRUE(v.Equals(*back));
}

TEST(ValueCodecTest, SystemIntegerBound24Bits) {
  WireLimits limits;
  limits.int_bits = 24;
  EXPECT_TRUE(EncodeValueToBytes(Value::Int((1 << 23) - 1), limits).ok());
  EXPECT_TRUE(EncodeValueToBytes(Value::Int(-(1 << 23)), limits).ok());
  auto too_big = EncodeValueToBytes(Value::Int(1 << 23), limits);
  EXPECT_EQ(too_big.status().code(), Code::kOutOfRange);
  auto too_small = EncodeValueToBytes(Value::Int(-(1 << 23) - 1), limits);
  EXPECT_EQ(too_small.status().code(), Code::kOutOfRange);
}

TEST(ValueCodecTest, DecoderEnforcesIntegerBoundToo) {
  // Encoded under permissive limits, decoded under the 24-bit system.
  auto bytes = EncodeValueToBytes(Value::Int(1 << 23));
  ASSERT_TRUE(bytes.ok());
  WireLimits limits;
  limits.int_bits = 24;
  EXPECT_FALSE(DecodeValueFromBytes(*bytes, limits).ok());
}

TEST(ValueCodecTest, DepthLimitStopsRunawayNesting) {
  WireLimits limits;
  limits.max_depth = 4;
  Value v = Value::Int(1);
  for (int i = 0; i < 10; ++i) {
    v = Value::Array({v});
  }
  EXPECT_EQ(EncodeValueToBytes(v, limits).status().code(),
            Code::kEncodeError);
}

TEST(ValueCodecTest, BlobBoundEnforced) {
  WireLimits limits;
  limits.max_blob_bytes = 4;
  EXPECT_FALSE(EncodeValueToBytes(Value::Str("too long"), limits).ok());
  EXPECT_TRUE(EncodeValueToBytes(Value::Str("ok"), limits).ok());
}

TEST(ValueCodecTest, AbstractWithoutDecoderFails) {
  auto bytes = EncodeValueToBytes(Value::Abstract(MakeRectComplex(1, 2)));
  ASSERT_TRUE(bytes.ok());
  auto out = DecodeValueFromBytes(*bytes, DefaultLimits(), nullptr);
  EXPECT_EQ(out.status().code(), Code::kDecodeError);
}

TEST(ValueCodecTest, AbstractCrossRepresentation) {
  TransmitRegistry registry;
  ASSERT_TRUE(registry.Register(kComplexTypeName, PolarComplexDecoder()).ok());
  const Value rect = Value::Abstract(MakeRectComplex(3.0, 4.0));
  auto bytes = EncodeValueToBytes(rect);
  ASSERT_TRUE(bytes.ok());
  auto back = DecodeValueFromBytes(*bytes, DefaultLimits(),
                                   registry.AsDecodeFn());
  ASSERT_TRUE(back.ok()) << back.status();
  // Arrived as the receiving node's representation...
  auto polar = std::dynamic_pointer_cast<const PolarComplex>(
      back->abstract_value());
  ASSERT_NE(polar, nullptr);
  EXPECT_NEAR(polar->Magnitude(), 5.0, 1e-9);
  // ...and is the same abstract value.
  EXPECT_TRUE(rect.Equals(*back));
}

// --- envelope ----------------------------------------------------------------

Envelope MakeEnvelope() {
  Envelope env;
  env.msg_id = 42;
  env.src_node = 3;
  env.target = PortName{2, 7, 1, 0x1234};
  env.reply_to = PortName{3, 9, 0, 0x5678};
  env.command = "reserve";
  env.args = {Value::Str("smith"), Value::Int(12)};
  return env;
}

TEST(EnvelopeTest, RoundTrip) {
  const Envelope env = MakeEnvelope();
  auto bytes = EncodeEnvelope(env, DefaultLimits());
  ASSERT_TRUE(bytes.ok());
  auto back = DecodeEnvelope(*bytes, DefaultLimits(), nullptr);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->msg_id, env.msg_id);
  EXPECT_EQ(back->src_node, env.src_node);
  EXPECT_EQ(back->target, env.target);
  EXPECT_EQ(back->reply_to, env.reply_to);
  EXPECT_TRUE(back->ack_to.IsNull());
  EXPECT_EQ(back->command, "reserve");
  ASSERT_EQ(back->args.size(), 2u);
  EXPECT_EQ(back->args[1].int_value(), 12);
}

TEST(EnvelopeTest, FlowFeedbackFieldsRoundTrip) {
  Envelope env = MakeEnvelope();
  env.fc_port = PortName{2, 7, 1, 0x1234};
  env.fc_depth = 13;
  env.fc_capacity = 64;
  env.fc_full = true;
  ASSERT_TRUE(env.HasFlowFeedback());
  auto bytes = EncodeEnvelope(env, DefaultLimits());
  ASSERT_TRUE(bytes.ok());
  auto back = DecodeEnvelope(*bytes, DefaultLimits(), nullptr);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->fc_port, env.fc_port);
  EXPECT_EQ(back->fc_depth, 13u);
  EXPECT_EQ(back->fc_capacity, 64u);
  EXPECT_TRUE(back->fc_full);
  // The fc fields live in the header section: a header-only decode (used
  // to route failure replies when full decode fails) carries them too.
  auto header = DecodeEnvelopeHeader(*bytes, DefaultLimits());
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->fc_port, env.fc_port);
  EXPECT_TRUE(header->fc_full);
  // And an envelope without feedback decodes back to "none attached".
  auto plain = DecodeEnvelope(*EncodeEnvelope(MakeEnvelope(), DefaultLimits()),
                              DefaultLimits(), nullptr);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->HasFlowFeedback());
  EXPECT_FALSE(plain->fc_full);
}

TEST(EnvelopeTest, DeadlineBudgetRoundTrips) {
  Envelope env = MakeEnvelope();
  env.deadline_micros = 12'345;  // remaining budget, decremented per hop
  auto bytes = EncodeEnvelope(env, DefaultLimits());
  ASSERT_TRUE(bytes.ok());
  auto back = DecodeEnvelope(*bytes, DefaultLimits(), nullptr);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->deadline_micros, 12'345u);
  // The budget lives in the header section (like the fc fields), so the
  // shedding decision never needs a full arg decode.
  auto header = DecodeEnvelopeHeader(*bytes, DefaultLimits());
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->deadline_micros, 12'345u);
  // 0 on the wire means "no deadline" and must survive a round trip as 0.
  auto plain = DecodeEnvelope(*EncodeEnvelope(MakeEnvelope(), DefaultLimits()),
                              DefaultLimits(), nullptr);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->deadline_micros, 0u);
}

TEST(EnvelopeTest, HeaderOnlyDecodeRecoversReplyPort) {
  const Envelope env = MakeEnvelope();
  auto bytes = EncodeEnvelope(env, DefaultLimits());
  ASSERT_TRUE(bytes.ok());
  auto header = DecodeEnvelopeHeader(*bytes, DefaultLimits());
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->reply_to, env.reply_to);
  EXPECT_TRUE(header->args.empty());
}

TEST(EnvelopeTest, BadMagicRejected) {
  auto bytes = EncodeEnvelope(MakeEnvelope(), DefaultLimits());
  ASSERT_TRUE(bytes.ok());
  (*bytes)[0] ^= 0xFF;
  EXPECT_FALSE(DecodeEnvelope(*bytes, DefaultLimits(), nullptr).ok());
}

TEST(EnvelopeTest, TrailingBytesRejected) {
  auto bytes = EncodeEnvelope(MakeEnvelope(), DefaultLimits());
  bytes->push_back(0);
  EXPECT_FALSE(DecodeEnvelope(*bytes, DefaultLimits(), nullptr).ok());
}

TEST(EnvelopeTest, MessageSizeBoundEnforced) {
  WireLimits limits;
  limits.max_message_bytes = 64;
  Envelope env = MakeEnvelope();
  env.args = {Value::Str(std::string(200, 'x'))};
  EXPECT_FALSE(EncodeEnvelope(env, limits).ok());
}

// --- packets -----------------------------------------------------------------

TEST(PacketTest, FragmentCountsAndSizes) {
  const Bytes msg(2500, 0x5A);
  auto packets = Fragment(BufferSlice(msg), 1, 1, 2, 1024);
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0].payload.size(), 1024u);
  EXPECT_EQ(packets[2].payload.size(), 452u);
  for (const auto& p : packets) {
    EXPECT_TRUE(p.Verify());
    EXPECT_EQ(p.frag_count, 3u);
  }
}

TEST(PacketTest, EmptyMessageIsOnePacket) {
  auto packets = Fragment({}, 1, 1, 2, 1024);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_TRUE(packets[0].payload.empty());
}

TEST(PacketTest, ReassemblyInOrder) {
  const Bytes msg = ToBytes("a somewhat long message for fragmentation");
  auto packets = Fragment(BufferSlice(msg), 7, 1, 2, 8);
  Reassembler reassembler;
  for (size_t i = 0; i < packets.size(); ++i) {
    auto out = reassembler.Add(std::move(packets[i]));
    ASSERT_TRUE(out.ok());
    if (i + 1 < packets.size()) {
      EXPECT_FALSE(out->has_value());
    } else {
      ASSERT_TRUE(out->has_value());
      EXPECT_EQ(**out, msg);
    }
  }
  EXPECT_EQ(reassembler.partial_count(), 0u);
}

TEST(PacketTest, ReassemblyOutOfOrderAndDuplicates) {
  const Bytes msg = ToBytes("out of order arrival is permitted by 3.4");
  auto packets = Fragment(BufferSlice(msg), 9, 1, 2, 5);
  Reassembler reassembler;
  // Deliver reversed, with every packet duplicated.
  std::optional<BufferSlice> complete;
  for (auto it = packets.rbegin(); it != packets.rend(); ++it) {
    for (int dup = 0; dup < 2; ++dup) {
      auto out = reassembler.Add(Packet(*it));  // Add consumes; keep the dup
      ASSERT_TRUE(out.ok());
      if (out->has_value()) {
        complete = **out;
      }
    }
  }
  ASSERT_TRUE(complete.has_value());
  EXPECT_EQ(*complete, msg);
}

TEST(PacketTest, CorruptPacketDroppedByErrorDetection) {
  const Bytes msg = ToBytes("check the error detection bits");
  auto packets = Fragment(BufferSlice(msg), 11, 1, 2, 8);
  packets[1].payload.MutableData()[0] ^= 0x40;  // keep stale CRC
  Reassembler reassembler;
  auto st = reassembler.Add(std::move(packets[1]));
  EXPECT_EQ(st.status().code(), Code::kCorrupt);
  EXPECT_EQ(reassembler.corrupt_dropped(), 1u);
}

TEST(PacketTest, InterleavedMessagesReassembleIndependently) {
  const Bytes m1 = ToBytes("first message body");
  const Bytes m2 = ToBytes("second message body!");
  auto p1 = Fragment(BufferSlice(m1), 100, 1, 2, 6);
  auto p2 = Fragment(BufferSlice(m2), 200, 1, 2, 6);
  Reassembler reassembler;
  int completed = 0;
  for (size_t i = 0; i < std::max(p1.size(), p2.size()); ++i) {
    if (i < p1.size()) {
      auto out = reassembler.Add(std::move(p1[i]));
      ASSERT_TRUE(out.ok());
      if (out->has_value()) {
        EXPECT_EQ(**out, m1);
        ++completed;
      }
    }
    if (i < p2.size()) {
      auto out = reassembler.Add(std::move(p2[i]));
      ASSERT_TRUE(out.ok());
      if (out->has_value()) {
        EXPECT_EQ(**out, m2);
        ++completed;
      }
    }
  }
  EXPECT_EQ(completed, 2);
}

TEST(PacketTest, PartialEvictionBoundsMemory) {
  Reassembler reassembler(/*max_partial=*/4);
  for (uint64_t m = 0; m < 10; ++m) {
    auto packets = Fragment(Bytes(64, 1), m, 1, 2, 16);
    ASSERT_TRUE(reassembler.Add(std::move(packets[0])).ok());  // never complete
  }
  EXPECT_LE(reassembler.partial_count(), 4u);
}

TEST(PacketTest, InconsistentFragmentHeaderRejected) {
  Packet p;
  p.msg_id = 1;
  p.frag_index = 5;
  p.frag_count = 2;  // index >= count
  p.payload = Bytes{1, 2, 3};
  p.Seal();
  Reassembler reassembler;
  EXPECT_EQ(reassembler.Add(std::move(p)).status().code(), Code::kCorrupt);
}

TEST(PacketTest, SameMsgIdFromTwoSendersReassemblesIndependently) {
  // Regression: partials used to be keyed by msg_id alone, so two senders
  // minting the same id toward one destination interleaved into a single
  // partial and corrupted (or rejected) both messages. Keying by
  // (src, msg_id) keeps them apart.
  const Bytes from_a(29, 0xAA);  // 5 fragments of <= 7 bytes
  const Bytes from_b(50, 0xBB);  // 8 fragments of <= 7 bytes
  constexpr uint64_t kCollidingId = 77;
  auto pa = Fragment(BufferSlice(from_a), kCollidingId, /*src=*/1, /*dst=*/3, 7);
  auto pb = Fragment(BufferSlice(from_b), kCollidingId, /*src=*/2, /*dst=*/3, 7);
  ASSERT_GT(pa.size(), 1u);
  ASSERT_GT(pb.size(), 1u);
  ASSERT_NE(pa.size(), pb.size());  // clashing counts made the old code drop

  Reassembler reassembler;
  std::optional<BufferSlice> got_a;
  std::optional<BufferSlice> got_b;
  // Strictly interleave the two senders' fragments.
  for (size_t i = 0; i < std::max(pa.size(), pb.size()); ++i) {
    if (i < pa.size()) {
      auto out = reassembler.Add(std::move(pa[i]));
      ASSERT_TRUE(out.ok()) << out.status();
      if (out->has_value()) {
        got_a = **out;
      }
    }
    if (i < pb.size()) {
      auto out = reassembler.Add(std::move(pb[i]));
      ASSERT_TRUE(out.ok()) << out.status();
      if (out->has_value()) {
        got_b = **out;
      }
    }
  }
  ASSERT_TRUE(got_a.has_value());
  ASSERT_TRUE(got_b.has_value());
  EXPECT_EQ(*got_a, from_a);
  EXPECT_EQ(*got_b, from_b);
  EXPECT_EQ(reassembler.corrupt_dropped(), 0u);
  EXPECT_EQ(reassembler.partial_count(), 0u);
}

TEST(PacketTest, StalePartialsExpireByAge) {
  // Regression: a lost fragment used to pin its partial (and its payload
  // bytes) forever; steady loss on large messages grew the table until the
  // count-based eviction started cannibalizing *young* in-progress
  // messages. Partials idle past the age horizon are now swept on Add.
  Reassembler reassembler(/*max_partial=*/1024, /*expiry=*/Micros(20'000));

  // Two 2-fragment messages, each missing its second fragment.
  const Bytes one(14, 0x11);
  const Bytes two(14, 0x22);
  auto pa = Fragment(BufferSlice(one), /*msg_id=*/1, /*src=*/1, /*dst=*/2, 7);
  auto pb = Fragment(BufferSlice(two), /*msg_id=*/2, /*src=*/1, /*dst=*/2, 7);
  ASSERT_EQ(pa.size(), 2u);
  ASSERT_TRUE(reassembler.Add(std::move(pa[0])).ok());
  ASSERT_TRUE(reassembler.Add(std::move(pb[0])).ok());
  EXPECT_EQ(reassembler.partial_count(), 2u);
  EXPECT_EQ(reassembler.expired(), 0u);

  // Let both partials pass the horizon, then feed an unrelated fragment:
  // its Add runs the amortized sweep.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  const Bytes three(14, 0x33);
  auto pc = Fragment(BufferSlice(three), /*msg_id=*/3, /*src=*/1, /*dst=*/2, 7);
  auto out = reassembler.Add(std::move(pc[0]));
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->has_value());
  EXPECT_EQ(reassembler.expired(), 2u);
  EXPECT_EQ(reassembler.partial_count(), 1u);  // only msg 3 survives

  // The young partial was not collateral damage: it still completes.
  auto done = reassembler.Add(std::move(pc[1]));
  ASSERT_TRUE(done.ok());
  ASSERT_TRUE(done->has_value());
  EXPECT_EQ(**done, three);
  EXPECT_EQ(reassembler.partial_count(), 0u);
}

TEST(PacketTest, ExpiryZeroDisablesAgeSweep) {
  Reassembler reassembler(/*max_partial=*/1024, /*expiry=*/Micros(0));
  const Bytes msg(14, 0x44);
  auto packets = Fragment(BufferSlice(msg), /*msg_id=*/9, /*src=*/1, /*dst=*/2, 7);
  ASSERT_TRUE(reassembler.Add(std::move(packets[0])).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  auto done = reassembler.Add(std::move(packets[1]));
  ASSERT_TRUE(done.ok());
  ASSERT_TRUE(done->has_value());
  EXPECT_EQ(reassembler.expired(), 0u);
}

TEST(PacketTest, NewIncarnationDropsPredecessorPartials) {
  // Regression: partials were keyed by (src, msg_id) with no incarnation
  // component, so a source that crashed mid-message and restarted could —
  // with a reused msg_id — complete a message spliced half from pre-crash
  // fragments and half from post-crash ones. Every fragment passes its own
  // CRC, so nothing downstream catches the splice: the receiver decodes a
  // chimera no incarnation ever sent.
  const Bytes pre(40, 0x0A);
  const Bytes post(40, 0x0B);
  constexpr uint64_t kReusedId = 42;
  auto old_inc = Fragment(BufferSlice(pre), kReusedId, /*src=*/1, /*dst=*/2, 10,
                          /*trace_id=*/0, /*src_session=*/100);
  auto new_inc = Fragment(BufferSlice(post), kReusedId, /*src=*/1, /*dst=*/2, 10,
                          /*trace_id=*/0, /*src_session=*/200);
  ASSERT_EQ(old_inc.size(), 4u);
  ASSERT_EQ(new_inc.size(), 4u);

  Reassembler reassembler;
  // The old incarnation lands fragments 0 and 1, then the source crashes.
  ASSERT_TRUE(reassembler.Add(std::move(old_inc[0])).ok());
  ASSERT_TRUE(reassembler.Add(std::move(old_inc[1])).ok());
  EXPECT_EQ(reassembler.partial_count(), 1u);

  // The restarted incarnation sends fragments 2 and 3 of "the same"
  // message. Under the old keying these completed a 0xA/0xB chimera; now
  // the first new-session packet drops the predecessor's partial outright.
  auto out = reassembler.Add(std::move(new_inc[2]));
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->has_value());
  auto out2 = reassembler.Add(std::move(new_inc[3]));
  ASSERT_TRUE(out2.ok());
  EXPECT_FALSE(out2->has_value());  // the splice can never complete
  EXPECT_EQ(reassembler.session_dropped(), 1u);

  // The new incarnation's own message still completes, bit-exact.
  ASSERT_TRUE(reassembler.Add(std::move(new_inc[0])).ok());
  auto done = reassembler.Add(std::move(new_inc[1]));
  ASSERT_TRUE(done.ok());
  ASSERT_TRUE(done->has_value());
  EXPECT_EQ(**done, post);
  EXPECT_EQ(reassembler.partial_count(), 0u);
  EXPECT_EQ(reassembler.corrupt_dropped(), 0u);
}

// --- buffers and the zero-copy path -----------------------------------------

TEST(BufferTest, SlicesShareStorageAndSubViewsAreFree) {
  const uint64_t copied_before = BufferStats::BytesCopied();
  BufferSlice whole(Bytes{0, 1, 2, 3, 4, 5, 6, 7});
  BufferSlice mid = whole.Sub(2, 4);
  EXPECT_EQ(mid.size(), 4u);
  EXPECT_EQ(mid[0], 2);
  EXPECT_TRUE(mid.SharesBufferWith(whole));
  BufferSlice copy = mid;  // refcount bump
  EXPECT_TRUE(copy.SharesBufferWith(whole));
  EXPECT_EQ(BufferStats::BytesCopied(), copied_before);  // no byte moved
  // Out-of-range requests clamp instead of overreading.
  EXPECT_EQ(whole.Sub(6, 100).size(), 2u);
  EXPECT_EQ(whole.Sub(100, 4).size(), 0u);
}

TEST(BufferTest, MutableDataCopiesOnlyWhenShared) {
  // Sole owner of the whole buffer: write-in-place, nothing copied.
  BufferSlice lone(Bytes{1, 2, 3});
  const void* storage = lone.buffer().id();
  lone.MutableData()[0] = 9;
  EXPECT_EQ(lone.buffer().id(), storage);
  EXPECT_EQ(lone[0], 9);

  // Shared: the writer detaches, the sibling keeps the original bytes.
  BufferSlice a(Bytes{1, 2, 3});
  BufferSlice b = a;
  b.MutableData()[0] = 7;
  EXPECT_FALSE(a.SharesBufferWith(b));
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(b[0], 7);

  // A sub-slice writer detaches too, and only its window is copied.
  BufferSlice base(Bytes(100, 0x11));
  BufferSlice window = base.Sub(10, 5);
  const uint64_t copied_before = BufferStats::BytesCopied();
  window.MutableData()[0] = 0x22;
  EXPECT_EQ(BufferStats::BytesCopied() - copied_before, 5u);
  EXPECT_EQ(base[10], 0x11);
  EXPECT_EQ(window[0], 0x22);
}

TEST(BufferTest, GatherContiguousSlicesIsZeroCopy) {
  BufferSlice whole(Bytes{0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  std::vector<BufferSlice> parts = {whole.Sub(0, 4), whole.Sub(4, 4),
                                    whole.Sub(8, 2)};
  const uint64_t copied_before = BufferStats::BytesCopied();
  BufferSlice joined = GatherSlices(parts, 10);
  EXPECT_EQ(BufferStats::BytesCopied(), copied_before);
  EXPECT_TRUE(joined.SharesBufferWith(whole));
  EXPECT_EQ(joined, whole);
}

TEST(BufferTest, GatherForeignSlicesJoinsOnce) {
  std::vector<BufferSlice> parts = {BufferSlice(Bytes{1, 2}),
                                    BufferSlice(Bytes{3}),
                                    BufferSlice(Bytes{4, 5})};
  const uint64_t copied_before = BufferStats::BytesCopied();
  BufferSlice joined = GatherSlices(parts, 5);
  EXPECT_EQ(joined, ConstByteSpan(Bytes{1, 2, 3, 4, 5}));
  EXPECT_EQ(BufferStats::BytesCopied() - copied_before, 5u);
}

TEST(PacketTest, FragmentsAreViewsOfOneBufferAndReassemblyIsZeroCopy) {
  // The tentpole property end to end at the wire layer: fragmentation
  // copies nothing, and reassembly of intact fragments completes as a
  // spanning view of the sender's encode buffer.
  Bytes msg(200, 0);
  for (size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<uint8_t>(i);
  }
  const Bytes original = msg;
  const uint64_t copied_before = BufferStats::BytesCopied();
  auto packets = Fragment(std::move(msg), 5, 1, 2, 64);
  ASSERT_EQ(packets.size(), 4u);
  for (size_t i = 1; i < packets.size(); ++i) {
    EXPECT_TRUE(packets[i].payload.SharesBufferWith(packets[0].payload));
  }
  const BufferSlice first = packets[0].payload;  // keep a handle on the buffer

  Reassembler reassembler;
  std::optional<BufferSlice> complete;
  for (auto& p : packets) {
    auto out = reassembler.Add(std::move(p));
    ASSERT_TRUE(out.ok());
    if (out->has_value()) {
      complete = std::move(**out);
    }
  }
  ASSERT_TRUE(complete.has_value());
  EXPECT_EQ(*complete, original);
  EXPECT_TRUE(complete->SharesBufferWith(first));
  EXPECT_EQ(BufferStats::BytesCopied(), copied_before)
      << "fragment + reassemble of intact fragments must not copy payload";
}

TEST(PacketTest, ReassemblyGathersOnceWhenAFragmentWasRewritten) {
  // A COW'd (e.g. corrupted-then-resent) fragment breaks contiguity, so
  // completion falls back to exactly one pre-sized gather.
  Bytes msg(60, 0x3C);
  const Bytes original = msg;
  auto packets = Fragment(std::move(msg), 6, 1, 2, 20);
  ASSERT_EQ(packets.size(), 3u);
  // Rewrite a byte and put it back, as a retransmission would.
  packets[1].payload.MutableData()[0] = 0x3C;  // same value: bytes unchanged
  packets[1].Seal();
  Reassembler reassembler;
  std::optional<BufferSlice> complete;
  const uint64_t copied_before = BufferStats::BytesCopied();
  for (auto& p : packets) {
    auto out = reassembler.Add(std::move(p));
    ASSERT_TRUE(out.ok());
    if (out->has_value()) {
      complete = std::move(**out);
    }
  }
  ASSERT_TRUE(complete.has_value());
  EXPECT_EQ(*complete, original);
  // Exactly one pre-sized 60-byte gather; nothing else.
  EXPECT_EQ(BufferStats::BytesCopied() - copied_before, 60u);
}

}  // namespace
}  // namespace guardians
