// The crash-schedule explorer: every registered crashpoint, at every hit
// ordinal the airline workload reaches, is a schedule; §2.2 permanence
// must hold after supervised recovery from each one.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/fault/crashpoint.h"
#include "src/fault/explorer.h"

namespace guardians {
namespace {

TEST(CrashpointTest, RegistryCoversEveryStorageLayer) {
  const std::vector<std::string> sites = FaultInjector::Instance().SiteNames();
  EXPECT_GE(sites.size(), 10u);
  // One representative per layer: device, log, checkpoint, node meta-state,
  // application log-then-reply.
  for (const char* site :
       {"store.append.partial", "wal.append.before_frame",
        "wal.checkpoint.after_snapshot", "node.persist_creation.before_log",
        "flight.reserve.after_log"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
        << site;
  }
}

TEST(CrashpointTest, ArmValidatesThePlan) {
  FaultInjector& injector = FaultInjector::Instance();
  EXPECT_EQ(injector.Arm({"no.such.site", 1}, nullptr, nullptr).code(),
            Code::kNotFound);
  EXPECT_EQ(injector.Arm({"store.append.partial", 0}, nullptr, nullptr)
                .code(),
            Code::kInvalidArgument);
  ASSERT_TRUE(injector.Arm({"store.append.partial", 1}, nullptr, nullptr)
                  .ok());
  // Double-arming is a harness bug, not a race to silently resolve.
  EXPECT_EQ(injector.Arm({"wal.append.before_frame", 1}, nullptr, nullptr)
                .code(),
            Code::kInvalidArgument);
  injector.Disarm();
}

TEST(CrashpointTest, LayerIsInactiveUnlessCountingOrArmed) {
  // The hot-path gate every Hit() checks: off by default, on only inside a
  // counting window or while a plan is armed.
  EXPECT_FALSE(FaultInjectionActive());
  FaultInjector::Instance().StartCounting(nullptr);
  EXPECT_TRUE(FaultInjectionActive());
  FaultInjector::Instance().StopCounting();
  EXPECT_FALSE(FaultInjectionActive());
  ASSERT_TRUE(FaultInjector::Instance()
                  .Arm({"store.append.partial", 1}, nullptr, nullptr)
                  .ok());
  EXPECT_TRUE(FaultInjectionActive());
  FaultInjector::Instance().Disarm();
  EXPECT_FALSE(FaultInjectionActive());
}

TEST(CrashExplorerTest, EverySchedulePreservesPermanence) {
  ExplorerConfig config;
  auto report = ExploreCrashSchedules(config);
  ASSERT_TRUE(report.ok()) << report.status();

  // Exhaustiveness: every registered site appears, the workload exercises
  // every one of them, and there is one schedule per (site, hit).
  const std::vector<std::string> sites = FaultInjector::Instance().SiteNames();
  EXPECT_GE(sites.size(), 10u);
  uint64_t schedule_space = 0;
  for (const std::string& site : sites) {
    auto it = report->baseline_hits.find(site);
    ASSERT_NE(it, report->baseline_hits.end()) << site;
    EXPECT_GT(it->second, 0u) << "workload never reaches " << site;
    schedule_space += it->second;
  }
  EXPECT_EQ(report->schedules.size(), schedule_space);

  // Every armed crash actually fired, and every recovery satisfied the
  // §2.2 invariants.
  EXPECT_EQ(report->triggered, report->schedules.size());
  EXPECT_EQ(report->failures, 0u) << report->Summary();
  for (const ScheduleOutcome& s : report->schedules) {
    EXPECT_TRUE(s.triggered) << s.plan.point << " hit " << s.plan.nth_hit;
    EXPECT_TRUE(s.verdict.ok())
        << s.plan.point << " hit " << s.plan.nth_hit << ": " << s.verdict;
  }
}

}  // namespace
}  // namespace guardians
